module xmatch

go 1.24
