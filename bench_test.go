// Benchmarks mirroring every table and figure of the paper's evaluation
// (Section VI), plus ablations of the design choices called out in
// DESIGN.md. cmd/experiments produces the full tables; these benchmarks
// track the cost of each experiment's kernel under `go test -bench`.
package xmatch_test

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"xmatch/internal/assignment"
	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/store"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// fixtures are shared across benchmarks and built once.
var (
	fixOnce   sync.Once
	fixD7     *dataset.Dataset
	fixSets   map[int]*mapping.Set // |M| -> set (D7)
	fixDoc    *xmltree.Document
	fixDocIdx *xmltree.Document // same generation, positional index attached
	fixTree   *core.BlockTree
)

func setup(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixD7 = dataset.MustLoad("D7")
		fixSets = map[int]*mapping.Set{}
		for _, m := range []int{30, 100, 200, 500} {
			set, err := mapgen.TopH(fixD7.Matching, m, mapgen.Partition)
			if err != nil {
				panic(err)
			}
			fixSets[m] = set
		}
		fixDoc = fixD7.OrderDocument(3473, 42)
		// A separate instance for the indexed benchmarks, so attaching the
		// index cannot change what the unindexed benchmarks measure.
		fixDocIdx = fixD7.OrderDocument(3473, 42)
		index.Attach(fixDocIdx)
		bt, err := core.Build(fixSets[100], core.DefaultOptions())
		if err != nil {
			panic(err)
		}
		fixTree = bt
	})
}

// BenchmarkTable2ORatio measures the mapping-overlap statistic of Table II
// (average pairwise o-ratio over |M|=100 mappings of D7).
func BenchmarkTable2ORatio(b *testing.B) {
	setup(b)
	set := fixSets[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = set.AverageORatio()
	}
}

// BenchmarkFig9aCompression measures block-tree construction plus mapping
// compression at the default τ (Figure 9(a) kernel).
func BenchmarkFig9aCompression(b *testing.B) {
	setup(b)
	set := fixSets[100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = bt.Compress().CompressionRatio()
	}
}

// BenchmarkFig9bBlocksVsTau measures construction across the τ sweep of
// Figure 9(b).
func BenchmarkFig9bBlocksVsTau(b *testing.B) {
	setup(b)
	set := fixSets[100]
	for _, tau := range []float64{0.02, 0.2, 0.9} {
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(set, core.Options{Tau: tau}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9cStats measures the c-block size-distribution computation of
// Figure 9(c).
func BenchmarkFig9cStats(b *testing.B) {
	setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fixTree.Stats()
	}
}

// BenchmarkFig9dConstruct measures block-tree construction per dataset
// (Figure 9(d), |M|=100).
func BenchmarkFig9dConstruct(b *testing.B) {
	for _, id := range dataset.IDs() {
		d := dataset.MustLoad(id)
		set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(set, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9eMaxB measures construction under the MAX_B cap sweep of
// Figure 9(e).
func BenchmarkFig9eMaxB(b *testing.B) {
	setup(b)
	set := fixSets[100]
	for _, maxB := range []int{20, 100, 300} {
		b.Run(fmt.Sprintf("maxB=%d", maxB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(set, core.Options{Tau: 0.2, MaxB: maxB}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9fQuery measures the Table III queries under both PTQ
// algorithms at |M|=100 (Figure 9(f)).
func BenchmarkFig9fQuery(b *testing.B) {
	setup(b)
	set := fixSets[100]
	for _, query := range dataset.Queries() {
		q, err := core.PrepareQuery(query.Text, set)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(query.ID+"/basic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.EvaluateBasic(q, set, fixDoc)
			}
		})
		b.Run(query.ID+"/blocktree", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.Evaluate(q, set, fixDoc, fixTree)
			}
		})
	}
}

// BenchmarkFig10aQuery500 measures a representative query at |M|=500
// (Figure 10(a)).
func BenchmarkFig10aQuery500(b *testing.B) {
	setup(b)
	set := fixSets[500]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateBasic(q, set, fixDoc)
		}
	})
	b.Run("blocktree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.Evaluate(q, set, fixDoc, bt)
		}
	})
}

// BenchmarkFig10bTau measures Q10 under block trees built at different τ
// (Figure 10(b)).
func BenchmarkFig10bTau(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	for _, tau := range []float64{0.02, 0.22, 0.65} {
		bt, err := core.Build(set, core.Options{Tau: tau})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.Evaluate(q, set, fixDoc, bt)
			}
		})
	}
}

// BenchmarkFig10cM measures Q10 across mapping-set sizes (Figure 10(c)).
func BenchmarkFig10cM(b *testing.B) {
	setup(b)
	for _, m := range []int{30, 100, 200} {
		set := fixSets[m]
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("M=%d/basic", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.EvaluateBasic(q, set, fixDoc)
			}
		})
		b.Run(fmt.Sprintf("M=%d/blocktree", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.Evaluate(q, set, fixDoc, bt)
			}
		})
	}
}

// BenchmarkFig10dTopK measures top-k PTQ across k (Figure 10(d)).
func BenchmarkFig10dTopK(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.EvaluateTopK(q, set, fixDoc, fixTree, k)
			}
		})
	}
}

// BenchmarkFig10eGenerate compares top-h mapping generation, murty vs
// partition, on a small and a large dataset (Figure 10(e); h reduced to 10
// to keep the murty baseline affordable under -bench).
func BenchmarkFig10eGenerate(b *testing.B) {
	for _, id := range []string{"D1", "D7"} {
		d := dataset.MustLoad(id)
		for _, method := range []mapgen.Method{mapgen.Murty, mapgen.Partition} {
			b.Run(fmt.Sprintf("%s/%s", id, method), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mapgen.TopH(d.Matching, 10, method); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10fH sweeps h on D1 for both generators (Figure 10(f)).
func BenchmarkFig10fH(b *testing.B) {
	d := dataset.MustLoad("D1")
	for _, h := range []int{100, 500, 1000} {
		for _, method := range []mapgen.Method{mapgen.Murty, mapgen.Partition} {
			b.Run(fmt.Sprintf("h=%d/%s", h, method), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mapgen.TopH(d.Matching, h, method); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationIDSetVsMap compares the bitset mapping-ID sets used in
// blocks against a map-based alternative for the intersection workload that
// dominates Algorithm 2 (DESIGN.md ablation).
func BenchmarkAblationIDSetVsMap(b *testing.B) {
	const n = 500
	a1 := mapping.NewIDSet(n)
	a2 := mapping.NewIDSet(n)
	m1 := map[int]bool{}
	m2 := map[int]bool{}
	for i := 0; i < n; i += 2 {
		a1.Add(i)
		m1[i] = true
	}
	for i := 0; i < n; i += 3 {
		a2.Add(i)
		m2[i] = true
	}
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a1.IntersectLen(a2)
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := 0
			for k := range m1 {
				if m2[k] {
					c++
				}
			}
			_ = c
		}
	})
}

// BenchmarkAblationFilterThenSort isolates the top-k PTQ optimization of
// Section IV-C: filtering and truncating the mapping set before evaluation
// versus evaluating everything and truncating afterwards.
func BenchmarkAblationFilterThenSort(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("topk-prefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateTopK(q, set, fixDoc, fixTree, 10)
		}
	})
	b.Run("evaluate-then-truncate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := core.Evaluate(q, set, fixDoc, fixTree)
			if len(res) > 10 {
				res = res[:10]
			}
			_ = res
		}
	})
}

// BenchmarkAblationLemma2 measures block-tree construction with and without
// the Lemma 2 child-pruning short-circuit (identical output, different
// work; see core.Options).
func BenchmarkAblationLemma2(b *testing.B) {
	setup(b)
	set := fixSets[100]
	b.Run("with-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(set, core.Options{Tau: 0.2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(set, core.Options{Tau: 0.2, NoLemma2Pruning: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIntersectionPruning measures Algorithm 2's incremental
// intersection pruning against full combination enumeration.
func BenchmarkAblationIntersectionPruning(b *testing.B) {
	setup(b)
	set := fixSets[100]
	b.Run("with-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(set, core.Options{Tau: 0.5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-pruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(set, core.Options{Tau: 0.5, NoIntersectionPruning: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Paired sequential-vs-parallel PTQ benchmarks on the largest generated
// mapping set (|M|=500). Compare seq vs par sub-benchmarks to read the
// speedup; par uses every available CPU through internal/engine, so on a
// single-core machine the pair measures the engine's orchestration overhead
// instead.

// BenchmarkPTQBasic pairs core.EvaluateBasic with the engine's parallel
// Algorithm 3.
func BenchmarkPTQBasic(b *testing.B) {
	setup(b)
	set := fixSets[500]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateBasic(q, set, fixDoc)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.EvaluateBasic(q, set, fixDoc)
		}
	})
}

// BenchmarkPTQCompact pairs core.Evaluate with the engine's parallel
// Algorithm 4 (block-tree evaluation).
func BenchmarkPTQCompact(b *testing.B) {
	setup(b)
	set := fixSets[500]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.Evaluate(q, set, fixDoc, bt)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.Evaluate(q, set, fixDoc, bt)
		}
	})
}

// BenchmarkPTQTopK pairs core.EvaluateTopK with the engine's parallel top-k
// evaluation at k = |M|/10.
func BenchmarkPTQTopK(b *testing.B) {
	setup(b)
	set := fixSets[500]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	const k = 50
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateTopK(q, set, fixDoc, bt, k)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.EvaluateTopK(q, set, fixDoc, bt, k)
		}
	})
}

// BenchmarkPTQ*Indexed mirror the sequential/parallel PTQ pairs with the
// positional index attached to the document, so the trajectory tracks all
// four corners: {joined, holistic} × {seq, par}.

func BenchmarkPTQBasicIndexed(b *testing.B) {
	setup(b)
	set := fixSets[500]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateBasic(q, set, fixDocIdx)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.EvaluateBasic(q, set, fixDocIdx)
		}
	})
}

func BenchmarkPTQCompactIndexed(b *testing.B) {
	setup(b)
	set := fixSets[500]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.Evaluate(q, set, fixDocIdx, bt)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.Evaluate(q, set, fixDocIdx, bt)
		}
	})
}

func BenchmarkPTQTopKIndexed(b *testing.B) {
	setup(b)
	set := fixSets[500]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	const k = 50
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.EvaluateTopK(q, set, fixDocIdx, bt, k)
		}
	})
	b.Run("par", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		for i := 0; i < b.N; i++ {
			_ = eng.EvaluateTopK(q, set, fixDocIdx, bt, k)
		}
	})
}

// BenchmarkPTQBatch measures the batched multi-query API over the full
// Table III workload: cold (fresh engine, every pattern parsed) vs warm
// (prepared-query cache hits).
func BenchmarkPTQBatch(b *testing.B) {
	setup(b)
	set := fixSets[100]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]engine.Request, len(dataset.Queries()))
	for i, spec := range dataset.Queries() {
		reqs[i] = engine.Request{Pattern: spec.Text}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
			_ = eng.EvaluateBatch(set, fixDoc, bt, reqs)
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		_ = eng.EvaluateBatch(set, fixDoc, bt, reqs) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.EvaluateBatch(set, fixDoc, bt, reqs)
		}
	})
}

// BenchmarkPTQCollection* sweep shard counts over the ~1M-node generated
// Order corpus: the same total corpus partitioned into 1, 2, 4, and 8
// member documents, evaluated through the engine's scatter-gather path
// (the exact evaluators behind the server's /v1/query). The gathered
// wire output stays byte-identical across the sweep (the cross-shard
// differential suite proves it), so the sub-benchmarks read directly as
// query throughput versus shard count. The plain variant runs the basic
// evaluator over unindexed members — every op pays the full per-mapping
// matcher, so the sweep tracks how the per-shard sub-engines convert
// shard count into wall-clock parallelism (on a single-core host it
// reads as the scatter's cost-neutrality instead: partitioning the
// heavy evaluation must not lose throughput). The Indexed variant
// attaches the positional index to every member and measures the
// steady-state serving path (block tree + per-shard result memo +
// the merger's stream-identity reuse), where per-op work is small and
// the sweep prices the per-shard gather overhead.

const collectionBenchNodes = 1_000_000

var collectionBenchShardCounts = []int{1, 2, 4, 8}

func BenchmarkPTQCollection(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range collectionBenchShardCounts {
		sh := engine.Shards{Docs: fixD7.OrderCorpus(shards, collectionBenchNodes, 42)}
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		runtime.GC() // clear corpus-generation garbage out of the timed region
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.EvaluateBasicAcross(q, set, sh)
			}
		})
	}
}

func BenchmarkPTQCollectionIndexed(b *testing.B) {
	setup(b)
	set := fixSets[100]
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.PrepareQuery(dataset.Queries()[9].Text, set)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range collectionBenchShardCounts {
		docs := fixD7.OrderCorpus(shards, collectionBenchNodes, 42)
		for _, doc := range docs {
			index.Attach(doc)
		}
		sh := engine.Shards{Docs: docs}
		eng := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
		_ = eng.EvaluateAcross(q, set, sh, bt) // warm the per-shard memos
		runtime.GC()
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.EvaluateAcross(q, set, sh, bt)
			}
		})
	}
}

// BenchmarkKeywordQuery measures probabilistic keyword query evaluation
// (the future-work extension) on the D7 workload.
func BenchmarkKeywordQuery(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q := core.PrepareKeywordQuery([]string{"Quantity", "UP"}, set, fixDoc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateKeywords(q, set, fixDoc)
	}
}

// BenchmarkKeywordPrepare pairs keyword-query preparation through the
// index's token posting layer (a scan of the distinct-text vocabulary)
// against the unindexed doc.Nodes() scan. The keyword mixes a schema term
// with value terms, so both the element resolution and the value-term
// resolution are exercised.
func BenchmarkKeywordPrepare(b *testing.B) {
	setup(b)
	set := fixSets[100]
	keywords := []string{"Quantity", "7", "3"}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.PrepareKeywordQuery(keywords, set, fixDocIdx)
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.PrepareKeywordQuery(keywords, set, fixDoc)
		}
	})
}

// BenchmarkPostingsDecode measures full postings materialization — every
// path list of the Order document decoded into fresh slices — for the
// block-compressed layout against the flat reference layout, the raw cost
// the lazily-decoding matcher avoids paying per evaluation.
func BenchmarkPostingsDecode(b *testing.B) {
	setup(b)
	for name, build := range map[string]func(*xmltree.Document) *index.Index{
		"compressed": index.Build,
		"flat":       index.BuildFlat,
	} {
		doc := fixD7.OrderDocument(3473, 42)
		ix := build(doc)
		paths := ix.Paths()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range paths {
					_ = ix.Postings(p)
				}
			}
		})
	}
}

// BenchmarkAggregateQuery measures aggregate PTQ evaluation (the ICDE 2009
// aggregate semantics extension) on the D7 workload.
func BenchmarkAggregateQuery(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[4].Text, set) // Q5 -> Quantity
	if err != nil {
		b.Fatal(err)
	}
	leaf := q.Pattern.Nodes()[q.Pattern.Size()-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.EvaluateAggregate(q, set, fixDoc, fixTree, leaf, core.Sum)
	}
}

// BenchmarkAblationTwigEngine compares the direct twig evaluator against
// the TwigList-style two-phase (filter, then enumerate) evaluator on a
// selective query, where early pruning pays.
func BenchmarkAblationTwigEngine(b *testing.B) {
	setup(b)
	set := fixSets[100]
	q, err := core.PrepareQuery(dataset.Queries()[7].Text, set) // Q8, deep predicates
	if err != nil {
		b.Fatal(err)
	}
	emb := q.Embeddings[0]
	m := set.Mappings[0]
	binding := twig.PathBinding{}
	ok := true
	var walk func(n *twig.Node)
	walk = func(n *twig.Node) {
		s, found := m.SourceFor(emb[n.Index])
		if !found {
			ok = false
			return
		}
		binding[n] = set.Source.ByID(s).Path
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(q.Pattern.Root)
	if !ok {
		b.Skip("best mapping does not cover Q8")
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = twig.MatchByPaths(fixDoc, q.Pattern.Root, binding)
		}
	})
	b.Run("twiglist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = twig.MatchByPathsFiltered(fixDoc, q.Pattern.Root, binding)
		}
	})
}

// deepTwigFixture builds the deep-twig matcher workload: a document whose
// shape punishes per-subtree materialization. Every branch carries a full
// B/C/D chain (a deep sub-match the joined evaluator materializes
// unconditionally), but only one branch in forty also carries the E child
// required to complete a match — exactly the dangling-intermediate pattern
// holistic twig joins were invented to prune. The value-predicate variant
// additionally binds D to a rare text, turning the joined evaluator's
// candidate scan into a value-index lookup.
func deepTwigFixture(withValue bool) (*xmltree.Document, *twig.Node, twig.PathBinding) {
	root := xmltree.NewRoot("R")
	for i := 0; i < 400; i++ {
		a := root.AddChild("A")
		c := a.AddChild("B").AddChild("C")
		c.AddChild("D").AddText(fmt.Sprintf("v%d", i%100))
		if i%40 == 0 {
			a.AddChild("E").AddText("e")
		}
	}
	doc := xmltree.New(root)
	pat := twig.MustParse("A[./B/C/D][./E]")
	if withValue {
		pat = twig.MustParse(`A[./B/C/D="v0"][./E]`)
	}
	n := pat.Nodes() // A, B, C, D, E
	binding := twig.PathBinding{
		n[0]: "R.A", n[1]: "R.A.B", n[2]: "R.A.B.C", n[3]: "R.A.B.C.D", n[4]: "R.A.E",
	}
	return doc, pat.Root, binding
}

// BenchmarkTwigMatchJoined and BenchmarkTwigMatchHolistic pair the joined
// evaluator (per-subtree materialization + interval joins) against the
// holistic indexed matcher on the deep-twig workload; the trajectory file
// BENCH_3.json records the gap. The holistic matcher memoizes repeated
// (pattern, binding) evaluations, so the holistic benchmark cycles
// through distinct clones of the pattern — every iteration is a full
// evaluation, measuring the matcher rather than the memo — and a separate
// /memo sub-benchmark tracks the repeat-evaluation hit path the PTQ
// workload actually rides.
func BenchmarkTwigMatchJoined(b *testing.B) {
	for _, withValue := range []bool{false, true} {
		name := map[bool]string{false: "structural", true: "value"}[withValue]
		doc, qn, binding := deepTwigFixture(withValue)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = twig.MatchByPaths(doc, qn, binding)
			}
		})
	}
}

func BenchmarkTwigMatchHolistic(b *testing.B) {
	for _, withValue := range []bool{false, true} {
		name := map[bool]string{false: "structural", true: "value"}[withValue]
		doc, _, _ := deepTwigFixture(withValue)
		ix := index.Build(doc)
		// Distinct pattern clones with identical text: distinct pattern
		// identity defeats the result memo (the clone count exceeds the
		// memo's per-shard pattern capacity, so cycling them keeps
		// evicting), while identical paths keep the workload constant.
		const clones = 512
		roots := make([]*twig.Node, clones)
		bindings := make([]twig.PathBinding, clones)
		for i := range roots {
			_, qn, binding := deepTwigFixtureBinding(withValue, doc)
			roots[i], bindings[i] = qn, binding
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ix.MatchTwig(doc, roots[i%clones], bindings[i%clones])
			}
		})
		b.Run(name+"-memo", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ix.MatchTwig(doc, roots[0], bindings[0])
			}
		})
	}
}

// deepTwigFixtureBinding parses a fresh pattern instance and binds it to
// the given document — the per-clone unit of the holistic benchmark.
func deepTwigFixtureBinding(withValue bool, doc *xmltree.Document) (*xmltree.Document, *twig.Node, twig.PathBinding) {
	pat := twig.MustParse("A[./B/C/D][./E]")
	if withValue {
		pat = twig.MustParse(`A[./B/C/D="v0"][./E]`)
	}
	n := pat.Nodes()
	binding := twig.PathBinding{
		n[0]: "R.A", n[1]: "R.A.B", n[2]: "R.A.B.C", n[3]: "R.A.B.C.D", n[4]: "R.A.E",
	}
	return doc, pat.Root, binding
}

// BenchmarkAblationLazyMurty compares lazy child evaluation in Murty's
// ranking (children enter the heap with the parent's score as an upper
// bound and are solved only when popped) against eager evaluation, on the
// D7 matching.
func BenchmarkAblationLazyMurty(b *testing.B) {
	d := dataset.MustLoad("D7")
	edges := make([]assignment.Edge, len(d.Matching.Corrs))
	for i, c := range d.Matching.Corrs {
		edges[i] = assignment.Edge{U: c.S, V: c.T, W: c.Score}
	}
	g := assignment.MustNewGraph(d.Source.Len(), d.Target.Len(), edges)
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.TopH(10)
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.TopHEager(10)
		}
	})
}

// BenchmarkDeltaApply vs BenchmarkIndexRebuild: the cost of absorbing a
// small edit batch on the large Order document through the live mutation
// subsystem (copy-on-write revision + index splice) against the cost the
// pre-delta architecture paid — a full positional-index rebuild. The
// delta path also re-derives the document's node list and path index, so
// the comparison understates its advantage if anything. The CI bench gate
// watches the pair: incremental maintenance must stay well ahead of the
// rebuild (the PR-4 acceptance floor is 5x).
func BenchmarkDeltaApply(b *testing.B) {
	setup(b)
	doc := fixD7.OrderDocument(3473, 43)
	h := delta.Open(doc)
	qty := doc.Paths()[0]
	for _, p := range doc.Paths() {
		if strings.HasSuffix(p, ".Quantity") {
			qty = p
			break
		}
	}
	// Address targets by start number — the stable node identity the wire
	// exposes (WireBinding.Start) and the form a mutation-heavy client
	// uses. SetText clones keep their numbers, so the starts stay valid
	// across iterations.
	var starts []int
	for _, n := range doc.NodesByPath(qty) {
		starts = append(starts, n.Start)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := h.Apply([]delta.Edit{
			{Op: delta.OpSetText, Start: starts[i%len(starts)], Text: fmt.Sprintf("%d", i%50)},
			{Op: delta.OpSetText, Start: starts[(i+7)%len(starts)], Text: fmt.Sprintf("%d", (i+9)%50)},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexRebuild(b *testing.B) {
	setup(b)
	doc := fixD7.OrderDocument(3473, 43)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = index.Build(doc)
	}
}

// BenchmarkReplicaReplay is the follower's per-record steady-state cost:
// decode one shipped edit-log response (envelope + frame, the wire format
// of /v1/replicate/stream) and apply its record through the same delta
// path the primary took. This is the floor on replication throughput — a
// follower that can't replay faster than the primary mutates falls behind
// without bound.
func BenchmarkReplicaReplay(b *testing.B) {
	setup(b)
	doc := fixD7.OrderDocument(3473, 43)
	var starts []int
	for _, p := range doc.Paths() {
		if strings.HasSuffix(p, ".Quantity") {
			for _, n := range doc.NodesByPath(p) {
				starts = append(starts, n.Start)
			}
			break
		}
	}
	// Pre-encode a cycle of single-record stream responses, exactly as the
	// primary frames them: an edit log based one epoch below the record.
	const cycle = 128
	blobs := make([][]byte, cycle)
	for i := 0; i < cycle; i++ {
		var buf bytes.Buffer
		if err := store.CreateEditLogAt(&buf, uint64(i)); err != nil {
			b.Fatal(err)
		}
		frame, err := store.EncodeEditRecord(store.EditRecord{
			Epoch: uint64(i) + 1,
			Edits: []delta.Edit{{Op: delta.OpSetText, Start: starts[i%len(starts)], Text: fmt.Sprintf("%d", i%50)}},
		})
		if err != nil {
			b.Fatal(err)
		}
		buf.Write(frame)
		blobs[i] = buf.Bytes()
	}
	replica := delta.Open(fixD7.OrderDocument(3473, 43))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg, err := store.LoadEditLog(bytes.NewReader(blobs[i%cycle]))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := replica.Apply(lg.Records[0].Edits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint prices both halves of compaction on the large Order
// document: save is what the primary pays to truncate a shard's log (and
// bounds how often checkpointing is worth triggering); load is what a
// lagging follower pays to bootstrap — reassembling the document with its
// exact numbering and rebuilding the verified index from the compact
// snapshot.
func BenchmarkCheckpoint(b *testing.B) {
	setup(b)
	doc := fixD7.OrderDocument(3473, 43)
	h := delta.Open(doc)
	snap := h.Snapshot()
	var ref bytes.Buffer
	if err := store.SaveCheckpoint(&ref, snap.Doc, snap.Index, snap.Epoch); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		var buf bytes.Buffer
		b.SetBytes(int64(ref.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := store.SaveCheckpoint(&buf, snap.Doc, snap.Index, snap.Epoch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		blob := ref.Bytes()
		b.SetBytes(int64(len(blob)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFingerprint prices the per-request workload-fingerprint hash —
// computed on every /v1/query after evaluation, so it must stay deep in
// the noise floor of even the cheapest indexed query. The cycle covers
// the Table III queries across the mode/k matrix, exercising the
// canonical-pattern + mode + k framing.
func BenchmarkFingerprint(b *testing.B) {
	queries := dataset.Queries()
	modes := []struct {
		mode string
		k    int
	}{{"basic", 0}, {"compact", 0}, {"topk", 5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		m := modes[i%len(modes)]
		if engine.FingerprintPattern("orders", q.Text, m.mode, m.k) == 0 {
			b.Fatal("zero fingerprint")
		}
	}
}

// BenchmarkWorkloadCapture prices one capture-log append — the write a
// sampled query pays inside the capture mutex. The record mirrors what
// handleQuery logs for a Table III topk query; SetBytes reports the
// framed record size so the trajectory tracks bytes-per-request too.
func BenchmarkWorkloadCapture(b *testing.B) {
	var buf bytes.Buffer
	if err := store.CreateWorkload(&buf, 1); err != nil {
		b.Fatal(err)
	}
	rec := store.WorkloadRecord{
		Fingerprint: 0x9e3779b97f4a7c15,
		Dataset:     "orders",
		Pattern:     "PO/Line/Quantity",
		Mode:        "topk",
		K:           5,
		Epoch:       42,
		LatencyUs:   1375,
		Digest:      0xcafef00ddeadbeef,
	}
	n, err := store.AppendWorkloadRecord(&buf, rec)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf.Len() > 1<<20 {
			buf.Reset()
		}
		if _, err := store.AppendWorkloadRecord(&buf, rec); err != nil {
			b.Fatal(err)
		}
	}
}
