// Integration tests exercising the full pipeline — dataset → possible
// mappings → block tree → PTQ — across every Table II dataset, plus
// persistence and cross-algorithm equivalence checks that tie the modules
// together the way cmd/experiments does.
package xmatch_test

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
	"xmatch/internal/store"
)

func TestPipelineAllDatasets(t *testing.T) {
	for _, id := range dataset.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			d, err := dataset.Load(id)
			if err != nil {
				t.Fatal(err)
			}
			set, err := mapgen.TopH(d.Matching, 50, mapgen.Partition)
			if err != nil {
				t.Fatal(err)
			}
			if set.Len() != 50 {
				t.Fatalf("generated %d mappings, want 50", set.Len())
			}
			var mass float64
			for _, m := range set.Mappings {
				mass += m.Prob
			}
			if math.Abs(mass-1) > 1e-9 {
				t.Fatalf("probability mass %v", mass)
			}
			bt, err := core.Build(set, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := bt.Validate(); err != nil {
				t.Fatal(err)
			}
			comp := bt.Compress()
			for mi, m := range set.Mappings {
				if got := len(comp.Decompress(mi)); got != m.Len() {
					t.Fatalf("mapping %d: decompressed %d pairs, want %d", mi, got, m.Len())
				}
			}
		})
	}
}

func TestPipelineQueriesAgreeD7(t *testing.T) {
	d := dataset.MustLoad("D7")
	set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := d.OrderDocument(3473, 42)
	for _, tau := range []float64{0.05, 0.2, 0.6} {
		bt, err := core.Build(set, core.Options{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		for _, query := range dataset.Queries() {
			q, err := core.PrepareQuery(query.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", query.ID, err)
			}
			basic := core.EvaluateBasic(q, set, doc)
			tree := core.Evaluate(q, set, doc, bt)
			if !resultsEqual(basic, tree) {
				t.Fatalf("tau=%v %s: basic and block-tree disagree", tau, query.ID)
			}
		}
	}
}

func resultsEqual(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(rs []core.Result) map[int][]string {
		out := map[int][]string{}
		for _, r := range rs {
			keys := make([]string, len(r.Matches))
			for i, m := range r.Matches {
				keys[i] = m.Key()
			}
			sort.Strings(keys)
			out[r.MappingIndex] = keys
		}
		return out
	}
	return reflect.DeepEqual(key(a), key(b))
}

func TestPipelinePersistenceRoundTrip(t *testing.T) {
	d := dataset.MustLoad("D6")
	set, err := mapgen.TopH(d.Matching, 30, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.SaveSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := store.LoadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded set must produce an identical block tree.
	bt1, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bt2, err := core.Build(back, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bt1.NumBlocks != bt2.NumBlocks {
		t.Fatalf("block counts differ after persistence: %d vs %d", bt1.NumBlocks, bt2.NumBlocks)
	}
	if err := bt2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineGeneratorsAgreeAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("murty on the large datasets is slow")
	}
	for _, id := range []string{"D1", "D2", "D3", "D4", "D5", "D6", "D8"} {
		d := dataset.MustLoad(id)
		a, err := mapgen.TopH(d.Matching, 20, mapgen.Murty)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mapgen.TopH(d.Matching, 20, mapgen.Partition)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d vs %d mappings", id, a.Len(), b.Len())
		}
		for i := range a.Mappings {
			if math.Abs(a.Mappings[i].Score-b.Mappings[i].Score) > 1e-9 {
				t.Fatalf("%s rank %d: scores differ", id, i)
			}
		}
	}
}
