package main

// Kill-and-restart crash recovery over the real binary: xmatchd is
// SIGKILLed in the middle of a mutation burst — no graceful shutdown, no
// final fsync beyond the per-batch ones — and restarted on the same edit
// log. Every acknowledged mutation must survive, the replayed epoch must
// be consistent (never past what was sent, never short of what was
// acknowledged), and the reopened log must accept new appends.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary crash tests in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "xmatchd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// startDaemon launches xmatchd serving built-in D1 with a durable edit
// log in dir, and waits until it answers /healthz.
func startDaemon(t *testing.T, bin, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-datasets", "D1", "-m", "8", "-doc", "300", "-seed", "3",
		"-editlog-dir", dir,
		"-log-level", "error",
	)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// daemonEpoch reads dataset D1's epoch from the daemon's /statsz.
func daemonEpoch(t *testing.T, addr string) uint64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, ds := range st.Datasets {
		if ds.Name == "D1" {
			return ds.Epoch
		}
	}
	t.Fatal("statsz has no D1 dataset")
	return 0
}

func TestCrashRecoveryAfterSIGKILL(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	cmd := startDaemon(t, bin, addr, dir)

	// The daemon's built-in D1 is deterministic: regenerate the same
	// document in-process to learn stable edit paths.
	cat, err := server.BuildCatalog(&store.Catalog{Entries: []store.CatalogEntry{
		{Name: "D1", Dataset: "D1", Mappings: 8, DocNodes: 300, DocSeed: 3},
	}}, ".", engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc := cat.Get("D1").Doc()
	var textPaths []string
	for _, p := range doc.Paths() {
		if ns := doc.NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
			textPaths = append(textPaths, p)
		}
	}
	if len(textPaths) == 0 {
		t.Fatal("fixture has no text leaves")
	}

	mutate := func(i int) (uint64, error) {
		body, _ := json.Marshal(server.MutateRequest{Dataset: "D1", Edits: []delta.Edit{{
			Op:   delta.OpSetText,
			Path: textPaths[i%len(textPaths)],
			Text: fmt.Sprintf("crash-%d-%s", i, strings.Repeat("y", i%7)),
		}}})
		resp, err := http.Post("http://"+addr+"/v1/admin/mutate", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var mr server.MutateResponse
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("mutate %d: status %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			return 0, err
		}
		return mr.Epoch, nil
	}

	// Burst mutations from a background writer and SIGKILL the daemon
	// mid-burst. acked is the highest epoch the daemon acknowledged — the
	// durability floor; sent bounds the ceiling.
	var acked, sent atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			sent.Store(uint64(i + 1))
			epoch, err := mutate(i)
			if err != nil {
				return // the kill landed; in-flight mutation dies with it
			}
			acked.Store(epoch)
		}
	}()
	for acked.Load() < 8 { // let the burst get going before the kill
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	<-done
	ackedN, sentN := acked.Load(), sent.Load()
	if ackedN >= 500 {
		t.Fatal("burst completed before the kill; raise the burst size")
	}
	t.Logf("killed daemon with %d mutations acknowledged, %d sent", ackedN, sentN)

	// Restart on the same edit log: replay must reach at least every
	// acknowledged epoch and at most what was ever sent.
	addr2 := freeAddr(t)
	startDaemon(t, bin, addr2, dir)
	epoch := daemonEpoch(t, addr2)
	if epoch < ackedN {
		t.Fatalf("recovered epoch %d lost acknowledged mutations (acked %d)", epoch, ackedN)
	}
	if epoch > sentN {
		t.Fatalf("recovered epoch %d exceeds the %d mutations ever sent", epoch, sentN)
	}

	// The reopened log must keep working: one more acknowledged mutation
	// advances the epoch by exactly one.
	addr = addr2
	next, err := mutate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if next != epoch+1 {
		t.Fatalf("post-recovery mutation produced epoch %d, want %d", next, epoch+1)
	}
}
