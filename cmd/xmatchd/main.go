// Command xmatchd is the PTQ serving daemon: a long-running HTTP/JSON
// server that owns a multi-tenant catalog of prepared datasets (mapping set
// + document + block tree + per-dataset engine) and answers probabilistic
// twig queries over them.
//
// Usage:
//
//	xmatchd -datasets D1,D7                      # serve built-in workloads
//	xmatchd -manifest catalog.xm                 # serve a store catalog manifest
//	xmatchd -datasets D7 -write-manifest c.xm    # author a manifest and exit
//	xmatchd -follow http://primary:8777          # read replica of a primary
//
// Endpoints: POST /v1/query, POST /v1/batch, GET /v1/datasets, GET
// /healthz, GET /readyz (503 while draining for shutdown), GET /statsz,
// GET /metricsz (Prometheus text exposition), GET
// /v1/debug/traces (tail-sampled slow-query traces), POST /v1/admin/reload
// (rebuilds the catalog from the manifest — edit the file, hit the
// endpoint, no restart), POST /v1/admin/mutate, POST /v1/admin/checkpoint
// (compacts each durable shard's edit log into a checkpoint blob), and the
// replication surface (/v1/replicate/{manifest,stream,checkpoint}) a
// follower consumes.
//
// A follower (-follow) fetches the primary's manifest, rebuilds the same
// catalog locally, then tails each shard's edit log over HTTP — replaying
// records through the same delta path the primary used, so replica state
// is byte-identical at every epoch. When the primary has compacted the
// history away, the follower bootstraps from a checkpoint blob instead.
// Followers are read-only (admin endpoints answer 403), report per-shard
// replication lag on /statsz and /metricsz, and degrade /healthz (503)
// when the worst shard falls more than -max-lag epochs behind.
//
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level the floor. Slow requests log with the same request ID the
// X-Request-Id response header and /v1/debug/traces carry. -debug-addr
// starts a second listener serving net/http/pprof (off by default).
//
// Workload intelligence: every query is fingerprinted (canonical pattern
// + mode + k + dataset) and accounted per fingerprint; GET
// /v1/debug/workload serves the hottest fingerprints with sliding-window
// latency quantiles. -slo-target sets a query latency SLO: /metricsz
// gains burn-rate gauges and /healthz reports "degraded" detail while
// the error budget burns faster than it accrues (-slo-objective,
// -slo-window tune it). -capture appends a sampled (-capture-sample),
// disk-budgeted (-capture-budget) binary log of served queries — with a
// selectivity-profile sidecar — that `xmatch workload replay` re-runs
// against a daemon or a local catalog and byte-diffs.
//
// Query it with curl or the bundled client:
//
//	curl -s localhost:8777/v1/query -d '{"dataset":"D7","pattern":"Order/DeliverTo/Contact/EMail","k":5,"mode":"topk"}'
//	xmatch query -remote http://localhost:8777 -d D7 -q 'Order//EMail'
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"xmatch/internal/engine"
	"xmatch/internal/obs"
	"xmatch/internal/replica"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// config carries every flag the daemon parses.
type config struct {
	addr           string
	manifest       string
	datasets       string
	mappings       int
	docNodes       int
	docSeed        int64
	shards         int
	tau            float64
	workers        int
	reqWorkers     int
	cache          int
	editlogDir     string
	fsync          bool
	follow         string
	followInterval time.Duration
	writeManifest  string
	logFormat      string
	logLevel       string
	debugAddr      string
	traceThreshold time.Duration
	maxLag         int64
	sloTarget      time.Duration
	sloObjective   float64
	sloWindow      time.Duration
	capture        string
	captureSample  int
	captureBudget  int64
	queryTimeout   time.Duration
	maxInflight    int
	maxQueue       int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8777", "listen address")
	flag.StringVar(&cfg.manifest, "manifest", "", "store catalog manifest to serve (overrides -datasets)")
	flag.StringVar(&cfg.datasets, "datasets", "D7", "comma-separated built-in dataset IDs to serve")
	flag.IntVar(&cfg.mappings, "m", server.DefaultMappings, "possible mappings per built-in dataset")
	flag.IntVar(&cfg.docNodes, "doc", server.DefaultDocNodes, "document size per built-in dataset")
	flag.Int64Var(&cfg.docSeed, "seed", 42, "document generator seed")
	flag.IntVar(&cfg.shards, "shards", 1, "member documents per built-in dataset (-doc nodes total across them); >1 serves a scatter-gather collection")
	flag.Float64Var(&cfg.tau, "tau", 0.2, "block-tree confidence threshold")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool size per dataset engine (0 = all cores)")
	flag.IntVar(&cfg.reqWorkers, "request-workers", 0, "per-request worker budget (0 = half the pool, <0 = sequential)")
	flag.IntVar(&cfg.cache, "cache", engine.DefaultCacheCapacity, "prepared-query cache capacity per dataset")
	flag.StringVar(&cfg.editlogDir, "editlog-dir", "", "persist /v1/admin/mutate batches per built-in dataset as <dir>/<name>.editlog, replayed on start and reload (built-in -datasets mode only; manifests carry their own EditLogPath)")
	flag.BoolVar(&cfg.fsync, "fsync", true, "fsync durable edit-log appends before acknowledging a mutation; -fsync=false trades crash durability of the latest batches for write latency")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read replica of the primary at this base URL (e.g. http://primary:8777): fetch its manifest, replay its edit logs, bootstrap from its checkpoints; local admin endpoints become read-only")
	flag.DurationVar(&cfg.followInterval, "follow-interval", 500*time.Millisecond, "poll interval between replication sync rounds in -follow mode")
	flag.StringVar(&cfg.writeManifest, "write-manifest", "", "write the built-in -datasets selection as a manifest file and exit")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on a separate listener at this address (empty = off)")
	flag.DurationVar(&cfg.traceThreshold, "trace-threshold", 100*time.Millisecond, "retain a request's trace on /v1/debug/traces when its latency reaches this threshold; 0 retains every trace, negative disables retention")
	flag.Int64Var(&cfg.maxLag, "max-lag", 1000, "in -follow mode, epochs behind the primary (worst shard) before /healthz reports degraded; negative disables the check")
	flag.DurationVar(&cfg.sloTarget, "slo-target", 0, "query latency SLO target (e.g. 50ms): /metricsz exposes the error-budget burn rate and /healthz degrades while the budget burns hot; 0 disables")
	flag.Float64Var(&cfg.sloObjective, "slo-objective", 0.99, "fraction of queries that must meet -slo-target")
	flag.DurationVar(&cfg.sloWindow, "slo-window", 5*time.Minute, "sliding window behind the SLO burn rate and windowed latency quantiles")
	flag.StringVar(&cfg.capture, "capture", "", "append a sampled binary log of served queries (fingerprint, pattern, epoch, latency, result digest) to this file for `xmatch workload replay`; truncated at start, empty disables")
	flag.IntVar(&cfg.captureSample, "capture-sample", 1, "capture 1 in N queries")
	flag.Int64Var(&cfg.captureBudget, "capture-budget", 64<<20, "stop capturing once the file reaches this many bytes")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 30*time.Second, "request deadline for every /v1 endpoint; a request's timeout_ms may tighten but never exceed it; expired requests answer 503; negative disables")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrently evaluating query/batch requests before new ones queue (0 = 4x GOMAXPROCS, negative disables admission control)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "requests allowed to wait for an admission slot before the server sheds with 429 (0 = 2x -max-inflight)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xmatchd:", err)
		os.Exit(1)
	}
}

// builtinManifest assembles a manifest from a comma-separated ID list.
// With editlog set, each entry persists its mutations to <name>.editlog
// (resolved against the loader's base directory).
func builtinManifest(cfg config) (*store.Catalog, error) {
	var man store.Catalog
	for _, id := range strings.Split(cfg.datasets, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e := store.CatalogEntry{
			Name: id, Dataset: id, Mappings: cfg.mappings,
			DocNodes: cfg.docNodes, DocSeed: cfg.docSeed, Shards: cfg.shards, Tau: cfg.tau,
		}
		if cfg.editlogDir != "" {
			e.EditLogPath = id + ".editlog"
		}
		man.Entries = append(man.Entries, e)
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	return &man, nil
}

func run(cfg config) error {
	logger, err := obs.NewLogger(cfg.logFormat, cfg.logLevel, os.Stderr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	eopts := engine.Options{Workers: cfg.workers, CacheCapacity: cfg.cache}

	if cfg.editlogDir != "" {
		// Create it up front: the daemon starts fine against a missing
		// directory (no logs yet = pristine datasets), but the first
		// mutation's append would fail with a confusing 500.
		if err := os.MkdirAll(cfg.editlogDir, 0o755); err != nil {
			return fmt.Errorf("creating -editlog-dir: %w", err)
		}
	}

	// loadManifest re-reads the manifest source on every call, so a reload
	// after editing the manifest file picks up the changes.
	loadManifest := func() (*store.Catalog, string, error) {
		if cfg.manifest == "" {
			man, err := builtinManifest(cfg)
			baseDir := "."
			if cfg.editlogDir != "" {
				baseDir = cfg.editlogDir
			}
			return man, baseDir, err
		}
		f, err := os.Open(cfg.manifest)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		man, err := store.LoadCatalog(f)
		if err != nil {
			return nil, "", fmt.Errorf("manifest %s: %w", cfg.manifest, err)
		}
		return man, filepath.Dir(cfg.manifest), nil
	}

	if cfg.writeManifest != "" {
		man, err := builtinManifest(cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(cfg.writeManifest)
		if err != nil {
			return err
		}
		if err := store.SaveCatalog(f, man); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote manifest with %d dataset(s) to %s\n", len(man.Entries), cfg.writeManifest)
		return nil
	}

	copts := server.CatalogOptions{NoFsync: !cfg.fsync}
	loader := func() (*server.Catalog, error) {
		man, baseDir, err := loadManifest()
		if err != nil {
			return nil, err
		}
		return server.BuildCatalogOpts(man, baseDir, eopts, copts)
	}

	traceThreshold := cfg.traceThreshold
	if traceThreshold == 0 {
		// The flag's 0 means "retain every trace"; the Options zero value
		// means "server default", so express retain-all as the smallest
		// positive threshold.
		traceThreshold = time.Nanosecond
	}
	sopts := server.Options{
		RequestWorkers:     cfg.reqWorkers,
		TraceThreshold:     traceThreshold,
		MaxLagEpochs:       cfg.maxLag,
		Logger:             logger,
		SLOTarget:          cfg.sloTarget,
		SLOObjective:       cfg.sloObjective,
		SLOWindow:          cfg.sloWindow,
		CapturePath:        cfg.capture,
		CaptureSampleN:     cfg.captureSample,
		CaptureBudgetBytes: cfg.captureBudget,
		QueryTimeout:       cfg.queryTimeout,
		MaxInflight:        cfg.maxInflight,
		MaxQueue:           cfg.maxQueue,
	}
	if cfg.queryTimeout == 0 {
		// The flag's explicit 0 means "no deadline"; the Options zero value
		// means "server default", so express disabled as negative.
		sopts.QueryTimeout = -1
	}

	start := time.Now()
	var srv *server.Server
	if cfg.follow != "" {
		// Replica mode: the catalog comes from the primary's manifest, the
		// state from its edit logs and checkpoints. The sync loop runs for
		// the life of the process.
		var f *replica.Follower
		srv, f, err = server.NewFollower(cfg.follow, server.FollowerOptions{
			Server: sopts,
			Engine: eopts,
		})
		if err != nil {
			return fmt.Errorf("following %s: %w", cfg.follow, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go f.Run(ctx, cfg.followInterval)
		logger.Info("following primary", "primary", cfg.follow, "interval", cfg.followInterval.String())
	} else {
		sopts.Manifest = func() (*store.Catalog, error) {
			man, _, merr := loadManifest()
			return man, merr
		}
		srv, err = server.New(loader, sopts)
	}
	if err != nil {
		return err
	}
	for _, d := range srv.Catalog().Datasets() {
		var nodes, idxBytes int
		var epoch uint64
		var build time.Duration
		for _, sh := range d.Shards() {
			snap := sh.Live.Snapshot()
			xs := snap.Index.Stats()
			nodes += snap.Doc.Len()
			idxBytes += xs.ResidentBytes
			build += xs.BuildTime
			if snap.Epoch > epoch {
				epoch = snap.Epoch
			}
		}
		logger.Info("dataset ready",
			"dataset", d.Name,
			"mappings", d.Set.Len(),
			"shards", d.NumShards(),
			"docNodes", nodes,
			"epoch", epoch,
			"blocks", d.Tree.Stats().NumBlocks,
			"indexBytes", idxBytes,
			"buildMs", float64(build.Microseconds())/1e3)
	}
	logger.Info("catalog ready", "elapsed", time.Since(start).Round(time.Millisecond).String())
	if cfg.capture != "" {
		logger.Info("workload capture enabled", "path", cfg.capture, "sample", cfg.captureSample, "budgetBytes", cfg.captureBudget)
	}

	if cfg.debugAddr != "" {
		// pprof rides a separate listener so profiling exposure is an
		// explicit deployment decision, never implied by the serving port.
		dbg := &http.Server{Addr: cfg.debugAddr, Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener (pprof)", "addr", cfg.debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	logger.Info("listening", "addr", cfg.addr)
	hs := &http.Server{Addr: cfg.addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		// Flip /readyz to 503 before closing the listener: load balancers
		// probing readiness stop routing here while Shutdown drains the
		// requests already in flight.
		srv.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(ctx)
		// Closing the server flushes the workload capture's final
		// selectivity-profile sidecar.
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
		return err
	}
}
