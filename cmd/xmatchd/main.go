// Command xmatchd is the PTQ serving daemon: a long-running HTTP/JSON
// server that owns a multi-tenant catalog of prepared datasets (mapping set
// + document + block tree + per-dataset engine) and answers probabilistic
// twig queries over them.
//
// Usage:
//
//	xmatchd -datasets D1,D7                      # serve built-in workloads
//	xmatchd -manifest catalog.xm                 # serve a store catalog manifest
//	xmatchd -datasets D7 -write-manifest c.xm    # author a manifest and exit
//	xmatchd -follow http://primary:8777          # read replica of a primary
//
// Endpoints: POST /v1/query, POST /v1/batch, GET /v1/datasets, GET
// /healthz, GET /statsz, POST /v1/admin/reload (rebuilds the catalog from
// the manifest — edit the file, hit the endpoint, no restart), POST
// /v1/admin/mutate, POST /v1/admin/checkpoint (compacts each durable
// shard's edit log into a checkpoint blob), and the replication surface
// (/v1/replicate/{manifest,stream,checkpoint}) a follower consumes.
//
// A follower (-follow) fetches the primary's manifest, rebuilds the same
// catalog locally, then tails each shard's edit log over HTTP — replaying
// records through the same delta path the primary used, so replica state
// is byte-identical at every epoch. When the primary has compacted the
// history away, the follower bootstraps from a checkpoint blob instead.
// Followers are read-only (admin endpoints answer 403) and report
// per-shard replication lag on /statsz.
//
// Query it with curl or the bundled client:
//
//	curl -s localhost:8777/v1/query -d '{"dataset":"D7","pattern":"Order/DeliverTo/Contact/EMail","k":5,"mode":"topk"}'
//	xmatch query -remote http://localhost:8777 -d D7 -q 'Order//EMail'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"xmatch/internal/engine"
	"xmatch/internal/replica"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

func main() {
	addr := flag.String("addr", ":8777", "listen address")
	manifest := flag.String("manifest", "", "store catalog manifest to serve (overrides -datasets)")
	datasets := flag.String("datasets", "D7", "comma-separated built-in dataset IDs to serve")
	m := flag.Int("m", server.DefaultMappings, "possible mappings per built-in dataset")
	docNodes := flag.Int("doc", server.DefaultDocNodes, "document size per built-in dataset")
	docSeed := flag.Int64("seed", 42, "document generator seed")
	shards := flag.Int("shards", 1, "member documents per built-in dataset (-doc nodes total across them); >1 serves a scatter-gather collection")
	tau := flag.Float64("tau", 0.2, "block-tree confidence threshold")
	workers := flag.Int("workers", 0, "worker-pool size per dataset engine (0 = all cores)")
	reqWorkers := flag.Int("request-workers", 0, "per-request worker budget (0 = half the pool, <0 = sequential)")
	cache := flag.Int("cache", engine.DefaultCacheCapacity, "prepared-query cache capacity per dataset")
	editlogDir := flag.String("editlog-dir", "", "persist /v1/admin/mutate batches per built-in dataset as <dir>/<name>.editlog, replayed on start and reload (built-in -datasets mode only; manifests carry their own EditLogPath)")
	fsync := flag.Bool("fsync", true, "fsync durable edit-log appends before acknowledging a mutation; -fsync=false trades crash durability of the latest batches for write latency")
	follow := flag.String("follow", "", "run as a read replica of the primary at this base URL (e.g. http://primary:8777): fetch its manifest, replay its edit logs, bootstrap from its checkpoints; local admin endpoints become read-only")
	followInterval := flag.Duration("follow-interval", 500*time.Millisecond, "poll interval between replication sync rounds in -follow mode")
	writeManifest := flag.String("write-manifest", "", "write the built-in -datasets selection as a manifest file and exit")
	flag.Parse()

	if err := run(*addr, *manifest, *datasets, *m, *docNodes, *docSeed, *shards, *tau,
		*workers, *reqWorkers, *cache, *editlogDir, *writeManifest,
		*fsync, *follow, *followInterval); err != nil {
		fmt.Fprintln(os.Stderr, "xmatchd:", err)
		os.Exit(1)
	}
}

// builtinManifest assembles a manifest from a comma-separated ID list.
// With editlog set, each entry persists its mutations to <name>.editlog
// (resolved against the loader's base directory).
func builtinManifest(datasets string, m, docNodes int, docSeed int64, shards int, tau float64, editlog bool) (*store.Catalog, error) {
	var man store.Catalog
	for _, id := range strings.Split(datasets, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e := store.CatalogEntry{
			Name: id, Dataset: id, Mappings: m,
			DocNodes: docNodes, DocSeed: docSeed, Shards: shards, Tau: tau,
		}
		if editlog {
			e.EditLogPath = id + ".editlog"
		}
		man.Entries = append(man.Entries, e)
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	return &man, nil
}

func run(addr, manifest, datasets string, m, docNodes int, docSeed int64, shards int, tau float64,
	workers, reqWorkers, cache int, editlogDir, writeManifest string,
	fsync bool, follow string, followInterval time.Duration) error {

	eopts := engine.Options{Workers: workers, CacheCapacity: cache}

	if editlogDir != "" {
		// Create it up front: the daemon starts fine against a missing
		// directory (no logs yet = pristine datasets), but the first
		// mutation's append would fail with a confusing 500.
		if err := os.MkdirAll(editlogDir, 0o755); err != nil {
			return fmt.Errorf("creating -editlog-dir: %w", err)
		}
	}

	// loadManifest re-reads the manifest source on every call, so a reload
	// after editing the manifest file picks up the changes.
	loadManifest := func() (*store.Catalog, string, error) {
		if manifest == "" {
			man, err := builtinManifest(datasets, m, docNodes, docSeed, shards, tau, editlogDir != "")
			baseDir := "."
			if editlogDir != "" {
				baseDir = editlogDir
			}
			return man, baseDir, err
		}
		f, err := os.Open(manifest)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		man, err := store.LoadCatalog(f)
		if err != nil {
			return nil, "", fmt.Errorf("manifest %s: %w", manifest, err)
		}
		return man, filepath.Dir(manifest), nil
	}

	if writeManifest != "" {
		man, err := builtinManifest(datasets, m, docNodes, docSeed, shards, tau, editlogDir != "")
		if err != nil {
			return err
		}
		f, err := os.Create(writeManifest)
		if err != nil {
			return err
		}
		if err := store.SaveCatalog(f, man); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote manifest with %d dataset(s) to %s\n", len(man.Entries), writeManifest)
		return nil
	}

	copts := server.CatalogOptions{NoFsync: !fsync}
	loader := func() (*server.Catalog, error) {
		man, baseDir, err := loadManifest()
		if err != nil {
			return nil, err
		}
		return server.BuildCatalogOpts(man, baseDir, eopts, copts)
	}

	start := time.Now()
	var srv *server.Server
	var err error
	if follow != "" {
		// Replica mode: the catalog comes from the primary's manifest, the
		// state from its edit logs and checkpoints. The sync loop runs for
		// the life of the process.
		var f *replica.Follower
		srv, f, err = server.NewFollower(follow, server.FollowerOptions{
			Server: server.Options{RequestWorkers: reqWorkers},
			Engine: eopts,
		})
		if err != nil {
			return fmt.Errorf("following %s: %w", follow, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go f.Run(ctx, followInterval)
		log.Printf("xmatchd: following %s (sync every %v, serving read-only)", follow, followInterval)
	} else {
		srv, err = server.New(loader, server.Options{
			RequestWorkers: reqWorkers,
			Manifest: func() (*store.Catalog, error) {
				man, _, merr := loadManifest()
				return man, merr
			},
		})
	}
	if err != nil {
		return err
	}
	var names []string
	for _, d := range srv.Catalog().Datasets() {
		var nodes, idxBytes int
		var epoch uint64
		var build time.Duration
		for _, sh := range d.Shards() {
			snap := sh.Live.Snapshot()
			xs := snap.Index.Stats()
			nodes += snap.Doc.Len()
			idxBytes += xs.ResidentBytes
			build += xs.BuildTime
			if snap.Epoch > epoch {
				epoch = snap.Epoch
			}
		}
		names = append(names, fmt.Sprintf("%s(|M|=%d shards=%d doc=%d epoch=%d blocks=%d idx=%dB/%v)",
			d.Name, d.Set.Len(), d.NumShards(), nodes, epoch, d.Tree.Stats().NumBlocks,
			idxBytes, build.Round(time.Millisecond)))
	}
	log.Printf("xmatchd: catalog ready in %v: %s", time.Since(start).Round(time.Millisecond), strings.Join(names, " "))
	log.Printf("xmatchd: listening on %s", addr)

	hs := &http.Server{Addr: addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("xmatchd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
