// Command experiments regenerates the tables and figures of the paper's
// evaluation (Cheng, Gong, Cheung: "Managing Uncertainty of XML Schema
// Matching", ICDE 2010, Section VI) on the synthetic Table II datasets.
//
// Usage:
//
//	experiments -exp all            # every table and figure
//	experiments -exp fig9f          # one experiment
//	experiments -list               # list experiment names
//	experiments -exp fig10e -h 20   # smaller h for a quicker run
package main

import (
	"flag"
	"fmt"
	"os"

	"xmatch/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (or \"all\")")
		list     = flag.Bool("list", false, "list experiment names and exit")
		m        = flag.Int("m", 100, "number of possible mappings |M|")
		repeats  = flag.Int("repeats", 5, "timing repetitions per data point")
		docNodes = flag.Int("doc", 3473, "source document size in nodes")
		genH     = flag.Int("h", 100, "h for the mapping-generation experiments")
		maxH     = flag.Int("maxh", 1000, "largest h in the fig10f sweep")
		format   = flag.String("format", "text", "output format: text or csv")
		genReps  = flag.Int("genrepeats", 0, "repeats for the generation experiments (0 = same as -repeats)")
		workers  = flag.Int("workers", 0, "worker-sweep cap for the scale experiment (0 = GOMAXPROCS)")
	)
	flag.Parse()

	suite := experiments.NewSuite(experiments.Config{
		M: *m, Repeats: *repeats, DocNodes: *docNodes, GenH: *genH, MaxH: *maxH,
		GenRepeats: *genReps, MaxWorkers: *workers,
	})
	if *list {
		for _, n := range suite.Names() {
			fmt.Println(n)
		}
		return
	}
	run := suite.Run
	if *format == "csv" {
		run = suite.RunCSV
	} else if *format != "text" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err := run(*exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
