// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark-trajectory file: a map from benchmark name to its measured
// ns/op (and, with -benchmem, B/op and allocs/op). CI runs the benchmark
// smoke pass through it and uploads the result (BENCH_<pr>.json) so the
// repository accumulates a perf trajectory across PRs.
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"B_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_op,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Benchmark<Name>-<P> <N> <ns> ns/op [<B> B/op <allocs> allocs/op]
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the GOMAXPROCS suffix so names are machine-portable.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Metrics{}
		var err error
		if m.NsPerOp, err = strconv.ParseFloat(f[2], 64); err != nil {
			continue
		}
		for i := 3; i+2 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i+1], 64)
			if err != nil {
				continue
			}
			switch f[i+2] {
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
