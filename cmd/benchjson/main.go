// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark-trajectory file: a map from benchmark name to its measured
// ns/op (and, with -benchmem, B/op and allocs/op). CI runs the benchmark
// smoke pass through it and uploads the result (BENCH_<pr>.json) so the
// repository accumulates a perf trajectory across PRs.
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_4.json
//
// Running the benchmarks with -count N folds naturally into this: each
// benchmark's fastest sample wins (see parseBench), which is the cheap
// way to keep scheduler noise on a shared CI runner out of the gate.
//
// With -prev it additionally gates regressions: every benchmark matching
// -gate that appears in both the previous trajectory file and the current
// run is compared on ns/op, and any slowdown beyond -maxregress fails the
// command (after the current trajectory has been written to stdout, so
// the artifact survives the failing job for diagnosis):
//
//	go test -run '^$' -bench . -benchmem . | \
//	  benchjson -prev BENCH_3.json -gate 'BenchmarkPTQ' -maxregress 0.25 > BENCH_4.json
//
// The gate's missing-benchmark policy is explicit and asymmetric. A gated
// benchmark that exists only in the current run is new: reported, never a
// failure — adding benchmarks must not brick CI. A gated benchmark that
// exists in -prev but vanished from the current run is a hard error by
// default: a silently dropped (or renamed) benchmark is exactly how a
// regression escapes the gate. Pass -allow-missing when the removal is
// intentional to downgrade it to a reported skip. A baseline with a
// non-positive ns/op (a hand-edited or corrupt trajectory entry) cannot
// be compared and is skipped with a warning, never silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurements.
type Metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  float64 `json:"B_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_op,omitempty"`
}

func main() {
	prev := flag.String("prev", "", "previous trajectory JSON to gate against (no gating when empty)")
	gate := flag.String("gate", "Benchmark", "regexp selecting the hot benchmarks the gate watches")
	maxRegress := flag.Float64("maxregress", 0.25, "maximum tolerated fractional ns/op slowdown vs -prev (0.25 = +25%)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate gated benchmarks present in -prev but absent from the current run (default: hard error)")
	flag.Parse()

	if err := run(*prev, *gate, *maxRegress, *allowMissing); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(prevPath, gatePattern string, maxRegress float64, allowMissing bool) error {
	cur, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cur); err != nil {
		return err
	}
	if prevPath == "" {
		return nil
	}
	return gateAgainst(cur, prevPath, gatePattern, maxRegress, allowMissing)
}

// parseBench reads `go test -bench` output into the trajectory map. A
// benchmark appearing several times — `go test -count N` — keeps its
// fastest sample: ns/op noise on a loaded machine is one-sided (nothing
// makes code run faster than it can), so the minimum is the stable
// noise-floor estimate, and gating on it keeps a busy-neighbor blip from
// reading as a regression.
func parseBench(f *os.File) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Benchmark<Name>-<P> <N> <ns> ns/op [<B> B/op <allocs> allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the GOMAXPROCS suffix so names are machine-portable.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Metrics{}
		var err error
		if m.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 3; i+2 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				continue
			}
			switch fields[i+2] {
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if prev, ok := out[name]; ok && prev.NsPerOp <= m.NsPerOp {
			continue // -count repeat: keep the fastest sample
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return out, nil
}

// gateAgainst compares the current run to the previous trajectory and
// fails on gated slowdowns beyond maxRegress — or on gated benchmarks
// that vanished from the current run, unless allowMissing.
func gateAgainst(cur map[string]Metrics, prevPath, gatePattern string, maxRegress float64, allowMissing bool) error {
	data, err := os.ReadFile(prevPath)
	if err != nil {
		return fmt.Errorf("reading -prev: %w", err)
	}
	var prev map[string]Metrics
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("parsing -prev %s: %w", prevPath, err)
	}
	re, err := regexp.Compile(gatePattern)
	if err != nil {
		return fmt.Errorf("bad -gate pattern: %w", err)
	}

	names := make([]string, 0, len(prev)+len(cur))
	for name := range prev {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := prev[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var failures, missing []string
	compared := 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			// Gated but gone from the current run. Deleting (or renaming) a
			// watched benchmark is how a regression escapes the gate, so by
			// default this fails; -allow-missing records the removal as
			// intentional.
			if allowMissing {
				fmt.Fprintf(os.Stderr, "benchjson: gate: %-45s only in %s (missing allowed, skipped)\n", name, prevPath)
				continue
			}
			fmt.Fprintf(os.Stderr, "benchjson: gate: %-45s only in %s (MISSING)\n", name, prevPath)
			missing = append(missing, name)
			continue
		}
		if _, ok := prev[name]; !ok {
			// New or renamed: visible in the report so a rename cannot
			// silently hide a regression, but never a failure.
			fmt.Fprintf(os.Stderr, "benchjson: gate: %-45s %10s -> %10.0f ns/op  (new, skipped)\n", name, "-", c.NsPerOp)
			continue
		}
		p := prev[name]
		if p.NsPerOp <= 0 {
			// A non-positive baseline cannot produce a meaningful ratio;
			// say so instead of silently shrinking the compared set.
			fmt.Fprintf(os.Stderr, "benchjson: gate: %-45s baseline %.0f ns/op unusable (skipped)\n", name, p.NsPerOp)
			continue
		}
		compared++
		ratio := c.NsPerOp / p.NsPerOp
		verdict := "ok"
		if ratio > 1+maxRegress {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				name, p.NsPerOp, c.NsPerOp, 100*(ratio-1)))
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate: %-45s %10.0f -> %10.0f ns/op  %+6.1f%%  %s\n",
			name, p.NsPerOp, c.NsPerOp, 100*(ratio-1), verdict)
	}
	if len(missing) > 0 {
		return fmt.Errorf("%d gated benchmark(s) in %s are missing from the current run (rename? use -allow-missing if intentional):\n  %s",
			len(missing), prevPath, strings.Join(missing, "\n  "))
	}
	if compared == 0 {
		return fmt.Errorf("gate %q matched no benchmark present in both runs", gatePattern)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed more than %.0f%%:\n  %s",
			len(failures), 100*maxRegress, strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate: %d benchmark(s) within %.0f%% of %s\n", compared, 100*maxRegress, prevPath)
	return nil
}
