package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// feed runs parseBench over literal bench output via a pipe-backed file.
func feed(t *testing.T, text string) map[string]Metrics {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "bench")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const benchOut = `goos: linux
BenchmarkPTQBasic/seq-8      	     100	   1000000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPTQBasic/par-8      	     100	    400000 ns/op
BenchmarkDeltaApply-8        	     300	    120000 ns/op
BenchmarkIndexRebuild-8      	     300	   1000000 ns/op
`

func TestParseBenchStripsProcSuffix(t *testing.T) {
	m := feed(t, benchOut)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(m), m)
	}
	b, ok := m["BenchmarkPTQBasic/seq"]
	if !ok || b.NsPerOp != 1e6 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 {
		t.Fatalf("BenchmarkPTQBasic/seq parsed as %+v", b)
	}
}

// TestParseBenchKeepsMinOfCounts: with `go test -count N` the same
// benchmark line repeats; the fastest sample must win regardless of
// order, and its B/op and allocs/op must come from that same sample.
func TestParseBenchKeepsMinOfCounts(t *testing.T) {
	m := feed(t, `goos: linux
BenchmarkPTQBasic/seq-8      	     100	   1200000 ns/op	  4096 B/op	      20 allocs/op
BenchmarkPTQBasic/seq-8      	     100	   1000000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPTQBasic/seq-8      	     100	   1100000 ns/op	  3072 B/op	      16 allocs/op
BenchmarkDeltaApply-8        	     300	    120000 ns/op
`)
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(m), m)
	}
	b := m["BenchmarkPTQBasic/seq"]
	if b.NsPerOp != 1e6 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 {
		t.Fatalf("repeated samples did not keep the fastest: %+v", b)
	}
}

func writePrev(t *testing.T, m map[string]Metrics) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prev.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateAgainst(t *testing.T) {
	cur := feed(t, benchOut)

	// Within tolerance: previous was 10% slower on one, equal elsewhere.
	okPrev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 950000},
		"BenchmarkDeltaApply":   {NsPerOp: 120000},
	})
	if err := gateAgainst(cur, okPrev, "BenchmarkPTQ|BenchmarkDelta", 0.25, false); err != nil {
		t.Fatalf("tolerable drift failed the gate: %v", err)
	}

	// A >25% slowdown on a gated benchmark fails.
	badPrev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 700000}, // current 1e6 = +43%
		"BenchmarkDeltaApply":   {NsPerOp: 120000},
	})
	if err := gateAgainst(cur, badPrev, "BenchmarkPTQ", 0.25, false); err == nil {
		t.Fatal("43% regression passed the gate")
	}

	// The same slowdown outside the gate pattern is ignored.
	if err := gateAgainst(cur, badPrev, "BenchmarkDelta", 0.25, false); err != nil {
		t.Fatalf("ungated regression failed the gate: %v", err)
	}

	// A gate that matches nothing shared is an error (misconfigured CI).
	if err := gateAgainst(cur, okPrev, "BenchmarkNothing", 0.25, false); err == nil {
		t.Fatal("empty gate intersection passed")
	}
}

// TestGateMissingBenchmark: a gated benchmark present in -prev but gone
// from the current run is a hard error — the escape hatch for a watched
// benchmark is -allow-missing, not a silent skip.
func TestGateMissingBenchmark(t *testing.T) {
	cur := feed(t, benchOut)
	prev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 1000000},
		"BenchmarkRenamedAway":  {NsPerOp: 500000},
	})

	err := gateAgainst(cur, prev, "BenchmarkPTQ|BenchmarkRenamed", 0.25, false)
	if err == nil {
		t.Fatal("vanished gated benchmark passed the gate")
	}
	if msg := err.Error(); !strings.Contains(msg, "BenchmarkRenamedAway") || !strings.Contains(msg, "allow-missing") {
		t.Fatalf("missing-benchmark error does not name the benchmark and the escape hatch: %v", msg)
	}

	// With -allow-missing the removal is tolerated and the rest compares.
	if err := gateAgainst(cur, prev, "BenchmarkPTQ|BenchmarkRenamed", 0.25, true); err != nil {
		t.Fatalf("-allow-missing did not tolerate the removal: %v", err)
	}

	// An ungated vanished benchmark never fails, with or without the flag.
	if err := gateAgainst(cur, prev, "BenchmarkPTQ", 0.25, false); err != nil {
		t.Fatalf("ungated removal failed the gate: %v", err)
	}
}

// TestGateZeroBaseline: a non-positive prev ns/op cannot be compared; it
// must be skipped (not divided by), and a gate whose only baselines are
// unusable still errors via the compared==0 guard rather than passing
// vacuously.
func TestGateZeroBaseline(t *testing.T) {
	cur := feed(t, benchOut)
	prev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 0},
		"BenchmarkPTQBasic/par": {NsPerOp: -5},
		"BenchmarkDeltaApply":   {NsPerOp: 120000},
	})

	// The zero baselines skip; DeltaApply still anchors the comparison.
	if err := gateAgainst(cur, prev, "BenchmarkPTQ|BenchmarkDelta", 0.25, false); err != nil {
		t.Fatalf("usable baseline alongside zero baselines failed: %v", err)
	}

	// Only unusable baselines in the gate: vacuous pass is refused.
	if err := gateAgainst(cur, prev, "BenchmarkPTQBasic", 0.25, false); err == nil {
		t.Fatal("gate with only zero baselines passed vacuously")
	}
}
