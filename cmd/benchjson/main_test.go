package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// feed runs parseBench over literal bench output via a pipe-backed file.
func feed(t *testing.T, text string) map[string]Metrics {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "bench")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const benchOut = `goos: linux
BenchmarkPTQBasic/seq-8      	     100	   1000000 ns/op	  2048 B/op	      12 allocs/op
BenchmarkPTQBasic/par-8      	     100	    400000 ns/op
BenchmarkDeltaApply-8        	     300	    120000 ns/op
BenchmarkIndexRebuild-8      	     300	   1000000 ns/op
`

func TestParseBenchStripsProcSuffix(t *testing.T) {
	m := feed(t, benchOut)
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(m), m)
	}
	b, ok := m["BenchmarkPTQBasic/seq"]
	if !ok || b.NsPerOp != 1e6 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 {
		t.Fatalf("BenchmarkPTQBasic/seq parsed as %+v", b)
	}
}

func writePrev(t *testing.T, m map[string]Metrics) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prev.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateAgainst(t *testing.T) {
	cur := feed(t, benchOut)

	// Within tolerance: previous was 10% slower on one, equal elsewhere.
	okPrev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 950000},
		"BenchmarkDeltaApply":   {NsPerOp: 120000},
		"BenchmarkRenamedAway":  {NsPerOp: 1}, // only in prev: skipped
	})
	if err := gateAgainst(cur, okPrev, "BenchmarkPTQ|BenchmarkDelta|BenchmarkRenamed", 0.25); err != nil {
		t.Fatalf("tolerable drift failed the gate: %v", err)
	}

	// A >25% slowdown on a gated benchmark fails.
	badPrev := writePrev(t, map[string]Metrics{
		"BenchmarkPTQBasic/seq": {NsPerOp: 700000}, // current 1e6 = +43%
		"BenchmarkDeltaApply":   {NsPerOp: 120000},
	})
	if err := gateAgainst(cur, badPrev, "BenchmarkPTQ", 0.25); err == nil {
		t.Fatal("43% regression passed the gate")
	}

	// The same slowdown outside the gate pattern is ignored.
	if err := gateAgainst(cur, badPrev, "BenchmarkDelta", 0.25); err != nil {
		t.Fatalf("ungated regression failed the gate: %v", err)
	}

	// A gate that matches nothing shared is an error (misconfigured CI).
	if err := gateAgainst(cur, okPrev, "BenchmarkNothing", 0.25); err == nil {
		t.Fatal("empty gate intersection passed")
	}
}
