// Command xmatch is an end-to-end demonstration of the library: it loads a
// Table II dataset (or matches two schema spec files), derives the top-h
// possible mappings, builds the block tree, and answers probabilistic twig
// queries over a generated source document.
//
// Usage:
//
//	xmatch stats    -d D7                 # matching + block-tree statistics
//	xmatch mappings -d D7 -n 10           # show the 10 most probable mappings
//	xmatch query    -d D7 -q 'Order/DeliverTo/Contact/EMail' [-k 10] [-workers 8]
//	xmatch query    -d D7 -q 'Order//EMail; Order//Quantity'  # batched queries
//	xmatch query    -remote http://localhost:8777 -d D7 -q 'Order//EMail'
//	xmatch mutate   -remote http://localhost:8777 -d D7 -edits '[{"op":"settext","path":"Order.POLine.Quantity","text":"9"}]'
//	xmatch match    -src a.spec -tgt b.spec   # run the COMA-style matcher
//	xmatch workload info   -f queries.capture              # inspect a capture
//	xmatch workload replay -f queries.capture              # re-run locally, diff digests
//	xmatch workload replay -f queries.capture -remote http://localhost:8777
//
// Queries run on the concurrent engine of internal/engine; -workers bounds
// its pool (0 = all cores) and -parallel=false forces sequential evaluation.
// With -remote the query subcommand becomes a client of the xmatchd daemon
// (cmd/xmatchd): -d names the daemon's serving dataset, batches go through
// /v1/batch, and the printed answers match local evaluation exactly.
//
// Schema spec files use the indentation format of schema.ParseSpec.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/matcher"
	"xmatch/internal/schema"
	"xmatch/internal/server"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
	"xmatch/internal/xsd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats(os.Args[2:])
	case "mappings":
		err = runMappings(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "index":
		err = runIndex(os.Args[2:])
	case "mutate":
		err = runMutate(os.Args[2:])
	case "checkpoint":
		err = runCheckpoint(os.Args[2:])
	case "match":
		err = runMatch(os.Args[2:])
	case "keywords":
		err = runKeywords(os.Args[2:])
	case "workload":
		err = runWorkload(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmatch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xmatch <stats|mappings|query|index|mutate|checkpoint|workload|match> [flags]
  stats    -d <D1..D10>                     matching and block-tree statistics
  mappings -d <D1..D10> [-n 10] [-m 100]    most probable mappings
  query    -d <D1..D10> -q <twig> [-k 0]    answer a PTQ (k>0 for top-k);
           [-workers N] [-parallel=false]   ';'-separated twigs run as a batch
           [-indexed=false]                 skip positional-index discovery:
                                            evaluate through the joined
                                            matcher (local only; a remote
                                            daemon's indexing is fixed by its
                                            catalog, so with -remote this
                                            flag is rejected, not a no-op)
           [-remote http://host:port]       ask a running xmatchd instead
  index    -d <D1..D10> | -xml <file>       build the positional index, print
           | -manifest <cat> -name <entry>  its stats; -o persists it as a
           [-o <blob>] [-check] [-stats]    store blob (format v4, compressed
                                            postings), -check verifies a
                                            save/load round trip, -stats prints
                                            the per-path postings table
                                            (counts, compressed vs flat bytes,
                                            ratio); -manifest indexes a catalog
                                            entry's document (the entry must
                                            have one)
  mutate   -d <name> -edits <json|@file>    apply an edit batch to a live
           [-remote http://host:port]       document: remote posts to a
           [-doc N] [-seed N] [-verify]     running xmatchd's /v1/admin/mutate;
                                            local applies to a generated
                                            dataset document (-verify checks
                                            the incremental index against a
                                            full rebuild)
  checkpoint -d <name>                      compact a served dataset's edit
           -remote http://host:port         logs into checkpoint blobs via
                                            /v1/admin/checkpoint: per shard,
                                            persists state at the current
                                            epoch and truncates the shipped
                                            log; lagging followers bootstrap
                                            from the checkpoint
  workload replay -f <capture>              re-run a daemon's workload capture
           [-remote http://host:port]       and byte-diff every result digest:
           [-manifest <cat>] [-datasets..]  remote replays against a live
           [-limit N] [-diffs N]            daemon; local rebuilds the serving
                                            catalog in-process (a manifest, or
                                            builtin datasets matching the
                                            capturing daemon's flags) and
                                            replays through the same HTTP
                                            handler; exits non-zero on any diff
  workload info -f <capture>                summarize a capture file (records,
                                            sampling, fingerprints, torn tail)
                                            and its .profiles sidecar
  keywords -d <D1..D10> -w "a,b,c"          probabilistic keyword query
  match    -src <spec> -tgt <spec>          run the built-in matcher
           (files ending in .xsd are parsed as XML Schema)`)
}

func loadSet(id string, m int) (*dataset.Dataset, *mapping.Set, error) {
	d, err := dataset.Load(id)
	if err != nil {
		return nil, nil, err
	}
	set, err := mapgen.TopH(d.Matching, m, mapgen.Partition)
	if err != nil {
		return nil, nil, err
	}
	return d, set, nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset ID")
	m := fs.Int("m", 100, "number of possible mappings")
	tau := fs.Float64("tau", 0.2, "confidence threshold")
	queries := fs.Bool("queries", false, "print the Table III workload queries, one per line, and exit (for scripting query drivers)")
	fs.Parse(args)

	if *queries {
		for _, q := range dataset.Queries() {
			fmt.Println(q.Text)
		}
		return nil
	}

	d, set, err := loadSet(*id, *m)
	if err != nil {
		return err
	}
	st := d.Matching.Stats()
	fmt.Printf("dataset %s: %s (|S|=%d) -> %s (|T|=%d)\n",
		d.Info.ID, d.Info.Src, d.Source.Len(), d.Info.Tgt, d.Target.Len())
	fmt.Printf("matching: capacity=%d partitions=%d max-partition=%d avg=%.1f\n",
		st.Capacity, st.NumPartitions, st.MaxPartition, st.AvgPartition)
	fmt.Printf("mappings: |M|=%d avg o-ratio=%.3f (paper: %.2f)\n",
		set.Len(), set.AverageORatio(), d.Info.PaperORatio)

	bt, err := core.Build(set, core.Options{Tau: *tau})
	if err != nil {
		return err
	}
	bst := bt.Stats()
	comp := bt.Compress()
	fmt.Printf("block tree (tau=%.2f): %d c-blocks, avg size %.2f, max size %d (%.1f%% of target)\n",
		*tau, bst.NumBlocks, bst.AvgSize, bst.MaxSize, 100*bst.MaxCoverage)
	fmt.Printf("storage: raw=%dB compressed=%dB ratio=%.2f%%\n",
		set.RawBytes(), comp.Bytes(), 100*comp.CompressionRatio())
	return nil
}

func runMappings(args []string) error {
	fs := flag.NewFlagSet("mappings", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset ID")
	m := fs.Int("m", 100, "number of possible mappings to derive")
	n := fs.Int("n", 10, "number of mappings to display")
	fs.Parse(args)

	d, set, err := loadSet(*id, *m)
	if err != nil {
		return err
	}
	show := *n
	if show > set.Len() {
		show = set.Len()
	}
	for i := 0; i < show; i++ {
		mp := set.Mappings[i]
		fmt.Printf("m%-3d prob=%.4f score=%.3f correspondences=%d\n", i+1, mp.Prob, mp.Score, mp.Len())
		if i == 0 {
			continue
		}
		// Show how this mapping differs from the most probable one.
		best := set.Mappings[0]
		for t := 0; t < d.Target.Len(); t++ {
			s1, ok1 := best.SourceFor(t)
			s2, ok2 := mp.SourceFor(t)
			if ok1 == ok2 && (!ok1 || s1 == s2) {
				continue
			}
			fmt.Printf("     %s: %s -> %s\n", d.Target.ByID(t).Path, srcName(d, s1, ok1), srcName(d, s2, ok2))
		}
	}
	return nil
}

func srcName(d *dataset.Dataset, s int, ok bool) string {
	if !ok {
		return "(none)"
	}
	return d.Source.ByID(s).Path
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset ID")
	m := fs.Int("m", 100, "number of possible mappings")
	qtext := fs.String("q", "", "twig query on the target schema; repeatable via ';' for a batch (required)")
	k := fs.Int("k", 0, "top-k PTQ; 0 evaluates all mappings")
	docNodes := fs.Int("doc", 3473, "source document size")
	workers := fs.Int("workers", 0, "parallel evaluation workers (0 = all cores, 1 = sequential)")
	parallel := fs.Bool("parallel", true, "enable parallel evaluation (-parallel=false forces sequential)")
	indexed := fs.Bool("indexed", true, "evaluate through the positional document index; false skips accelerator discovery entirely, forcing the joined matcher (local evaluation only: with -remote the daemon's catalog fixes indexing, so the flag is rejected rather than silently ignored)")
	remote := fs.String("remote", "", "xmatchd base URL (e.g. http://localhost:8777); query the daemon's dataset named by -d instead of evaluating locally")
	explain := fs.Bool("explain", false, "print evaluation internals after the answers: the request trace and the index matcher's counters (single query only)")
	fs.Parse(args)
	if *qtext == "" {
		return fmt.Errorf("query: -q is required")
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if !*parallel {
		w = 1
	}

	var queries []string
	for _, text := range strings.Split(*qtext, ";") {
		if text = strings.TrimSpace(text); text != "" {
			queries = append(queries, text)
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("query: -q holds no query text")
	}
	if *explain && len(queries) > 1 {
		return fmt.Errorf("query: -explain applies to a single query, not a ';' batch")
	}
	if *remote != "" {
		// The daemon's catalog fixes the dataset shape and engine; accepting
		// these flags would silently answer over a different configuration.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "m", "doc", "workers", "parallel", "indexed":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("query: %s only apply to local evaluation; with -remote the daemon's catalog fixes the dataset shape", strings.Join(conflicts, ", "))
		}
		return runRemoteQuery(*remote, *id, queries, *k, *explain)
	}

	_, set, err := loadSet(*id, *m)
	if err != nil {
		return err
	}
	d, _ := dataset.Load(*id)
	doc := d.OrderDocument(*docNodes, 42)
	if *indexed {
		index.Attach(doc)
	}
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		return err
	}
	eng := engine.New(engine.Options{Workers: w})
	if len(queries) > 1 {
		// Batch: answer every query concurrently under one worker budget.
		reqs := make([]engine.Request, len(queries))
		for i, text := range queries {
			reqs[i] = engine.Request{Pattern: text, K: *k}
		}
		for _, resp := range eng.EvaluateBatch(set, doc, bt, reqs) {
			if resp.Err != nil {
				return fmt.Errorf("query %s: %w", resp.Pattern, resp.Err)
			}
			printAnswers(resp.Pattern, resp.Query, resp.Results)
		}
		return nil
	}
	q, err := eng.Prepare(queries[0], set)
	if err != nil {
		return err
	}
	// Local EXPLAIN reads the process-global matcher counters around the
	// evaluation; this process runs nothing else, so the delta is exact.
	before := index.GlobalCounters()
	start := time.Now()
	var results []core.Result
	if *k > 0 {
		results = eng.EvaluateTopK(q, set, doc, bt, *k)
	} else {
		results = eng.Evaluate(q, set, doc, bt)
	}
	elapsed := time.Since(start)
	printAnswers(queries[0], q, results)
	if *explain {
		fmt.Printf("explain: evaluated in %.3fms\n", float64(elapsed.Microseconds())/1e3)
		printCounters("  ", index.GlobalCounters().Sub(before))
	}
	return nil
}

// printCounters renders one matcher-counter block of an EXPLAIN report.
func printCounters(indent string, c index.CountersSnapshot) {
	fmt.Printf("%sevals=%d memoHits=%d memoMisses=%d fastPath=%d\n", indent, c.Evals, c.MemoHits, c.MemoMisses, c.FastPath)
	fmt.Printf("%scandidates=%d usefulSurvivors=%d reachSurvivors=%d emitted=%d\n", indent, c.Candidates, c.UsefulSurvivors, c.ReachSurvivors, c.Emitted)
	fmt.Printf("%sgallopMerges=%d linearMerges=%d decoded=%d lists / %d postings / %d blocks\n", indent, c.GallopMerges, c.LinearMerges, c.DecodedLists, c.DecodedPostings, c.DecodedBlocks)
}

func printAnswers(text string, q *core.Query, results []core.Result) {
	printWireAnswers(text, len(results), core.AnswersToWire(core.AggregateLeaf(q, results)))
}

// printWireAnswers renders aggregated answers; the local and remote query
// paths share it, so the CLI output is identical either way.
func printWireAnswers(text string, nResults int, answers []core.WireAnswer) {
	fmt.Printf("query %s: %d relevant mapping(s)\n", text, nResults)
	for _, a := range answers {
		vals := a.Values
		const maxShow = 8
		suffix := ""
		if len(vals) > maxShow {
			suffix = fmt.Sprintf(" ... (%d values)", len(vals))
			vals = vals[:maxShow]
		}
		fmt.Printf("  p=%.4f  %s%s\n", a.Prob, strings.Join(vals, ", "), suffix)
	}
}

// runRemoteQuery answers the queries through a running xmatchd daemon:
// one query POSTs /v1/query (top-k when -k > 0), several POST one /v1/batch.
// With explain set the daemon annotates the response with its trace and
// per-shard matcher counters, printed after the answers.
func runRemoteQuery(base, ds string, queries []string, k int, explain bool) error {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}
	if len(queries) == 1 {
		req := server.QueryRequest{Dataset: ds, Pattern: queries[0], K: k, Explain: explain}
		if k > 0 {
			req.Mode = "topk"
		}
		var resp server.QueryResponse
		if err := postJSON(client, base+"/v1/query", req, &resp); err != nil {
			return err
		}
		printWireAnswers(resp.Pattern, len(resp.Results), resp.Answers)
		if resp.Explain != nil {
			ex := resp.Explain
			fmt.Printf("explain: request %s, %.3fms total\n", ex.Trace.ID, float64(ex.Trace.DurUs)/1e3)
			for _, sp := range ex.Trace.Spans {
				detail := sp.Detail
				if detail != "" {
					detail = "  " + detail
				}
				fmt.Printf("  %9.3fms +%9.3fms  %s%s\n", float64(sp.StartUs)/1e3, float64(sp.DurUs)/1e3, sp.Name, detail)
			}
			for _, sh := range ex.Shards {
				fmt.Printf("  shard %d (epoch %d):\n", sh.Shard, sh.Epoch)
				printCounters("    ", sh.Counters)
			}
		}
		return nil
	}
	req := server.BatchRequest{Dataset: ds}
	for _, text := range queries {
		req.Queries = append(req.Queries, server.BatchQuery{Pattern: text, K: k})
	}
	var resp server.BatchResponse
	if err := postJSON(client, base+"/v1/batch", req, &resp); err != nil {
		return err
	}
	for _, r := range resp.Responses {
		if r.Error != "" {
			return fmt.Errorf("query %s: %s", r.Pattern, r.Error)
		}
		printWireAnswers(r.Pattern, len(r.Results), r.Answers)
	}
	return nil
}

// postJSON posts in as JSON and decodes the response into out, surfacing
// the daemon's error message on non-2xx replies.
func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("remote: %s", e.Error)
		}
		return fmt.Errorf("remote: status %s", resp.Status)
	}
	return json.Unmarshal(data, out)
}

// runIndex builds the positional index over a dataset's generated document,
// an XML file, or a catalog manifest entry's document, and prints its
// statistics; -o persists it as a store blob for catalog manifests, -check
// round-trips the blob through save/load verification.
func runIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset ID (ignored with -xml or -manifest)")
	xmlPath := fs.String("xml", "", "index an XML document file instead of a generated dataset document")
	manifestPath := fs.String("manifest", "", "index the document of a catalog manifest entry (requires -name)")
	entryName := fs.String("name", "", "catalog entry name within -manifest")
	docNodes := fs.Int("doc", 3473, "generated document size (total across -shards members)")
	seed := fs.Int64("seed", 42, "document generator seed")
	shards := fs.Int("shards", 1, "member documents for a generated collection (-d mode); manifest entries carry their own shard count")
	out := fs.String("o", "", "write the index as a store blob to this path")
	check := fs.Bool("check", false, "verify a save/load round trip of the blob")
	stats := fs.Bool("stats", false, "print the per-path postings table: counts, compressed vs flat bytes, ratio")
	fs.Parse(args)

	var docs []*xmltree.Document
	var source string
	switch {
	case *manifestPath != "":
		var err error
		docs, source, err = manifestDocuments(*manifestPath, *entryName)
		if err != nil {
			return err
		}
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		docs = []*xmltree.Document{doc}
		source = *xmlPath
	default:
		d, err := dataset.Load(*id)
		if err != nil {
			return err
		}
		if *shards > 1 {
			docs = d.OrderCorpus(*shards, *docNodes, *seed)
			source = fmt.Sprintf("%s (doc=%d seed=%d shards=%d)", *id, *docNodes, *seed, *shards)
		} else {
			docs = []*xmltree.Document{d.OrderDocument(*docNodes, *seed)}
			source = fmt.Sprintf("%s (doc=%d seed=%d)", *id, *docNodes, *seed)
		}
	}

	if len(docs) > 1 {
		return indexCollection(docs, source, *stats, *out, *check)
	}
	doc := docs[0]
	ix := index.Build(doc)
	st := ix.Stats()
	fmt.Printf("index %s: %d nodes\n", source, doc.Len())
	fmt.Printf("postings: %d over %d distinct paths, %d value keys, %d text keys\n",
		st.Postings, st.DistinctPaths, st.ValueKeys, st.TextKeys)
	fmt.Printf("resident: %dB, built in %v\n", st.ResidentBytes, st.BuildTime.Round(time.Microsecond))
	fmt.Printf("postings bytes: %dB compressed vs %dB flat (ratio %.2f)\n",
		st.PostingsBytes, st.PostingsFlatBytes, st.CompressionRatio())
	if *stats {
		fmt.Printf("%9s %12s %10s %7s  %s\n", "postings", "compressed", "flat", "ratio", "path")
		for _, ps := range ix.PathStats() {
			ratio := 1.0
			if ps.FlatBytes > 0 {
				ratio = float64(ps.ResidentBytes) / float64(ps.FlatBytes)
			}
			fmt.Printf("%9d %11dB %9dB %7.2f  %s\n", ps.Postings, ps.ResidentBytes, ps.FlatBytes, ratio, ps.Path)
		}
	}

	var blob bytes.Buffer
	if err := store.SaveIndex(&blob, ix); err != nil {
		return err
	}
	fmt.Printf("blob: %dB\n", blob.Len())
	if *check {
		if _, err := store.LoadIndex(bytes.NewReader(blob.Bytes()), doc); err != nil {
			return fmt.Errorf("index: round-trip verification failed: %w", err)
		}
		fmt.Println("round trip: ok")
	}
	if *out != "" {
		if err := os.WriteFile(*out, blob.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// indexCollection indexes every member of a sharded collection and prints
// a per-shard stats table plus aggregates — the offline view of the
// per-shard rows /statsz serves. Blob output is per-document, so -o and
// -check are single-document operations and are refused here.
func indexCollection(docs []*xmltree.Document, source string, stats bool, out string, check bool) error {
	if out != "" || check {
		return fmt.Errorf("index: -o and -check operate on a single document; index a member's blob individually")
	}
	fmt.Printf("index %s: %d member shards\n", source, len(docs))
	fmt.Printf("%5s %9s %9s %8s %12s %12s  %s\n", "shard", "nodes", "postings", "paths", "resident", "built", "range")
	var nodes, postings, resident int
	var build time.Duration
	ixs := make([]*index.Index, len(docs))
	for i, doc := range docs {
		ix := index.Build(doc)
		ixs[i] = ix
		st := ix.Stats()
		fmt.Printf("%5d %9d %9d %8d %11dB %12v  [%d,%d]\n",
			i, doc.Len(), st.Postings, st.DistinctPaths, st.ResidentBytes,
			st.BuildTime.Round(time.Microsecond), doc.NumBase(), doc.MaxEnd())
		nodes += doc.Len()
		postings += st.Postings
		resident += st.ResidentBytes
		build += st.BuildTime
	}
	fmt.Printf("total %9d %9d %8s %11dB %12v\n", nodes, postings, "", resident, build.Round(time.Microsecond))
	if stats {
		for i, ix := range ixs {
			fmt.Printf("shard %d per-path postings:\n", i)
			fmt.Printf("%9s %12s %10s %7s  %s\n", "postings", "compressed", "flat", "ratio", "path")
			for _, ps := range ix.PathStats() {
				ratio := 1.0
				if ps.FlatBytes > 0 {
					ratio = float64(ps.ResidentBytes) / float64(ps.FlatBytes)
				}
				fmt.Printf("%9d %11dB %9dB %7.2f  %s\n", ps.Postings, ps.ResidentBytes, ps.FlatBytes, ratio, ps.Path)
			}
		}
	}
	return nil
}

func runMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	srcPath := fs.String("src", "", "source schema spec file (required)")
	tgtPath := fs.String("tgt", "", "target schema spec file (required)")
	threshold := fs.Float64("threshold", 0.55, "similarity threshold")
	fs.Parse(args)
	if *srcPath == "" || *tgtPath == "" {
		return fmt.Errorf("match: -src and -tgt are required")
	}
	src, err := loadSpec(*srcPath)
	if err != nil {
		return err
	}
	tgt, err := loadSpec(*tgtPath)
	if err != nil {
		return err
	}
	u, err := matcher.New(matcher.Options{Threshold: *threshold}).Match(src, tgt)
	if err != nil {
		return err
	}
	fmt.Printf("matching %s (%d elements) -> %s (%d elements): %d correspondences\n",
		src.Name, src.Len(), tgt.Name, tgt.Len(), u.Capacity())
	for _, c := range u.Corrs {
		fmt.Printf("  %.3f  %s ~ %s\n", c.Score, src.ByID(c.S).Path, tgt.ByID(c.T).Path)
	}
	return nil
}

func runKeywords(args []string) error {
	fs := flag.NewFlagSet("keywords", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset ID")
	m := fs.Int("m", 100, "number of possible mappings")
	words := fs.String("w", "", "comma-separated keywords (required)")
	docNodes := fs.Int("doc", 3473, "source document size")
	fs.Parse(args)
	if *words == "" {
		return fmt.Errorf("keywords: -w is required")
	}
	d, set, err := loadSet(*id, *m)
	if err != nil {
		return err
	}
	doc := d.OrderDocument(*docNodes, 42)
	keywords := strings.Split(*words, ",")
	for i := range keywords {
		keywords[i] = strings.TrimSpace(keywords[i])
	}
	q := core.PrepareKeywordQuery(keywords, set, doc)
	results := core.EvaluateKeywords(q, set, doc)
	fmt.Printf("keywords %v: %d relevant mapping(s)\n", keywords, len(results))
	for _, a := range core.AggregateKeywordAnswers(results) {
		paths := a.Values
		if len(paths) > 5 {
			paths = paths[:5]
		}
		fmt.Printf("  p=%.4f SLCA %v (%d total)\n", a.Prob, paths, len(a.Values))
	}
	return nil
}

func loadSpec(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	if strings.HasSuffix(path, ".xsd") {
		return xsd.ParseString(strings.TrimSuffix(name, ".xsd"), string(data), xsd.Options{})
	}
	return schema.ParseSpec(strings.TrimSuffix(name, ".spec"), string(data))
}

// manifestDocuments resolves the member documents of one catalog manifest
// entry: built-in entries regenerate theirs deterministically (Shards > 1
// regenerates the whole collection), blob-backed entries must name a
// concrete XML file. An entry without a document — a blob-backed entry
// whose DocPath is empty, meaning the daemon instantiates a synthetic
// single-instance document at serve time — is a hard error: indexing a
// document that only exists inside a running daemon would produce a blob
// nothing can verify against.
func manifestDocuments(manifestPath, name string) ([]*xmltree.Document, string, error) {
	if name == "" {
		return nil, "", fmt.Errorf("index: -manifest requires -name (which catalog entry to index)")
	}
	f, err := os.Open(manifestPath)
	if err != nil {
		return nil, "", err
	}
	man, err := store.LoadCatalog(f)
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("index: manifest %s: %w", manifestPath, err)
	}
	for _, e := range man.Entries {
		if e.Name != name {
			continue
		}
		if e.Dataset != "" {
			d, err := dataset.Load(e.Dataset)
			if err != nil {
				return nil, "", err
			}
			nodes := e.DocNodes
			if nodes == 0 {
				nodes = server.DefaultDocNodes
			}
			if e.Shards > 1 {
				docs := d.OrderCorpus(e.Shards, nodes, e.DocSeed)
				return docs, fmt.Sprintf("%s[%s] (doc=%d seed=%d shards=%d)", manifestPath, name, nodes, e.DocSeed, e.Shards), nil
			}
			doc := d.OrderDocument(nodes, e.DocSeed)
			return []*xmltree.Document{doc}, fmt.Sprintf("%s[%s] (doc=%d seed=%d)", manifestPath, name, nodes, e.DocSeed), nil
		}
		if e.DocPath == "" {
			return nil, "", fmt.Errorf("index: catalog entry %q in %s has no document (DocPath is empty; the daemon generates one at serve time) — point the entry at a concrete XML file, or index that file directly with -xml", name, manifestPath)
		}
		docFile := filepath.Join(filepath.Dir(manifestPath), e.DocPath)
		df, err := os.Open(docFile)
		if err != nil {
			return nil, "", err
		}
		doc, err := xmltree.Parse(df)
		df.Close()
		if err != nil {
			return nil, "", err
		}
		return []*xmltree.Document{doc}, fmt.Sprintf("%s[%s] (%s)", manifestPath, name, docFile), nil
	}
	return nil, "", fmt.Errorf("index: manifest %s has no entry named %q", manifestPath, name)
}

// parseEdits decodes the -edits argument: a JSON array of delta.Edit,
// inline or @file.
func parseEdits(arg string) ([]delta.Edit, error) {
	if arg == "" {
		return nil, fmt.Errorf("mutate: -edits is required (a JSON array, or @file)")
	}
	data := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		var err error
		data, err = os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
	}
	var edits []delta.Edit
	if err := json.Unmarshal(data, &edits); err != nil {
		return nil, fmt.Errorf("mutate: parsing edits: %w", err)
	}
	if err := delta.Validate(edits); err != nil {
		return nil, err
	}
	return edits, nil
}

// runMutate applies an edit batch to a live document: against a running
// xmatchd (-remote, the production path), or locally against a generated
// dataset document as a demonstration of the delta subsystem, optionally
// verifying the incrementally-maintained index against a full rebuild.
func runMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	id := fs.String("d", "D7", "dataset (serving name with -remote, else a built-in ID)")
	editsArg := fs.String("edits", "", "JSON array of edits, or @file (required)")
	remote := fs.String("remote", "", "xmatchd base URL; POST the batch to its /v1/admin/mutate")
	docNodes := fs.Int("doc", 3473, "generated document size (local only)")
	seed := fs.Int64("seed", 42, "document generator seed (local only)")
	verify := fs.Bool("verify", false, "after applying, verify the incremental index equals a full rebuild (local only)")
	fs.Parse(args)

	edits, err := parseEdits(*editsArg)
	if err != nil {
		return err
	}

	if *remote != "" {
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "doc", "seed", "verify":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("mutate: %s only apply to local mutation; with -remote the daemon owns the document", strings.Join(conflicts, ", "))
		}
		client := &http.Client{Timeout: 60 * time.Second}
		var resp server.MutateResponse
		if err := postJSON(client, strings.TrimRight(*remote, "/")+"/v1/admin/mutate",
			server.MutateRequest{Dataset: *id, Edits: edits}, &resp); err != nil {
			return err
		}
		persisted := "in-memory only (no edit log; lost on reload)"
		if resp.Persisted {
			persisted = "appended to the dataset's edit log"
		}
		fmt.Printf("mutated %s: %d edit(s) applied, epoch %d, %d nodes, %s\n",
			resp.Dataset, resp.Applied, resp.Epoch, resp.DocNodes, persisted)
		return nil
	}

	d, err := dataset.Load(*id)
	if err != nil {
		return err
	}
	doc := d.OrderDocument(*docNodes, *seed)
	h := delta.Open(doc)
	before := h.Snapshot()
	start := time.Now()
	snap, err := h.Apply(edits)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := snap.Index.Stats()
	fmt.Printf("mutated %s: %d edit(s) in %v, epoch %d, %d -> %d nodes\n",
		*id, len(edits), elapsed.Round(time.Microsecond), snap.Epoch, before.Doc.Len(), snap.Doc.Len())
	fmt.Printf("index: %d postings over %d paths spliced in %v (overlay depth %d)\n",
		st.Postings, st.DistinctPaths, st.BuildTime.Round(time.Microsecond), st.Overlays)
	if *verify {
		rebuildStart := time.Now()
		fresh := index.Build(snap.Doc)
		rebuildTime := time.Since(rebuildStart)
		a, err := json.Marshal(snap.Index.Snapshot())
		if err != nil {
			return err
		}
		b, err := json.Marshal(fresh.Snapshot())
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("mutate: VERIFY FAILED: incremental index diverged from full rebuild")
		}
		fmt.Printf("verify: incremental index == full rebuild (rebuild took %v, %.1fx the splice)\n",
			rebuildTime.Round(time.Microsecond), float64(rebuildTime)/float64(st.BuildTime))
	}
	return nil
}

// runCheckpoint asks a running xmatchd to compact a dataset's edit logs
// into checkpoint blobs (POST /v1/admin/checkpoint). Remote-only: a
// checkpoint is an operation on a daemon's durable state.
func runCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	id := fs.String("d", "", "served dataset name (required)")
	remote := fs.String("remote", "", "xmatchd base URL (required)")
	fs.Parse(args)
	if *remote == "" || *id == "" {
		return fmt.Errorf("checkpoint: both -remote and -d are required")
	}
	client := &http.Client{Timeout: 60 * time.Second}
	var resp server.CheckpointResponse
	if err := postJSON(client, strings.TrimRight(*remote, "/")+"/v1/admin/checkpoint",
		server.CheckpointRequest{Dataset: *id}, &resp); err != nil {
		return err
	}
	for _, sh := range resp.Shards {
		durable := "retention trimmed (volatile dataset, no blob)"
		if sh.Durable {
			durable = "checkpoint blob written"
		}
		fmt.Printf("checkpointed %s shard %d at epoch %d: %s, %d log byte(s) freed\n",
			resp.Dataset, sh.Shard, sh.Epoch, durable, sh.FreedBytes)
	}
	return nil
}
