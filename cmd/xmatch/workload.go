package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// The workload subcommand operates on xmatchd's capture files (the
// -capture flag): `info` summarizes one, `replay` re-runs every record —
// against a live daemon (-remote) or an in-process rebuild of the
// serving catalog — and byte-diffs each response's result digest against
// the digest captured when the query was originally served. Zero diffs
// means the replay target serves byte-identical answers to the capturing
// daemon; any diff exits non-zero, which is what makes the command a CI
// differential gate.

func runWorkload(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("workload: want a verb: replay or info")
	}
	switch args[0] {
	case "replay":
		return runWorkloadReplay(args[1:])
	case "info":
		return runWorkloadInfo(args[1:])
	default:
		return fmt.Errorf("workload: unknown verb %q (want replay or info)", args[0])
	}
}

// loadCapture reads a capture file, surfacing a torn tail as a warning:
// a crash mid-append loses at most the final record, never the replay.
func loadCapture(path string) (*store.Workload, error) {
	if path == "" {
		return nil, fmt.Errorf("workload: -f is required (an xmatchd -capture file)")
	}
	w, err := store.LoadWorkloadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	if w.Torn {
		fmt.Fprintf(os.Stderr, "workload: %s has a torn tail (crash mid-append); replaying the %d intact record(s)\n", path, len(w.Records))
	}
	return w, nil
}

func runWorkloadReplay(args []string) error {
	fs := flag.NewFlagSet("workload replay", flag.ExitOnError)
	path := fs.String("f", "", "capture file written by xmatchd -capture (required)")
	remote := fs.String("remote", "", "replay against a live xmatchd at this base URL instead of rebuilding the catalog locally")
	manifest := fs.String("manifest", "", "local replay: rebuild the serving catalog from this store manifest")
	datasets := fs.String("datasets", "", "local replay: builtin dataset IDs to serve (default: the datasets the capture references)")
	m := fs.Int("m", server.DefaultMappings, "local replay: possible mappings per builtin dataset (match the capturing daemon)")
	docNodes := fs.Int("doc", server.DefaultDocNodes, "local replay: document size per builtin dataset")
	seed := fs.Int64("seed", 42, "local replay: document generator seed")
	shards := fs.Int("shards", 1, "local replay: member documents per builtin dataset")
	tau := fs.Float64("tau", 0.2, "local replay: block-tree confidence threshold")
	limit := fs.Int("limit", 0, "replay only the first N records (0 = all)")
	maxDiffs := fs.Int("diffs", 10, "print at most N diffs")
	fs.Parse(args)

	w, err := loadCapture(*path)
	if err != nil {
		return err
	}
	recs := w.Records
	if *limit > 0 && len(recs) > *limit {
		recs = recs[:*limit]
	}
	if len(recs) == 0 {
		return fmt.Errorf("workload: %s holds no records", *path)
	}

	var run server.ReplayRunner
	target := ""
	if *remote != "" {
		target = strings.TrimRight(*remote, "/")
		run = server.RemoteReplayRunner(target, &http.Client{Timeout: 60 * time.Second})
	} else {
		srv, err := replayServer(*manifest, *datasets, recs, *m, *docNodes, *seed, *shards, *tau)
		if err != nil {
			return err
		}
		target = "local catalog"
		run = server.HandlerReplayRunner(srv)
	}

	start := time.Now()
	report := server.ReplayWorkload(recs, run)
	elapsed := time.Since(start)
	fmt.Printf("replayed %d record(s) against %s in %v: %d matched, %d diff(s)\n",
		report.Total, target, elapsed.Round(time.Millisecond), report.Matched, len(report.Diffs))
	for i, d := range report.Diffs {
		if i >= *maxDiffs {
			fmt.Printf("  ... %d more diff(s)\n", len(report.Diffs)-i)
			break
		}
		if d.Err != "" {
			fmt.Printf("  record %d %s %s (%s): %s\n", d.Index, d.Dataset, d.Pattern, d.Mode, d.Err)
		} else {
			fmt.Printf("  record %d %s %s (%s): digest %s, want %s\n", d.Index, d.Dataset, d.Pattern, d.Mode, d.Got, d.Want)
		}
	}
	if len(report.Diffs) > 0 {
		return fmt.Errorf("workload: %d of %d record(s) did not reproduce their captured digest", len(report.Diffs), report.Total)
	}
	return nil
}

// replayServer builds the in-process server a local replay drives: from a
// manifest when given, else a builtin-dataset catalog shaped like the
// capturing daemon's (the -m/-doc/-seed/-shards/-tau flags must match the
// flags xmatchd served with, exactly as a second daemon's would). The
// short MinEpochWait fails records demanding an epoch this fresh catalog
// cannot reach quickly — those surface as diffs, not multi-second stalls.
func replayServer(manifestPath, datasets string, recs []store.WorkloadRecord, m, docNodes int, seed int64, shards int, tau float64) (*server.Server, error) {
	var man *store.Catalog
	baseDir := "."
	if manifestPath != "" {
		f, err := os.Open(manifestPath)
		if err != nil {
			return nil, err
		}
		man, err = store.LoadCatalog(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("workload: manifest %s: %w", manifestPath, err)
		}
		baseDir = manifestPath[:strings.LastIndexByte(manifestPath, '/')+1]
		if baseDir == "" {
			baseDir = "."
		}
	} else {
		names := datasets
		if names == "" {
			names = strings.Join(captureDatasets(recs), ",")
		}
		man = &store.Catalog{}
		for _, id := range strings.Split(names, ",") {
			if id = strings.TrimSpace(id); id == "" {
				continue
			}
			man.Entries = append(man.Entries, store.CatalogEntry{
				Name: id, Dataset: id, Mappings: m,
				DocNodes: docNodes, DocSeed: seed, Shards: shards, Tau: tau,
			})
		}
		if err := man.Validate(); err != nil {
			return nil, err
		}
	}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalogOpts(man, baseDir, engine.Options{}, server.CatalogOptions{})
	}
	return server.New(loader, server.Options{MinEpochWait: 100 * time.Millisecond})
}

// captureDatasets lists the distinct dataset names a capture references.
func captureDatasets(recs []store.WorkloadRecord) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range recs {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			names = append(names, r.Dataset)
		}
	}
	sort.Strings(names)
	return names
}

func runWorkloadInfo(args []string) error {
	fs := flag.NewFlagSet("workload info", flag.ExitOnError)
	path := fs.String("f", "", "capture file written by xmatchd -capture (required)")
	fs.Parse(args)

	w, err := loadCapture(*path)
	if err != nil {
		return err
	}
	fps := map[uint64]int{}
	modes := map[string]int{}
	var latUs int64
	var maxEpoch uint64
	for _, r := range w.Records {
		fps[r.Fingerprint]++
		modes[r.Mode]++
		latUs += r.LatencyUs
		if r.Epoch > maxEpoch {
			maxEpoch = r.Epoch
		}
	}
	fmt.Printf("capture %s: %d record(s), 1-in-%d sampling, %d distinct fingerprint(s)\n",
		*path, len(w.Records), w.SampleN, len(fps))
	for _, ds := range captureDatasets(w.Records) {
		fmt.Printf("  dataset %s\n", ds)
	}
	var modeNames []string
	for mode := range modes {
		modeNames = append(modeNames, mode)
	}
	sort.Strings(modeNames)
	for _, mode := range modeNames {
		fmt.Printf("  mode %-8s %d record(s)\n", mode, modes[mode])
	}
	if len(w.Records) > 0 {
		fmt.Printf("  mean served latency %.3fms, max epoch %d\n",
			float64(latUs)/float64(len(w.Records))/1e3, maxEpoch)
	}
	if w.Torn {
		fmt.Printf("  torn tail after %d valid byte(s)\n", w.ValidSize)
	}
	if entries, err := store.LoadProfilesFile(*path + ".profiles"); err == nil {
		fmt.Printf("  profiles sidecar: %d path row(s)\n", len(entries))
		top := entries
		sort.Slice(top, func(i, j int) bool { return top[i].Candidates > top[j].Candidates })
		if len(top) > 10 {
			top = top[:10]
		}
		for _, pe := range top {
			sel := float64(-1)
			if pe.Candidates > 0 {
				sel = float64(pe.ReachSurvivors) / float64(pe.Candidates)
			}
			fmt.Printf("    %s shard %d %s: evals=%d candidates=%d survivors=%d selectivity=%.3f\n",
				pe.Dataset, pe.Shard, pe.Path, pe.Evals, pe.Candidates, pe.ReachSurvivors, sel)
		}
	}
	return nil
}
