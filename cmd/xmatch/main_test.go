package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// buildOnce compiles the xmatch binary into a temp dir shared by the
// subcommand smoke tests.
func buildBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary smoke tests in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "xmatch")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestCLISmoke(t *testing.T) {
	bin := buildBinary(t)

	t.Run("stats", func(t *testing.T) {
		out, err := run(t, bin, "stats", "-d", "D1", "-m", "20")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"dataset D1", "capacity=30", "block tree"} {
			if !strings.Contains(out, want) {
				t.Errorf("stats output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("query", func(t *testing.T) {
		out, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-q", "Order/DeliverTo/Contact/EMail", "-k", "5")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "relevant mapping(s)") {
			t.Errorf("query output unexpected:\n%s", out)
		}
	})

	t.Run("query-parallel", func(t *testing.T) {
		// -workers and sequential fallback must print the same answers.
		par, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-workers", "8", "-q", "Order/DeliverTo/Contact/EMail")
		if err != nil {
			t.Fatalf("%v\n%s", err, par)
		}
		seq, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-parallel=false", "-q", "Order/DeliverTo/Contact/EMail")
		if err != nil {
			t.Fatalf("%v\n%s", err, seq)
		}
		if par != seq {
			t.Errorf("parallel and sequential output differ:\n--- parallel\n%s--- sequential\n%s", par, seq)
		}
	})

	t.Run("query-batch", func(t *testing.T) {
		out, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-q", "Order/DeliverTo/Contact/EMail; Order/POLine/Quantity")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if n := strings.Count(out, "relevant mapping(s)"); n != 2 {
			t.Errorf("batch answered %d queries, want 2:\n%s", n, out)
		}
	})

	t.Run("query-unindexed", func(t *testing.T) {
		// The -indexed=false escape hatch must print the same answers.
		idx, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-q", "Order/DeliverTo/Contact/EMail")
		if err != nil {
			t.Fatalf("%v\n%s", err, idx)
		}
		raw, err := run(t, bin, "query", "-d", "D7", "-m", "20", "-doc", "1200",
			"-indexed=false", "-q", "Order/DeliverTo/Contact/EMail")
		if err != nil {
			t.Fatalf("%v\n%s", err, raw)
		}
		if idx != raw {
			t.Errorf("indexed and unindexed output differ:\n--- indexed\n%s--- unindexed\n%s", idx, raw)
		}
	})

	t.Run("index", func(t *testing.T) {
		blob := filepath.Join(t.TempDir(), "d7.idx")
		out, err := run(t, bin, "index", "-d", "D7", "-doc", "1200", "-check", "-o", blob)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"postings:", "resident:", "round trip: ok", "wrote " + blob} {
			if !strings.Contains(out, want) {
				t.Errorf("index output missing %q:\n%s", want, out)
			}
		}
		if fi, err := os.Stat(blob); err != nil || fi.Size() == 0 {
			t.Errorf("index blob not written: %v", err)
		}
	})

	t.Run("keywords", func(t *testing.T) {
		out, err := run(t, bin, "keywords", "-d", "D7", "-m", "20", "-doc", "1200", "-w", "Street,City")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "SLCA") {
			t.Errorf("keywords output unexpected:\n%s", out)
		}
	})

	t.Run("match-spec-and-xsd", func(t *testing.T) {
		dir := t.TempDir()
		spec := filepath.Join(dir, "a.spec")
		if err := os.WriteFile(spec, []byte("Order\n  ContactName\n  Quantity\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		xsdFile := filepath.Join(dir, "b.xsd")
		xsdText := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="ORDER">
    <xs:complexType><xs:sequence>
      <xs:element name="CONTACT_NAME" type="xs:string"/>
      <xs:element name="QTY" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`
		if err := os.WriteFile(xsdFile, []byte(xsdText), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := run(t, bin, "match", "-src", spec, "-tgt", xsdFile)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "ContactName ~ ORDER.CONTACT_NAME") {
			t.Errorf("match output missing expected correspondence:\n%s", out)
		}
	})

	t.Run("remote", func(t *testing.T) {
		// An in-process xmatchd serving D7 with the same |M|, document
		// size, and seed (42, as runQuery uses) as the local runs below:
		// remote output must be byte-identical to local evaluation.
		man := &store.Catalog{Entries: []store.CatalogEntry{
			{Name: "D7", Dataset: "D7", Mappings: 20, DocNodes: 1200, DocSeed: 42},
		}}
		loader := func() (*server.Catalog, error) {
			return server.BuildCatalog(man, ".", engine.Options{Workers: 4})
		}
		srv, err := server.New(loader, server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()

		for _, tc := range []struct {
			name string
			args []string
		}{
			{"single", []string{"-q", "Order/DeliverTo/Contact/EMail"}},
			{"topk", []string{"-q", "Order/DeliverTo/Contact/EMail", "-k", "3"}},
			{"batch", []string{"-q", "Order/DeliverTo/Contact/EMail; Order/POLine/Quantity"}},
		} {
			t.Run(tc.name, func(t *testing.T) {
				local, err := run(t, bin, append([]string{"query", "-d", "D7", "-m", "20", "-doc", "1200"}, tc.args...)...)
				if err != nil {
					t.Fatalf("local: %v\n%s", err, local)
				}
				remote, err := run(t, bin, append([]string{"query", "-remote", ts.URL, "-d", "D7"}, tc.args...)...)
				if err != nil {
					t.Fatalf("remote: %v\n%s", err, remote)
				}
				if remote != local {
					t.Errorf("remote and local output differ:\n--- remote\n%s--- local\n%s", remote, local)
				}
			})
		}

		t.Run("remote-errors", func(t *testing.T) {
			if out, err := run(t, bin, "query", "-remote", ts.URL, "-d", "nope", "-q", "Order"); err == nil {
				t.Errorf("unknown remote dataset succeeded:\n%s", out)
			} else if !strings.Contains(out, "unknown dataset") {
				t.Errorf("unknown remote dataset error not surfaced:\n%s", out)
			}
			if out, err := run(t, bin, "query", "-remote", ts.URL, "-d", "D7", "-q", "[[["); err == nil {
				t.Errorf("malformed remote pattern succeeded:\n%s", out)
			}
			if out, err := run(t, bin, "query", "-remote", "http://127.0.0.1:1", "-d", "D7", "-q", "Order"); err == nil {
				t.Errorf("unreachable daemon succeeded:\n%s", out)
			}
			// Local-only flags must be rejected, not silently ignored.
			if out, err := run(t, bin, "query", "-remote", ts.URL, "-d", "D7", "-m", "50", "-q", "Order"); err == nil {
				t.Errorf("-remote with -m succeeded:\n%s", out)
			} else if !strings.Contains(out, "-m") {
				t.Errorf("-remote with -m error does not name the flag:\n%s", out)
			}
		})
	})

	t.Run("errors", func(t *testing.T) {
		if out, err := run(t, bin, "query", "-d", "D7"); err == nil {
			t.Errorf("query without -q succeeded:\n%s", out)
		}
		if out, err := run(t, bin, "stats", "-d", "D99"); err == nil {
			t.Errorf("unknown dataset succeeded:\n%s", out)
		}
		if out, err := run(t, bin, "nonsense"); err == nil {
			t.Errorf("unknown subcommand succeeded:\n%s", out)
		}
	})
}

// TestCLIMutate covers the mutate subcommand (local apply with -verify,
// remote apply against an in-process daemon, error paths) and the index
// subcommand's manifest mode, including the hard error for a manifest
// entry that has no document.
func TestCLIMutate(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()

	edits := `[{"op":"settext","path":"Order.COND_TYPE_UNIT.LINK_MAP_CAT","text":"99"},` +
		`{"op":"insert","path":"Order","pos":0,"xml":"<Audit><By>cli</By></Audit>"}]`

	t.Run("local-verify", func(t *testing.T) {
		out, err := run(t, bin, "mutate", "-d", "D7", "-doc", "900", "-edits", edits, "-verify")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"epoch 1", "incremental index == full rebuild"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("edits-from-file", func(t *testing.T) {
		path := filepath.Join(dir, "edits.json")
		if err := os.WriteFile(path, []byte(edits), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := run(t, bin, "mutate", "-d", "D7", "-doc", "900", "-edits", "@"+path)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "2 edit(s)") {
			t.Errorf("output missing edit count:\n%s", out)
		}
	})

	t.Run("remote", func(t *testing.T) {
		man := &store.Catalog{Entries: []store.CatalogEntry{
			{Name: "D7", Dataset: "D7", Mappings: 10, DocNodes: 900, DocSeed: 42},
		}}
		loader := func() (*server.Catalog, error) {
			return server.BuildCatalog(man, ".", engine.Options{Workers: 2})
		}
		srv, err := server.New(loader, server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()

		out, err := run(t, bin, "mutate", "-remote", ts.URL, "-d", "D7", "-edits", edits)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"epoch 1", "in-memory only"} {
			if !strings.Contains(out, want) {
				t.Errorf("remote mutate output missing %q:\n%s", want, out)
			}
		}
		if srv.Catalog().Get("D7").Snapshot().Epoch != 1 {
			t.Error("daemon did not advance the epoch")
		}
		// Local-only flags conflict with -remote.
		if out, err := run(t, bin, "mutate", "-remote", ts.URL, "-d", "D7", "-edits", edits, "-verify"); err == nil {
			t.Errorf("-remote with -verify succeeded:\n%s", out)
		} else if !strings.Contains(out, "-verify") {
			t.Errorf("conflict error does not name the flag:\n%s", out)
		}
	})

	t.Run("errors", func(t *testing.T) {
		if out, err := run(t, bin, "mutate", "-d", "D7"); err == nil {
			t.Errorf("mutate without -edits succeeded:\n%s", out)
		}
		if out, err := run(t, bin, "mutate", "-d", "D7", "-edits", "not json"); err == nil {
			t.Errorf("mutate with bad JSON succeeded:\n%s", out)
		}
		if out, err := run(t, bin, "mutate", "-d", "D7", "-edits", `[{"op":"warp","path":"Order"}]`); err == nil {
			t.Errorf("mutate with unknown op succeeded:\n%s", out)
		}
		if out, err := run(t, bin, "mutate", "-d", "D7", "-edits", `[{"op":"delete","path":"No.Such"}]`); err == nil {
			t.Errorf("mutate with unresolvable target succeeded:\n%s", out)
		}
	})

	t.Run("index-manifest", func(t *testing.T) {
		// An entry with no document must fail loudly; a built-in entry works.
		man := &store.Catalog{Entries: []store.CatalogEntry{
			{Name: "nodoc", SetPath: "frozen.set"},
			{Name: "gen", Dataset: "D1", DocNodes: 300},
		}}
		manPath := filepath.Join(dir, "cat.xm")
		f, err := os.Create(manPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.SaveCatalog(f, man); err != nil {
			t.Fatal(err)
		}
		f.Close()

		out, err := run(t, bin, "index", "-manifest", manPath, "-name", "nodoc")
		if err == nil {
			t.Fatalf("indexing a document-less entry succeeded:\n%s", out)
		}
		if !strings.Contains(out, "has no document") || !strings.Contains(out, "nodoc") {
			t.Errorf("document-less entry error unclear:\n%s", out)
		}
		if out, err := run(t, bin, "index", "-manifest", manPath, "-name", "missing"); err == nil || !strings.Contains(out, "no entry named") {
			t.Errorf("unknown entry error unclear: %v\n%s", err, out)
		}
		if out, err := run(t, bin, "index", "-manifest", manPath); err == nil || !strings.Contains(out, "-name") {
			t.Errorf("missing -name error unclear: %v\n%s", err, out)
		}
		out, err = run(t, bin, "index", "-manifest", manPath, "-name", "gen", "-check")
		if err != nil {
			t.Fatalf("built-in manifest entry: %v\n%s", err, out)
		}
		if !strings.Contains(out, "round trip: ok") {
			t.Errorf("manifest index output missing round trip:\n%s", out)
		}
	})
}
