// Mapgen compares the two top-h possible-mapping generators of Section V:
// whole-graph ranked assignment (Murty's algorithm, the paper's baseline)
// against the divide-and-conquer partitioning approach (Algorithm 5). Both
// produce identical mapping scores; partitioning is faster because XML
// schema matchings are sparse and decompose into many small components.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
)

func main() {
	const h = 50
	fmt.Printf("top-%d possible mappings, murty vs partition\n\n", h)
	fmt.Printf("%-5s %-9s %-11s %-12s %-12s %s\n",
		"ID", "capacity", "partitions", "murty", "partition", "speedup")
	for _, id := range dataset.IDs() {
		d, err := dataset.Load(id)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		a, err := mapgen.TopH(d.Matching, h, mapgen.Murty)
		if err != nil {
			log.Fatal(err)
		}
		tM := time.Since(t0)
		t1 := time.Now()
		b, err := mapgen.TopH(d.Matching, h, mapgen.Partition)
		if err != nil {
			log.Fatal(err)
		}
		tP := time.Since(t1)

		// The two methods must agree on every mapping score.
		if a.Len() != b.Len() {
			log.Fatalf("%s: murty found %d mappings, partition %d", id, a.Len(), b.Len())
		}
		for i := range a.Mappings {
			if math.Abs(a.Mappings[i].Score-b.Mappings[i].Score) > 1e-9 {
				log.Fatalf("%s: rank %d scores differ: %v vs %v",
					id, i, a.Mappings[i].Score, b.Mappings[i].Score)
			}
		}
		fmt.Printf("%-5s %-9d %-11d %-12v %-12v %.1fx\n",
			id, d.Matching.Capacity(), d.Matching.Stats().NumPartitions,
			tM.Round(time.Microsecond), tP.Round(time.Microsecond),
			float64(tM)/float64(tP))
	}
	fmt.Println("\nall ranked mapping scores identical across methods")
}
