// Keyword demonstrates probabilistic keyword queries (the paper's stated
// future work): keywords name concepts of the *target* schema, each
// possible mapping rewrites them to the source document, and the answers
// are SLCA nodes — the smallest document subtrees containing every keyword
// — weighted by mapping probability.
package main

import (
	"fmt"
	"log"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
)

func main() {
	d, err := dataset.Load("D7")
	if err != nil {
		log.Fatal(err)
	}
	set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
	if err != nil {
		log.Fatal(err)
	}
	doc := d.OrderDocument(3473, 42)

	for _, keywords := range [][]string{
		{"Quantity", "UP"},   // which line item carries both?
		{"Contact", "EMail"}, // contact info regions
		{"Street", "City"},   // address regions
		{"Quantity", "dave"}, // schema keyword + value term
	} {
		q := core.PrepareKeywordQuery(keywords, set, doc)
		results := core.EvaluateKeywords(q, set, doc)
		fmt.Printf("keywords %v: %d relevant mappings\n", keywords, len(results))
		answers := core.AggregateKeywordAnswers(results)
		shown := 0
		for _, a := range answers {
			if shown == 3 {
				fmt.Printf("  ... %d more answer sets\n", len(answers)-shown)
				break
			}
			paths := a.Values
			if len(paths) > 3 {
				paths = paths[:3]
			}
			fmt.Printf("  p=%.3f SLCA paths %v (%d total)\n", a.Prob, paths, len(a.Values))
			shown++
		}
		fmt.Println()
	}
}
