// Purchaseorder runs the paper's main evaluation scenario end to end:
// dataset D7 (an XCBL-like schema with 1076 elements matched to an
// Apertum-like schema with 166 elements, 226 correspondences), |M| = 100
// possible mappings, a ~3500-node order document, and the ten twig queries
// of Table III — evaluated both with the basic per-mapping algorithm and
// with the block tree, printing answers and timings.
package main

import (
	"fmt"
	"log"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
)

func main() {
	d, err := dataset.Load("D7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %s (%d elements) -> %s (%d elements), capacity %d\n",
		d.Info.ID, d.Info.Src, d.Source.Len(), d.Info.Tgt, d.Target.Len(), d.Matching.Capacity())

	set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived |M| = %d possible mappings (avg o-ratio %.3f)\n", set.Len(), set.AverageORatio())

	doc := d.OrderDocument(3473, 42)
	fmt.Printf("source document: %d nodes\n", doc.Len())

	start := time.Now()
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block tree: %d c-blocks in %v\n\n", bt.NumBlocks, time.Since(start).Round(time.Microsecond))

	for _, query := range dataset.Queries() {
		q, err := core.PrepareQuery(query.Text, set)
		if err != nil {
			log.Fatalf("%s: %v", query.ID, err)
		}
		t0 := time.Now()
		basic := core.EvaluateBasic(q, set, doc)
		tBasic := time.Since(t0)
		t1 := time.Now()
		tree := core.Evaluate(q, set, doc, bt)
		tTree := time.Since(t1)

		totalMatches := 0
		for _, r := range tree {
			totalMatches += len(r.Matches)
		}
		fmt.Printf("%-4s %-62s\n", query.ID, query.Text)
		fmt.Printf("     relevant=%d matches=%d basic=%v block-tree=%v\n",
			len(tree), totalMatches, tBasic.Round(time.Microsecond), tTree.Round(time.Microsecond))
		if len(basic) != len(tree) {
			log.Fatalf("%s: basic and block-tree disagree on relevant mappings", query.ID)
		}
		// Aggregate the answers bound to the query's last node.
		leaf := q.Pattern.Nodes()[q.Pattern.Size()-1]
		answers := core.AggregateByNode(tree, leaf)
		shown := 0
		for _, a := range answers {
			if shown == 3 {
				fmt.Printf("     ... %d more answer sets\n", len(answers)-shown)
				break
			}
			vals := a.Values
			if len(vals) > 4 {
				vals = vals[:4]
			}
			fmt.Printf("     p=%.3f %v\n", a.Prob, vals)
			shown++
		}
		fmt.Println()
	}
}
