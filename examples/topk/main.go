// Topk demonstrates the top-k probabilistic twig query (Section IV-C):
// when a user only cares about the most credible answers, evaluating just
// the k most probable mappings returns exactly the k highest-probability
// result tuples at a fraction of the cost of a full PTQ.
package main

import (
	"fmt"
	"log"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
)

func main() {
	d, err := dataset.Load("D7")
	if err != nil {
		log.Fatal(err)
	}
	set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
	if err != nil {
		log.Fatal(err)
	}
	doc := d.OrderDocument(3473, 42)
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	queryText := dataset.Queries()[9].Text // Q10
	q, err := core.PrepareQuery(queryText, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", queryText)

	t0 := time.Now()
	full := core.Evaluate(q, set, doc, bt)
	tFull := time.Since(t0)
	fmt.Printf("full PTQ: %d results in %v\n\n", len(full), tFull.Round(time.Microsecond))

	for _, k := range []int{1, 5, 10, 25, 50, 100} {
		t1 := time.Now()
		topk := core.EvaluateTopK(q, set, doc, bt, k)
		tK := time.Since(t1)
		minProb := 0.0
		if len(topk) > 0 {
			minProb = topk[len(topk)-1].Prob
		}
		fmt.Printf("top-%-3d -> %3d results in %-10v (lowest prob kept: %.4f)\n",
			k, len(topk), tK.Round(time.Microsecond), minProb)
	}

	// Verify the top-k answers agree with the full evaluation.
	fullByIdx := map[int]int{}
	for _, r := range full {
		fullByIdx[r.MappingIndex] = len(r.Matches)
	}
	topk := core.EvaluateTopK(q, set, doc, bt, 10)
	for _, r := range topk {
		if fullByIdx[r.MappingIndex] != len(r.Matches) {
			log.Fatalf("top-k result for mapping %d differs from full evaluation", r.MappingIndex)
		}
	}
	fmt.Println("\ntop-10 answers verified against the full PTQ")
}
