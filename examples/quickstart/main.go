// Quickstart walks the full pipeline of the paper's running example
// (Figures 1-3): two small purchase-order schemas are matched with the
// built-in COMA-style matcher, the matching is expanded into possible
// mappings with probabilities, a block tree compresses the mappings, and a
// probabilistic twig query //IP//ICN returns each contact name with the
// probability that it is the right answer.
package main

import (
	"fmt"
	"log"

	"xmatch/internal/core"
	"xmatch/internal/mapgen"
	"xmatch/internal/matcher"
	"xmatch/internal/schema"
	"xmatch/internal/xmltree"
)

func main() {
	// The source schema of Figure 1(a): an XCBL-flavoured order with
	// three contacts, each carrying a ContactName.
	source, err := schema.ParseSpec("XCBL", `
Order
  SellerParty
    SellerContactName
  BillToParty
    OrderContact
      ContactName
    ReceivingContact
      RcvContactName
    OtherContact
      OtherContactName
`)
	if err != nil {
		log.Fatal(err)
	}
	// The target schema of Figure 1(b): an OpenTrans-flavoured order
	// whose INVOICE_PARTY has a single CONTACT_NAME.
	target, err := schema.ParseSpec("OpenTrans", `
ORDER
  SUPPLIER_PARTY
    SUPPLIER_CONTACT_NAME
  INVOICE_PARTY
    CONTACT_NAME
`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Match the schemas: the matcher returns scored correspondences,
	// including several near-tie candidates for CONTACT_NAME.
	u, err := matcher.New(matcher.Options{Threshold: 0.45}).Match(source, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema matching: %d correspondences\n", u.Capacity())
	for _, c := range u.Corrs {
		fmt.Printf("  %.3f  %s ~ %s\n", c.Score, source.ByID(c.S).Path, target.ByID(c.T).Path)
	}

	// 2. Derive the most probable possible mappings (Section V): the
	// partition-based generator ranks one-to-one selections of the
	// correspondences and normalizes their scores into probabilities.
	set, err := mapgen.TopH(u, 8, mapgen.Partition)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npossible mappings |M| = %d\n", set.Len())
	for i, m := range set.Mappings {
		fmt.Printf("  m%d: prob=%.3f correspondences=%d\n", i+1, m.Prob, m.Len())
	}

	// 3. Build the block tree (Section III): shared correspondence sets
	// are stored once and reused during query evaluation.
	bt, err := core.Build(set, core.Options{Tau: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	comp := bt.Compress()
	fmt.Printf("\nblock tree: %d c-blocks, compression ratio %.1f%%\n",
		bt.NumBlocks, 100*comp.CompressionRatio())

	// 4. A source document (Figure 2) with three candidate contact names.
	root := xmltree.NewRoot("Order")
	bp := root.AddChild("BillToParty")
	bp.AddChild("OrderContact").AddChild("ContactName").AddText("Cathy")
	bp.AddChild("ReceivingContact").AddChild("RcvContactName").AddText("Bob")
	bp.AddChild("OtherContact").AddChild("OtherContactName").AddText("Alice")
	root.AddChild("SellerParty").AddChild("SellerContactName").AddText("Sam")
	doc := xmltree.New(root)

	// 5. The probabilistic twig query of the introduction: which contact
	// name answers //IP//ICN, and with what probability?
	q, err := core.PrepareQuery("//INVOICE_PARTY//CONTACT_NAME", set)
	if err != nil {
		log.Fatal(err)
	}
	results := core.Evaluate(q, set, doc, bt)
	icn := q.Pattern.Nodes()[1]
	fmt.Printf("\nPTQ //INVOICE_PARTY//CONTACT_NAME over %d mappings:\n", len(results))
	for _, a := range core.AggregateByNode(results, icn) {
		fmt.Printf("  answer %v with probability %.3f\n", a.Values, a.Prob)
	}
}
