package dataset

import (
	"testing"

	"xmatch/internal/xmltree"
)

func TestOrderCorpusDeterministic(t *testing.T) {
	d := MustLoad("D7")
	a := d.OrderCorpus(4, 8000, 7)
	b := d.OrderCorpus(4, 8000, 7)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("got %d/%d members, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("member %d: %d vs %d nodes", i, a[i].Len(), b[i].Len())
		}
		if a[i].NumBase() != b[i].NumBase() {
			t.Fatalf("member %d: base %d vs %d", i, a[i].NumBase(), b[i].NumBase())
		}
		if a[i].String() != b[i].String() {
			t.Fatalf("member %d: serializations differ", i)
		}
		an, bn := a[i].Nodes(), b[i].Nodes()
		for j := range an {
			if an[j].Start != bn[j].Start || an[j].End != bn[j].End {
				t.Fatalf("member %d node %d: intervals differ", i, j)
			}
		}
	}
}

func TestOrderCorpusLayout(t *testing.T) {
	d := MustLoad("D7")
	members := d.OrderCorpus(3, 9000, 11)
	total := 0
	for i, m := range members {
		total += m.Len()
		if i > 0 {
			prev := members[i-1]
			if m.Root.Start <= prev.Root.End {
				t.Fatalf("member %d range [%d,%d] overlaps member %d end %d",
					i, m.Root.Start, m.Root.End, i-1, prev.Root.End)
			}
			// 4x headroom: the next base sits at prev.base + 4*span.
			span := prev.MaxEnd() - prev.NumBase()
			if m.NumBase() != prev.NumBase()+4*span {
				t.Fatalf("member %d base %d, want %d", i, m.NumBase(), prev.NumBase()+4*span)
			}
		}
	}
	// Approximately totalNodes overall: each member misses its target by
	// at most one line-item subtree, like OrderDocument.
	if total < 9000*9/10 || total > 9000*11/10 {
		t.Fatalf("corpus totals %d nodes, want ~9000", total)
	}
	// Members differ in content (distinct derived seeds).
	if members[0].String() == members[1].String() {
		t.Fatal("members 0 and 1 are identical; seeds not derived per member")
	}
	// The members assemble into a corpus oracle.
	if _, err := xmltree.Corpus(members...); err != nil {
		t.Fatalf("corpus assembly: %v", err)
	}
	// Shard count 1 degenerates to a single OrderDocument-shaped member.
	one := d.OrderCorpus(1, 3473, 7)
	if len(one) != 1 || one[0].NumBase() != 0 {
		t.Fatalf("single-shard corpus: %d members, base %d", len(one), one[0].NumBase())
	}
	if one[0].String() != d.OrderDocument(3473, 7).String() {
		t.Fatal("single-shard member differs from OrderDocument with the same seed")
	}
}
