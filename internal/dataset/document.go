package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"xmatch/internal/schema"
	"xmatch/internal/xmltree"
)

// contactNames populate contact-name leaves so PTQ answers are readable,
// echoing the paper's running example.
var contactNames = []string{"Alice", "Bob", "Cathy", "Dave", "Erin", "Frank", "Grace", "Heidi"}

var cities = []string{"Hong Kong", "Leipzig", "Paris", "Osaka", "Toronto", "Lagos"}

// OrderDocument generates a document conforming to the dataset's source
// schema with approximately targetNodes element nodes, mirroring the
// paper's Order.xml (3473 nodes): the schema is instantiated once, then the
// line-item subtree is repeated until the node budget is met. Leaf values
// are filled deterministically from the seed so value predicates have
// matches.
func (d *Dataset) OrderDocument(targetNodes int, seed int64) *xmltree.Document {
	return xmltree.New(d.orderTree(targetNodes, seed))
}

// OrderCorpus generates the members of a sharded Order-family collection:
// shards documents built like OrderDocument, totalling approximately
// totalNodes element nodes, each member numbered at a disjoint ascending
// interval base with 4x headroom over its own span. The layout makes the
// members concatenable (xmltree.Corpus) and leaves each member room to
// grow about fourfold under mutation before its whole-document renumber
// could reach the next member's range. Per-member seeds derive
// deterministically from seed, so the corpus is reproducible node for node
// — the determinism test in this package regenerates and compares.
func (d *Dataset) OrderCorpus(shards, totalNodes int, seed int64) []*xmltree.Document {
	if shards < 1 {
		shards = 1
	}
	per := totalNodes / shards
	members := make([]*xmltree.Document, shards)
	base := 0
	for i := 0; i < shards; i++ {
		target := per
		if i == 0 {
			target += totalNodes % shards
		}
		m := xmltree.NewAt(d.orderTree(target, seed+int64(i)*1000003), base)
		members[i] = m
		span := m.MaxEnd() - base
		base += 4 * span
	}
	return members
}

// orderTree builds the node tree of one OrderDocument instance.
func (d *Dataset) orderTree(targetNodes int, seed int64) *xmltree.Node {
	rng := rand.New(rand.NewSource(seed))
	lineElem := d.src.primaries["line"]

	valueFor := func(e *schema.Element, ordinal int) string {
		key := ""
		for k, pe := range d.src.primaries {
			if pe == e {
				key = k
				break
			}
		}
		if key == "" {
			for k, alts := range d.src.alts {
				for _, ae := range alts {
					if ae == e {
						key = k
					}
				}
			}
		}
		switch key {
		case "buyer.contact.name", "deliver.contact.name", "seller.contact.name", "invoice.contact.name":
			return contactNames[rng.Intn(len(contactNames))]
		case "buyer.contact.email", "deliver.contact.email":
			name := contactNames[rng.Intn(len(contactNames))]
			return strings.ToLower(name) + "@example.com"
		case "deliver.addr.city", "invoice.addr.city":
			return cities[rng.Intn(len(cities))]
		case "deliver.addr.street", "invoice.addr.street":
			return fmt.Sprintf("%d Main St", 1+rng.Intn(200))
		case "line.num":
			return fmt.Sprintf("%d", ordinal)
		case "line.qty", "total.qty":
			return fmt.Sprintf("%d", 1+rng.Intn(50))
		case "line.price.up":
			return fmt.Sprintf("%d.%02d", 1+rng.Intn(900), rng.Intn(100))
		case "line.bpid", "line.spid":
			return fmt.Sprintf("P-%04d", rng.Intn(10000))
		case "hdr.num":
			return fmt.Sprintf("PO-%06d", rng.Intn(1000000))
		case "hdr.date", "line.date":
			return fmt.Sprintf("2009-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
		default:
			return fmt.Sprintf("v%d", rng.Intn(100))
		}
	}

	var lineSubtreeSize int
	if lineElem != nil {
		lineSubtreeSize = lineElem.SubtreeSize()
	}

	// instantiate builds one instance of the subtree rooted at e,
	// repeating the line-item element reps times.
	var instantiate func(e *schema.Element, ordinal int) *xmltree.Node
	instantiate = func(e *schema.Element, ordinal int) *xmltree.Node {
		n := xmltree.NewRoot(e.Name)
		if e.IsLeaf() {
			n.Text = valueFor(e, ordinal)
			return n
		}
		for _, c := range e.Children {
			reps := 1
			if c == lineElem {
				// Repeat line items to reach the node budget.
				base := d.Source.Len() // one instance of everything
				if lineSubtreeSize > 0 && targetNodes > base {
					reps = 1 + (targetNodes-base)/lineSubtreeSize
				}
			}
			for r := 0; r < reps; r++ {
				n.Children = append(n.Children, instantiate(c, r+1))
			}
		}
		return n
	}
	return instantiate(d.Source.Root, 1)
}

// Query is one row of Table III.
type Query struct {
	ID   string
	Text string
}

// Queries returns the ten PTQ workload queries of Table III, normalized to
// this package's twig syntax (predicates start with '.', the paper's
// "LineNO" typo is corrected, and BPID/UP abbreviations are kept as element
// names of the Apertum-like target schema). They are posed against dataset
// D7's target schema.
func Queries() []Query {
	return []Query{
		{"Q1", "Order/DeliverTo/Address[./City][./Country]/Street"},
		{"Q2", "Order/DeliverTo/Contact/EMail"},
		{"Q3", "Order/DeliverTo[./Address/City]/Contact/EMail"},
		{"Q4", "Order/POLine[./LineNo]//UP"},
		{"Q5", "Order/POLine[./LineNo][.//UP]/Quantity"},
		{"Q6", "Order/POLine[./BPID][./LineNo][.//UP]/Quantity"},
		{"Q7", "Order[./DeliverTo//Street]/POLine[.//BPID][.//UP]/Quantity"},
		{"Q8", "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity"},
		{"Q9", "Order[./Buyer/Contact]/POLine[.//BPID]/Quantity"},
		{"Q10", "Order[./Buyer/Contact][./DeliverTo//City]//BPID"},
	}
}
