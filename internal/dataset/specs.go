package dataset

// Annotated schema specifications for the seven e-commerce schemas of
// Table II. The format is the indentation format of schema.ParseSpec with
// an optional concept annotation per line:
//
//	ElementName @concept.key     primary holder of the concept
//	ElementName @concept.key!    alternate candidate for the concept
//
// Concept keys shared between two schemas yield planned correspondences
// (see matching.go in this package); alternates model the matcher
// ambiguity of Figure 1 of the paper (e.g. three ContactName elements all
// matching one CONTACT_NAME). Each spec is a hand-written backbone; the
// generator pads every schema with deterministic filler subtrees up to the
// exact element counts of Table II.

// apertumSpec is the Apertum-like target schema of datasets D6 and D7. Its
// backbone contains exactly the paths used by the Table III queries
// (Order/DeliverTo/Address/Street, Order/POLine//UP, ...).
const apertumSpec = `
Order @order
  OrderHeader @hdr
    OrderDate @hdr.date
    OrderNumber @hdr.num
    Currency @hdr.currency
    Remark @hdr.remark
  Buyer @buyer
    BuyerName @buyer.name
    BuyerID @buyer.id
    Contact @buyer.contact
      Name @buyer.contact.name
      EMail @buyer.contact.email
      Phone @buyer.contact.phone
  Supplier @seller
    SupplierName @seller.name
    SupplierID @seller.id
  DeliverTo @deliver
    Address @deliver.addr
      Street @deliver.addr.street
      City @deliver.addr.city
      Zip @deliver.addr.zip
      Country @deliver.addr.country
    Contact @deliver.contact
      Name @deliver.contact.name
      EMail @deliver.contact.email
      Phone @deliver.contact.phone
  InvoiceParty @invoice
    InvoiceAddress @invoice.addr
      InvoiceStreet @invoice.addr.street
      InvoiceCity @invoice.addr.city
    InvoiceContact @invoice.contact
      InvoiceContactName @invoice.contact.name
  POLine @line
    LineNo @line.num
    BPID @line.bpid
    SPID @line.spid
    Quantity @line.qty
    UOM @line.uom
    Price @line.price
      UP @line.price.up
      Amount @line.price.amount
      Tax @line.price.tax
    Description @line.desc
    RequestedDate @line.date
  Payment @pay
    PaymentTerms @pay.terms
    PaymentMethod @pay.method
  Shipment @ship
    ShipMethod @ship.method
    Carrier @ship.carrier
  OrderSummary @total
    TotalAmount @total.amount
    TotalQuantity @total.qty
    TotalTax @total.tax
`

// xcblSpec is the XCBL-like source schema of D7, D8, D9 (and target of
// D10): a deeply nested purchase-order schema. The ShipToParty contacts
// reproduce the ambiguity of Figure 1: OrderContact, ReceivingContact and
// OtherContact all carry candidate ContactName/EMail elements for the
// deliver.contact concepts.
const xcblSpec = `
Order @order
  OrderHeader @hdr
    OrderIssueDate @hdr.date
    OrderNumber @hdr.num
    OrderCurrency @hdr.currency
    OrderLanguage
    OrderRemark @hdr.remark
    OrderParty
      BuyerParty @buyer
        PartyID @buyer.id
        PartyName @buyer.name
        Contact @buyer.contact
          ContactName @buyer.contact.name
          ContactEMail @buyer.contact.email
          ContactPhone @buyer.contact.phone
      SellerParty @seller
        SellerID @seller.id
        SellerName @seller.name
        SellerContact @seller.contact
          SellerContactName @seller.contact.name
      ShipToParty @deliver
        NameAddress @deliver.addr
          Street @deliver.addr.street
          City @deliver.addr.city
          PostalCode @deliver.addr.zip
          Country @deliver.addr.country
          Region
        OrderContact @deliver.contact
          ContactName @deliver.contact.name
          EMail @deliver.contact.email
          Phone @deliver.contact.phone
        ReceivingContact @deliver.contact!
          RecvContactName @deliver.contact.name!
          RecvEMail @deliver.contact.email!
        OtherContact @deliver.contact!
          OtherContactName @deliver.contact.name!
      InvoiceParty @invoice
        InvoiceNameAddress @invoice.addr
          InvoiceStreet @invoice.addr.street
          InvoiceCity @invoice.addr.city
        BillingContact @invoice.contact
          BillingContactName @invoice.contact.name
    PaymentInstructions @pay
      PaymentTerms @pay.terms
      PaymentMean @pay.method
    TransportRouting @ship
      ShipmentMethodOfPayment @ship.method
      CarrierName @ship.carrier
  OrderDetail
    ListOfItemDetail
      ItemDetail @line
        LineItemNum @line.num
        BaseItemDetail
          ItemIdentifiers
            BuyerPartNumber @line.bpid
            SellerPartNumber @line.spid
          Quantity @line.qty
          UnitOfMeasure @line.uom
          RequestedDeliveryDate @line.date
        PricingDetail @line.price
          UnitPrice @line.price.up
          TotalAmount @line.price.amount
          Tax @line.price.tax
        ItemDescription @line.desc
  OrderSummary @total
    NumberOfLines
    TotalOrderAmount @total.amount
    TotalQuantityOrdered @total.qty
    TotalTaxAmount @total.tax
`

// openTransSpec is the OpenTrans-like schema (UPPER_SNAKE naming).
const openTransSpec = `
ORDER @order
  ORDER_HEADER @hdr
    ORDER_DATE @hdr.date
    ORDER_ID @hdr.num
    CURRENCY @hdr.currency
    REMARK @hdr.remark
  ORDER_PARTIES
    BUYER_PARTY @buyer
      BUYER_ID @buyer.id
      BUYER_NAME @buyer.name
      BUYER_CONTACT @buyer.contact
        CONTACT_NAME @buyer.contact.name
        CONTACT_EMAIL @buyer.contact.email
        CONTACT_PHONE @buyer.contact.phone
    SUPPLIER_PARTY @seller
      SUPPLIER_ID @seller.id
      SUPPLIER_NAME @seller.name
      SUPPLIER_CONTACT @seller.contact
        SUPPLIER_CONTACT_NAME @seller.contact.name
    DELIVERY_PARTY @deliver
      ADDRESS @deliver.addr
        STREET @deliver.addr.street
        CITY @deliver.addr.city
        ZIP @deliver.addr.zip
        COUNTRY @deliver.addr.country
      DELIVERY_CONTACT @deliver.contact
        DELIVERY_CONTACT_NAME @deliver.contact.name
        DELIVERY_CONTACT_EMAIL @deliver.contact.email
    INVOICE_PARTY @invoice
      INVOICE_ADDRESS @invoice.addr
        INVOICE_STREET @invoice.addr.street
        INVOICE_CITY @invoice.addr.city
      INVOICE_CONTACT @invoice.contact
        INVOICE_CONTACT_NAME @invoice.contact.name
  ORDER_ITEM_LIST
    ORDER_ITEM @line
      LINE_ITEM_ID @line.num
      BUYER_PID @line.bpid
      SUPPLIER_PID @line.spid
      QUANTITY @line.qty
      ORDER_UNIT @line.uom
      PRICE @line.price
        PRICE_AMOUNT @line.price.up
        PRICE_LINE_AMOUNT @line.price.amount
        TAX @line.price.tax
      DESCRIPTION_SHORT @line.desc
      DELIVERY_DATE @line.date
  PAYMENT @pay
    PAYMENT_TERMS @pay.terms
    PAYMENT_MEANS @pay.method
  TRANSPORT @ship
    TRANSPORT_MODE @ship.method
    CARRIER @ship.carrier
  ORDER_SUMMARY @total
    TOTAL_AMOUNT @total.amount
    TOTAL_QUANTITY @total.qty
    TOTAL_TAX @total.tax
`

// excelSpec is the Excel-like schema: a flat spreadsheet export of purchase
// orders.
const excelSpec = `
PurchaseOrder @order
  PONumber @hdr.num
  PODate @hdr.date
  Currency @hdr.currency
  BuyerName @buyer.name
  BuyerContact @buyer.contact.name
  BuyerEmail @buyer.contact.email
  BuyerPhone @buyer.contact.phone
  SupplierName @seller.name
  ShipStreet @deliver.addr.street
  ShipCity @deliver.addr.city
  ShipZip @deliver.addr.zip
  ShipCountry @deliver.addr.country
  ShipContact @deliver.contact.name
  ShipEmail @deliver.contact.email
  BillStreet @invoice.addr.street
  BillCity @invoice.addr.city
  Item @line
    ItemNo @line.num
    PartNumber @line.bpid
    Qty @line.qty
    Unit @line.uom
    UnitPrice @line.price.up
    LineAmount @line.price.amount
    ItemText @line.desc
  Terms @pay.terms
  ShipVia @ship.method
  OrderTotal @total.amount
`

// norisSpec is the Noris-like schema.
const norisSpec = `
Auftrag @order
  Kopf @hdr
    Belegnummer @hdr.num
    Belegdatum @hdr.date
    Waehrung @hdr.currency
    Notiz @hdr.remark
  Kunde @buyer
    KundenName @buyer.name
    KundenNummer @buyer.id
    Ansprechpartner @buyer.contact
      PartnerName @buyer.contact.name
      PartnerEmail @buyer.contact.email
      PartnerTelefon @buyer.contact.phone
  Lieferant @seller
    LieferantName @seller.name
    LieferantNummer @seller.id
  Lieferadresse @deliver
    Anschrift @deliver.addr
      Strasse @deliver.addr.street
      Ort @deliver.addr.city
      PLZ @deliver.addr.zip
      Land @deliver.addr.country
    Kontakt @deliver.contact
      KontaktName @deliver.contact.name
      KontaktEmail @deliver.contact.email
  Rechnung @invoice
    RechnungsAnschrift @invoice.addr
      RechnungsStrasse @invoice.addr.street
      RechnungsOrt @invoice.addr.city
  Position @line
    PositionsNummer @line.num
    ArtikelNummer @line.bpid
    Menge @line.qty
    Einheit @line.uom
    Preis @line.price
      Einzelpreis @line.price.up
      Gesamtpreis @line.price.amount
    Beschreibung @line.desc
  Zahlung @pay
    Zahlungsbedingung @pay.terms
    Zahlungsart @pay.method
  Summe @total
    Gesamtsumme @total.amount
    Gesamtmenge @total.qty
`

// paragonSpec is the Paragon-like schema.
const paragonSpec = `
SalesOrder @order
  Header @hdr
    DocNumber @hdr.num
    DocDate @hdr.date
    CurrencyCode @hdr.currency
    Note @hdr.remark
  Customer @buyer
    CustomerName @buyer.name
    CustomerCode @buyer.id
    CustomerContact @buyer.contact
      ContactPerson @buyer.contact.name
      ContactMail @buyer.contact.email
  Vendor @seller
    VendorName @seller.name
    VendorCode @seller.id
  Delivery @deliver
    DeliveryAddress @deliver.addr
      AddrStreet @deliver.addr.street
      AddrCity @deliver.addr.city
      AddrPostcode @deliver.addr.zip
      AddrCountry @deliver.addr.country
    DeliveryContact @deliver.contact
      DeliveryContactName @deliver.contact.name
      DeliveryContactMail @deliver.contact.email
  Billing @invoice
    BillingAddress @invoice.addr
      BillingStreet @invoice.addr.street
      BillingCity @invoice.addr.city
  OrderLine @line
    LineNumber @line.num
    CustomerPartNo @line.bpid
    VendorPartNo @line.spid
    OrderedQty @line.qty
    QtyUnit @line.uom
    LinePrice @line.price
      NetPrice @line.price.up
      GrossAmount @line.price.amount
    LineText @line.desc
  PaymentInfo @pay
    TermsOfPayment @pay.terms
  Totals @total
    NetTotal @total.amount
    QtyTotal @total.qty
`

// cidxSpec is the CIDX-like schema: a compact chemical-industry order.
const cidxSpec = `
OrderCreate @order
  OrderHead @hdr
    OrderNumber @hdr.num
    OrderDate @hdr.date
    CurrencyISO @hdr.currency
  BuyerInformation @buyer
    BuyerOrgName @buyer.name
    BuyerContactName @buyer.contact.name
    BuyerContactEMail @buyer.contact.email
  ShipTo @deliver
    ShipToStreet @deliver.addr.street
    ShipToCity @deliver.addr.city
    ShipToZip @deliver.addr.zip
    ShipToCountry @deliver.addr.country
    ShipToContact @deliver.contact.name
  ProductLineItem @line
    LineNumber @line.num
    BuyerProductID @line.bpid
    SellerProductID @line.spid
    OrderQuantity @line.qty
    UnitOfMeasureCode @line.uom
    ProductUnitPrice @line.price.up
    LineItemTotal @line.price.amount
  OrderTotals @total
    TotalValue @total.amount
    TotalLines @total.qty
`

// schemaSpecs maps schema names to their annotated backbone and the exact
// element count of Table II.
var schemaSpecs = map[string]struct {
	spec string
	size int
}{
	"Excel":   {excelSpec, 48},
	"Noris":   {norisSpec, 66},
	"Paragon": {paragonSpec, 69},
	"OT":      {openTransSpec, 247},
	"Apertum": {apertumSpec, 166},
	"XCBL":    {xcblSpec, 1076},
	"CIDX":    {cidxSpec, 39},
}
