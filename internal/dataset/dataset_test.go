package dataset

import (
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/mapgen"
	"xmatch/internal/twig"
)

func TestSchemasMatchTableIISizes(t *testing.T) {
	for name, entry := range schemaSpecs {
		b, err := getSchema(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := b.schema.Len(); got != entry.size {
			t.Errorf("schema %s has %d elements, want %d", name, got, entry.size)
		}
	}
}

func TestLoadAllDatasets(t *testing.T) {
	ds, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 10 {
		t.Fatalf("loaded %d datasets, want 10", len(ds))
	}
	for _, d := range ds {
		if got := d.Matching.Capacity(); got != d.Info.Cap {
			t.Errorf("%s: capacity %d, want %d", d.Info.ID, got, d.Info.Cap)
		}
		if d.Source.Name != d.Info.Src || d.Target.Name != d.Info.Tgt {
			t.Errorf("%s: schema names %s->%s, want %s->%s",
				d.Info.ID, d.Source.Name, d.Target.Name, d.Info.Src, d.Info.Tgt)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("D11"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("D3")
	b := MustLoad("D3")
	if a.Matching.Capacity() != b.Matching.Capacity() {
		t.Fatal("capacities differ across loads")
	}
	for i := range a.Matching.Corrs {
		if a.Matching.Corrs[i] != b.Matching.Corrs[i] {
			t.Fatalf("correspondence %d differs across loads", i)
		}
	}
}

func TestMatchingsAreSparse(t *testing.T) {
	for _, d := range mustAll(t) {
		st := d.Matching.Stats()
		if st.NumPartitions < 5 {
			t.Errorf("%s: only %d partitions; the paper's divide-and-conquer relies on sparsity",
				d.Info.ID, st.NumPartitions)
		}
		if st.MaxPartition > d.Matching.Capacity() {
			t.Errorf("%s: impossible partition size %d", d.Info.ID, st.MaxPartition)
		}
	}
}

func mustAll(t *testing.T) []*Dataset {
	t.Helper()
	ds, err := All()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTopHMappingsGenerate(t *testing.T) {
	for _, id := range []string{"D1", "D5", "D7"} {
		d := MustLoad(id)
		set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if set.Len() != 100 {
			t.Errorf("%s: generated %d mappings, want 100 (needs enough ambiguity)", id, set.Len())
		}
		or := set.AverageORatio()
		if or < 0.3 || or > 1 {
			t.Errorf("%s: o-ratio %v outside plausible range", id, or)
		}
	}
}

func TestQueriesResolveOnD7Target(t *testing.T) {
	d := MustLoad("D7")
	for _, q := range Queries() {
		p, err := twig.Parse(q.Text)
		if err != nil {
			t.Errorf("%s: parse: %v", q.ID, err)
			continue
		}
		if embs := twig.Resolve(p, d.Target); len(embs) == 0 {
			t.Errorf("%s: %q does not resolve in %s", q.ID, q.Text, d.Target.Name)
		}
	}
}

func TestOrderDocumentSize(t *testing.T) {
	d := MustLoad("D7")
	doc := d.OrderDocument(3473, 42)
	n := doc.Len()
	if n < 3473*8/10 || n > 3473*13/10 {
		t.Fatalf("document has %d nodes, want roughly 3473", n)
	}
	if doc.Root.Label != d.Source.Root.Name {
		t.Fatalf("document root %q, want %q", doc.Root.Label, d.Source.Root.Name)
	}
}

func TestOrderDocumentConformsToSourceSchema(t *testing.T) {
	d := MustLoad("D7")
	doc := d.OrderDocument(3473, 42)
	for _, p := range doc.Paths() {
		if d.Source.ByPath(p) == nil {
			t.Fatalf("document path %q not in source schema", p)
		}
	}
}

func TestQueriesHaveAnswers(t *testing.T) {
	// End-to-end: the Table III queries must return non-empty matches for
	// at least some mappings on the D7 pipeline, otherwise the query
	// benchmarks would measure empty work.
	d := MustLoad("D7")
	set, err := mapgen.TopH(d.Matching, 100, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := d.OrderDocument(3473, 42)
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		pq, err := core.PrepareQuery(q.Text, set)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		results := core.Evaluate(pq, set, doc, bt)
		if len(results) == 0 {
			t.Errorf("%s: no relevant mappings", q.ID)
			continue
		}
		nonEmpty := 0
		for _, r := range results {
			if len(r.Matches) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			t.Errorf("%s: all %d relevant mappings produced empty matches", q.ID, len(results))
		}
	}
}
