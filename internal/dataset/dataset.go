// Package dataset provides the experimental workloads of the paper's
// evaluation (Section VI): the ten schema-matching datasets of Table II
// built over seven synthetic e-commerce schemas, the ten twig queries of
// Table III, and the Order document used as the source instance.
//
// Everything is generated deterministically from fixed seeds, so runs are
// reproducible. The schemas carry hand-written backbones annotated with
// shared concept keys; correspondences are planned from the concept overlap
// (primary and alternate candidates model matcher ambiguity) and padded
// with clustered noise correspondences to reach the capacities reported in
// Table II. See DESIGN.md for why this substitutes for COMA++ output.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"xmatch/internal/matching"
	"xmatch/internal/schema"
)

// Info is one row of Table II: the dataset's composition and the values the
// paper reports, kept for side-by-side comparison with measured values.
type Info struct {
	ID       string
	Src, Tgt string
	// Opt is the COMA++ matcher option of the paper ("f" fragment,
	// "c" context); here it only distinguishes dataset variants.
	Opt string
	// Cap is the matching capacity (number of correspondences).
	Cap int
	// PaperORatio is the average mapping overlap the paper reports.
	PaperORatio float64
}

// Dataset is a loaded Table II dataset.
type Dataset struct {
	Info     Info
	Source   *schema.Schema
	Target   *schema.Schema
	Matching *matching.Matching

	src, tgt *builtSchema
}

var tableII = []struct {
	Info
	seed int64
}{
	{Info{"D1", "Excel", "Noris", "f", 30, 0.79}, 9101},
	{Info{"D2", "Excel", "Paragon", "c", 47, 0.63}, 9102},
	{Info{"D3", "Excel", "Paragon", "f", 31, 0.57}, 9103},
	{Info{"D4", "Noris", "Paragon", "c", 41, 0.64}, 9104},
	{Info{"D5", "Noris", "Paragon", "f", 21, 0.53}, 9105},
	{Info{"D6", "OT", "Apertum", "c", 77, 0.87}, 9106},
	{Info{"D7", "XCBL", "Apertum", "c", 226, 0.84}, 9107},
	{Info{"D8", "XCBL", "CIDX", "c", 127, 0.82}, 9108},
	{Info{"D9", "XCBL", "OT", "c", 619, 0.91}, 9109},
	{Info{"D10", "OT", "XCBL", "c", 619, 0.91}, 9110},
}

// IDs returns the dataset identifiers D1..D10 in order.
func IDs() []string {
	out := make([]string, len(tableII))
	for i, r := range tableII {
		out[i] = r.ID
	}
	return out
}

// Load builds the dataset with the given ID ("D1".."D10"). Schemas are
// built once per schema name and shared across datasets.
func Load(id string) (*Dataset, error) {
	for _, row := range tableII {
		if row.ID != id {
			continue
		}
		src, err := getSchema(row.Src)
		if err != nil {
			return nil, err
		}
		tgt, err := getSchema(row.Tgt)
		if err != nil {
			return nil, err
		}
		u, err := buildMatching(src, tgt, row.Cap, row.seed)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", id, err)
		}
		return &Dataset{
			Info:     row.Info,
			Source:   src.schema,
			Target:   tgt.schema,
			Matching: u,
			src:      src,
			tgt:      tgt,
		}, nil
	}
	return nil, fmt.Errorf("dataset: unknown ID %q (want D1..D10)", id)
}

// MustLoad is Load, panicking on error.
func MustLoad(id string) *Dataset {
	d, err := Load(id)
	if err != nil {
		panic(err)
	}
	return d
}

// All loads every Table II dataset in order.
func All() ([]*Dataset, error) {
	out := make([]*Dataset, 0, len(tableII))
	for _, row := range tableII {
		d, err := Load(row.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// builtSchema is a schema plus its concept annotations and filler elements.
type builtSchema struct {
	schema    *schema.Schema
	primaries map[string]*schema.Element
	alts      map[string][]*schema.Element
	filler    []*schema.Element
}

var schemaCache = map[string]*builtSchema{}

func getSchema(name string) (*builtSchema, error) {
	if b, ok := schemaCache[name]; ok {
		return b, nil
	}
	entry, ok := schemaSpecs[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown schema %q", name)
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	b, err := buildAnnotatedSchema(name, entry.spec, entry.size, rng)
	if err != nil {
		return nil, err
	}
	schemaCache[name] = b
	return b, nil
}

// buildAnnotatedSchema parses an annotated backbone spec, pads the schema
// with filler subtrees to exactly size elements, and freezes it.
func buildAnnotatedSchema(name, spec string, size int, rng *rand.Rand) (*builtSchema, error) {
	out := &builtSchema{
		primaries: map[string]*schema.Element{},
		alts:      map[string][]*schema.Element{},
	}
	type frame struct {
		elem  *schema.Element
		depth int
	}
	var s *schema.Schema
	var stack []frame
	var all []*schema.Element
	for lineNo, raw := range strings.Split(spec, "\n") {
		line := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(line) == "" {
			continue
		}
		depth := 0
		for strings.HasPrefix(line, "  ") {
			line = line[2:]
			depth++
		}
		fields := strings.Fields(line)
		elemName := fields[0]
		var concept string
		alt := false
		if len(fields) > 1 && strings.HasPrefix(fields[1], "@") {
			concept = strings.TrimPrefix(fields[1], "@")
			if strings.HasSuffix(concept, "!") {
				concept = strings.TrimSuffix(concept, "!")
				alt = true
			}
		}
		var elem *schema.Element
		if s == nil {
			if depth != 0 {
				return nil, fmt.Errorf("schema %s: line %d: root must be unindented", name, lineNo+1)
			}
			s = schema.NewBuilder(name, elemName)
			elem = s.Root
			stack = []frame{{elem, 0}}
		} else {
			for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("schema %s: line %d: multiple roots", name, lineNo+1)
			}
			elem = stack[len(stack)-1].elem.AddChild(elemName)
			stack = append(stack, frame{elem, depth})
		}
		all = append(all, elem)
		if concept != "" {
			if alt {
				out.alts[concept] = append(out.alts[concept], elem)
			} else if prev, dup := out.primaries[concept]; dup {
				return nil, fmt.Errorf("schema %s: concept %s on both %s and %s", name, concept, prev.Name, elem.Name)
			} else {
				out.primaries[concept] = elem
			}
		}
	}
	if s == nil {
		return nil, fmt.Errorf("schema %s: empty spec", name)
	}
	if len(all) > size {
		return nil, fmt.Errorf("schema %s: backbone has %d elements, exceeds Table II size %d", name, len(all), size)
	}
	out.filler = padFiller(s, all, size-len(all), name, rng)
	out.schema = s.Freeze()
	return out, nil
}

// padFiller grows the schema by n filler elements: small subtrees of
// synthetic segment names attached under randomly chosen interior nodes,
// mimicking the optional segments real e-commerce standards carry.
func padFiller(s *schema.Schema, backbone []*schema.Element, n int, name string, rng *rand.Rand) []*schema.Element {
	upper := strings.ToUpper(name) == name // OT-style naming
	var filler []*schema.Element
	// Attachment points: the root and interior backbone nodes down to
	// level 4, so every major region (parties, line items, addresses)
	// carries optional filler segments the way real standards do.
	var anchors []*schema.Element
	anchors = append(anchors, s.Root)
	for _, e := range backbone {
		if len(e.Children) > 0 && e.Level <= 4 {
			anchors = append(anchors, e)
		}
	}
	usedNames := map[*schema.Element]map[string]bool{}
	nameUsed := func(p *schema.Element, nm string) bool {
		set, ok := usedNames[p]
		if !ok {
			set = map[string]bool{}
			for _, c := range p.Children {
				set[c.Name] = true
			}
			usedNames[p] = set
		}
		return set[nm]
	}
	markUsed := func(p *schema.Element, nm string) {
		if usedNames[p] == nil {
			nameUsed(p, nm)
		}
		usedNames[p][nm] = true
	}
	newName := func(p *schema.Element) string {
		for {
			nm := fillerName(rng, upper)
			if !nameUsed(p, nm) {
				markUsed(p, nm)
				return nm
			}
		}
	}
	added := 0
	for added < n {
		anchor := anchors[rng.Intn(len(anchors))]
		// Build a subtree of up to the remaining budget.
		budget := 3 + rng.Intn(12)
		if budget > n-added {
			budget = n - added
		}
		top := anchor.AddChild(newName(anchor))
		filler = append(filler, top)
		added++
		nodes := []*schema.Element{top}
		for added < n {
			budget--
			if budget <= 0 {
				break
			}
			parent := nodes[rng.Intn(len(nodes))]
			if parent.Level-top.Level >= 3 {
				continue
			}
			c := parent.AddChild(newName(parent))
			filler = append(filler, c)
			nodes = append(nodes, c)
			added++
		}
	}
	return filler
}

var fillerSyllables = []string{
	"Trans", "Port", "Rout", "Ship", "Doc", "Ref", "Code", "Info", "Data",
	"Spec", "Attach", "Note", "Det", "Group", "List", "Type", "Class",
	"Cat", "Seg", "Loc", "Ext", "Opt", "Flag", "Mark", "Link", "Key",
	"Tag", "Set", "Map", "Term", "Cond", "Rule", "Text", "Form", "Unit",
}

func fillerName(rng *rand.Rand, upper bool) string {
	n := 2 + rng.Intn(2)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fillerSyllables[rng.Intn(len(fillerSyllables))]
	}
	if upper {
		for i := range parts {
			parts[i] = strings.ToUpper(parts[i])
		}
		return strings.Join(parts, "_")
	}
	return strings.Join(parts, "")
}

// buildMatching plans the correspondences of a dataset: concept-overlap
// edges first (primaries and alternates, modelling matcher ambiguity),
// trimmed or padded with clustered noise edges between filler elements to
// reach exactly cap correspondences.
func buildMatching(src, tgt *builtSchema, cap int, seed int64) (*matching.Matching, error) {
	rng := rand.New(rand.NewSource(seed))
	type edge struct {
		s, t    *schema.Element
		score   float64
		primary bool
	}
	var edges []edge
	// Deterministic concept order.
	keys := make([]string, 0, len(tgt.primaries))
	for k := range tgt.primaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		te := tgt.primaries[k]
		se, ok := src.primaries[k]
		if !ok {
			continue
		}
		base := 0.72 + 0.23*rng.Float64()
		edges = append(edges, edge{se, te, base, true})
		// Alternate source candidates for the same target concept (the
		// Figure 1 ambiguity), with scores very close to the primary so
		// the top-h mappings genuinely disagree about these elements.
		for _, alt := range src.alts[k] {
			score := base - (0.002 + 0.03*rng.Float64())
			edges = append(edges, edge{alt, te, score, false})
		}
		// Alternate target candidates for the primary source element.
		for _, alt := range tgt.alts[k] {
			score := base - (0.004 + 0.04*rng.Float64())
			edges = append(edges, edge{se, alt, score, false})
		}
	}
	if len(edges) > cap {
		// Trim: drop alternates first, then the lowest-score primaries.
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].primary != edges[j].primary {
				return edges[i].primary
			}
			return edges[i].score > edges[j].score
		})
		edges = edges[:cap]
	}
	usedT := map[int]bool{}
	usedS := map[int]bool{}
	for _, e := range edges {
		usedT[e.t.ID] = true
		usedS[e.s.ID] = true
	}
	// Region completion: cover the complete target subtrees of the major
	// backbone regions, giving every element in the subtree a distinct
	// source candidate drawn from the corresponding source region. This is
	// what lets c-blocks anchor at non-leaf elements and cover substantial
	// subtrees (Figure 9(c) of the paper reports blocks spanning up to a
	// quarter of the target schema), and it is realistic: a context-aware
	// matcher like COMA++ concentrates its correspondences inside
	// structurally matching regions.
	regionKeys := []string{"line", "deliver", "buyer", "line.price", "deliver.addr",
		"deliver.contact", "invoice", "hdr", "total", "pay", "ship", "seller"}
	for _, rk := range regionKeys {
		sa, okS := src.primaries[rk]
		ta, okT := tgt.primaries[rk]
		if !okS || !okT || len(edges) >= cap {
			continue
		}
		// Unused source elements inside the source region.
		var srcPool []*schema.Element
		for _, fe := range src.filler {
			if !usedS[fe.ID] && sa.Contains(fe) {
				srcPool = append(srcPool, fe)
			}
		}
		rng.Shuffle(len(srcPool), func(i, j int) { srcPool[i], srcPool[j] = srcPool[j], srcPool[i] })
		pool := 0
		for _, tid := range tgt.schema.SubtreeIDs(ta.ID) {
			if len(edges) >= cap || pool >= len(srcPool) {
				break
			}
			if usedT[tid] {
				continue
			}
			te := tgt.schema.ByID(tid)
			usedT[tid] = true
			nCand := 1
			if rng.Intn(3) == 0 {
				nCand = 2
			}
			base := 0.52 + 0.2*rng.Float64()
			for c := 0; c < nCand && len(edges) < cap && pool < len(srcPool); c++ {
				s := srcPool[pool]
				pool++
				usedS[s.ID] = true
				edges = append(edges, edge{s, te, base - 0.02*float64(c), false})
			}
		}
	}
	// Pad any remaining capacity with clustered noise among leftover
	// filler elements, keeping the bipartite sparse and partitioned.
	srcPool := make([]*schema.Element, 0, len(src.filler))
	for _, e := range src.filler {
		if !usedS[e.ID] {
			srcPool = append(srcPool, e)
		}
	}
	tgtPool := make([]*schema.Element, 0, len(tgt.filler))
	for _, e := range tgt.filler {
		if !usedT[e.ID] {
			tgtPool = append(tgtPool, e)
		}
	}
	rng.Shuffle(len(srcPool), func(i, j int) { srcPool[i], srcPool[j] = srcPool[j], srcPool[i] })
	rng.Shuffle(len(tgtPool), func(i, j int) { tgtPool[i], tgtPool[j] = tgtPool[j], tgtPool[i] })
	seen := map[[2]int]bool{}
	for _, e := range edges {
		seen[[2]int{e.s.ID, e.t.ID}] = true
	}
	si, ti := 0, 0
	for attempts := 0; len(edges) < cap; attempts++ {
		if len(tgtPool) == 0 || len(srcPool) == 0 || attempts > 100*cap {
			return nil, fmt.Errorf("dataset: filler pools exhausted at %d/%d correspondences", len(edges), cap)
		}
		t := tgtPool[ti%len(tgtPool)]
		ti++
		nCand := 1 + rng.Intn(3) // 1-3 source candidates per noisy target
		base := 0.5 + 0.22*rng.Float64()
		for c := 0; c < nCand && len(edges) < cap; c++ {
			s := srcPool[si%len(srcPool)]
			si++
			key := [2]int{s.ID, t.ID}
			if seen[key] {
				continue
			}
			seen[key] = true
			// Candidates of one noisy target score within a hair of
			// each other, emulating the near-tie ambiguity COMA++
			// produces and giving the possible mappings genuine spread.
			score := base - float64(c)*(0.001+0.01*rng.Float64())
			edges = append(edges, edge{s, t, score, false})
		}
	}
	// Calibrate ambiguity gaps. Runner-up candidates of a dozen "hot"
	// ambiguous targets sit on a geometric ladder of tiny score gaps below
	// their group's best edge, so the top-h possible mappings toggle these
	// choices in a dense counting pattern; the resulting c-blocks are
	// shared by a spread of mapping fractions (50%, 35%, 20%, ...), which
	// is what makes the τ sweeps of Figures 9(a)/9(b) meaningful.
	// Remaining runner-ups keep ordinary gaps and only surface in
	// low-rank mappings.
	byTarget := map[int][]int{}
	var tOrder []int
	for i, e := range edges {
		if _, ok := byTarget[e.t.ID]; !ok {
			tOrder = append(tOrder, e.t.ID)
		}
		byTarget[e.t.ID] = append(byTarget[e.t.ID], i)
	}
	// Two gap scales drive the share spectrum: the first eight hot targets
	// sit on a doubling ladder (their toggles appear in roughly 50%, 25%,
	// 12%, ... of the top-h mappings), and the remaining hot targets share
	// a uniform cluster of slightly larger gaps (each toggled in only a
	// few percent of the mappings). Raising τ then prunes c-blocks
	// steeply at first and slowly afterwards, the Figure 9(b) shape.
	hotBudget := 8 + cap/8
	hot := 0
	for _, tid := range tOrder {
		idx := byTarget[tid]
		if len(idx) < 2 {
			continue
		}
		sort.SliceStable(idx, func(a, b int) bool { return edges[idx[a]].score > edges[idx[b]].score })
		best := edges[idx[0]].score
		for r := 1; r < len(idx); r++ {
			var gap float64
			switch {
			case r == 1 && hot < 6:
				gap = 0.0001 * math.Pow(2, float64(hot))
				hot++
			case r == 1 && hot < hotBudget:
				gap = 0.003 + 0.001*rng.Float64()
				hot++
			default:
				gap = 0.02 + 0.03*float64(r)*rng.Float64()
			}
			s := best - gap
			if s <= 0.05 {
				s = 0.05 + 0.01*rng.Float64()
			}
			edges[idx[r]].score = s
		}
	}
	corrs := make([]matching.Correspondence, len(edges))
	for i, e := range edges {
		corrs[i] = matching.Correspondence{S: e.s.ID, T: e.t.ID, Score: e.score}
	}
	return matching.New(src.schema, tgt.schema, corrs)
}

// Concept returns the element holding a concept key in the schema (primary
// holder), or nil. Exposed for tests and examples.
func (d *Dataset) Concept(target bool, key string) *schema.Element {
	if target {
		return d.tgt.primaries[key]
	}
	return d.src.primaries[key]
}
