package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed stage of a request: a name, optional detail
// (shard number, pattern, record count), and a start offset + duration
// relative to the trace's start, in microseconds. Offsets rather than
// absolute times keep the wire form small and make concurrent spans
// (parallel shard evaluations) easy to read side by side.
type Span struct {
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
}

// maxSpans bounds how many spans one trace records; a scatter-gather
// over hundreds of shards truncates rather than growing without bound.
const maxSpans = 256

// Trace is a request-scoped span recorder. All methods are safe on a nil
// receiver (no-ops), so instrumented code never branches on "is tracing
// enabled" — it just records into whatever the context carries. Add is
// safe for concurrent use (parallel shard workers record into the same
// trace).
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	dataset string
	spans   []Span
	dropped int
}

// NewTrace starts a trace identified by id (usually a RequestID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's request ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetDataset annotates the trace with the dataset the request resolved
// to; the handler that learns the dataset calls it so the middleware that
// finishes the trace can label it without re-parsing the request.
func (t *Trace) SetDataset(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dataset = name
	t.mu.Unlock()
}

// Dataset returns the annotation set by SetDataset ("" on nil).
func (t *Trace) Dataset() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dataset
}

// Add records a completed span that began at begin and took d.
func (t *Trace) Add(name, detail string, begin time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, Span{
		Name:    name,
		Detail:  detail,
		StartUs: begin.Sub(t.start).Microseconds(),
		DurUs:   d.Microseconds(),
	})
	t.mu.Unlock()
}

// Region starts a span now and returns a func that completes it; use as
//
//	done := tr.Region("prepare", pattern)
//	... work ...
//	done()
func (t *Trace) Region(name, detail string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Add(name, detail, begin, time.Since(begin)) }
}

// TraceData is the JSON form of a completed trace, served by
// /v1/debug/traces and embedded in EXPLAIN output.
type TraceData struct {
	ID           string `json:"id"`
	Start        string `json:"start"`
	DurUs        int64  `json:"durUs"`
	Spans        []Span `json:"spans"`
	DroppedSpans int    `json:"droppedSpans,omitempty"`
	Dataset      string `json:"dataset,omitempty"`
	Endpoint     string `json:"endpoint,omitempty"`
}

// Data snapshots the trace as TraceData with the given total duration.
func (t *Trace) Data(total time.Duration) TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	return TraceData{
		ID:           t.id,
		Start:        t.start.UTC().Format(time.RFC3339Nano),
		DurUs:        total.Microseconds(),
		Spans:        spans,
		DroppedSpans: dropped,
	}
}

type traceKey struct{}

// WithTrace returns a context carrying tr. A nil tr is fine: TraceFrom
// on the result returns nil and every recording call no-ops.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace the context carries, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TraceLog is a bounded ring of completed slow-request traces,
// tail-sampled: Finish keeps a trace only when the request's total
// latency met the threshold, so the buffer holds the recent worst
// offenders rather than a uniform sample.
type TraceLog struct {
	threshold time.Duration // < 0 disables retention entirely
	mu        sync.Mutex
	ring      []TraceData
	next      int
	finished  atomic.Uint64
	sampled   atomic.Uint64
}

// NewTraceLog builds a trace log retaining up to size traces at or above
// threshold. size <= 0 defaults to 64. A negative threshold disables
// retention (Finish still counts); zero retains every finished trace.
func NewTraceLog(size int, threshold time.Duration) *TraceLog {
	if size <= 0 {
		size = 64
	}
	return &TraceLog{threshold: threshold, ring: make([]TraceData, 0, size)}
}

// Threshold returns the sampling threshold.
func (l *TraceLog) Threshold() time.Duration { return l.threshold }

// Finish records a completed request: the trace is retained iff total
// reached the threshold. Returns whether it was retained.
func (l *TraceLog) Finish(tr *Trace, total time.Duration, dataset, endpoint string) bool {
	if l == nil || tr == nil {
		return false
	}
	l.finished.Add(1)
	if l.threshold < 0 || total < l.threshold {
		return false
	}
	d := tr.Data(total)
	d.Dataset = dataset
	d.Endpoint = endpoint
	l.sampled.Add(1)
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, d)
	} else {
		l.ring[l.next] = d
		l.next = (l.next + 1) % len(l.ring)
	}
	l.mu.Unlock()
	return true
}

// Snapshot returns the retained traces, newest first.
func (l *TraceLog) Snapshot() []TraceData {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceData, 0, len(l.ring))
	// Before the ring wraps the newest entry is the last appended; after,
	// it is the one just behind the overwrite cursor.
	newest := len(l.ring) - 1
	if len(l.ring) == cap(l.ring) && len(l.ring) > 0 {
		newest = (l.next - 1 + len(l.ring)) % len(l.ring)
	}
	for i := 0; i < len(l.ring); i++ {
		out = append(out, l.ring[(newest-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Counts returns how many traces finished through this log and how many
// met the sampling threshold.
func (l *TraceLog) Counts() (finished, sampled uint64) {
	return l.finished.Load(), l.sampled.Load()
}

var reqCounter atomic.Uint64

// RequestID returns a process-unique request identifier, cheap enough to
// mint per request: a monotonic counter qualified by process start time
// so IDs from different runs rarely collide in shared logs.
func RequestID() string {
	return fmt.Sprintf("r%x-%d", processEpoch, reqCounter.Add(1))
}

var processEpoch = time.Now().UnixNano() & 0xffffffff
