package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionMetric is one parsed sample line from the text exposition
// format: bare metric name, its labels in order, and the value.
type ExpositionMetric struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParseExposition validates r against the Prometheus text exposition
// grammar (version 0.0.4) strictly enough to catch the mistakes a
// hand-rolled emitter can make: bad metric/label names, unescaped label
// values, non-numeric sample values, TYPE lines naming a different
// metric than the samples that follow, duplicate TYPE declarations, and
// duplicate series (the same metric name with the same label set emitted
// twice — Prometheus keeps one sample arbitrarily, so a duplicate is
// always an emitter bug). It returns every parsed sample. The CI lint
// feeds /metricsz output through it so a malformed line fails a unit
// test rather than a production scrape.
func ParseExposition(r io.Reader) ([]ExpositionMetric, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []ExpositionMetric
	typed := map[string]string{} // family name -> type
	seen := map[string]bool{}    // name + canonical label set
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseCommentLine(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		m, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := checkTyped(m, typed); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if key := seriesKey(m); seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		} else {
			seen[key] = true
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseCommentLine(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

func parseSampleLine(line string) (ExpositionMetric, error) {
	var m ExpositionMetric
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	m.Name = line[:i]
	if !metricNameRe.MatchString(m.Name) {
		return m, fmt.Errorf("invalid metric name %q", m.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return m, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return m, err
		}
		m.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	// Value, optionally followed by a timestamp.
	valStr, _, _ := strings.Cut(rest, " ")
	if valStr == "" {
		return m, fmt.Errorf("missing value in %q", line)
	}
	v, err := parseExpositionValue(valStr)
	if err != nil {
		return m, fmt.Errorf("invalid value %q: %w", valStr, err)
	}
	m.Value = v
	return m, nil
}

func parseExpositionValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	i := 0
	for i < len(s) {
		// Label name up to '='.
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair at %q", s[i:])
		}
		name := s[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\n' {
				return nil, fmt.Errorf("label %s: raw newline in value", name)
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s[i:])
			}
			i++
		}
	}
	return out, nil
}

// seriesKey renders a sample's identity — metric name plus its label set
// in sorted order, so the same pairs in a different order still collide —
// for duplicate-series detection.
func seriesKey(m ExpositionMetric) string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	labels := make([]Label, len(m.Labels))
	copy(labels, m.Labels)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// checkTyped verifies a sample belongs to a declared family when one was
// declared, honoring the histogram/summary suffix conventions.
func checkTyped(m ExpositionMetric, typed map[string]string) error {
	if _, ok := typed[m.Name]; ok {
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(m.Name, suffix)
		if base == m.Name {
			continue
		}
		if t, ok := typed[base]; ok {
			if t != "histogram" && t != "summary" {
				return fmt.Errorf("sample %s has suffix %s but %s is a %s", m.Name, suffix, base, t)
			}
			return nil
		}
	}
	if len(typed) > 0 {
		return fmt.Errorf("sample %s has no TYPE declaration", m.Name)
	}
	return nil
}
