// Package obs is xmatch's dependency-free observability substrate:
//
//   - a metrics surface — scrape-time collectors emitting counters,
//     gauges, and fixed-bucket histograms through a Registry that renders
//     the Prometheus text exposition format (/metricsz). Hot paths keep
//     their plain atomic counters; the registry only reads them when
//     scraped, so instrumentation costs nothing between scrapes;
//   - a request-scoped span recorder (Trace) propagated via context, with
//     a bounded, tail-sampled slow-trace ring buffer (TraceLog) behind
//     /v1/debug/traces. Traces allocate a handful of small structs per
//     request, spawn no goroutines, and cap their span count, so a
//     runaway request cannot grow one without bound;
//   - structured-logging setup (NewLogger) over log/slog, with process-
//     unique request IDs (RequestID) correlating log lines to traces;
//   - an exposition-format parser (ParseExposition) that validates
//     /metricsz output against the text grammar — the CI lint uses it so
//     a malformed metric line fails a unit test, not a scrape in
//     production.
//
// The package deliberately depends on the standard library only, so every
// layer of the system (server, engine, index, delta, replica) can
// register metrics without import cycles or new dependencies.
package obs
