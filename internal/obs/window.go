package obs

import (
	"math"
	"sync"
	"time"
)

// Windowed wraps a Histogram with a ring of boundary snapshots so callers
// can read sliding-window quantiles ("p95 over the last five minutes")
// instead of lifetime aggregates. Observation stays on the embedded
// Histogram's lock-free path; the ring is only touched at read time.
//
// The window is divided into slots. On every windowed read the wrapper
// checks how many slot boundaries have elapsed since the last rotation
// and pushes one boundary snapshot per elapsed slot, so no background
// goroutine is needed and an idle histogram costs nothing. The windowed
// view is then the elementwise difference between the current snapshot
// and the oldest retained boundary. Observations made between reads
// cannot be attributed to a precise slot; they are attributed to the
// interval after the last rotation (each pushed boundary carries the
// state captured at the previous rotation), which errs toward keeping
// them in the window longer rather than dropping fresh data. With
// regular reads (every scrape rotates) the window covers between
// (slots-1) and (slots+1) slot-durations of history; before the ring
// fills it covers the histogram's whole lifetime, which is the right
// answer for a young process.
type Windowed struct {
	*Histogram
	slotDur time.Duration

	mu     sync.Mutex
	marks  []HistogramSnapshot // ring of boundary snapshots
	filled int                 // number of valid marks
	next   int                 // ring write position
	last   time.Time           // wall time of the most recent rotation
	prev   HistogramSnapshot   // state captured at the most recent rotation
	now    func() time.Time    // test hook
}

// NewWindowed builds a windowed histogram over the given buckets (nil
// means DefaultLatencyBucketsMs) covering roughly window split into
// slots boundary snapshots. window and slots are clamped to sane
// minimums (one second, two slots).
func NewWindowed(bucketsMs []float64, window time.Duration, slots int) *Windowed {
	if window < time.Second {
		window = time.Second
	}
	if slots < 2 {
		slots = 2
	}
	return &Windowed{
		Histogram: NewHistogram(bucketsMs),
		slotDur:   window / time.Duration(slots),
		marks:     make([]HistogramSnapshot, slots),
		now:       time.Now,
	}
}

// rotate pushes boundary snapshots for every slot that has elapsed since
// the last call. Caller holds w.mu.
func (w *Windowed) rotate() {
	now := w.now()
	if w.last.IsZero() {
		w.last = now
		w.prev = w.Histogram.Snapshot()
		return
	}
	steps := int(now.Sub(w.last) / w.slotDur)
	if steps <= 0 {
		return
	}
	w.last = w.last.Add(time.Duration(steps) * w.slotDur)
	if steps > len(w.marks) {
		steps = len(w.marks)
	}
	for i := 0; i < steps; i++ {
		w.marks[w.next] = w.prev
		w.next = (w.next + 1) % len(w.marks)
		if w.filled < len(w.marks) {
			w.filled++
		}
	}
	w.prev = w.Histogram.Snapshot()
}

// Window returns the histogram's activity over (roughly) the configured
// window: current state minus the oldest retained boundary snapshot.
// Count is recomputed from the bucket deltas so the windowed view is
// internally consistent even when a boundary snapshot raced observations
// (the underlying atomics are monotonic, so per-bucket deltas are never
// negative). Nil-safe: a nil Windowed returns an empty snapshot.
func (w *Windowed) Window() HistogramSnapshot {
	if w == nil {
		return (*Histogram)(nil).Snapshot()
	}
	w.mu.Lock()
	w.rotate()
	var old HistogramSnapshot
	if w.filled > 0 {
		oldest := w.next - w.filled
		if oldest < 0 {
			oldest += len(w.marks)
		}
		old = w.marks[oldest]
	}
	w.mu.Unlock()
	return w.Histogram.Snapshot().Sub(old)
}

// Sub returns the elementwise difference s - old, clamping at zero so a
// stale or racing old snapshot can never produce negative counts. Count
// is recomputed as the sum of the bucket deltas (see Windowed.Window).
// An empty old (zero value) returns a normalized copy of s.
func (s HistogramSnapshot) Sub(old HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		BucketsMs: s.BucketsMs,
		Counts:    make([]uint64, len(s.Counts)),
	}
	var total uint64
	for i, c := range s.Counts {
		if i < len(old.Counts) && old.Counts[i] <= c {
			c -= old.Counts[i]
		} else if i < len(old.Counts) {
			c = 0
		}
		d.Counts[i] = c
		total += c
	}
	d.Count = total
	d.SumMs = s.SumMs - old.SumMs
	if d.SumMs < 0 {
		d.SumMs = 0
	}
	return d
}

// Quantile estimates the q-quantile (0 < q <= 1) in milliseconds by
// linear interpolation within the containing bucket, the standard
// fixed-bucket estimate. The +Inf overflow bucket reports the largest
// finite bound (there is nothing better to say about it). An empty
// snapshot reports 0. The denominator is the bucket sum, not Count,
// because Count may momentarily lag the buckets on a live histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.BucketsMs[i-1]
		}
		hi := lo
		if i < len(s.BucketsMs) {
			hi = s.BucketsMs[i]
		}
		cum += float64(c)
		if cum >= rank {
			if hi == lo {
				return hi
			}
			// Position of the rank within this bucket.
			frac := 1 - (cum-rank)/float64(c)
			return lo + frac*(hi-lo)
		}
	}
	if len(s.BucketsMs) > 0 {
		return s.BucketsMs[len(s.BucketsMs)-1]
	}
	return 0
}

// SLO is a latency service-level objective: Objective of requests (e.g.
// 0.99) should complete within Target. Because the histogram has fixed
// bucket bounds, Target is effectively rounded up to the nearest bucket
// bound — a request is "good" when it landed in a bucket whose upper
// bound is <= the effective target.
type SLO struct {
	Target    time.Duration
	Objective float64 // fraction of requests that must meet Target, e.g. 0.99
}

// EffectiveTargetMs returns the bucket bound the target rounds up to
// under the snapshot's bucket layout (+Inf collapses to the largest
// finite bound, making every finite-bucket request good).
func (o SLO) EffectiveTargetMs(bucketsMs []float64) float64 {
	ms := float64(o.Target) / float64(time.Millisecond)
	for _, b := range bucketsMs {
		if b >= ms {
			return b
		}
	}
	if len(bucketsMs) > 0 {
		return bucketsMs[len(bucketsMs)-1]
	}
	return ms
}

// Burn evaluates the SLO against a (typically windowed) snapshot. It
// returns the fraction of requests that missed the target and the
// error-budget burn rate: badFraction / (1 - Objective). A burn rate of
// 1 means the budget is being spent exactly as fast as it accrues;
// above 1 the budget is burning hot. An empty snapshot burns nothing.
func (o SLO) Burn(s HistogramSnapshot) (badFraction, burnRate float64) {
	var total, good uint64
	target := o.EffectiveTargetMs(s.BucketsMs)
	for i, c := range s.Counts {
		total += c
		if i < len(s.BucketsMs) && s.BucketsMs[i] <= target {
			good += c
		}
	}
	if total == 0 {
		return 0, 0
	}
	badFraction = float64(total-good) / float64(total)
	budget := 1 - o.Objective
	if budget <= 0 {
		if badFraction > 0 {
			return badFraction, math.Inf(1)
		}
		return 0, 0
	}
	return badFraction, badFraction / budget
}
