package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format the Registry renders.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefaultLatencyBucketsMs are the fixed histogram bucket upper bounds (in
// milliseconds) the serving layer uses for request latencies; the
// implicit final bucket is +Inf. They are the /statsz buckets the server
// has always exposed, now shared by every obs.Histogram user.
var DefaultLatencyBucketsMs = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Histogram is a fixed-bucket duration histogram safe for concurrent
// observation — the generalization of the server's original /statsz
// latency histogram, extended so any subsystem can pick its own bucket
// bounds. The sum is kept in integer microseconds so the hot path never
// does floating-point atomics.
//
// Observe increments the bucket before the total, and Snapshot reads the
// total before the buckets, so a snapshot taken concurrently with
// observations always satisfies Count <= sum(Counts): snapshots may be
// momentarily behind, never torn into an impossible state (the
// concurrency test in internal/server asserts exactly this invariant
// while hammering the histogram).
type Histogram struct {
	bucketsMs []float64
	counts    []atomic.Uint64 // len(bucketsMs)+1; last is the +Inf overflow
	total     atomic.Uint64
	sumMicros atomic.Uint64
}

// NewHistogram builds a histogram over the given bucket upper bounds in
// milliseconds (strictly ascending; nil or empty means
// DefaultLatencyBucketsMs).
func NewHistogram(bucketsMs []float64) *Histogram {
	if len(bucketsMs) == 0 {
		bucketsMs = DefaultLatencyBucketsMs
	}
	for i := 1; i < len(bucketsMs); i++ {
		if bucketsMs[i] <= bucketsMs[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %d: %v", i, bucketsMs))
		}
	}
	b := make([]float64, len(bucketsMs))
	copy(b, bucketsMs)
	return &Histogram{bucketsMs: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(h.bucketsMs) && ms > h.bucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumMicros.Add(uint64(d / time.Microsecond))
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (non-cumulative), Counts[len(BucketsMs)] being the +Inf
// overflow; Count <= sum(Counts) always holds (see Histogram).
type HistogramSnapshot struct {
	BucketsMs []float64 // shared with the histogram; callers must not mutate
	Counts    []uint64
	Count     uint64
	SumMs     float64
}

// Snapshot copies the histogram's current state. A nil histogram
// snapshots as empty over the default buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{
			BucketsMs: DefaultLatencyBucketsMs,
			Counts:    make([]uint64, len(DefaultLatencyBucketsMs)+1),
		}
	}
	s := HistogramSnapshot{
		BucketsMs: h.bucketsMs,
		Count:     h.total.Load(),
	}
	s.Counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumMs = float64(h.sumMicros.Load()) / 1e3
	return s
}

// Label is one metric label pair.
type Label struct{ Name, Value string }

// Registry is a scrape-time metrics registry: collectors registered with
// Collect run on every WriteText call and emit whatever the system's
// current state is. Nothing is stored between scrapes, so dynamic label
// sets (datasets that appear and vanish on reload) need no lifecycle
// management.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Exporter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Collect registers a collector; it runs on every scrape, in
// registration order.
func (r *Registry) Collect(fn func(*Exporter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WriteText runs every collector and renders the gathered metrics in the
// Prometheus text exposition format, families sorted by metric name. An
// emission error (invalid name, type conflict) fails the whole scrape —
// better a loud 500 than a silently dropped metric.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	collectors := make([]func(*Exporter), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	e := &Exporter{families: make(map[string]*family)}
	for _, fn := range collectors {
		fn(e)
	}
	if len(e.errs) > 0 {
		return e.errs[0]
	}
	names := make([]string, 0, len(e.families))
	for name := range e.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := e.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Exporter gathers one scrape's metrics. Emission methods may be called
// any number of times per metric name; all samples of one name must agree
// on type and help (they form one family) and are rendered grouped.
type Exporter struct {
	families map[string]*family
	errs     []error
}

type family struct {
	help, typ string
	lines     []string
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (e *Exporter) fam(name, help, typ string) *family {
	if !metricNameRe.MatchString(name) {
		e.errs = append(e.errs, fmt.Errorf("obs: invalid metric name %q", name))
		return nil
	}
	if strings.ContainsAny(help, "\n") {
		e.errs = append(e.errs, fmt.Errorf("obs: metric %s: help contains a newline", name))
		return nil
	}
	f, ok := e.families[name]
	if !ok {
		f = &family{help: help, typ: typ}
		e.families[name] = f
		return f
	}
	if f.typ != typ {
		e.errs = append(e.errs, fmt.Errorf("obs: metric %s emitted as both %s and %s", name, f.typ, typ))
		return nil
	}
	return f
}

// labelString renders a label set as {a="b",c="d"} ("" when empty),
// recording an error for invalid label names.
func (e *Exporter) labelString(metric string, labels []Label, extra ...Label) string {
	all := labels
	if len(extra) > 0 {
		all = make([]Label, 0, len(labels)+len(extra))
		all = append(all, labels...)
		all = append(all, extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if !labelNameRe.MatchString(l.Name) {
			e.errs = append(e.errs, fmt.Errorf("obs: metric %s: invalid label name %q", metric, l.Name))
			return ""
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// formatValue renders a sample value: integers exactly, everything else
// in the shortest round-trippable float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one monotonically increasing sample.
func (e *Exporter) Counter(name, help string, value float64, labels ...Label) {
	e.sample(name, help, "counter", value, labels)
}

// Gauge emits one point-in-time sample.
func (e *Exporter) Gauge(name, help string, value float64, labels ...Label) {
	e.sample(name, help, "gauge", value, labels)
}

func (e *Exporter) sample(name, help, typ string, value float64, labels []Label) {
	f := e.fam(name, help, typ)
	if f == nil {
		return
	}
	f.lines = append(f.lines, name+e.labelString(name, labels)+" "+formatValue(value)+"\n")
}

// Histogram emits a histogram snapshot in exposition form: cumulative
// le-labeled buckets in seconds (the histogram's buckets are in
// milliseconds; the conversion happens here, once, at scrape time), a
// +Inf bucket, and _sum/_count series.
func (e *Exporter) Histogram(name, help string, snap HistogramSnapshot, labels ...Label) {
	f := e.fam(name, help, "histogram")
	if f == nil {
		return
	}
	base := e.labelString(name, labels)
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.BucketsMs) {
			le = formatValue(snap.BucketsMs[i] / 1e3)
		}
		f.lines = append(f.lines,
			name+"_bucket"+e.labelString(name, labels, Label{"le", le})+" "+strconv.FormatUint(cum, 10)+"\n")
	}
	f.lines = append(f.lines, name+"_sum"+base+" "+formatValue(snap.SumMs/1e3)+"\n")
	f.lines = append(f.lines, name+"_count"+base+" "+strconv.FormatUint(cum, 10)+"\n")
}
