package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level ("debug", "info",
// "warn", "error"). It is the one place the daemon and its libraries
// agree on log shape, so `-log-format json` flips every line at once.
func NewLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
