package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveSnapshot(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(200 * time.Microsecond) // <= 0.25ms bucket
	h.Observe(3 * time.Millisecond)   // <= 5ms bucket
	h.Observe(10 * time.Second)       // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if got := s.SumMs; got < 10002 || got > 10004 {
		t.Fatalf("sumMs = %v, want ~10003.2", got)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("bucket total = %d, want 3", total)
	}
}

// TestHistogramSnapshotNotTorn hammers Observe while snapshotting and
// asserts the documented invariant: Count never exceeds the bucket sum.
func TestHistogramSnapshotNotTorn(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(500 * time.Microsecond)
				}
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := h.Snapshot()
		var sum uint64
		for _, c := range s.Counts {
			sum += c
		}
		if s.Count > sum {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: count %d > bucket sum %d", s.Count, sum)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram([]float64{1, 10})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	r.Collect(func(e *Exporter) {
		e.Counter("xmatch_queries_total", "Queries served.", 42, Label{"dataset", "books"})
		e.Counter("xmatch_queries_total", "Queries served.", 7, Label{"dataset", "dblp"})
		e.Gauge(`xmatch_in_flight`, "In-flight requests.", 3)
		e.Histogram("xmatch_query_seconds", "Query latency.", h.Snapshot(), Label{"endpoint", `we"ird`})
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`xmatch_queries_total{dataset="books"} 42`,
		`xmatch_queries_total{dataset="dblp"} 7`,
		"# TYPE xmatch_queries_total counter",
		"xmatch_in_flight 3",
		`xmatch_query_seconds_bucket{endpoint="we\"ird",le="0.001"} 1`,
		`xmatch_query_seconds_bucket{endpoint="we\"ird",le="+Inf"} 2`,
		`xmatch_query_seconds_count{endpoint="we\"ird"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// The output must round-trip through our own grammar parser.
	metrics, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("self-parse: %v\n%s", err, text)
	}
	if len(metrics) != 8 { // 2 counters + 1 gauge + 3 buckets + sum + count
		t.Fatalf("parsed %d samples, want 8:\n%s", len(metrics), text)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(e *Exporter) {
		e.Counter("bad-name", "nope", 1)
	})
	if err := r.WriteText(&strings.Builder{}); err == nil {
		t.Fatal("expected error for invalid metric name")
	}
	r2 := NewRegistry()
	r2.Collect(func(e *Exporter) {
		e.Counter("ok_total", "fine", 1)
		e.Gauge("ok_total", "fine", 2) // type conflict
	})
	if err := r2.WriteText(&strings.Builder{}); err == nil {
		t.Fatal("expected error for type conflict")
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := []string{
		"bad-name 1\n",
		"# TYPE m widget\nm 1\n",
		"m{l=\"unterminated} 1\n",
		"m{l=\"v\"} notanumber\n",
		"# TYPE m counter\n# TYPE m counter\nm 1\n",
		"# TYPE m counter\nother 1\n",
	}
	for _, c := range cases {
		if _, err := ParseExposition(strings.NewReader(c)); err == nil {
			t.Fatalf("ParseExposition accepted %q", c)
		}
	}
	ok := "# HELP m help\n# TYPE m histogram\nm_bucket{le=\"+Inf\"} 3\nm_sum 1.5\nm_count 3\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("ParseExposition rejected valid input: %v", err)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", "", time.Now(), time.Millisecond)
	tr.Region("y", "")()
	if tr.ID() != "" || !tr.Start().IsZero() {
		t.Fatal("nil trace not inert")
	}
	if d := tr.Data(time.Second); len(d.Spans) != 0 {
		t.Fatal("nil trace produced spans")
	}
	ctx := WithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("nil trace should come back nil")
	}
}

func TestTraceRecordsAndCaps(t *testing.T) {
	tr := NewTrace("req-1")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	begin := tr.Start()
	for i := 0; i < maxSpans+10; i++ {
		tr.Add("span", "", begin, time.Millisecond)
	}
	d := tr.Data(50 * time.Millisecond)
	if len(d.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(d.Spans), maxSpans)
	}
	if d.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", d.DroppedSpans)
	}
	if d.ID != "req-1" || d.DurUs != 50000 {
		t.Fatalf("bad trace data: %+v", d)
	}
}

func TestTraceLogTailSampling(t *testing.T) {
	l := NewTraceLog(3, 10*time.Millisecond)
	for i := 0; i < 5; i++ {
		tr := NewTrace(string(rune('a' + i)))
		if l.Finish(tr, 5*time.Millisecond, "ds", "query") {
			t.Fatal("fast trace retained")
		}
	}
	for i := 0; i < 5; i++ {
		tr := NewTrace(string(rune('A' + i)))
		if !l.Finish(tr, 20*time.Millisecond, "ds", "query") {
			t.Fatal("slow trace dropped")
		}
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	// Newest first: E, D, C.
	if snap[0].ID != "E" || snap[1].ID != "D" || snap[2].ID != "C" {
		t.Fatalf("wrong order: %s %s %s", snap[0].ID, snap[1].ID, snap[2].ID)
	}
	fin, sam := l.Counts()
	if fin != 10 || sam != 5 {
		t.Fatalf("counts = %d/%d, want 10/5", fin, sam)
	}
	// Negative threshold disables retention.
	off := NewTraceLog(3, -1)
	if off.Finish(NewTrace("x"), time.Hour, "ds", "query") {
		t.Fatal("disabled log retained a trace")
	}
}

func TestRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := RequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
}

func TestNewLogger(t *testing.T) {
	var sb strings.Builder
	lg, err := NewLogger("json", "info", &sb)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(sb.String(), `"k":"v"`) {
		t.Fatalf("json log missing field: %s", sb.String())
	}
	lg.Debug("quiet")
	if strings.Contains(sb.String(), "quiet") {
		t.Fatal("debug line emitted at info level")
	}
	if _, err := NewLogger("xml", "info", &sb); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if _, err := NewLogger("text", "loud", &sb); err == nil {
		t.Fatal("expected error for unknown level")
	}
}
