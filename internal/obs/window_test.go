package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestWindowedRotation(t *testing.T) {
	w := NewWindowed([]float64{1, 10, 100}, 60*time.Second, 6)
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }

	w.Observe(5 * time.Millisecond)
	w.Observe(5 * time.Millisecond)
	// Before any slot boundary passes, the window is the lifetime view.
	if got := w.Window(); got.Count != 2 {
		t.Fatalf("young window count = %d, want 2", got.Count)
	}

	// Let the full ring elapse: the two early observations must age out.
	clock = clock.Add(61 * time.Second)
	if got := w.Window(); got.Count != 0 {
		t.Fatalf("aged window count = %d, want 0", got.Count)
	}

	// Fresh observations appear immediately.
	w.Observe(50 * time.Millisecond)
	got := w.Window()
	if got.Count != 1 || got.Counts[2] != 1 {
		t.Fatalf("fresh window = %+v, want one observation in bucket 2", got)
	}

	// Lifetime histogram still sees everything.
	if life := w.Snapshot(); life.Count != 3 {
		t.Fatalf("lifetime count = %d, want 3", life.Count)
	}
}

func TestWindowedPartialAging(t *testing.T) {
	// 10s window in 5 slots, read every 2s like a scraper would.
	w := NewWindowed([]float64{1, 10}, 10*time.Second, 5)
	clock := time.Unix(0, 0)
	w.now = func() time.Time { return clock }

	w.Window() // anchor
	w.Observe(time.Millisecond)
	read := func() HistogramSnapshot {
		clock = clock.Add(2 * time.Second)
		return w.Window()
	}
	read() // t=2
	read() // t=4
	w.Observe(time.Millisecond)
	for i, want := range []uint64{2, 2, 2, 1} { // t=6..12: first obs ages out at t=12
		if got := read(); got.Count != want {
			t.Fatalf("read %d: window count = %d, want %d", i, got.Count, want)
		}
	}
	// Four more slots and the second observation is gone too.
	var got HistogramSnapshot
	for i := 0; i < 4; i++ {
		got = read()
	}
	if got.Count != 0 {
		t.Fatalf("fully aged count = %d, want 0", got.Count)
	}
}

func TestWindowedNilSafe(t *testing.T) {
	var w *Windowed
	if got := w.Window(); got.Count != 0 {
		t.Fatalf("nil Windowed count = %d", got.Count)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	old := h.Snapshot()
	h.Observe(20 * time.Millisecond)
	d := h.Snapshot().Sub(old)
	if d.Count != 1 || d.Counts[2] != 1 || d.Counts[0] != 0 {
		t.Fatalf("delta = %+v, want single overflow observation", d)
	}
	// Sub against a snapshot that is somehow ahead clamps at zero.
	ahead := h.Snapshot()
	ahead.Counts[0] += 5
	ahead.SumMs += 100
	d = h.Snapshot().Sub(ahead)
	if d.Counts[0] != 0 || d.SumMs != 0 {
		t.Fatalf("clamped delta = %+v, want zeros", d)
	}
}

func TestQuantile(t *testing.T) {
	s := HistogramSnapshot{
		BucketsMs: []float64{1, 10, 100},
		Counts:    []uint64{50, 30, 20, 0},
	}
	if p50 := s.Quantile(0.5); p50 != 1 {
		t.Fatalf("p50 = %v, want 1 (rank 50 is exactly the first bucket's edge)", p50)
	}
	p95 := s.Quantile(0.95)
	if p95 <= 10 || p95 > 100 {
		t.Fatalf("p95 = %v, want within (10, 100]", p95)
	}
	// All mass in the overflow bucket: report the largest finite bound.
	over := HistogramSnapshot{BucketsMs: []float64{1, 10}, Counts: []uint64{0, 0, 7}}
	if q := over.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %v, want 10", q)
	}
	empty := HistogramSnapshot{BucketsMs: []float64{1}, Counts: []uint64{0, 0}}
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestSLOBurn(t *testing.T) {
	slo := SLO{Target: 10 * time.Millisecond, Objective: 0.9}
	s := HistogramSnapshot{
		BucketsMs: []float64{1, 10, 100},
		Counts:    []uint64{40, 40, 15, 5}, // 20/100 above 10ms
	}
	bad, burn := slo.Burn(s)
	if math.Abs(bad-0.2) > 1e-9 {
		t.Fatalf("badFraction = %v, want 0.2", bad)
	}
	if math.Abs(burn-2.0) > 1e-9 {
		t.Fatalf("burnRate = %v, want 2.0", burn)
	}

	// Target between bucket bounds rounds up to the next bound.
	slo = SLO{Target: 5 * time.Millisecond, Objective: 0.9}
	if eff := slo.EffectiveTargetMs(s.BucketsMs); eff != 10 {
		t.Fatalf("effective target = %v, want 10", eff)
	}

	// Empty snapshot burns nothing.
	if bad, burn := slo.Burn(HistogramSnapshot{BucketsMs: s.BucketsMs, Counts: make([]uint64, 4)}); bad != 0 || burn != 0 {
		t.Fatalf("empty burn = %v/%v, want 0/0", bad, burn)
	}

	// Objective of exactly 1 leaves no budget: any miss is infinite burn.
	strict := SLO{Target: 10 * time.Millisecond, Objective: 1}
	if _, burn := strict.Burn(s); !math.IsInf(burn, 1) {
		t.Fatalf("zero-budget burn = %v, want +Inf", burn)
	}
}

// Satellite: +Inf bucket rendering must appear exactly once per label
// set with a cumulative count equal to the total.
func TestExporterInfBucketRendering(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram([]float64{1})
	h.Observe(500 * time.Microsecond)
	h.Observe(50 * time.Millisecond) // overflow
	r.Collect(func(e *Exporter) {
		e.Histogram("t_seconds", "h", h.Snapshot())
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if n := strings.Count(text, `le="+Inf"`); n != 1 {
		t.Fatalf("+Inf bucket rendered %d times, want 1:\n%s", n, text)
	}
	for _, want := range []string{
		`t_seconds_bucket{le="0.001"} 1`,
		`t_seconds_bucket{le="+Inf"} 2`,
		"t_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

// Satellite: label values containing backslash, quote, and newline must
// escape on emission and round-trip through ParseExposition.
func TestLabelValueEscapingRoundTrip(t *testing.T) {
	hairy := "a\\b\"c\nd"
	r := NewRegistry()
	r.Collect(func(e *Exporter) {
		e.Counter("t_total", "h", 1, Label{"path", hairy})
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `path="a\\b\"c\nd"`) {
		t.Fatalf("escaped label not found in:\n%s", text)
	}
	metrics, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("self-parse: %v\n%s", err, text)
	}
	if len(metrics) != 1 || len(metrics[0].Labels) != 1 || metrics[0].Labels[0].Value != hairy {
		t.Fatalf("round-trip lost the label value: %+v", metrics)
	}
}

// Satellite: the same series (name + label set) twice is an emitter bug
// the parser must reject — including when label order differs.
func TestParseExpositionRejectsDuplicateSeries(t *testing.T) {
	cases := []string{
		"m 1\nm 2\n",
		`m{a="1",b="2"} 1` + "\n" + `m{a="1",b="2"} 2` + "\n",
		`m{a="1",b="2"} 1` + "\n" + `m{b="2",a="1"} 2` + "\n", // reordered labels, same series
	}
	for _, c := range cases {
		if _, err := ParseExposition(strings.NewReader(c)); err == nil || !strings.Contains(err.Error(), "duplicate series") {
			t.Fatalf("ParseExposition(%q) err = %v, want duplicate series", c, err)
		}
	}
	// Distinct label values are distinct series.
	ok := `m{a="1"} 1` + "\n" + `m{a="2"} 2` + "\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Fatalf("ParseExposition rejected distinct series: %v", err)
	}
}
