package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/matching"
	"xmatch/internal/schema"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// randomSchema builds a random tree-shaped schema with roughly size
// elements and unique per-level child names.
func randomSchema(rng *rand.Rand, name string, size int) *schema.Schema {
	b := schema.NewBuilder(name, name+"Root")
	elems := []*schema.Element{b.Root}
	count := 1
	for count < size {
		parent := elems[rng.Intn(len(elems))]
		if parent.Level >= 5 {
			continue
		}
		child := parent.AddChild(fmt.Sprintf("%s_e%d", name, count))
		elems = append(elems, child)
		count++
	}
	return b.Freeze()
}

// randomMatching creates a random sparse matching between two schemas with
// deliberate ambiguity (several source candidates per target element).
func randomMatching(rng *rand.Rand, src, tgt *schema.Schema, density float64) *matching.Matching {
	seen := map[[2]int]bool{}
	var corrs []matching.Correspondence
	for t := 0; t < tgt.Len(); t++ {
		if rng.Float64() > density {
			continue
		}
		nCand := 1 + rng.Intn(3)
		for c := 0; c < nCand; c++ {
			s := rng.Intn(src.Len())
			if seen[[2]int{s, t}] {
				continue
			}
			seen[[2]int{s, t}] = true
			corrs = append(corrs, matching.Correspondence{
				S: s, T: t, Score: 0.4 + 0.6*rng.Float64(),
			})
		}
	}
	return matching.MustNew(src, tgt, corrs)
}

// fixture bundles a generated scenario for block-tree and PTQ tests.
type fixture struct {
	src, tgt *schema.Schema
	set      *mapping.Set
	doc      *xmltree.Document
}

func makeFixture(t *testing.T, rng *rand.Rand, srcSize, tgtSize, nMappings int) *fixture {
	t.Helper()
	src := randomSchema(rng, "S", srcSize)
	tgt := randomSchema(rng, "T", tgtSize)
	u := randomMatching(rng, src, tgt, 0.8)
	set, err := mapgen.TopH(u, nMappings, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{src: src, tgt: tgt, set: set, doc: instantiate(rng, src)}
}

// instantiate generates a document conforming to the schema: every element
// is instantiated 1..3 times under each instance of its parent.
func instantiate(rng *rand.Rand, s *schema.Schema) *xmltree.Document {
	var build func(e *schema.Element) *xmltree.Node
	build = func(e *schema.Element) *xmltree.Node {
		n := xmltree.NewRoot(e.Name)
		n.Text = fmt.Sprintf("v%d", rng.Intn(4))
		for _, c := range e.Children {
			reps := 1 + rng.Intn(2)
			for r := 0; r < reps; r++ {
				cn := build(c)
				n.Children = append(n.Children, cn)
			}
		}
		return n
	}
	return xmltree.New(build(s.Root))
}

// randomQuery builds a pattern guaranteed to resolve in the schema by
// sampling a connected sub-hierarchy of elements.
func randomQuery(rng *rand.Rand, s *schema.Schema) *twig.Pattern {
	// Start from a random element; use '//' axis from root for variety.
	elems := s.Elements()
	rootElem := elems[rng.Intn(len(elems))]
	axis := twig.Child
	if rootElem != s.Root {
		axis = twig.Descendant
	}
	root := &twig.Node{Label: rootElem.Name, Axis: axis}
	type pair struct {
		qn *twig.Node
		el *schema.Element
	}
	frontier := []pair{{root, rootElem}}
	for i := 0; i < rng.Intn(4); i++ {
		p := frontier[rng.Intn(len(frontier))]
		var child *schema.Element
		var childAxis twig.Axis
		if len(p.el.Children) > 0 && rng.Intn(2) == 0 {
			child = p.el.Children[rng.Intn(len(p.el.Children))]
			childAxis = twig.Child
		} else {
			// Any strict descendant via //.
			sub := s.SubtreeIDs(p.el.ID)
			if len(sub) <= 1 {
				continue
			}
			child = s.ByID(sub[1+rng.Intn(len(sub)-1)])
			childAxis = twig.Descendant
		}
		qc := &twig.Node{Label: child.Name, Axis: childAxis}
		p.qn.Children = append(p.qn.Children, qc)
		frontier = append(frontier, pair{qc, child})
	}
	pat := &twig.Pattern{Root: root}
	// Rebuild the preorder index via round trip through the public API.
	return twig.MustParse(patString(pat))
}

func patString(p *twig.Pattern) string {
	var render func(n *twig.Node, leading bool) string
	render = func(n *twig.Node, leading bool) string {
		s := ""
		if n.Axis == twig.Descendant {
			s += "//"
		} else if !leading {
			s += "/"
		}
		s += n.Label
		for i, c := range n.Children {
			if i == len(n.Children)-1 {
				s += render(c, false)
			} else {
				s += "[." + render(c, false) + "]"
			}
		}
		return s
	}
	return render(p.Root, true)
}

func TestBuildOptionsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := makeFixture(t, rng, 20, 12, 10)
	if _, err := Build(f.set, Options{Tau: 1.5}); err == nil {
		t.Error("tau > 1 accepted")
	}
	if _, err := Build(f.set, Options{Tau: -0.1}); err == nil {
		t.Error("tau < 0 accepted")
	}
	if _, err := Build(f.set, Options{MaxB: -1}); err == nil {
		t.Error("negative MaxB accepted")
	}
	bt, err := Build(f.set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Opts.Tau != 0.2 || bt.Opts.MaxB != 500 || bt.Opts.MaxF != 500 {
		t.Errorf("defaults not applied: %+v", bt.Opts)
	}
}

func TestBlockTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		f := makeFixture(t, rng, 15+rng.Intn(20), 8+rng.Intn(15), 5+rng.Intn(20))
		tau := []float64{0.1, 0.2, 0.4, 0.7}[rng.Intn(4)]
		bt, err := Build(f.set, Options{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		if err := bt.Validate(); err != nil {
			t.Fatalf("trial %d (tau=%v): %v", trial, tau, err)
		}
		// Lemma 2: a node with blocks implies every child subtree
		// element also has blocks... specifically every child node.
		for elemID, blocks := range bt.Blocks {
			if len(blocks) == 0 {
				continue
			}
			for _, c := range f.set.Target.ByID(elemID).Children {
				if len(bt.Blocks[c.ID]) == 0 {
					t.Fatalf("trial %d: element %d has blocks but child %d has none", trial, elemID, c.ID)
				}
			}
			// Hash table must know this node.
			if bt.FindNode(f.set.Target.ByID(elemID).Path) != elemID {
				t.Fatalf("trial %d: hash table missing element %d", trial, elemID)
			}
		}
	}
}

func TestBlockCountDecreasesWithTau(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := makeFixture(t, rng, 40, 25, 40)
	prev := -1
	for _, tau := range []float64{0.05, 0.2, 0.5, 0.9} {
		bt, err := Build(f.set, Options{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && bt.NumBlocks > prev {
			t.Fatalf("block count increased from %d to %d as tau rose to %v", prev, bt.NumBlocks, tau)
		}
		prev = bt.NumBlocks
	}
}

func TestMaxBLimitsBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := makeFixture(t, rng, 40, 25, 40)
	unlimited, err := Build(f.set, Options{Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.NumBlocks < 5 {
		t.Skip("fixture produced too few blocks to test the cap")
	}
	capped, err := Build(f.set, Options{Tau: 0.1, MaxB: 3})
	if err != nil {
		t.Fatal(err)
	}
	if capped.NumBlocks > 3 {
		t.Fatalf("MaxB=3 but %d blocks built", capped.NumBlocks)
	}
}

func TestEmptyMappingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randomSchema(rng, "S", 10)
	tgt := randomSchema(rng, "T", 10)
	set := mapping.MustNewSet(src, tgt, nil)
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumBlocks != 0 {
		t.Fatalf("empty set produced %d blocks", bt.NumBlocks)
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		f := makeFixture(t, rng, 25, 15, 20)
		bt, err := Build(f.set, Options{Tau: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		comp := bt.Compress()
		for mi, m := range f.set.Mappings {
			got := comp.Decompress(mi)
			want := make([]Corr, len(m.Pairs))
			for i, p := range m.Pairs {
				want[i] = Corr{S: p.S, T: p.T}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d mapping %d: decompress mismatch\ngot:  %v\nwant: %v", trial, mi, got, want)
			}
		}
	}
}

func TestCompressionSavesOnOverlappingSets(t *testing.T) {
	// Hand-built scenario: 10 mappings all sharing the same subtree
	// correspondences; compression must be clearly positive.
	src, err := schema.ParseSpec("S", "s\n  a\n  b\n  c\n  d\n  e\n  f\n  g\n  h\n  i")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", "t\n  p\n  q\n  r\n  u\n  v\n  w\n  x\n  y")
	if err != nil {
		t.Fatal(err)
	}
	var ms []*mapping.Mapping
	for i := 0; i < 12; i++ {
		m := &mapping.Mapping{Score: 1}
		// All target leaves map identically except the last, which
		// alternates between two source elements.
		for tid := 0; tid < 8; tid++ {
			m.Pairs = append(m.Pairs, mapping.Pair{S: tid, T: tid})
		}
		m.Pairs = append(m.Pairs, mapping.Pair{S: 8 + i%2, T: 8})
		ms = append(ms, m)
	}
	set := mapping.MustNewSet(src, tgt, ms)
	bt, err := Build(set, Options{Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	comp := bt.Compress()
	if r := comp.CompressionRatio(); r <= 0 {
		t.Fatalf("compression ratio %.3f not positive (blocks=%d)", r, bt.NumBlocks)
	}
}

// resultKeys canonicalizes PTQ results for equivalence comparison.
func resultKeys(rs []Result) map[int][]string {
	out := make(map[int][]string, len(rs))
	for _, r := range rs {
		keys := make([]string, len(r.Matches))
		for i, m := range r.Matches {
			keys[i] = m.Key()
		}
		sort.Strings(keys)
		out[r.MappingIndex] = keys
	}
	return out
}

func TestPTQBasicVsBlockTree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	trials, compared := 0, 0
	for trials < 60 {
		trials++
		f := makeFixture(t, rng, 20+rng.Intn(20), 10+rng.Intn(12), 5+rng.Intn(25))
		tau := []float64{0.05, 0.2, 0.5}[rng.Intn(3)]
		bt, err := Build(f.set, Options{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		pat := randomQuery(rng, f.tgt)
		q, err := PrepareQuery(pat.String(), f.set)
		if err != nil {
			continue // pattern text may not resolve (e.g. duplicate labels)
		}
		basic := EvaluateBasic(q, f.set, f.doc)
		tree := Evaluate(q, f.set, f.doc, bt)
		bk, tk := resultKeys(basic), resultKeys(tree)
		if !reflect.DeepEqual(bk, tk) {
			t.Fatalf("trial %d (tau=%v, query=%s): basic and block-tree disagree\nbasic: %v\ntree:  %v",
				trials, tau, pat, bk, tk)
		}
		if len(basic) > 0 {
			compared++
		}
	}
	if compared < 10 {
		t.Fatalf("only %d of %d trials produced relevant mappings; fixtures too sparse", compared, trials)
	}
}

func TestTopKMatchesFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		f := makeFixture(t, rng, 25, 12, 20)
		bt, err := Build(f.set, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pat := randomQuery(rng, f.tgt)
		q, err := PrepareQuery(pat.String(), f.set)
		if err != nil {
			continue
		}
		full := Evaluate(q, f.set, f.doc, bt)
		if len(full) == 0 {
			continue
		}
		checked++
		k := 1 + rng.Intn(len(full))
		topk := EvaluateTopK(q, f.set, f.doc, bt, k)
		if len(topk) != min(k, len(full)) {
			t.Fatalf("trial %d: top-%d returned %d results (full has %d)", trial, k, len(topk), len(full))
		}
		// Every top-k result must appear in the full result with
		// identical matches, and no full result may beat the lowest
		// top-k probability.
		fullByIdx := resultKeys(full)
		minProb := math.Inf(1)
		for _, r := range topk {
			if !reflect.DeepEqual(resultKeys([]Result{r})[r.MappingIndex], fullByIdx[r.MappingIndex]) {
				t.Fatalf("trial %d: top-k result for mapping %d differs from full", trial, r.MappingIndex)
			}
			if r.Prob < minProb {
				minProb = r.Prob
			}
		}
		inTopK := map[int]bool{}
		for _, r := range topk {
			inTopK[r.MappingIndex] = true
		}
		for _, r := range full {
			if !inTopK[r.MappingIndex] && r.Prob > minProb+1e-12 {
				t.Fatalf("trial %d: mapping %d (prob %v) excluded but beats min top-k prob %v",
					trial, r.MappingIndex, r.Prob, minProb)
			}
		}
	}
	if checked < 8 {
		t.Fatalf("only %d trials produced results", checked)
	}
}

func TestEvaluateTopKBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := makeFixture(t, rng, 20, 10, 10)
	bt, _ := Build(f.set, DefaultOptions())
	q, err := PrepareQuery(f.tgt.Root.Name, f.set)
	if err != nil {
		t.Fatal(err)
	}
	if got := EvaluateTopK(q, f.set, f.doc, bt, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := EvaluateTopK(q, f.set, f.doc, bt, -1); got != nil {
		t.Error("k<0 should return nil")
	}
	huge := EvaluateTopK(q, f.set, f.doc, bt, 10000)
	full := Evaluate(q, f.set, f.doc, bt)
	if len(huge) != len(full) {
		t.Errorf("k=∞: %d results, full evaluation %d", len(huge), len(full))
	}
}

func TestPrepareQueryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := makeFixture(t, rng, 20, 10, 5)
	if _, err := PrepareQuery("Nonexistent/Nothing", f.set); err == nil {
		t.Error("unresolvable query accepted")
	}
	if _, err := PrepareQuery("Order[", f.set); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestAggregateByNode(t *testing.T) {
	// Three mappings yielding answers Cathy/Bob/Alice with probabilities
	// 0.3/0.3/0.2 plus one irrelevant — mirrors the intro example, with
	// two mappings that agree collapsing into one answer.
	src, err := schema.ParseSpec("S", "Order\n  BP\n    BOC\n      BCN\n    ROC\n      RCN\n    OOC\n      OCN")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", "ORDER\n  IP\n    ICN")
	if err != nil {
		t.Fatal(err)
	}
	bcn := src.ByPath("Order.BP.BOC.BCN").ID
	rcn := src.ByPath("Order.BP.ROC.RCN").ID
	ocn := src.ByPath("Order.BP.OOC.OCN").ID
	bp := src.ByPath("Order.BP").ID
	orderS := src.ByPath("Order").ID
	orderT := tgt.ByPath("ORDER").ID
	ip := tgt.ByPath("ORDER.IP").ID
	icn := tgt.ByPath("ORDER.ICN")
	_ = icn
	icnID := tgt.ByPath("ORDER.IP.ICN").ID

	mk := func(srcICN int, score float64) *mapping.Mapping {
		return &mapping.Mapping{
			Pairs: []mapping.Pair{{S: orderS, T: orderT}, {S: bp, T: ip}, {S: srcICN, T: icnID}},
			Score: score,
		}
	}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{
		mk(bcn, 0.3), mk(rcn, 0.3), mk(ocn, 0.2),
		{Pairs: []mapping.Pair{{S: orderS, T: orderT}}, Score: 0.2}, // irrelevant for //IP//ICN
	})

	root := xmltree.NewRoot("Order")
	bpN := root.AddChild("BP")
	bpN.AddChild("BOC").AddChild("BCN").AddText("Cathy")
	bpN.AddChild("ROC").AddChild("RCN").AddText("Bob")
	bpN.AddChild("OOC").AddChild("OCN").AddText("Alice")
	doc := xmltree.New(root)

	q, err := PrepareQuery("//IP//ICN", set)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results := Evaluate(q, set, doc, bt)
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 relevant mappings", len(results))
	}
	icnNode := q.Pattern.Nodes()[1]
	answers := AggregateByNode(results, icnNode)
	if len(answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(answers))
	}
	got := map[string]float64{}
	for _, a := range answers {
		if len(a.Values) != 1 {
			t.Fatalf("answer values = %v", a.Values)
		}
		got[a.Values[0]] = a.Prob
	}
	for name, p := range map[string]float64{"Cathy": 0.3, "Bob": 0.3, "Alice": 0.2} {
		if math.Abs(got[name]-p) > 1e-9 {
			t.Errorf("answer %q prob %v, want %v", name, got[name], p)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPTQCorrectUnderCaps(t *testing.T) {
	// "Query performance can be affected by the number of c-blocks
	// generated, but query correctness will not be affected by using
	// fewer c-blocks" (Section IV-B).
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		f := makeFixture(t, rng, 25, 14, 20)
		pat := randomQuery(rng, f.tgt)
		q, err := PrepareQuery(pat.String(), f.set)
		if err != nil {
			continue
		}
		want := resultKeys(EvaluateBasic(q, f.set, f.doc))
		for _, opts := range []Options{
			{Tau: 0.2, MaxB: 1},
			{Tau: 0.2, MaxB: 3},
			{Tau: 0.2, MaxF: 1},
			{Tau: 0.9},
		} {
			bt, err := Build(f.set, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := resultKeys(Evaluate(q, f.set, f.doc, bt))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d opts %+v: capped block tree changed results", trial, opts)
			}
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d usable trials", checked)
	}
}

func TestPTQMultipleEmbeddings(t *testing.T) {
	// A pattern with two embeddings into the target schema must union the
	// matches of both, deduplicated per mapping.
	src, err := schema.ParseSpec("S", "s\n  p1\n    x1\n  p2\n    x2")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", "t\n  a\n    X\n  b\n    X")
	if err != nil {
		t.Fatal(err)
	}
	id := func(s *schema.Schema, p string) int { return s.ByPath(p).ID }
	m := &mapping.Mapping{
		Pairs: []mapping.Pair{
			{S: id(src, "s"), T: id(tgt, "t")},
			{S: id(src, "s.p1"), T: id(tgt, "t.a")},
			{S: id(src, "s.p1.x1"), T: id(tgt, "t.a.X")},
			{S: id(src, "s.p2"), T: id(tgt, "t.b")},
			{S: id(src, "s.p2.x2"), T: id(tgt, "t.b.X")},
		},
		Score: 1,
	}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{m})
	root := xmltree.NewRoot("s")
	root.AddChild("p1").AddChild("x1").AddText("v1")
	root.AddChild("p2").AddChild("x2").AddText("v2")
	doc := xmltree.New(root)
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := PrepareQuery("//X", set)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Embeddings) != 2 {
		t.Fatalf("embeddings = %d, want 2", len(q.Embeddings))
	}
	for name, results := range map[string][]Result{
		"basic": EvaluateBasic(q, set, doc),
		"tree":  Evaluate(q, set, doc, bt),
	} {
		if len(results) != 1 {
			t.Fatalf("%s: results = %d", name, len(results))
		}
		if len(results[0].Matches) != 2 {
			t.Fatalf("%s: matches = %d, want 2 (one per embedding)", name, len(results[0].Matches))
		}
	}
}
