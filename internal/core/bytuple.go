package core

import (
	"sort"

	"xmatch/internal/twig"
)

// This file adds the by-tuple view of PTQ answers. The paper's PTQ follows
// the by-table semantics of Dong, Halevy and Yu ("Data integration with
// uncertainty", VLDB 2007): one mapping governs the whole document, so an
// answer is a *set* of matches with the mapping's probability. Under the
// by-tuple view each individual match is an event of its own, with
// probability equal to the total probability of the mappings that produce
// it — the XML analog of by-tuple certain answers. Because PTQ results
// already carry per-mapping match sets, the by-tuple distribution is a
// fold over them; no re-evaluation is needed.

// TupleAnswer is one match with its by-tuple probability.
type TupleAnswer struct {
	// Match is a representative binding (identical matches produced by
	// different mappings share document nodes by construction).
	Match twig.Match
	// Prob is the total probability of the mappings yielding the match.
	Prob float64
}

// ByTupleAnswers folds PTQ results into the by-tuple distribution over
// individual matches: each distinct match (by canonical binding identity)
// appears once, with the summed probability of every mapping that produced
// it. Answers are ordered by non-increasing probability, ties broken by
// match identity. The probabilities of different answers may sum to more
// than one — distinct matches are not disjoint events under by-tuple
// semantics.
func ByTupleAnswers(results []Result) []TupleAnswer {
	probs := map[string]float64{}
	reps := map[string]twig.Match{}
	for _, r := range results {
		for _, m := range r.Matches {
			k := m.Key()
			probs[k] += r.Prob
			if _, ok := reps[k]; !ok {
				reps[k] = m
			}
		}
	}
	out := make([]TupleAnswer, 0, len(probs))
	for k, p := range probs {
		out = append(out, TupleAnswer{Match: reps[k], Prob: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Match.Key() < out[j].Match.Key()
	})
	return out
}

// ValueDistribution folds the by-tuple distribution further onto the text
// values one query node binds: the probability that the node's answer
// includes a given value. This is the presentation used when a user asks
// "what are the possible contact names and how credible is each?" without
// committing to a whole mapping.
func ValueDistribution(results []Result, qn *twig.Node) []Answer {
	probs := map[string]float64{}
	for _, r := range results {
		seen := map[string]bool{}
		for _, m := range r.Matches {
			d := m.Get(qn)
			if d == nil || seen[d.Text] {
				continue
			}
			seen[d.Text] = true
			probs[d.Text] += r.Prob
		}
	}
	out := make([]Answer, 0, len(probs))
	for v, p := range probs {
		out = append(out, Answer{Values: []string{v}, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Values[0] < out[j].Values[0]
	})
	return out
}
