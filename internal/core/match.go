package core

import (
	"strings"

	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// Matcher is the pluggable twig-matching seam of PTQ evaluation: every
// rewritten pattern (whole queries in Algorithm 3, subtrees and single
// nodes in Algorithm 4) is matched against the document through it. A
// Matcher must return matches byte-identical in content and order to
// twig.MatchByPaths — evaluation correctness (memoization, block sharing,
// result merging, the engine's parallel chunking) is proven against that
// contract.
//
// The positional index of internal/index implements Matcher; attaching it
// to a document (index.Attach) routes all evaluation over that document —
// basic, block-tree, top-k, keyword-embedded and aggregate alike — through
// the holistic indexed matcher. The index is discovered through the
// document's accelerator slot rather than passed parameter-by-parameter,
// so one dataset-wide index built at prepare time serves every mapping of
// the set with zero per-query plumbing and zero synchronization.
type Matcher interface {
	MatchTwig(doc *xmltree.Document, qn *twig.Node, paths twig.PathBinding) []twig.Match
}

// TextSearcher is the keyword-preparation seam: an accelerator that can
// resolve a value term — a lowered keyword — to the document nodes whose
// lowered text contains it, in document order, without scanning every
// node. The positional index implements it over its token posting layer
// (distinct lowered texts -> value keys), making keyword preparation
// O(vocabulary) instead of O(document). Implementations must return
// exactly the nodes a doc.Nodes() scan with strings.Contains on lowered
// texts would, in the same order; the randomized keyword differential
// pins that contract. Returned slices are owned by the caller.
type TextSearcher interface {
	NodesWithTextContaining(lowered string) []*xmltree.Node
}

// matchingTextNodes resolves one lowered value term against the document:
// through the attached TextSearcher when present, by scanning the
// document's nodes otherwise.
func matchingTextNodes(doc *xmltree.Document, lowered string) []*xmltree.Node {
	if ts, ok := doc.Accel().(TextSearcher); ok {
		return ts.NodesWithTextContaining(lowered)
	}
	var out []*xmltree.Node
	for _, n := range doc.Nodes() {
		if n.Text != "" && strings.Contains(strings.ToLower(n.Text), lowered) {
			out = append(out, n)
		}
	}
	return out
}

// matchPattern evaluates one rewritten pattern subtree over the document:
// through the document's attached Matcher when present, through the joined
// evaluator twig.MatchByPaths otherwise.
func matchPattern(doc *xmltree.Document, qn *twig.Node, paths twig.PathBinding) []twig.Match {
	if m, ok := doc.Accel().(Matcher); ok {
		return m.MatchTwig(doc, qn, paths)
	}
	return twig.MatchByPaths(doc, qn, paths)
}
