package core

import (
	"math"
	"math/rand"
	"testing"

	"xmatch/internal/mapping"
	"xmatch/internal/schema"
	"xmatch/internal/xmltree"
)

// naiveSLCA is the brute-force reference: a node is an SLCA iff its
// subtree contains at least one node of every list and no child's subtree
// does.
func naiveSLCA(doc *xmltree.Document, lists [][]*xmltree.Node) []*xmltree.Node {
	containsAll := func(n *xmltree.Node) bool {
		for _, list := range lists {
			found := false
			for _, d := range list {
				if n.Contains(d) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	var out []*xmltree.Node
	for _, n := range doc.Nodes() {
		if !containsAll(n) {
			continue
		}
		smallest := true
		for _, c := range n.Children {
			if containsAll(c) {
				smallest = false
				break
			}
		}
		if smallest {
			out = append(out, n)
		}
	}
	return out
}

func TestSLCAAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		// Random document.
		root := xmltree.NewRoot("r")
		nodes := []*xmltree.Node{root}
		for i := 0; i < 3+rng.Intn(40); i++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, p.AddChild("n"))
		}
		doc := xmltree.New(root)
		// Random keyword lists.
		k := 1 + rng.Intn(4)
		lists := make([][]*xmltree.Node, k)
		for i := range lists {
			for j := 0; j <= rng.Intn(4); j++ {
				lists[i] = append(lists[i], nodes[rng.Intn(len(nodes))])
			}
		}
		got := SLCA(doc, lists)
		want := naiveSLCA(doc, lists)
		if len(got) != len(want) {
			t.Fatalf("trial %d: SLCA %d nodes, naive %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SLCA mismatch at %d", trial, i)
			}
		}
	}
}

func TestSLCAEmpty(t *testing.T) {
	doc := xmltree.New(xmltree.NewRoot("r"))
	if got := SLCA(doc, nil); got != nil {
		t.Fatalf("SLCA with no lists = %v", got)
	}
	if got := SLCA(doc, [][]*xmltree.Node{nil}); got != nil {
		t.Fatalf("SLCA with empty list = %v", got)
	}
}

// keywordFixture builds the intro-style scenario for keyword tests.
func keywordFixture(t *testing.T) (*mapping.Set, *xmltree.Document) {
	t.Helper()
	src, err := schema.ParseSpec("S", `
Order
  BP
    BOC
      BCN
    ROC
      RCN
`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", `
ORDER
  INVOICE_PARTY
    CONTACT_NAME
`)
	if err != nil {
		t.Fatal(err)
	}
	ids := func(s *schema.Schema, path string) int { return s.ByPath(path).ID }
	mk := func(cn string, score float64) *mapping.Mapping {
		return &mapping.Mapping{
			Pairs: []mapping.Pair{
				{S: ids(src, "Order"), T: ids(tgt, "ORDER")},
				{S: ids(src, "Order.BP"), T: ids(tgt, "ORDER.INVOICE_PARTY")},
				{S: ids(src, cn), T: ids(tgt, "ORDER.INVOICE_PARTY.CONTACT_NAME")},
			},
			Score: score,
		}
	}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{
		mk("Order.BP.BOC.BCN", 0.6),
		mk("Order.BP.ROC.RCN", 0.4),
	})
	root := xmltree.NewRoot("Order")
	bp := root.AddChild("BP")
	bp.AddChild("BOC").AddChild("BCN").AddText("Cathy")
	bp.AddChild("ROC").AddChild("RCN").AddText("Bob")
	return set, xmltree.New(root)
}

func TestEvaluateKeywordsSchemaTerms(t *testing.T) {
	set, doc := keywordFixture(t)
	q := PrepareKeywordQuery([]string{"invoice", "contact"}, set, doc)
	results := EvaluateKeywords(q, set, doc)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 relevant mappings", len(results))
	}
	for _, r := range results {
		if len(r.SLCAs) == 0 {
			t.Fatalf("mapping %d: no SLCAs", r.MappingIndex)
		}
	}
	// Mapping 0 (prob 0.6) maps INVOICE_PARTY->BP and CONTACT_NAME->BCN:
	// SLCA should be the BP node (smallest subtree containing both).
	if got := results[0].SLCAs[0].Path; got != "Order.BP" {
		t.Fatalf("mapping 0 SLCA = %s, want Order.BP", got)
	}
	answers := AggregateKeywordAnswers(results)
	var total float64
	for _, a := range answers {
		total += a.Prob
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Fatalf("aggregated probability mass = %v", total)
	}
}

func TestEvaluateKeywordsValueTerm(t *testing.T) {
	set, doc := keywordFixture(t)
	q := PrepareKeywordQuery([]string{"contact", "Cathy"}, set, doc)
	results := EvaluateKeywords(q, set, doc)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Under mapping 0, CONTACT_NAME rewrites to BCN ("Cathy"): SLCA is the
	// BCN node itself. Under mapping 1 it rewrites to RCN ("Bob"), so the
	// smallest subtree containing both RCN and the Cathy text node is BP.
	if got := results[0].SLCAs[0].Path; got != "Order.BP.BOC.BCN" {
		t.Fatalf("mapping 0 SLCA = %s", got)
	}
	if got := results[1].SLCAs[0].Path; got != "Order.BP" {
		t.Fatalf("mapping 1 SLCA = %s", got)
	}
}

func TestEvaluateKeywordsIrrelevantMapping(t *testing.T) {
	set, doc := keywordFixture(t)
	// A keyword matching nothing anywhere makes every mapping irrelevant.
	q := PrepareKeywordQuery([]string{"zzzznothing"}, set, doc)
	if results := EvaluateKeywords(q, set, doc); len(results) != 0 {
		t.Fatalf("results = %d, want 0", len(results))
	}
}

func TestEvaluateAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := makeFixture(t, rng, 25, 12, 15)
	bt, err := Build(f.set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate over the root query node: every relevant mapping matches
	// exactly the document root, so COUNT must be 1 with total relevant
	// probability.
	q, err := PrepareQuery(f.tgt.Root.Name, f.set)
	if err != nil {
		t.Fatal(err)
	}
	qn := q.Pattern.Nodes()[0]
	dist := EvaluateAggregate(q, f.set, f.doc, bt, qn, Count)
	if len(dist.Values) != 1 || dist.Values[0].Value != 1 || !dist.Values[0].Valid {
		t.Fatalf("COUNT distribution = %+v", dist.Values)
	}
	results := Evaluate(q, f.set, f.doc, bt)
	var relevantMass float64
	for _, r := range results {
		relevantMass += r.Prob
	}
	if math.Abs(dist.Values[0].Prob-relevantMass) > 1e-9 {
		t.Fatalf("COUNT mass %v != relevant mass %v", dist.Values[0].Prob, relevantMass)
	}
}

func TestEvaluateAggregateNumeric(t *testing.T) {
	// Hand-built: two mappings bind the leaf to different numeric nodes.
	src, err := schema.ParseSpec("S", "s\n  a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", "t\n  x")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(srcLeaf string, score float64) *mapping.Mapping {
		return &mapping.Mapping{
			Pairs: []mapping.Pair{
				{S: 0, T: 0},
				{S: src.ByPath(srcLeaf).ID, T: tgt.ByPath("t.x").ID},
			},
			Score: score,
		}
	}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{mk("s.a", 0.75), mk("s.b", 0.25)})
	root := xmltree.NewRoot("s")
	root.AddChild("a").AddText("10")
	root.AddChild("b").AddText("30")
	doc := xmltree.New(root)
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := PrepareQuery("t/x", set)
	if err != nil {
		t.Fatal(err)
	}
	leaf := q.Pattern.Nodes()[1]
	for _, fn := range []AggFunc{Sum, Min, Max, Avg} {
		dist := EvaluateAggregate(q, set, doc, bt, leaf, fn)
		if len(dist.Values) != 2 {
			t.Fatalf("%v: %d outcomes, want 2", fn, len(dist.Values))
		}
		if dist.Values[0].Prob < dist.Values[1].Prob {
			t.Fatalf("%v: outcomes not ordered by probability", fn)
		}
		ev, mass := dist.Expected()
		want := 0.75*10 + 0.25*30
		if math.Abs(ev-want) > 1e-9 || math.Abs(mass-1) > 1e-9 {
			t.Fatalf("%v: expected %v (mass %v), want %v", fn, ev, mass, want)
		}
	}
	if Count.String() != "COUNT" || Avg.String() != "AVG" || AggFunc(9).String() == "" {
		t.Error("AggFunc names wrong")
	}
}

func TestAggregateUndefinedOutcomes(t *testing.T) {
	// Non-numeric values make SUM undefined for a mapping.
	src, err := schema.ParseSpec("S", "s\n  a")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := schema.ParseSpec("T", "t\n  x")
	if err != nil {
		t.Fatal(err)
	}
	set := mapping.MustNewSet(src, tgt, []*mapping.Mapping{{
		Pairs: []mapping.Pair{{S: 0, T: 0}, {S: 1, T: 1}},
		Score: 1,
	}})
	root := xmltree.NewRoot("s")
	root.AddChild("a").AddText("not-a-number")
	doc := xmltree.New(root)
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q, err := PrepareQuery("t/x", set)
	if err != nil {
		t.Fatal(err)
	}
	dist := EvaluateAggregate(q, set, doc, bt, q.Pattern.Nodes()[1], Sum)
	if len(dist.Values) != 1 || dist.Values[0].Valid {
		t.Fatalf("expected a single undefined outcome, got %+v", dist.Values)
	}
	ev, mass := dist.Expected()
	if ev != 0 || mass != 0 {
		t.Fatalf("expected no defined mass, got %v/%v", ev, mass)
	}
}
