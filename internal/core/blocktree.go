package core

import (
	"fmt"
	"math"
	"sort"

	"xmatch/internal/mapping"
	"xmatch/internal/schema"
)

// Options configure block-tree construction (Algorithm 1 / Algorithm 2).
type Options struct {
	// Tau is the confidence threshold τ: a c-block must be shared by at
	// least τ·|M| mappings. Defaults to 0.2.
	Tau float64
	// MaxB bounds the total number of c-blocks created (MAX_B).
	// Defaults to 500.
	MaxB int
	// MaxF bounds the number of failed block-making attempts per
	// non-leaf node (MAX_F). Defaults to 500.
	MaxF int

	// NoLemma2Pruning disables the short-circuit that skips a node whose
	// children produced no c-blocks (Lemma 2). For ablation benchmarks
	// only; results are identical, construction just wastes work.
	NoLemma2Pruning bool
	// NoIntersectionPruning disables abandoning a partial child-block
	// combination as soon as its mapping-set intersection falls below
	// ⌈τ·|M|⌉. For ablation benchmarks only; results are identical.
	NoIntersectionPruning bool
}

// DefaultOptions are the paper's experimental defaults (Section VI-A).
func DefaultOptions() Options {
	return Options{Tau: 0.2, MaxB: 500, MaxF: 500}
}

func (o *Options) normalize() error {
	if o.Tau == 0 {
		o.Tau = 0.2
	}
	if o.Tau < 0 || o.Tau > 1 {
		return fmt.Errorf("core: tau %v outside [0,1]", o.Tau)
	}
	if o.MaxB == 0 {
		o.MaxB = 500
	}
	if o.MaxF == 0 {
		o.MaxF = 500
	}
	if o.MaxB < 0 || o.MaxF < 0 {
		return fmt.Errorf("core: MaxB/MaxF must be positive")
	}
	return nil
}

// BlockTree is the compact representation X of a set of possible mappings:
// a tree with the structure of the target schema whose nodes carry linked
// lists of c-blocks anchored there, plus the hash table H from target paths
// to block-tree nodes (Definition 3).
type BlockTree struct {
	// Set is the mapping set the tree represents.
	Set *mapping.Set
	// Blocks holds, for each target element ID, the c-blocks anchored at
	// that element.
	Blocks [][]*Block
	// Hash is H: it maps the target path of every element owning at
	// least one c-block to that element's ID.
	Hash map[string]int
	// NumBlocks is the total number of c-blocks.
	NumBlocks int
	// Opts are the construction options actually used.
	Opts Options

	minShare int // τ·|M| rounded up: minimum |b.M| for a c-block
}

// Build constructs the block tree for a mapping set (Algorithm 1): a
// post-order traversal of the target schema creates c-blocks bottom-up,
// pruning subtrees whose children have no c-blocks (Lemma 2) and composing
// parent c-blocks from child c-blocks (Lemma 1).
func Build(set *mapping.Set, opts Options) (*BlockTree, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	bt := &BlockTree{
		Set:    set,
		Blocks: make([][]*Block, set.Target.Len()),
		Hash:   make(map[string]int),
		Opts:   opts,
	}
	bt.minShare = int(math.Ceil(opts.Tau * float64(set.Len())))
	if bt.minShare < 1 {
		bt.minShare = 1
	}
	if set.Len() > 0 {
		bt.constructCBlock(set.Target.Root)
	}
	return bt, nil
}

// MinShare returns the minimum number of mappings a c-block must be shared
// by, ⌈τ·|M|⌉.
func (bt *BlockTree) MinShare() int { return bt.minShare }

// constructCBlock generates the c-blocks for element t and its subtree,
// returning the number of blocks created at t (function construct_c_block).
func (bt *BlockTree) constructCBlock(t *schema.Element) int {
	if t.IsLeaf() {
		n := bt.initBlocks(t)
		if n > 0 {
			bt.Hash[t.Path] = t.ID
		}
		return n
	}
	childless := false
	for _, u := range t.Children {
		if bt.constructCBlock(u) == 0 {
			childless = true
		}
	}
	if childless && !bt.Opts.NoLemma2Pruning {
		return 0 // Lemma 2: a c-block at t needs c-blocks at every child
	}
	n := bt.genNonLeaf(t)
	if n > 0 {
		bt.Hash[t.Path] = t.ID
	}
	return n
}

// initBlocks groups the mappings by the source element they assign to t and
// creates a single-correspondence block for each group with at least
// ⌈τ·|M|⌉ members (function init_block). For a leaf t these blocks are its
// c-blocks; for a non-leaf they are the temporary list of Algorithm 2.
// The blocks are attached to t's list and their count returned.
func (bt *BlockTree) initBlocks(t *schema.Element) int {
	groups := make(map[int]*mapping.IDSet)
	var order []int
	for mi, m := range bt.Set.Mappings {
		s, ok := m.SourceFor(t.ID)
		if !ok {
			continue
		}
		set, exists := groups[s]
		if !exists {
			set = mapping.NewIDSet(bt.Set.Len())
			groups[s] = set
			order = append(order, s)
		}
		set.Add(mi)
	}
	sort.Ints(order) // deterministic block order
	created := 0
	for _, s := range order {
		set := groups[s]
		if set.Len() < bt.minShare {
			continue
		}
		if bt.NumBlocks >= bt.Opts.MaxB {
			break
		}
		bt.Blocks[t.ID] = append(bt.Blocks[t.ID], &Block{
			Anchor: t.ID,
			C:      []Corr{{S: s, T: t.ID}},
			M:      set,
		})
		bt.NumBlocks++
		created++
	}
	return created
}

// genNonLeaf creates the c-blocks of a non-leaf node t (Algorithm 2): it
// combines each block of t's own correspondences with one c-block per child
// (Lemma 1), intersecting mapping-ID sets incrementally and pruning any
// partial combination whose intersection already falls below ⌈τ·|M|⌉ — the
// pruning rule that makes exhaustive combination enumeration affordable.
// Enumeration also stops after MaxF failed attempts or when MaxB total
// blocks exist.
func (bt *BlockTree) genNonLeaf(t *schema.Element) int {
	own := bt.tempBlocks(t)
	if len(own) == 0 {
		return 0
	}
	children := t.Children
	chosen := make([]*Block, len(children))
	countNew := 0
	numTrial := 0
	limitHit := false

	var rec func(k int, acc *mapping.IDSet, b *Block)
	rec = func(k int, acc *mapping.IDSet, b *Block) {
		if limitHit {
			return
		}
		if k == len(children) {
			if acc.Len() < bt.minShare {
				// Reached only when intersection pruning is disabled;
				// the combination fails the Step 12 share check.
				numTrial++
				if numTrial >= bt.Opts.MaxF {
					limitHit = true
				}
				return
			}
			if bt.NumBlocks >= bt.Opts.MaxB {
				limitHit = true
				return
			}
			// Lemma 1: C = {(s,t)} ∪ union of child block Cs;
			// M = Mt ∩ intersection of child block Ms.
			size := 1
			for _, cb := range chosen {
				size += len(cb.C)
			}
			c := make([]Corr, 0, size)
			c = append(c, b.C...)
			for _, cb := range chosen {
				c = append(c, cb.C...)
			}
			sort.Slice(c, func(i, j int) bool { return c[i].T < c[j].T })
			bt.Blocks[t.ID] = append(bt.Blocks[t.ID], &Block{
				Anchor: t.ID,
				C:      c,
				M:      acc.Clone(),
			})
			bt.NumBlocks++
			countNew++
			return
		}
		for _, cb := range bt.Blocks[children[k].ID] {
			next := acc.Intersect(cb.M)
			if next.Len() < bt.minShare && !bt.Opts.NoIntersectionPruning {
				numTrial++
				if numTrial >= bt.Opts.MaxF {
					limitHit = true
					return
				}
				continue
			}
			chosen[k] = cb
			rec(k+1, next, b)
			if limitHit {
				return
			}
		}
	}
	for _, b := range own {
		rec(0, b.M, b)
		if limitHit {
			break
		}
	}
	return countNew
}

// tempBlocks computes the temporary block list list_t of Algorithm 2: the
// groups of mappings agreeing on t's own correspondence. The minimum-share
// requirement is already applied here because intersection with child sets
// only shrinks a group — a group below the threshold can never recover.
// Unlike initBlocks, these blocks are not attached to the tree and do not
// count toward MaxB.
func (bt *BlockTree) tempBlocks(t *schema.Element) []*Block {
	groups := make(map[int]*mapping.IDSet)
	var order []int
	for mi, m := range bt.Set.Mappings {
		s, ok := m.SourceFor(t.ID)
		if !ok {
			continue
		}
		set, exists := groups[s]
		if !exists {
			set = mapping.NewIDSet(bt.Set.Len())
			groups[s] = set
			order = append(order, s)
		}
		set.Add(mi)
	}
	sort.Ints(order)
	var out []*Block
	for _, s := range order {
		set := groups[s]
		if set.Len() < bt.minShare {
			continue
		}
		out = append(out, &Block{Anchor: t.ID, C: []Corr{{S: s, T: t.ID}}, M: set})
	}
	return out
}

// FindNode looks up a target path in the hash table H and returns the
// element ID of the block-tree node for that path, or -1 (find_node).
func (bt *BlockTree) FindNode(path string) int {
	if id, ok := bt.Hash[path]; ok {
		return id
	}
	return -1
}

// Stats summarizes the block tree for the paper's Figures 9(b) and 9(c).
type Stats struct {
	NumBlocks int
	// SizeHistogram counts c-blocks by |C| (number of correspondences).
	SizeHistogram map[int]int
	// AvgSize is the mean |C| over all c-blocks.
	AvgSize float64
	// MaxSize is the largest |C|.
	MaxSize int
	// MaxCoverage is MaxSize divided by the number of target elements.
	MaxCoverage float64
}

// Stats computes block statistics.
func (bt *BlockTree) Stats() Stats {
	st := Stats{NumBlocks: bt.NumBlocks, SizeHistogram: make(map[int]int)}
	total := 0
	for _, blocks := range bt.Blocks {
		for _, b := range blocks {
			st.SizeHistogram[len(b.C)]++
			total += len(b.C)
			if len(b.C) > st.MaxSize {
				st.MaxSize = len(b.C)
			}
		}
	}
	if bt.NumBlocks > 0 {
		st.AvgSize = float64(total) / float64(bt.NumBlocks)
	}
	if n := bt.Set.Target.Len(); n > 0 {
		st.MaxCoverage = float64(st.MaxSize) / float64(n)
	}
	return st
}

// Bytes returns the storage footprint of the block tree plus its hash table
// under the byte-size model: per-element list headers, per-block storage,
// and path-keyed hash entries.
func (bt *BlockTree) Bytes() int {
	total := 8 * len(bt.Blocks) // one list head pointer per tree node
	for _, blocks := range bt.Blocks {
		for _, b := range blocks {
			total += b.Bytes()
		}
	}
	for path := range bt.Hash {
		total += len(path) + 8
	}
	return total
}

// Validate checks every c-block invariant of Definition 2 against the
// mapping set and target schema; it is used by tests and available to
// callers as a defensive integrity check. It verifies that each block's
// correspondence set covers exactly the subtree of its anchor, that every
// mapping in b.M contains b.C, that no mapping outside b.M contains b.C
// (maximality), and that |b.M| meets the confidence threshold.
func (bt *BlockTree) Validate() error {
	tgt := bt.Set.Target
	for elemID, blocks := range bt.Blocks {
		for bi, b := range blocks {
			if b.Anchor != elemID {
				return fmt.Errorf("core: block %d at element %d has anchor %d", bi, elemID, b.Anchor)
			}
			subtree := tgt.SubtreeIDs(elemID)
			if len(b.C) != len(subtree) {
				return fmt.Errorf("core: block %s covers %d corrs, subtree has %d elements", b, len(b.C), len(subtree))
			}
			inSubtree := make(map[int]bool, len(subtree))
			for _, id := range subtree {
				inSubtree[id] = true
			}
			covered := make(map[int]bool, len(b.C))
			for _, c := range b.C {
				if !inSubtree[c.T] {
					return fmt.Errorf("core: block %s includes target %d outside anchor subtree", b, c.T)
				}
				if covered[c.T] {
					return fmt.Errorf("core: block %s covers target %d twice", b, c.T)
				}
				covered[c.T] = true
			}
			if b.M.Len() < bt.minShare {
				return fmt.Errorf("core: block %s shared by %d < %d mappings", b, b.M.Len(), bt.minShare)
			}
			for mi, m := range bt.Set.Mappings {
				contains := true
				for _, c := range b.C {
					s, ok := m.SourceFor(c.T)
					if !ok || s != c.S {
						contains = false
						break
					}
				}
				if contains != b.M.Has(mi) {
					return fmt.Errorf("core: block %s membership of mapping %d is %v but containment is %v",
						b, mi, b.M.Has(mi), contains)
				}
			}
		}
	}
	return nil
}
