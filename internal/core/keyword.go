package core

import (
	"sort"
	"strings"

	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// This file implements probabilistic keyword queries (PKQ), the keyword
// half of the paper's future work ("we would consider how the block tree
// can facilitate the evaluation of other types of XML queries (e.g.,
// XQuery and keyword query)").
//
// A keyword either names a concept of the *target* schema (it matches
// target elements whose name contains it, case-insensitively) or, when no
// target element matches, is a value term matched against document text.
// Under one possible mapping, each schema keyword is rewritten to the
// source paths of the mapped elements; the answer for that mapping is the
// set of SLCA (smallest lowest common ancestor) document nodes — nodes
// whose subtree contains at least one match of every keyword and none of
// whose descendants does. As with PTQ, the result carries one entry per
// relevant mapping with the mapping's probability.

// KeywordResult is the PKQ answer through one possible mapping.
type KeywordResult struct {
	MappingIndex int
	Prob         float64
	// SLCAs are the smallest LCA nodes, in document order.
	SLCAs []*xmltree.Node
}

// KeywordQuery is a prepared probabilistic keyword query. The schema-side
// resolution (which target elements a keyword names) is document-
// independent; value terms — keywords matching no target element — carry
// their lowered form and are resolved against whichever document snapshot
// EvaluateKeywords is handed, so a prepared keyword query survives
// document mutations exactly like a prepared twig query does: evaluate it
// against the new snapshot and the value terms re-resolve there (through
// the snapshot index's token posting layer when one is attached). The
// nodes pre-computed at prepare time are only a cache for the prepare-time
// document.
type KeywordQuery struct {
	Keywords []string

	// schemaTargets[i] lists the target element IDs matched by keyword
	// i; empty means keyword i is a value term.
	schemaTargets [][]int
	// lowers[i] is keyword i lowered — the value-term form.
	lowers []string
	// prepDoc and valueNodes cache the prepare-time document's value-term
	// resolution; evaluation over any other document re-resolves.
	prepDoc    *xmltree.Document
	valueNodes [][]*xmltree.Node
}

// PrepareKeywordQuery resolves keywords against the target schema of the
// mapping set and pre-computes value-term matches in the document. With a
// positional index attached to the document, value terms resolve through
// the index's token posting layer — a scan of the distinct-text
// vocabulary instead of every document node (sublinear whenever texts
// repeat); without one, the document's nodes are scanned. Both resolutions
// return identical node lists.
func PrepareKeywordQuery(keywords []string, set *mapping.Set, doc *xmltree.Document) *KeywordQuery {
	q := &KeywordQuery{
		Keywords:      keywords,
		schemaTargets: make([][]int, len(keywords)),
		lowers:        make([]string, len(keywords)),
		prepDoc:       doc,
		valueNodes:    make([][]*xmltree.Node, len(keywords)),
	}
	for i, kw := range keywords {
		lower := strings.ToLower(kw)
		q.lowers[i] = lower
		for _, e := range set.Target.Elements() {
			if strings.Contains(strings.ToLower(e.Name), lower) {
				q.schemaTargets[i] = append(q.schemaTargets[i], e.ID)
			}
		}
		if len(q.schemaTargets[i]) == 0 {
			q.valueNodes[i] = matchingTextNodes(doc, lower)
		}
	}
	return q
}

// valueTermNodes returns value term i's nodes for the given document:
// the prepare-time cache when doc is the prepare-time document, a fresh
// (index-accelerated when possible) resolution otherwise.
func (q *KeywordQuery) valueTermNodes(i int, doc *xmltree.Document) []*xmltree.Node {
	if doc == q.prepDoc {
		return q.valueNodes[i]
	}
	return matchingTextNodes(doc, q.lowers[i])
}

// EvaluateKeywords answers the PKQ: for every mapping that maps at least
// one target element of every schema keyword, the keyword node lists are
// rewritten to the source document and their SLCAs computed. Results are
// ordered by mapping index; mappings with an empty SLCA set are included
// (relevant but unproductive), mirroring PTQ semantics.
func EvaluateKeywords(q *KeywordQuery, set *mapping.Set, doc *xmltree.Document) []KeywordResult {
	var out []KeywordResult
	var index map[int]int // start number -> preorder position, built lazily
	for mi, m := range set.Mappings {
		lists := make([][]*xmltree.Node, len(q.Keywords))
		relevant := true
		for i := range q.Keywords {
			if len(q.schemaTargets[i]) == 0 {
				lists[i] = q.valueTermNodes(i, doc)
				if len(lists[i]) == 0 {
					relevant = false
					break
				}
				continue
			}
			var nodes []*xmltree.Node
			for _, t := range q.schemaTargets[i] {
				s, ok := m.SourceFor(t)
				if !ok {
					continue
				}
				nodes = append(nodes, doc.NodesByPath(set.Source.ByID(s).Path)...)
			}
			if len(nodes) == 0 {
				relevant = false
				break
			}
			lists[i] = nodes
		}
		if !relevant {
			continue
		}
		if index == nil {
			index = make(map[int]int, doc.Len())
			for i, n := range doc.Nodes() {
				index[n.Start] = i
			}
		}
		out = append(out, KeywordResult{
			MappingIndex: mi,
			Prob:         m.Prob,
			SLCAs:        slcaIndexed(doc, lists, index),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MappingIndex < out[j].MappingIndex })
	return out
}

// SLCA computes the smallest lowest common ancestors of the given keyword
// node lists: the document nodes whose subtree contains at least one node
// from every list and none of whose proper descendants does. Nodes are
// returned in document order. It runs in O(|doc| · ⌈k/64⌉) using ancestor
// bitmask propagation.
func SLCA(doc *xmltree.Document, lists [][]*xmltree.Node) []*xmltree.Node {
	index := make(map[int]int, doc.Len())
	for i, n := range doc.Nodes() {
		index[n.Start] = i
	}
	return slcaIndexed(doc, lists, index)
}

// slcaIndexed is SLCA with a caller-provided start-number->preorder-position
// index, so repeated evaluations over the same document share it. The index
// is keyed by interval start rather than node pointer deliberately: under
// the delta subsystem a document snapshot shares untouched nodes with its
// predecessors, and a shared node's Parent pointer may refer to an older
// epoch's object at the same position — positionally identical, but a
// distinct pointer. Start numbers identify positions across epochs, so the
// ancestor walk below stays correct on mutated snapshots.
func slcaIndexed(doc *xmltree.Document, lists [][]*xmltree.Node, index map[int]int) []*xmltree.Node {
	k := len(lists)
	if k == 0 {
		return nil
	}
	words := (k + 63) / 64
	masks := make([][]uint64, doc.Len())
	setBit := func(n *xmltree.Node, bit int) {
		i := index[n.Start]
		if masks[i] == nil {
			masks[i] = make([]uint64, words)
		}
		masks[i][bit>>6] |= 1 << (uint(bit) & 63)
	}
	for bit, list := range lists {
		for _, n := range list {
			for a := n; a != nil; a = a.Parent {
				setBit(a, bit)
			}
		}
	}
	full := func(i int) bool {
		if masks[i] == nil {
			return false
		}
		for w := 0; w < words; w++ {
			want := ^uint64(0)
			if w == words-1 && k%64 != 0 {
				want = (1 << (uint(k) % 64)) - 1
			}
			if masks[i][w]&want != want {
				return false
			}
		}
		return true
	}
	var out []*xmltree.Node
	for i, n := range doc.Nodes() {
		if !full(i) {
			continue
		}
		// Smallest: no child subtree already contains everything.
		smallest := true
		for _, c := range n.Children {
			if full(index[c.Start]) {
				smallest = false
				break
			}
		}
		if smallest {
			out = append(out, n)
		}
	}
	return out
}

// AggregateKeywordAnswers folds keyword results by the set of SLCA paths,
// summing mapping probabilities, analogous to AggregateByNode for PTQ.
func AggregateKeywordAnswers(results []KeywordResult) []Answer {
	byKey := map[string]*Answer{}
	for _, r := range results {
		paths := make([]string, len(r.SLCAs))
		for i, n := range r.SLCAs {
			paths[i] = n.Path
		}
		sort.Strings(paths)
		key := strings.Join(paths, "\x00")
		if a, ok := byKey[key]; ok {
			a.Prob += r.Prob
		} else {
			byKey[key] = &Answer{Values: paths, Prob: r.Prob}
		}
	}
	out := make([]Answer, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return strings.Join(out[i].Values, ",") < strings.Join(out[j].Values, ",")
	})
	return out
}
