package core

import (
	"math/rand"
	"testing"
)

// TestAblationFlagsPreserveResults verifies that the two ablation switches
// change only work done, never the constructed block tree.
func TestAblationFlagsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		f := makeFixture(t, rng, 25, 15, 20)
		base, err := Build(f.set, Options{Tau: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			{Tau: 0.2, NoLemma2Pruning: true},
			{Tau: 0.2, NoIntersectionPruning: true},
			{Tau: 0.2, NoLemma2Pruning: true, NoIntersectionPruning: true},
		} {
			alt, err := Build(f.set, opts)
			if err != nil {
				t.Fatal(err)
			}
			if alt.NumBlocks != base.NumBlocks {
				t.Fatalf("trial %d %+v: %d blocks vs %d", trial, opts, alt.NumBlocks, base.NumBlocks)
			}
			if err := alt.Validate(); err != nil {
				t.Fatalf("trial %d %+v: %v", trial, opts, err)
			}
			for elemID := range base.Blocks {
				if len(base.Blocks[elemID]) != len(alt.Blocks[elemID]) {
					t.Fatalf("trial %d %+v: element %d block count differs", trial, opts, elemID)
				}
				for bi := range base.Blocks[elemID] {
					a, b := base.Blocks[elemID][bi], alt.Blocks[elemID][bi]
					if len(a.C) != len(b.C) || a.M.String() != b.M.String() {
						t.Fatalf("trial %d %+v: block %d/%d differs", trial, opts, elemID, bi)
					}
				}
			}
		}
	}
}

// TestMaxFLimitsTrials verifies the failed-attempt cap cuts enumeration
// short without corrupting blocks.
func TestMaxFLimitsTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := makeFixture(t, rng, 40, 25, 40)
	capped, err := Build(f.set, Options{Tau: 0.5, MaxF: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Validate(); err != nil {
		t.Fatal(err)
	}
	full, err := Build(f.set, Options{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if capped.NumBlocks > full.NumBlocks {
		t.Fatalf("MaxF=1 produced more blocks (%d) than unlimited (%d)", capped.NumBlocks, full.NumBlocks)
	}
}
