package core

import (
	"math/rand"
	"reflect"
	"testing"

	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// mergerSet builds a small real mapping set so Finish can resolve
// probabilities.
func mergerSet(t *testing.T) *mapping.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	src := randomSchema(rng, "S", 12)
	tgt := randomSchema(rng, "T", 10)
	set, err := mapgen.TopH(randomMatching(rng, src, tgt, 0.9), 6, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// mk builds a single-binding match of qn against a node with the given
// start number — enough structure for Match.Key to order and compare.
func mk(qn *twig.Node, start int) twig.Match {
	return twig.Match{{Q: qn, D: &xmltree.Node{Start: start}}}
}

func starts(ms []twig.Match, qn *twig.Node) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Get(qn).Start
	}
	return out
}

// TestAddStreamsEmptyShards: a gather where every shard came back empty
// must still register the mapping — a relevant mapping with no matches is
// part of the answer (Definition 4) — and empty shards interspersed with a
// single productive one must hand that shard's slice through untouched.
func TestAddStreamsEmptyShards(t *testing.T) {
	set := mergerSet(t)
	qn := &twig.Node{Label: "a"}

	r := NewResultMerger(set)
	r.AddStreams(1, [][]twig.Match{nil, {}, nil})
	res := r.Finish()
	if len(res) != 1 || res[0].MappingIndex != 1 || len(res[0].Matches) != 0 {
		t.Fatalf("all-empty gather: %+v", res)
	}

	r = NewResultMerger(set)
	stream := []twig.Match{mk(qn, 16), mk(qn, 48)}
	r.AddStreams(2, [][]twig.Match{nil, stream, nil})
	res = r.Finish()
	if len(res) != 1 || &res[0].Matches[0] != &stream[0] {
		t.Fatal("single productive shard not passed through as-is")
	}
	// Like a first Add, the single-stream path must not build the dedup
	// set — single-embedding queries never key a match.
	if len(r.seen) != 0 {
		t.Fatal("single-stream gather built the dedup set")
	}
}

// TestAddStreamsDisjointConcat: shard streams with disjoint ascending key
// ranges — the collection layout — merge to their plain concatenation.
func TestAddStreamsDisjointConcat(t *testing.T) {
	set := mergerSet(t)
	qn := &twig.Node{Label: "a"}
	r := NewResultMerger(set)
	r.AddStreams(0, [][]twig.Match{
		{mk(qn, 16), mk(qn, 32)},
		{mk(qn, 160), mk(qn, 176)},
		{mk(qn, 320)},
	})
	got := starts(r.Finish()[0].Matches, qn)
	if !reflect.DeepEqual(got, []int{16, 32, 160, 176, 320}) {
		t.Fatalf("concat order: %v", got)
	}
}

// TestAddStreamsInterleaveDedup: overlapping streams interleave into key
// order, and a key appearing in two streams survives exactly once — the
// earliest stream's copy.
func TestAddStreamsInterleaveDedup(t *testing.T) {
	set := mergerSet(t)
	qn := &twig.Node{Label: "a"}
	dup0, dup1 := mk(qn, 48), mk(qn, 48)
	r := NewResultMerger(set)
	r.AddStreams(0, [][]twig.Match{
		{mk(qn, 16), dup0, mk(qn, 80)},
		{mk(qn, 32), dup1, mk(qn, 64)},
	})
	ms := r.Finish()[0].Matches
	got := starts(ms, qn)
	if !reflect.DeepEqual(got, []int{16, 32, 48, 64, 80}) {
		t.Fatalf("interleave order: %v", got)
	}
	if ms[2].Get(qn) != dup0.Get(qn) {
		t.Fatal("duplicate key kept the later stream's copy")
	}
}

// TestAddStreamsLazyDedupInteraction: a second Add (or AddStreams) for the
// same mapping engages the lazy dedup against the gathered stream without
// mutating the shared first slice — the interaction a multi-embedding
// query over shards exercises.
func TestAddStreamsLazyDedupInteraction(t *testing.T) {
	set := mergerSet(t)
	qn := &twig.Node{Label: "a"}
	shard0 := []twig.Match{mk(qn, 16)}
	shard1 := []twig.Match{mk(qn, 160)}
	r := NewResultMerger(set)
	r.AddStreams(0, [][]twig.Match{shard0, shard1})

	// Second embedding gathers an overlapping result set.
	r.AddStreams(0, [][]twig.Match{{mk(qn, 16), mk(qn, 96)}, {mk(qn, 160)}})
	got := starts(r.Finish()[0].Matches, qn)
	if !reflect.DeepEqual(got, []int{16, 160, 96}) {
		t.Fatalf("dedup across gathers: %v", got)
	}
	// The first gather's shard slices are never written through.
	if len(shard0) != 1 || shard0[0].Get(qn).Start != 16 || len(shard1) != 1 {
		t.Fatal("shared shard stream mutated by later Add")
	}
}

// TestAddStreamsIdentityReuse: heavily overlapping mappings hand the
// merger the same memo-shared shard streams; a pointer-identical stream
// tuple must reuse the previous merged slice (one concat for the run, not
// one per mapping), and any pointer or length difference must re-merge.
func TestAddStreamsIdentityReuse(t *testing.T) {
	set := mergerSet(t)
	qn := &twig.Node{Label: "a"}
	shard0 := []twig.Match{mk(qn, 16), mk(qn, 32)}
	shard1 := []twig.Match{mk(qn, 160)}

	r := NewResultMerger(set)
	streams := make([][]twig.Match, 2) // caller-reused buffer, like gatherSubset's
	streams[0], streams[1] = shard0, shard1
	r.AddStreams(0, streams)
	streams[0], streams[1] = shard0, shard1
	r.AddStreams(1, streams)
	res := r.Finish()
	if len(res) != 2 || len(res[0].Matches) != 3 || len(res[1].Matches) != 3 {
		t.Fatalf("reused gather results: %+v", res)
	}
	if &res[0].Matches[0] != &res[1].Matches[0] {
		t.Fatal("identical stream tuples did not share the merged slice")
	}

	// A different slice with equal contents must not be mistaken for the
	// cached tuple; a shorter window of the same backing array either.
	other := []twig.Match{mk(qn, 16), mk(qn, 32)}
	r.AddStreams(2, [][]twig.Match{other, shard1})
	r.AddStreams(3, [][]twig.Match{shard0[:1], shard1})
	res = r.Finish()
	if &res[2].Matches[0] == &res[0].Matches[0] {
		t.Fatal("content-equal but distinct streams falsely reused the cache")
	}
	if got := starts(res[3].Matches, qn); !reflect.DeepEqual(got, []int{16, 160}) {
		t.Fatalf("shorter window re-merged wrong: %v", got)
	}
}
