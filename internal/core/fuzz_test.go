package core_test

// FuzzPrepareQuery hardens the remote query path of the xmatchd daemon: a
// malformed or adversarial pattern string arriving over the network must
// make PrepareQuery return an error — never panic, and never blow the
// stack. The corpus is seeded from the Table III workload (which resolves
// against dataset D7's target schema) plus hand-picked malformed variants.

import (
	"strings"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
)

var (
	fuzzOnce sync.Once
	fuzzSet  *mapping.Set
	fuzzErr  error
)

// fuzzMappingSet builds the shared D7 mapping set once per fuzz process.
func fuzzMappingSet(t testing.TB) *mapping.Set {
	fuzzOnce.Do(func() {
		d, err := dataset.Load("D7")
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzSet, fuzzErr = mapgen.TopH(d.Matching, 20, mapgen.Partition)
	})
	if fuzzErr != nil {
		t.Fatalf("building fuzz mapping set: %v", fuzzErr)
	}
	return fuzzSet
}

func FuzzPrepareQuery(f *testing.F) {
	for _, q := range dataset.Queries() {
		f.Add(q.Text)
	}
	for _, s := range []string{
		"", "/", "//", "Order", "Order//EMail", "Order/POLine[./LineNo]//UP",
		"Order[.='v']", `Order[./City="Paris"]`, "a[./b][./c]/d",
		"[[[", "]]]", "a[.=\"unterminated", "a[./", "a//", "a/b[.]",
		"Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity",
		strings.Repeat("a/", 40) + "a", "日本語//中文", "a\x00b",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		set := fuzzMappingSet(t)
		q, err := core.PrepareQuery(pattern, set)
		if err != nil {
			return
		}
		// A successfully prepared query must be internally consistent:
		// non-empty, render/re-parse stable, and within the parser limits.
		if q.Pattern == nil || q.Pattern.Size() == 0 || len(q.Embeddings) == 0 {
			t.Fatalf("PrepareQuery(%q) succeeded with empty pattern or embeddings", pattern)
		}
		if _, err := core.PrepareQuery(q.Pattern.String(), set); err != nil {
			t.Fatalf("re-preparing rendered pattern %q of %q failed: %v", q.Pattern.String(), pattern, err)
		}
	})
}
