package core

// This file defines the JSON wire forms of PTQ answers used by the serving
// layer (internal/server) and the remote CLI client. The forms are plain
// data — no pointers into the document or pattern — and their conversion is
// deterministic: encoding the sequential evaluators' results and the
// concurrent engine's results yields byte-identical JSON, which is what the
// over-the-wire differential tests assert.

// WireBinding is one query-node→document-node binding of a match: the
// pattern node's preorder index together with the bound document node's
// dotted path, preorder start number (its identity within the document),
// and text content.
type WireBinding struct {
	Node  int    `json:"node"`
	Path  string `json:"path"`
	Start int    `json:"start"`
	Text  string `json:"text,omitempty"`
}

// WireMatch is the wire form of one twig.Match.
type WireMatch struct {
	Bindings []WireBinding `json:"bindings"`
}

// WireResult is the wire form of one Result: the matches of the query
// through one possible mapping, with that mapping's probability.
type WireResult struct {
	MappingIndex int         `json:"mapping"`
	Prob         float64     `json:"prob"`
	Matches      []WireMatch `json:"matches"`
}

// WireAnswer is the wire form of one aggregated Answer.
type WireAnswer struct {
	Values []string `json:"values"`
	Prob   float64  `json:"prob"`
}

// ToWire converts evaluator results to their wire form, preserving result,
// match, and binding order exactly.
func ToWire(results []Result) []WireResult {
	out := make([]WireResult, len(results))
	for i, r := range results {
		wr := WireResult{MappingIndex: r.MappingIndex, Prob: r.Prob}
		wr.Matches = make([]WireMatch, len(r.Matches))
		for j, m := range r.Matches {
			bs := make([]WireBinding, len(m))
			for k, b := range m {
				bs[k] = WireBinding{Node: b.Q.Index, Path: b.D.Path, Start: b.D.Start, Text: b.D.Text}
			}
			wr.Matches[j] = WireMatch{Bindings: bs}
		}
		out[i] = wr
	}
	return out
}

// AnswersToWire converts aggregated answers to their wire form, preserving
// order.
func AnswersToWire(answers []Answer) []WireAnswer {
	out := make([]WireAnswer, len(answers))
	for i, a := range answers {
		out[i] = WireAnswer{Values: a.Values, Prob: a.Prob}
	}
	return out
}

// AggregateLeaf aggregates results by the values bound to the query's last
// pattern node (the leaf of the spine) — the presentation both the CLI and
// the serving layer use for human-readable answers.
func AggregateLeaf(q *Query, results []Result) []Answer {
	nodes := q.Pattern.Nodes()
	return AggregateByNode(results, nodes[len(nodes)-1])
}
