// Package core implements the paper's primary contribution (Cheng, Gong,
// Cheung, ICDE 2010): the block tree — a compact representation of a set of
// possible mappings between two XML schemas — and the evaluation of
// probabilistic twig queries (PTQ) and top-k PTQ over it.
//
// A block stores a set of correspondences shared by a set of mappings. A
// constrained block (c-block) additionally has an anchor element in the
// target schema whose complete subtree its correspondences cover, and is
// shared by at least τ·|M| mappings (Definition 2). The block tree mirrors
// the target schema's structure and links each element to its c-blocks
// (Definition 3); a hash table keyed by target paths locates block-tree
// nodes during query evaluation.
package core

import (
	"fmt"
	"sort"

	"xmatch/internal/mapping"
)

// Corr is a correspondence (x, y) between source element x = S and target
// element y = T, stored inside blocks. Scores are not needed at this layer.
type Corr struct {
	S, T int
}

// Block is a c-block: a set of correspondences covering the complete target
// subtree rooted at the anchor, shared by the mappings in M.
type Block struct {
	// Anchor is the target element ID b.a.
	Anchor int
	// C is the correspondence set, sorted by target element ID; |C|
	// equals the number of elements in the subtree rooted at Anchor.
	C []Corr
	// M is the set of mapping IDs (indices into the mapping set) that
	// share every correspondence in C.
	M *mapping.IDSet
}

// sourceFor returns the source element corresponding to target element t in
// the block's correspondence set, using binary search over the sorted C.
func (b *Block) sourceFor(t int) (int, bool) {
	i := sort.Search(len(b.C), func(i int) bool { return b.C[i].T >= t })
	if i < len(b.C) && b.C[i].T == t {
		return b.C[i].S, true
	}
	return 0, false
}

// Bytes returns the block's storage footprint under the byte-size model of
// the compression-ratio metric: a fixed header, two element IDs per
// correspondence, and the mapping-ID bitset.
func (b *Block) Bytes() int {
	return blockOverhead + mapping.CorrBytes*len(b.C) + b.M.Bytes()
}

const blockOverhead = 24 // anchor + lengths + list link

// String renders the block compactly for debugging.
func (b *Block) String() string {
	return fmt.Sprintf("block{a=%d |C|=%d M=%s}", b.Anchor, len(b.C), b.M)
}
