package core

import (
	"fmt"
	"sort"

	"xmatch/internal/mapping"
)

// CompressedMapping is one mapping after remove_duplicate_corr (Algorithm 1
// Step 5): correspondences covered by a shared block are replaced with a
// pointer to the block, the rest remain inline.
type CompressedMapping struct {
	// BlockRefs are the shared blocks this mapping points into, in the
	// pre-order in which compression applied them.
	BlockRefs []*Block
	// Residual are the correspondences not covered by any applied block,
	// sorted by target element ID.
	Residual []Corr
}

// Compressed is a mapping set stored through the block tree: the tree, the
// hash table, and the per-mapping compressed forms.
type Compressed struct {
	Tree     *BlockTree
	Mappings []CompressedMapping
}

// Compress performs the mapping compression of Algorithm 1: a pre-order
// traversal of the block tree replaces, in every mapping of each c-block,
// the correspondences covered by the block with a pointer to the block. A
// block is applied to a mapping only if none of its correspondences was
// already claimed by an earlier (larger, ancestor-anchored) block, so each
// correspondence is stored exactly once per mapping.
func (bt *BlockTree) Compress() *Compressed {
	set := bt.Set
	nMap := set.Len()
	refs := make([][]*Block, nMap)
	// coveredTargets[mi] marks target element IDs already claimed.
	covered := make([]map[int]bool, nMap)
	for i := range covered {
		covered[i] = make(map[int]bool)
	}
	// Pre-order over the target schema = ascending element ID.
	for elemID := 0; elemID < len(bt.Blocks); elemID++ {
		for _, b := range bt.Blocks[elemID] {
			for _, mi := range b.M.IDs() {
				conflict := false
				for _, c := range b.C {
					if covered[mi][c.T] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				for _, c := range b.C {
					covered[mi][c.T] = true
				}
				refs[mi] = append(refs[mi], b)
			}
		}
	}
	out := &Compressed{Tree: bt, Mappings: make([]CompressedMapping, nMap)}
	for mi, m := range set.Mappings {
		cm := &out.Mappings[mi]
		cm.BlockRefs = refs[mi]
		for _, p := range m.Pairs {
			if !covered[mi][p.T] {
				cm.Residual = append(cm.Residual, Corr{S: p.S, T: p.T})
			}
		}
	}
	return out
}

// Decompress reconstructs the full correspondence pairs of mapping mi,
// sorted by target element ID. Tests use it to verify the compression is
// lossless.
func (c *Compressed) Decompress(mi int) []Corr {
	cm := c.Mappings[mi]
	var out []Corr
	out = append(out, cm.Residual...)
	for _, b := range cm.BlockRefs {
		out = append(out, b.C...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Bytes returns B: the total bytes to store the block tree, the hash table
// and the mappings with shared correspondences removed — the numerator of
// the compression-ratio metric of Figure 9(a).
func (c *Compressed) Bytes() int {
	total := c.Tree.Bytes()
	for _, cm := range c.Mappings {
		total += mapping.MappingOverhead +
			mapping.BlockRefBytes*len(cm.BlockRefs) +
			mapping.CorrBytes*len(cm.Residual)
	}
	return total
}

// CompressionRatio returns 1 − B/raw, the fraction of space saved by
// representing the mapping set with the block tree rather than verbatim.
// It can be negative when blocks are too small or too rarely shared to
// amortize their own storage.
func (c *Compressed) CompressionRatio() float64 {
	raw := c.Tree.Set.RawBytes()
	if raw == 0 {
		return 0
	}
	return 1 - float64(c.Bytes())/float64(raw)
}

// String summarizes the compressed representation.
func (c *Compressed) String() string {
	return fmt.Sprintf("compressed{blocks=%d bytes=%d ratio=%.2f%%}",
		c.Tree.NumBlocks, c.Bytes(), 100*c.CompressionRatio())
}
