package core

// SLCA over mutated document snapshots. A revision snapshot shares
// untouched nodes with its base, and a shared node's Parent pointer
// refers to the base epoch's object at the same position — so the SLCA
// ancestor walk must key positions by interval start, not node pointer.
// These tests build exactly that sharing shape with xmltree's revision
// layer and check the walk against a pointer-pure reparse of the same
// document.

import (
	"testing"

	"xmatch/internal/xmltree"
)

func mustParse(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// slcaPaths runs SLCA over the nodes holding the given texts and returns
// the result nodes' paths.
func slcaPaths(doc *xmltree.Document, texts ...string) []string {
	var lists [][]*xmltree.Node
	for _, want := range texts {
		var list []*xmltree.Node
		for _, n := range doc.Nodes() {
			if n.Text == want {
				list = append(list, n)
			}
		}
		lists = append(lists, list)
	}
	var paths []string
	for _, n := range SLCA(doc, lists) {
		paths = append(paths, n.Path)
	}
	return paths
}

func TestSLCAOnSharedSnapshotNodes(t *testing.T) {
	base := mustParse(t, `<r>
		<g><a>x</a><b>y</b></g>
		<h><a>x</a><c>z</c></h>
	</r>`)
	// Mutate a node far from g: g's subtree stays shared, and after the
	// spine clone its nodes' Parent pointers refer to the base epoch's
	// r and g objects.
	rev := base.BeginRevision()
	if err := rev.SetText(base.NodesByPath("r.h.c")[0].Start, "z2"); err != nil {
		t.Fatal(err)
	}
	doc, _ := rev.Commit()
	if doc.NodesByPath("r.g")[0] != base.NodesByPath("r.g")[0] {
		t.Fatal("fixture broken: g subtree was not shared")
	}

	got := slcaPaths(doc, "x", "y")
	want := slcaPaths(mustParse(t, doc.String()), "x", "y")
	if len(want) == 0 {
		t.Fatal("fixture yields no SLCA")
	}
	if len(got) != len(want) {
		t.Fatalf("SLCA over shared snapshot: %v, reparse says %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SLCA over shared snapshot: %v, reparse says %v", got, want)
		}
	}
}

// TestSLCAAcrossManyEpochs compounds revisions so shared nodes' Parent
// chains reach several epochs back, and cross-checks every epoch.
func TestSLCAAcrossManyEpochs(t *testing.T) {
	doc := mustParse(t, `<r><g><a>x</a><b>y</b></g><h><c>q</c></h></r>`)
	for i := 0; i < 6; i++ {
		rev := doc.BeginRevision()
		if err := rev.SetText(doc.NodesByPath("r.h.c")[0].Start, "q"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
		if err := rev.InsertSubtree(doc.NodesByPath("r.h")[0].Start, -1, xmltree.NewRoot("d")); err != nil {
			t.Fatal(err)
		}
		next, _ := rev.Commit()
		doc = next

		got := slcaPaths(doc, "x", "y")
		want := slcaPaths(mustParse(t, doc.String()), "x", "y")
		if len(got) != 1 || len(want) != 1 || got[0] != want[0] {
			t.Fatalf("epoch %d: SLCA %v, reparse says %v", i+1, got, want)
		}
	}
}
