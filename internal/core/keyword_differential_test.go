package core_test

// The keyword-preparation differential: resolving value terms through the
// positional index's token posting layer must return answers identical to
// the doc.Nodes() scan, on the pristine document and across hundreds of
// random mutations — and a keyword query prepared against one snapshot
// must answer correctly against later snapshots (the delta-aware prepared
// form re-resolves value terms per snapshot).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// keywordPools mixes schema terms (resolve against target elements),
// value terms (digits and fragments present in generated document texts),
// and junk that matches nothing.
var keywordPools = [][]string{
	{"Quantity", "Price", "City", "Contact"},
	{"0", "1", "2", "3", "7", "v1", "v23"},
	{"zzz-absent", "42e9"},
}

func randomKeywords(rng *rand.Rand) []string {
	n := 1 + rng.Intn(2)
	out := make([]string, n)
	for i := range out {
		pool := keywordPools[rng.Intn(len(keywordPools))]
		out[i] = pool[rng.Intn(len(pool))]
	}
	return out
}

func randomKeywordEdit(rng *rand.Rand, doc *xmltree.Document) delta.Edit {
	ns := doc.Nodes()
	n := ns[rng.Intn(len(ns))]
	switch rng.Intn(4) {
	case 0:
		return delta.Edit{Op: delta.OpInsert, Start: n.Start, Pos: -1,
			XML: fmt.Sprintf("<Extra>%d</Extra>", rng.Intn(40))}
	case 1:
		if n != doc.Root {
			return delta.Edit{Op: delta.OpDelete, Start: n.Start}
		}
		fallthrough
	case 2:
		return delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: fmt.Sprintf("v%d", rng.Intn(30))}
	default:
		return delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: ""}
	}
}

// scanKeywordResults evaluates the keywords with the accelerator detached
// — the pure doc.Nodes() scan baseline — and restores it.
func scanKeywordResults(keywords []string, set *mapping.Set, doc *xmltree.Document) []core.KeywordResult {
	accel := doc.Accel()
	doc.SetAccel(nil)
	defer doc.SetAccel(accel)
	q := core.PrepareKeywordQuery(keywords, set, doc)
	return core.EvaluateKeywords(q, set, doc)
}

func TestKeywordIndexedDifferential(t *testing.T) {
	d, err := dataset.Load("D1")
	if err != nil {
		t.Fatal(err)
	}
	set, err := mapgen.TopH(d.Matching, 8, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := d.OrderDocument(400, 7)
	h := delta.Open(doc) // builds and attaches the positional index
	rng := rand.New(rand.NewSource(20260729))

	trials := 200
	if testing.Short() {
		trials = 40
	}
	prev := h.Snapshot()
	prevQueries := map[string]*core.KeywordQuery{} // prepared on prev snapshot
	for trial := 0; trial < trials; trial++ {
		snap := h.Snapshot()
		keywords := randomKeywords(rng)

		q := core.PrepareKeywordQuery(keywords, set, snap.Doc)
		indexed := core.EvaluateKeywords(q, set, snap.Doc)
		scanned := scanKeywordResults(keywords, set, snap.Doc)
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("trial %d (%v): indexed keyword evaluation diverged from the scan\nindexed: %+v\nscan:    %+v",
				trial, keywords, indexed, scanned)
		}

		// Delta-awareness: queries prepared against the previous snapshot
		// must answer the current one identically to a fresh preparation.
		key := fmt.Sprint(keywords)
		if old, ok := prevQueries[key]; ok && prev != snap {
			stale := core.EvaluateKeywords(old, set, snap.Doc)
			if !reflect.DeepEqual(stale, indexed) {
				t.Fatalf("trial %d (%v): query prepared on the previous snapshot diverged on the current one",
					trial, keywords)
			}
		}
		prevQueries[key] = q
		prev = snap

		if _, err := h.Apply([]delta.Edit{randomKeywordEdit(rng, snap.Doc)}); err != nil {
			// Some random edits are unapplicable (e.g. deleting an already
			// replaced target); skip, the next trial mutates again.
			continue
		}
	}
}
