package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"xmatch/internal/mapping"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// Query is a probabilistic twig query prepared for evaluation: the parsed
// pattern together with its embeddings into the target schema. Preparing a
// query resolves labels and axes once; per-mapping evaluation then only
// rewrites target elements to source paths.
type Query struct {
	Pattern *twig.Pattern
	// Embeddings are the pattern's embeddings into the target schema
	// (one per way the pattern fits the schema; typically one).
	Embeddings []twig.Embedding

	set *mapping.Set // the mapping set the query was prepared against
}

// PrepareQuery parses the pattern text and resolves it against the target
// schema of the mapping set. It errors if the pattern does not embed into
// the target schema at all.
func PrepareQuery(pattern string, set *mapping.Set) (*Query, error) {
	p, err := twig.Parse(pattern)
	if err != nil {
		return nil, err
	}
	embs, err := twig.ResolveOne(p, set.Target)
	if err != nil {
		return nil, err
	}
	return &Query{Pattern: p, Embeddings: embs, set: set}, nil
}

// Result is one element of a PTQ answer: the matches of the query through
// one possible mapping, with that mapping's probability (Definition 4).
type Result struct {
	// MappingIndex identifies the mapping mi within the set.
	MappingIndex int
	// Prob is pi, the probability the mapping (and hence this answer)
	// is correct.
	Prob float64
	// Matches is Ri, the set of matches of the query on the document
	// through mapping mi. It may be empty for a relevant mapping whose
	// rewritten query finds no document nodes.
	Matches []twig.Match
}

// EvaluateBasic answers the PTQ with Algorithm 3 (query_basic): it filters
// irrelevant mappings — those lacking a correspondence for some query node —
// then, for every remaining mapping independently, rewrites the query to
// source-schema paths and matches it against the document. Results are
// ordered by mapping index.
func EvaluateBasic(q *Query, set *mapping.Set, doc *xmltree.Document) []Result {
	results := NewResultMerger(set)
	for _, emb := range q.Embeddings {
		relevant := FilterMappings(set, emb)
		for _, mi := range relevant {
			results.Add(mi, EvaluateBasicMapping(q, emb, mi, set, doc))
		}
	}
	return results.Finish()
}

// EvaluateBasicMapping is the per-mapping unit of work of Algorithm 3: it
// rewrites the embedded query through mapping mi into source-schema paths and
// matches it against the document. It returns nil when the rewritten paths
// cannot nest (the mapping yields no matches). Mappings are evaluated
// completely independently, which makes this the natural grain for parallel
// basic PTQ answering (internal/engine).
func EvaluateBasicMapping(q *Query, emb twig.Embedding, mi int, set *mapping.Set, doc *xmltree.Document) []twig.Match {
	binding, ok := rewriteFull(q, emb, set.Mappings[mi])
	if !ok {
		return nil
	}
	return matchPattern(doc, q.Pattern.Root, binding)
}

// Evaluate answers the PTQ with Algorithm 4 (twig_query_tree): query
// subtrees whose root path appears in the block tree's hash table are
// evaluated once per c-block and the result replicated across all mappings
// sharing the block; elsewhere the query is decomposed into its root and
// child subqueries, which are evaluated recursively and recombined with
// structural joins.
func Evaluate(q *Query, set *mapping.Set, doc *xmltree.Document, bt *BlockTree) []Result {
	results := NewResultMerger(set)
	for _, emb := range q.Embeddings {
		relevant := FilterMappings(set, emb)
		if len(relevant) == 0 {
			continue
		}
		for mi, matches := range EvaluateSubset(q, emb, set, doc, bt, relevant) {
			results.Add(mi, matches)
		}
	}
	return results.Finish()
}

// EvaluateSubset runs Algorithm 4 for one embedding restricted to the given
// subset of relevant mapping indices, returning matches per mapping index.
// Because every mapping's matches depend only on the mapping itself and on
// the c-blocks containing it — never on the other relevant mappings — the
// per-mapping output is identical whether the relevant set is evaluated in
// one call or partitioned across several. That independence is what lets
// internal/engine split the relevant mappings into chunks and evaluate the
// chunks concurrently, each with its own memoization cache.
func EvaluateSubset(q *Query, emb twig.Embedding, set *mapping.Set, doc *xmltree.Document, bt *BlockTree, relevant []int) map[int][]twig.Match {
	return EvaluateSubsetStop(q, emb, set, doc, bt, relevant, nil)
}

// EvaluateSubsetStop is EvaluateSubset with a cooperative cancellation
// flag: the per-mapping evaluation loops poll stop between units of work
// and bail out with whatever they have computed so far. A caller that arms
// stop must treat the output as partial once the flag is set — the serving
// layer discards it and answers with a timeout instead. A nil stop is
// never polled, so the uncancellable path pays one nil check per mapping.
func EvaluateSubsetStop(q *Query, emb twig.Embedding, set *mapping.Set, doc *xmltree.Document, bt *BlockTree, relevant []int, stop *atomic.Bool) map[int][]twig.Match {
	if len(relevant) == 0 {
		return nil
	}
	relevantSet := mapping.NewIDSet(set.Len())
	for _, mi := range relevant {
		relevantSet.Add(mi)
	}
	return evalTree(q, emb, q.Pattern.Root, set, doc, bt, relevant, relevantSet, &evalCache{matches: map[string][]twig.Match{}, stop: stop})
}

// EvaluateTopK answers the top-k PTQ (Definition 5): only the k relevant
// mappings with the highest probabilities are evaluated, which is correct
// because every answer tuple derives from exactly one mapping and tuple
// probabilities equal mapping probabilities (Section IV-C).
func EvaluateTopK(q *Query, set *mapping.Set, doc *xmltree.Document, bt *BlockTree, k int) []Result {
	if k <= 0 {
		return nil
	}
	keepSet, all := TopKMappings(q, set, k)
	if all {
		// Every relevant mapping is kept: the top-k PTQ degenerates to
		// the plain PTQ.
		return Evaluate(q, set, doc, bt)
	}
	results := NewResultMerger(set)
	for _, emb := range q.Embeddings {
		var relevant []int
		for _, mi := range FilterMappings(set, emb) {
			if keepSet[mi] {
				relevant = append(relevant, mi)
			}
		}
		for mi, matches := range EvaluateSubset(q, emb, set, doc, bt, relevant) {
			results.Add(mi, matches)
		}
	}
	return results.Finish()
}

// TopKMappings computes the mapping selection of the top-k PTQ: the union of
// relevant mappings across the query's embeddings, truncated to the k most
// probable (ties broken by mapping index). When k covers every relevant
// mapping it returns all=true and a nil set — the caller should fall back to
// the plain PTQ.
func TopKMappings(q *Query, set *mapping.Set, k int) (keepSet map[int]bool, all bool) {
	relevantUnion := map[int]bool{}
	for _, emb := range q.Embeddings {
		for _, mi := range FilterMappings(set, emb) {
			relevantUnion[mi] = true
		}
	}
	keep := make([]int, 0, len(relevantUnion))
	for mi := range relevantUnion {
		keep = append(keep, mi)
	}
	if k >= len(keep) {
		return nil, true
	}
	sort.Slice(keep, func(i, j int) bool {
		a, b := set.Mappings[keep[i]], set.Mappings[keep[j]]
		if a.Prob != b.Prob {
			return a.Prob > b.Prob
		}
		return keep[i] < keep[j]
	})
	keep = keep[:k]
	keepSet = map[int]bool{}
	for _, mi := range keep {
		keepSet[mi] = true
	}
	return keepSet, false
}

// FilterMappings returns the indices of the mappings relevant to the
// embedded query: those with a correspondence for every query node's target
// element (function filter_mappings of Algorithm 3).
func FilterMappings(set *mapping.Set, emb twig.Embedding) []int {
	var out []int
	for mi, m := range set.Mappings {
		if m.Covers(emb) {
			out = append(out, mi)
		}
	}
	return out
}

// rewriteFull rewrites the whole embedded query through a mapping into a
// source-path binding. It returns ok=false when the mapped source elements
// cannot nest (a child's source path does not extend its parent's source
// path), in which case the mapping yields no matches.
func rewriteFull(q *Query, emb twig.Embedding, m *mapping.Mapping) (twig.PathBinding, bool) {
	binding := make(twig.PathBinding, q.Pattern.Size())
	for _, qn := range q.Pattern.Nodes() {
		s, ok := m.SourceFor(emb[qn.Index])
		if !ok {
			return nil, false // cannot happen after filtering; defensive
		}
		binding[qn] = q.set.Source.ByID(s).Path
	}
	if !bindingNests(q.Pattern.Root, binding) {
		return nil, false
	}
	return binding, true
}

// bindingNests verifies the rewrite-time structural consistency: for every
// pattern edge the child's source path must strictly extend the parent's,
// otherwise no document node pair can satisfy the containment join.
func bindingNests(qn *twig.Node, binding twig.PathBinding) bool {
	for _, c := range qn.Children {
		pp, cp := binding[qn], binding[c]
		if len(cp) <= len(pp) || cp[:len(pp)] != pp || cp[len(pp)] != '.' {
			return false
		}
		if !bindingNests(c, binding) {
			return false
		}
	}
	return true
}

// evalCache memoizes pure single-node and subtree evaluations within one
// query evaluation: mappings that translate a subquery to the identical
// source-path binding necessarily produce the identical matches, so the
// matching runs once per distinct binding. The join structure of
// Algorithm 4 — and hence the sharing driven by c-blocks — is unaffected.
type evalCache struct {
	matches map[string][]twig.Match
	// stop, when non-nil, is polled between per-mapping evaluation units;
	// once set, evalTree returns partial output immediately (the caller
	// discards it — see EvaluateSubsetStop).
	stop *atomic.Bool
}

// stopped reports whether the evaluation's caller requested cancellation.
func (c *evalCache) stopped() bool { return c.stop != nil && c.stop.Load() }

func (c *evalCache) get(key string) ([]twig.Match, bool) {
	m, ok := c.matches[key]
	return m, ok
}

func (c *evalCache) put(key string, m []twig.Match) { c.matches[key] = m }

// evalTree evaluates the query subtree rooted at qn for every relevant
// mapping, returning matches per mapping index. It implements
// twig_query_tree and query_subtree of Algorithm 4.
func evalTree(q *Query, emb twig.Embedding, qn *twig.Node, set *mapping.Set,
	doc *xmltree.Document, bt *BlockTree, relevant []int, relevantSet *mapping.IDSet,
	cache *evalCache) map[int][]twig.Match {

	elemID := emb[qn.Index]
	path := set.Target.ByID(elemID).Path
	out := make(map[int][]twig.Match, len(relevant))

	if t := bt.FindNode(path); t == elemID && len(bt.Blocks[t]) > 0 {
		// query_subtree: evaluate once per c-block, replicate across the
		// block's relevant mappings.
		covered := mapping.NewIDSet(set.Len())
		for _, b := range bt.Blocks[t] {
			if cache.stopped() {
				return out
			}
			share := b.M.Intersect(relevantSet)
			if share.IsEmpty() {
				continue
			}
			matches := matchSubtreeWithBlock(q, emb, qn, b, set, doc)
			for _, mi := range share.IDs() {
				out[mi] = matches
			}
			covered.UnionWith(share)
		}
		// Mappings not covered by any block are evaluated directly.
		rest := relevantSet.Clone().SubtractWith(covered)
		for _, mi := range rest.IDs() {
			if cache.stopped() {
				return out
			}
			out[mi] = cachedSubtreeEval(q, emb, qn, mi, set, doc, cache)
		}
		return out
	}

	if len(qn.Children) == 0 || !subtreeHasBlocks(qn, emb, set, bt) {
		// Single-node subquery — or a subtree with no c-block anchored at
		// or below any of its nodes. Decomposition exists to reach block
		// sharing deeper in the query; with none available, the
		// decomposed structural joins compute exactly the per-mapping
		// subtree matches that one direct (memoized) matcher evaluation
		// returns, so skip straight to it. This also routes the whole
		// subtree through the document's accelerator when one is
		// attached, where repeated bindings are answered from the
		// matcher-level result memo instead of being re-joined per
		// mapping.
		for _, mi := range relevant {
			if cache.stopped() {
				return out
			}
			out[mi] = cachedSubtreeEval(q, emb, qn, mi, set, doc, cache)
		}
		return out
	}

	// Decompose: root-only query q0, then one subquery per child, then
	// per-mapping structural joins (split_query + stack_join).
	root0 := &twig.Node{Label: qn.Label, Axis: qn.Axis, Value: qn.Value, HasValue: qn.HasValue, Index: qn.Index}
	r0 := make(map[int][]twig.Match, len(relevant))
	for _, mi := range relevant {
		if cache.stopped() {
			return r0
		}
		m := set.Mappings[mi]
		s, _ := m.SourceFor(elemID)
		key := string(appendNodeKey(make([]byte, 0, 16), 'n', qn.Index, s))
		if matches, ok := cache.get(key); ok {
			r0[mi] = matches
			continue
		}
		binding := twig.PathBinding{root0: set.Source.ByID(s).Path}
		matches := matchPattern(doc, root0, binding)
		// Re-key matches to the original query node.
		rekeyed := make([]twig.Match, len(matches))
		for i, mt := range matches {
			rekeyed[i] = twig.Match{{Q: qn, D: mt.Get(root0)}}
		}
		cache.put(key, rekeyed)
		r0[mi] = rekeyed
	}
	joined := r0
	for _, c := range qn.Children {
		if cache.stopped() {
			return joined
		}
		rc := evalTree(q, emb, c, set, doc, bt, relevant, relevantSet, cache)
		next := make(map[int][]twig.Match, len(relevant))
		// Mappings whose operand lists are the same slices (the subtree
		// caches hand one slice to every mapping with the same rewrite)
		// necessarily join to the same result, so each distinct operand
		// pair is joined once and shared — the join-level counterpart of
		// the c-block sharing this decomposition could not reach.
		joins := make(map[joinOperands][]twig.Match, len(relevant))
		for _, mi := range relevant {
			key := joinOperands{outer: sliceIdent(joined[mi]), inner: sliceIdent(rc[mi])}
			m, ok := joins[key]
			if !ok {
				m = twig.StructuralJoin(joined[mi], qn, rc[mi], c)
				joins[key] = m
			}
			next[mi] = m
		}
		joined = next
	}
	return joined
}

// ident is a match slice's identity: its first element's address and its
// length. Two slices with equal identity hold the same matches.
type ident struct {
	p *twig.Match
	n int
}

// joinOperands keys one structural join's operand pair by identity.
type joinOperands struct {
	outer, inner ident
}

func sliceIdent(s []twig.Match) ident {
	if len(s) == 0 {
		return ident{}
	}
	return ident{p: &s[0], n: len(s)}
}

// subtreeHasBlocks reports whether any node of the query subtree rooted
// at qn (the root included) anchors at least one c-block — i.e. whether
// decomposing below qn can reach any cross-mapping sharing at all.
func subtreeHasBlocks(qn *twig.Node, emb twig.Embedding, set *mapping.Set, bt *BlockTree) bool {
	t := emb[qn.Index]
	if bt.FindNode(set.Target.ByID(t).Path) == t && len(bt.Blocks[t]) > 0 {
		return true
	}
	for _, c := range qn.Children {
		if subtreeHasBlocks(c, emb, set, bt) {
			return true
		}
	}
	return false
}

// cachedSubtreeEval evaluates the query subtree for one mapping, memoized
// by the mapping's source choices over the subtree. The memo key is built
// with strconv appends into one preallocated buffer — this runs once per
// (mapping, subtree) on the hot path, and fmt-formatted keys dominated its
// allocation profile (see BenchmarkMatchKey for the pattern).
func cachedSubtreeEval(q *Query, emb twig.Embedding, qn *twig.Node, mi int,
	set *mapping.Set, doc *xmltree.Document, cache *evalCache) []twig.Match {

	m := set.Mappings[mi]
	kb := appendNodeKey(make([]byte, 0, 8+8*q.Pattern.Size()), 's', qn.Index, -1)
	var sig func(n *twig.Node) bool
	sig = func(n *twig.Node) bool {
		s, ok := m.SourceFor(emb[n.Index])
		if !ok {
			return false
		}
		kb = append(kb, ':')
		kb = strconv.AppendInt(kb, int64(s), 10)
		for _, c := range n.Children {
			if !sig(c) {
				return false
			}
		}
		return true
	}
	if !sig(qn) {
		return nil
	}
	key := string(kb)
	if matches, ok := cache.get(key); ok {
		return matches
	}
	matches := matchSubtreeWithMapping(q, emb, qn, m, set, doc)
	cache.put(key, matches)
	return matches
}

// appendNodeKey appends a memo-key prefix: a tag byte and the subtree
// root's pattern index, plus one source element ID when s >= 0.
func appendNodeKey(buf []byte, tag byte, index, s int) []byte {
	buf = append(buf, tag)
	buf = strconv.AppendInt(buf, int64(index), 10)
	if s >= 0 {
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(s), 10)
	}
	return buf
}

// matchSubtreeWithBlock evaluates the query subtree once using a block's
// correspondence set as the (single) mapping: b.C covers the anchor's whole
// target subtree, hence every query node below qn.
func matchSubtreeWithBlock(q *Query, emb twig.Embedding, qn *twig.Node, b *Block,
	set *mapping.Set, doc *xmltree.Document) []twig.Match {

	binding := make(twig.PathBinding)
	var collect func(n *twig.Node) bool
	collect = func(n *twig.Node) bool {
		s, ok := b.sourceFor(emb[n.Index])
		if !ok {
			return false // defensive: c-blocks cover the full subtree
		}
		binding[n] = set.Source.ByID(s).Path
		for _, c := range n.Children {
			if !collect(c) {
				return false
			}
		}
		return true
	}
	if !collect(qn) || !bindingNests(qn, binding) {
		return nil
	}
	return matchPattern(doc, qn, binding)
}

// matchSubtreeWithMapping evaluates the query subtree for one mapping.
func matchSubtreeWithMapping(q *Query, emb twig.Embedding, qn *twig.Node, m *mapping.Mapping,
	set *mapping.Set, doc *xmltree.Document) []twig.Match {

	binding := make(twig.PathBinding)
	var collect func(n *twig.Node) bool
	collect = func(n *twig.Node) bool {
		s, ok := m.SourceFor(emb[n.Index])
		if !ok {
			return false
		}
		binding[n] = set.Source.ByID(s).Path
		for _, c := range n.Children {
			if !collect(c) {
				return false
			}
		}
		return true
	}
	if !collect(qn) || !bindingNests(qn, binding) {
		return nil
	}
	return matchPattern(doc, qn, binding)
}

// ResultMerger accumulates per-mapping matches across embeddings,
// deduplicating matches by canonical key. Adding nil matches still registers
// the mapping, so relevant mappings with empty answers appear in the final
// results. It is not safe for concurrent use; parallel callers must merge
// their per-chunk outputs through a single ResultMerger in a deterministic
// order (per mapping, chunk outputs are disjoint, so only the relative order
// of embeddings matters for match ordering).
//
// Duplicates can only arrive from a *second* Add for the same mapping (one
// evaluation never repeats a match), so the match-key dedup set is built
// lazily at that point. Single-embedding queries — the common case — never
// key a single match, which takes Match.Key and its map off the hot path
// entirely. The first Add's slice is retained as-is (appends copy on
// growth), so matcher-layer caches may hand the same slice to every
// mapping safely.
type ResultMerger struct {
	set     *mapping.Set
	matches map[int][]twig.Match
	seen    map[int]map[string]bool // built on the second Add for a mapping

	// AddStreams identity cache: heavily overlapping mappings hand the
	// merger the same memo-shared shard streams over and over, and the
	// merge is a pure function of the streams, so an AddStreams whose
	// stream tuple is pointer-identical to the previous call's reuses the
	// previous merged slice instead of re-concatenating — the multi-shard
	// analogue of the matcher memo handing one slice to many mappings.
	lastStreams [][]twig.Match
	lastMerged  []twig.Match
	lastValid   bool
}

// NewResultMerger returns an empty merger for the mapping set.
func NewResultMerger(set *mapping.Set) *ResultMerger {
	return &ResultMerger{
		set:     set,
		matches: make(map[int][]twig.Match),
		seen:    make(map[int]map[string]bool),
	}
}

// Add records the matches of mapping mi, dropping duplicates of matches
// already recorded for mi.
func (r *ResultMerger) Add(mi int, matches []twig.Match) {
	existing, ok := r.matches[mi]
	if !ok {
		r.matches[mi] = matches
		return
	}
	if len(matches) == 0 {
		return
	}
	seen := r.seen[mi]
	if seen == nil {
		seen = make(map[string]bool, len(existing))
		for _, m := range existing {
			seen[m.Key()] = true
		}
		r.seen[mi] = seen
		// The stored slice may be shared (matcher caches hand one slice to
		// many mappings); clone before the first append so growth never
		// writes into shared backing capacity.
		existing = append(make([]twig.Match, 0, len(existing)+len(matches)), existing...)
	}
	for _, m := range matches {
		k := m.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		existing = append(existing, m)
	}
	r.matches[mi] = existing
}

// AddStreams records one mapping's matches gathered from several
// key-ordered result streams — in sharded evaluation, one stream per
// member document — interleaving them deterministically before the usual
// Add. Each stream must be ordered by Match.Key(), which is the matcher
// output order (bindings in pattern preorder, keyed by start number); the
// interleave is the unique key-sorted merge, with a match whose key
// already appeared earlier in the merge dropped. Shards carry disjoint
// ascending interval ranges, so for them the merge degenerates to plain
// concatenation in stream order — exactly the match order evaluating the
// concatenated corpus as one document produces, which is what keeps
// sharded wire output byte-identical (see internal/engine's Across
// evaluators and the cross-shard differential suites). Calling it with
// every stream empty still registers the mapping, like Add(mi, nil).
func (r *ResultMerger) AddStreams(mi int, streams [][]twig.Match) {
	nonEmpty, last := 0, -1
	for i, s := range streams {
		if len(s) > 0 {
			nonEmpty, last = nonEmpty+1, i
		}
	}
	switch nonEmpty {
	case 0:
		r.Add(mi, nil)
		return
	case 1:
		r.Add(mi, streams[last])
		return
	}
	if r.sameStreams(streams) {
		r.Add(mi, r.lastMerged)
		return
	}
	total := 0
	ordered := true
	prevLast := ""
	for _, s := range streams {
		if len(s) == 0 {
			continue
		}
		total += len(s)
		if ordered {
			if prevLast != "" && s[0].Key() <= prevLast {
				ordered = false
			} else {
				prevLast = s[len(s)-1].Key()
			}
		}
	}
	if ordered {
		// Disjoint ascending key ranges — the shard case: concatenate.
		merged := make([]twig.Match, 0, total)
		for _, s := range streams {
			merged = append(merged, s...)
		}
		r.rememberStreams(streams, merged)
		r.Add(mi, merged)
		return
	}
	// General interleave: repeated head selection over the streams (their
	// count is the shard count, small), deduplicating adjacent equal keys
	// — the merge emits in key order, so duplicates are always adjacent.
	idx := make([]int, len(streams))
	keys := make([]string, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			keys[i] = s[0].Key()
		}
	}
	merged := make([]twig.Match, 0, total)
	lastKey, first := "", true
	for {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best < 0 || keys[i] < keys[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		m, k := streams[best][idx[best]], keys[best]
		idx[best]++
		if idx[best] < len(streams[best]) {
			keys[best] = streams[best][idx[best]].Key()
		}
		if first || k != lastKey {
			merged = append(merged, m)
			lastKey, first = k, false
		}
	}
	r.rememberStreams(streams, merged)
	r.Add(mi, merged)
}

// sameStreams reports whether streams is pointer-identical — same count,
// and each stream the same (base, length) window — to the tuple of the
// previous merging AddStreams call.
func (r *ResultMerger) sameStreams(streams [][]twig.Match) bool {
	if !r.lastValid || len(streams) != len(r.lastStreams) {
		return false
	}
	for i, s := range streams {
		prev := r.lastStreams[i]
		if len(s) != len(prev) {
			return false
		}
		if len(s) > 0 && &s[0] != &prev[0] {
			return false
		}
	}
	return true
}

// rememberStreams snapshots the stream tuple (the caller typically reuses
// the streams slice itself across mappings, so the headers are copied) and
// its merged output for sameStreams reuse.
func (r *ResultMerger) rememberStreams(streams [][]twig.Match, merged []twig.Match) {
	if cap(r.lastStreams) < len(streams) {
		r.lastStreams = make([][]twig.Match, len(streams))
	}
	r.lastStreams = r.lastStreams[:len(streams)]
	copy(r.lastStreams, streams)
	r.lastMerged = merged
	r.lastValid = true
}

// Finish returns the accumulated results ordered by mapping index.
func (r *ResultMerger) Finish() []Result {
	ids := make([]int, 0, len(r.matches))
	for mi := range r.matches {
		ids = append(ids, mi)
	}
	sort.Ints(ids)
	out := make([]Result, len(ids))
	for i, mi := range ids {
		out[i] = Result{MappingIndex: mi, Prob: r.set.Mappings[mi].Prob, Matches: r.matches[mi]}
	}
	return out
}

// Answer is an aggregated PTQ answer: the text values bound to one query
// node, with the total probability of the mappings producing them — the
// presentation of the paper's introduction example
// {("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}.
type Answer struct {
	Values []string
	Prob   float64
}

// AggregateByNode groups results by the multiset of text values their
// matches bind to the given query node and sums the probabilities of
// mappings yielding identical value sets. Answers are ordered by
// non-increasing probability, ties broken by value.
func AggregateByNode(results []Result, qn *twig.Node) []Answer {
	byKey := map[string]*Answer{}
	for _, r := range results {
		valSet := map[string]bool{}
		for _, m := range r.Matches {
			if d := m.Get(qn); d != nil {
				valSet[d.Text] = true
			}
		}
		vals := make([]string, 0, len(valSet))
		for v := range valSet {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		key := strings.Join(vals, "\x00")
		if a, ok := byKey[key]; ok {
			a.Prob += r.Prob
		} else {
			byKey[key] = &Answer{Values: vals, Prob: r.Prob}
		}
	}
	out := make([]Answer, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return fmt.Sprint(out[i].Values) < fmt.Sprint(out[j].Values)
	})
	return out
}
