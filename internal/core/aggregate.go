package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"xmatch/internal/mapping"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// This file implements aggregate queries over probabilistic mappings in the
// style of Gal, Martinez, Simari and Subrahmanian ("Aggregate query
// answering under uncertain schema mappings", ICDE 2009), which the paper
// cites as the relational counterpart of its related work: an aggregate
// (COUNT, SUM, MIN, MAX, AVG) over the values a twig query binds to one of
// its nodes, evaluated under every possible mapping, yields a probability
// distribution over aggregate values rather than a single number.

// AggFunc selects the aggregate.
type AggFunc int

const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

// String names the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// AggValue is one outcome of an aggregate distribution: the aggregate
// evaluates to Value with probability Prob. Valid is false when the
// aggregate is undefined for a mapping (no matches for MIN/MAX/AVG/SUM).
type AggValue struct {
	Value float64
	Valid bool
	Prob  float64
}

// AggDistribution is the by-table distribution of an aggregate: one
// outcome per distinct aggregate value, probabilities summing to the total
// probability of the relevant mappings.
type AggDistribution struct {
	Func    AggFunc
	Values  []AggValue
	numeric bool
}

// Expected returns the expectation of the aggregate over the defined
// outcomes (range semantics collapse to expectation under by-table
// evaluation), together with the probability mass that was defined.
func (d *AggDistribution) Expected() (value, definedMass float64) {
	for _, v := range d.Values {
		if !v.Valid {
			continue
		}
		value += v.Value * v.Prob
		definedMass += v.Prob
	}
	if definedMass > 0 {
		value /= definedMass
	}
	return value, definedMass
}

// EvaluateAggregate answers an aggregate PTQ: the query is evaluated with
// the block tree, the text values bound to node qn are aggregated per
// mapping (non-numeric values are ignored for numeric aggregates; COUNT
// counts distinct bound document nodes), and outcomes with equal aggregate
// values are folded by summing probabilities. Outcomes are ordered by
// non-increasing probability, ties by value.
func EvaluateAggregate(q *Query, set *mapping.Set, doc *xmltree.Document,
	bt *BlockTree, qn *twig.Node, fn AggFunc) *AggDistribution {

	results := Evaluate(q, set, doc, bt)
	type key struct {
		value float64
		valid bool
	}
	acc := map[key]float64{}
	for _, r := range results {
		// Distinct document nodes bound to qn across this mapping's
		// matches.
		seen := map[*xmltree.Node]bool{}
		var vals []float64
		for _, m := range r.Matches {
			d := m.Get(qn)
			if d == nil || seen[d] {
				continue
			}
			seen[d] = true
			if fn == Count {
				continue
			}
			if v, err := strconv.ParseFloat(d.Text, 64); err == nil {
				vals = append(vals, v)
			}
		}
		k := key{valid: true}
		switch fn {
		case Count:
			k.value = float64(len(seen))
		case Sum:
			if len(vals) == 0 {
				k.valid = false
			}
			for _, v := range vals {
				k.value += v
			}
		case Min:
			if len(vals) == 0 {
				k.valid = false
			} else {
				k.value = vals[0]
				for _, v := range vals[1:] {
					k.value = math.Min(k.value, v)
				}
			}
		case Max:
			if len(vals) == 0 {
				k.valid = false
			} else {
				k.value = vals[0]
				for _, v := range vals[1:] {
					k.value = math.Max(k.value, v)
				}
			}
		case Avg:
			if len(vals) == 0 {
				k.valid = false
			} else {
				for _, v := range vals {
					k.value += v
				}
				k.value /= float64(len(vals))
			}
		}
		if !k.valid {
			k.value = 0
		}
		acc[k] += r.Prob
	}
	d := &AggDistribution{Func: fn, numeric: fn != Count}
	for k, p := range acc {
		d.Values = append(d.Values, AggValue{Value: k.value, Valid: k.valid, Prob: p})
	}
	sort.Slice(d.Values, func(i, j int) bool {
		if d.Values[i].Prob != d.Values[j].Prob {
			return d.Values[i].Prob > d.Values[j].Prob
		}
		return d.Values[i].Value < d.Values[j].Value
	})
	return d
}
