package core

import (
	"math"
	"testing"
)

func TestByTupleAnswers(t *testing.T) {
	set, doc := keywordFixture(t) // two mappings, probs 0.6 and 0.4
	q, err := PrepareQuery("//INVOICE_PARTY//CONTACT_NAME", set)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results := Evaluate(q, set, doc, bt)
	tuples := ByTupleAnswers(results)
	// Mapping 0 binds BCN ("Cathy"), mapping 1 binds RCN ("Bob"); the two
	// matches are distinct, each with its mapping's probability.
	if len(tuples) != 2 {
		t.Fatalf("tuples = %d, want 2", len(tuples))
	}
	if math.Abs(tuples[0].Prob-0.6) > 1e-9 || math.Abs(tuples[1].Prob-0.4) > 1e-9 {
		t.Fatalf("probs = %v, %v", tuples[0].Prob, tuples[1].Prob)
	}
	if tuples[0].Prob < tuples[1].Prob {
		t.Fatal("tuples not ordered by probability")
	}

	icn := q.Pattern.Nodes()[1]
	vals := ValueDistribution(results, icn)
	if len(vals) != 2 {
		t.Fatalf("value distribution = %d entries", len(vals))
	}
	got := map[string]float64{}
	for _, a := range vals {
		got[a.Values[0]] = a.Prob
	}
	if math.Abs(got["Cathy"]-0.6) > 1e-9 || math.Abs(got["Bob"]-0.4) > 1e-9 {
		t.Fatalf("value probs = %v", got)
	}
}

func TestByTupleSharedMatchAccumulates(t *testing.T) {
	// Two mappings that agree on the query subtree produce the same match;
	// by-tuple must sum their probabilities.
	set, doc := keywordFixture(t)
	q, err := PrepareQuery("//INVOICE_PARTY", set)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Build(set, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	results := Evaluate(q, set, doc, bt)
	tuples := ByTupleAnswers(results)
	if len(tuples) != 1 {
		t.Fatalf("tuples = %d, want 1 shared match", len(tuples))
	}
	if math.Abs(tuples[0].Prob-1.0) > 1e-9 {
		t.Fatalf("shared match prob = %v, want 1.0", tuples[0].Prob)
	}
}

func TestByTupleEmptyResults(t *testing.T) {
	if got := ByTupleAnswers(nil); len(got) != 0 {
		t.Fatalf("empty results produced %d tuples", len(got))
	}
	if got := ValueDistribution(nil, nil); len(got) != 0 {
		t.Fatalf("empty results produced %d values", len(got))
	}
}
