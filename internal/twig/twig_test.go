package twig

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"xmatch/internal/schema"
	"xmatch/internal/xmltree"
)

func TestParseSimplePath(t *testing.T) {
	p := MustParse("Order/DeliverTo/Contact/EMail")
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
	labels := []string{}
	for _, n := range p.Nodes() {
		labels = append(labels, n.Label)
	}
	want := []string{"Order", "DeliverTo", "Contact", "EMail"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i, n := range p.Nodes() {
		if n.Axis != Child {
			t.Errorf("node %d axis = %v, want /", i, n.Axis)
		}
	}
}

func TestParseDescendantAxis(t *testing.T) {
	p := MustParse("//IP//ICN")
	if p.Size() != 2 {
		t.Fatalf("size = %d, want 2", p.Size())
	}
	if p.Root.Axis != Descendant || p.Root.Children[0].Axis != Descendant {
		t.Fatalf("axes wrong: %v %v", p.Root.Axis, p.Root.Children[0].Axis)
	}
}

func TestParsePredicates(t *testing.T) {
	p := MustParse("Order/DeliverTo/Address[./City][./Country]/Street")
	// Address should have 3 children: City, Country (predicates), Street (spine).
	var addr *Node
	for _, n := range p.Nodes() {
		if n.Label == "Address" {
			addr = n
		}
	}
	if addr == nil || len(addr.Children) != 3 {
		t.Fatalf("Address children = %v", addr)
	}
	if addr.Children[0].Label != "City" || addr.Children[1].Label != "Country" || addr.Children[2].Label != "Street" {
		t.Fatalf("children order wrong: %s %s %s",
			addr.Children[0].Label, addr.Children[1].Label, addr.Children[2].Label)
	}
}

func TestParseNestedPredicates(t *testing.T) {
	p := MustParse(`Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity`)
	if p.Size() != 7 {
		t.Fatalf("size = %d, want 7 (Order, DeliverTo, EMail, Street, POLine, UP, Quantity)", p.Size())
	}
	var deliver *Node
	for _, n := range p.Nodes() {
		if n.Label == "DeliverTo" {
			deliver = n
		}
	}
	if deliver == nil || len(deliver.Children) != 2 {
		t.Fatalf("DeliverTo should have EMail predicate and Street spine")
	}
	if deliver.Children[0].Label != "EMail" || deliver.Children[0].Axis != Descendant {
		t.Fatalf("nested predicate wrong: %+v", deliver.Children[0])
	}
	if deliver.Children[1].Label != "Street" || deliver.Children[1].Axis != Descendant {
		t.Fatalf("spine after predicate wrong: %+v", deliver.Children[1])
	}
}

func TestParseValuePredicates(t *testing.T) {
	p := MustParse(`Order/POLine[./LineNo="7"]/Quantity`)
	var lineNo *Node
	for _, n := range p.Nodes() {
		if n.Label == "LineNo" {
			lineNo = n
		}
	}
	if lineNo == nil || !lineNo.HasValue || lineNo.Value != "7" {
		t.Fatalf("value predicate not parsed: %+v", lineNo)
	}
	p2 := MustParse(`Order//City[.='Paris']`)
	city := p2.Nodes()[1]
	if !city.HasValue || city.Value != "Paris" {
		t.Fatalf("self value predicate not parsed: %+v", city)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "/", "Order/", "Order[", "Order[./]", "Order[X]", "Order]",
		"Order[./City", `Order[./City="x]`, "Order//", "Order trailing",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"Order/DeliverTo/Address[./City][./Country]/Street",
		"//IP//ICN",
		"Order[./Buyer/Contact][./DeliverTo//City]//BPID",
		`Order/POLine[./LineNo="7"]/Quantity`,
	} {
		p := MustParse(s)
		p2 := MustParse(p.String())
		if p2.String() != p.String() {
			t.Errorf("round trip of %q: %q != %q", s, p.String(), p2.String())
		}
		if p2.Size() != p.Size() {
			t.Errorf("round trip of %q changed size", s)
		}
	}
}

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.ParseSpec("T", `
Order
  DeliverTo
    Address
      Street
      City
    Contact
      EMail
  POLine
    LineNo
    Quantity
  Buyer
    Contact2
`)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResolveAbsolutePath(t *testing.T) {
	s := testSchema(t)
	p := MustParse("Order/DeliverTo/Address/City")
	embs := Resolve(p, s)
	if len(embs) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(embs))
	}
	if s.ByID(embs[0][3]).Path != "Order.DeliverTo.Address.City" {
		t.Fatalf("wrong element: %s", s.ByID(embs[0][3]).Path)
	}
}

func TestResolveDescendant(t *testing.T) {
	s := testSchema(t)
	p := MustParse("Order//City")
	embs := Resolve(p, s)
	if len(embs) != 1 {
		t.Fatalf("embeddings = %d, want 1", len(embs))
	}
	p2 := MustParse("//Contact")
	if got := len(Resolve(p2, s)); got != 1 {
		t.Fatalf("//Contact embeddings = %d, want 1", got)
	}
}

func TestResolveNoMatch(t *testing.T) {
	s := testSchema(t)
	for _, q := range []string{"Order/City", "Invoice//City", "Order//Nothing"} {
		if embs := Resolve(MustParse(q), s); len(embs) != 0 {
			t.Errorf("Resolve(%q) = %d embeddings, want 0", q, len(embs))
		}
	}
	if _, err := ResolveOne(MustParse("Order/City"), s); err == nil {
		t.Error("ResolveOne should error on unresolvable pattern")
	}
}

func TestResolveRootDescendantMultiple(t *testing.T) {
	s, err := schema.ParseSpec("T", `
R
  A
    X
  B
    X
`)
	if err != nil {
		t.Fatal(err)
	}
	embs := Resolve(MustParse("//X"), s)
	if len(embs) != 2 {
		t.Fatalf("//X embeddings = %d, want 2", len(embs))
	}
}

// buildDoc creates a small order document for matching tests.
func buildDoc() *xmltree.Document {
	root := xmltree.NewRoot("PO")
	del := root.AddChild("ShipTo")
	addr := del.AddChild("Addr")
	addr.AddChild("Str").AddText("Main St")
	addr.AddChild("Town").AddText("Paris")
	for i, qty := range []string{"5", "7", "9"} {
		line := root.AddChild("Line")
		line.AddChild("Num").AddText([]string{"1", "2", "3"}[i])
		line.AddChild("Qty").AddText(qty)
	}
	return xmltree.New(root)
}

func TestMatchByPathsSimple(t *testing.T) {
	doc := buildDoc()
	p := MustParse("Order/POLine/Quantity")
	n := p.Nodes()
	paths := PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}
	ms := MatchByPaths(doc, p.Root, paths)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	for i, m := range ms {
		if m.Get(n[2]).Text != []string{"5", "7", "9"}[i] {
			t.Errorf("match %d quantity = %q", i, m.Get(n[2]).Text)
		}
	}
}

func TestMatchByPathsValuePredicate(t *testing.T) {
	doc := buildDoc()
	p := MustParse(`Order/POLine[./LineNo="2"]/Quantity`)
	n := p.Nodes()
	paths := PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Num", n[3]: "PO.Line.Qty"}
	ms := MatchByPaths(doc, p.Root, paths)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Get(n[3]).Text != "7" {
		t.Fatalf("quantity = %q, want 7", ms[0].Get(n[3]).Text)
	}
}

func TestMatchByPathsNoCandidates(t *testing.T) {
	doc := buildDoc()
	p := MustParse("Order/Missing")
	n := p.Nodes()
	paths := PathBinding{n[0]: "PO", n[1]: "PO.Nope"}
	if ms := MatchByPaths(doc, p.Root, paths); ms != nil {
		t.Fatalf("expected nil matches, got %d", len(ms))
	}
}

// randomDoc builds a random document over a small label alphabet.
func randomDoc(rng *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c"}
	root := xmltree.NewRoot("r")
	var grow func(n *xmltree.Node, depth int)
	grow = func(n *xmltree.Node, depth int) {
		if depth >= 4 {
			return
		}
		for i := 0; i < rng.Intn(4); i++ {
			c := n.AddChild(labels[rng.Intn(len(labels))])
			c.Text = []string{"", "x", "y"}[rng.Intn(3)]
			grow(c, depth+1)
		}
	}
	grow(root, 0)
	return xmltree.New(root)
}

// randomPattern builds a random pattern whose paths refer to the document's
// path set, so matches are plausible.
func randomPattern(rng *rand.Rand, doc *xmltree.Document) (*Pattern, PathBinding) {
	paths := doc.Paths()
	// Pick a root path, then extend with descendant paths.
	rootPath := paths[rng.Intn(len(paths))]
	under := []string{}
	for _, p := range paths {
		if len(p) > len(rootPath) && p[:len(rootPath)] == rootPath && p[len(rootPath)] == '.' {
			under = append(under, p)
		}
	}
	root := &Node{Label: "q0"}
	binding := PathBinding{root: rootPath}
	pat := &Pattern{Root: root}
	nodes := []*Node{root}
	nodePaths := []string{rootPath}
	for i := 0; i < rng.Intn(3) && len(under) > 0; i++ {
		parentIdx := rng.Intn(len(nodes))
		parentPath := nodePaths[parentIdx]
		// Choose a path under the parent's path.
		var cands []string
		for _, p := range under {
			if len(p) > len(parentPath) && p[:len(parentPath)] == parentPath && p[len(parentPath)] == '.' {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			continue
		}
		cp := cands[rng.Intn(len(cands))]
		c := &Node{Label: "q" + string(rune('1'+i))}
		if rng.Intn(4) == 0 {
			c.HasValue = true
			c.Value = []string{"x", "y"}[rng.Intn(2)]
		}
		nodes[parentIdx].Children = append(nodes[parentIdx].Children, c)
		nodes = append(nodes, c)
		nodePaths = append(nodePaths, cp)
		binding[c] = cp
	}
	pat.index()
	return pat, binding
}

func sortedKeys(ms []Match) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func TestMatchByPathsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		doc := randomDoc(rng)
		if doc.Len() < 2 {
			continue
		}
		pat, binding := randomPattern(rng, doc)
		fast := MatchByPaths(doc, pat.Root, binding)
		slow := NaiveMatchByPaths(doc, pat.Root, binding)
		fk, sk := sortedKeys(fast), sortedKeys(slow)
		if !reflect.DeepEqual(fk, sk) {
			t.Fatalf("trial %d: fast %d matches, naive %d matches\nfast: %v\nnaive: %v\npattern: %s",
				trial, len(fast), len(slow), fk, sk, pat)
		}
	}
}

func TestStructuralJoin(t *testing.T) {
	doc := buildDoc()
	// Outer: PO root; inner: Line/Qty subtree matches.
	rootQ := &Node{Label: "root"}
	lineQ := &Node{Label: "line"}
	qtyQ := &Node{Label: "qty"}
	lineQ.Children = []*Node{qtyQ}
	outer := []Match{{{Q: rootQ, D: doc.Root}}}
	inner := MatchByPaths(doc, lineQ, PathBinding{lineQ: "PO.Line", qtyQ: "PO.Line.Qty"})
	joined := StructuralJoin(outer, rootQ, inner, lineQ)
	if len(joined) != 3 {
		t.Fatalf("joined = %d, want 3", len(joined))
	}
	for _, m := range joined {
		if m.Get(rootQ) != doc.Root {
			t.Error("root binding lost in join")
		}
		if m.Get(qtyQ) == nil || m.Get(lineQ) == nil {
			t.Error("inner bindings lost in join")
		}
	}
	// Joining against a leaf outer node with no containing interval.
	leaf := doc.NodesByPath("PO.Line.Qty")[0]
	outer2 := []Match{{{Q: rootQ, D: leaf}}}
	if got := StructuralJoin(outer2, rootQ, inner, lineQ); len(got) != 0 {
		t.Fatalf("expected empty join, got %d", len(got))
	}
}

func TestMatchKeyDistinguishesBindings(t *testing.T) {
	doc := buildDoc()
	lines := doc.NodesByPath("PO.Line")
	q := &Node{Label: "x", Index: 0}
	a := Match{{Q: q, D: lines[0]}}
	b := Match{{Q: q, D: lines[1]}}
	if a.Key() == b.Key() {
		t.Fatal("different bindings share a key")
	}
}

func TestMatchByPathsFilteredAgainstBase(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		doc := randomDoc(rng)
		if doc.Len() < 2 {
			continue
		}
		pat, binding := randomPattern(rng, doc)
		base := MatchByPaths(doc, pat.Root, binding)
		filtered := MatchByPathsFiltered(doc, pat.Root, binding)
		bk, fk := sortedKeys(base), sortedKeys(filtered)
		if !reflect.DeepEqual(bk, fk) {
			t.Fatalf("trial %d: base %d matches, filtered %d\npattern: %s",
				trial, len(base), len(filtered), pat)
		}
	}
}

func TestMatchByPathsFilteredPrunes(t *testing.T) {
	// A value predicate at the root kills everything; the filtered
	// evaluator must return nil without enumerating children.
	doc := buildDoc()
	p := MustParse(`Order[.="nope"]/POLine/Quantity`)
	n := p.Nodes()
	paths := PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}
	if got := MatchByPathsFiltered(doc, p.Root, paths); got != nil {
		t.Fatalf("expected nil, got %d matches", len(got))
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Fuzz-ish robustness: Parse must return an error, never panic, on
	// arbitrary input.
	check := func(s string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Parse(%q) panicked", s)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Adversarial hand-picked inputs.
	for _, s := range []string{
		"[[[", "]]]", "///", "a[b[c[d[e", `a[.="`, "a[.=']", "//[.]//",
		"a" + string(rune(0)) + "b", "日本語/中文",
	} {
		_, _ = Parse(s)
	}
}

func TestParseLimits(t *testing.T) {
	// Just under the node limit parses; one past it errors.
	ok := "a" + strings.Repeat("/a", MaxPatternNodes-1)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("pattern with %d nodes rejected: %v", MaxPatternNodes, err)
	}
	if _, err := Parse(ok + "/a"); err == nil {
		t.Fatalf("pattern with %d nodes accepted", MaxPatternNodes+1)
	}
	long := "a[.=\"" + strings.Repeat("x", MaxPatternLen) + "\"]"
	if _, err := Parse(long); err == nil {
		t.Fatalf("pattern of length %d accepted", len(long))
	}
}
