package twig

import (
	"sort"

	"xmatch/internal/xmltree"
)

// Binding pairs one pattern node with the document node it matched.
type Binding struct {
	Q *Node
	D *xmltree.Node
}

// Match binds pattern nodes to document nodes: a match of a twig query q
// with l nodes in a document d is a set of l document nodes satisfying q's
// labels, predicates and structural relationships. Bindings are kept
// sorted by pattern-node preorder index, which makes merging two matches a
// linear merge instead of a map rebuild.
type Match []Binding

// Get returns the document node bound to qn, or nil.
func (m Match) Get(qn *Node) *xmltree.Node {
	for _, b := range m {
		if b.Q == qn {
			return b.D
		}
	}
	return nil
}

// Merge combines two matches over disjoint pattern-node sets into one,
// preserving the preorder-index ordering. Join-shaped callers merge a
// low-index prefix with a child subtree's higher-index bindings, so the
// merge is almost always a plain concatenation — detected by one index
// comparison before falling back to the element merge.
func (m Match) Merge(o Match) Match {
	out := make(Match, 0, len(m)+len(o))
	if len(m) == 0 || len(o) == 0 || m[len(m)-1].Q.Index <= o[0].Q.Index {
		out = append(out, m...)
		return append(out, o...)
	}
	i, j := 0, 0
	for i < len(m) && j < len(o) {
		if m[i].Q.Index <= o[j].Q.Index {
			out = append(out, m[i])
			i++
		} else {
			out = append(out, o[j])
			j++
		}
	}
	out = append(out, m[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Key returns a canonical identity for the match: the document Start
// numbers of the bound nodes in pattern preorder. Useful for comparing and
// deduplicating result sets. It sits on the result-merge hot path (every
// match of every mapping is keyed for deduplication), so the key is a
// fixed-width binary encoding built in one buffer — one byte of pattern
// index (Parse caps patterns at 64 nodes) and eight big-endian bytes of
// start number per binding, no formatting at all. Keys are opaque: only
// equality and determinism matter to consumers, and fixed-width fields
// make the encoding unambiguous (and lexicographic order equal to
// numeric order, unlike the decimal keys this replaces — important now
// that gap numbering spreads start values out). BenchmarkMatchKey tracks
// the cost against the fmt- and strconv-based predecessors.
func (m Match) Key() string {
	buf := make([]byte, 0, 9*len(m))
	for _, bd := range m {
		s := uint64(bd.D.Start)
		buf = append(buf, byte(bd.Q.Index),
			byte(s>>56), byte(s>>48), byte(s>>40), byte(s>>32),
			byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return string(buf)
}

// PathBinding assigns every node of a pattern subtree the dotted document
// path its bindings must carry. In PTQ evaluation the paths are the
// source-schema paths obtained by rewriting the embedded target query
// through one mapping (or one block's correspondence set).
type PathBinding map[*Node]string

// MatchByPaths evaluates the pattern subtree rooted at qn over the
// document: each pattern node binds a document node whose path equals
// paths[qn]; every pattern edge requires the child's binding to lie
// strictly inside the parent binding's preorder interval (because rewritten
// source elements preserve ancestry, exact paths plus containment give
// precise semantics — see DESIGN.md); value predicates compare node text.
// Matches are returned ordered by the Start of qn's binding.
func MatchByPaths(doc *xmltree.Document, qn *Node, paths PathBinding) []Match {
	cands := doc.NodesByPath(paths[qn])
	if qn.HasValue {
		filtered := make([]*xmltree.Node, 0, len(cands))
		for _, d := range cands {
			if d.Text == qn.Value {
				filtered = append(filtered, d)
			}
		}
		cands = filtered
	}
	if len(cands) == 0 {
		return nil
	}
	if len(qn.Children) == 0 {
		// One slab of bindings backs every single-binding match, so the
		// whole list costs two allocations; capacities are clipped so a
		// later append can never clobber a neighbour.
		slab := make([]Binding, len(cands))
		out := make([]Match, len(cands))
		for i, d := range cands {
			slab[i] = Binding{Q: qn, D: d}
			out[i] = slab[i : i+1 : i+1]
		}
		return out
	}
	sub := make([][]Match, len(qn.Children))
	for i, c := range qn.Children {
		sub[i] = MatchByPaths(doc, c, paths)
		if len(sub[i]) == 0 {
			return nil
		}
	}
	var out []Match
	for _, d := range cands {
		// For each child, the sub-matches rooted inside d's interval form
		// a contiguous run, because sub-matches are ordered by Start.
		runs := make([][]Match, len(qn.Children))
		ok := true
		for i, c := range qn.Children {
			runs[i] = within(sub[i], c, d)
			if len(runs[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		base := Match{{Q: qn, D: d}}
		out = AppendProduct(out, base, runs)
	}
	return out
}

// within returns the contiguous slice of matches whose binding of root lies
// strictly inside d's preorder interval. Matches must be ordered by the
// Start of root's binding, which is always the first binding of a match
// produced by MatchByPaths (root has the smallest preorder index).
func within(matches []Match, root *Node, d *xmltree.Node) []Match {
	lo := sort.Search(len(matches), func(i int) bool {
		return matches[i].Get(root).Start > d.Start
	})
	hi := sort.Search(len(matches), func(i int) bool {
		return matches[i].Get(root).Start > d.End
	})
	return matches[lo:hi]
}

// AppendProduct extends base with every combination of one match per run
// and appends the results to out: runs are combined by a mixed-radix
// counter with the last run varying fastest, each combination's bindings
// merged in pattern-preorder. This enumeration order is part of the
// matcher output contract — the holistic matcher of internal/index shares
// it so its results stay byte-identical to MatchByPaths'.
//
// In PTQ evaluation base binds a parent node and the runs its children's
// subtrees in pattern order, so the merged preorder is almost always a
// plain concatenation; each combination is then built in a single
// exact-size allocation (the per-step Merge chain this replaces dominated
// the evaluation allocation profile), with a generic merge fallback for
// interleaved index ranges.
func AppendProduct(out []Match, base Match, runs [][]Match) []Match {
	total := len(base)
	for _, r := range runs {
		// Every match of one run binds the same pattern subtree, hence the
		// same number of nodes.
		total += len(r[0])
	}
	var comboBuf [8]int
	var combo []int
	if len(runs) <= len(comboBuf) {
		combo = comboBuf[:len(runs)]
	} else {
		combo = make([]int, len(runs))
	}
	for {
		m := make(Match, 0, total)
		m = appendOrdered(m, base)
		for i, r := range runs {
			m = appendOrdered(m, r[combo[i]])
		}
		out = append(out, m)
		// Advance the mixed-radix counter.
		i := len(runs) - 1
		for i >= 0 {
			combo[i]++
			if combo[i] < len(runs[i]) {
				break
			}
			combo[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// appendOrdered extends m with o, preserving the preorder-index sorting:
// a direct append when o starts past m's last index (the common case —
// child subtrees occupy increasing contiguous index ranges), a linear
// merge insertion otherwise.
func appendOrdered(m, o Match) Match {
	if len(o) == 0 {
		return m
	}
	if len(m) == 0 || m[len(m)-1].Q.Index <= o[0].Q.Index {
		return append(m, o...)
	}
	for _, b := range o {
		i := len(m)
		for i > 0 && m[i-1].Q.Index > b.Q.Index {
			i--
		}
		m = append(m, Binding{})
		copy(m[i+1:], m[i:])
		m[i] = b
	}
	return m
}

// StructuralJoin joins outer and inner match lists: for every outer match,
// it pairs it with each inner match whose binding of innerRoot lies inside
// the interval of the outer match's binding of outerNode, merging the
// bindings. Inner matches must be ordered by innerRoot's Start (as produced
// by MatchByPaths); this is the stack_join step of Algorithm 4, realized as
// a binary merge over interval-sorted lists.
func StructuralJoin(outer []Match, outerNode *Node, inner []Match, innerRoot *Node) []Match {
	var out []Match
	for _, om := range outer {
		d := om.Get(outerNode)
		for _, im := range within(inner, innerRoot, d) {
			out = append(out, om.Merge(im))
		}
	}
	return out
}

// NaiveMatchByPaths is a brute-force reference implementation of
// MatchByPaths with identical semantics, used as a test oracle. It
// enumerates every assignment of document nodes to pattern nodes.
func NaiveMatchByPaths(doc *xmltree.Document, qn *Node, paths PathBinding) []Match {
	var nodes []*Node
	var collect func(n *Node)
	collect = func(n *Node) {
		nodes = append(nodes, n)
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(qn)

	parent := make(map[*Node]*Node)
	for _, n := range nodes {
		for _, c := range n.Children {
			parent[c] = n
		}
	}

	var out []Match
	cur := map[*Node]*xmltree.Node{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(nodes) {
			m := make(Match, 0, len(cur))
			for _, n := range nodes {
				m = append(m, Binding{Q: n, D: cur[n]})
			}
			sort.Slice(m, func(a, b int) bool { return m[a].Q.Index < m[b].Q.Index })
			out = append(out, m)
			return
		}
		n := nodes[i]
		for _, d := range doc.NodesByPath(paths[n]) {
			if n.HasValue && d.Text != n.Value {
				continue
			}
			if p, ok := parent[n]; ok {
				if !cur[p].IsAncestorOf(d) {
					continue
				}
			}
			cur[n] = d
			rec(i + 1)
			delete(cur, n)
		}
	}
	rec(0)
	return out
}
