package twig

import (
	"fmt"

	"xmatch/internal/schema"
)

// Embedding assigns each pattern node (by preorder index) to an element of
// a schema, respecting labels and axes. PTQ evaluation first embeds the
// target query into the target schema; the embedded query is then rewritten
// per mapping into source-schema element paths.
type Embedding []int

// Resolve returns every embedding of the pattern into the schema via
// backtracking search: the pattern root with Child axis must bind the
// schema root, with Descendant axis it may bind any element with the root's
// label; a Child edge requires a parent-child pair of elements, a
// Descendant edge a proper ancestor-descendant pair; labels must equal
// element names. Twig queries of the paper bind distinct schema elements
// per node (footnote 1), so embeddings binding one element twice are
// discarded.
func Resolve(p *Pattern, s *schema.Schema) []Embedding {
	var out []Embedding
	cur := make([]int, p.Size())

	parentOf := make([]int, p.Size())
	for _, n := range p.nodes {
		for _, c := range n.Children {
			parentOf[c.Index] = n.Index
		}
	}

	var rec func(i int)
	rec = func(i int) {
		if i == p.Size() {
			emb := make(Embedding, p.Size())
			copy(emb, cur)
			out = append(out, emb)
			return
		}
		qn := p.nodes[i]
		var candidates []*schema.Element
		if i == 0 {
			if qn.Axis == Child {
				if s.Root.Name == qn.Label {
					candidates = []*schema.Element{s.Root}
				}
			} else {
				candidates = s.ByName(qn.Label)
			}
		} else {
			parent := s.ByID(cur[parentOf[i]])
			if qn.Axis == Child {
				for _, ce := range parent.Children {
					if ce.Name == qn.Label {
						candidates = append(candidates, ce)
					}
				}
			} else {
				for _, de := range s.ByName(qn.Label) {
					if parent.IsAncestorOf(de) {
						candidates = append(candidates, de)
					}
				}
			}
		}
	cand:
		for _, e := range candidates {
			for j := 0; j < i; j++ {
				if cur[j] == e.ID {
					continue cand // nodes must bind distinct elements
				}
			}
			cur[i] = e.ID
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// ResolveOne resolves the pattern and errors unless at least one embedding
// exists, returning all of them.
func ResolveOne(p *Pattern, s *schema.Schema) ([]Embedding, error) {
	embs := Resolve(p, s)
	if len(embs) == 0 {
		return nil, fmt.Errorf("twig: pattern %s does not resolve in schema %s", p, s.Name)
	}
	return embs, nil
}
