package twig

import (
	"sort"

	"xmatch/internal/xmltree"
)

// MatchByPathsFiltered evaluates a pattern subtree with the two-phase
// strategy of TwigList (Qin, Yu, Ding, DASFAA 2007), the engine the paper
// cites for twig matching: a bottom-up pass first marks the *useful*
// candidates — document nodes all of whose pattern children can be
// satisfied inside their preorder interval — and only then are matches
// enumerated from the pruned lists. Results are identical to MatchByPaths
// (a property the tests verify); the filtering pass avoids materializing
// subtree matches under candidates whose ancestors cannot complete a match,
// which pays off when selective predicates sit near the pattern root.
func MatchByPathsFiltered(doc *xmltree.Document, qn *Node, paths PathBinding) []Match {
	useful := usefulLists(doc, qn, paths)
	if useful == nil {
		return nil
	}
	return enumerate(qn, useful)
}

// usefulLists computes, bottom-up, the useful candidate list of every
// pattern node in the subtree. It returns nil when some pattern node has no
// useful candidate (no match can exist).
func usefulLists(doc *xmltree.Document, qn *Node, paths PathBinding) map[*Node][]*xmltree.Node {
	out := map[*Node][]*xmltree.Node{}
	var build func(n *Node) bool
	build = func(n *Node) bool {
		for _, c := range n.Children {
			if !build(c) {
				return false
			}
		}
		cands := doc.NodesByPath(paths[n])
		var kept []*xmltree.Node
		for _, d := range cands {
			if n.HasValue && d.Text != n.Value {
				continue
			}
			ok := true
			for _, c := range n.Children {
				if !anyWithin(out[c], d) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			return false
		}
		out[n] = kept
		return true
	}
	if !build(qn) {
		return nil
	}
	return out
}

// anyWithin reports whether the sorted node list contains a node strictly
// inside d's interval.
func anyWithin(nodes []*xmltree.Node, d *xmltree.Node) bool {
	lo := sort.Search(len(nodes), func(i int) bool { return nodes[i].Start > d.Start })
	return lo < len(nodes) && nodes[lo].Start < d.End
}

// enumerate materializes matches from pruned candidate lists, mirroring
// the combination step of MatchByPaths.
func enumerate(qn *Node, useful map[*Node][]*xmltree.Node) []Match {
	var rec func(n *Node) []Match
	rec = func(n *Node) []Match {
		cands := useful[n]
		if len(n.Children) == 0 {
			out := make([]Match, len(cands))
			for i, d := range cands {
				out[i] = Match{{Q: n, D: d}}
			}
			return out
		}
		sub := make([][]Match, len(n.Children))
		for i, c := range n.Children {
			sub[i] = rec(c)
		}
		var out []Match
		for _, d := range cands {
			runs := make([][]Match, len(n.Children))
			ok := true
			for i, c := range n.Children {
				runs[i] = within(sub[i], c, d)
				if len(runs[i]) == 0 {
					// Possible despite usefulness: a useful child may
					// itself have been pruned to descendants outside
					// d's interval... it cannot — usefulness checked
					// against the same kept lists. Defensive only.
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out = AppendProduct(out, Match{{Q: n, D: d}}, runs)
		}
		return out
	}
	return rec(qn)
}
