// Package twig implements twig patterns — the XML query class of the
// paper's probabilistic twig query (PTQ) — together with their resolution
// against a schema and their evaluation over documents using sorted
// candidate lists and structural (interval containment) joins in the style
// of Al-Khalifa et al. (ICDE 2002).
//
// A twig pattern is a tree of labelled nodes connected by parent-child
// ('/') or ancestor-descendant ('//') edges, with optional branch
// predicates ('[...]') and value predicates ('[./Price="5"]'), e.g.
//
//	Order[./Buyer/Contact][./DeliverTo//City]//BPID
package twig

import (
	"fmt"
	"strings"
)

// Axis is the relationship between a pattern node and its parent.
type Axis int

const (
	// Child requires the bound document node to be a child of the
	// parent's node; at the pattern root it anchors at the document root.
	Child Axis = iota
	// Descendant requires a proper descendant; at the pattern root it
	// matches anywhere in the document.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Node is one node of a twig pattern.
type Node struct {
	// Label is the element name to match.
	Label string
	// Axis is the edge type from the parent (or the leading axis for
	// the root).
	Axis Axis
	// Value, when HasValue, requires the bound document node's text to
	// equal it.
	Value    string
	HasValue bool
	// Children are subpatterns: both predicate branches and the spine
	// continuation; twig semantics treats them identically.
	Children []*Node

	// Index is the node's preorder position within its pattern.
	Index int
}

// Pattern is a parsed twig pattern.
type Pattern struct {
	Root *Node

	nodes []*Node // preorder
}

// Size returns l, the number of pattern nodes.
func (p *Pattern) Size() int { return len(p.nodes) }

// Nodes returns the pattern nodes in preorder. The slice must not be
// modified.
func (p *Pattern) Nodes() []*Node { return p.nodes }

// index assigns preorder indices.
func (p *Pattern) index() {
	p.nodes = p.nodes[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Index = len(p.nodes)
		p.nodes = append(p.nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// String renders the pattern in the syntax accepted by Parse. Predicate
// branches are emitted before the spine child (the last child).
func (p *Pattern) String() string {
	var render func(n *Node, leading bool) string
	render = func(n *Node, leading bool) string {
		var b strings.Builder
		if n.Axis == Descendant {
			b.WriteString("//")
		} else if !leading {
			b.WriteString("/")
		}
		b.WriteString(n.Label)
		if n.HasValue {
			fmt.Fprintf(&b, "[.=%q]", n.Value)
		}
		for i, c := range n.Children {
			if i == len(n.Children)-1 {
				b.WriteString(render(c, false))
			} else {
				b.WriteString("[.")
				b.WriteString(render(c, false))
				b.WriteString("]")
			}
		}
		return b.String()
	}
	return render(p.Root, true)
}

// Limits on accepted pattern text. Patterns may arrive from untrusted
// remote clients (the xmatchd daemon), so Parse bounds both the input
// length and the node count; bounding nodes also bounds the parser's and
// resolver's recursion depth. The paper's Table III workload peaks at 7
// nodes, so the limits are far above any legitimate query.
const (
	// MaxPatternLen is the maximum pattern text length Parse accepts.
	MaxPatternLen = 4096
	// MaxPatternNodes is the maximum number of pattern nodes Parse accepts.
	MaxPatternNodes = 64
)

// Parse parses a twig pattern. Grammar (whitespace-insensitive between
// tokens):
//
//	pattern   := ['/'|'//'] step (('/'|'//') step)*
//	step      := name predicate*
//	predicate := '[' '.' ('='value | relpath) ']'
//	relpath   := ('/'|'//') step (('/'|'//') step)*  with optional '='value
//	value     := '"'chars'"' | "'"chars"'"
//
// A value after a relpath applies to the last step of that relpath.
func Parse(s string) (*Pattern, error) {
	if len(s) > MaxPatternLen {
		return nil, fmt.Errorf("twig: pattern length %d exceeds limit %d", len(s), MaxPatternLen)
	}
	p := &parser{s: s}
	root, err := p.parsePath(true)
	if err != nil {
		return nil, fmt.Errorf("twig: parse %q: %w", s, err)
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("twig: parse %q: trailing input at offset %d", s, p.i)
	}
	pat := &Pattern{Root: root}
	pat.index()
	return pat, nil
}

// MustParse is Parse, panicking on error. Intended for tests and fixed
// workloads.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	s     string
	i     int
	nodes int // nodes created so far, bounded by MaxPatternNodes
}

func (p *parser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *parser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.s[p.i:], tok) {
		p.i += len(tok)
		return true
	}
	return false
}

func (p *parser) peek(tok string) bool {
	p.skipSpace()
	return strings.HasPrefix(p.s[p.i:], tok)
}

// parsePath parses a chain of steps and returns the first node, with the
// remaining chain attached as its last child, recursively.
func (p *parser) parsePath(leading bool) (*Node, error) {
	axis := Child
	if p.eat("//") {
		axis = Descendant
	} else if p.eat("/") {
		axis = Child
	} else if !leading {
		return nil, fmt.Errorf("expected '/' or '//' at offset %d", p.i)
	}
	return p.parseSteps(axis)
}

func (p *parser) parseSteps(axis Axis) (*Node, error) {
	name := p.parseName()
	if name == "" {
		return nil, fmt.Errorf("expected element name at offset %d", p.i)
	}
	if p.nodes++; p.nodes > MaxPatternNodes {
		return nil, fmt.Errorf("pattern exceeds %d nodes", MaxPatternNodes)
	}
	node := &Node{Label: name, Axis: axis}
	for p.peek("[") {
		if err := p.parsePredicate(node); err != nil {
			return nil, err
		}
	}
	if p.peek("//") || p.peek("/") {
		child, err := p.parsePath(false)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

func (p *parser) parseName() string {
	p.skipSpace()
	start := p.i
	for p.i < len(p.s) {
		c := p.s[p.i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			p.i++
		} else {
			break
		}
	}
	return p.s[start:p.i]
}

func (p *parser) parsePredicate(node *Node) error {
	if !p.eat("[") {
		return fmt.Errorf("expected '[' at offset %d", p.i)
	}
	if !p.eat(".") {
		return fmt.Errorf("predicate must start with '.' at offset %d", p.i)
	}
	if p.eat("=") {
		// Self value predicate [.="v"].
		v, err := p.parseValue()
		if err != nil {
			return err
		}
		if node.HasValue && node.Value != v {
			return fmt.Errorf("conflicting value predicates on %s", node.Label)
		}
		node.Value = v
		node.HasValue = true
	} else {
		branch, err := p.parsePath(false)
		if err != nil {
			return err
		}
		if p.eat("=") {
			v, err := p.parseValue()
			if err != nil {
				return err
			}
			last := branch
			for len(last.Children) > 0 {
				last = last.Children[len(last.Children)-1]
			}
			last.Value = v
			last.HasValue = true
		}
		node.Children = append(node.Children, branch)
	}
	if !p.eat("]") {
		return fmt.Errorf("expected ']' at offset %d", p.i)
	}
	return nil
}

func (p *parser) parseValue() (string, error) {
	p.skipSpace()
	if p.i >= len(p.s) || (p.s[p.i] != '"' && p.s[p.i] != '\'') {
		return "", fmt.Errorf("expected quoted value at offset %d", p.i)
	}
	quote := p.s[p.i]
	p.i++
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != quote {
		p.i++
	}
	if p.i >= len(p.s) {
		return "", fmt.Errorf("unterminated value starting at offset %d", start)
	}
	v := p.s[start:p.i]
	p.i++
	return v, nil
}
