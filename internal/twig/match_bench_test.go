package twig

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// legacyKey is the fmt-based Match.Key implementation PR 3 replaced, kept
// so the benchmark trio documents the trajectory: fmt (allocates per
// binding) -> strconv appends (one buffer, decimal) -> fixed-width binary
// (one buffer, no formatting; immune to start-number magnitude, which
// grew 16x under gap numbering).
func legacyKey(m Match) string {
	var b strings.Builder
	for _, bd := range m {
		fmt.Fprintf(&b, "%d:%d;", bd.Q.Index, bd.D.Start)
	}
	return b.String()
}

// strconvKey is the decimal strconv-append implementation this PR
// replaced with the binary encoding.
func strconvKey(m Match) string {
	buf := make([]byte, 0, 12*len(m))
	for _, bd := range m {
		buf = strconv.AppendInt(buf, int64(bd.Q.Index), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(bd.D.Start), 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

func benchKeyMatch() Match {
	doc := buildDoc()
	p := MustParse("Order/POLine/Quantity")
	n := p.Nodes()
	ms := MatchByPaths(doc, p.Root, PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"})
	if len(ms) == 0 {
		panic("bench fixture has no matches")
	}
	return ms[0]
}

// BenchmarkMatchKey trios the hot-path key builder against its two
// predecessors; compare allocs/op and ns/op to see what ResultMerger
// gains on every deduplicated match.
func BenchmarkMatchKey(b *testing.B) {
	m := benchKeyMatch()
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Key()
		}
	})
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = strconvKey(m)
		}
	})
	b.Run("legacy-fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = legacyKey(m)
		}
	})
}
