package twig

import (
	"fmt"
	"strings"
	"testing"
)

// legacyKey is the fmt-based Match.Key implementation this PR replaced,
// kept here so the benchmark pair documents the allocation drop: the
// strconv-append version builds the key in one buffer, the fmt version
// allocates per binding.
func legacyKey(m Match) string {
	var b strings.Builder
	for _, bd := range m {
		fmt.Fprintf(&b, "%d:%d;", bd.Q.Index, bd.D.Start)
	}
	return b.String()
}

func benchKeyMatch() Match {
	doc := buildDoc()
	p := MustParse("Order/POLine/Quantity")
	n := p.Nodes()
	ms := MatchByPaths(doc, p.Root, PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"})
	if len(ms) == 0 {
		panic("bench fixture has no matches")
	}
	return ms[0]
}

// BenchmarkMatchKey pairs the hot-path key builder against the legacy
// fmt-based one; compare allocs/op to see the drop ResultMerger benefits
// from on every deduplicated match.
func BenchmarkMatchKey(b *testing.B) {
	m := benchKeyMatch()
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Key()
		}
	})
	b.Run("legacy-fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = legacyKey(m)
		}
	})
}
