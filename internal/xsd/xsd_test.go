package xsd

import (
	"reflect"
	"strings"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/schema"
)

const orderXSD = `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Header" type="HeaderType"/>
        <xs:element ref="Line" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="Line">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Qty" type="xs:integer"/>
        <xs:element name="Price" type="xs:decimal"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:complexType name="HeaderType">
    <xs:sequence>
      <xs:element name="Number" type="xs:string"/>
      <xs:element name="Date" type="xs:date"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`

func TestParseBasic(t *testing.T) {
	s, err := ParseString("Order", orderXSD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"Order", "Order.Header", "Order.Header.Date", "Order.Header.Number",
		"Order.Line", "Order.Line.Price", "Order.Line.Qty",
	}
	if !reflect.DeepEqual(s.Paths(), want) {
		t.Fatalf("paths = %v, want %v", s.Paths(), want)
	}
	if !s.ByPath("Order.Line.Qty").IsLeaf() {
		t.Fatal("Qty should be a leaf (simple type)")
	}
}

func TestParseRootSelection(t *testing.T) {
	s, err := ParseString("L", orderXSD, Options{Root: "Line"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Root.Name != "Line" || s.Len() != 3 {
		t.Fatalf("root = %s, len = %d", s.Root.Name, s.Len())
	}
	if _, err := ParseString("X", orderXSD, Options{Root: "Missing"}); err == nil {
		t.Fatal("unknown root accepted")
	}
}

func TestParseChoiceAndNestedCompositors(t *testing.T) {
	const src = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R">
    <xs:complexType>
      <xs:choice>
        <xs:element name="A" type="xs:string"/>
        <xs:sequence>
          <xs:element name="B" type="xs:string"/>
        </xs:sequence>
        <xs:choice>
          <xs:element name="C" type="xs:string"/>
        </xs:choice>
      </xs:choice>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := ParseString("R", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"R", "R.A", "R.B", "R.C"}
	if !reflect.DeepEqual(s.Paths(), want) {
		t.Fatalf("paths = %v, want %v", s.Paths(), want)
	}
}

func TestParseRecursionCutOff(t *testing.T) {
	const src = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Part" type="PartType"/>
  <xs:complexType name="PartType">
    <xs:sequence>
      <xs:element name="SubPart" type="PartType"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>`
	s, err := ParseString("P", src, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Height(); got != 4 {
		t.Fatalf("height = %d, want cut-off at 4", got)
	}
}

func TestParseDuplicateChildrenCollapse(t *testing.T) {
	const src = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="R">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="A" type="xs:string"/>
        <xs:element name="A" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := ParseString("R", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("duplicate siblings should collapse: len = %d", s.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not xml at all <`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"></xs:schema>`,
		`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
		   <xs:element name="R"><xs:complexType><xs:sequence>
		     <xs:element ref="Nope"/>
		   </xs:sequence></xs:complexType></xs:element>
		 </xs:schema>`,
	}
	for i, src := range cases {
		if _, err := ParseString("X", src, Options{}); err == nil {
			t.Errorf("case %d: accepted", i)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := schema.ParseSpec("T", `
Order
  Header
    Number
    Date
  DeliverTo
    Address
      Street
      City
  Line
    Qty
`)
	if err != nil {
		t.Fatal(err)
	}
	xsdText := Marshal(orig)
	if !strings.Contains(xsdText, `<xs:element name="Street" type="xs:string"/>`) {
		t.Fatalf("unexpected XSD output:\n%s", xsdText)
	}
	back, err := ParseString("T", xsdText, Options{})
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(orig.Paths(), back.Paths()) {
		t.Fatalf("round trip changed paths:\n%v\n%v", orig.Paths(), back.Paths())
	}
}

func TestDatasetSchemasRoundTripThroughXSD(t *testing.T) {
	// Every Table II schema must survive an XSD export/import cycle,
	// proving the XSD subset covers the shapes the datasets use.
	for _, id := range []string{"D1", "D7"} {
		d := dataset.MustLoad(id)
		for _, s := range []*schema.Schema{d.Source, d.Target} {
			back, err := ParseString(s.Name, Marshal(s), Options{MaxDepth: 64})
			if err != nil {
				t.Fatalf("%s/%s: %v", id, s.Name, err)
			}
			if !reflect.DeepEqual(s.Paths(), back.Paths()) {
				t.Fatalf("%s/%s: paths changed through XSD round trip", id, s.Name)
			}
		}
	}
}
