// Package xsd imports and exports the subset of XML Schema (XSD) needed to
// describe the element hierarchies this library matches: nested xs:element
// declarations, named and anonymous xs:complexType definitions, xs:sequence
// / xs:choice / xs:all compositors (all treated as ordered child lists, the
// structure schema matching cares about), element references, and type
// references. Attributes, facets, substitution groups and namespaces other
// than the XSD namespace itself are ignored.
//
// The paper's schemas (XCBL, OpenTrans, Apertum, ...) are distributed as
// XSD; this package is the bridge from those files to the schema.Schema
// tree model. Recursive type references are cut off at a configurable
// depth, mirroring how COMA++ unfolds recursive schemas.
package xsd

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"xmatch/internal/schema"
)

// Options configure XSD import.
type Options struct {
	// MaxDepth bounds the unfolding of nested/recursive types.
	// Defaults to 32.
	MaxDepth int
	// Root selects the global element to use as the schema root; empty
	// selects the first global element declaration.
	Root string
}

// xsdElement mirrors the parts of an <xs:element> we consume.
type xsdElement struct {
	Name     string      `xml:"name,attr"`
	Ref      string      `xml:"ref,attr"`
	Type     string      `xml:"type,attr"`
	Complex  *xsdComplex `xml:"complexType"`
	MinOccur string      `xml:"minOccurs,attr"`
	MaxOccur string      `xml:"maxOccurs,attr"`
}

// xsdComplex mirrors <xs:complexType>.
type xsdComplex struct {
	Name     string         `xml:"name,attr"`
	Sequence *xsdCompositor `xml:"sequence"`
	Choice   *xsdCompositor `xml:"choice"`
	All      *xsdCompositor `xml:"all"`
}

// xsdCompositor mirrors xs:sequence / xs:choice / xs:all.
type xsdCompositor struct {
	Elements []xsdElement    `xml:"element"`
	Nested   []xsdCompositor `xml:"sequence"`
	Choices  []xsdCompositor `xml:"choice"`
}

// xsdSchema mirrors the document root <xs:schema>.
type xsdSchema struct {
	Elements []xsdElement `xml:"element"`
	Types    []xsdComplex `xml:"complexType"`
}

// Parse reads an XSD document and unfolds it into a schema named name.
func Parse(name string, r io.Reader, opts Options) (*schema.Schema, error) {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 32
	}
	var doc xsdSchema
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xsd: parse: %w", err)
	}
	if len(doc.Elements) == 0 {
		return nil, fmt.Errorf("xsd: no global element declarations")
	}
	byName := map[string]*xsdElement{}
	for i := range doc.Elements {
		e := &doc.Elements[i]
		if e.Name != "" {
			byName[e.Name] = e
		}
	}
	typeByName := map[string]*xsdComplex{}
	for i := range doc.Types {
		t := &doc.Types[i]
		if t.Name != "" {
			typeByName[t.Name] = t
		}
	}
	rootDecl := &doc.Elements[0]
	if opts.Root != "" {
		rootDecl = byName[opts.Root]
		if rootDecl == nil {
			return nil, fmt.Errorf("xsd: root element %q not declared", opts.Root)
		}
	}
	b := schema.NewBuilder(name, rootDecl.Name)
	u := &unfolder{byName: byName, typeByName: typeByName, maxDepth: opts.MaxDepth}
	if err := u.children(b.Root, rootDecl, 0); err != nil {
		return nil, err
	}
	return b.Freeze(), nil
}

// ParseString parses an XSD document from a string.
func ParseString(name, s string, opts Options) (*schema.Schema, error) {
	return Parse(name, strings.NewReader(s), opts)
}

type unfolder struct {
	byName     map[string]*xsdElement
	typeByName map[string]*xsdComplex
	maxDepth   int
}

// children expands decl's content model under parent.
func (u *unfolder) children(parent *schema.Element, decl *xsdElement, depth int) error {
	if depth > u.maxDepth {
		return nil // recursion cut-off
	}
	var ct *xsdComplex
	switch {
	case decl.Complex != nil:
		ct = decl.Complex
	case decl.Type != "":
		ct = u.typeByName[stripPrefix(decl.Type)]
		// Unknown or simple types (xs:string etc.) yield leaves.
	}
	if ct == nil {
		return nil
	}
	for _, comp := range []*xsdCompositor{ct.Sequence, ct.Choice, ct.All} {
		if comp == nil {
			continue
		}
		if err := u.compositor(parent, comp, depth); err != nil {
			return err
		}
	}
	return nil
}

func (u *unfolder) compositor(parent *schema.Element, comp *xsdCompositor, depth int) error {
	for i := range comp.Elements {
		el := &comp.Elements[i]
		decl := el
		if el.Ref != "" {
			ref := u.byName[stripPrefix(el.Ref)]
			if ref == nil {
				return fmt.Errorf("xsd: unresolved element ref %q", el.Ref)
			}
			decl = ref
		}
		if decl.Name == "" {
			return fmt.Errorf("xsd: element without name or ref under %s", parent.Name)
		}
		if hasChildNamed(parent, decl.Name) {
			// Repeated declarations (e.g. via maxOccurs or duplicated
			// refs) collapse to one child: schema trees model element
			// kinds, not instances.
			continue
		}
		child := parent.AddChild(decl.Name)
		if err := u.children(child, decl, depth+1); err != nil {
			return err
		}
	}
	for i := range comp.Nested {
		if err := u.compositor(parent, &comp.Nested[i], depth); err != nil {
			return err
		}
	}
	for i := range comp.Choices {
		if err := u.compositor(parent, &comp.Choices[i], depth); err != nil {
			return err
		}
	}
	return nil
}

func hasChildNamed(e *schema.Element, name string) bool {
	for _, c := range e.Children {
		if c.Name == name {
			return true
		}
	}
	return false
}

func stripPrefix(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// Write exports a schema as an XSD document with nested anonymous complex
// types, the inverse of Parse for tree-shaped schemas.
func Write(w io.Writer, s *schema.Schema) error {
	if _, err := fmt.Fprintf(w, "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n"); err != nil {
		return err
	}
	var writeElem func(e *schema.Element, indent string) error
	writeElem = func(e *schema.Element, indent string) error {
		if e.IsLeaf() {
			_, err := fmt.Fprintf(w, "%s<xs:element name=%q type=\"xs:string\"/>\n", indent, e.Name)
			return err
		}
		if _, err := fmt.Fprintf(w, "%s<xs:element name=%q>\n%s  <xs:complexType>\n%s    <xs:sequence>\n",
			indent, e.Name, indent, indent); err != nil {
			return err
		}
		for _, c := range e.Children {
			if err := writeElem(c, indent+"      "); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s    </xs:sequence>\n%s  </xs:complexType>\n%s</xs:element>\n",
			indent, indent, indent)
		return err
	}
	if err := writeElem(s.Root, "  "); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "</xs:schema>\n")
	return err
}

// Marshal returns the XSD serialization of a schema.
func Marshal(s *schema.Schema) string {
	var b strings.Builder
	if err := Write(&b, s); err != nil {
		return ""
	}
	return b.String()
}
