package server_test

// Hardening pass over the HTTP surface: uniform method enforcement (405 +
// Allow header on every endpoint), uniform body-size enforcement (413 on
// every body-decoding endpoint), and the reload lifecycle under
// concurrent queries — an in-flight query on a reloaded dataset keeps its
// pinned snapshot and never misbehaves while the retired catalog's result
// memos are dropped. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/server"
)

func doMethod(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestMethodEnforcement: every endpoint answers 405 with an Allow header
// for every method it does not serve — uniformly, read and admin paths
// alike.
func TestMethodEnforcement(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	endpoints := []struct {
		path  string
		allow string
	}{
		{"/v1/query", http.MethodPost},
		{"/v1/batch", http.MethodPost},
		{"/v1/admin/mutate", http.MethodPost},
		{"/v1/admin/reload", http.MethodPost},
		{"/v1/datasets", http.MethodGet},
		{"/healthz", http.MethodGet},
		{"/statsz", http.MethodGet},
	}
	for _, ep := range endpoints {
		for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			resp := doMethod(t, m, env.ts.URL+ep.path)
			if m == ep.allow {
				if resp.StatusCode == http.StatusMethodNotAllowed {
					t.Errorf("%s %s: unexpectedly 405", m, ep.path)
				}
				continue
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", m, ep.path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != ep.allow {
				t.Errorf("%s %s: Allow %q, want %q", m, ep.path, got, ep.allow)
			}
		}
	}
}

// TestBodySizeLimit: every body-decoding endpoint rejects an oversized
// body with 413 — not the generic 400 — so clients can tell "shrink the
// request" apart from "fix the request".
func TestBodySizeLimit(t *testing.T) {
	env := newTestEnv(t, server.Options{MaxBodyBytes: 256})
	huge := strings.Repeat("x", 1024)
	for _, path := range []string{"/v1/query", "/v1/batch", "/v1/admin/mutate"} {
		body, err := json.Marshal(map[string]string{"dataset": "orders", "pattern": huge})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(env.ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
		// A body within the cap still decodes (and fails for its own
		// reasons, not the size).
		resp2, _ := postJSON(t, env.ts.URL+path, map[string]string{"dataset": "orders"})
		if resp2.StatusCode == http.StatusRequestEntityTooLarge {
			t.Errorf("%s: small body rejected as oversized", path)
		}
	}
}

// TestReloadUnderConcurrentQueries is the reload lifecycle audit: clients
// hammer /v1/query (all modes, both datasets) while reloads swap the
// catalog — and purge the retired indexes' result memos — underneath
// them. Every query must answer 200 with a well-formed body; an in-flight
// request's pinned snapshot outlives the reload that retired it. The -race
// run is the point: it proves queries never observe a freed or mid-purge
// memo.
func TestReloadUnderConcurrentQueries(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	patterns := []string{dataset.Queries()[0].Text, dataset.Queries()[3].Text}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			modes := []string{"basic", "compact", "topk"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mode := modes[i%len(modes)]
				k := 0
				if mode == "topk" {
					k = 2
				}
				resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
					Dataset: "orders", Pattern: patterns[i%len(patterns)], Mode: mode, K: k,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
				var qr rawQueryResp
				if err := json.Unmarshal(body, &qr); err != nil || len(qr.Results) == 0 {
					t.Errorf("worker %d: malformed body: %v", w, err)
					return
				}
			}
		}(w)
	}

	before := *env.loads
	for i := 0; i < 6; i++ {
		resp, body := postJSON(t, env.ts.URL+"/v1/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("reload %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	if *env.loads != before+6 {
		t.Fatalf("loader ran %d times during the test, want 6", *env.loads-before)
	}
}
