package server_test

// Hardening pass over the HTTP surface: uniform method enforcement (405 +
// Allow header on every endpoint), uniform body-size enforcement (413 on
// every body-decoding endpoint), and the reload lifecycle under
// concurrent queries — an in-flight query on a reloaded dataset keeps its
// pinned snapshot and never misbehaves while the retired catalog's result
// memos are dropped. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

func doMethod(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestMethodEnforcement: every endpoint answers 405 with an Allow header
// for every method it does not serve — uniformly, read and admin paths
// alike.
func TestMethodEnforcement(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	endpoints := []struct {
		path  string
		allow string
	}{
		{"/v1/query", http.MethodPost},
		{"/v1/batch", http.MethodPost},
		{"/v1/admin/mutate", http.MethodPost},
		{"/v1/admin/reload", http.MethodPost},
		{"/v1/admin/checkpoint", http.MethodPost},
		{"/v1/replicate/stream", http.MethodPost},
		{"/v1/replicate/checkpoint", http.MethodGet},
		{"/v1/replicate/manifest", http.MethodGet},
		{"/v1/datasets", http.MethodGet},
		{"/healthz", http.MethodGet},
		{"/statsz", http.MethodGet},
	}
	for _, ep := range endpoints {
		for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			resp := doMethod(t, m, env.ts.URL+ep.path)
			if m == ep.allow {
				if resp.StatusCode == http.StatusMethodNotAllowed {
					t.Errorf("%s %s: unexpectedly 405", m, ep.path)
				}
				continue
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", m, ep.path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != ep.allow {
				t.Errorf("%s %s: Allow %q, want %q", m, ep.path, got, ep.allow)
			}
		}
	}
}

// TestBodySizeLimit: every body-decoding endpoint rejects an oversized
// body with 413 — not the generic 400 — so clients can tell "shrink the
// request" apart from "fix the request".
func TestBodySizeLimit(t *testing.T) {
	env := newTestEnv(t, server.Options{MaxBodyBytes: 256})
	huge := strings.Repeat("x", 1024)
	for _, path := range []string{"/v1/query", "/v1/batch", "/v1/admin/mutate"} {
		body, err := json.Marshal(map[string]string{"dataset": "orders", "pattern": huge})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(env.ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
		// A body within the cap still decodes (and fails for its own
		// reasons, not the size).
		resp2, _ := postJSON(t, env.ts.URL+path, map[string]string{"dataset": "orders"})
		if resp2.StatusCode == http.StatusRequestEntityTooLarge {
			t.Errorf("%s: small body rejected as oversized", path)
		}
	}
}

// TestReloadUnderConcurrentQueries is the reload lifecycle audit: clients
// hammer /v1/query (all modes, both datasets) while reloads swap the
// catalog — and purge the retired indexes' result memos — underneath
// them. Every query must answer 200 with a well-formed body; an in-flight
// request's pinned snapshot outlives the reload that retired it. The -race
// run is the point: it proves queries never observe a freed or mid-purge
// memo.
func TestReloadUnderConcurrentQueries(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	patterns := []string{dataset.Queries()[0].Text, dataset.Queries()[3].Text}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			modes := []string{"basic", "compact", "topk"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mode := modes[i%len(modes)]
				k := 0
				if mode == "topk" {
					k = 2
				}
				resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
					Dataset: "orders", Pattern: patterns[i%len(patterns)], Mode: mode, K: k,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
				var qr rawQueryResp
				if err := json.Unmarshal(body, &qr); err != nil || len(qr.Results) == 0 {
					t.Errorf("worker %d: malformed body: %v", w, err)
					return
				}
			}
		}(w)
	}

	before := *env.loads
	for i := 0; i < 6; i++ {
		resp, body := postJSON(t, env.ts.URL+"/v1/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("reload %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	if *env.loads != before+6 {
		t.Fatalf("loader ran %d times during the test, want 6", *env.loads-before)
	}
}

// TestReloadUnderConcurrentMutate is the checkpoint/reload race audit on
// the write path: workers hammer /v1/admin/mutate on a durable dataset
// while reloads rebuild the catalog — and retire the old shard logs —
// underneath them. Every acknowledged mutation must survive the final
// reload (no ack may land in a retired log's orphaned file), the edit log
// must load clean and epoch-dense, and the replayed epoch must equal the
// ack count. Run under -race in CI.
func TestReloadUnderConcurrentMutate(t *testing.T) {
	dir := t.TempDir()
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "durable", Dataset: "D1", Mappings: 8, DocNodes: 200, DocSeed: 3, EditLogPath: "durable.editlog"},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	}
	srv, err := server.New(loader, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	rootStart := srv.Catalog().Get("durable").Doc().Root.Start

	const workers, perWorker = 4, 15
	acked := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tag := fmt.Sprintf("w%d.%d", w, i)
				resp, body := postJSON(t, ts.URL+"/v1/admin/mutate", server.MutateRequest{
					Dataset: "durable",
					Edits: []delta.Edit{{
						Op: delta.OpInsert, Start: rootStart, Pos: -1,
						XML: "<Audit>" + tag + "</Audit>",
					}},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("mutate %s: %d %s", tag, resp.StatusCode, body)
					return
				}
				var mr server.MutateResponse
				if err := json.Unmarshal(body, &mr); err != nil || !mr.Persisted {
					t.Errorf("mutate %s: unpersisted ack %s", tag, body)
					return
				}
				acked[w] = append(acked[w], tag)
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: %d %s", i, resp.StatusCode, body)
		}
	}
	wg.Wait()

	// One last reload: the surviving state is exactly what the log replays.
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	var total int
	serialized := srv.Catalog().Get("durable").Doc().String()
	for w := range acked {
		total += len(acked[w])
		for _, tag := range acked[w] {
			if !strings.Contains(serialized, ">"+tag+"<") {
				t.Errorf("acked mutation %s lost across reload", tag)
			}
		}
	}
	if ep := srv.Catalog().Get("durable").Snapshot().Epoch; ep != uint64(total) {
		t.Fatalf("replayed epoch %d, want %d acked mutations", ep, total)
	}
	// The durable log itself is intact: clean load (LoadEditLog enforces
	// epoch density), no torn tail, one record per ack.
	lg, err := store.LoadEditLogFile(dir + "/durable.editlog")
	if err != nil {
		t.Fatal(err)
	}
	if lg.Torn || lg.Base != 0 || len(lg.Records) != total {
		t.Fatalf("log: torn=%v base=%d records=%d, want clean 0-based %d", lg.Torn, lg.Base, len(lg.Records), total)
	}
}
