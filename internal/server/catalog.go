package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/schema"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// Dataset is one prepared serving tenant: a mapping set, the live document
// it is queried over, the block tree, and a per-dataset engine (own worker
// pool and prepared-query cache). The mapping set, block tree, and engine
// are immutable; the document and its positional index live behind a
// delta.Handle, which serializes writers and publishes immutable
// (document, index) snapshot pairs — a request pins one snapshot up front
// and every engine worker shares it read-only with zero synchronization.
type Dataset struct {
	Name   string
	Set    *mapping.Set
	Tree   *core.BlockTree
	Engine *engine.Engine
	// Live owns the document's mutable identity: Live.Snapshot() is the
	// current (document, index) pair, /v1/admin/mutate applies batches
	// through it.
	Live *delta.Handle

	// editLog is the resolved edit-log file path; empty means mutations
	// are in-memory only (lost on reload).
	editLog string
}

// NewDataset builds a serving dataset: block tree (tau 0 = default 0.2),
// positional index (built here unless one — typically loaded from a store
// blob — is already attached to the document), plus a dedicated engine.
// The document must not be mutated afterwards except through Live.
func NewDataset(name string, set *mapping.Set, doc *xmltree.Document, tau float64, eopts engine.Options) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	bt, err := core.Build(set, core.Options{Tau: tau})
	if err != nil {
		return nil, fmt.Errorf("server: dataset %s: %w", name, err)
	}
	if eopts.Workers == 0 {
		eopts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Dataset{Name: name, Set: set, Tree: bt, Engine: engine.New(eopts), Live: delta.Open(doc)}, nil
}

// Snapshot pins the dataset's current (document, index) snapshot. Request
// handlers call it exactly once and evaluate everything against the pinned
// pair, so a concurrent mutation never changes a request mid-flight.
func (d *Dataset) Snapshot() *delta.Snapshot { return d.Live.Snapshot() }

// Doc returns the current snapshot's document. Prefer Snapshot when more
// than one field of the pair is needed.
func (d *Dataset) Doc() *xmltree.Document { return d.Live.Snapshot().Doc }

// Index returns the current snapshot's positional index.
func (d *Dataset) Index() *index.Index { return d.Live.Snapshot().Index }

// EditLogPath returns the dataset's resolved edit-log file path ("" when
// mutations are not persisted).
func (d *Dataset) EditLogPath() string { return d.editLog }

// WithEditLog configures edit-log persistence: applied batches are
// appended to the file at path, and ReplayEditLog restores them. Must be
// called before the dataset is published.
func (d *Dataset) WithEditLog(path string) *Dataset {
	d.editLog = path
	return d
}

// ReplayEditLog replays the dataset's persisted edit log (if any) over
// the pristine document, restoring its edited state. Called once at
// catalog-prepare time, before the dataset is published.
func (d *Dataset) ReplayEditLog() error {
	if d.editLog == "" {
		return nil
	}
	batches, err := store.LoadEditLogFile(d.editLog)
	if err != nil {
		return fmt.Errorf("server: dataset %s: edit log %s: %w", d.Name, d.editLog, err)
	}
	for i, b := range batches {
		if _, err := d.Live.Apply(b); err != nil {
			return fmt.Errorf("server: dataset %s: edit log %s: replaying batch %d: %w", d.Name, d.editLog, i, err)
		}
	}
	return nil
}

// Catalog is an immutable snapshot of the serving datasets, looked up by
// name. The server swaps catalogs atomically on reload; requests in flight
// keep the snapshot they started with.
type Catalog struct {
	byName map[string]*Dataset
	names  []string // insertion order, for stable listings
}

// NewCatalog indexes the datasets, rejecting duplicate names.
func NewCatalog(ds ...*Dataset) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]*Dataset, len(ds))}
	for _, d := range ds {
		if _, dup := c.byName[d.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset name %q", d.Name)
		}
		c.byName[d.Name] = d
		c.names = append(c.names, d.Name)
	}
	return c, nil
}

// Get returns the named dataset, or nil.
func (c *Catalog) Get(name string) *Dataset { return c.byName[name] }

// Datasets returns the datasets in catalog order.
func (c *Catalog) Datasets() []*Dataset {
	out := make([]*Dataset, len(c.names))
	for i, n := range c.names {
		out[i] = c.byName[n]
	}
	return out
}

// Defaults applied to zero-valued manifest entry fields, matching the
// paper's experimental setup (|M| = 100 possible mappings, the 3473-node
// Order.xml document).
const (
	DefaultMappings = 100
	DefaultDocNodes = 3473
)

// BuildCatalog materializes a manifest into a serving catalog. Built-in
// entries regenerate their Table II dataset deterministically; blob-backed
// entries load their mapping set (and optional document) from files resolved
// relative to baseDir. Engine options apply to every dataset's engine.
func BuildCatalog(man *store.Catalog, baseDir string, eopts engine.Options) (*Catalog, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	ds := make([]*Dataset, 0, len(man.Entries))
	for _, e := range man.Entries {
		d, err := buildDataset(e, baseDir, eopts)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return NewCatalog(ds...)
}

func buildDataset(e store.CatalogEntry, baseDir string, eopts engine.Options) (*Dataset, error) {
	var set *mapping.Set
	var doc *xmltree.Document
	if e.Dataset != "" {
		d, err := dataset.Load(e.Dataset)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		m := e.Mappings
		if m == 0 {
			m = DefaultMappings
		}
		set, err = mapgen.TopH(d.Matching, m, mapgen.Partition)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		nodes := e.DocNodes
		if nodes == 0 {
			nodes = DefaultDocNodes
		}
		doc = d.OrderDocument(nodes, e.DocSeed)
	} else {
		f, err := os.Open(filepath.Join(baseDir, e.SetPath))
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		set, err = store.LoadSet(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		if e.DocPath != "" {
			df, err := os.Open(filepath.Join(baseDir, e.DocPath))
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
			doc, err = xmltree.Parse(df)
			df.Close()
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
		} else {
			doc = instantiateSchema(set.Source, e.DocSeed)
		}
		if e.IndexPath != "" {
			// A persisted index skips the build; LoadIndex verifies it
			// against the document, so a stale blob fails the (re)load
			// instead of serving wrong answers.
			xf, err := os.Open(filepath.Join(baseDir, e.IndexPath))
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
			ix, err := store.LoadIndex(xf, doc)
			xf.Close()
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: index %s: %w", e.Name, e.IndexPath, err)
			}
			ix.Install()
		}
	}
	d, err := NewDataset(e.Name, set, doc, e.Tau, eopts)
	if err != nil {
		return nil, err
	}
	if e.EditLogPath != "" {
		// Replay restores the entry's edited state over the pristine
		// document (blob-backed or regenerated alike) without re-parsing
		// mutated XML; later mutations append to the same log.
		d.WithEditLog(filepath.Join(baseDir, e.EditLogPath))
		if err := d.ReplayEditLog(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// instantiateSchema generates a deterministic single-instance document for a
// blob-backed dataset that ships no document: every schema element appears
// once, leaves carrying seeded synthetic text.
func instantiateSchema(s *schema.Schema, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	var build func(e *schema.Element) *xmltree.Node
	build = func(e *schema.Element) *xmltree.Node {
		n := xmltree.NewRoot(e.Name)
		if e.IsLeaf() {
			n.Text = fmt.Sprintf("v%d", rng.Intn(1000))
			return n
		}
		for _, c := range e.Children {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	return xmltree.New(build(s.Root))
}
