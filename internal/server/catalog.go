package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/obs"
	"xmatch/internal/replica"
	"xmatch/internal/schema"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// Shard is one member document of a serving collection: its mutable
// identity behind a delta.Handle (own positional index, own snapshot
// pins, own replication log) plus a per-shard query-latency histogram
// fed by the engine's scatter observer.
type Shard struct {
	// Live owns the member document's mutable identity: Live.Snapshot()
	// is the current (document, index) pair, /v1/admin/mutate applies
	// batches through it.
	Live *delta.Handle

	// Log is the shard's replication log: every applied batch is recorded
	// through it (durably when the catalog entry has an EditLogPath,
	// in-memory otherwise) and followers stream from it. Never nil on a
	// catalog-built collection. One log belongs to one catalog
	// generation; Reload retires it.
	Log *replica.ShardLog

	// lat accumulates per-shard evaluation wall time, one observation per
	// (embedding, shard) scatter unit.
	lat *obs.Histogram
}

// EditLogPath returns the shard's resolved edit-log file path ("" when
// mutations are not persisted).
func (s *Shard) EditLogPath() string {
	if s.Log == nil {
		return ""
	}
	return s.Log.Path()
}

// Collection is one prepared serving tenant: a mapping set, the block
// tree, a per-collection engine (own worker pool and prepared-query
// cache), and one or more member document shards queried together.
// The mapping set, block tree, and engine are immutable and shared by
// every shard; each shard's document and positional index live behind its
// own delta.Handle, which serializes writers and publishes immutable
// (document, index) snapshot pairs — a request pins one snapshot per
// shard up front and every engine worker shares them read-only with zero
// synchronization. Shard documents carry disjoint ascending interval
// ranges (dataset.OrderCorpus), so a scatter-gather query returns
// byte-identical answers to evaluating the concatenated corpus as one
// document.
type Collection struct {
	Name   string
	Set    *mapping.Set
	Tree   *core.BlockTree
	Engine *engine.Engine
	// Live is shard 0's handle, kept as a field so the overwhelmingly
	// common single-shard collection reads like the dataset it used to be.
	Live *delta.Handle

	shards []*Shard
}

// Dataset is the historical name for a single-shard collection; the two
// are the same type and every Dataset method works on any collection.
type Dataset = Collection

// NewDataset builds a single-shard serving collection; see NewCollection.
func NewDataset(name string, set *mapping.Set, doc *xmltree.Document, tau float64, eopts engine.Options) (*Dataset, error) {
	return NewCollection(name, set, []*xmltree.Document{doc}, tau, eopts)
}

// NewCollection builds a serving collection over the member documents:
// block tree (tau 0 = default 0.2), one positional index per member
// (built by delta.Open unless one — typically loaded from a store blob —
// is already attached), plus a dedicated engine. The documents must not
// be mutated afterwards except through the shards' handles.
func NewCollection(name string, set *mapping.Set, docs []*xmltree.Document, tau float64, eopts engine.Options) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset has no name")
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("server: dataset %s has no documents", name)
	}
	bt, err := core.Build(set, core.Options{Tau: tau})
	if err != nil {
		return nil, fmt.Errorf("server: dataset %s: %w", name, err)
	}
	if eopts.Workers == 0 {
		eopts.Workers = runtime.GOMAXPROCS(0)
	}
	c := &Collection{Name: name, Set: set, Tree: bt, Engine: engine.New(eopts)}
	for _, doc := range docs {
		h := delta.Open(doc)
		// The memory-only log starts at the document's current epoch (a
		// checkpoint-restored document opens mid-history); durable logs
		// replace it in buildDataset.
		c.shards = append(c.shards, &Shard{Live: h, Log: replica.NewShardLog(h.Snapshot().Epoch), lat: obs.NewHistogram(nil)})
	}
	c.Live = c.shards[0].Live
	return c, nil
}

// NumShards returns the number of member documents.
func (d *Collection) NumShards() int { return len(d.shards) }

// Shards returns the member shards in collection order. The slice is the
// collection's own; callers must not mutate it.
func (d *Collection) Shards() []*Shard { return d.shards }

// Snapshot pins shard 0's current (document, index) snapshot — the whole
// collection for the single-shard case.
func (d *Collection) Snapshot() *delta.Snapshot { return d.shards[0].Live.Snapshot() }

// Snapshots pins every shard's current snapshot, in collection order.
// Request handlers call it exactly once and evaluate everything against
// the pinned pairs, so a concurrent mutation never changes a request
// mid-flight (per shard; cross-shard cuts are not atomic — each member
// document is an independent consistency domain).
func (d *Collection) Snapshots() []*delta.Snapshot {
	out := make([]*delta.Snapshot, len(d.shards))
	for i, s := range d.shards {
		out[i] = s.Live.Snapshot()
	}
	return out
}

// Doc returns shard 0's current document. Prefer Snapshot when more
// than one field of the pair is needed.
func (d *Collection) Doc() *xmltree.Document { return d.shards[0].Live.Snapshot().Doc }

// Index returns shard 0's current positional index.
func (d *Collection) Index() *index.Index { return d.shards[0].Live.Snapshot().Index }

// EditLogPath returns shard 0's resolved edit-log file path ("" when
// mutations are not persisted).
func (d *Collection) EditLogPath() string { return d.shards[0].EditLogPath() }

// shardLogPath resolves one shard's edit-log file: shard 0 appends to
// the entry's path itself, shard i > 0 to path+".s<i>".
func shardLogPath(path string, shard int) string {
	if shard == 0 {
		return path
	}
	return fmt.Sprintf("%s.s%d", path, shard)
}

// openDurableLogs attaches durable replication logs to every shard and
// replays their surviving records over the (pristine or
// checkpoint-restored) documents, restoring the collection's edited
// state. Called once at catalog-prepare time, before the collection is
// published. Each replayed record's epoch must match the epoch its
// replay produces — a mismatch means the log and the restored base state
// disagree, which is corruption, not something to serve through.
func (d *Collection) openDurableLogs(path string, fsync bool) error {
	for si, s := range d.shards {
		p := shardLogPath(path, si)
		ckptEpoch := s.Live.Snapshot().Epoch // 0 unless checkpoint-restored
		lg, err := replica.OpenShardLog(p, fsync, ckptEpoch)
		if err != nil {
			return fmt.Errorf("server: dataset %s shard %d: edit log %s: %w", d.Name, si, p, err)
		}
		for _, rec := range lg.Records() {
			snap, err := s.Live.Apply(rec.Edits)
			if err != nil {
				return fmt.Errorf("server: dataset %s shard %d: edit log %s: replaying epoch %d: %w", d.Name, si, p, rec.Epoch, err)
			}
			if snap.Epoch != rec.Epoch {
				return fmt.Errorf("server: dataset %s shard %d: edit log %s: record epoch %d replayed to epoch %d", d.Name, si, p, rec.Epoch, snap.Epoch)
			}
		}
		s.Log = lg
	}
	return nil
}

// CheckpointShard persists one shard's current state as its checkpoint
// and truncates its replication log, under the shard's write lock so no
// concurrent mutate can log a record the truncation would destroy.
// Returns the checkpoint epoch and the retained-log bytes freed.
func (d *Collection) CheckpointShard(shard int) (epoch uint64, freed int64, err error) {
	s := d.shards[shard]
	err = s.Live.Freeze(func(snap *delta.Snapshot) error {
		var ferr error
		freed, ferr = s.Log.Checkpoint(snap.Doc, snap.Index, snap.Epoch)
		epoch = snap.Epoch
		return ferr
	})
	return epoch, freed, err
}

// observeShard records one per-shard evaluation timing; handed to
// engine.Shards.Observe by the query handlers. Safe for concurrent use.
func (d *Collection) observeShard(shard int, took time.Duration) {
	d.shards[shard].lat.Observe(took)
}

// Catalog is an immutable snapshot of the serving datasets, looked up by
// name. The server swaps catalogs atomically on reload; requests in flight
// keep the snapshot they started with.
type Catalog struct {
	byName map[string]*Dataset
	names  []string // insertion order, for stable listings
}

// NewCatalog indexes the datasets, rejecting duplicate names.
func NewCatalog(ds ...*Dataset) (*Catalog, error) {
	c := &Catalog{byName: make(map[string]*Dataset, len(ds))}
	for _, d := range ds {
		if _, dup := c.byName[d.Name]; dup {
			return nil, fmt.Errorf("server: duplicate dataset name %q", d.Name)
		}
		c.byName[d.Name] = d
		c.names = append(c.names, d.Name)
	}
	return c, nil
}

// Get returns the named dataset, or nil.
func (c *Catalog) Get(name string) *Dataset { return c.byName[name] }

// Datasets returns the datasets in catalog order.
func (c *Catalog) Datasets() []*Dataset {
	out := make([]*Dataset, len(c.names))
	for i, n := range c.names {
		out[i] = c.byName[n]
	}
	return out
}

// Defaults applied to zero-valued manifest entry fields, matching the
// paper's experimental setup (|M| = 100 possible mappings, the 3473-node
// Order.xml document).
const (
	DefaultMappings = 100
	DefaultDocNodes = 3473
)

// CatalogOptions tune catalog materialization beyond the engine knobs.
type CatalogOptions struct {
	// NoFsync skips the per-record fsync on durable edit-log appends. The
	// default (fsync on) makes an acknowledged /v1/admin/mutate survive a
	// process or machine crash — the contract followers rely on when they
	// trust the shipped log.
	NoFsync bool
}

// BuildCatalog materializes a manifest into a serving catalog. Built-in
// entries regenerate their Table II dataset deterministically; blob-backed
// entries load their mapping set (and optional document) from files resolved
// relative to baseDir. Engine options apply to every dataset's engine.
func BuildCatalog(man *store.Catalog, baseDir string, eopts engine.Options) (*Catalog, error) {
	return BuildCatalogOpts(man, baseDir, eopts, CatalogOptions{})
}

// BuildCatalogOpts is BuildCatalog with explicit catalog options.
func BuildCatalogOpts(man *store.Catalog, baseDir string, eopts engine.Options, copts CatalogOptions) (*Catalog, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	ds := make([]*Dataset, 0, len(man.Entries))
	for _, e := range man.Entries {
		d, err := buildDataset(e, baseDir, eopts, copts)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return NewCatalog(ds...)
}

func buildDataset(e store.CatalogEntry, baseDir string, eopts engine.Options, copts CatalogOptions) (*Dataset, error) {
	var set *mapping.Set
	var docs []*xmltree.Document
	if e.Dataset != "" {
		d, err := dataset.Load(e.Dataset)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		m := e.Mappings
		if m == 0 {
			m = DefaultMappings
		}
		set, err = mapgen.TopH(d.Matching, m, mapgen.Partition)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		nodes := e.DocNodes
		if nodes == 0 {
			nodes = DefaultDocNodes
		}
		if e.Shards > 1 {
			// DocNodes is the total budget across members; OrderCorpus
			// assigns each member its own disjoint interval range.
			docs = d.OrderCorpus(e.Shards, nodes, e.DocSeed)
		} else {
			docs = []*xmltree.Document{d.OrderDocument(nodes, e.DocSeed)}
		}
	} else {
		f, err := os.Open(filepath.Join(baseDir, e.SetPath))
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		set, err = store.LoadSet(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
		}
		var doc *xmltree.Document
		if e.DocPath != "" {
			df, err := os.Open(filepath.Join(baseDir, e.DocPath))
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
			doc, err = xmltree.Parse(df)
			df.Close()
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
		} else {
			doc = instantiateSchema(set.Source, e.DocSeed)
		}
		if e.IndexPath != "" {
			// A persisted index skips the build; LoadIndex verifies it
			// against the document, so a stale blob fails the (re)load
			// instead of serving wrong answers.
			xf, err := os.Open(filepath.Join(baseDir, e.IndexPath))
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: %w", e.Name, err)
			}
			ix, err := store.LoadIndex(xf, doc)
			xf.Close()
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s: index %s: %w", e.Name, e.IndexPath, err)
			}
			ix.Install()
		}
		docs = []*xmltree.Document{doc}
	}
	logPath := ""
	if e.EditLogPath != "" {
		logPath = filepath.Join(baseDir, e.EditLogPath)
		// A shard with a checkpoint restarts from it instead of the
		// pristine document: the checkpoint document comes back with its
		// exact interval numbering and a verified, epoch-stamped index
		// installed, so delta.Open below adopts it mid-history and the
		// (truncated) edit log replays only the records after it.
		for i := range docs {
			ck, err := store.LoadCheckpointFile(replica.CheckpointPath(shardLogPath(logPath, i)))
			if err != nil {
				return nil, fmt.Errorf("server: dataset %s shard %d: %w", e.Name, i, err)
			}
			if ck != nil {
				docs[i] = ck.Doc
			}
		}
	}
	d, err := NewCollection(e.Name, set, docs, e.Tau, eopts)
	if err != nil {
		return nil, err
	}
	if logPath != "" {
		// Replay restores the entry's edited state over the restored
		// documents (blob-backed or regenerated alike) without re-parsing
		// mutated XML; later mutations append to the same logs.
		if err := d.openDurableLogs(logPath, !copts.NoFsync); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// instantiateSchema generates a deterministic single-instance document for a
// blob-backed dataset that ships no document: every schema element appears
// once, leaves carrying seeded synthetic text.
func instantiateSchema(s *schema.Schema, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	var build func(e *schema.Element) *xmltree.Node
	build = func(e *schema.Element) *xmltree.Node {
		n := xmltree.NewRoot(e.Name)
		if e.IsLeaf() {
			n.Text = fmt.Sprintf("v%d", rng.Intn(1000))
			return n
		}
		for _, c := range e.Children {
			n.Children = append(n.Children, build(c))
		}
		return n
	}
	return xmltree.New(build(s.Root))
}
