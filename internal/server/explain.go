package server

import (
	"net/http"
	"strconv"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/obs"
)

// Query EXPLAIN: a /v1/query carrying explain (body field or ?explain=1)
// gets its response annotated with the request's trace — the same spans
// the slow-query log retains — plus the index matcher's internal
// counters, per shard, measured as the delta each shard's counter chain
// moved while the request evaluated. The counters are shared by every
// request on the same index, so under concurrent traffic the deltas are
// best-effort attribution (they may include a neighbor's work); on a
// quiet server they are exact.

// ExplainShard is one shard's matcher-internals row of an EXPLAIN block.
type ExplainShard struct {
	Shard int `json:"shard"`
	// Epoch is the snapshot epoch the request pinned for this shard.
	Epoch uint64 `json:"epoch"`
	// Counters are the matcher counters the evaluation moved: per-pass
	// survivor counts, galloping vs linear merge choices, decoded postings
	// blocks, memo hits — see index.CountersSnapshot.
	Counters index.CountersSnapshot `json:"counters"`
	// Profiles are the shard's observed per-path selectivity profiles —
	// cumulative since the index was built (not this request's delta:
	// profiles are how the paths have behaved, which is what a planner
	// reading an EXPLAIN wants). Bounded to the hottest paths by
	// candidate volume.
	Profiles []index.PathProfile `json:"profiles,omitempty"`
}

// explainProfileCap bounds the per-shard profile rows an EXPLAIN carries.
const explainProfileCap = 16

// ExplainData is the explain block of a QueryResponse.
type ExplainData struct {
	Trace  obs.TraceData  `json:"trace"`
	Shards []ExplainShard `json:"shards"`
}

// shardCounters snapshots every pinned shard's matcher counters — the
// "before" edge of an EXPLAIN delta.
func shardCounters(snaps []*delta.Snapshot) []index.CountersSnapshot {
	out := make([]index.CountersSnapshot, len(snaps))
	for i, sn := range snaps {
		out[i] = sn.Index.Counters()
	}
	return out
}

// buildExplain closes the counter deltas over the pinned snapshots and
// packages them with the trace so far.
func buildExplain(tr *obs.Trace, snaps []*delta.Snapshot, before []index.CountersSnapshot) *ExplainData {
	ex := &ExplainData{Trace: tr.Data(time.Since(tr.Start()))}
	for i, sn := range snaps {
		profiles := sn.Index.PathProfiles()
		if len(profiles) > explainProfileCap {
			profiles = profiles[:explainProfileCap]
		}
		ex.Shards = append(ex.Shards, ExplainShard{
			Shard:    i,
			Epoch:    sn.Epoch,
			Counters: sn.Index.Counters().Sub(before[i]),
			Profiles: profiles,
		})
	}
	return ex
}

// traceObserver wraps a dataset's per-shard latency observer so every
// (embedding, shard) scatter unit also lands as a span on the request's
// trace. With no trace in flight it returns the plain observer — the
// scatter hot path pays nothing extra.
func traceObserver(tr *obs.Trace, ds *Dataset) func(int, time.Duration) {
	if tr == nil {
		return ds.observeShard
	}
	return func(shard int, took time.Duration) {
		ds.observeShard(shard, took)
		tr.Add("shard_evaluate", "shard="+strconv.Itoa(shard), time.Now().Add(-took), took)
	}
}

// handleTraces serves the slow-query log: the retained traces (newest
// first) plus the sampling accounting, as JSON.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	finished, sampled := s.traces.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"thresholdMs": float64(s.traces.Threshold().Microseconds()) / 1e3,
		"finished":    finished,
		"sampled":     sampled,
		"traces":      s.traces.Snapshot(),
	})
}
