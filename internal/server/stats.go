package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the histogram bucket upper bounds in milliseconds;
// the implicit final bucket is +Inf.
var latencyBucketsMs = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation. sumMicros keeps the total in integer microseconds so the
// hot path never does floating-point atomics.
type histogram struct {
	counts    [len(latencyBucketsMs) + 1]atomic.Uint64
	total     atomic.Uint64
	sumMicros atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumMicros.Add(uint64(d / time.Microsecond))
}

// HistogramBucket is one cumulative-free histogram bucket in the /statsz
// payload: the count of observations at most LeMs milliseconds (the last
// bucket has LeMs 0 and holds the overflow).
type HistogramBucket struct {
	LeMs  float64 `json:"leMs,omitempty"`
	Count uint64  `json:"count"`
}

// HistogramStats is the wire form of one endpoint's latency histogram.
type HistogramStats struct {
	Count   uint64            `json:"count"`
	SumMs   float64           `json:"sumMs"`
	Buckets []HistogramBucket `json:"buckets"`
}

func (h *histogram) snapshot() HistogramStats {
	out := HistogramStats{
		Count: h.total.Load(),
		SumMs: float64(h.sumMicros.Load()) / 1e3,
	}
	out.Buckets = make([]HistogramBucket, len(h.counts))
	for i := range h.counts {
		b := HistogramBucket{Count: h.counts[i].Load()}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		out.Buckets[i] = b
	}
	return out
}

// serverStats aggregates the daemon's operational counters.
type serverStats struct {
	start     time.Time
	inFlight  atomic.Int64
	queries   atomic.Uint64
	batches   atomic.Uint64
	reloads   atomic.Uint64
	mutates   atomic.Uint64
	edits     atomic.Uint64
	errors    atomic.Uint64
	latQuery  histogram
	latBatch  histogram
	latMutate histogram
}
