package server

import (
	"sync/atomic"
	"time"

	"xmatch/internal/obs"
)

// The server's latency histograms are obs.Histograms over the default
// bucket bounds (obs.DefaultLatencyBucketsMs — the bounds /statsz has
// always exposed); /statsz renders their snapshots through
// histogramStats, /metricsz through the exposition exporter.

// HistogramBucket is one cumulative-free histogram bucket in the /statsz
// payload: the count of observations at most LeMs milliseconds (the last
// bucket has LeMs 0 and holds the overflow).
type HistogramBucket struct {
	LeMs  float64 `json:"leMs,omitempty"`
	Count uint64  `json:"count"`
}

// HistogramStats is the wire form of one endpoint's latency histogram.
type HistogramStats struct {
	Count   uint64            `json:"count"`
	SumMs   float64           `json:"sumMs"`
	Buckets []HistogramBucket `json:"buckets"`
}

// histogramStats converts an obs snapshot into the /statsz wire form the
// server has always emitted: count, sum in milliseconds, and per-bucket
// (non-cumulative) counts with the overflow bucket last at LeMs 0.
func histogramStats(s obs.HistogramSnapshot) HistogramStats {
	out := HistogramStats{
		Count:   s.Count,
		SumMs:   s.SumMs,
		Buckets: make([]HistogramBucket, len(s.Counts)),
	}
	for i, c := range s.Counts {
		b := HistogramBucket{Count: c}
		if i < len(s.BucketsMs) {
			b.LeMs = s.BucketsMs[i]
		}
		out.Buckets[i] = b
	}
	return out
}

// serverStats aggregates the daemon's operational counters. The latency
// histograms are allocated by init (called once from New) so the hot
// paths can Observe without nil checks. Each is an obs.Windowed: the
// embedded Histogram keeps the cumulative totals /statsz and /metricsz
// have always exposed, while Window() gives the sliding view the SLO
// burn rate and the windowed quantile gauges read.
type serverStats struct {
	start       time.Time
	inFlight    atomic.Int64
	queries     atomic.Uint64
	batches     atomic.Uint64
	reloads     atomic.Uint64
	mutates     atomic.Uint64
	checkpoints atomic.Uint64
	replicates  atomic.Uint64
	edits       atomic.Uint64
	errors      atomic.Uint64
	// timeouts counts 503s from fired request deadlines (or clients that
	// went away mid-request); shed counts 429s from the admission gate;
	// panics counts handler panics converted into 500s.
	timeouts atomic.Uint64
	shed     atomic.Uint64
	panics   atomic.Uint64

	latQuery      *obs.Windowed
	latBatch      *obs.Windowed
	latMutate     *obs.Windowed
	latCheckpoint *obs.Windowed
	latReplicate  *obs.Windowed
}

// windowSlots is the ring resolution of every windowed histogram: the
// window ages out in window/windowSlots steps, so a 5m window advances
// every 50s — coarse enough to stay cheap, fine enough that the burn
// rate reacts within a minute.
const windowSlots = 6

func (st *serverStats) init(window time.Duration) {
	st.start = time.Now()
	mk := func() *obs.Windowed { return obs.NewWindowed(nil, window, windowSlots) }
	st.latQuery = mk()
	st.latBatch = mk()
	st.latMutate = mk()
	st.latCheckpoint = mk()
	st.latReplicate = mk()
}
