package server_test

// End-to-end integration tests: a catalog with two datasets served over
// httptest, asserting the differential guarantee over the wire — for every
// dataset/query/k in the matrix, /v1/query and /v1/batch responses decode
// to results byte-identical to sequential internal/core evaluation — plus
// concurrent clients, the stats/health/reload endpoints, and the error
// paths. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/server"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// fixture holds one serving dataset alongside the direct (sequential core)
// evaluation ingredients the differential assertions need.
type fixture struct {
	name    string
	queries []string
	ds      *server.Dataset
}

// manifest is the two-dataset catalog the tests serve: the Table III
// workload dataset D7 and the small D1.
func manifest() *store.Catalog {
	return &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "orders", Dataset: "D7", Mappings: 20, DocNodes: 1200, DocSeed: 7},
		{Name: "small", Dataset: "D1", Mappings: 16, DocNodes: 600, DocSeed: 3},
	}}
}

// leafPatterns derives resolvable spine queries from a dataset's target
// schema: dotted leaf paths as '/' patterns. It prefers leaves whose basic
// PTQ answer is non-empty (so the matrix exercises real matches) but keeps
// the first empty-answer leaf too, pinning the wire form of an empty result
// set.
func leafPatterns(t *testing.T, d *server.Dataset, n int) []string {
	t.Helper()
	var nonEmpty, empty []string
	for _, e := range d.Set.Target.Leaves() {
		if len(nonEmpty) >= n-1 && len(empty) >= 1 {
			break
		}
		pattern := strings.ReplaceAll(e.Path, ".", "/")
		q, err := core.PrepareQuery(pattern, d.Set)
		if err != nil {
			continue
		}
		if len(core.EvaluateBasic(q, d.Set, d.Doc())) > 0 {
			if len(nonEmpty) < n-1 {
				nonEmpty = append(nonEmpty, pattern)
			}
		} else if len(empty) < 1 {
			empty = append(empty, pattern)
		}
	}
	if len(nonEmpty) == 0 {
		t.Fatal("no leaf pattern with a non-empty answer; fixture too weak")
	}
	return append(nonEmpty, empty...)
}

type testEnv struct {
	ts       *httptest.Server
	srv      *server.Server
	fixtures []fixture
	loads    *int // loader invocation count
}

func newTestEnv(t *testing.T, opts server.Options) *testEnv {
	t.Helper()
	loads := 0
	loader := func() (*server.Catalog, error) {
		loads++
		return server.BuildCatalog(manifest(), ".", engine.Options{Workers: 4})
	}
	srv, err := server.New(loader, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	cat := srv.Catalog()
	orders := cat.Get("orders")
	small := cat.Get("small")
	if orders == nil || small == nil {
		t.Fatal("catalog is missing test datasets")
	}
	var d7Queries []string
	for _, q := range dataset.Queries() {
		d7Queries = append(d7Queries, q.Text)
	}
	return &testEnv{
		ts:  ts,
		srv: srv,
		fixtures: []fixture{
			{name: "orders", queries: d7Queries, ds: orders},
			{name: "small", queries: leafPatterns(t, small, 4), ds: small},
		},
		loads: &loads,
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// directWire evaluates a query with the sequential core evaluators and
// returns the JSON encoding of its wire results and answers.
func directWire(t *testing.T, f fixture, pattern, mode string, k int) (results, answers []byte) {
	t.Helper()
	q, err := core.PrepareQuery(pattern, f.ds.Set)
	if err != nil {
		t.Fatalf("%s %q: %v", f.name, pattern, err)
	}
	var rs []core.Result
	switch mode {
	case "basic":
		rs = core.EvaluateBasic(q, f.ds.Set, f.ds.Doc())
	case "compact":
		rs = core.Evaluate(q, f.ds.Set, f.ds.Doc(), f.ds.Tree)
	case "topk":
		rs = core.EvaluateTopK(q, f.ds.Set, f.ds.Doc(), f.ds.Tree, k)
	default:
		t.Fatalf("bad mode %q", mode)
	}
	results, err = json.Marshal(core.ToWire(rs))
	if err != nil {
		t.Fatal(err)
	}
	answers, err = json.Marshal(core.AnswersToWire(core.AggregateLeaf(q, rs)))
	if err != nil {
		t.Fatal(err)
	}
	return results, answers
}

// rawQueryResp keeps the results/answers regions of a response as raw bytes
// for exact comparison.
type rawQueryResp struct {
	Dataset string          `json:"dataset"`
	Pattern string          `json:"pattern"`
	Mode    string          `json:"mode"`
	Results json.RawMessage `json:"results"`
	Answers json.RawMessage `json:"answers"`
}

type rawBatchResp struct {
	Dataset   string `json:"dataset"`
	Responses []struct {
		Pattern string          `json:"pattern"`
		K       int             `json:"k"`
		Results json.RawMessage `json:"results"`
		Answers json.RawMessage `json:"answers"`
		Error   string          `json:"error"`
	} `json:"responses"`
}

// modeMatrix is the query-mode/k matrix every dataset/query pair runs under.
var modeMatrix = []struct {
	mode string
	k    int
}{
	{"basic", 0}, {"compact", 0}, {"topk", 1}, {"topk", 3}, {"topk", 1000},
}

// TestQueryDifferentialOverTheWire is the acceptance matrix: every
// dataset/query/mode/k, /v1/query results and answers byte-identical to
// sequential core evaluation.
func TestQueryDifferentialOverTheWire(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	for _, f := range env.fixtures {
		for _, pattern := range f.queries {
			for _, mk := range modeMatrix {
				wantResults, wantAnswers := directWire(t, f, pattern, mk.mode, mk.k)
				resp, body := postJSON(t, env.ts.URL+"/v1/query",
					server.QueryRequest{Dataset: f.name, Pattern: pattern, Mode: mk.mode, K: mk.k})
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s %q %s/%d: status %d: %s", f.name, pattern, mk.mode, mk.k, resp.StatusCode, body)
				}
				var got rawQueryResp
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s %q %s/%d", f.name, pattern, mk.mode, mk.k)
				if got.Dataset != f.name || got.Pattern != pattern || got.Mode != mk.mode {
					t.Errorf("%s: echo mismatch: %+v", label, got)
				}
				if !bytes.Equal(got.Results, wantResults) {
					t.Errorf("%s: results differ from sequential core:\ngot  %s\nwant %s", label, got.Results, wantResults)
				}
				if !bytes.Equal(got.Answers, wantAnswers) {
					t.Errorf("%s: answers differ from sequential core:\ngot  %s\nwant %s", label, got.Answers, wantAnswers)
				}
			}
		}
	}
}

// TestBatchDifferentialOverTheWire fans each dataset's whole query list
// into one /v1/batch call per k and checks every response slot.
func TestBatchDifferentialOverTheWire(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	for _, f := range env.fixtures {
		for _, k := range []int{0, 2} {
			var breq server.BatchRequest
			breq.Dataset = f.name
			for _, pattern := range f.queries {
				breq.Queries = append(breq.Queries, server.BatchQuery{Pattern: pattern, K: k})
			}
			resp, body := postJSON(t, env.ts.URL+"/v1/batch", breq)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s k=%d: status %d: %s", f.name, k, resp.StatusCode, body)
			}
			var got rawBatchResp
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if len(got.Responses) != len(f.queries) {
				t.Fatalf("%s k=%d: %d responses, want %d", f.name, k, len(got.Responses), len(f.queries))
			}
			for i, pattern := range f.queries {
				mode := "compact"
				if k > 0 {
					mode = "topk"
				}
				wantResults, wantAnswers := directWire(t, f, pattern, mode, k)
				slot := got.Responses[i]
				if slot.Error != "" {
					t.Errorf("%s k=%d %q: unexpected error %q", f.name, k, pattern, slot.Error)
					continue
				}
				if slot.Pattern != pattern {
					t.Errorf("%s k=%d slot %d: pattern %q, want %q (order not preserved)", f.name, k, i, slot.Pattern, pattern)
				}
				if !bytes.Equal(slot.Results, wantResults) {
					t.Errorf("%s k=%d %q: batch results differ from sequential core", f.name, k, pattern)
				}
				if !bytes.Equal(slot.Answers, wantAnswers) {
					t.Errorf("%s k=%d %q: batch answers differ from sequential core", f.name, k, pattern)
				}
			}
		}
	}
}

// TestConcurrentClients hammers query and batch from parallel goroutines
// and requires every response to stay byte-identical to the precomputed
// sequential answers; meaningful under -race.
func TestConcurrentClients(t *testing.T) {
	env := newTestEnv(t, server.Options{RequestWorkers: 2})
	type expectation struct {
		f       fixture
		pattern string
		want    []byte
	}
	var exps []expectation
	for _, f := range env.fixtures {
		for _, pattern := range f.queries[:3] {
			want, _ := directWire(t, f, pattern, "compact", 0)
			exps = append(exps, expectation{f, pattern, want})
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				exp := exps[(c+i)%len(exps)]
				if c%2 == 0 {
					_, body := postJSON(t, env.ts.URL+"/v1/query",
						server.QueryRequest{Dataset: exp.f.name, Pattern: exp.pattern})
					var got rawQueryResp
					if err := json.Unmarshal(body, &got); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					if !bytes.Equal(got.Results, exp.want) {
						t.Errorf("client %d: concurrent query diverged for %s %q", c, exp.f.name, exp.pattern)
					}
				} else {
					_, body := postJSON(t, env.ts.URL+"/v1/batch", server.BatchRequest{
						Dataset: exp.f.name,
						Queries: []server.BatchQuery{{Pattern: exp.pattern}},
					})
					var got rawBatchResp
					if err := json.Unmarshal(body, &got); err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					if len(got.Responses) != 1 || !bytes.Equal(got.Responses[0].Results, exp.want) {
						t.Errorf("client %d: concurrent batch diverged for %s %q", c, exp.f.name, exp.pattern)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// After the storm: the gauge must be back to zero and the caches warm.
	resp, body := getJSON(t, env.ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 {
		t.Errorf("inFlight = %d after all clients finished", st.InFlight)
	}
	if st.Queries == 0 || st.Batches == 0 {
		t.Errorf("request counters not incremented: %+v", st)
	}
	var hits uint64
	for _, d := range st.Datasets {
		hits += d.CacheHits
	}
	if hits == 0 {
		t.Errorf("no prepared-query cache hits across %d requests", st.Queries+st.Batches)
	}
	if st.Latency["query"].Count != st.Queries {
		t.Errorf("query latency histogram count %d != queries %d", st.Latency["query"].Count, st.Queries)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestDatasetsAndHealthz(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	resp, body := getJSON(t, env.ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body = getJSON(t, env.ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets: %d", resp.StatusCode)
	}
	var list struct {
		Datasets []server.DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 2 || list.Datasets[0].Name != "orders" || list.Datasets[1].Name != "small" {
		t.Errorf("dataset listing wrong: %+v", list.Datasets)
	}
	if list.Datasets[0].Mappings != 20 || list.Datasets[0].Blocks == 0 {
		t.Errorf("orders info wrong: %+v", list.Datasets[0])
	}
}

func TestReload(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	before := env.srv.Catalog()
	resp, body := postJSON(t, env.ts.URL+"/v1/admin/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	if *env.loads != 2 {
		t.Errorf("loader called %d times, want 2 (startup + reload)", *env.loads)
	}
	if env.srv.Catalog() == before {
		t.Error("reload did not swap the catalog")
	}
	// The reloaded catalog must answer queries identically.
	f := env.fixtures[0]
	want, _ := directWire(t, f, f.queries[0], "compact", 0)
	_, qbody := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: f.queries[0]})
	var got rawQueryResp
	if err := json.Unmarshal(qbody, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Results, want) {
		t.Error("post-reload query differs from sequential core")
	}
}

func TestErrorPaths(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	cases := []struct {
		name string
		do   func() (*http.Response, []byte)
		code int
	}{
		{"unknown dataset", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: "nope", Pattern: "x"})
		}, http.StatusNotFound},
		{"bad pattern", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: "[[["})
		}, http.StatusBadRequest},
		{"unresolvable pattern", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: "No/Such/Path"})
		}, http.StatusBadRequest},
		{"topk without k", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: "Order", Mode: "topk"})
		}, http.StatusBadRequest},
		{"bad mode", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: "Order", Mode: "???"})
		}, http.StatusBadRequest},
		{"malformed body", func() (*http.Response, []byte) {
			resp, err := http.Post(env.ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, nil
		}, http.StatusBadRequest},
		{"empty batch", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/batch", server.BatchRequest{Dataset: "orders"})
		}, http.StatusBadRequest},
		{"oversized batch", func() (*http.Response, []byte) {
			req := server.BatchRequest{Dataset: "orders"}
			for i := 0; i < 257; i++ {
				req.Queries = append(req.Queries, server.BatchQuery{Pattern: "Order"})
			}
			return postJSON(t, env.ts.URL+"/v1/batch", req)
		}, http.StatusBadRequest},
		{"GET on query", func() (*http.Response, []byte) {
			return getJSON(t, env.ts.URL+"/v1/query")
		}, http.StatusMethodNotAllowed},
		{"GET on reload", func() (*http.Response, []byte) {
			return getJSON(t, env.ts.URL+"/v1/admin/reload")
		}, http.StatusMethodNotAllowed},
		{"oversized pattern", func() (*http.Response, []byte) {
			return postJSON(t, env.ts.URL+"/v1/query",
				server.QueryRequest{Dataset: "orders", Pattern: strings.Repeat("a/", 5000) + "a"})
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := c.do()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// Errors must be counted.
	_, body := getJSON(t, env.ts.URL+"/statsz")
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 {
		t.Error("error counter not incremented")
	}
}

// TestBatchAnswersWithColdCache is the regression test for answer
// aggregation in /v1/batch: match bindings compare pattern nodes by
// pointer, so aggregating with a re-prepared query (instead of the one the
// batch evaluated with) silently matches nothing once the prepared-query
// cache is disabled or evicted. With caching off, batch answers must still
// be byte-identical to sequential core evaluation.
func TestBatchAnswersWithColdCache(t *testing.T) {
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(manifest(), ".", engine.Options{Workers: 4, CacheCapacity: -1})
	}
	srv, err := server.New(loader, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	f := fixture{name: "orders", ds: srv.Catalog().Get("orders")}
	pattern := dataset.Queries()[1].Text
	wantResults, wantAnswers := directWire(t, f, pattern, "compact", 0)
	_, body := postJSON(t, ts.URL+"/v1/batch", server.BatchRequest{
		Dataset: "orders",
		Queries: []server.BatchQuery{{Pattern: pattern}},
	})
	var got rawBatchResp
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != 1 {
		t.Fatalf("%d responses, want 1", len(got.Responses))
	}
	if !bytes.Equal(got.Responses[0].Results, wantResults) {
		t.Errorf("cold-cache batch results differ from sequential core")
	}
	if !bytes.Equal(got.Responses[0].Answers, wantAnswers) {
		t.Errorf("cold-cache batch answers differ from sequential core:\ngot  %s\nwant %s",
			got.Responses[0].Answers, wantAnswers)
	}
}

// TestStatszIndexStats asserts the per-dataset positional-index rows of
// /statsz: present at startup, and refreshed (still present and sane)
// after a reload rebuilds the catalog.
func TestStatszIndexStats(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	check := func(phase string) {
		t.Helper()
		resp, body := getJSON(t, env.ts.URL+"/statsz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: statsz status %d", phase, resp.StatusCode)
		}
		var st server.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if len(st.Datasets) != 2 {
			t.Fatalf("%s: %d dataset rows, want 2", phase, len(st.Datasets))
		}
		for _, ds := range st.Datasets {
			d := env.srv.Catalog().Get(ds.Name)
			if d == nil {
				t.Fatalf("%s: statsz row for unknown dataset %q", phase, ds.Name)
			}
			if ds.IndexPostings != d.Doc().Len() {
				t.Errorf("%s %s: indexPostings = %d, want one per node = %d", phase, ds.Name, ds.IndexPostings, d.Doc().Len())
			}
			if ds.IndexBytes <= 0 || ds.IndexPaths <= 0 {
				t.Errorf("%s %s: implausible index stats %+v", phase, ds.Name, ds)
			}
			if ds.IndexBuildMs <= 0 {
				t.Errorf("%s %s: indexBuildMs = %v, want > 0", phase, ds.Name, ds.IndexBuildMs)
			}
		}
	}
	check("startup")
	if resp, body := postJSON(t, env.ts.URL+"/v1/admin/reload", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	check("after reload")
}

// TestIndexBlobCatalog serves a catalog whose entry references a persisted
// index blob, asserts it answers identically to a freshly built index, and
// that corrupted or stale index blobs fail the catalog build with the
// typed store error.
func TestIndexBlobCatalog(t *testing.T) {
	dir := t.TempDir()
	base, err := server.BuildCatalog(manifest(), ".", engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	orig := base.Get("small")

	writeFile := func(name string, write func(f *os.File) error) string {
		t.Helper()
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return name
	}
	setPath := writeFile("small.set", func(f *os.File) error { return store.SaveSet(f, orig.Set) })
	docPath := writeFile("small.xml", func(f *os.File) error { return orig.Doc().WriteXML(f) })

	// The index blob must be built over the exact document the entry will
	// load, so round-trip the document first.
	df, err := os.Open(dir + "/" + docPath)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := xmltree.Parse(df)
	df.Close()
	if err != nil {
		t.Fatal(err)
	}
	idxPath := writeFile("small.idx", func(f *os.File) error { return store.SaveIndex(f, index.Build(reloaded)) })

	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "frozen", SetPath: setPath, DocPath: docPath, IndexPath: idxPath},
	}}
	cat, err := server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := cat.Get("frozen")
	if d.Index() == nil || d.Index().Stats().Postings != d.Doc().Len() {
		t.Fatalf("blob-loaded index missing or wrong: %+v", d.Index())
	}
	// Differential: the blob-loaded index answers like a built one.
	pattern := leafPatterns(t, d, 2)[0]
	q, err := core.PrepareQuery(pattern, d.Set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(core.ToWire(core.EvaluateBasic(q, d.Set, d.Doc())))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := server.NewDataset("fresh", orig.Set, orig.Doc(), 0, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := core.PrepareQuery(pattern, fresh.Set)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(core.ToWire(core.EvaluateBasic(q2, fresh.Set, fresh.Doc())))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("blob-loaded index diverged:\ngot  %s\nwant %s", got, want)
	}

	// A corrupted index blob fails the build with the typed error.
	raw, err := os.ReadFile(dir + "/" + idxPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	badPath := writeFile("bad.idx", func(f *os.File) error { _, err := f.Write(raw); return err })
	badMan := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "frozen", SetPath: setPath, DocPath: docPath, IndexPath: badPath},
	}}
	_, err = server.BuildCatalog(badMan, dir, engine.Options{Workers: 2})
	var fe *store.FormatError
	if err == nil || !errors.As(err, &fe) {
		t.Errorf("corrupted index blob: err = %v, want *store.FormatError", err)
	}

	// A stale index blob (document changed underneath) fails too.
	otherDoc := writeFile("other.xml", func(f *os.File) error {
		_, err := f.WriteString("<r><a>1</a></r>")
		return err
	})
	staleMan := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "frozen", SetPath: setPath, DocPath: otherDoc, IndexPath: idxPath},
	}}
	if _, err := server.BuildCatalog(staleMan, dir, engine.Options{Workers: 2}); err == nil || !errors.As(err, &fe) {
		t.Errorf("stale index blob: err = %v, want *store.FormatError", err)
	}
}

// TestBlobBackedCatalog round-trips a mapping set through a store blob and
// serves it: the manifest path the daemon takes for persisted sets,
// including the generated fallback document.
func TestBlobBackedCatalog(t *testing.T) {
	dir := t.TempDir()
	cat, err := server.BuildCatalog(manifest(), ".", engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	orig := cat.Get("small")
	blob := dir + "/small.set"
	f, err := os.Create(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet(f, orig.Set); err != nil {
		t.Fatal(err)
	}
	f.Close()

	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "frozen", SetPath: "small.set", DocSeed: 5},
	}}
	got, err := server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := got.Get("frozen")
	if d == nil {
		t.Fatal("blob-backed dataset missing")
	}
	if d.Set.Len() != orig.Set.Len() {
		t.Errorf("blob round trip lost mappings: %d != %d", d.Set.Len(), orig.Set.Len())
	}
	if d.Doc().Len() == 0 {
		t.Error("generated fallback document is empty")
	}
	// And it must answer a query end to end.
	pattern := leafPatterns(t, d, 2)[0]
	if _, err := core.PrepareQuery(pattern, d.Set); err != nil {
		t.Fatalf("blob-backed dataset cannot prepare %q: %v", pattern, err)
	}
}
