package server_test

// Workload-intelligence tests: capture -> replay differential (local and
// remote runners reproduce every captured digest byte-identically),
// /v1/debug/workload accounting, SLO-driven /healthz degradation, EXPLAIN
// selectivity profiles, the pinned /metricsz content type, and the
// timed/request-ID treatment of the checkpoint and replication endpoints.
// The concurrency hammer runs under -race in CI.

import (
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/obs"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// captureEnv builds a serving environment whose queries are captured to a
// temp file, runs the full Table III matrix against the orders dataset,
// and returns the capture path plus the served request count.
func captureEnv(t *testing.T, opts server.Options) (*testEnv, string, int) {
	t.Helper()
	capPath := filepath.Join(t.TempDir(), "queries.capture")
	opts.CapturePath = capPath
	env := newTestEnv(t, opts)
	f := env.fixtures[0]
	served := 0
	for _, q := range f.queries {
		for _, mk := range modeMatrix {
			req := server.QueryRequest{Dataset: f.name, Pattern: q, Mode: mk.mode, K: mk.k}
			resp, body := postJSON(t, env.ts.URL+"/v1/query", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %q (%s,k=%d): status %d: %s", q, mk.mode, mk.k, resp.StatusCode, body)
			}
			served++
		}
	}
	return env, capPath, served
}

func TestWorkloadCaptureReplay(t *testing.T) {
	env, capPath, served := captureEnv(t, server.Options{})

	// Close flushes the selectivity-profile sidecar and stops capturing;
	// the server keeps serving, so the remote replay below is not
	// re-recorded into the file it is replaying.
	if err := env.srv.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := store.LoadWorkloadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if w.Torn {
		t.Fatal("capture has a torn tail after a clean close")
	}
	if len(w.Records) != served {
		t.Fatalf("captured %d records, served %d", len(w.Records), served)
	}
	for i, rec := range w.Records {
		if rec.Digest == 0 || rec.Fingerprint == 0 || rec.Pattern == "" {
			t.Fatalf("record %d incomplete: %+v", i, rec)
		}
	}

	// Remote replay: against the live daemon that served the capture.
	rep := server.ReplayWorkload(w.Records, server.RemoteReplayRunner(env.ts.URL, nil))
	if rep.Matched != rep.Total || len(rep.Diffs) > 0 {
		t.Fatalf("remote replay: %d/%d matched, diffs %+v", rep.Matched, rep.Total, rep.Diffs)
	}

	// Local replay: a fresh catalog built from the same manifest, driven
	// through the in-process handler. Byte-identical digests assert the
	// whole rebuild-and-serve pipeline reproduces the served answers.
	fresh, err := server.New(func() (*server.Catalog, error) {
		return server.BuildCatalog(manifest(), ".", engine.Options{Workers: 4})
	}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep = server.ReplayWorkload(w.Records, server.HandlerReplayRunner(fresh))
	if rep.Matched != rep.Total || len(rep.Diffs) > 0 {
		t.Fatalf("local replay: %d/%d matched, diffs %+v", rep.Matched, rep.Total, rep.Diffs)
	}

	// The sidecar carries the capturing server's observed funnel.
	entries, err := store.LoadProfilesFile(capPath + ".profiles")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("profiles sidecar is empty")
	}
	for _, pe := range entries {
		if pe.ReachSurvivors > pe.UsefulSurvivors || pe.UsefulSurvivors > pe.Candidates {
			t.Fatalf("sidecar funnel not monotone: %+v", pe)
		}
	}
}

func TestWorkloadCaptureSamplingAndBudget(t *testing.T) {
	capPath := filepath.Join(t.TempDir(), "sampled.capture")
	env := newTestEnv(t, server.Options{CapturePath: capPath, CaptureSampleN: 3})
	f := env.fixtures[0]
	const n = 9
	for i := 0; i < n; i++ {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: f.queries[0]})
		resp.Body.Close()
	}
	if err := env.srv.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := store.LoadWorkloadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Records) != n/3 {
		t.Fatalf("1-in-3 sampling of %d queries captured %d records, want %d", n, len(w.Records), n/3)
	}
	if w.SampleN != 3 {
		t.Fatalf("capture SampleN = %d, want 3", w.SampleN)
	}

	// A tiny budget stops the log after the header; queries still serve.
	tinyPath := filepath.Join(t.TempDir(), "tiny.capture")
	env2 := newTestEnv(t, server.Options{CapturePath: tinyPath, CaptureBudgetBytes: 1})
	f2 := env2.fixtures[0]
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, env2.ts.URL+"/v1/query", server.QueryRequest{Dataset: f2.name, Pattern: f2.queries[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query under exhausted budget: status %d", resp.StatusCode)
		}
	}
	resp, body := getJSON(t, env2.ts.URL+"/v1/debug/workload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug workload status %d", resp.StatusCode)
	}
	var dbg server.WorkloadDebug
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Capture == nil || dbg.Capture.DroppedOver != 3 || dbg.Capture.Records != 0 {
		t.Fatalf("budget accounting: %+v", dbg.Capture)
	}
}

func TestWorkloadDebugEndpoint(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[0]
	hot, cold := f.queries[0], f.queries[1]
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: hot})
		resp.Body.Close()
	}
	resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: cold, Mode: "topk", K: 2})
	resp.Body.Close()

	resp, body := getJSON(t, env.ts.URL+"/v1/debug/workload")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dbg server.WorkloadDebug
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Fingerprints != 2 || len(dbg.Entries) != 2 {
		t.Fatalf("fingerprints=%d entries=%d, want 2/2: %s", dbg.Fingerprints, len(dbg.Entries), body)
	}
	top := dbg.Entries[0]
	if top.Requests != 3 || top.Mode != "compact" {
		t.Fatalf("hottest entry %+v, want 3 compact requests", top)
	}
	// The canonical pattern is the prepared rendering, fingerprint-stable
	// across requests; two prepares of the same text share a cache entry.
	if top.PrepareHits < 2 {
		t.Fatalf("hottest entry has %d prepare hits, want >= 2", top.PrepareHits)
	}
	if top.WindowRequests == 0 || top.WindowRequests > top.Requests {
		t.Fatalf("window accounting: %+v", top)
	}
	if top.P50Ms < 0 || top.P95Ms < top.P50Ms || top.P99Ms < top.P95Ms {
		t.Fatalf("quantiles not ordered: %+v", top)
	}
	second := dbg.Entries[1]
	if second.Mode != "topk" || second.K != 2 {
		t.Fatalf("second entry %+v, want the topk query", second)
	}

	// ?n bounds the view.
	resp, body = getJSON(t, env.ts.URL+"/v1/debug/workload?n=1")
	resp.Body.Close()
	if err := json.Unmarshal(body, &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Entries) != 1 || dbg.Fingerprints != 2 {
		t.Fatalf("n=1 view: entries=%d fingerprints=%d", len(dbg.Entries), dbg.Fingerprints)
	}

	// Wrong method is rejected, bad n is a 400.
	if resp, _ := postJSON(t, env.ts.URL+"/v1/debug/workload", struct{}{}); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
	if resp, _ := getJSON(t, env.ts.URL+"/v1/debug/workload?n=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n status %d, want 400", resp.StatusCode)
	}
}

func TestSLOHealthz(t *testing.T) {
	// Objective 0.5 with a 1ms target: requests that spend ~30ms waiting
	// for an unreachable epoch are guaranteed misses, so the budget burns
	// at rate 2 once every windowed request misses.
	env := newTestEnv(t, server.Options{
		SLOTarget:    time.Millisecond,
		SLOObjective: 0.5,
		MinEpochWait: 30 * time.Millisecond,
	})
	f := env.fixtures[0]

	type sloBody struct {
		Status string `json:"status"`
		SLO    *struct {
			BurnRate       float64 `json:"burnRate"`
			BadFraction    float64 `json:"badFraction"`
			WindowRequests uint64  `json:"windowRequests"`
			TargetMs       float64 `json:"targetMs"`
		} `json:"slo"`
	}
	readHealthz := func() (int, sloBody) {
		t.Helper()
		resp, raw := getJSON(t, env.ts.URL+"/healthz")
		var b sloBody
		if err := json.Unmarshal(raw, &b); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	code, b := readHealthz()
	if code != http.StatusOK || b.Status != "ok" {
		t.Fatalf("pre-traffic healthz: %d %q", code, b.Status)
	}
	if b.SLO == nil || b.SLO.TargetMs != 1 || b.SLO.BurnRate != 0 {
		t.Fatalf("pre-traffic slo detail: %+v", b.SLO)
	}

	for i := 0; i < 4; i++ {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
			Dataset: f.name, Pattern: f.queries[0], MinEpoch: 1 << 40,
		})
		if resp.StatusCode != http.StatusPreconditionFailed {
			t.Fatalf("unreachable min_epoch: status %d, want 412", resp.StatusCode)
		}
	}

	code, b = readHealthz()
	// Latency degradation is an operator alert, not a liveness failure:
	// the status flips but the 200 keeps the replica in rotation.
	if code != http.StatusOK {
		t.Fatalf("degraded healthz answered %d, want 200", code)
	}
	if b.Status != "degraded" || b.SLO == nil || b.SLO.BurnRate <= 1 {
		t.Fatalf("after misses: status %q slo %+v, want degraded with burn > 1", b.Status, b.SLO)
	}
	if b.SLO.BadFraction != 1 || b.SLO.WindowRequests != 4 {
		t.Fatalf("window accounting: %+v", b.SLO)
	}

	// The same burn rate is scraped on /metricsz.
	ms := scrapeMetrics(t, env.ts.URL)
	if v, ok := metricValue(ms, "xmatch_slo_burn_rate"); !ok || v <= 1 {
		t.Fatalf("xmatch_slo_burn_rate = %v (present %v), want > 1", v, ok)
	}
}

func TestQueryExplainProfiles(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[0]
	resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
		Dataset: f.name, Pattern: f.queries[0], Explain: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Explain == nil || len(qr.Explain.Shards) == 0 {
		t.Fatal("no explain block")
	}
	profiles := qr.Explain.Shards[0].Profiles
	if len(profiles) == 0 {
		t.Fatal("EXPLAIN carries no selectivity profiles")
	}
	for _, pp := range profiles {
		if pp.Evals == 0 || pp.Candidates == 0 {
			t.Fatalf("profile without observations: %+v", pp)
		}
		if pp.Selectivity < 0 || pp.Selectivity > 1 {
			t.Fatalf("selectivity out of range: %+v", pp)
		}
		if pp.ReachSurvivors > pp.UsefulSurvivors || pp.UsefulSurvivors > pp.Candidates {
			t.Fatalf("funnel not monotone: %+v", pp)
		}
	}
}

func TestMetricszContentType(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	resp, err := http.Get(env.ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	mediaType, params, err := mime.ParseMediaType(ct)
	if err != nil {
		t.Fatalf("Content-Type %q does not parse: %v", ct, err)
	}
	if mediaType != "text/plain" {
		t.Fatalf("media type %q, want text/plain", mediaType)
	}
	if params["version"] != "0.0.4" {
		t.Fatalf("exposition version %q, want 0.0.4 (Content-Type %q)", params["version"], ct)
	}
	if params["charset"] != "utf-8" {
		t.Fatalf("charset %q, want utf-8", params["charset"])
	}
}

func TestTimedReplication(t *testing.T) {
	man := manifest()
	env := newTestEnv(t, server.Options{
		Manifest: func() (*store.Catalog, error) { return man, nil },
	})

	// The replication surface runs under the timed wrapper: request IDs
	// are minted, methods enforced, and the replicate counter moves.
	resp, err := http.Get(env.ts.URL + "/v1/replicate/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("replicate manifest response lacks X-Request-Id")
	}
	if resp, _ := postJSON(t, env.ts.URL+"/v1/replicate/manifest", struct{}{}); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST manifest status %d, want 405", resp.StatusCode)
	}

	// Checkpoint: wrong method 405, a real call mints an ID and counts.
	resp, err = http.Get(env.ts.URL + "/v1/admin/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET checkpoint status %d, want 405", resp.StatusCode)
	}
	resp, _ = postJSON(t, env.ts.URL+"/v1/admin/checkpoint", server.CheckpointRequest{Dataset: "orders"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("checkpoint response lacks X-Request-Id")
	}

	resp, raw := getJSON(t, env.ts.URL+"/statsz")
	resp.Body.Close()
	var st server.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Replicates != 1 || st.Checkpoints != 1 {
		t.Fatalf("statsz replicates=%d checkpoints=%d, want 1/1", st.Replicates, st.Checkpoints)
	}
	if st.Latency["replicate"].Count != 1 || st.Latency["checkpoint"].Count != 1 {
		t.Fatalf("latency histograms: replicate=%d checkpoint=%d, want 1/1",
			st.Latency["replicate"].Count, st.Latency["checkpoint"].Count)
	}
	ms := scrapeMetrics(t, env.ts.URL)
	for _, ep := range []string{"replicate", "checkpoint"} {
		if v, ok := metricValue(ms, "xmatch_http_requests_total", obs.Label{Name: "endpoint", Value: ep}); !ok || v != 1 {
			t.Fatalf("xmatch_http_requests_total{endpoint=%q} = %v (present %v), want 1", ep, v, ok)
		}
	}
}

// TestWorkloadUnderConcurrency hammers capture, /v1/debug/workload, and
// SLO-annotated /healthz and /metricsz scrapes against concurrent
// queries, mutations, and reloads: counters must be monotonic, windows
// never torn (window count bounded by lifetime count), and every scrape
// a clean parse. Run under -race in CI.
func TestWorkloadUnderConcurrency(t *testing.T) {
	capPath := filepath.Join(t.TempDir(), "hammer.capture")
	env := newTestEnv(t, server.Options{
		CapturePath: capPath,
		SLOTarget:   time.Second,
	})
	f := env.fixtures[0]
	path := textPath(t, f.ds)

	const rounds = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := f.queries[(i+w)%len(f.queries)]
				resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: q})
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, _, _ := mutateBody(t, env.ts.URL, server.MutateRequest{
				Dataset: f.name,
				Edits:   []delta.Edit{{Op: delta.OpSetText, Path: path, Text: fmt.Sprintf("hammer-%d", i)}},
			})
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			resp, _ := postJSON(t, env.ts.URL+"/v1/admin/reload", struct{}{})
			resp.Body.Close()
		}
	}()

	var prevRequests, prevRecords uint64
	var prevTotal float64
	for i := 0; i < rounds; i++ {
		// Every scrape must parse (scrapeMetrics lint-fails otherwise,
		// including the duplicate-series check) with monotonic counters.
		ms := scrapeMetrics(t, env.ts.URL)
		if v, ok := metricValue(ms, "xmatch_http_requests_total", obs.Label{Name: "endpoint", Value: "query"}); !ok {
			t.Fatalf("scrape %d lacks query counter", i)
		} else if v < prevTotal {
			t.Fatalf("query counter went backwards: %v -> %v", prevTotal, v)
		} else {
			prevTotal = v
		}

		resp, raw := getJSON(t, env.ts.URL+"/v1/debug/workload")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug workload status %d", resp.StatusCode)
		}
		var dbg server.WorkloadDebug
		if err := json.Unmarshal(raw, &dbg); err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, entry := range dbg.Entries {
			sum += entry.Requests
			if entry.WindowRequests > entry.Requests {
				t.Fatalf("torn window: %d windowed > %d lifetime for %s", entry.WindowRequests, entry.Requests, entry.Fingerprint)
			}
		}
		if sum < prevRequests {
			t.Fatalf("workload requests went backwards: %d -> %d", prevRequests, sum)
		}
		prevRequests = sum
		if dbg.Capture == nil {
			t.Fatal("capture status missing")
		}
		if dbg.Capture.Records < prevRecords {
			t.Fatalf("capture records went backwards: %d -> %d", prevRecords, dbg.Capture.Records)
		}
		prevRecords = dbg.Capture.Records

		code, body := getJSON(t, env.ts.URL+"/healthz")
		var hb struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &hb); err != nil {
			t.Fatal(err)
		}
		if code.StatusCode != http.StatusOK || (hb.Status != "ok" && hb.Status != "degraded") {
			t.Fatalf("healthz %d %q", code.StatusCode, hb.Status)
		}
	}
	close(stop)
	wg.Wait()

	// The capture survives the hammer intact: a clean close, then every
	// record parses back.
	if err := env.srv.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := store.LoadWorkloadFile(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if w.Torn {
		t.Fatal("capture has a torn tail after a clean close")
	}
	if uint64(len(w.Records)) < prevRecords {
		t.Fatalf("capture holds %d records, observed %d via the debug endpoint", len(w.Records), prevRecords)
	}
}
