package server_test

// Chaos differential suite: the same scripted workload — mutation
// batches, mid-script checkpoints, a query transcript — runs once
// fault-free and once under seeded fault injection on the store's file
// I/O (clean append errors, torn writes, checkpoint write failures,
// injected latency). Failed operations are retried exactly as a client
// would retry a 500. The injector's MaxFaults budget guarantees the
// retries converge, and the assertion is the paper-grade one: every
// served byte and the final checkpoint blob must be identical to the
// fault-free run. Faults may cost retries; they may never change an
// answer or persist divergent state.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/fault"
	"xmatch/internal/replica"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// chaosResult is everything one run of the scripted workload produced.
type chaosResult struct {
	transcript []byte // concatenated query response bodies, in script order
	checkpoint []byte // final checkpoint blob, raw file bytes
	finalXML   string // document state after the script
	epoch      uint64 // final epoch
	retries    int    // operations that needed at least one retry
}

// runChaosScript serves one durable-log dataset out of dir and drives
// the scripted workload through the real HTTP mux, retrying any
// operation that answers non-200 (the fault-injected runs rely on this;
// the clean run never retries).
func runChaosScript(t *testing.T, dir string) chaosResult {
	t.Helper()
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "chaos", Dataset: "D1", Mappings: 8, DocNodes: 300, DocSeed: 3, EditLogPath: "chaos.editlog"},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := server.New(loader, server.Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}

	var res chaosResult
	do := func(path string, body any) []byte {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 0; ; attempt++ {
			if attempt >= 100 {
				t.Fatalf("%s did not converge after %d retries", path, attempt)
			}
			r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, r)
			if w.Code == http.StatusOK {
				if attempt > 0 {
					res.retries++
				}
				return w.Body.Bytes()
			}
		}
	}

	// The edit script targets stable preorder paths: the first few text
	// leaves get per-step rewrites, and every third step grows the root.
	doc := srv.Catalog().Get("chaos").Doc()
	var textPaths []string
	for _, p := range doc.Paths() {
		if ns := doc.NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
			textPaths = append(textPaths, p)
		}
	}
	if len(textPaths) < 2 {
		t.Fatal("fixture has too few text leaves")
	}
	rootPath := doc.Root.Path
	queries := leafPatterns(t, srv.Catalog().Get("chaos"), 3)

	steps := 12
	for step := 0; step < steps; step++ {
		edits := []delta.Edit{{
			Op:   delta.OpSetText,
			Path: textPaths[step%len(textPaths)],
			Text: "chaos-" + strings.Repeat("x", step+1),
		}}
		if step%3 == 2 {
			edits = append(edits, delta.Edit{
				Op: delta.OpInsert, Path: rootPath, Pos: 0,
				XML: "<Audit>step</Audit>",
			})
		}
		var mr server.MutateResponse
		if err := json.Unmarshal(do("/v1/admin/mutate", server.MutateRequest{Dataset: "chaos", Edits: edits}), &mr); err != nil {
			t.Fatal(err)
		}
		res.epoch = mr.Epoch
		// Mid-script checkpoint: compaction must be as fault-transparent
		// as appends.
		if step == steps/2 {
			do("/v1/admin/checkpoint", map[string]any{"dataset": "chaos"})
		}
		res.transcript = append(res.transcript, do("/v1/query", server.QueryRequest{
			Dataset:  "chaos",
			Pattern:  queries[step%len(queries)],
			MinEpoch: mr.Epoch,
		})...)
	}

	do("/v1/admin/checkpoint", map[string]any{"dataset": "chaos"})
	ckpt, err := os.ReadFile(replica.CheckpointPath(filepath.Join(dir, "chaos.editlog")))
	if err != nil {
		t.Fatal(err)
	}
	res.checkpoint = ckpt
	res.finalXML = srv.Catalog().Get("chaos").Doc().String()
	return res
}

// TestChaosDifferentialStoreFaults is the acceptance gate for the fault
// injection layer: under injected store faults plus forced retries, the
// served bytes and the checkpoint blob stay byte-identical to the
// fault-free run.
func TestChaosDifferentialStoreFaults(t *testing.T) {
	clean := runChaosScript(t, t.TempDir())
	if clean.retries != 0 {
		t.Fatalf("fault-free run retried %d operations", clean.retries)
	}

	inj := fault.New(1012)
	inj.Set("editlog.append", fault.Config{
		ErrorRate: 0.2, TornRate: 0.25,
		LatencyRate: 0.2, Latency: time.Millisecond,
		MaxFaults: 12,
	})
	inj.Set("store.write", fault.Config{ErrorRate: 0.5, MaxFaults: 3})
	store.SetHooks(&store.Hooks{
		AppendFrame: func(path string, frame []byte) (int, error) {
			if keep, torn := inj.Torn("editlog.append"); torn {
				return int(keep * float64(len(frame))), fault.ErrInjected
			}
			if err := inj.Hit("editlog.append"); err != nil {
				return 0, err
			}
			return len(frame), nil
		},
		WriteFile: func(path string) error { return inj.Hit("store.write") },
	})
	defer store.SetHooks(nil)

	faulty := runChaosScript(t, t.TempDir())
	if faulty.retries == 0 || inj.TotalFaults() == 0 {
		t.Fatalf("chaos run injected nothing (retries=%d faults=%d): the hooks are not wired",
			faulty.retries, inj.TotalFaults())
	}
	t.Logf("injected %d faults across %d retried operations: %+v",
		inj.TotalFaults(), faulty.retries, inj.Counts())

	if faulty.epoch != clean.epoch {
		t.Fatalf("final epoch diverged: clean %d, faulty %d", clean.epoch, faulty.epoch)
	}
	if faulty.finalXML != clean.finalXML {
		t.Fatal("final document diverged under injected faults")
	}
	if !bytes.Equal(faulty.transcript, clean.transcript) {
		t.Fatalf("served bytes diverged under injected faults (clean %d bytes, faulty %d bytes)",
			len(clean.transcript), len(faulty.transcript))
	}
	if !bytes.Equal(faulty.checkpoint, clean.checkpoint) {
		t.Fatalf("checkpoint blob diverged under injected faults (clean %d bytes, faulty %d bytes)",
			len(clean.checkpoint), len(faulty.checkpoint))
	}
}

// TestFollowerChaosRetriesConverge injects a deterministic run of stream
// RPC failures into a follower's sync path: the per-shard breaker must
// open, back off, and probe its way back, and once the fault budget is
// spent the follower must converge to the primary's exact state — the
// retry machinery may delay replication, never fork it.
func TestFollowerChaosRetriesConverge(t *testing.T) {
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "small", Dataset: "D1", Mappings: 8, DocNodes: 300, DocSeed: 3},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, ".", engine.Options{Workers: 2})
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	primary, err := server.New(loader, server.Options{
		Logger:   quiet,
		Manifest: func() (*store.Catalog, error) { return man, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(primary)
	defer ts.Close()

	// The injector starts with no configured points, so the follower's
	// initial sync is clean; the fault schedule arms afterwards.
	inj := fault.New(77)
	rep, f, err := server.NewFollower(ts.URL, server.FollowerOptions{
		Server: server.Options{Logger: quiet},
		Engine: engine.Options{Workers: 2},
		Fault:  func(op string) error { return inj.Hit("replica." + op) },
		Breaker: replica.BreakerConfig{
			Threshold: 2, BaseCooldown: time.Millisecond,
			MaxCooldown: 4 * time.Millisecond, Jitter: -1, Seed: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const faults = 5
	inj.Set("replica.stream", fault.Config{ErrorRate: 1, MaxFaults: faults})

	doc := primary.Catalog().Get("small").Doc()
	var textPath string
	for _, p := range doc.Paths() {
		if ns := doc.NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
			textPath = p
			break
		}
	}
	for i := 0; i < 6; i++ {
		body, _ := json.Marshal(server.MutateRequest{Dataset: "small", Edits: []delta.Edit{
			{Op: delta.OpSetText, Path: textPath, Text: strings.Repeat("m", i+1)},
		}})
		r := httptest.NewRequest(http.MethodPost, "/v1/admin/mutate", bytes.NewReader(body))
		w := httptest.NewRecorder()
		primary.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, w.Code, w.Body.String())
		}
	}

	wantEpoch := primary.Catalog().Get("small").Snapshot().Epoch
	deadline := time.Now().Add(10 * time.Second)
	for rep.Catalog().Get("small").Snapshot().Epoch < wantEpoch {
		_ = f.Sync("small") // failures surface as lag and breaker state
		if time.Now().After(deadline) {
			_, _, lag, _ := f.MaxLag()
			t.Fatalf("follower stuck at epoch %d, want %d: %+v",
				rep.Catalog().Get("small").Snapshot().Epoch, wantEpoch, lag)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if got := inj.Counts()["replica.stream"].Errors; got != faults {
		t.Fatalf("injected %d stream faults, want %d", got, faults)
	}
	lags := f.Lags("small")
	if len(lags) != 1 {
		t.Fatalf("lag rows: %d", len(lags))
	}
	lag := lags[0]
	if lag.SyncErrors != faults {
		t.Fatalf("syncErrors %d, want %d", lag.SyncErrors, faults)
	}
	if lag.Breaker == nil || lag.Breaker.State != "closed" || lag.Breaker.Opens == 0 {
		t.Fatalf("breaker after recovery: %+v", lag.Breaker)
	}
	want := primary.Catalog().Get("small").Doc().String()
	if got := rep.Catalog().Get("small").Doc().String(); got != want {
		t.Fatal("follower document diverged from primary after fault recovery")
	}
}
