package server_test

// Replication integration tests: a primary and a follower built through
// the real HTTP substrate (manifest fetch, edit-log streaming, checkpoint
// bootstrap), with the differential guarantee extended across machines —
// after every acknowledged mutation, the follower's replayed state is
// byte-identical to the primary's, proven by comparing checkpoint
// serializations, raw query wire bytes, and /statsz epochs. Run under
// -race in CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/replica"
	"xmatch/internal/server"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// repManifest is the replication fixture catalog: a sharded collection
// and a classic single-document dataset.
func repManifest() *store.Catalog {
	return &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "orders", Dataset: "D7", Mappings: 12, DocNodes: 900, DocSeed: 7, Shards: 3},
		{Name: "small", Dataset: "D1", Mappings: 8, DocNodes: 300, DocSeed: 3},
	}}
}

// newPrimary starts a primary serving repManifest with the replication
// endpoints wired.
func newPrimary(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(repManifest(), ".", engine.Options{Workers: 4})
	}
	srv, err := server.New(loader, server.Options{
		Manifest: func() (*store.Catalog, error) { return repManifest(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// newReplica builds a follower of the given primary and serves it.
func newReplica(t *testing.T, primary string, sopts server.Options) (*httptest.Server, *server.Server, *replica.Follower) {
	t.Helper()
	srv, f, err := server.NewFollower(primary, server.FollowerOptions{
		Server: sopts,
		Engine: engine.Options{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, f
}

// randomBatch derives a valid 1..3-edit batch from the shard's current
// document: text rewrites on distinct non-root nodes, optionally followed
// by one structural edit (insert anywhere, delete or rename of a leaf).
// Targets are addressed by Start, taken from the live snapshot, so every
// batch resolves.
func randomBatch(rng *rand.Rand, doc *xmltree.Document, round int) []delta.Edit {
	nodes := doc.Nodes()
	pick := func() *xmltree.Node { return nodes[rng.Intn(len(nodes))] }
	used := map[int]bool{}
	var edits []delta.Edit
	for i, n := 0, rng.Intn(2); i <= n; i++ {
		t := pick()
		if t.Parent == nil || used[t.Start] {
			continue
		}
		used[t.Start] = true
		edits = append(edits, delta.Edit{Op: delta.OpSetText, Start: t.Start, Text: fmt.Sprintf("r%d.%d", round, i)})
	}
	switch rng.Intn(4) {
	case 0: // insert under any node
		edits = append(edits, delta.Edit{
			Op: delta.OpInsert, Start: pick().Start, Pos: -1,
			XML: fmt.Sprintf("<Extra><V>e%d</V></Extra>", round),
		})
	case 1: // delete a leaf (keeps the document from collapsing)
		for tries := 0; tries < 10; tries++ {
			if t := pick(); t.Parent != nil && len(t.Children) == 0 {
				edits = append(edits, delta.Edit{Op: delta.OpDelete, Start: t.Start})
				break
			}
		}
	case 2: // rename a leaf
		for tries := 0; tries < 10; tries++ {
			if t := pick(); t.Parent != nil && len(t.Children) == 0 {
				edits = append(edits, delta.Edit{Op: delta.OpRename, Start: t.Start, Label: fmt.Sprintf("Rn%d", round)})
				break
			}
		}
	}
	if len(edits) == 0 {
		edits = append(edits, delta.Edit{
			Op: delta.OpInsert, Start: doc.Root.Start, Pos: -1,
			XML: fmt.Sprintf("<Extra><V>f%d</V></Extra>", round),
		})
	}
	return edits
}

// stateBytes serializes one shard's live state as a checkpoint blob — the
// canonical byte-identity witness (two saves of equal state are equal).
func stateBytes(t *testing.T, sh *server.Shard) []byte {
	t.Helper()
	snap := sh.Live.Snapshot()
	var buf bytes.Buffer
	if err := store.SaveCheckpoint(&buf, snap.Doc, snap.Index, snap.Epoch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertStateIdentical compares every shard of every dataset between the
// two servers by checkpoint bytes.
func assertStateIdentical(t *testing.T, label string, p, f *server.Server) {
	t.Helper()
	for _, name := range []string{"orders", "small"} {
		pd, fd := p.Catalog().Get(name), f.Catalog().Get(name)
		if pd == nil || fd == nil {
			t.Fatalf("%s: dataset %s missing", label, name)
		}
		if pd.NumShards() != fd.NumShards() {
			t.Fatalf("%s: %s shard counts differ: %d vs %d", label, name, pd.NumShards(), fd.NumShards())
		}
		for i := range pd.Shards() {
			pb := stateBytes(t, pd.Shards()[i])
			fb := stateBytes(t, fd.Shards()[i])
			if !bytes.Equal(pb, fb) {
				pe := pd.Shards()[i].Live.Snapshot().Epoch
				fe := fd.Shards()[i].Live.Snapshot().Epoch
				t.Fatalf("%s: %s/%d state diverged (primary epoch %d, follower epoch %d)", label, name, i, pe, fe)
			}
		}
	}
}

// shardEpochs extracts per-dataset shard epochs from a /statsz response.
func shardEpochs(t *testing.T, url string) map[string][]uint64 {
	t.Helper()
	resp, raw := getJSON(t, url+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d %s", resp.StatusCode, raw)
	}
	var st server.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]uint64)
	for _, d := range st.Datasets {
		for _, sh := range d.Shards {
			out[d.Name] = append(out[d.Name], sh.Epoch)
		}
	}
	return out
}

// TestReplicaReplayEquivalence is the replication acceptance matrix: ~50
// randomized mutation rounds across a sharded and an unsharded dataset
// with periodic checkpoint compactions, and after every round the
// follower must be byte-identical to the primary on all four shards (200
// shard-state trials), with raw wire bytes and /statsz epochs agreeing at
// sampled epochs; finally a fresh follower must reach the same state
// purely through checkpoint bootstrap plus stream replay.
func TestReplicaReplayEquivalence(t *testing.T) {
	pts, psrv := newPrimary(t)
	fts, fsrv, f := newReplica(t, pts.URL, server.Options{})
	assertStateIdentical(t, "initial", psrv, fsrv)

	rng := rand.New(rand.NewSource(11))
	type target struct {
		dataset string
		shards  int
	}
	targets := []target{{"orders", 3}, {"small", 1}}
	queries := map[string][]string{
		"orders": leafPatterns(t, psrv.Catalog().Get("orders"), 3)[:2],
		"small":  leafPatterns(t, psrv.Catalog().Get("small"), 3)[:2],
	}

	const rounds = 50
	for round := 0; round < rounds; round++ {
		tg := targets[round%len(targets)]
		shard := rng.Intn(tg.shards)
		doc := psrv.Catalog().Get(tg.dataset).Shards()[shard].Live.Snapshot().Doc
		resp, body := postJSON(t, pts.URL+"/v1/admin/mutate", server.MutateRequest{
			Dataset: tg.dataset, Shard: shard, Edits: randomBatch(rng, doc, round),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: mutate %s/%d: %d %s", round, tg.dataset, shard, resp.StatusCode, body)
		}

		// Every 10th round the primary compacts BEFORE the follower has
		// synced the round's record, forcing the stale-follower path: 409
		// on stream, bootstrap from checkpoint.
		if round%10 == 9 {
			resp, body := postJSON(t, pts.URL+"/v1/admin/checkpoint", server.CheckpointRequest{Dataset: tg.dataset})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: checkpoint: %d %s", round, resp.StatusCode, body)
			}
			var cr server.CheckpointResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			if len(cr.Shards) != tg.shards {
				t.Fatalf("round %d: checkpoint covered %d shards, want %d", round, len(cr.Shards), tg.shards)
			}
		}

		if err := f.SyncAll(); err != nil {
			t.Fatalf("round %d: sync: %v", round, err)
		}
		assertStateIdentical(t, fmt.Sprintf("round %d", round), psrv, fsrv)

		// Sampled rounds also compare the wire: identical query and batch
		// request bytes must produce identical response bytes, and /statsz
		// must agree on every shard epoch.
		if round%5 == 4 {
			for _, tg := range targets {
				for _, pattern := range queries[tg.dataset] {
					for _, mk := range []struct {
						mode string
						k    int
					}{{"basic", 0}, {"compact", 0}, {"topk", 3}} {
						req := server.QueryRequest{Dataset: tg.dataset, Pattern: pattern, Mode: mk.mode, K: mk.k}
						presp, praw := postJSON(t, pts.URL+"/v1/query", req)
						fresp, fraw := postJSON(t, fts.URL+"/v1/query", req)
						if presp.StatusCode != http.StatusOK || fresp.StatusCode != http.StatusOK {
							t.Fatalf("round %d: %s %q %s: statuses %d/%d", round, tg.dataset, pattern, mk.mode, presp.StatusCode, fresp.StatusCode)
						}
						if !bytes.Equal(praw, fraw) {
							t.Fatalf("round %d: %s %q %s/%d: wire bytes diverged:\nprimary  %s\nfollower %s",
								round, tg.dataset, pattern, mk.mode, mk.k, praw, fraw)
						}
					}
				}
				breq := server.BatchRequest{Dataset: tg.dataset}
				for _, pattern := range queries[tg.dataset] {
					breq.Queries = append(breq.Queries, server.BatchQuery{Pattern: pattern}, server.BatchQuery{Pattern: pattern, K: 2})
				}
				presp, praw := postJSON(t, pts.URL+"/v1/batch", breq)
				fresp, fraw := postJSON(t, fts.URL+"/v1/batch", breq)
				if presp.StatusCode != http.StatusOK || fresp.StatusCode != http.StatusOK {
					t.Fatalf("round %d: %s batch statuses %d/%d", round, tg.dataset, presp.StatusCode, fresp.StatusCode)
				}
				if !bytes.Equal(praw, fraw) {
					t.Fatalf("round %d: %s batch wire bytes diverged", round, tg.dataset)
				}
			}
			pe, fe := shardEpochs(t, pts.URL), shardEpochs(t, fts.URL)
			for name, eps := range pe {
				for i, e := range eps {
					if fe[name][i] != e {
						t.Fatalf("round %d: /statsz epoch %s/%d: primary %d, follower %d", round, name, i, e, fe[name][i])
					}
				}
			}
		}
	}

	// The forced compactions must actually have exercised the bootstrap
	// path, not just the streaming path.
	boots := uint64(0)
	for _, name := range []string{"orders", "small"} {
		for _, lag := range f.Lags(name) {
			boots += lag.Bootstraps
		}
	}
	if boots == 0 {
		t.Fatal("no checkpoint bootstraps happened; the 409 path went unexercised")
	}

	// A fresh follower starts from the pristine manifest build, discovers
	// its history is compacted away, bootstraps from checkpoints, and
	// lands byte-identical too.
	_, f2srv, f2 := newReplica(t, pts.URL, server.Options{})
	assertStateIdentical(t, "fresh follower", psrv, f2srv)
	boots2 := uint64(0)
	for _, name := range []string{"orders", "small"} {
		for _, lag := range f2.Lags(name) {
			boots2 += lag.Bootstraps
		}
	}
	if boots2 == 0 {
		t.Fatal("fresh follower never bootstrapped despite compacted history")
	}
}

// TestMinEpochReadYourWrites: a write's epoch token handed to a follower
// query must come back with at-or-after state (the min_epoch wait nudges
// a sync), and an unreachable epoch must answer 412 within the bound.
func TestMinEpochReadYourWrites(t *testing.T) {
	pts, psrv := newPrimary(t)
	fts, _, _ := newReplica(t, pts.URL, server.Options{MinEpochWait: 300 * time.Millisecond})

	pattern := leafPatterns(t, psrv.Catalog().Get("small"), 2)[0]
	var epoch uint64
	for i := 0; i < 3; i++ {
		doc := psrv.Catalog().Get("small").Shards()[0].Live.Snapshot().Doc
		resp, body := postJSON(t, pts.URL+"/v1/admin/mutate", server.MutateRequest{
			Dataset: "small",
			Edits:   []delta.Edit{{Op: delta.OpInsert, Start: doc.Root.Start, Pos: -1, XML: fmt.Sprintf("<W>%d</W>", i)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate: %d %s", resp.StatusCode, body)
		}
		var mr server.MutateResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			t.Fatal(err)
		}
		epoch = mr.Epoch
	}

	// The follower has not synced (no Run loop in this test); min_epoch
	// must pull it level inline and answer with the token satisfied.
	resp, raw := postJSON(t, fts.URL+"/v1/query", server.QueryRequest{
		Dataset: "small", Pattern: pattern, MinEpoch: epoch,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read-your-writes query: %d %s", resp.StatusCode, raw)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Epoch < epoch {
		t.Fatalf("follower answered at epoch %d, token demanded %d", qr.Epoch, epoch)
	}

	// An epoch the primary has never produced cannot be awaited: 412.
	start := time.Now()
	resp, raw = postJSON(t, fts.URL+"/v1/query", server.QueryRequest{
		Dataset: "small", Pattern: pattern, MinEpoch: epoch + 1000,
	})
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("unreachable min_epoch: %d %s", resp.StatusCode, raw)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("412 took %v; the wait bound is not enforced", waited)
	}
	if !strings.Contains(string(raw), "epoch") {
		t.Fatalf("412 body does not explain the token: %s", raw)
	}
}

// TestFollowerReadOnly: every state-changing endpoint answers 403 on a
// follower, and /statsz reports the follower role with replication rows.
func TestFollowerReadOnly(t *testing.T) {
	pts, _ := newPrimary(t)
	fts, _, _ := newReplica(t, pts.URL, server.Options{})

	for _, ep := range []struct {
		path string
		body any
	}{
		{"/v1/admin/mutate", server.MutateRequest{Dataset: "small", Edits: []delta.Edit{{Op: delta.OpSetText, Path: "x", Text: "y"}}}},
		{"/v1/admin/reload", struct{}{}},
		{"/v1/admin/checkpoint", server.CheckpointRequest{Dataset: "small"}},
	} {
		resp, raw := postJSON(t, fts.URL+ep.path, ep.body)
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s on follower: %d %s", ep.path, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "read-only replica") {
			t.Errorf("%s rejection does not name the posture: %s", ep.path, raw)
		}
	}

	resp, raw := getJSON(t, fts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" || st.Primary != pts.URL {
		t.Fatalf("follower statsz role %q primary %q", st.Role, st.Primary)
	}
	for _, d := range st.Datasets {
		for _, sh := range d.Shards {
			if sh.Replication == nil {
				t.Fatalf("follower statsz %s/%d lacks a replication row", d.Name, sh.Shard)
			}
		}
	}

	// The primary reports its own role.
	resp, raw = getJSON(t, pts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary statsz: %d", resp.StatusCode)
	}
	var pst server.Stats
	if err := json.Unmarshal(raw, &pst); err != nil {
		t.Fatal(err)
	}
	if pst.Role != "primary" || pst.Primary != "" {
		t.Fatalf("primary statsz role %q primary %q", pst.Role, pst.Primary)
	}
}

// TestCheckpointDurableRestart: on a durable dataset, /v1/admin/checkpoint
// persists a checkpoint blob and truncates the log file; a restart
// (reload) rebuilds the shard from checkpoint + surviving records and
// further mutations land on the rebased log.
func TestCheckpointDurableRestart(t *testing.T) {
	dir := t.TempDir()
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "durable", Dataset: "D1", Mappings: 8, DocNodes: 200, DocSeed: 3, EditLogPath: "durable.editlog"},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	}
	srv, err := server.New(loader, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	mutate := func(i int) {
		t.Helper()
		doc := srv.Catalog().Get("durable").Shards()[0].Live.Snapshot().Doc
		resp, body := postJSON(t, ts.URL+"/v1/admin/mutate", server.MutateRequest{
			Dataset: "durable",
			Edits:   []delta.Edit{{Op: delta.OpInsert, Start: doc.Root.Start, Pos: -1, XML: fmt.Sprintf("<C>%d</C>", i)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, resp.StatusCode, body)
		}
	}
	for i := 0; i < 3; i++ {
		mutate(i)
	}
	resp, body := postJSON(t, ts.URL+"/v1/admin/checkpoint", server.CheckpointRequest{Dataset: "durable"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	var cr server.CheckpointResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Shards) != 1 || cr.Shards[0].Epoch != 3 || !cr.Shards[0].Durable || cr.Shards[0].FreedBytes <= 0 {
		t.Fatalf("checkpoint response %+v", cr)
	}
	// The log file is reset to base 3; the checkpoint blob exists at 3.
	lg, err := store.LoadEditLogFile(dir + "/durable.editlog")
	if err != nil || lg.Base != 3 || len(lg.Records) != 0 {
		t.Fatalf("post-checkpoint log: %v, %+v", err, lg)
	}
	ck, err := store.LoadCheckpointFile(replica.CheckpointPath(dir + "/durable.editlog"))
	if err != nil || ck == nil || ck.Epoch != 3 {
		t.Fatalf("checkpoint blob: %v, %+v", err, ck)
	}

	// Two more mutations append above the checkpoint.
	mutate(3)
	mutate(4)
	want := srv.Catalog().Get("durable").Doc().String()

	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	after := srv.Catalog().Get("durable")
	if after.Snapshot().Epoch != 5 {
		t.Fatalf("epoch %d after restart, want 5", after.Snapshot().Epoch)
	}
	if after.Doc().String() != want {
		t.Fatal("restart state diverged from pre-restart state")
	}
	// And the restarted shard keeps appending at the right epoch.
	mutate(5)
	if got := after.Snapshot().Epoch; got != 6 {
		t.Fatalf("post-restart mutate epoch %d, want 6", got)
	}
}
