package server_test

// The observability surface: /metricsz exposition-format lint over a live
// server (every subsystem's collectors render valid Prometheus text),
// query EXPLAIN over an indexed sharded collection, slow-query trace
// retention, follower /healthz lag degradation, and a concurrency hammer
// that scrapes /metricsz and /statsz while queries, mutations, and
// reloads race — asserting counters stay monotonic and histogram
// snapshots are never torn. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/obs"
	"xmatch/internal/server"
)

// scrapeMetrics fetches /metricsz and parses it against the exposition
// grammar, failing the test on any malformed line.
func scrapeMetrics(t *testing.T, base string) []obs.ExpositionMetric {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("metricsz Content-Type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	ms, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, buf.String())
	}
	return ms
}

// metricValue finds one sample by name and label subset; ok is false when
// absent.
func metricValue(ms []obs.ExpositionMetric, name string, labels ...obs.Label) (float64, bool) {
outer:
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		for _, want := range labels {
			found := false
			for _, l := range m.Labels {
				if l == want {
					found = true
					break
				}
			}
			if !found {
				continue outer
			}
		}
		return m.Value, true
	}
	return 0, false
}

// textPath returns a text-bearing path of the dataset's document, for
// valid SetText edits.
func textPath(t *testing.T, ds *server.Dataset) string {
	t.Helper()
	for _, p := range ds.Doc().Paths() {
		if ns := ds.Doc().NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
			return p
		}
	}
	t.Fatal("no text node in fixture document")
	return ""
}

// TestMetricszExposition is the CI exposition-format lint: after real
// traffic (queries and a mutation), /metricsz must render valid
// Prometheus text covering every subsystem — server, engine, index,
// delta, and replica.
func TestMetricszExposition(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[0]

	for _, q := range f.queries[:2] {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}
	resp, _, errMsg := mutateBody(t, env.ts.URL, server.MutateRequest{
		Dataset: f.name,
		Edits:   []delta.Edit{{Op: delta.OpSetText, Path: textPath(t, f.ds), Text: "observed"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d: %s", resp.StatusCode, errMsg)
	}

	ms := scrapeMetrics(t, env.ts.URL)
	// One representative family per subsystem: a missing family means a
	// subsystem's collector was never wired.
	for _, want := range []string{
		"xmatch_http_requests_total",  // server
		"xmatch_engine_workers",       // engine
		"xmatch_index_evals_total",    // index matcher
		"xmatch_delta_epoch",          // delta (live mutation)
		"xmatch_replica_log_epoch",    // replica (shard log, primary side)
		"xmatch_http_request_seconds", // latency histograms render
		"xmatch_shard_evaluate_seconds",
	} {
		found := false
		for _, m := range ms {
			if m.Name == want || strings.HasPrefix(m.Name, want+"_") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metricsz lacks family %s", want)
		}
	}
	if v, ok := metricValue(ms, "xmatch_http_requests_total", obs.Label{Name: "endpoint", Value: "query"}); !ok || v < 2 {
		t.Errorf("query requests counter %v (present %v)", v, ok)
	}
	if v, ok := metricValue(ms, "xmatch_delta_epoch", obs.Label{Name: "dataset", Value: f.name}); !ok || v != 1 {
		t.Errorf("delta epoch gauge %v (present %v) after one mutation", v, ok)
	}
	if v, ok := metricValue(ms, "xmatch_index_evals_total"); !ok || v == 0 {
		t.Errorf("index evals counter %v (present %v) after queries", v, ok)
	}
}

// TestQueryExplain asserts the EXPLAIN contract on an indexed, sharded
// collection: ?explain=1 returns the request's spans (prepare, per-shard
// evaluate, aggregate) plus per-shard matcher counters that moved.
func TestQueryExplain(t *testing.T) {
	ts, srv := newPrimary(t)
	ds := srv.Catalog().Get("orders")
	pattern := strings.ReplaceAll(ds.Set.Target.Leaves()[0].Path, ".", "/")

	resp, raw := postJSON(t, ts.URL+"/v1/query?explain=1", server.QueryRequest{Dataset: "orders", Pattern: pattern})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain query status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response lacks X-Request-Id")
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Explain == nil {
		t.Fatal("explain requested but absent from response")
	}
	ex := qr.Explain
	if ex.Trace.ID == "" || ex.Trace.ID != resp.Header.Get("X-Request-Id") {
		t.Errorf("trace id %q vs X-Request-Id %q", ex.Trace.ID, resp.Header.Get("X-Request-Id"))
	}
	spans := map[string]int{}
	for _, sp := range ex.Trace.Spans {
		spans[sp.Name]++
	}
	if spans["prepare"] != 1 || spans["evaluate"] != 1 || spans["aggregate"] != 1 {
		t.Errorf("span census %v lacks prepare/evaluate/aggregate", spans)
	}
	if spans["shard_evaluate"] < ds.NumShards() {
		t.Errorf("%d shard_evaluate spans for %d shards", spans["shard_evaluate"], ds.NumShards())
	}
	if len(ex.Shards) != ds.NumShards() {
		t.Fatalf("%d explain shard rows for %d shards", len(ex.Shards), ds.NumShards())
	}
	for _, sh := range ex.Shards {
		if sh.Counters.Evals == 0 {
			t.Errorf("shard %d matcher counters did not move: %+v", sh.Shard, sh.Counters)
		}
	}

	// Explain via the body field behaves identically.
	resp, raw = postJSON(t, ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: pattern, Explain: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body-explain status %d", resp.StatusCode)
	}
	var qr2 server.QueryResponse
	if err := json.Unmarshal(raw, &qr2); err != nil {
		t.Fatal(err)
	}
	if qr2.Explain == nil {
		t.Fatal("body-field explain absent")
	}
	// A plain query carries no explain block.
	resp, raw = postJSON(t, ts.URL+"/v1/query", server.QueryRequest{Dataset: "orders", Pattern: pattern})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("plain query failed")
	}
	if bytes.Contains(raw, []byte(`"explain"`)) {
		t.Error("unrequested explain block in response")
	}
}

// TestTracesTailSampling asserts the slow-query log end: with a 1ns
// threshold every request is retained on /v1/debug/traces, newest first,
// with its spans intact.
func TestTracesTailSampling(t *testing.T) {
	env := newTestEnv(t, server.Options{TraceThreshold: time.Nanosecond})
	f := env.fixtures[0]
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: f.queries[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}
	resp, raw := getJSON(t, env.ts.URL+"/v1/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d", resp.StatusCode)
	}
	var body struct {
		ThresholdMs float64         `json:"thresholdMs"`
		Finished    uint64          `json:"finished"`
		Sampled     uint64          `json:"sampled"`
		Traces      []obs.TraceData `json:"traces"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Finished < 3 || body.Sampled < 3 || len(body.Traces) < 3 {
		t.Fatalf("finished=%d sampled=%d retained=%d, want >= 3 each", body.Finished, body.Sampled, len(body.Traces))
	}
	tr := body.Traces[0]
	if tr.ID == "" || tr.Endpoint != "query" || tr.Dataset != f.name || len(tr.Spans) == 0 {
		t.Fatalf("retained trace %+v lacks id/endpoint/dataset/spans", tr)
	}
}

// TestFollowerHealthzDegraded asserts the follower liveness contract:
// /healthz answers 503 with lag detail when the worst shard's revealed
// lag exceeds MaxLagEpochs, and recovers to 200 once a sync catches up.
func TestFollowerHealthzDegraded(t *testing.T) {
	pts, psrv := newPrimary(t)
	rts, _, f := newReplica(t, pts.URL, server.Options{MaxLagEpochs: 2})

	// Build a 3-epoch gap on the single-shard dataset, unseen by the
	// replica (its sync loop is not running).
	path := textPath(t, psrv.Catalog().Get("small"))
	for i := 0; i < 3; i++ {
		resp, _, errMsg := mutateBody(t, pts.URL, server.MutateRequest{
			Dataset: "small",
			Edits:   []delta.Edit{{Op: delta.OpSetText, Path: path, Text: fmt.Sprintf("lagged-%d", i)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("primary mutate %d: %d %s", i, resp.StatusCode, errMsg)
		}
	}
	// The next sync reveals (and closes) the 3-epoch gap; the recorded
	// lag reflects what this sync had to replay.
	if err := f.Sync("small"); err != nil {
		t.Fatal(err)
	}
	resp, raw := getJSON(t, rts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d (want 503): %s", resp.StatusCode, raw)
	}
	var h struct {
		Status string `json:"status"`
		Lag    struct {
			Dataset      string `json:"dataset"`
			EpochsBehind uint64 `json:"epochsBehind"`
		} `json:"lag"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Lag.Dataset != "small" || h.Lag.EpochsBehind != 3 {
		t.Fatalf("degraded body %s", raw)
	}
	// Caught up: the next sync finds no gap and health recovers.
	if err := f.Sync("small"); err != nil {
		t.Fatal(err)
	}
	resp, raw = getJSON(t, rts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"status":"ok"`) {
		t.Fatalf("healthz after catch-up: %d %s", resp.StatusCode, raw)
	}
}

// TestMetricsUnderConcurrency hammers queries, mutations, and reloads
// while scraping /metricsz and /statsz, asserting on every scrape that
// (a) the exposition parses, (b) counters are monotonic across scrapes —
// including the index matcher counters, which must survive the reloads
// swapping in fresh indexes — and (c) no histogram snapshot is torn
// (count never exceeds the bucket total; see obs.Histogram).
func TestMetricsUnderConcurrency(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[0]
	path := textPath(t, f.ds)

	const rounds = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := f.queries[(i+w)%len(f.queries)]
				resp, _ := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{Dataset: f.name, Pattern: q})
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, _, _ := mutateBody(t, env.ts.URL, server.MutateRequest{
				Dataset: f.name,
				Edits:   []delta.Edit{{Op: delta.OpSetText, Path: path, Text: fmt.Sprintf("hammer-%d", i)}},
			})
			resp.Body.Close()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			resp, _ := postJSON(t, env.ts.URL+"/v1/admin/reload", struct{}{})
			resp.Body.Close()
		}
	}()

	checkHistogram := func(name string, h server.HistogramStats) {
		var sum uint64
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if h.Count > sum {
			t.Errorf("torn %s histogram: count %d > bucket total %d", name, h.Count, sum)
		}
	}
	prev := map[string]float64{}
	monotonic := []struct {
		name   string
		labels []obs.Label
	}{
		{"xmatch_http_requests_total", []obs.Label{{Name: "endpoint", Value: "query"}}},
		{"xmatch_http_requests_total", []obs.Label{{Name: "endpoint", Value: "mutate"}}},
		{"xmatch_index_evals_total", nil},
		{"xmatch_index_emitted_matches_total", nil},
		{"xmatch_edits_applied_total", nil},
	}
	for i := 0; i < rounds; i++ {
		ms := scrapeMetrics(t, env.ts.URL) // parse failure fails the test
		for _, m := range monotonic {
			key := fmt.Sprint(m.name, m.labels)
			v, ok := metricValue(ms, m.name, m.labels...)
			if !ok {
				t.Fatalf("scrape %d lacks %s", i, key)
			}
			if v < prev[key] {
				t.Fatalf("counter %s went backwards: %v -> %v", key, prev[key], v)
			}
			prev[key] = v
		}
		resp, raw := getJSON(t, env.ts.URL+"/statsz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statsz status %d", resp.StatusCode)
		}
		var st server.Stats
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		for name, h := range st.Latency {
			checkHistogram(name, h)
		}
		for _, d := range st.Datasets {
			for _, sh := range d.Shards {
				checkHistogram(fmt.Sprintf("%s/%d", d.Name, sh.Shard), sh.Latency)
			}
		}
	}
	close(stop)
	wg.Wait()
}
