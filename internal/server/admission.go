package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"xmatch/internal/obs"
)

// errQueueFull reports that the admission queue is at capacity: the
// request is shed immediately (429 + Retry-After) instead of waiting.
var errQueueFull = errors.New("admission queue full")

// admission is the server's overload gate for evaluation-heavy requests
// (/v1/query, /v1/batch): a fixed number of in-flight slots plus a
// bounded, deadline-aware wait queue. A request that finds no free slot
// waits — FIFO through the runtime's channel queue — until a slot frees,
// its deadline expires, or the client goes away; past the queue bound it
// is shed instantly, because a queue deeper than the server can drain
// within a deadline only converts overload into timeouts.
type admission struct {
	slots    chan struct{} // capacity = max in-flight
	queueMax int64
	queued   atomic.Int64
	waitLat  *obs.Histogram
}

func newAdmission(inflight, queue int) *admission {
	return &admission{
		slots:    make(chan struct{}, inflight),
		queueMax: int64(queue),
		waitLat:  obs.NewHistogram(nil),
	}
}

// acquire admits the request, returning the release the caller must run
// when done. It fails with errQueueFull when the wait queue is at
// capacity, or the context's error if the deadline expires (or the
// client disconnects) while queued.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.queueMax {
		a.queued.Add(-1)
		return nil, errQueueFull
	}
	defer a.queued.Add(-1)
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.waitLat.Observe(time.Since(start))
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inFlight is the number of admitted requests currently holding a slot.
func (a *admission) inFlight() int { return len(a.slots) }

// queueDepth is the number of requests currently waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }
