package server_test

// End-to-end tests for the request fault-tolerance layer: deadline
// enforcement (503 with a structured body), overload shedding (429 with
// Retry-After), readiness flipping for graceful shutdown, and the
// invariant the whole layer exists for — a storm of expired requests
// leaves zero admission slots and zero engine slots occupied.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"xmatch/internal/server"
)

func serverStats(t *testing.T, env *testEnv) server.Stats {
	t.Helper()
	resp, body := getJSON(t, env.ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz: %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestQueryTimeoutAnswers503 drives a query into the epoch-wait path with
// a min_epoch the dataset will never reach and a tight timeout_ms: the
// deadline must fire during the wait and come back as a structured 503.
func TestQueryTimeoutAnswers503(t *testing.T) {
	env := newTestEnv(t, server.Options{MinEpochWait: 2 * time.Second})
	fx := env.fixtures[1]
	resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
		Dataset:   fx.name,
		Pattern:   fx.queries[0],
		MinEpoch:  1 << 40,
		TimeoutMs: 40,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var tr server.TimeoutResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("503 body is not a TimeoutResponse: %v: %s", err, body)
	}
	if tr.Stage != "await_epoch" {
		t.Fatalf("stage %q, want await_epoch", tr.Stage)
	}
	if tr.TimeoutMs != 40 {
		t.Fatalf("timeoutMs %v, want 40", tr.TimeoutMs)
	}
	if tr.RequestID == "" {
		t.Fatal("timeout response lost its request ID")
	}
	if st := serverStats(t, env); st.Timeouts < 1 {
		t.Fatalf("stats timeouts %d, want >= 1", st.Timeouts)
	}
	mresp, err := http.Get(env.ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	if !bytes.Contains(metrics, []byte("xmatch_requests_timeout")) {
		t.Fatal("/metricsz does not expose xmatch_requests_timeout")
	}
}

// TestTimeoutMsCannotExtendServerDeadline pins the tighten-only contract:
// a huge per-request timeout_ms is still capped by -query-timeout.
func TestTimeoutMsCannotExtendServerDeadline(t *testing.T) {
	env := newTestEnv(t, server.Options{
		QueryTimeout: 50 * time.Millisecond,
		MinEpochWait: 2 * time.Second,
	})
	fx := env.fixtures[1]
	start := time.Now()
	resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
		Dataset:   fx.name,
		Pattern:   fx.queries[0],
		MinEpoch:  1 << 40,
		TimeoutMs: 60_000,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("server deadline did not cap timeout_ms: request ran %v", took)
	}
}

// TestOverloadSheds429 fills the one admission slot and the one queue
// seat with epoch-blocked queries, then asserts the next request is shed
// with 429 + Retry-After — and that canceling the blockers drains the
// gate back to zero.
func TestOverloadSheds429(t *testing.T) {
	env := newTestEnv(t, server.Options{
		MaxInflight:  1,
		MaxQueue:     1,
		QueryTimeout: 10 * time.Second,
		MinEpochWait: 10 * time.Second,
	})
	fx := env.fixtures[1]
	blocked, _ := json.Marshal(server.QueryRequest{
		Dataset:  fx.name,
		Pattern:  fx.queries[0],
		MinEpoch: 1 << 40,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				env.ts.URL+"/v1/query", bytes.NewReader(blocked))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	waitForStats(t, env, func(st server.Stats) bool {
		return st.AdmissionInFlight == 1 && st.AdmissionQueued == 1
	})

	resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
		Dataset: fx.name,
		Pattern: fx.queries[0],
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	if !bytes.Contains(body, []byte("overloaded")) {
		t.Fatalf("shed body: %s", body)
	}
	if st := serverStats(t, env); st.Shed < 1 {
		t.Fatalf("stats shed %d, want >= 1", st.Shed)
	}

	cancel()
	wg.Wait()
	waitForStats(t, env, func(st server.Stats) bool {
		return st.AdmissionInFlight == 0 && st.AdmissionQueued == 0
	})
}

// TestCancelStormDrainsAdmission fires a storm of requests that all
// expire — more than the gate can hold, so every path is exercised:
// admitted-then-timed-out, queued-then-timed-out, and shed. Afterwards
// the gate and every dataset engine must be fully drained.
func TestCancelStormDrainsAdmission(t *testing.T) {
	env := newTestEnv(t, server.Options{
		MaxInflight:  2,
		MaxQueue:     4,
		QueryTimeout: 10 * time.Second,
		MinEpochWait: 10 * time.Second,
	})
	fx := env.fixtures[1]

	var wg sync.WaitGroup
	codes := make(chan int, 16)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
				Dataset:   fx.name,
				Pattern:   fx.queries[0],
				MinEpoch:  1 << 40,
				TimeoutMs: 50,
			})
			_ = body
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)

	var timedOut, shed int
	for code := range codes {
		switch code {
		case http.StatusServiceUnavailable:
			timedOut++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("storm request got %d, want 503 or 429", code)
		}
	}
	if timedOut == 0 {
		t.Fatal("no storm request timed out")
	}
	t.Logf("storm: %d timed out, %d shed", timedOut, shed)

	waitForStats(t, env, func(st server.Stats) bool {
		return st.AdmissionInFlight == 0 && st.AdmissionQueued == 0
	})
	for _, fx := range env.fixtures {
		if busy := fx.ds.Engine.Busy(); busy != 0 {
			t.Fatalf("dataset %s engine holds %d slots after the storm", fx.name, busy)
		}
	}
}

// TestReadyzFlipsForShutdown checks the readiness probe contract: ready
// by default, 503 "draining" once shutdown starts, while liveness
// (/healthz) stays green so orchestrators don't kill a draining process.
func TestReadyzFlipsForShutdown(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	get := func(path string) (int, string) {
		resp, err := http.Get(env.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server /readyz: %d %s", code, body)
	}
	env.srv.SetReady(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining server /readyz: %d %s", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("liveness went red during drain: %d", code)
	}
	if st := serverStats(t, env); st.Ready {
		t.Fatal("statsz still reports ready during drain")
	}
	env.srv.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("re-readied server /readyz: %d", code)
	}
}

func waitForStats(t *testing.T, env *testEnv, cond func(server.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(serverStats(t, env)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached: %+v", serverStats(t, env))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
