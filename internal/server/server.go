// Package server implements xmatchd's HTTP/JSON serving layer: a
// long-lived, hot-reloadable multi-tenant catalog of prepared datasets
// (mapping set + document + block tree + per-dataset engine) behind a small
// API:
//
//	POST /v1/query         one PTQ (basic / compact / top-k)
//	POST /v1/batch         many PTQs over one dataset, engine-fanned
//	GET  /v1/datasets      catalog listing
//	GET  /healthz          liveness
//	GET  /statsz           cache, in-flight, mutation, and latency counters
//	POST /v1/admin/reload  rebuild the catalog and swap it atomically
//	POST /v1/admin/mutate  apply an edit batch to one dataset's document
//
// Every query runs through a per-request engine.Sub budget, so one fat
// batch cannot starve the dataset's worker pool, and every response's
// results decode byte-identically to the sequential internal/core
// evaluators (asserted end-to-end by server_test.go).
//
// Documents are live: each dataset's document and positional index sit
// behind a delta.Handle. A request handler pins the current snapshot once
// and evaluates against that pair to completion, so mutations applied
// concurrently (writers serialize per dataset inside the handle) never
// perturb an in-flight request — they only decide what the next request
// sees.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/obs"
	"xmatch/internal/replica"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// Options configure the HTTP layer. The zero value is serviceable.
type Options struct {
	// RequestWorkers caps the pool slots any single request's evaluation
	// may hold (admission control). 0 means half the dataset's pool
	// (rounded up), so two concurrent requests can always make progress;
	// negative forces sequential evaluation per request.
	RequestWorkers int
	// MaxBodyBytes bounds request bodies; 0 means 1 MiB.
	MaxBodyBytes int64
	// MaxBatchQueries bounds the queries one /v1/batch request may carry
	// — like MaxBodyBytes, a cap on the work a single well-formed request
	// can demand. 0 means 256.
	MaxBatchQueries int
	// MaxBatchEdits bounds the edits one /v1/admin/mutate request may
	// carry. 0 means 256.
	MaxBatchEdits int
	// ReadOnly rejects every state-changing endpoint (mutate, reload,
	// checkpoint) with 403 — the posture of a read replica, whose state
	// changes only through replication.
	ReadOnly bool
	// Manifest, when set, is served on /v1/replicate/manifest so a
	// follower can build the same catalog locally before replaying the
	// primary's edits. It should return the same manifest the Loader
	// builds from.
	Manifest func() (*store.Catalog, error)
	// MinEpochWait bounds how long a query carrying min_epoch waits for
	// the dataset to reach that epoch before answering 412. 0 means 2s.
	MinEpochWait time.Duration
	// TraceThreshold tail-samples the slow-query log: a request's trace is
	// retained on /v1/debug/traces only when its total latency reaches the
	// threshold. 0 means 100ms; negative disables retention (requests are
	// still traced for EXPLAIN, just never retained).
	TraceThreshold time.Duration
	// TraceBufferSize bounds the retained slow traces; 0 means 64.
	TraceBufferSize int
	// MaxLagEpochs, on a follower, is the replication lag (epochs behind
	// the primary, worst shard) beyond which /healthz reports degraded
	// with a 503. 0 means 1000; negative disables the check.
	MaxLagEpochs int64
	// Logger receives the server's structured log lines (slow requests,
	// replication replays, sync failures); nil means slog.Default().
	Logger *slog.Logger
	// SLOTarget is the query-latency objective: the server tracks, over
	// SLOWindow, the fraction of /v1/query requests slower than the
	// target and exposes the error-budget burn rate on /metricsz and
	// /healthz (which reports "degraded" detail while the budget burns
	// hotter than it accrues). 0 disables SLO evaluation.
	SLOTarget time.Duration
	// SLOObjective is the fraction of queries that must meet SLOTarget;
	// 0 means 0.99.
	SLOObjective float64
	// SLOWindow is the sliding window behind the burn rate and the
	// windowed latency quantiles; 0 means 5m.
	SLOWindow time.Duration
	// CapturePath enables the workload capture: a sampled, disk-budgeted
	// binary log of /v1/query requests (fingerprint, pattern, mode,
	// epoch, latency, result digest) that `xmatch workload replay` can
	// re-run and byte-diff. The file is truncated at server start; a
	// selectivity-profile sidecar at CapturePath+".profiles" is rewritten
	// periodically alongside it. Empty disables capture.
	CapturePath string
	// CaptureSampleN records 1 in N queries; 0 or 1 records all.
	CaptureSampleN int
	// CaptureBudgetBytes stops appending (but keeps counting what was
	// missed) once the capture file reaches this size; 0 means 64 MiB.
	CaptureBudgetBytes int64
	// WorkloadFingerprints caps the per-fingerprint accounting table
	// behind /v1/debug/workload; the rarest fingerprint is evicted past
	// the cap. 0 means 512.
	WorkloadFingerprints int
	// QueryTimeout bounds every /v1 request end to end: the request
	// context carries the deadline, the engine's evaluators observe it at
	// their cancellation checkpoints, and an expired request answers 503
	// with a structured timeout body. A request may tighten (never extend)
	// the bound with its own timeout_ms. 0 means 30s; negative disables
	// the server-wide deadline (requests still honor their own timeout_ms
	// and client disconnects).
	QueryTimeout time.Duration
	// MaxInflight caps concurrently evaluating /v1/query and /v1/batch
	// requests; requests beyond it wait in a bounded queue for a slot.
	// 0 means 4× GOMAXPROCS; negative disables admission control.
	MaxInflight int
	// MaxQueue bounds the requests waiting for an admission slot; past it
	// the server sheds with 429 + Retry-After instead of queueing work it
	// cannot drain before the deadline. 0 means 2× MaxInflight.
	MaxQueue int
}

// Loader builds a fresh catalog: called once at startup and again on every
// /v1/admin/reload. It must return a fully constructed catalog — the server
// swaps it in atomically only on success, so a failed reload keeps serving
// the previous catalog.
type Loader func() (*Catalog, error)

// Server is the xmatchd HTTP handler.
type Server struct {
	opts   Options
	loader Loader
	// reloadMu serializes Reload (write side) against in-flight mutations
	// (read side): a reload's loader replays each dataset's edit log and
	// then publishes the catalog built from it, so a mutation applying —
	// and appending to a log — between that read and the publish would be
	// acknowledged yet missing from the new catalog (and its mid-append
	// write could tear the loader's read). Mutations on different
	// datasets still run concurrently; per-dataset ordering comes from
	// the delta handle. Reloads remain last-wins, in order.
	reloadMu sync.RWMutex
	cat      atomic.Pointer[Catalog]
	mux      *http.ServeMux
	stats    serverStats
	// follower is set on a read replica (NewFollower): the sync engine
	// that replays the primary's edit streams into this catalog. A
	// min_epoch query nudges it instead of waiting for the next tick.
	follower *replica.Follower
	// registry drives /metricsz: collectors read the server's live state
	// at scrape time, so the hot paths pay nothing between scrapes.
	registry *obs.Registry
	// traces is the bounded slow-request ring behind /v1/debug/traces.
	traces *obs.TraceLog
	// workload is the per-fingerprint accounting behind /v1/debug/workload
	// and the xmatch_workload_* metrics; capture is the sampled on-disk
	// request log (nil unless Options.CapturePath is set).
	workload *workloadStats
	capture  *captureLog
	logger   *slog.Logger
	// adm is the overload gate for the evaluation-heavy endpoints; nil
	// when Options.MaxInflight is negative (admission disabled).
	adm *admission
	// ready gates /readyz: flipped off by SetReady(false) at the start of
	// a graceful shutdown so load balancers stop routing before the
	// listener closes. Liveness (/healthz) is unaffected.
	ready atomic.Bool
}

// New builds a server over the loader's initial catalog.
func New(loader Loader, opts Options) (*Server, error) {
	cat, err := loader()
	if err != nil {
		return nil, err
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.MaxBatchQueries == 0 {
		opts.MaxBatchQueries = 256
	}
	if opts.MaxBatchEdits == 0 {
		opts.MaxBatchEdits = 256
	}
	if opts.MinEpochWait == 0 {
		opts.MinEpochWait = 2 * time.Second
	}
	if opts.TraceThreshold == 0 {
		opts.TraceThreshold = 100 * time.Millisecond
	}
	if opts.MaxLagEpochs == 0 {
		opts.MaxLagEpochs = 1000
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.SLOObjective == 0 {
		opts.SLOObjective = 0.99
	}
	if opts.SLOWindow == 0 {
		opts.SLOWindow = 5 * time.Minute
	}
	if opts.CaptureBudgetBytes == 0 {
		opts.CaptureBudgetBytes = 64 << 20
	}
	if opts.WorkloadFingerprints == 0 {
		opts.WorkloadFingerprints = 512
	}
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = 30 * time.Second
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 2 * opts.MaxInflight
	}
	s := &Server{opts: opts, loader: loader, logger: opts.Logger}
	if opts.MaxInflight > 0 {
		s.adm = newAdmission(opts.MaxInflight, opts.MaxQueue)
	}
	s.ready.Store(true)
	s.stats.init(opts.SLOWindow)
	s.workload = newWorkloadStats(opts.WorkloadFingerprints, opts.SLOWindow)
	s.traces = obs.NewTraceLog(opts.TraceBufferSize, opts.TraceThreshold)
	s.registry = s.newRegistry()
	s.cat.Store(cat)
	if opts.CapturePath != "" {
		cl, err := newCaptureLog(opts.CapturePath, opts.CaptureSampleN, opts.CaptureBudgetBytes, s.captureProfiles, opts.Logger)
		if err != nil {
			return nil, fmt.Errorf("workload capture: %w", err)
		}
		s.capture = cl
	}
	// Every /v1 endpoint runs under guard (request deadline + panic
	// recovery); the health/stats/metrics probes stay outside it so an
	// operator can always inspect a struggling server.
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.timed("query", http.MethodPost, s.stats.latQuery, &s.stats.queries, s.guard("query", s.handleQuery)))
	s.mux.HandleFunc("/v1/batch", s.timed("batch", http.MethodPost, s.stats.latBatch, &s.stats.batches, s.guard("batch", s.handleBatch)))
	s.mux.HandleFunc("/v1/datasets", s.guard("datasets", s.handleDatasets))
	s.mux.HandleFunc("/v1/admin/reload", s.guard("reload", s.handleReload))
	s.mux.HandleFunc("/v1/admin/mutate", s.timed("mutate", http.MethodPost, s.stats.latMutate, &s.stats.mutates, s.guard("mutate", s.handleMutate)))
	s.mux.HandleFunc("/v1/admin/checkpoint", s.timed("checkpoint", http.MethodPost, s.stats.latCheckpoint, &s.stats.checkpoints, s.guard("checkpoint", s.handleCheckpoint)))
	s.mux.HandleFunc(replica.StreamEndpoint, s.timed("replicate", http.MethodPost, s.stats.latReplicate, &s.stats.replicates, s.guard("replicate", s.handleReplicateStream)))
	s.mux.HandleFunc(replica.CheckpointEndpoint, s.timed("replicate", http.MethodGet, s.stats.latReplicate, &s.stats.replicates, s.guard("replicate", s.handleReplicateCheckpoint)))
	s.mux.HandleFunc(replica.ManifestEndpoint, s.timed("replicate", http.MethodGet, s.stats.latReplicate, &s.stats.replicates, s.guard("replicate", s.handleReplicateManifest)))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/v1/debug/traces", s.guard("traces", s.handleTraces))
	s.mux.HandleFunc("/v1/debug/workload", s.guard("workload", s.handleDebugWorkload))
	return s, nil
}

// SetReady flips the /readyz gate. xmatchd calls SetReady(false) when a
// shutdown signal arrives — before http.Server.Shutdown closes the
// listener — so load balancers drain the instance while in-flight
// requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the /readyz gate's current position.
func (s *Server) Ready() bool { return s.ready.Load() }

// Close releases the server's owned resources: today that is the
// workload-capture file (flushing a final selectivity-profile sidecar).
// Serving after Close keeps working; captures are just no longer
// recorded.
func (s *Server) Close() error {
	if s.capture != nil {
		return s.capture.close()
	}
	return nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Catalog returns the current catalog snapshot.
func (s *Server) Catalog() *Catalog { return s.cat.Load() }

// Reload rebuilds the catalog through the loader and swaps it in,
// returning the new dataset names. On error the old catalog stays active.
// Reloads are serialized so overlapping calls cannot finish out of order
// and resurrect a stale catalog.
func (s *Server) Reload() ([]string, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cat, err := s.loader()
	if err != nil {
		return nil, err
	}
	if old := s.cat.Swap(cat); old != nil {
		// The retired catalog's indexes may be pinned by in-flight requests
		// for a while yet, but their result memos — whole cached evaluations
		// over the old epochs — would otherwise keep entire superseded
		// documents reachable for as long as the memo maps live. Purging is
		// safe under concurrent queries: an in-flight evaluation just sees a
		// cold cache and recomputes against its pinned snapshot.
		// Retiring the old generation's replication logs closes the other
		// half of the race: a mutate or checkpoint that resolved the old
		// collection before the swap fails its log write instead of
		// interleaving with the new generation's writer on the same file.
		for _, d := range old.Datasets() {
			for _, sh := range d.Shards() {
				sh.Live.Snapshot().Index.PurgeMemo()
				if sh.Log != nil {
					sh.Log.Retire()
				}
			}
		}
	}
	if s.follower != nil {
		s.wireFollower(cat)
	}
	s.stats.reloads.Add(1)
	names := make([]string, 0, len(cat.names))
	names = append(names, cat.names...)
	return names, nil
}

// budget resolves the per-request worker cap against a dataset's pool.
func (s *Server) budget(d *Dataset) int {
	switch {
	case s.opts.RequestWorkers > 0:
		return s.opts.RequestWorkers
	case s.opts.RequestWorkers < 0:
		return 1
	default:
		return (d.Engine.Workers() + 1) / 2
	}
}

// Wire types of the query API.

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Dataset string `json:"dataset"`
	Pattern string `json:"pattern"`
	// Mode selects the evaluator: "compact" (block tree; the default),
	// "basic" (Algorithm 3 over all mappings), or "topk" (requires K > 0).
	Mode string `json:"mode,omitempty"`
	K    int    `json:"k,omitempty"`
	// MinEpoch demands read-your-writes: the query waits (bounded) until
	// the dataset's epoch reaches MinEpoch — on a follower, until
	// replication has caught up with the write that produced the token —
	// and answers 412 if it cannot. 0 reads whatever is current.
	MinEpoch uint64 `json:"min_epoch,omitempty"`
	// Explain asks for the response's Explain block: the request's trace
	// plus per-shard index-matcher counters. ?explain=1 on the URL does
	// the same.
	Explain bool `json:"explain,omitempty"`
	// TimeoutMs tightens the server's request deadline for this query;
	// values beyond the server-wide bound are capped to it. 0 uses the
	// server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	Dataset string `json:"dataset"`
	Pattern string `json:"pattern"`
	Mode    string `json:"mode"`
	K       int    `json:"k,omitempty"`
	// Epoch is the consistency token of the state the query saw: the
	// highest per-shard epoch among the snapshots it pinned. Hand it to a
	// later query's min_epoch (on any replica) to read at-or-after this
	// state.
	Epoch   uint64            `json:"epoch"`
	Results []core.WireResult `json:"results"`
	Answers []core.WireAnswer `json:"answers"`
	// Explain is present when the request asked for it; see ExplainData.
	Explain *ExplainData `json:"explain,omitempty"`
}

// BatchQuery is one query of a POST /v1/batch body.
type BatchQuery struct {
	Pattern string `json:"pattern"`
	// K > 0 evaluates the top-k PTQ for this query; 0 evaluates the full
	// compact PTQ.
	K int `json:"k,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Dataset string       `json:"dataset"`
	Queries []BatchQuery `json:"queries"`
	// MinEpoch demands read-your-writes for the whole batch; see
	// QueryRequest.MinEpoch.
	MinEpoch uint64 `json:"min_epoch,omitempty"`
	// TimeoutMs tightens the server's request deadline for this batch;
	// see QueryRequest.TimeoutMs.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// BatchAnswer is one per-query answer within a BatchResponse; Error is set
// (and Results/Answers are null) when that query failed. Results and
// Answers carry no omitempty so an empty answer encodes as [] exactly like
// a /v1/query response — the wire form of a result set never depends on
// which endpoint produced it.
type BatchAnswer struct {
	Pattern string            `json:"pattern"`
	K       int               `json:"k,omitempty"`
	Results []core.WireResult `json:"results"`
	Answers []core.WireAnswer `json:"answers"`
	Error   string            `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch; Responses
// preserve request order.
type BatchResponse struct {
	Dataset string `json:"dataset"`
	// Epoch is the consistency token of the pinned state; see
	// QueryResponse.Epoch.
	Epoch     uint64        `json:"epoch"`
	Responses []BatchAnswer `json:"responses"`
}

// DatasetInfo is one row of GET /v1/datasets.
type DatasetInfo struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	Target   string `json:"target"`
	Mappings int    `json:"mappings"`
	DocNodes int    `json:"docNodes"`
	// Epoch is the collection's highest per-shard mutation epoch
	// (0 = every shard pristine).
	Epoch uint64 `json:"epoch"`
	// Shards is the number of member documents (1 = classic single
	// document); DocNodes totals across them.
	Shards int `json:"shards"`
	Blocks int `json:"blocks"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.stats.errors.Add(1)
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body with a size cap, rejecting
// trailing garbage.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// failBody maps a decodeBody error onto the right status: an oversized
// body is 413 (the request was well-formed, just too big — retrying it
// unchanged cannot help), anything else is 400. Every body-decoding
// handler routes through here so the two cases stay uniform across
// endpoints.
func (s *Server) failBody(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.fail(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
}

// method enforces a handler's single allowed HTTP method, answering 405
// with an Allow header otherwise. Returns true when the request may
// proceed.
func (s *Server) method(w http.ResponseWriter, r *http.Request, want string) bool {
	if r.Method != want {
		w.Header().Set("Allow", want)
		s.fail(w, http.StatusMethodNotAllowed, "use %s", want)
		return false
	}
	return true
}

// timed wraps a handler with method enforcement, the in-flight gauge, the
// request counter, the latency histogram, and request-scoped tracing: it
// mints a request ID, threads a span recorder through the request
// context (handlers and the engine's shard observer record into it), and
// finishes the trace into the tail-sampled slow-query log. A retained
// trace also emits one structured log line carrying the request ID, so
// logs and /v1/debug/traces correlate. The admin and replication
// endpoints run under the same wrapper as the query path, so a
// checkpoint or replica pull is as traceable as any query.
func (s *Server) timed(endpoint, method string, h *obs.Windowed, counter *atomic.Uint64, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.method(w, r, method) {
			return
		}
		counter.Add(1)
		s.stats.inFlight.Add(1)
		id := obs.RequestID()
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		start := time.Now()
		defer func() {
			total := time.Since(start)
			h.Observe(total)
			s.stats.inFlight.Add(-1)
			if s.traces.Finish(tr, total, tr.Dataset(), endpoint) {
				s.logger.Info("slow request",
					"id", id,
					"endpoint", endpoint,
					"dataset", tr.Dataset(),
					"ms", float64(total.Microseconds())/1e3)
			}
		}()
		fn(w, r)
	}
}

// guard wraps a /v1 handler with the fault-tolerance envelope: the
// server-wide request deadline (Options.QueryTimeout) on the request
// context, and panic recovery that converts an evaluation panic into a
// 500 carrying the request ID while the stack goes to the structured
// log — one broken request must not take the daemon down with it.
func (s *Server) guard(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.QueryTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.QueryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			if p := recover(); p != nil {
				id := w.Header().Get("X-Request-Id")
				s.stats.panics.Add(1)
				s.logger.Error("handler panic",
					"endpoint", endpoint,
					"id", id,
					"panic", fmt.Sprint(p),
					"stack", string(debug.Stack()))
				s.fail(w, http.StatusInternalServerError, "internal error serving %s (request %s)", endpoint, id)
			}
		}()
		fn(w, r)
	}
}

// TimeoutResponse is the body of a 503 produced by an expired request
// deadline (or a client that went away mid-request).
type TimeoutResponse struct {
	Error string `json:"error"`
	// Stage names where the deadline fired: "queued" (still waiting for
	// an admission slot), "await_epoch", or "evaluate".
	Stage string `json:"stage"`
	// TimeoutMs is the effective bound the request ran under (the
	// tighter of the server-wide deadline and the request's timeout_ms);
	// 0 when only the client's own cancellation applied.
	TimeoutMs float64 `json:"timeoutMs,omitempty"`
	RequestID string  `json:"requestId,omitempty"`
}

// failTimeout answers a request whose context ended before its work did:
// 503 with a structured body naming the stage that was cut short. A
// client disconnect takes the same path — there is nobody left to read
// the body, but the counters and log line still record the abort.
func (s *Server) failTimeout(w http.ResponseWriter, ctx context.Context, stage string, timeout time.Duration) {
	s.stats.timeouts.Add(1)
	s.stats.errors.Add(1)
	msg := "request deadline exceeded"
	if errors.Is(ctx.Err(), context.Canceled) {
		msg = "request canceled by client"
	}
	resp := TimeoutResponse{
		Error:     msg + " during " + stage,
		Stage:     stage,
		RequestID: w.Header().Get("X-Request-Id"),
	}
	if timeout > 0 {
		resp.TimeoutMs = float64(timeout.Microseconds()) / 1e3
	}
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

// queryTimeout resolves the effective deadline of a request carrying an
// optional timeout_ms override: the override tightens the server-wide
// bound, never extends it (the parent context already carries the
// server's deadline, so an over-large override is a no-op).
func (s *Server) queryTimeout(timeoutMs int64) time.Duration {
	timeout := s.opts.QueryTimeout
	if timeout < 0 {
		timeout = 0
	}
	if timeoutMs > 0 {
		if d := time.Duration(timeoutMs) * time.Millisecond; timeout == 0 || d < timeout {
			timeout = d
		}
	}
	return timeout
}

// admit gates an evaluation-heavy request through the admission queue,
// writing the shed or timeout response itself when the request cannot
// proceed. The caller must defer release() when ok.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.adm == nil {
		return func() {}, true
	}
	release, err := s.adm.acquire(r.Context())
	switch {
	case err == nil:
		return release, true
	case errors.Is(err, errQueueFull):
		s.stats.shed.Add(1)
		// A shed request should come back after the backlog drains, not
		// instantly: one second is coarse but honest for a queue sized to
		// the server's own drain rate.
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "server overloaded: %d requests evaluating, %d queued",
			s.adm.inFlight(), s.adm.queueDepth())
		return nil, false
	default:
		s.failTimeout(w, r.Context(), "queued", s.queryTimeout(0))
		return nil, false
	}
}

// shardDocs projects pinned snapshots onto the documents the engine's
// Across evaluators scatter over.
func shardDocs(snaps []*delta.Snapshot) []*xmltree.Document {
	docs := make([]*xmltree.Document, len(snaps))
	for i, sn := range snaps {
		docs[i] = sn.Doc
	}
	return docs
}

// snapsEpoch is the consistency token of a pinned snapshot set: the
// highest per-shard epoch. Per-shard epochs advance independently, so
// for a multi-shard collection the token is an upper bound — exact for
// the single-shard case, where it names one state precisely.
func snapsEpoch(snaps []*delta.Snapshot) uint64 {
	var epoch uint64
	for _, sn := range snaps {
		if sn.Epoch > epoch {
			epoch = sn.Epoch
		}
	}
	return epoch
}

// awaitEpoch blocks until the dataset's epoch reaches min, the bounded
// wait expires, or the request context ends — read-your-writes for a
// client holding a mutate or query epoch token. The wait is event-driven:
// each shard handle broadcasts a publish by closing its Changed()
// channel, so a waiter wakes on the exact mutation that might satisfy it
// instead of polling. On a follower each round additionally nudges the
// sync engine inline (and re-nudges on a short ticker, since a lagging
// follower's local publishes only happen when a nudge lands records), so
// the common catch-up is one stream round-trip.
func (s *Server) awaitEpoch(ctx context.Context, tr *obs.Trace, ds *Dataset, min uint64) bool {
	deadline := time.NewTimer(s.opts.MinEpochWait)
	defer deadline.Stop()
	var nudgeC <-chan time.Time
	if s.follower != nil {
		nudge := time.NewTicker(25 * time.Millisecond)
		defer nudge.Stop()
		nudgeC = nudge.C
	}
	for {
		// Grab every shard's change channel before reading the epochs: a
		// publish after the read necessarily closes a channel already in
		// hand, so a wake-up cannot be lost between check and wait.
		shards := ds.Shards()
		chans := make([]<-chan struct{}, len(shards))
		for i, sh := range shards {
			chans[i] = sh.Live.Changed()
		}
		if snapsEpoch(ds.Snapshots()) >= min {
			return true
		}
		if s.follower != nil {
			// An inline nudge replays the primary's pending records on this
			// goroutine, so the replay shows up as a span of the request that
			// demanded the epoch.
			done := tr.Region("replica_sync", ds.Name)
			_ = s.follower.Sync(ds.Name) // errors surface as lag; keep waiting
			done()
			if snapsEpoch(ds.Snapshots()) >= min {
				return true
			}
		}
		wake, stop := mergeChanged(chans)
		select {
		case <-wake:
			stop()
		case <-nudgeC:
			stop()
		case <-deadline.C:
			stop()
			return snapsEpoch(ds.Snapshots()) >= min
		case <-ctx.Done():
			stop()
			return snapsEpoch(ds.Snapshots()) >= min
		}
	}
}

// mergeChanged folds per-shard change channels into one wake-up. The
// single-shard case (nearly every dataset) selects on the handle's
// channel directly; a multi-shard merge parks one goroutine per shard,
// all released by stop() when the waiter moves on.
func mergeChanged(chans []<-chan struct{}) (wake <-chan struct{}, stop func()) {
	if len(chans) == 1 {
		return chans[0], func() {}
	}
	merged := make(chan struct{})
	quit := make(chan struct{})
	var once sync.Once
	for _, c := range chans {
		go func(c <-chan struct{}) {
			select {
			case <-c:
				once.Do(func() { close(merged) })
			case <-quit:
			}
		}(c)
	}
	var stopOnce sync.Once
	return merged, func() { stopOnce.Do(func() { close(quit) }) }
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	tr := obs.TraceFrom(r.Context())
	var req QueryRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		// The override only tightens: the context already carries the
		// server-wide deadline, and WithTimeout never extends a parent.
		tctx, cancel := context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
		ctx = tctx
	}
	timeout := s.queryTimeout(req.TimeoutMs)
	explain := req.Explain || r.URL.Query().Get("explain") == "1"
	ds := s.Catalog().Get(req.Dataset)
	if ds == nil {
		s.fail(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	tr.SetDataset(req.Dataset)
	// Validate the mode before preparing: rejecting a bad request must not
	// pay parse/resolve or churn the prepared-query cache.
	mode := req.Mode
	if mode == "" {
		mode = "compact"
	}
	switch mode {
	case "basic", "compact":
	case "topk":
		if req.K <= 0 {
			s.fail(w, http.StatusBadRequest, "mode topk requires k > 0")
			return
		}
	default:
		s.fail(w, http.StatusBadRequest, "unknown mode %q (want basic, compact, or topk)", mode)
		return
	}
	if req.MinEpoch > 0 {
		done := tr.Region("await_epoch", "min_epoch="+strconv.FormatUint(req.MinEpoch, 10))
		ok := s.awaitEpoch(ctx, tr, ds, req.MinEpoch)
		done()
		if !ok {
			if ctx.Err() != nil {
				s.failTimeout(w, ctx, "await_epoch", timeout)
				return
			}
			s.fail(w, http.StatusPreconditionFailed, "dataset %q at epoch %d, below requested min_epoch %d",
				req.Dataset, snapsEpoch(ds.Snapshots()), req.MinEpoch)
			return
		}
	}
	// Pin every shard's snapshot once: each evaluation below sees these
	// exact (document, index) pairs even if a mutation lands mid-request.
	// The scatter runs under one Sub budget, so a sharded collection holds
	// no more pool slots than a single-document dataset would; the context
	// view makes the evaluators abandon work promptly once the deadline
	// fires or the client goes away.
	snaps := ds.Snapshots()
	eng := ds.Engine.Sub(s.budget(ds)).WithContext(ctx)
	prepStart := time.Now()
	q, cached, err := eng.PrepareCached(req.Pattern, ds.Set)
	tr.Add("prepare", "cached="+strconv.FormatBool(cached), prepStart, time.Since(prepStart))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	var before []index.CountersSnapshot
	if explain {
		before = shardCounters(snaps)
	}
	sh := engine.Shards{Docs: shardDocs(snaps), Observe: traceObserver(tr, ds)}
	evalDone := tr.Region("evaluate", mode)
	var results []core.Result
	switch mode {
	case "basic":
		results = eng.EvaluateBasicAcross(q, ds.Set, sh)
	case "compact":
		results = eng.EvaluateAcross(q, ds.Set, sh, ds.Tree)
	default: // topk
		results = eng.EvaluateTopKAcross(q, ds.Set, sh, ds.Tree, req.K)
	}
	evalDone()
	// A fired deadline means the evaluators returned partial results;
	// they are discarded, never served.
	if ctx.Err() != nil {
		s.failTimeout(w, ctx, "evaluate", timeout)
		return
	}
	aggDone := tr.Region("aggregate", "")
	resp := QueryResponse{
		Dataset: req.Dataset,
		Pattern: req.Pattern,
		Mode:    mode,
		K:       req.K,
		Epoch:   snapsEpoch(snaps),
		Results: core.ToWire(results),
		Answers: core.AnswersToWire(core.AggregateLeaf(q, results)),
	}
	aggDone()
	if explain {
		resp.Explain = buildExplain(tr, snaps, before)
	}
	// Workload accounting happens on the response the client is about to
	// receive: the fingerprint keys the prepared query's canonical pattern
	// (not the request text), and the capture's digest covers the exact
	// wire results and answers, so a replay diffs against what was served.
	canonical := q.Pattern.String()
	fp := engine.FingerprintPattern(req.Dataset, canonical, mode, req.K)
	latency := time.Since(start)
	s.workload.record(fp, req.Dataset, canonical, mode, req.K, cached, len(resp.Results), resp.Epoch, latency)
	s.capture.record(func() store.WorkloadRecord {
		return store.WorkloadRecord{
			Fingerprint: fp,
			Dataset:     req.Dataset,
			Pattern:     canonical,
			Mode:        mode,
			K:           req.K,
			Epoch:       resp.Epoch,
			LatencyUs:   latency.Microseconds(),
			Digest:      DigestResults(resp.Results, resp.Answers),
		}
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	tr := obs.TraceFrom(r.Context())
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		tctx, cancel := context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
		ctx = tctx
	}
	timeout := s.queryTimeout(req.TimeoutMs)
	ds := s.Catalog().Get(req.Dataset)
	if ds == nil {
		s.fail(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	tr.SetDataset(req.Dataset)
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > s.opts.MaxBatchQueries {
		s.fail(w, http.StatusBadRequest, "batch has %d queries, limit %d", len(req.Queries), s.opts.MaxBatchQueries)
		return
	}
	if req.MinEpoch > 0 {
		done := tr.Region("await_epoch", "min_epoch="+strconv.FormatUint(req.MinEpoch, 10))
		ok := s.awaitEpoch(ctx, tr, ds, req.MinEpoch)
		done()
		if !ok {
			if ctx.Err() != nil {
				s.failTimeout(w, ctx, "await_epoch", timeout)
				return
			}
			s.fail(w, http.StatusPreconditionFailed, "dataset %q at epoch %d, below requested min_epoch %d",
				req.Dataset, snapsEpoch(ds.Snapshots()), req.MinEpoch)
			return
		}
	}
	// One snapshot pin per shard for the whole batch: its queries are
	// answered over a single consistent per-shard document state.
	snaps := ds.Snapshots()
	eng := ds.Engine.Sub(s.budget(ds)).WithContext(ctx)
	sh := engine.Shards{Docs: shardDocs(snaps), Observe: traceObserver(tr, ds)}
	engReqs := make([]engine.Request, len(req.Queries))
	for i, bq := range req.Queries {
		engReqs[i] = engine.Request{Pattern: bq.Pattern, K: bq.K}
	}
	resp := BatchResponse{Dataset: req.Dataset, Epoch: snapsEpoch(snaps), Responses: make([]BatchAnswer, len(engReqs))}
	evalDone := tr.Region("evaluate", "queries="+strconv.Itoa(len(engReqs)))
	answers := eng.EvaluateBatchAcross(ds.Set, sh, ds.Tree, engReqs)
	evalDone()
	if ctx.Err() != nil {
		s.failTimeout(w, ctx, "evaluate", timeout)
		return
	}
	for i, er := range answers {
		ba := BatchAnswer{Pattern: er.Pattern, K: er.K}
		if er.Err != nil {
			ba.Error = er.Err.Error()
		} else {
			ba.Results = core.ToWire(er.Results)
			ba.Answers = core.AnswersToWire(core.AggregateLeaf(er.Query, er.Results))
		}
		resp.Responses[i] = ba
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	cat := s.Catalog()
	infos := make([]DatasetInfo, 0, len(cat.names))
	for _, d := range cat.Datasets() {
		var nodes int
		var epoch uint64
		for _, snap := range d.Snapshots() {
			nodes += snap.Doc.Len()
			if snap.Epoch > epoch {
				epoch = snap.Epoch
			}
		}
		infos = append(infos, DatasetInfo{
			Name:     d.Name,
			Source:   d.Set.Source.Name,
			Target:   d.Set.Target.Name,
			Mappings: d.Set.Len(),
			DocNodes: nodes,
			Epoch:    epoch,
			Shards:   d.NumShards(),
			Blocks:   d.Tree.Stats().NumBlocks,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

// MutateRequest is the body of POST /v1/admin/mutate: one edit batch for
// one dataset, applied atomically in order.
type MutateRequest struct {
	Dataset string `json:"dataset"`
	// Shard selects the member document of a sharded collection the batch
	// applies to; 0 (the default) is the single document of a classic
	// dataset.
	Shard int          `json:"shard,omitempty"`
	Edits []delta.Edit `json:"edits"`
}

// MutateResponse is the body of a successful POST /v1/admin/mutate.
type MutateResponse struct {
	Dataset string `json:"dataset"`
	// Shard echoes the member document the batch landed on.
	Shard int `json:"shard,omitempty"`
	// Epoch is the shard's document epoch the batch produced; queries
	// arriving after this response see it.
	Epoch    uint64 `json:"epoch"`
	Applied  int    `json:"applied"`
	DocNodes int    `json:"docNodes"`
	// Persisted reports whether the batch was appended to the dataset's
	// edit log (false for datasets without one: the mutation is
	// in-memory only and will not survive a reload).
	Persisted bool `json:"persisted"`
}

// readOnly rejects a state-changing request on a read replica. Returns
// true when the request was rejected.
func (s *Server) readOnly(w http.ResponseWriter) bool {
	if !s.opts.ReadOnly {
		return false
	}
	primary := ""
	if s.follower != nil {
		primary = " (follower of " + s.follower.Primary() + ")"
	}
	s.fail(w, http.StatusForbidden, "read-only replica%s: state changes only through replication", primary)
	return true
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFrom(r.Context())
	if s.readOnly(w) {
		return
	}
	var req MutateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	tr.SetDataset(req.Dataset)
	if req.Shard < 0 {
		s.fail(w, http.StatusBadRequest, "negative shard %d", req.Shard)
		return
	}
	if len(req.Edits) == 0 {
		s.fail(w, http.StatusBadRequest, "mutation has no edits")
		return
	}
	if len(req.Edits) > s.opts.MaxBatchEdits {
		s.fail(w, http.StatusBadRequest, "mutation has %d edits, limit %d", len(req.Edits), s.opts.MaxBatchEdits)
		return
	}
	if err := delta.Validate(req.Edits); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The reload read-lock covers dataset resolution through apply-and-log:
	// otherwise a reload could swap the catalog in between, and the batch
	// would land on the superseded dataset (and in the edit log) after the
	// reload's replay had already read the log — acknowledged, persisted,
	// yet absent from the serving catalog until the next reload. The
	// handle itself serializes writers per dataset and orders log appends
	// exactly like the batches they record; readers keep their pinned
	// snapshots throughout and never touch this lock.
	s.reloadMu.RLock()
	ds := s.Catalog().Get(req.Dataset)
	if ds == nil {
		s.reloadMu.RUnlock()
		s.fail(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	if req.Shard >= ds.NumShards() {
		s.reloadMu.RUnlock()
		s.fail(w, http.StatusBadRequest, "dataset %q has %d shards, no shard %d", req.Dataset, ds.NumShards(), req.Shard)
		return
	}
	shard := ds.Shards()[req.Shard]
	// Every applied batch goes through the shard's replication log — the
	// durable edit-log append (fsynced before the ack) when the entry
	// persists mutations, and the in-memory retention followers stream
	// from either way. A log retired by a concurrent reload refuses the
	// append, failing the mutate instead of writing to a file the new
	// catalog generation now owns.
	applyDone := tr.Region("apply", "shard="+strconv.Itoa(req.Shard)+" edits="+strconv.Itoa(len(req.Edits)))
	snap, err := shard.Live.ApplyLogged(req.Edits, shard.Log.Append)
	applyDone()
	s.reloadMu.RUnlock()
	if err != nil {
		var ee *delta.EditError
		if errors.As(err, &ee) {
			s.fail(w, http.StatusBadRequest, "%v", err)
		} else {
			s.fail(w, http.StatusInternalServerError, "mutation not applied: %v", err)
		}
		return
	}
	s.stats.edits.Add(uint64(len(req.Edits)))
	writeJSON(w, http.StatusOK, MutateResponse{
		Dataset:   req.Dataset,
		Shard:     req.Shard,
		Epoch:     snap.Epoch,
		Applied:   len(req.Edits),
		DocNodes:  snap.Doc.Len(),
		Persisted: shard.Log.Durable(),
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodPost) {
		return
	}
	if s.readOnly(w) {
		return
	}
	names, err := s.Reload()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "reload failed (previous catalog still serving): %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": names})
}

// handleReadyz answers whether this instance should receive traffic —
// distinct from /healthz liveness: a draining server is perfectly alive,
// it just wants the load balancer to look elsewhere while in-flight
// requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	body := map[string]any{
		"status":        "ok",
		"datasets":      len(s.Catalog().names),
		"uptimeSeconds": time.Since(s.stats.start).Seconds(),
	}
	// When an SLO is configured, report how the error budget is burning
	// over the sliding window. Burning faster than it accrues (rate > 1)
	// flips the status to "degraded" but keeps the 200: latency pressure
	// is an alert for operators, not a liveness failure — ejecting the
	// replica from rotation would convert slow answers into no answers.
	if s.opts.SLOTarget > 0 {
		win := s.stats.latQuery.Window()
		slo := obs.SLO{Target: s.opts.SLOTarget, Objective: s.opts.SLOObjective}
		bad, burn := slo.Burn(win)
		detail := map[string]any{
			"targetMs":       float64(s.opts.SLOTarget.Microseconds()) / 1e3,
			"objective":      s.opts.SLOObjective,
			"windowSeconds":  s.opts.SLOWindow.Seconds(),
			"windowRequests": win.Count,
			"badFraction":    bad,
			"burnRate":       burn,
			"p50Ms":          win.Quantile(0.50),
			"p95Ms":          win.Quantile(0.95),
			"p99Ms":          win.Quantile(0.99),
		}
		body["slo"] = detail
		if burn > 1 {
			body["status"] = "degraded"
		}
	}
	// A follower that has fallen too far behind the primary is alive but
	// not healthy: it answers queries from stale state and min_epoch
	// queries start timing out. Report degraded (503 keeps load balancers
	// honest) with the worst shard's lag detail.
	if s.follower != nil && s.opts.MaxLagEpochs > 0 {
		if dsName, shard, lag, ok := s.follower.MaxLag(); ok && lag.EpochsBehind > uint64(s.opts.MaxLagEpochs) {
			body["status"] = "degraded"
			detail := map[string]any{
				"dataset":      dsName,
				"shard":        shard,
				"epochsBehind": lag.EpochsBehind,
				"primaryEpoch": lag.PrimaryEpoch,
				"localEpoch":   lag.LocalEpoch,
				"maxLagEpochs": s.opts.MaxLagEpochs,
			}
			if lag.LastError != "" {
				detail["lastError"] = lag.LastError
			}
			body["lag"] = detail
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// DatasetStats is one dataset's /statsz row. The index fields describe the
// dataset's positional index: how long the current snapshot's index took
// to build (or verify-load, or splice), its resident footprint, and its
// postings volume — the capacity signals for sizing a multi-tenant
// deployment. The epoch fields track the live mutation subsystem: the
// current document epoch, the batches and edits absorbed since the
// catalog snapshot was prepared, and the index's current overlay depth
// (how many spliced epochs a postings lookup may traverse before the next
// flatten).
type DatasetStats struct {
	Name           string `json:"name"`
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEvictions uint64 `json:"cacheEvictions"`
	CacheEntries   int    `json:"cacheEntries"`

	IndexBuildMs  float64 `json:"indexBuildMs"`
	IndexBytes    int     `json:"indexBytes"`
	IndexPostings int     `json:"indexPostings"`
	IndexPaths    int     `json:"indexPaths"`
	// The compressed-postings accounting (store format v4 layout):
	// resident compressed postings bytes, the same postings in the flat
	// int32 layout, their ratio, and the keyword-term vocabulary size.
	IndexPostingsBytes     int     `json:"indexPostingsBytes"`
	IndexPostingsFlatBytes int     `json:"indexPostingsFlatBytes"`
	IndexCompression       float64 `json:"indexCompression"`
	IndexTextKeys          int     `json:"indexTextKeys"`

	Epoch         uint64 `json:"epoch"`
	EditBatches   uint64 `json:"editBatches"`
	EditsApplied  uint64 `json:"editsApplied"`
	IndexOverlays int    `json:"indexOverlays"`
	DocNodes      int    `json:"docNodes"`
	EditLog       bool   `json:"editLog"`

	// Shards breaks the collection down per member document. For a
	// single-shard dataset the one row repeats the aggregate index/epoch
	// fields above (which are sums across shards, Epoch and overlay depth
	// excepted — those are maxima).
	Shards []ShardStats `json:"shards"`
}

// ShardStats is one member document's row within a DatasetStats entry:
// its own index footprint, mutation history, and the scatter-gather
// latency histogram fed by the engine's per-shard observer (one
// observation per (embedding, shard) evaluation unit, so a shard that
// drags the gather down is visible directly).
type ShardStats struct {
	Shard         int            `json:"shard"`
	DocNodes      int            `json:"docNodes"`
	Epoch         uint64         `json:"epoch"`
	IndexPostings int            `json:"indexPostings"`
	IndexBytes    int            `json:"indexBytes"`
	IndexOverlays int            `json:"indexOverlays"`
	EditBatches   uint64         `json:"editBatches"`
	EditsApplied  uint64         `json:"editsApplied"`
	EditLog       bool           `json:"editLog"`
	Latency       HistogramStats `json:"latency"`
	// Replication is the shard's replication-log state, plus — on a
	// follower — its lag behind the primary as of the last sync.
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// ReplicationStats is one shard's replication row. The log fields
// describe the shard's own replication log (what a follower could stream
// right now); the lag fields are filled on a follower only.
type ReplicationStats struct {
	// CheckpointEpoch is the epoch of the latest checkpoint — the base of
	// the retained log; a follower further behind must bootstrap.
	CheckpointEpoch uint64 `json:"checkpointEpoch"`
	// RetainedRecords/RetainedBytes measure the retained (shippable) log.
	RetainedRecords int   `json:"retainedRecords"`
	RetainedBytes   int64 `json:"retainedBytes"`

	// Follower-side lag, as of the last sync attempt (see replica.Lag).
	PrimaryEpoch uint64 `json:"primaryEpoch,omitempty"`
	EpochsBehind uint64 `json:"epochsBehind,omitempty"`
	BytesPending int64  `json:"bytesPending,omitempty"`
	Bootstraps   uint64 `json:"bootstraps,omitempty"`
	SyncErrors   uint64 `json:"syncErrors,omitempty"`
	LastError    string `json:"lastError,omitempty"`

	// Breaker is the shard's sync circuit breaker position (follower
	// only): closed shards sync normally, open shards are skipping sync
	// attempts until their cooldown elapses.
	Breaker *replica.BreakerStatus `json:"breaker,omitempty"`
}

// Stats is the /statsz payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Role is "primary" or "follower"; Primary carries the upstream base
	// URL on a follower.
	Role        string `json:"role"`
	Primary     string `json:"primary,omitempty"`
	Ready       bool   `json:"ready"`
	InFlight    int64  `json:"inFlight"`
	Queries     uint64 `json:"queries"`
	Batches     uint64 `json:"batches"`
	Reloads     uint64 `json:"reloads"`
	Mutations   uint64 `json:"mutations"`
	Checkpoints uint64 `json:"checkpoints"`
	Replicates  uint64 `json:"replicates"`
	Edits       uint64 `json:"edits"`
	Errors      uint64 `json:"errors"`
	// Timeouts counts requests answered 503 because their deadline fired
	// (or their client vanished) before the work finished; Shed counts
	// requests answered 429 by the admission gate; Panics counts handler
	// panics converted into 500s.
	Timeouts uint64 `json:"timeouts"`
	Shed     uint64 `json:"shed"`
	Panics   uint64 `json:"panics"`
	// AdmissionInFlight/AdmissionQueued are the overload gate's live
	// occupancy (admitted evaluations and requests waiting for a slot).
	AdmissionInFlight int                       `json:"admissionInFlight"`
	AdmissionQueued   int64                     `json:"admissionQueued"`
	Latency           map[string]HistogramStats `json:"latency"`
	Datasets          []DatasetStats            `json:"datasets"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	st := Stats{
		UptimeSeconds: time.Since(s.stats.start).Seconds(),
		Role:          "primary",
		Ready:         s.ready.Load(),
		InFlight:      s.stats.inFlight.Load(),
		Queries:       s.stats.queries.Load(),
		Batches:       s.stats.batches.Load(),
		Reloads:       s.stats.reloads.Load(),
		Mutations:     s.stats.mutates.Load(),
		Checkpoints:   s.stats.checkpoints.Load(),
		Replicates:    s.stats.replicates.Load(),
		Edits:         s.stats.edits.Load(),
		Errors:        s.stats.errors.Load(),
		Timeouts:      s.stats.timeouts.Load(),
		Shed:          s.stats.shed.Load(),
		Panics:        s.stats.panics.Load(),
		Latency: map[string]HistogramStats{
			"query":      histogramStats(s.stats.latQuery.Snapshot()),
			"batch":      histogramStats(s.stats.latBatch.Snapshot()),
			"mutate":     histogramStats(s.stats.latMutate.Snapshot()),
			"checkpoint": histogramStats(s.stats.latCheckpoint.Snapshot()),
			"replicate":  histogramStats(s.stats.latReplicate.Snapshot()),
		},
	}
	if s.adm != nil {
		st.AdmissionInFlight = s.adm.inFlight()
		st.AdmissionQueued = s.adm.queueDepth()
	}
	if s.follower != nil {
		st.Role = "follower"
		st.Primary = s.follower.Primary()
	}
	for _, d := range s.Catalog().Datasets() {
		cs := d.Engine.CacheStats()
		row := DatasetStats{
			Name:           d.Name,
			CacheHits:      cs.Hits,
			CacheMisses:    cs.Misses,
			CacheEvictions: cs.Evictions,
			CacheEntries:   cs.Entries,
			EditLog:        d.EditLogPath() != "",
		}
		var lags []replica.Lag
		if s.follower != nil {
			lags = s.follower.Lags(d.Name)
		}
		for i, sh := range d.Shards() {
			snap := sh.Live.Snapshot()
			xs := snap.Index.Stats()
			ls := sh.Live.Stats()
			var rep *ReplicationStats
			if sh.Log != nil {
				lst := sh.Log.Status()
				rep = &ReplicationStats{
					CheckpointEpoch: lst.Base,
					RetainedRecords: lst.RetainedRecords,
					RetainedBytes:   lst.RetainedBytes,
				}
				if i < len(lags) {
					lag := lags[i]
					rep.PrimaryEpoch = lag.PrimaryEpoch
					rep.EpochsBehind = lag.EpochsBehind
					rep.BytesPending = lag.BytesPending
					rep.Bootstraps = lag.Bootstraps
					rep.SyncErrors = lag.SyncErrors
					rep.LastError = lag.LastError
					rep.Breaker = lag.Breaker
				}
			}
			row.Shards = append(row.Shards, ShardStats{
				Shard:         i,
				DocNodes:      snap.Doc.Len(),
				Epoch:         snap.Epoch,
				IndexPostings: xs.Postings,
				IndexBytes:    xs.ResidentBytes,
				IndexOverlays: xs.Overlays,
				EditBatches:   ls.Batches,
				EditsApplied:  ls.Edits,
				EditLog:       sh.EditLogPath() != "",
				Latency:       histogramStats(sh.lat.Snapshot()),
				Replication:   rep,
			})
			// Dataset-level index and mutation fields aggregate across
			// shards: capacity-style numbers (bytes, postings, nodes,
			// batches) sum; Epoch and overlay depth are per-shard maxima;
			// DistinctPaths and TextKeys are schema-shaped — near-identical
			// across members — so the maximum reads as "the" value.
			row.IndexBuildMs += float64(xs.BuildTime.Microseconds()) / 1e3
			row.IndexBytes += xs.ResidentBytes
			row.IndexPostings += xs.Postings
			row.IndexPostingsBytes += xs.PostingsBytes
			row.IndexPostingsFlatBytes += xs.PostingsFlatBytes
			row.DocNodes += snap.Doc.Len()
			row.EditBatches += ls.Batches
			row.EditsApplied += ls.Edits
			row.IndexPaths = max(row.IndexPaths, xs.DistinctPaths)
			row.IndexTextKeys = max(row.IndexTextKeys, xs.TextKeys)
			row.Epoch = max(row.Epoch, snap.Epoch)
			row.IndexOverlays = max(row.IndexOverlays, xs.Overlays)
		}
		if row.IndexPostingsFlatBytes == 0 {
			row.IndexCompression = 1
		} else {
			row.IndexCompression = float64(row.IndexPostingsBytes) / float64(row.IndexPostingsFlatBytes)
		}
		st.Datasets = append(st.Datasets, row)
	}
	writeJSON(w, http.StatusOK, st)
}
