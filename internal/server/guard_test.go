package server

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBareServer builds just enough Server for middleware unit tests: no
// catalog, no mux — guard and the admission gate don't touch either.
func newBareServer(opts Options) *Server {
	s := &Server{opts: opts, logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	s.stats.init(time.Minute)
	return s
}

func TestGuardRecoversPanic(t *testing.T) {
	s := newBareServer(Options{QueryTimeout: time.Second})
	h := s.guard("test", func(w http.ResponseWriter, r *http.Request) {
		panic("evaluation exploded")
	})
	w := httptest.NewRecorder()
	w.Header().Set("X-Request-Id", "req-123")
	h(w, httptest.NewRequest(http.MethodPost, "/v1/query", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if !strings.Contains(w.Body.String(), "req-123") {
		t.Fatalf("500 body does not carry the request ID: %s", w.Body.String())
	}
	if got := s.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
	if got := s.stats.errors.Load(); got != 1 {
		t.Fatalf("errors counter %d, want 1", got)
	}
}

func TestGuardAppliesDeadline(t *testing.T) {
	s := newBareServer(Options{QueryTimeout: time.Second})
	var hasDeadline bool
	h := s.guard("test", func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/datasets", nil))
	if !hasDeadline {
		t.Fatal("guard did not put a deadline on the request context")
	}

	// Negative disables the server-wide deadline.
	s = newBareServer(Options{QueryTimeout: -1})
	h = s.guard("test", func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
	})
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/datasets", nil))
	if hasDeadline {
		t.Fatal("disabled deadline still set one")
	}
}

func TestAdmissionQueueAndShed(t *testing.T) {
	adm := newAdmission(1, 1)
	release, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if adm.inFlight() != 1 {
		t.Fatalf("inFlight %d, want 1", adm.inFlight())
	}

	// Second request queues; once the queue holds it, a third sheds.
	got := make(chan error, 1)
	var release2 func()
	go func() {
		r2, err := adm.acquire(context.Background())
		release2 = r2
		got <- err
	}()
	waitFor(t, func() bool { return adm.queueDepth() == 1 })
	if _, err := adm.acquire(context.Background()); err != errQueueFull {
		t.Fatalf("third acquire: %v, want errQueueFull", err)
	}

	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	release2()
	if adm.inFlight() != 0 || adm.queueDepth() != 0 {
		t.Fatalf("gate not drained: inFlight=%d queued=%d", adm.inFlight(), adm.queueDepth())
	}
}

func TestAdmissionWaitRespectsContext(t *testing.T) {
	adm := newAdmission(1, 4)
	release, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := adm.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("acquire under expired deadline: %v", err)
	}
	if adm.queueDepth() != 0 {
		t.Fatalf("abandoned waiter left queue depth %d", adm.queueDepth())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
