package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/obs"
	"xmatch/internal/store"
)

// Workload intelligence: the server keys every /v1/query by its
// fingerprint (engine.FingerprintPattern over the prepared query's
// canonical pattern), keeps windowed per-fingerprint accounting for
// /v1/debug/workload and /metricsz, and — when capture is enabled —
// appends a sampled record of each request to a disk-budgeted binary log
// that `xmatch workload replay` re-runs and byte-diffs. Batch queries
// are deliberately out of scope: a batch is a transport optimization,
// and its member queries would need per-member latency attribution the
// engine's fan-out does not expose; the query endpoint is where the
// workload's shape lives.

// fpStat is one fingerprint's accounting. Counters are guarded by the
// owning workloadStats mutex; the latency histogram has its own.
type fpStat struct {
	fingerprint uint64
	dataset     string
	pattern     string // canonical rendering
	mode        string
	k           int

	requests    uint64
	prepareHits uint64 // prepared-query cache hits
	resultItems uint64 // sum of len(results), for the mean result size
	lastEpoch   uint64
	lat         *obs.Windowed
}

// workloadStats is the bounded per-fingerprint table. Past the cap the
// fingerprint with the fewest requests is evicted — the table keeps the
// head of the workload distribution, which for the skewed workloads the
// paper's Table III models is the part worth watching.
type workloadStats struct {
	mu      sync.Mutex
	byFP    map[uint64]*fpStat
	cap     int
	window  time.Duration
	evicted uint64
}

func newWorkloadStats(cap int, window time.Duration) *workloadStats {
	if cap < 1 {
		cap = 1
	}
	return &workloadStats{byFP: make(map[uint64]*fpStat), cap: cap, window: window}
}

func (ws *workloadStats) record(fp uint64, dataset, pattern, mode string, k int, prepareHit bool, results int, epoch uint64, latency time.Duration) {
	ws.mu.Lock()
	st := ws.byFP[fp]
	if st == nil {
		if len(ws.byFP) >= ws.cap {
			ws.evictLocked()
		}
		st = &fpStat{
			fingerprint: fp,
			dataset:     dataset,
			pattern:     pattern,
			mode:        mode,
			k:           k,
			lat:         obs.NewWindowed(nil, ws.window, windowSlots),
		}
		ws.byFP[fp] = st
	}
	st.requests++
	if prepareHit {
		st.prepareHits++
	}
	st.resultItems += uint64(results)
	if epoch > st.lastEpoch {
		st.lastEpoch = epoch
	}
	lat := st.lat
	ws.mu.Unlock()
	lat.Observe(latency)
}

// evictLocked drops the rarest fingerprint to make room for a new one.
func (ws *workloadStats) evictLocked() {
	var victim uint64
	min := ^uint64(0)
	for fp, st := range ws.byFP {
		if st.requests < min {
			min = st.requests
			victim = fp
		}
	}
	delete(ws.byFP, victim)
	ws.evicted++
}

// WorkloadEntry is one fingerprint's row in the /v1/debug/workload
// payload, hottest first. Quantiles are over the sliding window; the
// counters are lifetime (since the fingerprint entered the table).
type WorkloadEntry struct {
	Fingerprint string  `json:"fingerprint"` // %016x
	Dataset     string  `json:"dataset"`
	Pattern     string  `json:"pattern"`
	Mode        string  `json:"mode"`
	K           int     `json:"k,omitempty"`
	Requests    uint64  `json:"requests"`
	PrepareHits uint64  `json:"prepareHits"`
	AvgResults  float64 `json:"avgResults"`
	LastEpoch   uint64  `json:"lastEpoch"`

	WindowRequests uint64  `json:"windowRequests"`
	P50Ms          float64 `json:"p50Ms"`
	P95Ms          float64 `json:"p95Ms"`
	P99Ms          float64 `json:"p99Ms"`
}

// top returns the n hottest fingerprints by lifetime request count. The
// counters are copied under the mutex — sorting and windowed-quantile
// work (which takes each histogram's own lock) runs on the snapshots, so
// a scrape never holds up the query path.
func (ws *workloadStats) top(n int) []WorkloadEntry {
	ws.mu.Lock()
	stats := make([]fpStat, 0, len(ws.byFP))
	for _, st := range ws.byFP {
		stats = append(stats, *st)
	}
	ws.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].requests != stats[j].requests {
			return stats[i].requests > stats[j].requests
		}
		return stats[i].fingerprint < stats[j].fingerprint
	})
	if n > 0 && len(stats) > n {
		stats = stats[:n]
	}
	out := make([]WorkloadEntry, len(stats))
	for i, st := range stats {
		win := st.lat.Window()
		e := WorkloadEntry{
			Fingerprint:    fmt.Sprintf("%016x", st.fingerprint),
			Dataset:        st.dataset,
			Pattern:        st.pattern,
			Mode:           st.mode,
			K:              st.k,
			Requests:       st.requests,
			PrepareHits:    st.prepareHits,
			LastEpoch:      st.lastEpoch,
			WindowRequests: win.Count,
			P50Ms:          win.Quantile(0.50),
			P95Ms:          win.Quantile(0.95),
			P99Ms:          win.Quantile(0.99),
		}
		if st.requests > 0 {
			e.AvgResults = float64(st.resultItems) / float64(st.requests)
		}
		out[i] = e
	}
	return out
}

// size reports (tracked fingerprints, evictions) for the metrics
// collector.
func (ws *workloadStats) size() (int, uint64) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.byFP), ws.evicted
}

// WorkloadDebug is the /v1/debug/workload payload.
type WorkloadDebug struct {
	Fingerprints int             `json:"fingerprints"`
	Evicted      uint64          `json:"evicted"`
	Capture      *CaptureStatus  `json:"capture,omitempty"`
	Entries      []WorkloadEntry `json:"entries"`
}

func (s *Server) handleDebugWorkload(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			s.fail(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = parsed
	}
	tracked, evicted := s.workload.size()
	body := WorkloadDebug{
		Fingerprints: tracked,
		Evicted:      evicted,
		Entries:      s.workload.top(n),
	}
	if s.capture != nil {
		st := s.capture.status()
		body.Capture = &st
	}
	writeJSON(w, http.StatusOK, body)
}

// CaptureStatus describes the capture log's progress.
type CaptureStatus struct {
	Path         string `json:"path"`
	SampleN      int    `json:"sampleN"`
	Records      uint64 `json:"records"`
	BytesWritten int64  `json:"bytesWritten"`
	BudgetBytes  int64  `json:"budgetBytes"`
	SampledOut   uint64 `json:"sampledOut"`
	DroppedOver  uint64 `json:"droppedOverBudget"`
	// Disabled is set after a write error permanently stopped the log.
	Disabled bool `json:"disabled,omitempty"`
}

// captureLog appends sampled workload records to a store-framed file.
// All state lives under one mutex — an append is a short buffered write,
// and captures are sampled, so the serialization is not a hot lock.
type captureLog struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	sampleN int
	budget  int64
	written int64

	seq        uint64 // requests offered, sampled or not
	records    uint64
	sampledOut uint64
	dropped    uint64 // over budget

	// Every profileEvery captured records the selectivity-profile sidecar
	// at path+".profiles" is rewritten (atomically) from the live
	// catalog, so a capture shipped elsewhere carries the observed
	// per-path funnel of the serving period that produced it.
	profileEvery int
	sinceProfile int
	profiles     func() []store.ProfileEntry
	logger       *slog.Logger
}

func newCaptureLog(path string, sampleN int, budget int64, profiles func() []store.ProfileEntry, logger *slog.Logger) (*captureLog, error) {
	if sampleN < 1 {
		sampleN = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := store.CreateWorkload(f, sampleN); err != nil {
		f.Close()
		return nil, err
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &captureLog{
		f:            f,
		path:         path,
		sampleN:      sampleN,
		budget:       budget,
		written:      off,
		profileEvery: 64,
		profiles:     profiles,
		logger:       logger,
	}, nil
}

// record offers one request to the log. The record is built lazily so a
// sampled-out request never pays for its result digest. Nil-safe:
// capture disabled means a nil *captureLog.
func (c *captureLog) record(mk func() store.WorkloadRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	if c.sampleN > 1 && (c.seq-1)%uint64(c.sampleN) != 0 {
		c.sampledOut++
		return
	}
	if c.f == nil {
		return
	}
	if c.written >= c.budget {
		if c.dropped == 0 {
			c.logger.Warn("workload capture budget exhausted; further records dropped",
				"path", c.path, "budgetBytes", c.budget, "records", c.records)
		}
		c.dropped++
		return
	}
	n, err := store.AppendWorkloadRecord(c.f, mk())
	c.written += int64(n)
	if err != nil {
		c.logger.Error("workload capture write failed; capture disabled", "path", c.path, "err", err)
		c.f.Close()
		c.f = nil
		return
	}
	c.records++
	c.sinceProfile++
	if c.sinceProfile >= c.profileEvery {
		c.sinceProfile = 0
		c.writeProfilesLocked()
	}
}

func (c *captureLog) writeProfilesLocked() {
	if c.profiles == nil {
		return
	}
	if err := store.WriteProfilesFile(c.path+".profiles", c.profiles()); err != nil {
		c.logger.Warn("selectivity profile sidecar write failed", "path", c.path+".profiles", "err", err)
	}
}

func (c *captureLog) status() CaptureStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CaptureStatus{
		Path:         c.path,
		SampleN:      c.sampleN,
		Records:      c.records,
		BytesWritten: c.written,
		BudgetBytes:  c.budget,
		SampledOut:   c.sampledOut,
		DroppedOver:  c.dropped,
		Disabled:     c.f == nil,
	}
}

// close flushes a final profile sidecar and closes the file.
func (c *captureLog) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	if c.records > 0 {
		c.writeProfilesLocked()
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// captureProfiles walks the live catalog and flattens every shard's
// observed per-path funnel into the sidecar's entry rows.
func (s *Server) captureProfiles() []store.ProfileEntry {
	var out []store.ProfileEntry
	for _, d := range s.Catalog().Datasets() {
		for i, sh := range d.Shards() {
			for _, pp := range sh.Live.Snapshot().Index.PathProfiles() {
				out = append(out, store.ProfileEntry{
					Dataset:         d.Name,
					Shard:           i,
					Path:            pp.Path,
					Evals:           pp.Evals,
					Candidates:      pp.Candidates,
					UsefulSurvivors: pp.UsefulSurvivors,
					ReachSurvivors:  pp.ReachSurvivors,
				})
			}
		}
	}
	return out
}

// DigestResults is the canonical hash of a query response's payload: FNV-64a
// over the JSON encodings of the wire results and answers. Both the capture
// path (hashing structs about to be marshaled) and the replay paths (hashing
// structs just unmarshaled) go through this one function, and encoding/json
// round-trips these types byte-stably (shortest-form floats, ordered
// structs), so equal digests mean byte-equal payloads.
func DigestResults(results []core.WireResult, answers []core.WireAnswer) uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	// Encoding []WireResult / []WireAnswer cannot fail.
	_ = enc.Encode(results)
	_ = enc.Encode(answers)
	return h.Sum64()
}

// ReplayRunner re-runs one captured record and returns the digest of the
// response it observed.
type ReplayRunner func(rec store.WorkloadRecord) (uint64, error)

// ReplayDiff is one record whose replay did not reproduce the captured
// digest (or failed outright).
type ReplayDiff struct {
	Index       int    `json:"index"`
	Fingerprint string `json:"fingerprint"`
	Dataset     string `json:"dataset"`
	Pattern     string `json:"pattern"`
	Mode        string `json:"mode"`
	K           int    `json:"k,omitempty"`
	Want        string `json:"want"` // captured digest, %016x
	Got         string `json:"got,omitempty"`
	Err         string `json:"err,omitempty"`
}

// ReplayReport summarizes a workload replay.
type ReplayReport struct {
	Total   int          `json:"total"`
	Matched int          `json:"matched"`
	Diffs   []ReplayDiff `json:"diffs,omitempty"`
}

// ReplayWorkload re-runs every captured record through the runner and
// byte-diffs the result digests. A replay is meaningful against a state
// at least at each record's epoch: runners pass the captured epoch as
// min_epoch, so a lagging target waits (or 412s, surfacing as a diff)
// rather than silently diffing against stale state.
func ReplayWorkload(recs []store.WorkloadRecord, run ReplayRunner) ReplayReport {
	rep := ReplayReport{Total: len(recs)}
	for i, rec := range recs {
		got, err := run(rec)
		if err == nil && got == rec.Digest {
			rep.Matched++
			continue
		}
		diff := ReplayDiff{
			Index:       i,
			Fingerprint: fmt.Sprintf("%016x", rec.Fingerprint),
			Dataset:     rec.Dataset,
			Pattern:     rec.Pattern,
			Mode:        rec.Mode,
			K:           rec.K,
			Want:        fmt.Sprintf("%016x", rec.Digest),
		}
		if err != nil {
			diff.Err = err.Error()
		} else {
			diff.Got = fmt.Sprintf("%016x", got)
		}
		rep.Diffs = append(rep.Diffs, diff)
	}
	return rep
}

// replayRequest is the query a captured record replays as.
func replayRequest(rec store.WorkloadRecord) QueryRequest {
	return QueryRequest{
		Dataset:  rec.Dataset,
		Pattern:  rec.Pattern,
		Mode:     rec.Mode,
		K:        rec.K,
		MinEpoch: rec.Epoch,
	}
}

// digestResponse decodes a query response body and digests its payload
// exactly as the serving path did.
func digestResponse(body []byte) (uint64, error) {
	var resp QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return 0, fmt.Errorf("decode response: %w", err)
	}
	return DigestResults(resp.Results, resp.Answers), nil
}

// HandlerReplayRunner replays records through an in-process handler
// (normally a *Server): the request travels the full HTTP path — mux,
// middleware, JSON round-trip — so a local replay exercises exactly what
// a remote one does, minus the socket.
func HandlerReplayRunner(h http.Handler) ReplayRunner {
	return func(rec store.WorkloadRecord) (uint64, error) {
		body, err := json.Marshal(replayRequest(rec))
		if err != nil {
			return 0, err
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			return 0, fmt.Errorf("status %d: %s", w.Code, bytes.TrimSpace(w.Body.Bytes()))
		}
		return digestResponse(w.Body.Bytes())
	}
}

// RemoteReplayRunner replays records against a live daemon at base
// (e.g. "http://localhost:8080"). client nil means http.DefaultClient.
func RemoteReplayRunner(base string, client *http.Client) ReplayRunner {
	if client == nil {
		client = http.DefaultClient
	}
	return func(rec store.WorkloadRecord) (uint64, error) {
		body, err := json.Marshal(replayRequest(rec))
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(buf.Bytes()))
		}
		return digestResponse(buf.Bytes())
	}
}
