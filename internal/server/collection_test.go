package server_test

// Cross-shard differential suite over the wire: a catalog entry with
// Shards > 1 is served by scatter-gather across member documents, and
// every /v1/query and /v1/batch response must decode byte-identically to
// sequential core evaluation over the members' concatenation
// (xmltree.Corpus) — the collection is indistinguishable from one big
// document on the wire. Plus shard-addressed mutation routing and the
// per-shard observability surface.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

const collShards = 3

// shardedEnv serves one sharded D7 collection next to a classic
// single-document one built from the same workload, so tests can also
// assert the two agree.
type shardedEnv struct {
	ts  *httptest.Server
	srv *server.Server
	ds  *server.Dataset // the sharded collection
}

func newShardedEnv(t *testing.T, opts server.Options) *shardedEnv {
	t.Helper()
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "corpus", Dataset: "D7", Mappings: 20, DocNodes: 2400, DocSeed: 7, Shards: collShards},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, ".", engine.Options{Workers: 4})
	}
	srv, err := server.New(loader, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	ds := srv.Catalog().Get("corpus")
	if ds == nil || ds.NumShards() != collShards {
		t.Fatalf("sharded dataset not built: %+v", ds)
	}
	return &shardedEnv{ts: ts, srv: srv, ds: ds}
}

// corpusOracle assembles the current shard snapshots into the
// single-document corpus the differential assertions evaluate against.
func corpusOracle(t *testing.T, ds *server.Dataset) *xmltree.Document {
	t.Helper()
	var members []*xmltree.Document
	for _, sh := range ds.Shards() {
		members = append(members, sh.Live.Snapshot().Doc)
	}
	corpus, err := xmltree.Corpus(members...)
	if err != nil {
		t.Fatalf("assembling corpus oracle: %v", err)
	}
	return corpus
}

// corpusWire evaluates a query sequentially over the corpus oracle and
// returns the JSON its results and answers must serve as.
func corpusWire(t *testing.T, ds *server.Dataset, corpus *xmltree.Document, pattern, mode string, k int) (results, answers []byte) {
	t.Helper()
	q, err := core.PrepareQuery(pattern, ds.Set)
	if err != nil {
		t.Fatalf("%q: %v", pattern, err)
	}
	var rs []core.Result
	switch mode {
	case "basic":
		rs = core.EvaluateBasic(q, ds.Set, corpus)
	case "compact":
		rs = core.Evaluate(q, ds.Set, corpus, ds.Tree)
	case "topk":
		rs = core.EvaluateTopK(q, ds.Set, corpus, ds.Tree, k)
	default:
		t.Fatalf("bad mode %q", mode)
	}
	results, err = json.Marshal(core.ToWire(rs))
	if err != nil {
		t.Fatal(err)
	}
	answers, err = json.Marshal(core.AnswersToWire(core.AggregateLeaf(q, rs)))
	if err != nil {
		t.Fatal(err)
	}
	return results, answers
}

func assertQueryMatchesCorpus(t *testing.T, env *shardedEnv, corpus *xmltree.Document, pattern string, mk struct {
	mode string
	k    int
}) {
	t.Helper()
	wantResults, wantAnswers := corpusWire(t, env.ds, corpus, pattern, mk.mode, mk.k)
	resp, body := postJSON(t, env.ts.URL+"/v1/query",
		server.QueryRequest{Dataset: "corpus", Pattern: pattern, Mode: mk.mode, K: mk.k})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%q %s/%d: status %d: %s", pattern, mk.mode, mk.k, resp.StatusCode, body)
	}
	var got rawQueryResp
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	label := fmt.Sprintf("%q %s/%d", pattern, mk.mode, mk.k)
	if !bytes.Equal(got.Results, wantResults) {
		t.Errorf("%s: results differ from sequential core over the corpus:\ngot  %s\nwant %s", label, got.Results, wantResults)
	}
	if !bytes.Equal(got.Answers, wantAnswers) {
		t.Errorf("%s: answers differ from sequential core over the corpus:\ngot  %s\nwant %s", label, got.Answers, wantAnswers)
	}
}

// TestCollectionDifferentialOverTheWire is the tentpole acceptance matrix:
// every Table III query under every mode/k, served scatter-gather,
// byte-identical to one-document evaluation of the concatenated corpus.
func TestCollectionDifferentialOverTheWire(t *testing.T) {
	env := newShardedEnv(t, server.Options{})
	corpus := corpusOracle(t, env.ds)
	for _, spec := range dataset.Queries() {
		for _, mk := range modeMatrix {
			assertQueryMatchesCorpus(t, env, corpus, spec.Text, mk)
		}
	}
}

// TestCollectionBatchDifferential fans the whole query list into /v1/batch
// against the sharded collection and checks every slot against the corpus.
func TestCollectionBatchDifferential(t *testing.T) {
	env := newShardedEnv(t, server.Options{})
	corpus := corpusOracle(t, env.ds)
	for _, k := range []int{0, 2} {
		var breq server.BatchRequest
		breq.Dataset = "corpus"
		for _, spec := range dataset.Queries() {
			breq.Queries = append(breq.Queries, server.BatchQuery{Pattern: spec.Text, K: k})
		}
		resp, body := postJSON(t, env.ts.URL+"/v1/batch", breq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: status %d: %s", k, resp.StatusCode, body)
		}
		var got rawBatchResp
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Responses) != len(dataset.Queries()) {
			t.Fatalf("k=%d: %d responses", k, len(got.Responses))
		}
		for i, spec := range dataset.Queries() {
			mode := "compact"
			if k > 0 {
				mode = "topk"
			}
			wantResults, wantAnswers := corpusWire(t, env.ds, corpus, spec.Text, mode, k)
			slot := got.Responses[i]
			if slot.Error != "" {
				t.Fatalf("k=%d %s: error %q", k, spec.ID, slot.Error)
			}
			if !bytes.Equal(slot.Results, wantResults) || !bytes.Equal(slot.Answers, wantAnswers) {
				t.Errorf("k=%d %s: batch slot differs from sequential core over the corpus", k, spec.ID)
			}
		}
	}
}

// TestCollectionMutateShardRouting: a shard-addressed mutation lands on
// exactly that member document, the other shards stay pristine, and the
// differential guarantee holds over the mutated corpus. Out-of-range
// shards are client errors that touch nothing.
func TestCollectionMutateShardRouting(t *testing.T) {
	env := newShardedEnv(t, server.Options{})

	// Pick a resolvable leaf path on shard 1's document.
	shard1Doc := env.ds.Shards()[1].Live.Snapshot().Doc
	var path string
	for _, p := range shard1Doc.Paths() {
		if ns := shard1Doc.NodesByPath(p); len(ns) > 0 && len(ns[0].Children) == 0 {
			path = p
			break
		}
	}
	if path == "" {
		t.Fatal("no leaf path on shard 1")
	}

	resp, body := postJSON(t, env.ts.URL+"/v1/admin/mutate", server.MutateRequest{
		Dataset: "corpus",
		Shard:   1,
		Edits:   []delta.Edit{{Op: delta.OpSetText, Path: path, Ordinal: 0, Text: "sharded-mutation"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate shard 1: status %d: %s", resp.StatusCode, body)
	}
	var mr server.MutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Shard != 1 || mr.Epoch != 1 {
		t.Fatalf("mutate response %+v", mr)
	}
	for i, sh := range env.ds.Shards() {
		want := uint64(0)
		if i == 1 {
			want = 1
		}
		if got := sh.Live.Snapshot().Epoch; got != want {
			t.Fatalf("shard %d epoch %d, want %d", i, got, want)
		}
	}
	if got := env.ds.Shards()[1].Live.Snapshot().Doc.NodesByPath(path)[0].Text; got != "sharded-mutation" {
		t.Fatalf("shard 1 text %q after mutate", got)
	}

	// The differential guarantee holds over the mutated corpus.
	corpus := corpusOracle(t, env.ds)
	for _, mk := range modeMatrix {
		assertQueryMatchesCorpus(t, env, corpus, dataset.Queries()[0].Text, mk)
	}

	// Out-of-range shard addressing is rejected without touching state.
	for _, shard := range []int{-1, collShards} {
		resp, _ := postJSON(t, env.ts.URL+"/v1/admin/mutate", server.MutateRequest{
			Dataset: "corpus",
			Shard:   shard,
			Edits:   []delta.Edit{{Op: delta.OpSetText, Path: path, Text: "x"}},
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("shard %d: status %d, want 400", shard, resp.StatusCode)
		}
	}
}

// TestCollectionObservability: /v1/datasets reports the shard count and
// summed node totals, and /statsz carries one row per shard whose latency
// histograms fill as scatter-gather queries run.
func TestCollectionObservability(t *testing.T) {
	env := newShardedEnv(t, server.Options{})

	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, env.ts.URL+"/v1/query",
			server.QueryRequest{Dataset: "corpus", Pattern: dataset.Queries()[0].Text})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}

	dresp, dbody := getBody(t, env.ts.URL+"/v1/datasets")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", dresp.StatusCode)
	}
	var dl struct {
		Datasets []server.DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(dbody, &dl); err != nil {
		t.Fatal(err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Shards != collShards {
		t.Fatalf("dataset listing %+v", dl.Datasets)
	}
	var wantNodes int
	for _, sh := range env.ds.Shards() {
		wantNodes += sh.Live.Snapshot().Doc.Len()
	}
	if dl.Datasets[0].DocNodes != wantNodes {
		t.Fatalf("DocNodes %d, want summed %d", dl.Datasets[0].DocNodes, wantNodes)
	}

	sresp, sbody := getBody(t, env.ts.URL+"/statsz")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", sresp.StatusCode)
	}
	var st server.Stats
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Datasets) != 1 {
		t.Fatalf("statsz datasets %+v", st.Datasets)
	}
	row := st.Datasets[0]
	if len(row.Shards) != collShards {
		t.Fatalf("%d shard rows, want %d", len(row.Shards), collShards)
	}
	var postings, nodes int
	for i, sr := range row.Shards {
		if sr.Shard != i {
			t.Fatalf("shard row %d labelled %d", i, sr.Shard)
		}
		if sr.IndexPostings != sr.DocNodes {
			t.Errorf("shard %d: %d postings over %d nodes", i, sr.IndexPostings, sr.DocNodes)
		}
		if sr.Latency.Count == 0 {
			t.Errorf("shard %d: latency histogram empty after scatter-gather queries", i)
		}
		postings += sr.IndexPostings
		nodes += sr.DocNodes
	}
	if row.IndexPostings != postings || row.DocNodes != nodes {
		t.Fatalf("aggregates postings=%d nodes=%d, want %d/%d", row.IndexPostings, row.DocNodes, postings, nodes)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
