package server_test

// The server write path: /v1/admin/mutate semantics over the wire,
// edit-log persistence across catalog reloads, and the live-mutation
// consistency guarantee — queries racing mutations always see one whole
// snapshot, and post-mutation answers are byte-identical to sequential
// evaluation over the mutated document. Run under -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/server"
	"xmatch/internal/store"
)

// mutateBody posts one mutate request and decodes the response.
func mutateBody(t *testing.T, url string, req server.MutateRequest) (*http.Response, server.MutateResponse, string) {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/admin/mutate", req)
	var mr server.MutateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &mr); err != nil {
			t.Fatalf("decoding mutate response: %v (%s)", err, raw)
		}
		return resp, mr, ""
	}
	var er struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(raw, &er)
	return resp, mr, er.Error
}

func TestMutateEndpoint(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	ds := env.fixtures[0].ds

	// Pick a text-bearing node of the orders document.
	var path string
	for _, p := range ds.Doc().Paths() {
		ns := ds.Doc().NodesByPath(p)
		if len(ns) > 0 && ns[0].Text != "" {
			path = p
			break
		}
	}
	if path == "" {
		t.Fatal("no text node in fixture document")
	}

	resp, mr, _ := mutateBody(t, env.ts.URL, server.MutateRequest{
		Dataset: "orders",
		Edits: []delta.Edit{
			{Op: delta.OpSetText, Path: path, Ordinal: 0, Text: "mutated-value"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}
	if mr.Epoch != 1 || mr.Applied != 1 || mr.Persisted {
		t.Fatalf("mutate response %+v", mr)
	}
	if got := ds.Doc().NodesByPath(path)[0].Text; got != "mutated-value" {
		t.Fatalf("document text %q after mutate", got)
	}

	// The dataset listing and statsz reflect the new epoch.
	dresp, raw := getJSON(t, env.ts.URL+"/v1/datasets")
	if dresp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"epoch":1`) {
		t.Fatalf("datasets after mutate: %d %s", dresp.StatusCode, raw)
	}
	sresp, raw := getJSON(t, env.ts.URL+"/statsz")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", sresp.StatusCode)
	}
	var st server.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mutations != 1 || st.Edits != 1 {
		t.Fatalf("statsz mutations=%d edits=%d", st.Mutations, st.Edits)
	}
	var row *server.DatasetStats
	for i := range st.Datasets {
		if st.Datasets[i].Name == "orders" {
			row = &st.Datasets[i]
		}
	}
	if row == nil || row.Epoch != 1 || row.EditBatches != 1 || row.EditsApplied != 1 || row.EditLog {
		t.Fatalf("orders statsz row %+v", row)
	}
	if _, ok := st.Latency["mutate"]; !ok {
		t.Fatal("statsz lacks mutate latency histogram")
	}

	// Error paths: unknown dataset, empty batch, oversized batch, bad
	// edit shape, unresolvable target. Each leaves the epoch untouched.
	errCases := []struct {
		name string
		req  server.MutateRequest
		code int
	}{
		{"unknown dataset", server.MutateRequest{Dataset: "nope", Edits: []delta.Edit{{Op: delta.OpDelete, Path: "x"}}}, http.StatusNotFound},
		{"empty batch", server.MutateRequest{Dataset: "orders"}, http.StatusBadRequest},
		{"bad shape", server.MutateRequest{Dataset: "orders", Edits: []delta.Edit{{Op: "zap", Path: "x"}}}, http.StatusBadRequest},
		{"unresolvable", server.MutateRequest{Dataset: "orders", Edits: []delta.Edit{{Op: delta.OpDelete, Path: "no.such.path"}}}, http.StatusBadRequest},
	}
	for _, tc := range errCases {
		resp, _, msg := mutateBody(t, env.ts.URL, tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, msg, tc.code)
		}
	}
	if ds.Snapshot().Epoch != 1 {
		t.Fatalf("failed mutations advanced the epoch to %d", ds.Snapshot().Epoch)
	}

	// Oversized batch.
	big := server.MutateRequest{Dataset: "orders"}
	for i := 0; i < 300; i++ {
		big.Edits = append(big.Edits, delta.Edit{Op: delta.OpSetText, Path: path, Text: "x"})
	}
	if resp, _, _ := mutateBody(t, env.ts.URL, big); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d", resp.StatusCode)
	}
}

// TestMutateThenQueryDifferential: after a mutation, every wire mode must
// answer byte-identically to sequential core evaluation over the mutated
// snapshot — the PR-3 differential guarantee extended to live documents.
func TestMutateThenQueryDifferential(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[0]

	// Rename-free structural mutation: insert one subtree, delete another,
	// all under a snapshot the queries will then be checked against.
	doc := f.ds.Doc()
	paths := doc.Paths()
	deletePath := paths[len(paths)-1] // deepest in sort order; never the root
	edits := []delta.Edit{
		{Op: delta.OpInsert, Path: doc.Root.Path, Pos: -1, XML: "<Annex><Note>added</Note></Annex>"},
		{Op: delta.OpDelete, Path: deletePath, Ordinal: 0},
	}
	resp, mr, msg := mutateBody(t, env.ts.URL, server.MutateRequest{Dataset: f.name, Edits: edits})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, msg)
	}
	if mr.Epoch != 1 {
		t.Fatalf("epoch %d", mr.Epoch)
	}

	snap := f.ds.Snapshot()
	for _, pattern := range f.queries[:4] {
		for _, mode := range []string{"basic", "compact", "topk"} {
			k := 0
			if mode == "topk" {
				k = 3
			}
			resp, raw := postJSON(t, env.ts.URL+"/v1/query", server.QueryRequest{
				Dataset: f.name, Pattern: pattern, Mode: mode, K: k,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", pattern, mode, resp.StatusCode, raw)
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatal(err)
			}
			q, err := core.PrepareQuery(pattern, f.ds.Set)
			if err != nil {
				t.Fatal(err)
			}
			var want []core.Result
			switch mode {
			case "basic":
				want = core.EvaluateBasic(q, f.ds.Set, snap.Doc)
			case "compact":
				want = core.Evaluate(q, f.ds.Set, snap.Doc, f.ds.Tree)
			case "topk":
				want = core.EvaluateTopK(q, f.ds.Set, snap.Doc, f.ds.Tree, k)
			}
			wantJSON, _ := json.Marshal(core.ToWire(want))
			gotJSON, _ := json.Marshal(qr.Results)
			if string(wantJSON) != string(gotJSON) {
				t.Fatalf("%s %s: wire results diverged from sequential evaluation over the mutated snapshot", pattern, mode)
			}
			wantAns, _ := json.Marshal(core.AnswersToWire(core.AggregateLeaf(q, want)))
			gotAns, _ := json.Marshal(qr.Answers)
			if string(wantAns) != string(gotAns) {
				t.Fatalf("%s %s: aggregated answers diverged", pattern, mode)
			}
		}
	}
}

// TestMutatePersistenceAcrossReload: with an EditLogPath in the manifest,
// mutations survive /v1/admin/reload by replay, and a dataset without a
// log reverts to pristine.
func TestMutatePersistenceAcrossReload(t *testing.T) {
	dir := t.TempDir()
	man := &store.Catalog{Entries: []store.CatalogEntry{
		{Name: "durable", Dataset: "D1", Mappings: 8, DocNodes: 200, DocSeed: 3, EditLogPath: "durable.editlog"},
		{Name: "volatile", Dataset: "D1", Mappings: 8, DocNodes: 200, DocSeed: 3},
	}}
	loader := func() (*server.Catalog, error) {
		return server.BuildCatalog(man, dir, engine.Options{Workers: 2})
	}
	srv, err := server.New(loader, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applyOne := func(name string) server.MutateResponse {
		t.Helper()
		doc := srv.Catalog().Get(name).Doc()
		var path string
		for _, p := range doc.Paths() {
			if ns := doc.NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
				path = p
				break
			}
		}
		body, _ := json.Marshal(server.MutateRequest{Dataset: name, Edits: []delta.Edit{
			{Op: delta.OpSetText, Path: path, Text: "persisted!"},
			{Op: delta.OpInsert, Path: doc.Root.Path, Pos: 0, XML: "<Audit>yes</Audit>"},
		}})
		req := httptest.NewRequest(http.MethodPost, "/v1/admin/mutate", strings.NewReader(string(body)))
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("mutate %s: %d %s", name, rw.Code, rw.Body.String())
		}
		var mr server.MutateResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &mr); err != nil {
			t.Fatal(err)
		}
		return mr
	}

	mr := applyOne("durable")
	if !mr.Persisted {
		t.Fatal("durable dataset reported unpersisted mutation")
	}
	if mr2 := applyOne("volatile"); mr2.Persisted {
		t.Fatal("volatile dataset reported persisted mutation")
	}
	if _, err := os.Stat(filepath.Join(dir, "durable.editlog")); err != nil {
		t.Fatalf("edit log missing: %v", err)
	}
	durableXML := srv.Catalog().Get("durable").Doc().String()

	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	dAfter := srv.Catalog().Get("durable")
	vAfter := srv.Catalog().Get("volatile")
	if dAfter.Snapshot().Epoch != 1 {
		t.Fatalf("durable epoch %d after reload, want 1 (replayed)", dAfter.Snapshot().Epoch)
	}
	if got := dAfter.Doc().String(); got != durableXML {
		t.Fatal("durable document did not replay to its mutated state")
	}
	if vAfter.Snapshot().Epoch != 0 {
		t.Fatalf("volatile epoch %d after reload, want 0 (pristine)", vAfter.Snapshot().Epoch)
	}
	// The replayed index equals a fresh build (spot check via stats).
	if dAfter.Index().Stats().Postings != dAfter.Doc().Len() {
		t.Fatal("replayed index postings disagree with document size")
	}

	// A second mutation after reload appends to the same log and replays
	// again.
	applyOne("durable")
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Catalog().Get("durable").Snapshot().Epoch; got != 2 {
		t.Fatalf("epoch %d after second reload, want 2", got)
	}
}

// TestConcurrentMutationsAndQueries hammers one dataset with concurrent
// writers and readers. Every response must be internally consistent (a
// whole snapshot: results decode and agree with the response's own
// epoch-consistent document), every mutation must land exactly once
// (epochs are dense), and the run must be race-clean under -race.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	env := newTestEnv(t, server.Options{})
	f := env.fixtures[1] // the small dataset keeps this quick
	pattern := f.queries[0]

	var wg sync.WaitGroup
	const writers, readers, rounds = 3, 4, 12
	errs := make(chan error, writers+readers)

	doc := f.ds.Doc()
	var textPath string
	for _, p := range doc.Paths() {
		if ns := doc.NodesByPath(p); len(ns) > 0 && ns[0].Text != "" {
			textPath = p
			break
		}
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				body, _ := json.Marshal(server.MutateRequest{Dataset: f.name, Edits: []delta.Edit{
					{Op: delta.OpSetText, Path: textPath, Text: fmt.Sprintf("w%d-r%d", w, r)},
				}})
				resp, err := http.Post(env.ts.URL+"/v1/admin/mutate", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("mutate status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				body, _ := json.Marshal(server.QueryRequest{Dataset: f.name, Pattern: pattern})
				resp, err := http.Post(env.ts.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs <- err
					return
				}
				var qr server.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := f.ds.Live.Stats()
	if st.Epoch != writers*rounds || st.Batches != writers*rounds {
		t.Fatalf("epoch %d batches %d, want %d dense", st.Epoch, st.Batches, writers*rounds)
	}
	// The end state still matches a rebuild.
	if f.ds.Index().Stats().Postings != f.ds.Doc().Len() {
		t.Fatal("index postings diverged from document after concurrent mutation")
	}
}
