package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"xmatch/internal/engine"
	"xmatch/internal/replica"
	"xmatch/internal/store"
)

// Replication endpoints. A primary serves three read-side endpoints —
// the manifest a follower builds its catalog from, per-shard edit-log
// streams, and on-demand checkpoint blobs — plus the admin checkpoint
// operation that compacts a shard's log. A follower (NewFollower) is a
// regular Server in read-only mode whose state advances only through the
// replica.Follower sync engine.

// resolveShard looks up a dataset and bounds-checks the shard selector,
// answering the request itself on failure.
func (s *Server) resolveShard(w http.ResponseWriter, dataset string, shard int) (*Dataset, *Shard, bool) {
	ds := s.Catalog().Get(dataset)
	if ds == nil {
		s.fail(w, http.StatusNotFound, "unknown dataset %q", dataset)
		return nil, nil, false
	}
	if shard < 0 || shard >= ds.NumShards() {
		s.fail(w, http.StatusBadRequest, "dataset %q has %d shards, no shard %d", dataset, ds.NumShards(), shard)
		return nil, nil, false
	}
	return ds, ds.Shards()[shard], true
}

// handleReplicateStream ships one shard's retained records above the
// follower's epoch. The 200 body is a literal edit-log blob based at the
// requested epoch — the exact framing the durable log uses on disk — so
// primary, follower, and loader share one codec; the X-Xmatch-Epoch
// header carries the shard's current epoch so the follower knows when it
// has caught up. 409 with the checkpoint epoch means the requested
// history has been compacted away and the follower must bootstrap.
// Method enforcement happens in the timed wrapper these handlers are
// mounted under.
func (s *Server) handleReplicateStream(w http.ResponseWriter, r *http.Request) {
	var req replica.StreamRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	_, sh, ok := s.resolveShard(w, req.Dataset, req.Shard)
	if !ok {
		return
	}
	stream := sh.Log.StreamFrom(req.From)
	if stream.NeedCheckpoint {
		s.stats.errors.Add(1)
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":           fmt.Sprintf("epoch %d predates the retained log (checkpoint at %d): bootstrap from the checkpoint", req.From, stream.CheckpointEpoch),
			"checkpointEpoch": stream.CheckpointEpoch,
		})
		return
	}
	w.Header().Set(replica.EpochHeader, strconv.FormatUint(sh.Live.Snapshot().Epoch, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if err := store.CreateEditLogAt(w, req.From); err != nil {
		return // connection-level failure; the follower re-syncs
	}
	for _, frame := range stream.Frames {
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
}

// handleReplicateCheckpoint serves a checkpoint blob for one shard,
// synthesized from the shard's current snapshot — always available, even
// for volatile shards that never wrote a checkpoint file, and always the
// freshest state, which minimizes the replay after bootstrap.
func (s *Server) handleReplicateCheckpoint(w http.ResponseWriter, r *http.Request) {
	shard := 0
	if v := r.URL.Query().Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad shard %q", v)
			return
		}
		shard = n
	}
	_, sh, ok := s.resolveShard(w, r.URL.Query().Get("dataset"), shard)
	if !ok {
		return
	}
	snap := sh.Live.Snapshot()
	w.Header().Set(replica.EpochHeader, strconv.FormatUint(snap.Epoch, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_ = store.SaveCheckpoint(w, snap.Doc, snap.Index, snap.Epoch)
}

// handleReplicateManifest serves the manifest this server's catalog was
// built from, so a follower can build the same datasets locally.
func (s *Server) handleReplicateManifest(w http.ResponseWriter, r *http.Request) {
	if s.opts.Manifest == nil {
		s.fail(w, http.StatusNotFound, "replication manifest not configured on this server")
		return
	}
	man, err := s.opts.Manifest()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "manifest: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_ = store.SaveCatalog(w, man)
}

// CheckpointRequest is the body of POST /v1/admin/checkpoint: compact
// one dataset's replication logs.
type CheckpointRequest struct {
	Dataset string `json:"dataset"`
}

// CheckpointShardResult is one shard's row of a CheckpointResponse.
type CheckpointShardResult struct {
	Shard int `json:"shard"`
	// Epoch is the checkpoint's epoch; followers further behind will
	// bootstrap from it.
	Epoch uint64 `json:"epoch"`
	// FreedBytes is the retained-log volume the checkpoint compacted.
	FreedBytes int64 `json:"freedBytes"`
	// Durable reports a checkpoint blob written to disk (false for a
	// volatile dataset, where the checkpoint only trims retention).
	Durable bool `json:"durable"`
}

// CheckpointResponse is the body of a successful POST /v1/admin/checkpoint.
type CheckpointResponse struct {
	Dataset string                  `json:"dataset"`
	Shards  []CheckpointShardResult `json:"shards"`
}

// handleCheckpoint persists every shard of one dataset at its current
// epoch and truncates the shipped logs. Runs under the reload read-lock:
// a concurrent reload would otherwise rebuild the catalog from files
// this operation is mid-way through replacing.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.readOnly(w) {
		return
	}
	var req CheckpointRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.failBody(w, err)
		return
	}
	s.reloadMu.RLock()
	defer s.reloadMu.RUnlock()
	ds := s.Catalog().Get(req.Dataset)
	if ds == nil {
		s.fail(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	resp := CheckpointResponse{Dataset: req.Dataset}
	for i, sh := range ds.Shards() {
		epoch, freed, err := ds.CheckpointShard(i)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "checkpointing %s shard %d: %v", req.Dataset, i, err)
			return
		}
		resp.Shards = append(resp.Shards, CheckpointShardResult{
			Shard:      i,
			Epoch:      epoch,
			FreedBytes: freed,
			Durable:    sh.Log.Durable(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// FollowerOptions configure NewFollower.
type FollowerOptions struct {
	// Server options for the replica's own HTTP layer; ReadOnly is forced
	// on.
	Server Options
	// Engine options for the locally rebuilt datasets.
	Engine engine.Options
	// HTTP overrides the client used to reach the primary (nil = default
	// with a 30s timeout).
	HTTP *http.Client
	// Fault, when set, is consulted before every primary RPC — the
	// replication fault-injection hook (see internal/fault): a returned
	// error fails the call before it touches the network, exercising the
	// follower's retry/backoff/breaker path deterministically.
	Fault func(op string) error
	// Breaker tunes the follower's per-shard sync circuit breakers; the
	// zero value gets the replica package defaults.
	Breaker replica.BreakerConfig
}

// NewFollower builds a read replica of the primary at the given base
// URL: it fetches the primary's manifest, rebuilds the same datasets
// locally (volatile — durability lives on the primary), performs an
// initial sync, and returns the serving replica plus its sync engine.
// The caller drives ongoing replication, typically follower.Run in a
// goroutine; queries carrying min_epoch additionally nudge a sync
// inline. Only built-in manifest entries replicate — a blob-backed entry
// would need the primary's files shipped, which log shipping does not
// do.
func NewFollower(primary string, fopts FollowerOptions) (*Server, *replica.Follower, error) {
	client := &replica.Client{Base: primary, HTTP: fopts.HTTP, Fault: fopts.Fault}
	loader := func() (*Catalog, error) {
		man, err := client.Manifest()
		if err != nil {
			return nil, err
		}
		for i := range man.Entries {
			e := &man.Entries[i]
			if e.Dataset == "" {
				return nil, fmt.Errorf("server: follow mode requires built-in catalog entries; %q is blob-backed", e.Name)
			}
			// The replica regenerates the pristine dataset and replays the
			// primary's stream over it; it keeps no durable log of its own.
			e.EditLogPath = ""
			e.IndexPath = ""
		}
		return BuildCatalog(man, ".", fopts.Engine)
	}
	sopts := fopts.Server
	sopts.ReadOnly = true
	srv, err := New(loader, sopts)
	if err != nil {
		return nil, nil, err
	}
	f := replica.NewFollower(client)
	f.Logger = srv.logger
	f.BreakerConfig = fopts.Breaker
	// Replays land as structured log lines (debug — they are routine) with
	// enough detail to correlate against the primary's mutate logs; the
	// replay latency histogram lives in the follower itself and reaches
	// /metricsz through its collector.
	f.Observe = func(dataset string, shard int, records int, took time.Duration) {
		srv.logger.Debug("replica replay",
			"dataset", dataset,
			"shard", shard,
			"records", records,
			"ms", float64(took.Microseconds())/1e3)
	}
	srv.follower = f
	srv.wireFollower(srv.Catalog())
	if err := f.SyncAll(); err != nil {
		return nil, nil, fmt.Errorf("server: initial sync from %s: %w", primary, err)
	}
	return srv, f, nil
}

// wireFollower (re)registers every dataset's shards as the follower's
// sync targets — at construction and after each reload.
func (s *Server) wireFollower(cat *Catalog) {
	for _, d := range cat.Datasets() {
		ts := make([]*replica.Target, d.NumShards())
		for i, sh := range d.Shards() {
			ts[i] = &replica.Target{Handle: sh.Live, Log: sh.Log}
		}
		s.follower.SetTargets(d.Name, ts)
	}
}
