package server

import (
	"bytes"
	"net/http"
	"strconv"
	"time"

	"xmatch/internal/index"
	"xmatch/internal/obs"
)

// /metricsz: Prometheus text exposition over the same live state /statsz
// reports, plus every subsystem's own collectors. The registry runs its
// collectors at scrape time against the current catalog, so datasets that
// appear or vanish on reload need no metric lifecycle management — and
// the serving hot paths touch nothing but their existing atomics between
// scrapes.

// newRegistry wires the server's scrape-time collectors: the HTTP layer's
// own counters and latency histograms, the global index-matcher counters,
// per-dataset engine gauges, per-shard delta/replication collectors, and
// the follower's lag accounting when this server is a replica.
func (s *Server) newRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Collect(s.collectServer)
	reg.Collect(s.collectWorkload)
	reg.Collect(index.CollectMetrics)
	reg.Collect(s.collectCatalog)
	reg.Collect(func(e *obs.Exporter) {
		if s.follower != nil {
			s.follower.CollectMetrics(e)
		}
	})
	return reg
}

func (s *Server) collectServer(e *obs.Exporter) {
	e.Gauge("xmatch_uptime_seconds", "Seconds since the server started.", time.Since(s.stats.start).Seconds())
	e.Gauge("xmatch_http_in_flight", "Requests currently being served on the timed endpoints.", float64(s.stats.inFlight.Load()))
	endpoints := []struct {
		name    string
		counter uint64
		lat     *obs.Windowed
	}{
		{"query", s.stats.queries.Load(), s.stats.latQuery},
		{"batch", s.stats.batches.Load(), s.stats.latBatch},
		{"mutate", s.stats.mutates.Load(), s.stats.latMutate},
		{"checkpoint", s.stats.checkpoints.Load(), s.stats.latCheckpoint},
		{"replicate", s.stats.replicates.Load(), s.stats.latReplicate},
	}
	for _, ep := range endpoints {
		label := obs.Label{Name: "endpoint", Value: ep.name}
		e.Counter("xmatch_http_requests_total", "Requests accepted per endpoint.", float64(ep.counter), label)
		e.Histogram("xmatch_http_request_seconds", "Request latency per endpoint.", ep.lat.Snapshot(), label)
		win := ep.lat.Window()
		for _, q := range []struct {
			q float64
			s string
		}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			e.Gauge("xmatch_http_request_window_ms", "Sliding-window latency quantile per endpoint, in milliseconds.",
				win.Quantile(q.q), label, obs.Label{Name: "quantile", Value: q.s})
		}
	}
	e.Counter("xmatch_http_errors_total", "Non-2xx responses across all endpoints.", float64(s.stats.errors.Load()))
	e.Counter("xmatch_requests_timeout", "Requests answered 503 because their deadline fired before the work finished.", float64(s.stats.timeouts.Load()))
	e.Counter("xmatch_requests_shed_total", "Requests answered 429 by the admission gate (queue full).", float64(s.stats.shed.Load()))
	e.Counter("xmatch_http_panics_total", "Handler panics recovered into 500 responses.", float64(s.stats.panics.Load()))
	e.Gauge("xmatch_ready", "Whether /readyz reports ready (0 while draining for shutdown).", boolGauge(s.ready.Load()))
	if s.adm != nil {
		e.Gauge("xmatch_admission_in_flight", "Admitted query/batch evaluations currently holding a slot.", float64(s.adm.inFlight()))
		e.Gauge("xmatch_admission_queue_depth", "Requests currently waiting for an admission slot.", float64(s.adm.queueDepth()))
		e.Histogram("xmatch_admission_wait_seconds", "Time queued requests waited for an admission slot.", s.adm.waitLat.Snapshot())
	}
	e.Counter("xmatch_reloads_total", "Successful catalog reloads.", float64(s.stats.reloads.Load()))
	e.Counter("xmatch_edits_applied_total", "Edits applied through /v1/admin/mutate.", float64(s.stats.edits.Load()))
	finished, sampled := s.traces.Counts()
	e.Counter("xmatch_traces_finished_total", "Requests that finished through the trace middleware.", float64(finished))
	e.Counter("xmatch_traces_sampled_total", "Traces retained by the slow-query tail sampler.", float64(sampled))
	if s.opts.SLOTarget > 0 {
		win := s.stats.latQuery.Window()
		slo := obs.SLO{Target: s.opts.SLOTarget, Objective: s.opts.SLOObjective}
		bad, burn := slo.Burn(win)
		e.Gauge("xmatch_slo_target_seconds", "Configured query latency SLO target.", s.opts.SLOTarget.Seconds())
		e.Gauge("xmatch_slo_objective", "Configured fraction of queries that must meet the target.", s.opts.SLOObjective)
		e.Gauge("xmatch_slo_window_seconds", "Sliding window the burn rate is computed over.", s.opts.SLOWindow.Seconds())
		e.Gauge("xmatch_slo_window_requests", "Query requests inside the sliding window.", float64(win.Count))
		e.Gauge("xmatch_slo_bad_fraction", "Fraction of windowed queries slower than the target.", bad)
		e.Gauge("xmatch_slo_burn_rate", "Error-budget burn rate over the window; above 1 the budget shrinks.", burn)
	}
}

// collectWorkload exposes the fingerprint table's head (bounded, so a
// high-cardinality workload cannot explode the scrape) and the capture
// log's progress.
func (s *Server) collectWorkload(e *obs.Exporter) {
	tracked, evicted := s.workload.size()
	e.Gauge("xmatch_workload_fingerprints", "Distinct query fingerprints currently tracked.", float64(tracked))
	e.Counter("xmatch_workload_evicted_total", "Fingerprints evicted from the bounded accounting table.", float64(evicted))
	for _, entry := range s.workload.top(10) {
		labels := []obs.Label{
			{Name: "fingerprint", Value: entry.Fingerprint},
			{Name: "dataset", Value: entry.Dataset},
			{Name: "mode", Value: entry.Mode},
		}
		e.Counter("xmatch_workload_requests_total", "Requests per hot query fingerprint (top fingerprints only).", float64(entry.Requests), labels...)
		e.Counter("xmatch_workload_prepare_hits_total", "Prepared-query cache hits per hot fingerprint.", float64(entry.PrepareHits), labels...)
		e.Gauge("xmatch_workload_window_p95_ms", "Sliding-window p95 latency per hot fingerprint, in milliseconds.", entry.P95Ms, labels...)
	}
	if s.capture != nil {
		st := s.capture.status()
		e.Counter("xmatch_capture_records_total", "Workload records appended to the capture log.", float64(st.Records))
		e.Counter("xmatch_capture_sampled_out_total", "Requests skipped by capture sampling.", float64(st.SampledOut))
		e.Counter("xmatch_capture_dropped_total", "Requests dropped because the capture budget was exhausted.", float64(st.DroppedOver))
		e.Gauge("xmatch_capture_bytes", "Bytes written to the capture log.", float64(st.BytesWritten))
		e.Gauge("xmatch_capture_budget_bytes", "Configured capture disk budget.", float64(st.BudgetBytes))
		e.Gauge("xmatch_capture_disabled", "Whether a write error permanently disabled the capture log.", boolGauge(st.Disabled))
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) collectCatalog(e *obs.Exporter) {
	for _, d := range s.Catalog().Datasets() {
		dsLabel := obs.Label{Name: "dataset", Value: d.Name}
		d.Engine.CollectMetrics(e, dsLabel)
		for i, sh := range d.Shards() {
			labels := []obs.Label{dsLabel, {Name: "shard", Value: strconv.Itoa(i)}}
			sh.Live.CollectMetrics(e, labels...)
			if sh.Log != nil {
				sh.Log.CollectMetrics(e, labels...)
			}
			e.Histogram("xmatch_shard_evaluate_seconds", "Per-shard evaluation wall time, one observation per (embedding, shard) scatter unit.", sh.lat.Snapshot(), labels...)
		}
	}
}

// handleMetricsz renders the registry. The exposition is buffered so a
// collector error can still become a clean 500 instead of a torn body.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	var buf bytes.Buffer
	if err := s.registry.WriteText(&buf); err != nil {
		s.fail(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
