package server

import (
	"bytes"
	"net/http"
	"strconv"
	"time"

	"xmatch/internal/index"
	"xmatch/internal/obs"
)

// /metricsz: Prometheus text exposition over the same live state /statsz
// reports, plus every subsystem's own collectors. The registry runs its
// collectors at scrape time against the current catalog, so datasets that
// appear or vanish on reload need no metric lifecycle management — and
// the serving hot paths touch nothing but their existing atomics between
// scrapes.

// newRegistry wires the server's scrape-time collectors: the HTTP layer's
// own counters and latency histograms, the global index-matcher counters,
// per-dataset engine gauges, per-shard delta/replication collectors, and
// the follower's lag accounting when this server is a replica.
func (s *Server) newRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Collect(s.collectServer)
	reg.Collect(index.CollectMetrics)
	reg.Collect(s.collectCatalog)
	reg.Collect(func(e *obs.Exporter) {
		if s.follower != nil {
			s.follower.CollectMetrics(e)
		}
	})
	return reg
}

func (s *Server) collectServer(e *obs.Exporter) {
	e.Gauge("xmatch_uptime_seconds", "Seconds since the server started.", time.Since(s.stats.start).Seconds())
	e.Gauge("xmatch_http_in_flight", "Requests currently being served on the timed endpoints.", float64(s.stats.inFlight.Load()))
	e.Counter("xmatch_http_requests_total", "Requests accepted per endpoint.", float64(s.stats.queries.Load()), obs.Label{Name: "endpoint", Value: "query"})
	e.Counter("xmatch_http_requests_total", "Requests accepted per endpoint.", float64(s.stats.batches.Load()), obs.Label{Name: "endpoint", Value: "batch"})
	e.Counter("xmatch_http_requests_total", "Requests accepted per endpoint.", float64(s.stats.mutates.Load()), obs.Label{Name: "endpoint", Value: "mutate"})
	e.Counter("xmatch_http_errors_total", "Non-2xx responses across all endpoints.", float64(s.stats.errors.Load()))
	e.Counter("xmatch_reloads_total", "Successful catalog reloads.", float64(s.stats.reloads.Load()))
	e.Counter("xmatch_edits_applied_total", "Edits applied through /v1/admin/mutate.", float64(s.stats.edits.Load()))
	e.Histogram("xmatch_http_request_seconds", "Request latency per endpoint.", s.stats.latQuery.Snapshot(), obs.Label{Name: "endpoint", Value: "query"})
	e.Histogram("xmatch_http_request_seconds", "Request latency per endpoint.", s.stats.latBatch.Snapshot(), obs.Label{Name: "endpoint", Value: "batch"})
	e.Histogram("xmatch_http_request_seconds", "Request latency per endpoint.", s.stats.latMutate.Snapshot(), obs.Label{Name: "endpoint", Value: "mutate"})
	finished, sampled := s.traces.Counts()
	e.Counter("xmatch_traces_finished_total", "Requests that finished through the trace middleware.", float64(finished))
	e.Counter("xmatch_traces_sampled_total", "Traces retained by the slow-query tail sampler.", float64(sampled))
}

func (s *Server) collectCatalog(e *obs.Exporter) {
	for _, d := range s.Catalog().Datasets() {
		dsLabel := obs.Label{Name: "dataset", Value: d.Name}
		d.Engine.CollectMetrics(e, dsLabel)
		for i, sh := range d.Shards() {
			labels := []obs.Label{dsLabel, {Name: "shard", Value: strconv.Itoa(i)}}
			sh.Live.CollectMetrics(e, labels...)
			if sh.Log != nil {
				sh.Log.CollectMetrics(e, labels...)
			}
			e.Histogram("xmatch_shard_evaluate_seconds", "Per-shard evaluation wall time, one observation per (embedding, shard) scatter unit.", sh.lat.Snapshot(), labels...)
		}
	}
}

// handleMetricsz renders the registry. The exposition is buffered so a
// collector error can still become a clean 500 instead of a torn body.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if !s.method(w, r, http.MethodGet) {
		return
	}
	var buf bytes.Buffer
	if err := s.registry.WriteText(&buf); err != nil {
		s.fail(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
