package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphValidation(t *testing.T) {
	cases := []struct {
		name   string
		nu, nv int
		edges  []Edge
	}{
		{"u out of range", 2, 2, []Edge{{2, 0, 0.5}}},
		{"u negative", 2, 2, []Edge{{-1, 0, 0.5}}},
		{"v out of range", 2, 2, []Edge{{0, 2, 0.5}}},
		{"zero weight", 2, 2, []Edge{{0, 0, 0}}},
		{"negative weight", 2, 2, []Edge{{0, 0, -1}}},
		{"duplicate edge", 2, 2, []Edge{{0, 0, 0.5}, {0, 0, 0.7}}},
	}
	for _, c := range cases {
		if _, err := NewGraph(c.nu, c.nv, c.edges); err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
	if _, err := NewGraph(2, 2, []Edge{{0, 0, 0.5}, {1, 1, 0.7}}); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	g := MustNewGraph(3, 3, nil)
	s := g.Solve()
	if len(s.EdgeIDs) != 0 || s.Score != 0 {
		t.Fatalf("empty graph: got %+v", s)
	}
}

func TestSolveSingleEdge(t *testing.T) {
	g := MustNewGraph(1, 1, []Edge{{0, 0, 0.9}})
	s := g.Solve()
	if len(s.EdgeIDs) != 1 || s.EdgeIDs[0] != 0 || s.Score != 0.9 {
		t.Fatalf("single edge: got %+v", s)
	}
}

func TestSolvePrefersAlternatingPath(t *testing.T) {
	// Square graph where the greedy choice (u0-v0, weight 10) must be
	// reconsidered: optimal is u0-v1 + u1-v0 = 18.
	g := MustNewGraph(2, 2, []Edge{
		{0, 0, 10}, {0, 1, 9}, {1, 0, 9}, {1, 1, 1},
	})
	s := g.Solve()
	if math.Abs(s.Score-18) > 1e-9 {
		t.Fatalf("expected score 18, got %v (edges %v)", s.Score, s.EdgeIDs)
	}
}

func TestSolveLeavesUnprofitableNodesUnmatched(t *testing.T) {
	// Partial matchings are allowed: with positive weights every node that
	// can be matched without conflict is matched, but conflicting low-value
	// edges lose.
	g := MustNewGraph(3, 1, []Edge{
		{0, 0, 0.2}, {1, 0, 0.9}, {2, 0, 0.5},
	})
	s := g.Solve()
	if len(s.EdgeIDs) != 1 || g.Edges[s.EdgeIDs[0]].U != 1 {
		t.Fatalf("expected u1-v0 only, got %v", s.EdgeIDs)
	}
}

// randomGraph builds a random sparse bipartite graph with at most maxEdges
// edges, suitable for comparison against EnumerateAll.
func randomGraph(rng *rand.Rand, maxNodes, maxEdges int) *Graph {
	nu := 1 + rng.Intn(maxNodes)
	nv := 1 + rng.Intn(maxNodes)
	seen := map[[2]int]bool{}
	var edges []Edge
	n := rng.Intn(maxEdges + 1)
	for len(edges) < n {
		u, v := rng.Intn(nu), rng.Intn(nv)
		if seen[[2]int{u, v}] {
			if len(seen) >= nu*nv {
				break
			}
			continue
		}
		seen[[2]int{u, v}] = true
		// Quantized weights produce frequent score ties, stressing the
		// tie handling of ranked enumeration.
		w := float64(1+rng.Intn(20)) / 20.0
		edges = append(edges, Edge{u, v, w})
	}
	return MustNewGraph(nu, nv, edges)
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		g := randomGraph(rng, 6, 10)
		want := g.EnumerateAll()[0].Score
		got := g.Solve().Score
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: solve score %v, brute force %v; edges %+v",
				trial, got, want, g.Edges)
		}
	}
}

func TestSolveSolutionIsValidMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 8, 16)
		s := g.Solve()
		usedU := map[int]bool{}
		usedV := map[int]bool{}
		var sum float64
		for _, ei := range s.EdgeIDs {
			e := g.Edges[ei]
			if usedU[e.U] || usedV[e.V] {
				t.Fatalf("trial %d: solution reuses a node: %v", trial, s.EdgeIDs)
			}
			usedU[e.U], usedV[e.V] = true, true
			sum += e.W
		}
		if math.Abs(sum-s.Score) > 1e-9 {
			t.Fatalf("trial %d: reported score %v != edge sum %v", trial, s.Score, sum)
		}
	}
}

func TestTopHMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 5, 9)
		all := g.EnumerateAll()
		h := 1 + rng.Intn(len(all)+3)
		got := g.TopH(h)
		wantN := h
		if wantN > len(all) {
			wantN = len(all)
		}
		if len(got) != wantN {
			t.Fatalf("trial %d: TopH(%d) returned %d solutions, want %d (of %d total)",
				trial, h, len(got), wantN, len(all))
		}
		for i := range got {
			if math.Abs(got[i].Score-all[i].Score) > 1e-9 {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i, got[i].Score, all[i].Score)
			}
			if i > 0 && got[i].Score > got[i-1].Score+1e-9 {
				t.Fatalf("trial %d: scores not non-increasing at rank %d", trial, i)
			}
		}
	}
}

func TestTopHNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 5, 9)
		sols := g.TopH(50)
		seen := map[string]bool{}
		for _, s := range sols {
			k := s.Key()
			if seen[k] {
				t.Fatalf("trial %d: duplicate matching %s", trial, k)
			}
			seen[k] = true
		}
	}
}

func TestTopHExhaustsAllMatchings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 4, 7)
		all := g.EnumerateAll()
		got := g.TopH(len(all) + 10)
		if len(got) != len(all) {
			t.Fatalf("trial %d: enumerated %d of %d matchings", trial, len(got), len(all))
		}
		// The last matching must be the empty one (score 0) whenever any
		// matchings exist, since the empty set is always a matching.
		last := got[len(got)-1]
		if len(last.EdgeIDs) != 0 {
			t.Fatalf("trial %d: final matching not empty: %v", trial, last.EdgeIDs)
		}
	}
}

func TestTopHZeroAndNegative(t *testing.T) {
	g := MustNewGraph(2, 2, []Edge{{0, 0, 0.5}})
	if got := g.TopH(0); got != nil {
		t.Errorf("TopH(0) = %v, want nil", got)
	}
	if got := g.TopH(-3); got != nil {
		t.Errorf("TopH(-3) = %v, want nil", got)
	}
}

func TestTopHSolutionsAreValidMatchings(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 6, 10)
		for _, s := range g.TopH(20) {
			usedU := map[int]bool{}
			usedV := map[int]bool{}
			var sum float64
			for _, ei := range s.EdgeIDs {
				e := g.Edges[ei]
				if usedU[e.U] || usedV[e.V] {
					return false
				}
				usedU[e.U], usedV[e.V] = true, true
				sum += e.W
			}
			if math.Abs(sum-s.Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	seen := map[[2]int]bool{}
	for len(edges) < 600 {
		u, v := rng.Intn(1000), rng.Intn(160)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, Edge{u, v, 0.5 + rng.Float64()/2})
	}
	g := MustNewGraph(1000, 160, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Solve()
	}
}

func BenchmarkTopH20Sparse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var edges []Edge
	seen := map[[2]int]bool{}
	for len(edges) < 200 {
		u, v := rng.Intn(300), rng.Intn(80)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, Edge{u, v, 0.5 + rng.Float64()/2})
	}
	g := MustNewGraph(300, 80, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TopH(20)
	}
}

func TestTopHLazyMatchesEager(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 150; trial++ {
		g := randomGraph(rng, 6, 10)
		h := 1 + rng.Intn(25)
		lazy := g.TopH(h)
		eager := g.TopHEager(h)
		if len(lazy) != len(eager) {
			t.Fatalf("trial %d: lazy %d, eager %d solutions", trial, len(lazy), len(eager))
		}
		for i := range lazy {
			if math.Abs(lazy[i].Score-eager[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: lazy %v, eager %v", trial, i, lazy[i].Score, eager[i].Score)
			}
		}
	}
}
