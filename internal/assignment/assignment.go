// Package assignment implements sparse maximum-weight bipartite matching
// and ranked enumeration of the h best matchings (Murty's algorithm with
// Pascoal-style forced-edge graph shrinking), the machinery behind top-h
// possible-mapping generation in Cheng, Gong, Cheung (ICDE 2010, Section V).
//
// Unlike the paper's formulation — which augments the bipartite with "image"
// elements so that every mapping becomes a perfect matching — this package
// ranks partial matchings directly: an element left unmatched simply has no
// correspondence. The two formulations enumerate the same mappings with the
// same scores, but the direct one keeps the graph sparse, which is exactly
// the property the paper's partitioning approach exploits.
package assignment

import (
	"container/heap"
	"fmt"
	"sort"
)

// Edge is a weighted edge between left node U and right node V.
type Edge struct {
	U, V int
	// W must be strictly positive: a zero-weight correspondence is
	// equivalent to no correspondence, and strictly positive weights
	// guarantee maximal matchings are never extended by supersets,
	// which Murty's space partition relies on.
	W float64
}

// Graph is a sparse bipartite graph with NU left and NV right nodes.
type Graph struct {
	NU, NV int
	Edges  []Edge

	adj [][]int // adjacency lists by left node: edge indices
}

// NewGraph validates and indexes a bipartite graph.
func NewGraph(nu, nv int, edges []Edge) (*Graph, error) {
	g := &Graph{NU: nu, NV: nv, Edges: append([]Edge(nil), edges...)}
	g.adj = make([][]int, nu)
	seen := make(map[[2]int]bool, len(edges))
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= nu {
			return nil, fmt.Errorf("assignment: edge %d: U=%d out of range [0,%d)", i, e.U, nu)
		}
		if e.V < 0 || e.V >= nv {
			return nil, fmt.Errorf("assignment: edge %d: V=%d out of range [0,%d)", i, e.V, nv)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("assignment: edge %d: weight %v must be > 0", i, e.W)
		}
		key := [2]int{e.U, e.V}
		if seen[key] {
			return nil, fmt.Errorf("assignment: duplicate edge (%d,%d)", e.U, e.V)
		}
		seen[key] = true
		g.adj[e.U] = append(g.adj[e.U], i)
	}
	return g, nil
}

// MustNewGraph is NewGraph, panicking on error.
func MustNewGraph(nu, nv int, edges []Edge) *Graph {
	g, err := NewGraph(nu, nv, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Solution is a matching: a set of pairwise node-disjoint edges.
type Solution struct {
	// EdgeIDs are indices into Graph.Edges, sorted ascending.
	EdgeIDs []int
	// Score is the sum of the edge weights.
	Score float64
}

// Key returns a canonical string identity for the matching, for
// deduplication in tests.
func (s Solution) Key() string {
	return fmt.Sprint(s.EdgeIDs)
}

// Solve returns a maximum-weight matching of the graph using successive
// shortest augmenting paths: starting from the empty matching, it repeatedly
// augments along the path with the largest weight gain until no augmenting
// path has positive gain. Each intermediate matching is maximum-weight among
// matchings of its cardinality, so the final matching is globally optimal.
func (g *Graph) Solve() Solution {
	return g.solveConstrained(nil, nil)
}

// solveConstrained solves on the subgraph with the given edges forbidden and
// the given left/right nodes blocked (nil slices mean no constraints).
func (g *Graph) solveConstrained(forbidden []bool, blocked *blockSets) Solution {
	const inf = 1e18
	nu, nv := g.NU, g.NV
	matchU := make([]int, nu) // edge id or -1
	matchV := make([]int, nv)
	for i := range matchU {
		matchU[i] = -1
	}
	for i := range matchV {
		matchV[i] = -1
	}
	// Shortest-path state over nodes 0..nu-1 (left) and nu..nu+nv-1 (right).
	n := nu + nv
	dist := make([]float64, n)
	prevEdge := make([]int, n)
	inQueue := make([]bool, n)

	blockedU := func(u int) bool { return blocked != nil && blocked.u[u] }
	blockedV := func(v int) bool { return blocked != nil && blocked.v[v] }
	okEdge := func(e int) bool { return forbidden == nil || !forbidden[e] }

	var score float64
	for {
		// SPFA for the most negative-cost (largest-gain) augmenting
		// path from any unmatched, unblocked left node. Costs are -W
		// forward and +W backward; residual graphs of extreme
		// matchings contain no negative cycles.
		for i := 0; i < n; i++ {
			dist[i] = inf
			prevEdge[i] = -1
			inQueue[i] = false
		}
		queue := make([]int, 0, nu)
		for u := 0; u < nu; u++ {
			if matchU[u] == -1 && !blockedU(u) {
				dist[u] = 0
				inQueue[u] = true
				queue = append(queue, u)
			}
		}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			inQueue[x] = false
			if x < nu { // left node: traverse unmatched edges forward
				u := x
				for _, ei := range g.adj[u] {
					if !okEdge(ei) || matchU[u] == ei {
						continue
					}
					e := g.Edges[ei]
					if blockedV(e.V) || matchV[e.V] == ei {
						continue
					}
					nd := dist[u] - e.W
					y := nu + e.V
					if nd < dist[y]-1e-12 {
						dist[y] = nd
						prevEdge[y] = ei
						if !inQueue[y] {
							inQueue[y] = true
							queue = append(queue, y)
						}
					}
				}
			} else { // right node: traverse its matched edge backward
				v := x - nu
				ei := matchV[v]
				if ei == -1 {
					continue
				}
				e := g.Edges[ei]
				nd := dist[x] + e.W
				if nd < dist[e.U]-1e-12 {
					dist[e.U] = nd
					prevEdge[e.U] = ei
					if !inQueue[e.U] {
						inQueue[e.U] = true
						queue = append(queue, e.U)
					}
				}
			}
		}
		// Best augmenting path ends at an unmatched, unblocked right node.
		bestV, bestD := -1, 0.0
		for v := 0; v < nv; v++ {
			if matchV[v] == -1 && !blockedV(v) && dist[nu+v] < bestD-1e-12 {
				bestD = dist[nu+v]
				bestV = v
			}
		}
		if bestV == -1 {
			break // no augmenting path with positive gain
		}
		// Apply the augmentation by walking prevEdge back to the source.
		// The path alternates forward (unmatched) and backward (matched)
		// edges; prevEdge of a right node is the forward edge used to
		// reach it, prevEdge of a left node is its current matched edge.
		v := bestV
		for {
			fwd := prevEdge[nu+v]
			e := g.Edges[fwd]
			back := prevEdge[e.U] // matched edge of e.U, or -1 at the path source
			matchU[e.U] = fwd
			matchV[v] = fwd
			if back == -1 {
				break
			}
			v = g.Edges[back].V
		}
		score -= bestD
	}
	// Collect the matching.
	var ids []int
	for v := 0; v < nv; v++ {
		if matchV[v] != -1 {
			ids = append(ids, matchV[v])
		}
	}
	sort.Ints(ids)
	return Solution{EdgeIDs: ids, Score: score}
}

type blockSets struct {
	u, v []bool
}

// TopH returns the h highest-score matchings of the graph in non-increasing
// score order, using Murty's ranking algorithm: the best matching is found,
// then the solution space is partitioned by branching on each of its edges
// (edge i excluded, edges 1..i-1 forced), each subproblem is solved on the
// shrunken graph (Pascoal's observation that forced edges remove their
// endpoints), and a max-heap drives best-first enumeration.
//
// Child subproblems are evaluated lazily: a child's optimum cannot exceed
// its parent's (its space is a subset), so children enter the heap with the
// parent's score as an optimistic bound and are solved only when they reach
// the top — subproblems that never surface are never solved, which removes
// most of the assignment solves when h is small relative to the branching
// factor.
//
// Fewer than h solutions are returned when the graph has fewer distinct
// matchings (the empty matching, score 0, is a valid matching and always
// enumerable).
func (g *Graph) TopH(h int) []Solution {
	return g.topH(h, true)
}

// TopHEager is TopH with lazy evaluation disabled — every child subproblem
// is solved when created. It exists as the reference implementation for
// correctness tests and the ablation benchmark; results are identical up to
// score ties.
func (g *Graph) TopHEager(h int) []Solution {
	return g.topH(h, false)
}

func (g *Graph) topH(h int, lazy bool) []Solution {
	if h <= 0 {
		return nil
	}
	root := &murtyNode{
		forbidden: make([]bool, len(g.Edges)),
	}
	root.solve(g)
	pq := &murtyHeap{root}
	var out []Solution
	seenEmpty := false
	for pq.Len() > 0 && len(out) < h {
		node := heap.Pop(pq).(*murtyNode)
		if !node.solved {
			// Lazy node: its score is the parent's optimistic bound.
			// Solve now and re-insert with the exact score.
			node.solve(g)
			heap.Push(pq, node)
			continue
		}
		sol := node.fullSolution(g)
		if len(sol.EdgeIDs) == 0 {
			// The empty matching appears once per exhausted branch;
			// emit it at most once.
			if seenEmpty {
				continue
			}
			seenEmpty = true
		}
		out = append(out, sol)
		if len(out) == h {
			break
		}
		// Branch on the free (non-forced) edges of this node's solution.
		for i, ei := range node.sol {
			child := &murtyNode{
				forced:    append(append([]int(nil), node.forced...), node.sol[:i]...),
				forbidden: append([]bool(nil), node.forbidden...),
				score:     node.score, // optimistic bound until solved
			}
			child.forbidden[ei] = true
			if !lazy {
				child.solve(g)
			}
			heap.Push(pq, child)
		}
	}
	return out
}

// murtyNode is a subproblem in Murty's partition of the matching space:
// matchings that contain every forced edge and no forbidden edge.
type murtyNode struct {
	forced    []int  // edge IDs forced into the matching
	forbidden []bool // edge IDs excluded, indexed by edge ID

	sol    []int   // optimal free edges on the shrunken graph
	score  float64 // exact total score once solved, else optimistic bound
	solved bool
}

func (nd *murtyNode) solve(g *Graph) {
	nd.solved = true
	var blocked *blockSets
	var base float64
	if len(nd.forced) > 0 {
		blocked = &blockSets{u: make([]bool, g.NU), v: make([]bool, g.NV)}
		for _, ei := range nd.forced {
			e := g.Edges[ei]
			blocked.u[e.U] = true
			blocked.v[e.V] = true
			base += e.W
		}
	}
	s := g.solveConstrained(nd.forbidden, blocked)
	nd.sol = s.EdgeIDs
	nd.score = base + s.Score
}

func (nd *murtyNode) fullSolution(g *Graph) Solution {
	ids := append(append([]int(nil), nd.forced...), nd.sol...)
	sort.Ints(ids)
	return Solution{EdgeIDs: ids, Score: nd.score}
}

type murtyHeap []*murtyNode

func (h murtyHeap) Len() int            { return len(h) }
func (h murtyHeap) Less(i, j int) bool  { return h[i].score > h[j].score }
func (h murtyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *murtyHeap) Push(x interface{}) { *h = append(*h, x.(*murtyNode)) }
func (h *murtyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// EnumerateAll returns every matching of the graph in non-increasing score
// order. It is exponential and intended as a reference oracle for tests on
// small graphs; it panics if the graph has more than 24 edges.
func (g *Graph) EnumerateAll() []Solution {
	if len(g.Edges) > 24 {
		panic("assignment: EnumerateAll limited to 24 edges")
	}
	var out []Solution
	usedU := make([]bool, g.NU)
	usedV := make([]bool, g.NV)
	var cur []int
	var score float64
	var rec func(i int)
	rec = func(i int) {
		if i == len(g.Edges) {
			out = append(out, Solution{EdgeIDs: append([]int(nil), cur...), Score: score})
			return
		}
		rec(i + 1) // exclude edge i
		e := g.Edges[i]
		if !usedU[e.U] && !usedV[e.V] {
			usedU[e.U], usedV[e.V] = true, true
			cur = append(cur, i)
			score += e.W
			rec(i + 1)
			score -= e.W
			cur = cur[:len(cur)-1]
			usedU[e.U], usedV[e.V] = false, false
		}
	}
	rec(0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
