package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xmatch/internal/schema"
)

func flatSchema(t *testing.T, name string, n int) *schema.Schema {
	if t != nil {
		t.Helper()
	}
	b := schema.NewBuilder(name, "root")
	for i := 1; i < n; i++ {
		b.Root.AddChild("e" + string(rune('a'+i%26)) + itoa(i))
	}
	return b.Freeze()
}

func itoa(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	out := ""
	for i > 0 {
		out = string(digits[i%10]) + out
		i /= 10
	}
	return out
}

func TestNewValidation(t *testing.T) {
	src := flatSchema(t, "S", 5)
	tgt := flatSchema(t, "T", 5)
	cases := []struct {
		name  string
		corrs []Correspondence
	}{
		{"source out of range", []Correspondence{{S: 5, T: 0, Score: 0.5}}},
		{"target out of range", []Correspondence{{S: 0, T: 9, Score: 0.5}}},
		{"zero score", []Correspondence{{S: 0, T: 0, Score: 0}}},
		{"score above one", []Correspondence{{S: 0, T: 0, Score: 1.5}}},
		{"duplicate", []Correspondence{{S: 1, T: 1, Score: 0.5}, {S: 1, T: 1, Score: 0.6}}},
	}
	for _, c := range cases {
		if _, err := New(src, tgt, c.corrs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	u, err := New(src, tgt, []Correspondence{{S: 2, T: 3, Score: 0.9}, {S: 1, T: 1, Score: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if u.Corrs[0].T != 1 {
		t.Error("correspondences not sorted by target")
	}
	if u.Capacity() != 2 {
		t.Errorf("capacity = %d", u.Capacity())
	}
}

func TestSourceCandidates(t *testing.T) {
	src := flatSchema(t, "S", 6)
	tgt := flatSchema(t, "T", 4)
	u := MustNew(src, tgt, []Correspondence{
		{S: 1, T: 2, Score: 0.5}, {S: 2, T: 2, Score: 0.6}, {S: 3, T: 1, Score: 0.7},
	})
	cands := u.SourceCandidates()
	if len(cands) != 4 {
		t.Fatalf("cands len = %d", len(cands))
	}
	if len(cands[2]) != 2 || len(cands[1]) != 1 || len(cands[0]) != 0 {
		t.Fatalf("candidate counts wrong: %v", cands)
	}
}

func TestPartitionsDisjointAndComplete(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nt := 2+rng.Intn(20), 2+rng.Intn(20)
		src := flatSchema(nil, "S", ns)
		tgt := flatSchema(nil, "T", nt)
		seen := map[[2]int]bool{}
		var corrs []Correspondence
		for i := 0; i < rng.Intn(30); i++ {
			s, tg := rng.Intn(ns), rng.Intn(nt)
			if seen[[2]int{s, tg}] {
				continue
			}
			seen[[2]int{s, tg}] = true
			corrs = append(corrs, Correspondence{S: s, T: tg, Score: 0.5})
		}
		u := MustNew(src, tgt, corrs)
		parts := u.Partitions()
		// Completeness: every correspondence in exactly one partition.
		counted := map[int]int{}
		for _, p := range parts {
			for _, ci := range p.Corrs {
				counted[ci]++
			}
		}
		if len(counted) != len(u.Corrs) {
			return false
		}
		for _, c := range counted {
			if c != 1 {
				return false
			}
		}
		// Disjointness: no element in two partitions.
		seenS, seenT := map[int]bool{}, map[int]bool{}
		for _, p := range parts {
			for _, id := range p.SourceIDs {
				if seenS[id] {
					return false
				}
				seenS[id] = true
			}
			for _, id := range p.TargetIDs {
				if seenT[id] {
					return false
				}
				seenT[id] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionsAreMaximallyConnected(t *testing.T) {
	src := flatSchema(t, "S", 6)
	tgt := flatSchema(t, "T", 6)
	// Two components: {s1,s2}x{t1} and {s3}x{t3,t4}.
	u := MustNew(src, tgt, []Correspondence{
		{S: 1, T: 1, Score: 0.5},
		{S: 2, T: 1, Score: 0.5},
		{S: 3, T: 3, Score: 0.5},
		{S: 3, T: 4, Score: 0.5},
	})
	parts := u.Partitions()
	if len(parts) != 2 {
		t.Fatalf("partitions = %d, want 2", len(parts))
	}
	if parts[0].Size() != 3 || parts[1].Size() != 3 {
		t.Fatalf("sizes = %d, %d", parts[0].Size(), parts[1].Size())
	}
}

func TestStats(t *testing.T) {
	src := flatSchema(t, "S", 6)
	tgt := flatSchema(t, "T", 6)
	u := MustNew(src, tgt, []Correspondence{
		{S: 1, T: 1, Score: 0.5}, {S: 2, T: 2, Score: 0.5}, {S: 3, T: 2, Score: 0.4},
	})
	st := u.Stats()
	if st.Capacity != 3 || st.NumPartitions != 2 || st.MaxPartition != 3 {
		t.Fatalf("stats = %+v", st)
	}
	empty := MustNew(src, tgt, nil)
	st2 := empty.Stats()
	if st2.NumPartitions != 0 || st2.AvgPartition != 0 {
		t.Fatalf("empty stats = %+v", st2)
	}
}

func TestString(t *testing.T) {
	src := flatSchema(t, "S", 3)
	tgt := flatSchema(t, "T", 3)
	u := MustNew(src, tgt, nil)
	if u.String() == "" {
		t.Error("String should describe the matching")
	}
}
