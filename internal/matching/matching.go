// Package matching models schema matchings: sets of scored correspondences
// between the elements of a source and a target schema, as produced by an
// automatic matcher (COMA++ in the paper, internal/matcher here).
//
// It also implements the partitioning of a matching into maximal connected
// sub-matchings (Definition 6 of Cheng, Gong, Cheung, ICDE 2010), the
// foundation of the divide-and-conquer top-h mapping generation of
// Section V.
package matching

import (
	"fmt"
	"sort"

	"xmatch/internal/schema"
)

// Correspondence is a scored edge between a source and a target element.
type Correspondence struct {
	// S and T are element IDs in the source and target schema.
	S, T int
	// Score is the matcher's similarity score, in (0, 1].
	Score float64
}

// Matching is a schema matching U between a source and a target schema.
type Matching struct {
	// Source and Target are the matched schemas.
	Source, Target *schema.Schema
	// Corrs is the set of correspondences, free of duplicates.
	Corrs []Correspondence
}

// New validates and returns a matching over the given correspondences.
// Correspondences are sorted by (T, S). New returns an error if an element
// ID is out of range, a score is outside (0, 1], or a (S, T) pair repeats.
func New(source, target *schema.Schema, corrs []Correspondence) (*Matching, error) {
	m := &Matching{Source: source, Target: target, Corrs: append([]Correspondence(nil), corrs...)}
	sort.Slice(m.Corrs, func(i, j int) bool {
		if m.Corrs[i].T != m.Corrs[j].T {
			return m.Corrs[i].T < m.Corrs[j].T
		}
		return m.Corrs[i].S < m.Corrs[j].S
	})
	for i, c := range m.Corrs {
		if c.S < 0 || c.S >= source.Len() {
			return nil, fmt.Errorf("matching: correspondence %d: source ID %d out of range [0,%d)", i, c.S, source.Len())
		}
		if c.T < 0 || c.T >= target.Len() {
			return nil, fmt.Errorf("matching: correspondence %d: target ID %d out of range [0,%d)", i, c.T, target.Len())
		}
		if c.Score <= 0 || c.Score > 1 {
			return nil, fmt.Errorf("matching: correspondence %d: score %v outside (0,1]", i, c.Score)
		}
		if i > 0 && m.Corrs[i-1].S == c.S && m.Corrs[i-1].T == c.T {
			return nil, fmt.Errorf("matching: duplicate correspondence (%d,%d)", c.S, c.T)
		}
	}
	return m, nil
}

// MustNew is New, panicking on error. Intended for tests and generators.
func MustNew(source, target *schema.Schema, corrs []Correspondence) *Matching {
	m, err := New(source, target, corrs)
	if err != nil {
		panic(err)
	}
	return m
}

// Capacity returns the number of correspondences ("Cap." in Table II).
func (m *Matching) Capacity() int { return len(m.Corrs) }

// SourceCandidates returns, for each target element ID, the indices into
// Corrs of the correspondences with that target element.
func (m *Matching) SourceCandidates() [][]int {
	out := make([][]int, m.Target.Len())
	for i, c := range m.Corrs {
		out[c.T] = append(out[c.T], i)
	}
	return out
}

// Partition is a maximal connected sub-matching of a schema matching
// (Definition 6): the set of correspondences of one connected component of
// the bipartite correspondence graph, with the source and target elements
// it touches.
type Partition struct {
	// Corrs are indices into the parent matching's Corrs slice.
	Corrs []int
	// SourceIDs and TargetIDs are the element IDs touched, sorted.
	SourceIDs, TargetIDs []int
}

// Partitions decomposes the matching into its maximal connected
// sub-matchings using union-find over the bipartite correspondence graph
// ("seed expansion" in Section V-B). Elements with no correspondence do not
// appear in any partition. Partitions are ordered by their smallest
// correspondence index; the decomposition is unique.
func (m *Matching) Partitions() []*Partition {
	// Union-find over source IDs [0, |S|) and target IDs |S|+[0, |T|).
	n := m.Source.Len() + m.Target.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	off := m.Source.Len()
	for _, c := range m.Corrs {
		union(c.S, off+c.T)
	}
	groups := make(map[int]*Partition)
	var order []int
	for i, c := range m.Corrs {
		root := find(c.S)
		p, ok := groups[root]
		if !ok {
			p = &Partition{}
			groups[root] = p
			order = append(order, root)
		}
		p.Corrs = append(p.Corrs, i)
	}
	out := make([]*Partition, 0, len(order))
	for _, root := range order {
		p := groups[root]
		srcSeen := map[int]bool{}
		tgtSeen := map[int]bool{}
		for _, ci := range p.Corrs {
			c := m.Corrs[ci]
			if !srcSeen[c.S] {
				srcSeen[c.S] = true
				p.SourceIDs = append(p.SourceIDs, c.S)
			}
			if !tgtSeen[c.T] {
				tgtSeen[c.T] = true
				p.TargetIDs = append(p.TargetIDs, c.T)
			}
		}
		sort.Ints(p.SourceIDs)
		sort.Ints(p.TargetIDs)
		out = append(out, p)
	}
	return out
}

// Size returns the number of elements in the partition, the quantity that
// drives the cost of ranked bipartite matching on it.
func (p *Partition) Size() int { return len(p.SourceIDs) + len(p.TargetIDs) }

// Stats summarizes structural properties of a matching that the paper's
// evaluation reports: capacity, number of partitions and largest partition.
type Stats struct {
	Capacity      int
	NumPartitions int
	MaxPartition  int // elements in the largest partition
	AvgPartition  float64
}

// Stats computes summary statistics for the matching.
func (m *Matching) Stats() Stats {
	ps := m.Partitions()
	st := Stats{Capacity: len(m.Corrs), NumPartitions: len(ps)}
	total := 0
	for _, p := range ps {
		sz := p.Size()
		total += sz
		if sz > st.MaxPartition {
			st.MaxPartition = sz
		}
	}
	if len(ps) > 0 {
		st.AvgPartition = float64(total) / float64(len(ps))
	}
	return st
}

// String describes the matching briefly.
func (m *Matching) String() string {
	return fmt.Sprintf("matching %s->%s (|S|=%d |T|=%d cap=%d)",
		m.Source.Name, m.Target.Name, m.Source.Len(), m.Target.Len(), len(m.Corrs))
}
