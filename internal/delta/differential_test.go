package delta_test

// The differential suite behind the subsystem's core invariant: after any
// randomized edit sequence, the incrementally-maintained index must be
// indistinguishable from a full index.Build over the mutated document —
// same postings, same value keys, same order — and the document snapshot
// itself must be structurally identical to parsing its own serialization
// from scratch. Query-level differentials across every evaluation mode
// (basic/compact/top-k/aggregate, sequential and engine-parallel) ride on
// this in internal/engine's delta tests; here the comparison is at the
// postings level, which is what makes the ≥500-trial sweep affordable.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

var diffLabels = []string{"a", "b", "c", "d", "e"}

// randomDoc builds a random labelled tree with sparse text.
func randomDoc(rng *rand.Rand, size int) *xmltree.Document {
	root := xmltree.NewRoot("r")
	nodes := []*xmltree.Node{root}
	for i := 1; i < size; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := p.AddChild(diffLabels[rng.Intn(len(diffLabels))])
		if rng.Intn(3) == 0 {
			c.Text = fmt.Sprintf("t%d", rng.Intn(4))
		}
		nodes = append(nodes, c)
	}
	return xmltree.New(root)
}

// randomEdit builds one applicable edit against the current snapshot.
func randomEdit(rng *rand.Rand, doc *xmltree.Document) delta.Edit {
	ns := doc.Nodes()
	n := ns[rng.Intn(len(ns))]
	switch rng.Intn(5) {
	case 0: // insert a leaf or a small subtree
		lab := diffLabels[rng.Intn(len(diffLabels))]
		payload := "<" + lab + ">t" + fmt.Sprint(rng.Intn(4)) + "</" + lab + ">"
		if rng.Intn(3) == 0 {
			inner := diffLabels[rng.Intn(len(diffLabels))]
			payload = "<" + lab + "><" + inner + ">u</" + inner + "><" + inner + "/></" + lab + ">"
		}
		return delta.Edit{Op: delta.OpInsert, Start: n.Start, Pos: rng.Intn(4) - 1, XML: payload}
	case 1: // delete (not the root)
		if n == doc.Root {
			return delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: "rt"}
		}
		return delta.Edit{Op: delta.OpDelete, Start: n.Start}
	case 2:
		return delta.Edit{Op: delta.OpRename, Start: n.Start, Label: diffLabels[rng.Intn(len(diffLabels))]}
	case 3:
		return delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: fmt.Sprintf("t%d", rng.Intn(4))}
	default: // clear text
		return delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: ""}
	}
}

// checkAgainstRebuild asserts the incrementally-maintained index equals a
// from-scratch build over the same snapshot document.
func checkAgainstRebuild(t *testing.T, trial int, snap *delta.Snapshot) {
	t.Helper()
	want := index.Build(snap.Doc).Snapshot()
	got := snap.Index.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trial %d epoch %d: incremental index diverged from rebuild\ngot  %+v\nwant %+v",
			trial, snap.Epoch, got, want)
	}
	st := snap.Index.Stats()
	fresh := index.Build(snap.Doc).Stats()
	// ResidentBytes legitimately differs between the two: overlay splices
	// keep the flat layout until the next flatten, a fresh build
	// compresses everything. FlatBytes is layout-independent, so it must
	// agree exactly; the actual footprint can never exceed it.
	if st.Postings != fresh.Postings || st.DistinctPaths != fresh.DistinctPaths ||
		st.ValueKeys != fresh.ValueKeys || st.TextKeys != fresh.TextKeys ||
		st.FlatBytes != fresh.FlatBytes {
		t.Fatalf("trial %d: incremental stats diverged: %+v vs %+v", trial, st, fresh)
	}
	if st.ResidentBytes <= 0 || st.ResidentBytes > st.FlatBytes {
		t.Fatalf("trial %d: incremental resident bytes %d out of range (flat %d)",
			trial, st.ResidentBytes, st.FlatBytes)
	}
}

// checkMatcher cross-checks the indexed holistic matcher against the
// joined evaluator over the mutated snapshot for a handful of random
// single- and two-node patterns.
func checkMatcher(t *testing.T, trial int, rng *rand.Rand, snap *delta.Snapshot) {
	t.Helper()
	paths := snap.Doc.Paths()
	if len(paths) == 0 {
		return
	}
	for i := 0; i < 3; i++ {
		pp := paths[rng.Intn(len(paths))]
		cp := paths[rng.Intn(len(paths))]
		pat, err := twig.Parse("p/c")
		if err != nil {
			t.Fatal(err)
		}
		binding := twig.PathBinding{}
		nodes := pat.Nodes()
		binding[nodes[0]] = pp
		binding[nodes[1]] = cp
		want := twig.MatchByPaths(snap.Doc, pat.Root, binding)
		got := snap.Index.MatchTwig(snap.Doc, pat.Root, binding)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MatchTwig diverged on %s//%s: %d vs %d matches",
				trial, pp, cp, len(got), len(want))
		}
	}
}

func TestRandomizedEditBatchesMatchRebuild(t *testing.T) {
	trials := 520
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(20260729))
	for trial := 0; trial < trials; trial++ {
		doc := randomDoc(rng, 2+rng.Intn(40))
		h := delta.Open(doc)
		batches := 1 + rng.Intn(4)
		for b := 0; b < batches; b++ {
			cur := h.Snapshot()
			k := 1 + rng.Intn(6)
			edits := make([]delta.Edit, 0, k)
			// Resolve targets against the live snapshot; within a batch,
			// later edits may invalidate earlier targets, which Apply must
			// reject atomically — retry those trials with one edit.
			for i := 0; i < k; i++ {
				edits = append(edits, randomEdit(rng, cur.Doc))
			}
			snap, err := h.Apply(edits)
			if err != nil {
				snap, err = h.Apply([]delta.Edit{randomEdit(rng, cur.Doc)})
				if err != nil {
					continue
				}
			}
			checkAgainstRebuild(t, trial, snap)
			checkMatcher(t, trial, rng, snap)
		}
		// The final snapshot must round-trip through serialization into an
		// equivalent document (numbering aside).
		final := h.Snapshot()
		re, err := xmltree.ParseString(final.Doc.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		if re.String() != final.Doc.String() || re.Len() != final.Doc.Len() {
			t.Fatalf("trial %d: snapshot serialization diverged", trial)
		}
	}
}

// TestManyEpochsOneHandle drives one handle through hundreds of batches so
// the overlay chain flattens repeatedly, and verifies old pinned snapshots
// survive their originals being superseded.
func TestManyEpochsOneHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	doc := randomDoc(rng, 30)
	h := delta.Open(doc)
	type pin struct {
		snap *delta.Snapshot
		xml  string
	}
	var pins []pin
	for b := 0; b < 120; b++ {
		cur := h.Snapshot()
		if b%10 == 0 {
			pins = append(pins, pin{cur, cur.Doc.String()})
		}
		snap, err := h.Apply([]delta.Edit{randomEdit(rng, cur.Doc)})
		if err != nil {
			continue
		}
		if b%17 == 0 {
			checkAgainstRebuild(t, b, snap)
		}
	}
	checkAgainstRebuild(t, -1, h.Snapshot())
	for i, p := range pins {
		if p.snap.Doc.String() != p.xml {
			t.Fatalf("pinned snapshot %d changed under later mutations", i)
		}
		if got := index.Build(p.snap.Doc).Snapshot(); !reflect.DeepEqual(p.snap.Index.Snapshot(), got) {
			t.Fatalf("pinned snapshot %d index no longer matches its document", i)
		}
	}
}
