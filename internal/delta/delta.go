// Package delta is the live document mutation subsystem: it applies
// batches of edits — insert subtree, delete subtree, rename label, set
// text — to an xmltree.Document and incrementally maintains the attached
// positional index (internal/index), so hot datasets absorb changes
// without rebuild stalls.
//
// The paper's PTQ algorithms assume a static document; everything above
// this package still does. The subsystem preserves that assumption per
// snapshot: a Handle owns a chain of immutable (document, index) snapshot
// pairs, writers serialize on the handle and publish a new snapshot per
// batch, and readers pin whichever snapshot is current when their request
// starts and use it unperturbed to completion. Structure sharing keeps
// publication cheap: the new document shares every untouched node with
// the old one (xmltree's revision layer), the new index shares every
// untouched postings list (index.ApplyChanges), and gap-based interval
// numbering means an edit almost never moves another node's numbers at
// all.
//
// The invariant every evaluation mode leans on — indexed, unindexed,
// sequential, engine-parallel answers are byte-identical to a from-scratch
// build over the mutated document — is pinned by this package's
// differential tests.
package delta

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmatch/internal/index"
	"xmatch/internal/obs"
	"xmatch/internal/xmltree"
)

// Op names an edit operation. The string values are the wire form used by
// the JSON API, the CLI, and the persisted edit log.
type Op string

const (
	// OpInsert parses Edit.XML and inserts it as a child subtree of the
	// target node, at child position Pos (negative appends).
	OpInsert Op = "insert"
	// OpDelete removes the target node and its subtree. The root cannot
	// be deleted.
	OpDelete Op = "delete"
	// OpRename replaces the target node's label with Edit.Label,
	// rewriting the dotted paths of its subtree.
	OpRename Op = "rename"
	// OpSetText replaces the target node's text with Edit.Text.
	OpSetText Op = "settext"
)

// Edit is one document mutation. The target node is addressed either by
// its preorder start number (Start > 0; stable across edits that do not
// renumber its region) or by dotted label path plus ordinal (0-based
// position among the path's nodes in document order) — the form that is
// stable on the wire. For OpInsert the target is the parent under which
// the new subtree goes.
type Edit struct {
	Op Op `json:"op"`

	Start   int    `json:"start,omitempty"`
	Path    string `json:"path,omitempty"`
	Ordinal int    `json:"ordinal,omitempty"`

	// Pos is OpInsert's child position; negative or past-the-end appends.
	Pos int `json:"pos,omitempty"`
	// XML is OpInsert's subtree payload, a single well-formed element.
	XML string `json:"xml,omitempty"`
	// Label is OpRename's new element name.
	Label string `json:"label,omitempty"`
	// Text is OpSetText's new character data.
	Text string `json:"text,omitempty"`
}

// EditError reports a batch rejected because of the edits themselves — an
// unresolvable target, malformed payload XML, an unknown op — as opposed
// to an environmental failure (a log write error, say). Serving layers
// map it to a client error.
type EditError struct {
	// Index is the offending edit's position in the batch.
	Index int
	Err   error
}

func (e *EditError) Error() string {
	return fmt.Sprintf("delta: edit %d: %v", e.Index, e.Err)
}

func (e *EditError) Unwrap() error { return e.Err }

// Snapshot is one immutable (document, index) pair. The index is attached
// to the document's accelerator slot, so every core evaluation mode over
// Doc routes through it; both are safe for unsynchronized concurrent
// readers. A request must resolve the snapshot once and use its Doc for
// all evaluation — mixing documents from different snapshots within one
// request would mix numbering regimes.
type Snapshot struct {
	Doc   *xmltree.Document
	Index *index.Index
	// Epoch counts the batches applied since Open: the index's epoch
	// number.
	Epoch uint64
}

// Stats is a point-in-time summary of a handle's mutation history.
type Stats struct {
	// Epoch is the current snapshot's epoch.
	Epoch uint64
	// Batches is the number of successfully applied batches (equals Epoch
	// unless the handle adopted a pre-advanced index).
	Batches uint64
	// Edits is the total number of edits across applied batches.
	Edits uint64
	// ApplyMs is the cumulative wall time spent applying batches
	// (lock-wait excluded), in milliseconds.
	ApplyMs float64
}

// Handle owns the mutable identity of one live document: an atomically
// swapped current snapshot plus a write lock that serializes Apply. Any
// number of goroutines may call Snapshot concurrently with one another
// and with writers.
type Handle struct {
	mu       sync.Mutex
	cur      atomic.Pointer[Snapshot]
	changed  atomic.Pointer[chan struct{}] // closed-and-replaced on publish
	batches  atomic.Uint64
	edits    atomic.Uint64
	applyLat *obs.Histogram // per-batch apply latency, lock-wait excluded
}

// Open wraps a document in a live handle. An index already attached to
// the document (built, or loaded from a store blob) is adopted; otherwise
// one is built and attached. The caller must not mutate the document
// afterwards except through the handle.
func Open(doc *xmltree.Document) *Handle {
	ix := index.For(doc)
	if ix == nil {
		ix = index.Attach(doc)
	}
	h := &Handle{applyLat: obs.NewHistogram(nil)}
	h.cur.Store(&Snapshot{Doc: doc, Index: ix, Epoch: ix.Epoch()})
	ch := make(chan struct{})
	h.changed.Store(&ch)
	return h
}

// Snapshot returns the current snapshot. The returned pair never changes;
// later mutations publish new snapshots instead.
func (h *Handle) Snapshot() *Snapshot { return h.cur.Load() }

// Changed returns a channel closed the next time a snapshot is published
// (ApplyLogged or Adopt). Each publication closes the current channel and
// installs a fresh one, so an epoch waiter loops: read the epoch, grab
// Changed(), re-check the epoch (a publish between the two steps would
// otherwise be missed), then select on the channel alongside its
// deadline/cancellation — no polling.
func (h *Handle) Changed() <-chan struct{} { return *h.changed.Load() }

// publish swaps in snap and wakes epoch waiters. Must run under h.mu.
func (h *Handle) publish(snap *Snapshot) {
	h.cur.Store(snap)
	next := make(chan struct{})
	old := h.changed.Swap(&next)
	close(*old)
}

// Stats returns the handle's mutation counters.
func (h *Handle) Stats() Stats {
	return Stats{
		Epoch:   h.Snapshot().Epoch,
		Batches: h.batches.Load(),
		Edits:   h.edits.Load(),
		ApplyMs: h.applyLat.Snapshot().SumMs,
	}
}

// ApplyLatency snapshots the handle's per-batch apply-latency histogram.
func (h *Handle) ApplyLatency() obs.HistogramSnapshot { return h.applyLat.Snapshot() }

// CollectMetrics emits the handle's mutation metrics onto e under the
// given labels — the delta subsystem's contribution to /metricsz.
func (h *Handle) CollectMetrics(e *obs.Exporter, labels ...obs.Label) {
	snap := h.Snapshot()
	e.Counter("xmatch_delta_batches_total", "Edit batches applied.", float64(h.batches.Load()), labels...)
	e.Counter("xmatch_delta_edits_total", "Edits applied across batches.", float64(h.edits.Load()), labels...)
	e.Gauge("xmatch_delta_epoch", "Current snapshot epoch.", float64(snap.Epoch), labels...)
	e.Gauge("xmatch_delta_overlay_depth", "Index overlay chain length above the nearest self-contained index.", float64(snap.Index.Stats().Overlays), labels...)
	e.Histogram("xmatch_delta_apply_seconds", "Per-batch apply latency, lock-wait excluded.", h.applyLat.Snapshot(), labels...)
}

// Apply applies one batch of edits atomically: either every edit applies
// and a new snapshot is published, or the document is unchanged. Edits
// apply in order, each resolving its target against the state left by its
// predecessors. Concurrent Apply calls serialize; readers are never
// blocked and never see a half-applied batch.
func (h *Handle) Apply(edits []Edit) (*Snapshot, error) {
	return h.ApplyLogged(edits, nil)
}

// ApplyLogged is Apply with a durability hook: after the batch has been
// validated and its snapshot built — but before publication — log is
// called (still under the write lock, so log invocations across writers
// are ordered exactly like the batches they record). log receives the
// epoch the batch produces (the epoch of the snapshot about to be
// published), so a persisted or shipped record carries the same
// consistency token clients see. If log fails the snapshot is discarded
// and the document is unchanged, so an edit log never misses a published
// batch and never records an unpublished one it cannot take back.
func (h *Handle) ApplyLogged(edits []Edit, log func(epoch uint64, edits []Edit) error) (*Snapshot, error) {
	if len(edits) == 0 {
		return nil, &EditError{Index: 0, Err: fmt.Errorf("empty edit batch")}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	cur := h.cur.Load()
	rev := cur.Doc.BeginRevision()
	for i, e := range edits {
		if err := applyOne(rev, e); err != nil {
			return nil, &EditError{Index: i, Err: err}
		}
	}
	doc, cs := rev.Commit()
	ix := cur.Index.ApplyChanges(doc, cs)
	doc.SetAccel(ix)
	if log != nil {
		if err := log(ix.Epoch(), edits); err != nil {
			return nil, fmt.Errorf("delta: logging batch: %w", err)
		}
	}
	snap := &Snapshot{Doc: doc, Index: ix, Epoch: ix.Epoch()}
	h.publish(snap)
	h.batches.Add(1)
	h.edits.Add(uint64(len(edits)))
	h.applyLat.Observe(time.Since(start))
	return snap, nil
}

// Freeze runs fn on the current snapshot while holding the write lock, so
// no Apply can publish — or log — a batch for the duration. Checkpointing
// uses it to persist the snapshot and truncate the edit log as one
// atomic-against-writers step: without the lock, a writer that had logged
// its record but not yet published could have that record destroyed by
// the truncation, silently unmapping an epoch the log had promised. fn
// must not call back into the handle's write path.
func (h *Handle) Freeze(fn func(*Snapshot) error) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return fn(h.cur.Load())
}

// Adopt atomically replaces the handle's state with an externally
// restored document — a checkpoint bootstrap on a replica that fell
// behind the primary's retained log. The document must carry an installed
// index (index.For finds it) whose epoch has been set to the restored
// point in the mutation history; subsequent applies continue from there.
func (h *Handle) Adopt(doc *xmltree.Document) (*Snapshot, error) {
	ix := index.For(doc)
	if ix == nil {
		return nil, fmt.Errorf("delta: adopt: document has no installed index")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := &Snapshot{Doc: doc, Index: ix, Epoch: ix.Epoch()}
	h.publish(snap)
	return snap, nil
}

// resolve finds the edit's target in the revision's current tree.
func resolve(rev *xmltree.Revision, e Edit) (*xmltree.Node, error) {
	if e.Start > 0 {
		if n := rev.Locate(e.Start); n != nil {
			return n, nil
		}
		return nil, fmt.Errorf("no node with start %d", e.Start)
	}
	if e.Path == "" {
		return nil, fmt.Errorf("edit addresses no node: start and path both empty")
	}
	if n := rev.LocateByPath(e.Path, e.Ordinal); n != nil {
		return n, nil
	}
	return nil, fmt.Errorf("no node %d of path %q", e.Ordinal, e.Path)
}

func applyOne(rev *xmltree.Revision, e Edit) error {
	n, err := resolve(rev, e)
	if err != nil {
		return err
	}
	switch e.Op {
	case OpInsert:
		if strings.TrimSpace(e.XML) == "" {
			return fmt.Errorf("insert: empty xml payload")
		}
		frag, err := xmltree.ParseString(e.XML)
		if err != nil {
			return fmt.Errorf("insert: %w", err)
		}
		return rev.InsertSubtree(n.Start, e.Pos, frag.Root)
	case OpDelete:
		return rev.DeleteSubtree(n.Start)
	case OpRename:
		if e.Label == "" {
			return fmt.Errorf("rename: empty label")
		}
		return rev.Rename(n.Start, e.Label)
	case OpSetText:
		return rev.SetText(n.Start, e.Text)
	default:
		return fmt.Errorf("unknown op %q", e.Op)
	}
}

// Validate checks an edit batch's shape without applying it: known ops,
// an addressable target form, and op-specific payload presence. It cannot
// check target existence — that depends on the document state at apply
// time.
func Validate(edits []Edit) error {
	if len(edits) == 0 {
		return &EditError{Index: 0, Err: fmt.Errorf("empty edit batch")}
	}
	for i, e := range edits {
		var err error
		switch e.Op {
		case OpInsert:
			if strings.TrimSpace(e.XML) == "" {
				err = fmt.Errorf("insert: empty xml payload")
			}
		case OpRename:
			if e.Label == "" {
				err = fmt.Errorf("rename: empty label")
			}
		case OpDelete, OpSetText:
		default:
			err = fmt.Errorf("unknown op %q", e.Op)
		}
		if err == nil && e.Start <= 0 && e.Path == "" {
			err = fmt.Errorf("edit addresses no node: start and path both empty")
		}
		if err != nil {
			return &EditError{Index: i, Err: err}
		}
	}
	return nil
}
