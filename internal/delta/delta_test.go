package delta_test

import (
	"errors"
	"strings"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/xmltree"
)

func open(t *testing.T, xml string) (*delta.Handle, *delta.Snapshot) {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	h := delta.Open(doc)
	return h, h.Snapshot()
}

func TestApplyPublishesNewSnapshot(t *testing.T) {
	h, s0 := open(t, `<r><a>1</a><b/></r>`)
	if s0.Epoch != 0 || s0.Index != index.For(s0.Doc) {
		t.Fatalf("initial snapshot: epoch %d, index attached %v", s0.Epoch, s0.Index == index.For(s0.Doc))
	}
	s1, err := h.Apply([]delta.Edit{
		{Op: delta.OpSetText, Path: "r.a", Text: "2"},
		{Op: delta.OpInsert, Path: "r", XML: `<c>new</c>`, Pos: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch != 1 || h.Snapshot() != s1 {
		t.Fatalf("epoch %d after one batch", s1.Epoch)
	}
	if got := s1.Doc.NodesByPath("r.a")[0].Text; got != "2" {
		t.Fatalf("settext not applied: %q", got)
	}
	if got := s1.Doc.NodesByPath("r.c")[0].Text; got != "new" {
		t.Fatalf("insert not applied: %q", got)
	}
	// The old snapshot is fully intact: document and index.
	if got := s0.Doc.NodesByPath("r.a")[0].Text; got != "1" {
		t.Fatalf("old snapshot text changed to %q", got)
	}
	if s0.Doc.NodesByPath("r.c") != nil || len(s0.Index.Postings("r.c")) != 0 {
		t.Fatal("old snapshot sees inserted path")
	}
	if len(s0.Index.ValuePostings("r.a", "1")) != 1 {
		t.Fatal("old snapshot value index changed")
	}
	// The new index answers for the new state.
	if len(s1.Index.ValuePostings("r.a", "2")) != 1 || len(s1.Index.ValuePostings("r.a", "1")) != 0 {
		t.Fatal("new snapshot value index wrong")
	}
	st := h.Stats()
	if st.Epoch != 1 || st.Batches != 1 || st.Edits != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestApplyIsAtomic(t *testing.T) {
	h, s0 := open(t, `<r><a>1</a></r>`)
	_, err := h.Apply([]delta.Edit{
		{Op: delta.OpSetText, Path: "r.a", Text: "2"},
		{Op: delta.OpDelete, Path: "r.missing"},
	})
	var ee *delta.EditError
	if !errors.As(err, &ee) || ee.Index != 1 {
		t.Fatalf("want EditError at index 1, got %v", err)
	}
	if h.Snapshot() != s0 {
		t.Fatal("failed batch advanced the snapshot")
	}
	if s0.Doc.NodesByPath("r.a")[0].Text != "1" {
		t.Fatal("failed batch mutated the document")
	}
}

func TestApplyEditErrors(t *testing.T) {
	cases := []struct {
		name  string
		edits []delta.Edit
	}{
		{"empty batch", nil},
		{"unknown op", []delta.Edit{{Op: "replace", Path: "r"}}},
		{"no address", []delta.Edit{{Op: delta.OpDelete}}},
		{"bad start", []delta.Edit{{Op: delta.OpDelete, Start: 99999}}},
		{"bad ordinal", []delta.Edit{{Op: delta.OpSetText, Path: "r.a", Ordinal: 5, Text: "x"}}},
		{"delete root", []delta.Edit{{Op: delta.OpDelete, Path: "r"}}},
		{"empty rename", []delta.Edit{{Op: delta.OpRename, Path: "r.a"}}},
		{"empty insert xml", []delta.Edit{{Op: delta.OpInsert, Path: "r"}}},
		{"malformed insert xml", []delta.Edit{{Op: delta.OpInsert, Path: "r", XML: "<u>"}}},
	}
	for _, tc := range cases {
		h, _ := open(t, `<r><a>1</a></r>`)
		_, err := h.Apply(tc.edits)
		var ee *delta.EditError
		if err == nil || !errors.As(err, &ee) {
			t.Errorf("%s: got %v, want *EditError", tc.name, err)
		}
		if tc.edits != nil {
			// Validate checks batch shape only; target existence and XML
			// well-formedness are apply-time concerns.
			applyOnly := tc.name == "bad start" || tc.name == "bad ordinal" ||
				tc.name == "delete root" || tc.name == "malformed insert xml"
			if verr := delta.Validate(tc.edits); (verr == nil) != applyOnly {
				t.Errorf("%s: Validate() = %v", tc.name, verr)
			}
		}
	}
}

func TestApplyLogged(t *testing.T) {
	h, s0 := open(t, `<r><a>1</a></r>`)
	var logged [][]delta.Edit
	var epochs []uint64
	batch := []delta.Edit{{Op: delta.OpSetText, Path: "r.a", Text: "2"}}
	if _, err := h.ApplyLogged(batch, func(epoch uint64, es []delta.Edit) error {
		logged = append(logged, es)
		epochs = append(epochs, epoch)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 1 || len(logged[0]) != 1 {
		t.Fatalf("logged %v", logged)
	}
	// The hook sees the epoch the batch produces — the one the published
	// snapshot will carry.
	if len(epochs) != 1 || epochs[0] != h.Snapshot().Epoch {
		t.Fatalf("logged epochs %v, snapshot epoch %d", epochs, h.Snapshot().Epoch)
	}
	// A failing log must abort publication.
	_, err := h.ApplyLogged(batch, func(uint64, []delta.Edit) error { return errors.New("disk full") })
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("log failure not surfaced: %v", err)
	}
	if h.Snapshot().Epoch != 1 {
		t.Fatal("snapshot advanced despite log failure")
	}
	// An invalid batch must not reach the log.
	logged = nil
	if _, err := h.ApplyLogged([]delta.Edit{{Op: "bogus", Path: "r"}}, func(_ uint64, es []delta.Edit) error {
		logged = append(logged, es)
		return nil
	}); err == nil || logged != nil {
		t.Fatalf("invalid batch logged: err=%v logged=%v", err, logged)
	}
	_ = s0
}

func TestFreezeAndAdopt(t *testing.T) {
	h, _ := open(t, `<r><a>1</a></r>`)
	if _, err := h.Apply([]delta.Edit{{Op: delta.OpSetText, Path: "r.a", Text: "2"}}); err != nil {
		t.Fatal(err)
	}
	// Freeze sees the current snapshot and excludes writers while it runs.
	var frozen uint64
	if err := h.Freeze(func(s *delta.Snapshot) error {
		frozen = s.Epoch
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frozen != 1 {
		t.Fatalf("frozen epoch %d, want 1", frozen)
	}
	wantErr := errors.New("boom")
	if err := h.Freeze(func(*delta.Snapshot) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Freeze error not surfaced: %v", err)
	}

	// Adopt swaps in a foreign document wholesale, keeping its index and
	// epoch.
	doc2, err := xmltree.ParseString(`<r><a>9</a><b>8</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Attach(doc2)
	ix.SetEpoch(41)
	snap, err := h.Adopt(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Doc != doc2 || snap.Epoch != 41 || h.Snapshot() != snap {
		t.Fatalf("adopt did not publish: %+v", snap)
	}
	// Edits continue from the adopted epoch.
	snap2, err := h.Apply([]delta.Edit{{Op: delta.OpSetText, Path: "r.b", Text: "7"}})
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 42 {
		t.Fatalf("post-adopt epoch %d, want 42", snap2.Epoch)
	}
	// A document with no installed index is refused.
	doc3, err := xmltree.ParseString(`<r/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Adopt(doc3); err == nil {
		t.Fatal("adopted a document with no index")
	}
}

func TestOpenAdoptsLoadedIndex(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a>1</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Attach(doc)
	h := delta.Open(doc)
	if h.Snapshot().Index != ix {
		t.Fatal("Open rebuilt an already-attached index")
	}
}
