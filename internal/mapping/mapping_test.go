package mapping

import (
	"math"
	"testing"

	"xmatch/internal/schema"
)

func flatSchema(t *testing.T, name string, n int) *schema.Schema {
	if t != nil {
		t.Helper()
	}
	b := schema.NewBuilder(name, "root")
	for i := 1; i < n; i++ {
		b.Root.AddChild("e" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+i/10%10)))
	}
	return b.Freeze()
}

func TestNewSetValidation(t *testing.T) {
	src := flatSchema(t, "S", 5)
	tgt := flatSchema(t, "T", 5)
	cases := []struct {
		name  string
		pairs []Pair
	}{
		{"target out of range", []Pair{{S: 1, T: 9}}},
		{"source out of range", []Pair{{S: 9, T: 1}}},
		{"target matched twice", []Pair{{S: 1, T: 1}, {S: 2, T: 1}}},
		{"source matched twice", []Pair{{S: 1, T: 1}, {S: 1, T: 2}}},
	}
	for _, c := range cases {
		m := &Mapping{Pairs: c.pairs, Score: 1}
		if _, err := NewSet(src, tgt, []*Mapping{m}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSetProbabilities(t *testing.T) {
	src := flatSchema(t, "S", 5)
	tgt := flatSchema(t, "T", 5)
	set := MustNewSet(src, tgt, []*Mapping{
		{Pairs: []Pair{{S: 1, T: 1}}, Score: 3},
		{Pairs: []Pair{{S: 2, T: 1}}, Score: 1},
	})
	if math.Abs(set.Mappings[0].Prob-0.75) > 1e-12 || math.Abs(set.Mappings[1].Prob-0.25) > 1e-12 {
		t.Fatalf("probs = %v, %v", set.Mappings[0].Prob, set.Mappings[1].Prob)
	}
	if set.Mappings[0].Score < set.Mappings[1].Score {
		t.Fatal("mappings must be ordered by non-increasing score")
	}
}

func TestSourceForAndCovers(t *testing.T) {
	src := flatSchema(t, "S", 6)
	tgt := flatSchema(t, "T", 6)
	set := MustNewSet(src, tgt, []*Mapping{
		{Pairs: []Pair{{S: 2, T: 3}, {S: 1, T: 1}}, Score: 1},
	})
	m := set.Mappings[0]
	if s, ok := m.SourceFor(3); !ok || s != 2 {
		t.Fatalf("SourceFor(3) = %d, %v", s, ok)
	}
	if _, ok := m.SourceFor(2); ok {
		t.Fatal("SourceFor on unmapped target must report false")
	}
	if !m.Covers([]int{1, 3}) || m.Covers([]int{1, 2}) {
		t.Fatal("Covers wrong")
	}
	// Pairs must be sorted by target after freeze.
	if m.Pairs[0].T != 1 || m.Pairs[1].T != 3 {
		t.Fatalf("pairs not sorted: %v", m.Pairs)
	}
}

func TestORatio(t *testing.T) {
	a := &Mapping{Pairs: []Pair{{1, 1}, {2, 2}, {3, 3}}}
	b := &Mapping{Pairs: []Pair{{1, 1}, {2, 2}, {4, 3}}}
	// Intersection: (1,1),(2,2) = 2; union: 4.
	if got := ORatio(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ORatio = %v, want 0.5", got)
	}
	if got := ORatio(a, a); got != 1 {
		t.Fatalf("self o-ratio = %v", got)
	}
	empty := &Mapping{}
	if got := ORatio(empty, empty); got != 1 {
		t.Fatalf("empty o-ratio = %v", got)
	}
	if got := ORatio(a, empty); got != 0 {
		t.Fatalf("disjoint o-ratio = %v", got)
	}
}

func TestAverageORatio(t *testing.T) {
	src := flatSchema(t, "S", 6)
	tgt := flatSchema(t, "T", 6)
	set := MustNewSet(src, tgt, []*Mapping{
		{Pairs: []Pair{{S: 1, T: 1}, {S: 2, T: 2}}, Score: 1},
		{Pairs: []Pair{{S: 1, T: 1}, {S: 3, T: 2}}, Score: 1},
	})
	// o-ratio: inter 1, union 3 => 1/3.
	if got := set.AverageORatio(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("avg o-ratio = %v", got)
	}
	single := MustNewSet(src, tgt, []*Mapping{{Score: 1}})
	if !math.IsNaN(single.AverageORatio()) {
		t.Fatal("single-mapping set should return NaN")
	}
}

func TestIDSetBasics(t *testing.T) {
	s := NewIDSet(130)
	if !s.IsEmpty() || s.Len() != 0 || s.Universe() != 130 {
		t.Fatal("fresh set not empty")
	}
	for _, id := range []int{0, 63, 64, 129} {
		s.Add(id)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	for _, id := range []int{0, 63, 64, 129} {
		if !s.Has(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Fatal("spurious members")
	}
	ids := s.IDs()
	want := []int{0, 63, 64, 129}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v", ids)
		}
	}
	if s.String() != "{0,63,64,129}" {
		t.Fatalf("String = %s", s.String())
	}
}

func TestIDSetOps(t *testing.T) {
	a := NewIDSet(100)
	b := NewIDSet(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	inter := a.Intersect(b)
	if inter.Len() != 17 { // multiples of 6 in [0,100): 0,6,...,96
		t.Fatalf("intersect len = %d", inter.Len())
	}
	if got := a.IntersectLen(b); got != 17 {
		t.Fatalf("IntersectLen = %d", got)
	}
	// Intersect must not mutate its operands.
	if a.Len() != 50 || b.Len() != 34 {
		t.Fatal("operands mutated")
	}
	u := a.Clone().UnionWith(b)
	if u.Len() != 50+34-17 {
		t.Fatalf("union len = %d", u.Len())
	}
	d := a.Clone().SubtractWith(b)
	if d.Len() != 50-17 {
		t.Fatalf("subtract len = %d", d.Len())
	}
	full := FullIDSet(100)
	if full.Len() != 100 || !full.Has(99) {
		t.Fatalf("full set wrong: %d", full.Len())
	}
	if full.Bytes() != 16 {
		t.Fatalf("bytes = %d", full.Bytes())
	}
}

func TestFullIDSetBoundary(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128} {
		f := FullIDSet(n)
		if f.Len() != n {
			t.Fatalf("FullIDSet(%d).Len() = %d", n, f.Len())
		}
	}
}

func TestRawBytesEmpty(t *testing.T) {
	src := flatSchema(t, "S", 3)
	tgt := flatSchema(t, "T", 3)
	set := MustNewSet(src, tgt, nil)
	if set.RawBytes() != 0 {
		t.Fatalf("raw bytes of empty set = %d", set.RawBytes())
	}
	if set.Len() != 0 {
		t.Fatal("len of empty set")
	}
}
