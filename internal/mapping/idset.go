package mapping

import (
	"math/bits"
	"strconv"
	"strings"
)

// IDSet is a fixed-universe bitset of mapping IDs [0, n). It backs the b.M
// component of blocks: Algorithm 2 of the paper is dominated by
// intersections of mapping-ID sets, which bitsets perform word-parallel.
// The zero value is unusable; create with NewIDSet.
type IDSet struct {
	n     int
	words []uint64
}

// NewIDSet returns an empty set over the universe [0, n).
func NewIDSet(n int) *IDSet {
	return &IDSet{n: n, words: make([]uint64, (n+63)/64)}
}

// FullIDSet returns the set containing all of [0, n).
func FullIDSet(n int) *IDSet {
	s := NewIDSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << rem) - 1
	}
	return s
}

// Universe returns n, the size of the universe.
func (s *IDSet) Universe() int { return s.n }

// Add inserts id into the set.
func (s *IDSet) Add(id int) { s.words[id>>6] |= 1 << (uint(id) & 63) }

// Has reports whether id is in the set.
func (s *IDSet) Has(id int) bool { return s.words[id>>6]&(1<<(uint(id)&63)) != 0 }

// Len returns the number of elements in the set.
func (s *IDSet) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of the set.
func (s *IDSet) Clone() *IDSet {
	return &IDSet{n: s.n, words: append([]uint64(nil), s.words...)}
}

// IntersectWith replaces s with s ∩ o and returns s.
func (s *IDSet) IntersectWith(o *IDSet) *IDSet {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Intersect returns a new set s ∩ o.
func (s *IDSet) Intersect(o *IDSet) *IDSet { return s.Clone().IntersectWith(o) }

// UnionWith replaces s with s ∪ o and returns s.
func (s *IDSet) UnionWith(o *IDSet) *IDSet {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// SubtractWith replaces s with s \ o and returns s.
func (s *IDSet) SubtractWith(o *IDSet) *IDSet {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// IntersectLen returns |s ∩ o| without allocating.
func (s *IDSet) IntersectLen(o *IDSet) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// IsEmpty reports whether the set is empty.
func (s *IDSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// IDs returns the members in ascending order.
func (s *IDSet) IDs() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// Bytes returns the storage footprint of the set in the byte-size model of
// the compression-ratio metric (one 64-bit word per 64 universe slots).
func (s *IDSet) Bytes() int { return 8 * len(s.words) }

// String renders the set as "{0,3,17}".
func (s *IDSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.IDs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	b.WriteByte('}')
	return b.String()
}
