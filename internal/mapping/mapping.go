// Package mapping models possible mappings between two schemas: in each
// mapping every element corresponds to at most one element of the other
// schema, and the mapping carries a probability of being the true one
// (Cheng, Gong, Cheung, ICDE 2010, Section I). A Set holds the possible
// mappings M = {m1, ..., m|M|} derived from one schema matching, with
// probabilities summing to one.
//
// The package also provides the o-ratio overlap measure of Section VI-B1
// and the byte-size accounting used by the block-tree compression-ratio
// experiment (Figure 9(a)).
package mapping

import (
	"fmt"
	"math"
	"sort"

	"xmatch/internal/matching"
	"xmatch/internal/schema"
)

// Pair is one correspondence of a mapping: target element T corresponds to
// source element S. Scores live on the matching; mappings only record which
// correspondences they selected.
type Pair struct {
	S, T int
}

// Mapping is one possible mapping mi: a partial injective function from
// target elements to source elements.
type Mapping struct {
	// Pairs is sorted by target element ID; target IDs are unique, and
	// so are source IDs (a mapping is one-to-one).
	Pairs []Pair
	// Score is the sum of the scores of the selected correspondences.
	Score float64
	// Prob is the probability pi that this mapping is the true one;
	// within a Set the probabilities sum to 1.
	Prob float64

	srcByTarget []int32 // target ID -> source ID or -1; built by freeze
}

// SourceFor returns the source element ID that target element t maps to,
// and whether t has a correspondence in this mapping.
func (m *Mapping) SourceFor(t int) (int, bool) {
	s := m.srcByTarget[t]
	if s < 0 {
		return 0, false
	}
	return int(s), true
}

// Covers reports whether every target element ID in ts has a correspondence
// in this mapping (the relevance test of filter_mappings, Algorithm 3).
func (m *Mapping) Covers(ts []int) bool {
	for _, t := range ts {
		if m.srcByTarget[t] < 0 {
			return false
		}
	}
	return true
}

// Len returns the number of correspondences in the mapping.
func (m *Mapping) Len() int { return len(m.Pairs) }

func (m *Mapping) freeze(targetLen int) error {
	sort.Slice(m.Pairs, func(i, j int) bool { return m.Pairs[i].T < m.Pairs[j].T })
	m.srcByTarget = make([]int32, targetLen)
	for i := range m.srcByTarget {
		m.srcByTarget[i] = -1
	}
	srcSeen := make(map[int]bool, len(m.Pairs))
	for i, p := range m.Pairs {
		if p.T < 0 || p.T >= targetLen {
			return fmt.Errorf("mapping: target ID %d out of range", p.T)
		}
		if i > 0 && m.Pairs[i-1].T == p.T {
			return fmt.Errorf("mapping: target %d matched twice", p.T)
		}
		if srcSeen[p.S] {
			return fmt.Errorf("mapping: source %d matched twice", p.S)
		}
		srcSeen[p.S] = true
		m.srcByTarget[p.T] = int32(p.S)
	}
	return nil
}

// ORatio returns the overlap ratio |mi ∩ mj| / |mi ∪ mj| of two mappings,
// where a mapping is viewed as its set of (S, T) pairs (Section VI-B1).
// Two empty mappings have o-ratio 1.
func ORatio(a, b *Mapping) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a.Pairs) && j < len(b.Pairs) {
		pa, pb := a.Pairs[i], b.Pairs[j]
		switch {
		case pa.T < pb.T:
			i++
		case pa.T > pb.T:
			j++
		default:
			if pa.S == pb.S {
				inter++
			}
			i++
			j++
		}
	}
	union := len(a.Pairs) + len(b.Pairs) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Set is a set of possible mappings M between a source and target schema.
type Set struct {
	Source, Target *schema.Schema
	Mappings       []*Mapping
}

// NewSet validates mappings against the schemas, normalizes scores into
// probabilities (pi = score_i / Σ scores) and returns the set. Mappings are
// ordered by non-increasing score. An all-zero score sum yields uniform
// probabilities.
func NewSet(source, target *schema.Schema, mappings []*Mapping) (*Set, error) {
	set := &Set{Source: source, Target: target, Mappings: mappings}
	var total float64
	for i, m := range mappings {
		if err := m.freeze(target.Len()); err != nil {
			return nil, fmt.Errorf("mapping %d: %w", i, err)
		}
		for _, p := range m.Pairs {
			if p.S < 0 || p.S >= source.Len() {
				return nil, fmt.Errorf("mapping %d: source ID %d out of range", i, p.S)
			}
		}
		total += m.Score
	}
	for _, m := range mappings {
		if total > 0 {
			m.Prob = m.Score / total
		} else if len(mappings) > 0 {
			m.Prob = 1 / float64(len(mappings))
		}
	}
	sort.SliceStable(set.Mappings, func(i, j int) bool {
		return set.Mappings[i].Score > set.Mappings[j].Score
	})
	return set, nil
}

// MustNewSet is NewSet, panicking on error.
func MustNewSet(source, target *schema.Schema, mappings []*Mapping) *Set {
	s, err := NewSet(source, target, mappings)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns |M|.
func (s *Set) Len() int { return len(s.Mappings) }

// AverageORatio returns the mean o-ratio over all unordered pairs of
// mappings, the per-dataset statistic of Table II. It returns NaN for sets
// with fewer than two mappings.
func (s *Set) AverageORatio() float64 {
	n := len(s.Mappings)
	if n < 2 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += ORatio(s.Mappings[i], s.Mappings[j])
		}
	}
	return sum / float64(n*(n-1)/2)
}

// FromMatchingCorrs builds a mapping from a matching by selecting the given
// correspondence indices. The selection must itself be one-to-one.
func FromMatchingCorrs(u *matching.Matching, corrIdx []int) (*Mapping, error) {
	m := &Mapping{}
	for _, ci := range corrIdx {
		if ci < 0 || ci >= len(u.Corrs) {
			return nil, fmt.Errorf("mapping: correspondence index %d out of range", ci)
		}
		c := u.Corrs[ci]
		m.Pairs = append(m.Pairs, Pair{S: c.S, T: c.T})
		m.Score += c.Score
	}
	return m, nil
}

// Storage-size model used by the compression-ratio metric of Figure 9(a).
// The constants mirror a straightforward binary encoding: a correspondence
// is two 32-bit element IDs plus its 64-bit similarity score, a mapping
// carries a fixed header (score, probability, count), and a block reference
// is a 64-bit pointer.
const (
	CorrBytes       = 16 // two int32 element IDs + float64 score
	MappingOverhead = 24 // score + prob + length
	BlockRefBytes   = 8  // pointer to a shared block
)

// RawBytes returns the bytes needed to store all mappings of the set
// verbatim, the denominator of the compression ratio.
func (s *Set) RawBytes() int {
	total := 0
	for _, m := range s.Mappings {
		total += MappingOverhead + CorrBytes*len(m.Pairs)
	}
	return total
}

// String describes the set briefly.
func (s *Set) String() string {
	return fmt.Sprintf("mapping set %s->%s (|M|=%d)", s.Source.Name, s.Target.Name, len(s.Mappings))
}
