package engine_test

// Differential tests: for every worker count and batch size the engine must
// return byte-identical results to the sequential core evaluators — same
// mapping order, same match order, probabilities within 1e-12 — across
// randomized mapping sets derived from the paper's datasets.

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// workerCounts are the pool sizes every differential assertion runs under.
func workerCounts() []int {
	return []int{1, 2, 8, runtime.GOMAXPROCS(0)}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randomSubSet derives a fresh mapping set by sampling a random subset of a
// base set's mappings (at least 2) and renormalizing probabilities through
// mapping.NewSet. Mappings are deep-copied so the base set's probabilities
// are untouched.
func randomSubSet(t *testing.T, base *mapping.Set, rng *rand.Rand) *mapping.Set {
	t.Helper()
	n := 2 + rng.Intn(base.Len()-1)
	idx := rng.Perm(base.Len())[:n]
	picked := make([]*mapping.Mapping, n)
	for i, mi := range idx {
		src := base.Mappings[mi]
		picked[i] = &mapping.Mapping{
			Pairs: append([]mapping.Pair(nil), src.Pairs...),
			Score: src.Score,
		}
	}
	set, err := mapping.NewSet(base.Source, base.Target, picked)
	if err != nil {
		t.Fatalf("randomSubSet: %v", err)
	}
	return set
}

// assertSameResults requires a and b to be byte-identical answers:
// same mappings in the same order, same matches in the same order (compared
// by canonical key), probabilities within 1e-12.
func assertSameResults(t *testing.T, label string, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.MappingIndex != g.MappingIndex {
			t.Fatalf("%s: result %d has mapping %d, want %d", label, i, g.MappingIndex, w.MappingIndex)
		}
		if math.Abs(w.Prob-g.Prob) > 1e-12 {
			t.Fatalf("%s: result %d prob %v, want %v", label, i, g.Prob, w.Prob)
		}
		if len(w.Matches) != len(g.Matches) {
			t.Fatalf("%s: result %d has %d matches, want %d", label, i, len(g.Matches), len(w.Matches))
		}
		for j := range w.Matches {
			if w.Matches[j].Key() != g.Matches[j].Key() {
				t.Fatalf("%s: result %d match %d is %q, want %q",
					label, i, j, g.Matches[j].Key(), w.Matches[j].Key())
			}
		}
	}
}

// diffFixture is the shared workload: dataset D7 (whose target schema the
// Table III queries are posed against), a generated order document, and a
// base mapping set to subsample.
type diffFixture struct {
	d    *dataset.Dataset
	doc  *xmltree.Document
	base *mapping.Set
}

func newDiffFixture(t *testing.T) *diffFixture {
	t.Helper()
	d, err := dataset.Load("D7")
	if err != nil {
		t.Fatal(err)
	}
	base, err := mapgen.TopH(d.Matching, 120, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	return &diffFixture{d: d, doc: d.OrderDocument(1200, 7), base: base}
}

func TestDifferentialBasic(t *testing.T) {
	fix := newDiffFixture(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		set := randomSubSet(t, fix.base, rng)
		for _, spec := range dataset.Queries() {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			want := core.EvaluateBasic(q, set, fix.doc)
			for _, w := range workerCounts() {
				e := engine.New(engine.Options{Workers: w})
				got := e.EvaluateBasic(q, set, fix.doc)
				assertSameResults(t, fmt.Sprintf("trial %d %s workers=%d", trial, spec.ID, w), want, got)
			}
		}
	}
}

func TestDifferentialCompact(t *testing.T) {
	fix := newDiffFixture(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range dataset.Queries() {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			want := core.Evaluate(q, set, fix.doc, bt)
			for _, w := range workerCounts() {
				e := engine.New(engine.Options{Workers: w})
				got := e.Evaluate(q, set, fix.doc, bt)
				assertSameResults(t, fmt.Sprintf("trial %d %s workers=%d", trial, spec.ID, w), want, got)
			}
		}
	}
}

func TestDifferentialTopK(t *testing.T) {
	fix := newDiffFixture(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ks := []int{1, 2, set.Len() / 2, set.Len(), set.Len() + 10}
		for _, spec := range dataset.Queries()[:5] {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			for _, k := range ks {
				want := core.EvaluateTopK(q, set, fix.doc, bt, k)
				for _, w := range workerCounts() {
					e := engine.New(engine.Options{Workers: w})
					got := e.EvaluateTopK(q, set, fix.doc, bt, k)
					assertSameResults(t, fmt.Sprintf("trial %d %s k=%d workers=%d", trial, spec.ID, k, w), want, got)
				}
			}
		}
	}
}

func TestDifferentialBatch(t *testing.T) {
	fix := newDiffFixture(t)
	rng := rand.New(rand.NewSource(4))
	set := randomSubSet(t, fix.base, rng)
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()
	for _, batchSize := range []int{1, 3, 7, 25} {
		reqs := make([]engine.Request, batchSize)
		for i := range reqs {
			spec := specs[rng.Intn(len(specs))]
			reqs[i] = engine.Request{Pattern: spec.Text, K: rng.Intn(3) * 5} // K in {0, 5, 10}
		}
		for _, w := range workerCounts() {
			e := engine.New(engine.Options{Workers: w})
			resps := e.EvaluateBatch(set, fix.doc, bt, reqs)
			if len(resps) != len(reqs) {
				t.Fatalf("batch=%d workers=%d: %d responses", batchSize, w, len(resps))
			}
			for i, resp := range resps {
				if resp.Err != nil {
					t.Fatalf("batch=%d workers=%d req %d: %v", batchSize, w, i, resp.Err)
				}
				if resp.Pattern != reqs[i].Pattern || resp.K != reqs[i].K {
					t.Fatalf("batch=%d workers=%d req %d: response echoes %q/%d", batchSize, w, i, resp.Pattern, resp.K)
				}
				q, err := core.PrepareQuery(reqs[i].Pattern, set)
				if err != nil {
					t.Fatal(err)
				}
				var want []core.Result
				if reqs[i].K > 0 {
					want = core.EvaluateTopK(q, set, fix.doc, bt, reqs[i].K)
				} else {
					want = core.Evaluate(q, set, fix.doc, bt)
				}
				assertSameResults(t, fmt.Sprintf("batch=%d workers=%d req %d", batchSize, w, i), want, resp.Results)
			}
		}
	}
}

// TestDifferentialBatchBasic covers the nil-block-tree path: every request
// falls back to basic evaluation over all mappings.
func TestDifferentialBatchBasic(t *testing.T) {
	fix := newDiffFixture(t)
	rng := rand.New(rand.NewSource(5))
	set := randomSubSet(t, fix.base, rng)
	specs := dataset.Queries()[:4]
	reqs := make([]engine.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = engine.Request{Pattern: spec.Text}
	}
	e := engine.New(engine.Options{Workers: runtime.GOMAXPROCS(0)})
	for i, resp := range e.EvaluateBatch(set, fix.doc, nil, reqs) {
		if resp.Err != nil {
			t.Fatalf("req %d: %v", i, resp.Err)
		}
		q, err := core.PrepareQuery(reqs[i].Pattern, set)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("req %d", i), core.EvaluateBasic(q, set, fix.doc), resp.Results)
	}
}
