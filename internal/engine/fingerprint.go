package engine

import (
	"hash/fnv"
	"io"
	"strconv"

	"xmatch/internal/core"
)

// Query fingerprinting. The PTQ model makes (pattern, mode, k) over a
// dataset the unit of work — two requests with the same fingerprint do
// the same evaluation — so the fingerprint is the key the serving
// layer's workload accounting, capture log, and (eventually) the cost
// planner all agree on. It is computed at prepare time from the parsed
// pattern's canonical rendering, so textual variations that parse to the
// same pattern (whitespace, say) collapse to one fingerprint.

// Fingerprint returns the canonical workload fingerprint of a prepared
// query evaluated in the given mode over the named dataset.
func Fingerprint(dataset string, q *core.Query, mode string, k int) uint64 {
	return FingerprintPattern(dataset, q.Pattern.String(), mode, k)
}

// FingerprintPattern is Fingerprint over an already-canonical pattern
// rendering — the form workload-capture records carry, so a replay can
// recompute the fingerprint it is about to re-run. K participates only
// in topk mode (the other evaluators ignore it, so it must not split
// their fingerprints). The hash is FNV-64a over the NUL-separated
// fields; dotted paths and pattern text never contain NUL.
func FingerprintPattern(dataset, canonicalPattern, mode string, k int) uint64 {
	if mode != "topk" {
		k = 0
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, dataset)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, canonicalPattern)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, mode)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, strconv.Itoa(k))
	return h.Sum64()
}
