package engine

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrCanceled reports an evaluation unit that was abandoned because the
// view's context was canceled or its deadline passed. Batch responses
// carry it for requests never (fully) evaluated; single-query callers
// should consult their context's error instead, which distinguishes
// cancellation from deadline expiry.
var ErrCanceled = errors.New("engine: evaluation canceled")

// WithContext returns a view of the engine whose evaluations observe ctx:
// once ctx is canceled or times out, every evaluation loop on the view —
// including the core evaluators' per-mapping loops, reached through a
// stop flag threaded into their memo caches — exits at its next
// checkpoint, pool slots the view reserved are returned, and any bounded
// slot wait (Options.SlotWait) is cut short. Evaluation results produced
// after cancellation are partial; callers must check ctx.Err() before
// trusting them.
//
// The view shares the parent's worker budget, admission gates, and
// prepared-query cache, like Sub. A context that can never be canceled
// returns the engine unchanged, so the uncancellable path stays
// zero-cost. The caller must eventually cancel ctx (request-scoped
// contexts with a deferred cancel do) to release the cancellation hook.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	if ctx == nil || ctx.Done() == nil {
		return e
	}
	view := *e
	stop := new(atomic.Bool)
	context.AfterFunc(ctx, func() { stop.Store(true) })
	view.stop = stop
	view.done = ctx.Done()
	return &view
}

// canceled reports whether the view's context has been canceled. On an
// engine without a context view this is a nil check — the fast path every
// per-mapping loop pays.
func (e *Engine) canceled() bool { return e.stop != nil && e.stop.Load() }
