package engine_test

// Live-document differentials: the PR-1/PR-3 guarantee — parallel equals
// sequential equals joined-matcher evaluation, byte-for-byte on the wire —
// extended across document mutation. After every randomized edit batch,
// basic, compact, top-k, and aggregate answers must agree between the
// incrementally-maintained index, a full index.Build rebuild over the same
// snapshot, and the unindexed joined matcher, under both sequential core
// evaluation and the parallel engine (run with -race in CI). A separate
// stress test races writers against readers on pinned snapshots.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/delta"
	"xmatch/internal/engine"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// deltaFixture builds a small live dataset: mapping set, block tree,
// document behind a delta handle, and source-side paths to mutate.
type deltaFixture struct {
	set  *mapping.Set
	tree *core.BlockTree
	h    *delta.Handle
	pats []string
}

func newDeltaFixture(t testing.TB, docSeed int64) *deltaFixture {
	t.Helper()
	d := dataset.MustLoad("D1")
	set, err := mapgen.TopH(d.Matching, 10, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	doc := d.OrderDocument(300, docSeed)
	var pats []string
	for _, e := range set.Target.Leaves() {
		p := ""
		for _, c := range e.Path {
			if c == '.' {
				p += "/"
			} else {
				p += string(c)
			}
		}
		if _, err := core.PrepareQuery(p, set); err == nil {
			pats = append(pats, p)
			if len(pats) == 3 {
				break
			}
		}
	}
	if len(pats) == 0 {
		t.Fatal("no resolvable leaf patterns")
	}
	return &deltaFixture{set: set, tree: bt, h: delta.Open(doc), pats: pats}
}

// randomBatch builds 1-3 edits against the snapshot's document.
func randomBatch(rng *rand.Rand, doc *xmltree.Document) []delta.Edit {
	ns := doc.Nodes()
	k := 1 + rng.Intn(3)
	edits := make([]delta.Edit, 0, k)
	for i := 0; i < k; i++ {
		n := ns[rng.Intn(len(ns))]
		switch rng.Intn(4) {
		case 0:
			edits = append(edits, delta.Edit{Op: delta.OpInsert, Start: n.Start, Pos: -1,
				XML: fmt.Sprintf("<Extra><V>x%d</V></Extra>", rng.Intn(9))})
		case 1:
			if n != doc.Root {
				edits = append(edits, delta.Edit{Op: delta.OpDelete, Start: n.Start})
				continue
			}
			fallthrough
		case 2:
			edits = append(edits, delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: fmt.Sprintf("v%d", rng.Intn(9))})
		default:
			edits = append(edits, delta.Edit{Op: delta.OpSetText, Start: n.Start, Text: ""})
		}
	}
	return edits
}

// answers renders one evaluation's full wire form (results + aggregated
// answers), the byte-identity currency of the differential.
func answers(t testing.TB, q *core.Query, results []core.Result) string {
	t.Helper()
	res, err := json.Marshal(core.ToWire(results))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := json.Marshal(core.AnswersToWire(core.AggregateLeaf(q, results)))
	if err != nil {
		t.Fatal(err)
	}
	return string(res) + "|" + string(ans)
}

func TestEngineDeltaDifferential(t *testing.T) {
	f := newDeltaFixture(t, 11)
	eng := engine.New(engine.Options{Workers: 4})
	rng := rand.New(rand.NewSource(4))

	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		cur := f.h.Snapshot()
		snap, err := f.h.Apply(randomBatch(rng, cur.Doc))
		if err != nil {
			continue // batch invalidated itself (delete then edit); fine
		}
		doc := snap.Doc

		for _, pattern := range f.pats {
			q, err := core.PrepareQuery(pattern, f.set)
			if err != nil {
				t.Fatal(err)
			}
			type mode struct {
				name string
				seq  func() []core.Result
				par  func() []core.Result
			}
			modes := []mode{
				{"basic",
					func() []core.Result { return core.EvaluateBasic(q, f.set, doc) },
					func() []core.Result { return eng.EvaluateBasic(q, f.set, doc) }},
				{"compact",
					func() []core.Result { return core.Evaluate(q, f.set, doc, f.tree) },
					func() []core.Result { return eng.Evaluate(q, f.set, doc, f.tree) }},
				{"topk",
					func() []core.Result { return core.EvaluateTopK(q, f.set, doc, f.tree, 3) },
					func() []core.Result { return eng.EvaluateTopK(q, f.set, doc, f.tree, 3) }},
			}
			for _, m := range modes {
				// Incrementally-maintained index (the live accelerator).
				incSeq := answers(t, q, m.seq())
				incPar := answers(t, q, m.par())
				// Full rebuild over the same snapshot document.
				index.Build(doc).Install()
				rebSeq := answers(t, q, m.seq())
				rebPar := answers(t, q, m.par())
				// Joined matcher (no accelerator at all).
				doc.SetAccel(nil)
				joined := answers(t, q, m.seq())
				snap.Index.Install() // restore the live index
				if incSeq != incPar {
					t.Fatalf("round %d %s %s: parallel diverged from sequential", round, pattern, m.name)
				}
				if incSeq != rebSeq || incPar != rebPar {
					t.Fatalf("round %d %s %s: incremental index diverged from full rebuild", round, pattern, m.name)
				}
				if incSeq != joined {
					t.Fatalf("round %d %s %s: indexed evaluation diverged from the joined matcher", round, pattern, m.name)
				}
			}
		}
	}
}

// TestEngineDeltaRace races one writer applying batches against parallel
// readers that pin a snapshot per "request" and assert parallel ==
// sequential on their pinned pair — the engine-side contract the server's
// per-request pinning relies on. Meaningful under -race: it proves the
// copy-on-write snapshots keep reader goroutines entirely off the
// writer's working set.
func TestEngineDeltaRace(t *testing.T) {
	f := newDeltaFixture(t, 13)
	eng := engine.New(engine.Options{Workers: 4})
	rng := rand.New(rand.NewSource(5))

	var readers sync.WaitGroup
	errc := make(chan error, 4)
	readersDone := make(chan struct{})

	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() { // readers: a fixed number of pinned "requests" each
			defer readers.Done()
			q, err := core.PrepareQuery(f.pats[0], f.set)
			if err != nil {
				errc <- err
				return
			}
			for r := 0; r < 25; r++ {
				snap := f.h.Snapshot() // pin per request
				seq := answers(t, q, core.Evaluate(q, f.set, snap.Doc, f.tree))
				par := answers(t, q, eng.Evaluate(q, f.set, snap.Doc, f.tree))
				if seq != par {
					errc <- fmt.Errorf("parallel diverged from sequential on pinned snapshot epoch %d", snap.Epoch)
					return
				}
			}
		}()
	}
	go func() { readers.Wait(); close(readersDone) }()

	// Writer: churn epochs for as long as the readers are in flight, so
	// every reader request overlaps live mutations.
	for {
		select {
		case <-readersDone:
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			if f.h.Snapshot().Epoch == 0 {
				t.Fatal("writer never advanced an epoch; the race exercised nothing")
			}
			return
		default:
			cur := f.h.Snapshot()
			_, _ = f.h.Apply(randomBatch(rng, cur.Doc))
		}
	}
}
