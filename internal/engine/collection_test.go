package engine_test

// Cross-shard differential tests: evaluating a collection's members with
// the Across evaluators must return byte-identical results to evaluating
// their concatenation (xmltree.Corpus) as one document with the
// sequential core evaluators — same mappings, same match order, same
// probabilities — for every shard count, worker count, and query mode.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

// collFixture holds one corpus layout: the sharded members and the
// single-document oracle assembled from them.
type collFixture struct {
	members []*xmltree.Document
	corpus  *xmltree.Document
	base    *mapping.Set
}

func newCollFixture(t *testing.T, shards, totalNodes int) *collFixture {
	t.Helper()
	d, err := dataset.Load("D7")
	if err != nil {
		t.Fatal(err)
	}
	base, err := mapgen.TopH(d.Matching, 80, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	members := d.OrderCorpus(shards, totalNodes, 7)
	corpus, err := xmltree.Corpus(members...)
	if err != nil {
		t.Fatal(err)
	}
	return &collFixture{members: members, corpus: corpus, base: base}
}

func collShardCounts() []int { return []int{1, 2, 4} }

func collWorkerCounts() []int { return []int{1, 4} }

func TestCollectionDifferentialBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shards := range collShardCounts() {
		fix := newCollFixture(t, shards, 4800)
		set := randomSubSet(t, fix.base, rng)
		for _, spec := range dataset.Queries() {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			want := core.EvaluateBasic(q, set, fix.corpus)
			for _, w := range collWorkerCounts() {
				e := engine.New(engine.Options{Workers: w})
				got := e.EvaluateBasicAcross(q, set, engine.Shards{Docs: fix.members})
				assertSameResults(t, fmt.Sprintf("shards=%d %s workers=%d", shards, spec.ID, w), want, got)
			}
		}
	}
}

func TestCollectionDifferentialCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, shards := range collShardCounts() {
		fix := newCollFixture(t, shards, 4800)
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range dataset.Queries() {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			want := core.Evaluate(q, set, fix.corpus, bt)
			for _, w := range collWorkerCounts() {
				e := engine.New(engine.Options{Workers: w})
				got := e.EvaluateAcross(q, set, engine.Shards{Docs: fix.members}, bt)
				assertSameResults(t, fmt.Sprintf("shards=%d %s workers=%d", shards, spec.ID, w), want, got)
			}
		}
	}
}

func TestCollectionDifferentialTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, shards := range collShardCounts() {
		fix := newCollFixture(t, shards, 4800)
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ks := []int{1, set.Len() / 2, set.Len() + 5}
		for _, spec := range dataset.Queries()[:5] {
			q, err := core.PrepareQuery(spec.Text, set)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			for _, k := range ks {
				want := core.EvaluateTopK(q, set, fix.corpus, bt, k)
				for _, w := range collWorkerCounts() {
					e := engine.New(engine.Options{Workers: w})
					got := e.EvaluateTopKAcross(q, set, engine.Shards{Docs: fix.members}, bt, k)
					assertSameResults(t, fmt.Sprintf("shards=%d %s k=%d workers=%d", shards, spec.ID, k, w), want, got)
				}
			}
		}
	}
}

func TestCollectionDifferentialBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	specs := dataset.Queries()
	for _, shards := range collShardCounts() {
		fix := newCollFixture(t, shards, 4800)
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]engine.Request, 9)
		for i := range reqs {
			spec := specs[rng.Intn(len(specs))]
			reqs[i] = engine.Request{Pattern: spec.Text, K: rng.Intn(3) * 4} // K in {0, 4, 8}
		}
		for _, w := range collWorkerCounts() {
			e := engine.New(engine.Options{Workers: w})
			resps := e.EvaluateBatchAcross(set, engine.Shards{Docs: fix.members}, bt, reqs)
			if len(resps) != len(reqs) {
				t.Fatalf("shards=%d workers=%d: %d responses", shards, w, len(resps))
			}
			for i, resp := range resps {
				if resp.Err != nil {
					t.Fatalf("shards=%d workers=%d req %d: %v", shards, w, i, resp.Err)
				}
				q, err := core.PrepareQuery(reqs[i].Pattern, set)
				if err != nil {
					t.Fatal(err)
				}
				var want []core.Result
				if reqs[i].K > 0 {
					want = core.EvaluateTopK(q, set, fix.corpus, bt, reqs[i].K)
				} else {
					want = core.Evaluate(q, set, fix.corpus, bt)
				}
				assertSameResults(t, fmt.Sprintf("shards=%d workers=%d req %d", shards, w, i), want, resp.Results)
			}
		}
	}
}

// TestCollectionObserver: the per-shard observer fires for every shard —
// including under the single-shard delegation — with non-negative timings,
// and must tolerate concurrent invocation (run under -race).
func TestCollectionObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, shards := range []int{1, 3} {
		fix := newCollFixture(t, shards, 2400)
		set := randomSubSet(t, fix.base, rng)
		bt, err := core.Build(set, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		q, err := core.PrepareQuery(dataset.Queries()[0].Text, set)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		perShard := make([]int64, shards)
		var calls atomic.Int64
		obs := func(s int, took time.Duration) {
			if took < 0 {
				t.Errorf("negative duration on shard %d", s)
			}
			calls.Add(1)
			mu.Lock()
			perShard[s]++
			mu.Unlock()
		}
		e := engine.New(engine.Options{Workers: 4})
		e.EvaluateAcross(q, set, engine.Shards{Docs: fix.members, Observe: obs}, bt)
		if calls.Load() == 0 {
			t.Fatalf("shards=%d: observer never fired", shards)
		}
		for s, n := range perShard {
			if n == 0 {
				t.Fatalf("shards=%d: shard %d never observed", shards, s)
			}
		}
	}
}
