// Package engine provides a concurrent PTQ evaluation engine on top of
// internal/core: a bounded worker pool parallelizes per-mapping work in basic
// PTQ answering (Algorithm 3) and per-chunk subtree work in block-tree PTQ
// and top-k PTQ answering (Algorithm 4), a batched multi-query API evaluates
// independent queries concurrently, and a prepared-query LRU cache (keyed by
// pattern text and mapping-set identity) lets repeated queries skip the
// parse/resolve step of PrepareQuery.
//
// The engine is a pure orchestration layer: every algorithmic decision stays
// in internal/core, and for any worker count the engine returns results
// byte-identical to the sequential core evaluators — same mapping order,
// same match order, same probabilities (see the differential tests). That
// includes the matching backend: when a positional index (internal/index)
// is attached to the document, every worker evaluates through it — the
// index is immutable, so the workers share it with zero synchronization
// (indexed_test.go runs this composition under -race).
//
// Live documents (internal/delta) compose with the engine by snapshot
// pinning: every Evaluate*/EvaluateBatch call takes one document and uses
// it — and the index attached to it — for the whole call, so a caller
// serving a mutating dataset resolves delta.Handle.Snapshot() exactly once
// per request and passes snapshot.Doc down. Workers never re-resolve the
// document, so a mutation published mid-request cannot mix epochs inside
// one evaluation (delta_test.go races writers against pinned readers under
// -race).
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/mapping"
	"xmatch/internal/obs"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// Options configure an Engine.
type Options struct {
	// Workers is the maximum number of goroutines evaluating concurrently,
	// shared across every Evaluate*/EvaluateBatch call on the engine
	// (nested parallelism never exceeds it). Workers <= 1 — including the
	// zero value and negative values — disables parallelism: the engine
	// delegates straight to the sequential core evaluators.
	Workers int
	// CacheCapacity bounds the prepared-query cache (LRU eviction).
	// 0 means DefaultCacheCapacity; negative disables caching. Cached
	// queries keep their mapping set (and its schemas) reachable until
	// evicted, so a long-lived engine serving many short-lived sets
	// should use a small capacity or disable caching.
	CacheCapacity int
	// SlotWait bounds how long a spawn may wait for a free pool slot
	// before falling back to inline execution on the calling goroutine.
	// 0 (the default) keeps the instant fallback — a spawn that finds the
	// pool exhausted immediately does the work itself. A positive wait
	// smooths admission under load bursts without risking deadlock: the
	// inline fallback still guarantees progress, waits are cut short when
	// a WithContext view's context is canceled, and the wait time and
	// waiter count are exported by CollectMetrics.
	SlotWait time.Duration
}

// DefaultCacheCapacity is the prepared-query cache capacity when Options
// leaves it zero.
const DefaultCacheCapacity = 256

// DefaultOptions returns an engine configuration using every available CPU
// and the default cache capacity.
func DefaultOptions() Options {
	return Options{Workers: runtime.GOMAXPROCS(0), CacheCapacity: DefaultCacheCapacity}
}

// Engine evaluates probabilistic twig queries concurrently. It is safe for
// concurrent use: any number of goroutines may share one engine (and hence
// one prepared-query cache and one worker budget).
type Engine struct {
	workers int
	// gates are the pool admission gates a spawn must pass, innermost
	// budget first: gates[0] has workers-1 slots (the calling goroutine is
	// the extra worker) and, for a Sub view, the remaining gates are the
	// parents' — a goroutine counts against every enclosing budget.
	gates []chan struct{}
	cache *queryCache

	// slotWait is Options.SlotWait; waiters counts goroutines currently
	// blocked in acquireWait and waitLat records how long successful
	// waited acquisitions took. Both are owned by the root engine and
	// shared (by pointer) with every Sub/WithContext view.
	slotWait time.Duration
	waiters  *atomic.Int64
	waitLat  *obs.Histogram

	// stop and done are set by WithContext: stop flips when the view's
	// context ends (polled by evaluation loops), done is the context's
	// Done channel (selected on by bounded slot waits). Both nil on an
	// engine without a context view.
	stop *atomic.Bool
	done <-chan struct{}
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w < 1 {
		w = 1
	}
	e := &Engine{
		workers:  w,
		cache:    newQueryCache(opts.CacheCapacity),
		slotWait: opts.SlotWait,
		waiters:  new(atomic.Int64),
		waitLat:  obs.NewHistogram(nil),
	}
	if w > 1 {
		e.gates = []chan struct{}{make(chan struct{}, w-1)}
	}
	return e
}

// Workers returns the effective worker count (at least 1).
func (e *Engine) Workers() int { return e.workers }

// Sub returns a view of the engine whose parallel evaluation holds at most
// n pool slots concurrently while still drawing them from the parent's
// budget — admission control for multi-tenant callers: a server can hand
// each request a Sub so one fat batch cannot starve the shared pool. The
// view shares the parent's prepared-query cache; results are identical to
// the parent's at any n (a starved view just evaluates inline). n >= the
// engine's worker count (or n <= 0) returns the engine unchanged; n == 1
// returns a sequential view.
func (e *Engine) Sub(n int) *Engine {
	if n <= 0 || n >= e.workers {
		return e
	}
	sub := *e
	sub.workers = n
	sub.gates = nil
	if n > 1 {
		sub.gates = append([]chan struct{}{make(chan struct{}, n-1)}, e.gates...)
	}
	return &sub
}

// acquire reserves one slot in every gate, releasing any partial
// reservation on failure. Without a slot-wait budget it never blocks; with
// one it waits up to the budget — cut short when the view's context ends —
// before giving up, so admission can slow a spawn but never wedge it (the
// caller falls back to running the work inline either way).
func (e *Engine) acquire() bool {
	if e.acquireFast() {
		return true
	}
	if e.slotWait <= 0 || e.canceled() {
		return false
	}
	return e.acquireWait()
}

// acquireFast is the non-blocking admission pass.
func (e *Engine) acquireFast() bool {
	for i, g := range e.gates {
		select {
		case g <- struct{}{}:
		default:
			for j := 0; j < i; j++ {
				<-e.gates[j]
			}
			return false
		}
	}
	return true
}

// acquireWait is the bounded blocking admission pass: one timer spans all
// gates, so the total wait never exceeds slotWait even on a Sub view's
// chained gates.
func (e *Engine) acquireWait() bool {
	e.waiters.Add(1)
	defer e.waiters.Add(-1)
	start := time.Now()
	timer := time.NewTimer(e.slotWait)
	defer timer.Stop()
	for i, g := range e.gates {
		select {
		case g <- struct{}{}:
		case <-timer.C:
			for j := 0; j < i; j++ {
				<-e.gates[j]
			}
			return false
		case <-e.done:
			for j := 0; j < i; j++ {
				<-e.gates[j]
			}
			return false
		}
	}
	e.waitLat.Observe(time.Since(start))
	return true
}

// release returns the slots taken by acquire.
func (e *Engine) release() {
	for _, g := range e.gates {
		<-g
	}
}

// Prepare returns a prepared query for the pattern against the mapping set,
// consulting the cache first. Cache entries are keyed by the pattern text
// together with the identity of the mapping set, so the same pattern prepared
// against two different sets occupies two entries. Failed preparations are
// not cached.
func (e *Engine) Prepare(pattern string, set *mapping.Set) (*core.Query, error) {
	q, _, err := e.PrepareCached(pattern, set)
	return q, err
}

// PrepareCached is Prepare reporting whether the query was answered from
// the prepared-query cache — the distinction EXPLAIN and the prepare
// span surface.
func (e *Engine) PrepareCached(pattern string, set *mapping.Set) (*core.Query, bool, error) {
	if q, ok := e.cache.get(pattern, set); ok {
		return q, true, nil
	}
	q, err := core.PrepareQuery(pattern, set)
	if err != nil {
		return nil, false, err
	}
	return e.cache.put(pattern, set, q), false, nil
}

// CacheStats returns a snapshot of the prepared-query cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// Busy returns how many pool slots are currently reserved on the
// engine's own admission gate (0 for a sequential engine) — together
// with Workers, the admission-queue depth gauge /metricsz exposes.
func (e *Engine) Busy() int {
	if len(e.gates) == 0 {
		return 0
	}
	return len(e.gates[0])
}

// CollectMetrics emits the engine's pool and prepared-query-cache
// metrics onto x under the given labels (typically the owning dataset's
// name) — the engine's contribution to /metricsz.
func (e *Engine) CollectMetrics(x *obs.Exporter, labels ...obs.Label) {
	cs := e.CacheStats()
	x.Gauge("xmatch_engine_workers", "Configured evaluation worker budget.", float64(e.workers), labels...)
	x.Gauge("xmatch_engine_busy_workers", "Pool slots currently reserved.", float64(e.Busy()), labels...)
	x.Counter("xmatch_engine_prepare_cache_hits_total", "Prepared-query cache hits.", float64(cs.Hits), labels...)
	x.Counter("xmatch_engine_prepare_cache_misses_total", "Prepared-query cache misses.", float64(cs.Misses), labels...)
	x.Counter("xmatch_engine_prepare_cache_evictions_total", "Prepared-query cache evictions.", float64(cs.Evictions), labels...)
	x.Gauge("xmatch_engine_prepare_cache_entries", "Prepared queries currently cached.", float64(cs.Entries), labels...)
	x.Gauge("xmatch_engine_slot_waiters", "Goroutines currently waiting for a pool slot.", float64(e.waiters.Load()), labels...)
	x.Histogram("xmatch_engine_slot_wait_seconds", "Wait time of pool-slot acquisitions that blocked and succeeded.", e.waitLat.Snapshot(), labels...)
}

// EvaluateBasic answers the PTQ with a parallel Algorithm 3: the relevant
// mappings of each embedding are split into contiguous chunks evaluated
// concurrently, then merged in mapping order. Results are identical to
// core.EvaluateBasic.
func (e *Engine) EvaluateBasic(q *core.Query, set *mapping.Set, doc *xmltree.Document) []core.Result {
	if e.workers <= 1 && e.stop == nil {
		return core.EvaluateBasic(q, set, doc)
	}
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		relevant := core.FilterMappings(set, emb)
		matches := make([][]twig.Match, len(relevant))
		// Per-mapping tasks are small, so over-chunk 4x for balance.
		e.parallelRanges(len(relevant), 4*e.workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if e.canceled() {
					return
				}
				matches[i] = core.EvaluateBasicMapping(q, emb, relevant[i], set, doc)
			}
		})
		for i, mi := range relevant {
			results.Add(mi, matches[i])
		}
	}
	return results.Finish()
}

// Evaluate answers the PTQ with a parallel Algorithm 4: the relevant
// mappings of each embedding are split into one chunk per worker, each chunk
// runs the block-tree evaluation independently (block results and memoized
// subtree evaluations are shared within a chunk), and the per-mapping
// outputs — which are disjoint across chunks — are merged. Results are
// identical to core.Evaluate.
func (e *Engine) Evaluate(q *core.Query, set *mapping.Set, doc *xmltree.Document, bt *core.BlockTree) []core.Result {
	if e.workers <= 1 && e.stop == nil {
		return core.Evaluate(q, set, doc, bt)
	}
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		e.evalSubsetChunked(q, emb, set, doc, bt, core.FilterMappings(set, emb), results)
	}
	return results.Finish()
}

// EvaluateTopK answers the top-k PTQ, parallelized like Evaluate over the k
// most probable relevant mappings. Results are identical to
// core.EvaluateTopK.
func (e *Engine) EvaluateTopK(q *core.Query, set *mapping.Set, doc *xmltree.Document, bt *core.BlockTree, k int) []core.Result {
	if e.workers <= 1 && e.stop == nil {
		return core.EvaluateTopK(q, set, doc, bt, k)
	}
	if k <= 0 {
		return nil
	}
	keepSet, all := core.TopKMappings(q, set, k)
	if all {
		return e.Evaluate(q, set, doc, bt)
	}
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		var relevant []int
		for _, mi := range core.FilterMappings(set, emb) {
			if keepSet[mi] {
				relevant = append(relevant, mi)
			}
		}
		e.evalSubsetChunked(q, emb, set, doc, bt, relevant, results)
	}
	return results.Finish()
}

// evalSubsetChunked evaluates one embedding's relevant mappings with
// core.EvaluateSubset across worker-count chunks and merges the chunk
// outputs. Chunks are coarse (one per worker) because each chunk amortizes
// its own block evaluations and memoization cache; the merge order across
// chunks is irrelevant to the final output because chunk outputs key
// disjoint mapping indices and ResultMerger orders by mapping index.
func (e *Engine) evalSubsetChunked(q *core.Query, emb twig.Embedding, set *mapping.Set,
	doc *xmltree.Document, bt *core.BlockTree, relevant []int, results *core.ResultMerger) {

	if len(relevant) == 0 {
		return
	}
	chunks := make([]map[int][]twig.Match, min(e.workers, len(relevant)))
	e.parallelRanges(len(relevant), len(chunks), func(part, lo, hi int) {
		chunks[part] = core.EvaluateSubsetStop(q, emb, set, doc, bt, relevant[lo:hi], e.stop)
	})
	for _, pm := range chunks {
		for mi, matches := range pm {
			results.Add(mi, matches)
		}
	}
}

// Request is one query of a batch.
type Request struct {
	// Pattern is the twig pattern text on the target schema.
	Pattern string
	// K truncates to the top-k PTQ when positive; 0 evaluates all
	// mappings.
	K int
}

// Response is the answer to one batch request, in request order.
type Response struct {
	Request
	// Query is the prepared query the results were evaluated with (nil
	// when Err is set). Consumers that aggregate answers must use this
	// query's pattern nodes: match bindings compare nodes by pointer, so
	// re-preparing the pattern — which can return a different *core.Query
	// when the cache is small, disabled, or concurrently evicted — would
	// silently match nothing.
	Query   *core.Query
	Results []core.Result
	Err     error
}

// EvaluateBatch answers many queries over one mapping set, document, and
// block tree, evaluating the requests concurrently under the engine's shared
// worker budget. Each request is prepared through the cache, so a batch with
// repeated patterns parses each distinct pattern once. A nil block tree
// makes every request fall back to basic evaluation over all mappings
// (top-k evaluation requires the block tree, so K is ignored then).
func (e *Engine) EvaluateBatch(set *mapping.Set, doc *xmltree.Document, bt *core.BlockTree, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	e.parallelRanges(len(reqs), len(reqs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.answer(set, doc, bt, reqs[i])
		}
	})
	return out
}

func (e *Engine) answer(set *mapping.Set, doc *xmltree.Document, bt *core.BlockTree, req Request) Response {
	if e.canceled() {
		return Response{Request: req, Err: ErrCanceled}
	}
	q, err := e.Prepare(req.Pattern, set)
	if err != nil {
		return Response{Request: req, Err: err}
	}
	var results []core.Result
	switch {
	case bt == nil:
		results = e.EvaluateBasic(q, set, doc)
	case req.K > 0:
		results = e.EvaluateTopK(q, set, doc, bt, req.K)
	default:
		results = e.Evaluate(q, set, doc, bt)
	}
	return Response{Request: req, Query: q, Results: results}
}

// parallelRanges splits [0, n) into at most parts contiguous ranges and runs
// fn on each. Ranges beyond the first run on pool goroutines when a worker
// slot is free and inline on the calling goroutine otherwise, so concurrency
// never exceeds the engine's worker budget and nested calls (a batch whose
// requests each parallelize their evaluation) cannot deadlock: a caller that
// finds the pool exhausted simply does the work itself. fn receives the part
// index alongside its range; part indices are dense in [0, parts').
func (e *Engine) parallelRanges(n, parts int, fn func(part, lo, hi int)) {
	if parts > n {
		parts = n
	}
	if e.workers <= 1 || parts <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		if e.canceled() {
			break
		}
		p, lo, hi := p, p*n/parts, (p+1)*n/parts
		if lo == hi {
			continue
		}
		if e.acquire() {
			wg.Add(1)
			go func() {
				defer func() {
					e.release()
					wg.Done()
				}()
				fn(p, lo, hi)
			}()
		} else {
			fn(p, lo, hi)
		}
	}
	wg.Wait()
}
