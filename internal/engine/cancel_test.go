package engine_test

// Cancellation tests: WithContext views must stop promptly once their
// context ends, must release every admission slot they reserved (the
// cancel-storm tests assert Busy() == 0 afterwards under -race), and
// must change nothing when the context stays live — the differential
// check pins canceled==never-canceled output equality.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
)

func TestWithContextNoDeadlineIsIdentity(t *testing.T) {
	e := engine.New(engine.Options{Workers: 4})
	if got := e.WithContext(context.Background()); got != e {
		t.Fatal("WithContext(Background) allocated a view")
	}
	if got := e.WithContext(nil); got != e { //nolint:staticcheck // nil ctx tolerance is part of the contract
		t.Fatal("WithContext(nil) allocated a view")
	}
}

func TestWithContextLiveIsTransparent(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(3))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range dataset.Queries() {
		q, err := core.PrepareQuery(spec.Text, set)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		want := core.Evaluate(q, set, fix.doc, bt)
		for _, w := range []int{1, 4} {
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			e := engine.New(engine.Options{Workers: w}).WithContext(ctx)
			got := e.Evaluate(q, set, fix.doc, bt)
			assertSameResults(t, fmt.Sprintf("%s workers=%d", spec.ID, w), want, got)
			gotB := e.EvaluateBasic(q, set, fix.doc)
			wantB := core.EvaluateBasic(q, set, fix.doc)
			assertSameResults(t, fmt.Sprintf("%s basic workers=%d", spec.ID, w), wantB, gotB)
			cancel()
		}
	}
}

func TestPreCanceledEvaluatesNothing(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(5))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := engine.New(engine.Options{Workers: 4}).WithContext(ctx)
	// Evaluation on a dead context returns promptly; the (partial) output
	// is unspecified and discarded by callers, so only termination and
	// slot accounting are asserted here.
	spec := dataset.Queries()[0]
	q, err := core.PrepareQuery(spec.Text, set)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Evaluate(q, set, fix.doc, bt)
	_ = e.EvaluateBasic(q, set, fix.doc)
	resps := e.EvaluateBatch(set, fix.doc, bt, []engine.Request{{Pattern: spec.Text}})
	if len(resps) != 1 || !errors.Is(resps[0].Err, engine.ErrCanceled) {
		t.Fatalf("batch on dead context: want ErrCanceled, got %+v", resps)
	}
	if busy := e.Busy(); busy != 0 {
		t.Fatalf("busy slots after canceled evaluation: %d", busy)
	}
}

// TestCancelStormReleasesSlots is the admission-slot leak check from the
// acceptance criteria: a storm of concurrent evaluations on Sub views is
// canceled mid-flight, and once every call returns the engine's gate must
// be empty — a canceled request frees all engine admission slots.
func TestCancelStormReleasesSlots(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(7))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()
	root := engine.New(engine.Options{Workers: 8, SlotWait: 50 * time.Millisecond})

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				e := root.Sub(2 + g%3).WithContext(ctx)
				for i := 0; i < 8; i++ {
					spec := specs[(g+i)%len(specs)]
					q, err := e.Prepare(spec.Text, set)
					if err != nil {
						t.Error(err)
						return
					}
					switch i % 3 {
					case 0:
						_ = e.Evaluate(q, set, fix.doc, bt)
					case 1:
						_ = e.EvaluateBasic(q, set, fix.doc)
					default:
						_ = e.EvaluateTopK(q, set, fix.doc, bt, 5)
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		cancel()
		wg.Wait()
		if busy := root.Busy(); busy != 0 {
			t.Fatalf("round %d: %d slots still reserved after cancel storm", round, busy)
		}
	}
}

// TestCancelStormAcrossReleasesSlots repeats the storm over a sharded
// collection through the scatter-gather evaluators.
func TestCancelStormAcrossReleasesSlots(t *testing.T) {
	fix := newCollFixture(t, 4, 4000)
	set := randomSubSet(t, fix.base, newRng(9))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()
	root := engine.New(engine.Options{Workers: 8})
	sh := engine.Shards{Docs: fix.members}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e := root.Sub(4).WithContext(ctx)
			for i := 0; i < 6; i++ {
				spec := specs[(g+i)%len(specs)]
				q, err := e.Prepare(spec.Text, set)
				if err != nil {
					t.Error(err)
					return
				}
				switch i % 3 {
				case 0:
					_ = e.EvaluateAcross(q, set, sh, bt)
				case 1:
					_ = e.EvaluateBasicAcross(q, set, sh)
				default:
					_ = e.EvaluateTopKAcross(q, set, sh, bt, 5)
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	cancel()
	wg.Wait()
	if busy := root.Busy(); busy != 0 {
		t.Fatalf("%d slots still reserved after across cancel storm", busy)
	}
}

// TestSlotWaitTransparent pins that a bounded slot wait changes admission
// timing only, never results: a saturated pool with SlotWait armed still
// returns output identical to the sequential oracle.
func TestSlotWaitTransparent(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(13))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Options{Workers: 2, SlotWait: 20 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, spec := range dataset.Queries() {
				q, err := core.PrepareQuery(spec.Text, set)
				if err != nil {
					t.Error(err)
					return
				}
				want := core.Evaluate(q, set, fix.doc, bt)
				got := e.Evaluate(q, set, fix.doc, bt)
				assertSameResults(t, fmt.Sprintf("goroutine %d %s", g, spec.ID), want, got)
			}
		}(g)
	}
	wg.Wait()
	if busy := e.Busy(); busy != 0 {
		t.Fatalf("%d slots still reserved after saturated slot-wait run", busy)
	}
}
