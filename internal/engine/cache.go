package engine

import (
	"container/list"
	"sync"

	"xmatch/internal/core"
	"xmatch/internal/mapping"
)

// cacheKey identifies a prepared query: the pattern text together with the
// identity of the mapping set it was prepared against. Identity (pointer
// equality) is the right notion because a Query resolves element IDs of the
// set's target schema and keeps a reference to the set; preparing the same
// text against a different set must yield a different entry.
type cacheKey struct {
	set     *mapping.Set
	pattern string
}

// CacheStats is a snapshot of the prepared-query cache counters. Hits plus
// Misses equals the number of Prepare calls that reached the cache lookup;
// a Prepare whose parse/resolve fails counts as a miss every time, since
// failures are not cached.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	// Entries is the current number of cached queries.
	Entries int
}

// queryCache is a mutex-guarded LRU of prepared queries. The lock is held
// across lookup and insert bookkeeping only, never across PrepareQuery, so
// concurrent misses on the same key may both parse; the loser of the insert
// race adopts the winner's entry, keeping one canonical *core.Query per key.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*list.Element
	lru      *list.List // front = most recently used; values are *cacheEntry
	st       CacheStats
}

type cacheEntry struct {
	key cacheKey
	q   *core.Query
}

func newQueryCache(capacity int) *queryCache {
	if capacity == 0 {
		capacity = DefaultCacheCapacity
	}
	if capacity < 0 {
		capacity = 0 // caching disabled: everything misses, nothing stored
	}
	return &queryCache{
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element),
		lru:      list.New(),
	}
}

func (c *queryCache) get(pattern string, set *mapping.Set) (*core.Query, bool) {
	key := cacheKey{set: set, pattern: pattern}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.st.Hits++
		return el.Value.(*cacheEntry).q, true
	}
	c.st.Misses++
	return nil, false
}

// put inserts a freshly prepared query and returns the canonical query for
// the key — the argument itself, or the entry a concurrent caller inserted
// first.
func (c *queryCache) put(pattern string, set *mapping.Set, q *core.Query) *core.Query {
	if c.capacity == 0 {
		return q
	}
	key := cacheKey{set: set, pattern: pattern}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).q
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, q: q})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.st.Evictions++
	}
	return q
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Entries = c.lru.Len()
	return st
}
