package engine

import (
	"time"

	"xmatch/internal/core"
	"xmatch/internal/mapping"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// Shards is an ordered list of member documents evaluated as one logical
// corpus by the Across evaluators, plus an optional per-shard timing
// observer. The members must carry disjoint ascending interval ranges
// (xmltree.NewAt / dataset.OrderCorpus), which is what makes the gathered
// output byte-identical to evaluating their concatenation
// (xmltree.Corpus) as a single document: per (embedding, mapping), each
// member's matches are key-ordered and the members' key ranges are
// disjoint and ascending, so core.ResultMerger.AddStreams interleaves
// them into exactly the concatenated corpus's match order.
type Shards struct {
	// Docs are the member documents in collection order. Each may carry
	// its own attached index; an evaluation uses whatever accelerator the
	// snapshot it was handed carries, per member.
	Docs []*xmltree.Document
	// Observe, when non-nil, is called once per per-shard evaluation unit
	// — one (embedding, shard) scatter for single queries, one (request,
	// embedding, shard) for batches — with that unit's wall time. It must
	// be safe for concurrent use; shards evaluate in parallel.
	Observe func(shard int, took time.Duration)
}

func (sh Shards) observe(shard int, took time.Duration) {
	if sh.Observe != nil {
		sh.Observe(shard, took)
	}
}

// shardSubs derives one sub-engine per shard: each holds roughly an equal
// share of the engine's worker budget for its own nested parallelism, and
// every slot it takes still counts against the engine's budget (Sub chains
// admission gates), so scattering over many shards cannot exceed the
// engine's — and hence the request's — total.
func (e *Engine) shardSubs(n int) []*Engine {
	per := e.workers / n
	if per < 1 {
		per = 1
	}
	subs := make([]*Engine, n)
	for i := range subs {
		subs[i] = e.Sub(per)
	}
	return subs
}

// EvaluateBasicAcross answers the basic PTQ (Algorithm 3) over a sharded
// collection: per embedding, every (shard, mapping) pair is evaluated
// independently under the per-shard sub-budgets and the shard streams are
// gathered per mapping in collection order. A single-shard collection
// delegates to EvaluateBasic, so the output — and the evaluation path — is
// exactly the single-document engine's.
func (e *Engine) EvaluateBasicAcross(q *core.Query, set *mapping.Set, sh Shards) []core.Result {
	if len(sh.Docs) == 0 {
		return core.NewResultMerger(set).Finish()
	}
	if len(sh.Docs) == 1 {
		start := time.Now()
		res := e.EvaluateBasic(q, set, sh.Docs[0])
		sh.observe(0, time.Since(start))
		return res
	}
	subs := e.shardSubs(len(sh.Docs))
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		relevant := core.FilterMappings(set, emb)
		perShard := make([][][]twig.Match, len(sh.Docs))
		e.parallelRanges(len(sh.Docs), len(sh.Docs), func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				if e.canceled() {
					return
				}
				start := time.Now()
				perShard[s] = subs[s].basicMatches(q, emb, relevant, set, sh.Docs[s])
				sh.observe(s, time.Since(start))
			}
		})
		if e.canceled() {
			// A canceled scatter may have skipped shards entirely, leaving
			// nil per-shard slices; the output is discarded anyway.
			break
		}
		streams := make([][]twig.Match, len(sh.Docs))
		for i, mi := range relevant {
			for s := range perShard {
				streams[s] = perShard[s][i]
			}
			results.AddStreams(mi, streams)
		}
	}
	return results.Finish()
}

// basicMatches evaluates one embedding's relevant mappings over one shard,
// chunked across the (sub-)engine's workers like EvaluateBasic.
func (e *Engine) basicMatches(q *core.Query, emb twig.Embedding, relevant []int, set *mapping.Set, doc *xmltree.Document) [][]twig.Match {
	matches := make([][]twig.Match, len(relevant))
	e.parallelRanges(len(relevant), 4*e.workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if e.canceled() {
				return
			}
			matches[i] = core.EvaluateBasicMapping(q, emb, relevant[i], set, doc)
		}
	})
	return matches
}

// EvaluateAcross answers the block-tree PTQ (Algorithm 4) over a sharded
// collection; see EvaluateBasicAcross for the scatter-gather contract.
func (e *Engine) EvaluateAcross(q *core.Query, set *mapping.Set, sh Shards, bt *core.BlockTree) []core.Result {
	if len(sh.Docs) == 0 {
		return core.NewResultMerger(set).Finish()
	}
	if len(sh.Docs) == 1 {
		start := time.Now()
		res := e.Evaluate(q, set, sh.Docs[0], bt)
		sh.observe(0, time.Since(start))
		return res
	}
	subs := e.shardSubs(len(sh.Docs))
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		relevant := core.FilterMappings(set, emb)
		if len(relevant) == 0 {
			continue
		}
		e.gatherSubset(q, emb, set, sh, bt, relevant, subs, results)
	}
	return results.Finish()
}

// EvaluateTopKAcross answers the top-k PTQ over a sharded collection. The
// mapping selection (TopKMappings) depends only on the query and the set —
// never on a document — so it is computed once and shared by every shard.
func (e *Engine) EvaluateTopKAcross(q *core.Query, set *mapping.Set, sh Shards, bt *core.BlockTree, k int) []core.Result {
	if len(sh.Docs) == 0 {
		return core.NewResultMerger(set).Finish()
	}
	if len(sh.Docs) == 1 {
		start := time.Now()
		res := e.EvaluateTopK(q, set, sh.Docs[0], bt, k)
		sh.observe(0, time.Since(start))
		return res
	}
	if k <= 0 {
		return nil
	}
	keepSet, all := core.TopKMappings(q, set, k)
	if all {
		return e.EvaluateAcross(q, set, sh, bt)
	}
	subs := e.shardSubs(len(sh.Docs))
	results := core.NewResultMerger(set)
	for _, emb := range q.Embeddings {
		if e.canceled() {
			break
		}
		var relevant []int
		for _, mi := range core.FilterMappings(set, emb) {
			if keepSet[mi] {
				relevant = append(relevant, mi)
			}
		}
		if len(relevant) == 0 {
			continue
		}
		e.gatherSubset(q, emb, set, sh, bt, relevant, subs, results)
	}
	return results.Finish()
}

// gatherSubset scatters one embedding's relevant mappings across the
// shards (each shard running the chunked Algorithm 4 under its own
// sub-budget) and gathers the per-mapping shard streams in collection
// order.
func (e *Engine) gatherSubset(q *core.Query, emb twig.Embedding, set *mapping.Set, sh Shards,
	bt *core.BlockTree, relevant []int, subs []*Engine, results *core.ResultMerger) {

	perShard := make([]map[int][]twig.Match, len(sh.Docs))
	e.parallelRanges(len(sh.Docs), len(sh.Docs), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			if e.canceled() {
				return
			}
			start := time.Now()
			perShard[s] = subs[s].subsetMap(q, emb, set, sh.Docs[s], bt, relevant)
			sh.observe(s, time.Since(start))
		}
	})
	if e.canceled() {
		return
	}
	streams := make([][]twig.Match, len(sh.Docs))
	for _, mi := range relevant {
		for s := range perShard {
			streams[s] = perShard[s][mi]
		}
		results.AddStreams(mi, streams)
	}
}

// subsetMap evaluates one embedding's relevant mappings over one document
// with core.EvaluateSubset, chunked across the (sub-)engine's workers like
// evalSubsetChunked but returning the merged per-mapping map instead of
// feeding a merger — chunk outputs key disjoint mapping indices, so the
// merge is a plain map union.
func (e *Engine) subsetMap(q *core.Query, emb twig.Embedding, set *mapping.Set,
	doc *xmltree.Document, bt *core.BlockTree, relevant []int) map[int][]twig.Match {

	if e.workers <= 1 || len(relevant) <= 1 {
		return core.EvaluateSubsetStop(q, emb, set, doc, bt, relevant, e.stop)
	}
	chunks := make([]map[int][]twig.Match, min(e.workers, len(relevant)))
	e.parallelRanges(len(relevant), len(chunks), func(part, lo, hi int) {
		chunks[part] = core.EvaluateSubsetStop(q, emb, set, doc, bt, relevant[lo:hi], e.stop)
	})
	out := chunks[0]
	if out == nil {
		out = map[int][]twig.Match{}
	}
	for _, pm := range chunks[1:] {
		for mi, m := range pm {
			out[mi] = m
		}
	}
	return out
}

// EvaluateBatchAcross answers many queries over one sharded collection,
// fanning the requests across the engine's worker budget like
// EvaluateBatch; each request then scatters across the shards under the
// same budget (nested admission, inline fallback — no deadlock, no
// overcommit).
func (e *Engine) EvaluateBatchAcross(set *mapping.Set, sh Shards, bt *core.BlockTree, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	e.parallelRanges(len(reqs), len(reqs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.answerAcross(set, sh, bt, reqs[i])
		}
	})
	return out
}

func (e *Engine) answerAcross(set *mapping.Set, sh Shards, bt *core.BlockTree, req Request) Response {
	if e.canceled() {
		return Response{Request: req, Err: ErrCanceled}
	}
	q, err := e.Prepare(req.Pattern, set)
	if err != nil {
		return Response{Request: req, Err: err}
	}
	var results []core.Result
	switch {
	case bt == nil:
		results = e.EvaluateBasicAcross(q, set, sh)
	case req.K > 0:
		results = e.EvaluateTopKAcross(q, set, sh, bt, req.K)
	default:
		results = e.EvaluateAcross(q, set, sh, bt)
	}
	return Response{Request: req, Query: q, Results: results}
}
