package engine_test

// The engine × index contract: a dataset-wide positional index is attached
// to the document once, before serving, and every engine worker then reads
// it with zero synchronization. These tests run parallel evaluation over
// an indexed document — meaningful under -race — and require results
// byte-identical to sequential *unindexed* core evaluation, composing the
// engine's parallel==sequential guarantee with the index's
// indexed==joined guarantee.

import (
	"fmt"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
	"xmatch/internal/index"
)

func TestDifferentialIndexedParallel(t *testing.T) {
	fix := newDiffFixture(t)
	set := fix.base
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.Queries()

	// Sequential unindexed reference, computed before the index exists.
	type ref struct{ basic, compact, topk []core.Result }
	refs := make([]ref, len(queries))
	qs := make([]*core.Query, len(queries))
	for i, spec := range queries {
		q, err := core.PrepareQuery(spec.Text, set)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		qs[i] = q
		refs[i] = ref{
			basic:   core.EvaluateBasic(q, set, fix.doc),
			compact: core.Evaluate(q, set, fix.doc, bt),
			topk:    core.EvaluateTopK(q, set, fix.doc, bt, 7),
		}
	}

	index.Attach(fix.doc)
	defer index.Detach(fix.doc)
	for _, w := range workerCounts() {
		e := engine.New(engine.Options{Workers: w})
		for i, spec := range queries {
			label := fmt.Sprintf("%s workers=%d", spec.ID, w)
			assertSameResults(t, label+" basic", refs[i].basic, e.EvaluateBasic(qs[i], set, fix.doc))
			assertSameResults(t, label+" compact", refs[i].compact, e.Evaluate(qs[i], set, fix.doc, bt))
			assertSameResults(t, label+" topk", refs[i].topk, e.EvaluateTopK(qs[i], set, fix.doc, bt, 7))
		}
	}

	// A batch fans every query out concurrently over the shared index.
	reqs := make([]engine.Request, len(queries))
	for i, spec := range queries {
		reqs[i] = engine.Request{Pattern: spec.Text}
	}
	e := engine.New(engine.Options{Workers: 8})
	for i, resp := range e.EvaluateBatch(set, fix.doc, bt, reqs) {
		if resp.Err != nil {
			t.Fatalf("batch %s: %v", queries[i].ID, resp.Err)
		}
		assertSameResults(t, "batch "+queries[i].ID, refs[i].compact, resp.Results)
	}
}
