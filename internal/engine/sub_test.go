package engine_test

// Tests for Engine.Sub, the per-request worker-budget admission control
// used by the serving layer: a Sub view must never hold more pool slots
// than its budget, must still return byte-identical results, and must share
// the parent's prepared-query cache.

import (
	"fmt"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
)

func TestSubDifferential(t *testing.T) {
	fix := newDiffFixture(t)
	set := fix.base
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parent := engine.New(engine.Options{Workers: 8})
	for _, spec := range dataset.Queries()[:4] {
		q, err := core.PrepareQuery(spec.Text, set)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		want := core.Evaluate(q, set, fix.doc, bt)
		wantTop := core.EvaluateTopK(q, set, fix.doc, bt, 3)
		for _, n := range []int{1, 2, 3, 8, 0, -1, 100} {
			sub := parent.Sub(n)
			assertSameResults(t, fmt.Sprintf("%s sub=%d", spec.ID, n),
				want, sub.Evaluate(q, set, fix.doc, bt))
			assertSameResults(t, fmt.Sprintf("%s sub=%d topk", spec.ID, n),
				wantTop, sub.EvaluateTopK(q, set, fix.doc, bt, 3))
		}
	}
}

func TestSubIdentityCases(t *testing.T) {
	parent := engine.New(engine.Options{Workers: 4})
	for _, n := range []int{0, -3, 4, 9} {
		if sub := parent.Sub(n); sub != parent {
			t.Errorf("Sub(%d) did not return the parent engine", n)
		}
	}
	if w := parent.Sub(2).Workers(); w != 2 {
		t.Errorf("Sub(2).Workers() = %d, want 2", w)
	}
	if w := parent.Sub(1).Workers(); w != 1 {
		t.Errorf("Sub(1).Workers() = %d, want 1", w)
	}
}

// TestSubSharesCache: preparing through a Sub must populate the parent's
// cache and vice versa.
func TestSubSharesCache(t *testing.T) {
	fix := newDiffFixture(t)
	parent := engine.New(engine.Options{Workers: 4})
	sub := parent.Sub(2)
	pattern := dataset.Queries()[0].Text
	if _, err := sub.Prepare(pattern, fix.base); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Prepare(pattern, fix.base); err != nil {
		t.Fatal(err)
	}
	st := parent.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats after sub+parent prepare: %+v, want 1 hit / 1 miss", st)
	}
}

// TestSubConcurrentBatches runs many concurrent batches, each through its
// own small Sub budget, against one shared parent pool — the serving
// pattern — and checks every response against the sequential answer. Run
// with -race this also exercises the gate-chain admission path.
func TestSubConcurrentBatches(t *testing.T) {
	fix := newDiffFixture(t)
	set := fix.base
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()
	want := make([][]core.Result, len(specs))
	for i, spec := range specs {
		q, err := core.PrepareQuery(spec.Text, set)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		want[i] = core.Evaluate(q, set, fix.doc, bt)
	}
	parent := engine.New(engine.Options{Workers: 8})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sub := parent.Sub(1 + c%3)
			reqs := make([]engine.Request, len(specs))
			for i, spec := range specs {
				reqs[i] = engine.Request{Pattern: spec.Text}
			}
			for i, resp := range sub.EvaluateBatch(set, fix.doc, bt, reqs) {
				if resp.Err != nil {
					t.Errorf("client %d query %d: %v", c, i, resp.Err)
					continue
				}
				assertSameResults(t, fmt.Sprintf("client %d query %d", c, i), want[i], resp.Results)
			}
		}(c)
	}
	wg.Wait()
}
