package engine_test

// Engine behavior tests: prepared-query cache accounting and eviction,
// concurrent evaluation sharing one cache (run these under -race),
// and the sequential fallback at workers <= 0.

import (
	"fmt"
	"sync"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/engine"
)

func TestPrepareCacheAccounting(t *testing.T) {
	fix := newDiffFixture(t)
	e := engine.New(engine.Options{Workers: 2, CacheCapacity: 8})
	specs := dataset.Queries()[:3]

	for _, spec := range specs {
		if _, err := e.Prepare(spec.Text, fix.base); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("after cold prepares: %+v", st)
	}

	q1, err := e.Prepare(specs[0].Text, fix.base)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Prepare(specs[0].Text, fix.base)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("repeated Prepare returned distinct queries")
	}
	st = e.CacheStats()
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("after warm prepares: %+v", st)
	}

	// The same pattern against a different mapping set is a different key.
	other := randomSubSet(t, fix.base, newRng(11))
	q3, err := e.Prepare(specs[0].Text, other)
	if err != nil {
		t.Fatal(err)
	}
	if q3 == q1 {
		t.Fatal("same pattern on a different set shared a cache entry")
	}
	st = e.CacheStats()
	if st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("after cross-set prepare: %+v", st)
	}

	// Failed preparations are not cached and count as misses every time.
	if _, err := e.Prepare("Order/", fix.base); err == nil {
		t.Fatal("invalid pattern prepared")
	}
	if _, err := e.Prepare("Order/", fix.base); err == nil {
		t.Fatal("invalid pattern prepared")
	}
	st = e.CacheStats()
	if st.Misses != 6 || st.Entries != 4 {
		t.Fatalf("after failed prepares: %+v", st)
	}
}

func TestPrepareCacheEviction(t *testing.T) {
	fix := newDiffFixture(t)
	e := engine.New(engine.Options{Workers: 1, CacheCapacity: 2})
	specs := dataset.Queries()[:3]
	for _, spec := range specs {
		if _, err := e.Prepare(spec.Text, fix.base); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	// specs[0] was evicted (LRU); preparing it again misses, and evicts
	// specs[1] in turn.
	if _, err := e.Prepare(specs[0].Text, fix.base); err != nil {
		t.Fatal(err)
	}
	st = e.CacheStats()
	if st.Hits != 0 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("after re-prepare of evicted: %+v", st)
	}
	// specs[2] stayed resident.
	if _, err := e.Prepare(specs[2].Text, fix.base); err != nil {
		t.Fatal(err)
	}
	if st = e.CacheStats(); st.Hits != 1 {
		t.Fatalf("expected a hit on resident entry: %+v", st)
	}
}

func TestPrepareCacheDisabled(t *testing.T) {
	fix := newDiffFixture(t)
	e := engine.New(engine.Options{CacheCapacity: -1})
	spec := dataset.Queries()[0]
	for i := 0; i < 3; i++ {
		if _, err := e.Prepare(spec.Text, fix.base); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 0 {
		t.Fatalf("disabled cache: %+v", st)
	}
}

// TestConcurrentEvaluateSharedCache exercises one engine — one worker pool,
// one prepared-query cache — from many goroutines at once; it is primarily a
// -race target, but also checks every concurrent answer against the
// sequential evaluators and the cache counters afterwards.
func TestConcurrentEvaluateSharedCache(t *testing.T) {
	fix := newDiffFixture(t)
	rng := newRng(6)
	set := randomSubSet(t, fix.base, rng)
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()[:4]
	want := make([][]core.Result, len(specs))
	for i, spec := range specs {
		q, err := core.PrepareQuery(spec.Text, set)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = core.Evaluate(q, set, fix.doc, bt)
	}

	e := engine.New(engine.Options{Workers: 4, CacheCapacity: 16})
	const callers = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, callers*rounds)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				si := (c + r) % len(specs)
				q, err := e.Prepare(specs[si].Text, set)
				if err != nil {
					errs <- err
					return
				}
				got := e.Evaluate(q, set, fix.doc, bt)
				if len(got) != len(want[si]) {
					errs <- fmt.Errorf("caller %d round %d: %d results, want %d", c, r, len(got), len(want[si]))
					return
				}
				for i := range got {
					if got[i].MappingIndex != want[si][i].MappingIndex || len(got[i].Matches) != len(want[si][i].Matches) {
						errs <- fmt.Errorf("caller %d round %d: result %d diverges", c, r, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := e.CacheStats()
	if st.Hits+st.Misses != callers*rounds {
		t.Fatalf("hits+misses = %d, want %d (%+v)", st.Hits+st.Misses, callers*rounds, st)
	}
	if st.Entries > len(specs) {
		t.Fatalf("%d entries for %d distinct patterns (%+v)", st.Entries, len(specs), st)
	}
	if st.Misses < uint64(len(specs)) {
		t.Fatalf("fewer misses than distinct patterns: %+v", st)
	}
}

// TestConcurrentBatches runs overlapping EvaluateBatch calls on one engine,
// another -race target exercising nested parallelism (batch fan-out on top
// of per-query fan-out) against the bounded pool.
func TestConcurrentBatches(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(7))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	specs := dataset.Queries()
	reqs := make([]engine.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = engine.Request{Pattern: spec.Text, K: (i % 2) * 3}
	}
	e := engine.New(engine.Options{Workers: 3})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, resp := range e.EvaluateBatch(set, fix.doc, bt, reqs) {
				if resp.Err != nil {
					t.Error(resp.Err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestWorkersFallbackSequential(t *testing.T) {
	fix := newDiffFixture(t)
	set := randomSubSet(t, fix.base, newRng(8))
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := dataset.Queries()[3]
	q, err := core.PrepareQuery(spec.Text, set)
	if err != nil {
		t.Fatal(err)
	}
	wantBasic := core.EvaluateBasic(q, set, fix.doc)
	wantTree := core.Evaluate(q, set, fix.doc, bt)
	for _, w := range []int{0, -1, -8} {
		e := engine.New(engine.Options{Workers: w})
		if e.Workers() != 1 {
			t.Fatalf("Workers(%d) reports %d, want 1", w, e.Workers())
		}
		assertSameResults(t, fmt.Sprintf("basic workers=%d", w), wantBasic, e.EvaluateBasic(q, set, fix.doc))
		assertSameResults(t, fmt.Sprintf("tree workers=%d", w), wantTree, e.Evaluate(q, set, fix.doc, bt))
		if got := e.EvaluateTopK(q, set, fix.doc, bt, 0); got != nil {
			t.Fatalf("top-0 workers=%d returned %d results", w, len(got))
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	fix := newDiffFixture(t)
	e := engine.New(engine.DefaultOptions())
	if resps := e.EvaluateBatch(fix.base, fix.doc, nil, nil); len(resps) != 0 {
		t.Fatalf("empty batch returned %d responses", len(resps))
	}
}

func TestBatchPropagatesErrors(t *testing.T) {
	fix := newDiffFixture(t)
	e := engine.New(engine.DefaultOptions())
	resps := e.EvaluateBatch(fix.base, fix.doc, nil, []engine.Request{
		{Pattern: dataset.Queries()[0].Text},
		{Pattern: "///not a query"},
	})
	if resps[0].Err != nil {
		t.Fatalf("valid request errored: %v", resps[0].Err)
	}
	if resps[1].Err == nil {
		t.Fatal("invalid request did not error")
	}
}
