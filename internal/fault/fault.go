// Package fault provides deterministic fault injection for chaos
// testing: an Injector owns a seeded random schedule and a table of named
// injection points, each configured with error, latency, and torn-write
// probabilities plus a fault budget. Production code never imports this
// package; the hooks it drives (store.SetHooks, replica.Client.Fault) are
// plain nil-checked function pointers, so the uninjected fast path costs
// one atomic load.
//
// The chaos differential suites lean on two properties. Determinism: one
// seed and one call sequence produce one schedule, so a failing run can
// be replayed exactly. Convergence: MaxFaults bounds each point's injected
// failures, so retried operations eventually succeed and a fault-laden run
// terminates with the same acknowledged state as a fault-free one.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the sentinel all injected errors wrap; consumers use
// errors.Is to tell an injected failure from a real one.
var ErrInjected = errors.New("fault: injected")

// Config shapes one injection point's behavior. All rates are
// probabilities in [0, 1], drawn independently per hit.
type Config struct {
	// ErrorRate is the probability a hit fails with an injected error.
	ErrorRate float64
	// LatencyRate is the probability a hit first sleeps for Latency.
	LatencyRate float64
	Latency     time.Duration
	// TornRate is the probability a torn-write query tears the frame,
	// keeping a random non-empty strict prefix — simulating a crash
	// mid-write that leaves undecodable tail bytes on disk.
	TornRate float64
	// MaxFaults caps the point's injected failures (errors plus torn
	// writes); once reached the point always passes. 0 means unlimited.
	MaxFaults int
}

// Counts is one injection point's ledger.
type Counts struct {
	// Hits is how many times the point was consulted.
	Hits int
	// Errors and Torn are the injected failures, by kind.
	Errors int
	Torn   int
	// Slept is how many hits had latency injected.
	Slept int
}

type pointState struct {
	cfg Config
	n   Counts
}

func (p *pointState) faults() int { return p.n.Errors + p.n.Torn }

// Injector drives a chaos run's injection points from one seeded
// schedule. The zero value injects nothing; it is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*pointState
}

// New returns an injector whose schedule is fully determined by seed and
// the sequence of Hit/Torn calls.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), points: map[string]*pointState{}}
}

// Set installs (or replaces) the configuration of one injection point.
func (in *Injector) Set(point string, cfg Config) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.points == nil {
		in.points = map[string]*pointState{}
	}
	in.points[point] = &pointState{cfg: cfg}
}

// Hit consults the schedule at a named point: it may sleep (injected
// latency) and may return an injected error. Unconfigured points — and a
// nil injector — always pass instantly.
func (in *Injector) Hit(point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	p := in.points[point]
	if p == nil {
		in.mu.Unlock()
		return nil
	}
	p.n.Hits++
	var sleep time.Duration
	if p.cfg.LatencyRate > 0 && in.rng.Float64() < p.cfg.LatencyRate {
		p.n.Slept++
		sleep = p.cfg.Latency
	}
	var err error
	if p.cfg.ErrorRate > 0 && (p.cfg.MaxFaults == 0 || p.faults() < p.cfg.MaxFaults) &&
		in.rng.Float64() < p.cfg.ErrorRate {
		p.n.Errors++
		err = fmt.Errorf("%w: %s (error %d)", ErrInjected, point, p.n.Errors)
	}
	in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// Torn asks whether a write at the point should be torn. It returns the
// fraction of the frame to keep — a value in (0, 1) — and true when the
// schedule tears this write; (0, false) otherwise.
func (in *Injector) Torn(point string) (keep float64, torn bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[point]
	if p == nil || p.cfg.TornRate <= 0 {
		return 0, false
	}
	if p.cfg.MaxFaults > 0 && p.faults() >= p.cfg.MaxFaults {
		return 0, false
	}
	if in.rng.Float64() >= p.cfg.TornRate {
		return 0, false
	}
	p.n.Torn++
	// A strict prefix: never 0 bytes (that is a clean failure, not a torn
	// one) and never the whole frame (that would be a success).
	return 0.05 + 0.9*in.rng.Float64(), true
}

// Counts returns a snapshot of every configured point's ledger.
func (in *Injector) Counts() map[string]Counts {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]Counts, len(in.points))
	for name, p := range in.points {
		out[name] = p.n
	}
	return out
}

// TotalFaults sums injected errors and torn writes across all points.
func (in *Injector) TotalFaults() int {
	total := 0
	for _, c := range in.Counts() {
		total += c.Errors + c.Torn
	}
	return total
}
