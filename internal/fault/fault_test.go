package fault

import (
	"errors"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42)
		in.Set("p", Config{ErrorRate: 0.5})
		out := make([]bool, 50)
		for i := range out {
			out[i] = in.Hit("p") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at hit %d", i)
		}
	}
	saw := false
	for _, v := range a {
		if v {
			saw = true
		}
	}
	if !saw {
		t.Fatal("ErrorRate 0.5 injected nothing in 50 hits")
	}
}

func TestInjectorSentinelAndCounts(t *testing.T) {
	in := New(7)
	in.Set("p", Config{ErrorRate: 1})
	err := in.Hit("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not wrap sentinel: %v", err)
	}
	if err := in.Hit("unconfigured"); err != nil {
		t.Fatalf("unconfigured point injected: %v", err)
	}
	c := in.Counts()["p"]
	if c.Hits != 1 || c.Errors != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if in.TotalFaults() != 1 {
		t.Fatalf("total faults: %d", in.TotalFaults())
	}
}

func TestInjectorMaxFaultsConverges(t *testing.T) {
	in := New(3)
	in.Set("p", Config{ErrorRate: 1, TornRate: 1, MaxFaults: 4})
	faults := 0
	for i := 0; i < 100; i++ {
		if err := in.Hit("p"); err != nil {
			faults++
			continue
		}
		if _, torn := in.Torn("p"); torn {
			faults++
		}
	}
	if faults != 4 {
		t.Fatalf("MaxFaults 4 injected %d faults", faults)
	}
	// Past the budget every operation passes — retries converge.
	if err := in.Hit("p"); err != nil {
		t.Fatalf("exhausted point still injecting: %v", err)
	}
}

func TestInjectorTornFraction(t *testing.T) {
	in := New(11)
	in.Set("p", Config{TornRate: 1})
	for i := 0; i < 20; i++ {
		keep, torn := in.Torn("p")
		if !torn {
			t.Fatalf("TornRate 1 did not tear at call %d", i)
		}
		if keep <= 0 || keep >= 1 {
			t.Fatalf("torn fraction out of (0,1): %v", keep)
		}
	}
}

func TestNilInjectorPasses(t *testing.T) {
	var in *Injector
	if err := in.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if _, torn := in.Torn("p"); torn {
		t.Fatal("nil injector tore")
	}
	if in.Counts() != nil || in.TotalFaults() != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestInjectorLatency(t *testing.T) {
	in := New(5)
	in.Set("p", Config{LatencyRate: 1, Latency: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Hit("p"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Fatalf("latency not injected: %v", took)
	}
	if c := in.Counts()["p"]; c.Slept != 1 {
		t.Fatalf("slept count: %+v", c)
	}
}
