// Package replica is the log-shipping replication substrate. A primary
// xmatchd owns one ShardLog per serving shard: the authoritative record
// of every applied edit batch since the last checkpoint, retained in
// memory for streaming and optionally appended to a durable edit-log
// file. Followers pull the retained records over HTTP (Client), replay
// them through the same delta.Handle path the primary applied them on
// (Follower), and land on byte-identical snapshots — the epoch number is
// the consistency token that names each state on both sides. When a
// follower has fallen behind the retained log (a checkpoint truncated the
// history it needed), it bootstraps from a checkpoint blob instead of
// replaying from genesis.
package replica

import (
	"fmt"
	"sync"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/index"
	"xmatch/internal/obs"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

// ShardLog owns one shard's replication log: the records from base
// (exclusive) to the current epoch, kept in memory in both decoded and
// framed form so streaming re-encodes nothing, plus the durable edit-log
// file and checkpoint blob when the shard persists its mutations.
// Retention is bounded by checkpoints — Checkpoint folds the retained
// records into a checkpoint blob and drops them.
//
// A ShardLog belongs to one catalog generation. Reload retires the old
// generation's logs before publishing the new catalog, so a mutate or
// checkpoint still holding the old collection can never interleave its
// writes with the new generation's writer on the same file.
type ShardLog struct {
	path string // edit-log file; "" = memory-only (volatile shard)
	ckpt string // checkpoint file; "" when path is ""
	sync bool   // fsync each appended record

	mu      sync.Mutex
	retired bool
	repair  bool // last file append failed; recover before the next one
	base    uint64
	recs    []store.EditRecord
	frames  [][]byte
	bytes   int64

	// appendLat times the durable file append (fsync included) of each
	// logged record; empty on memory-only logs.
	appendLat *obs.Histogram
}

// Status is a point-in-time summary of a shard log, for /statsz.
type Status struct {
	Base            uint64
	Epoch           uint64
	RetainedRecords int
	RetainedBytes   int64
	Durable         bool
	Retired         bool
}

// NewShardLog creates a memory-only shard log whose first record will
// apply on top of epoch base. Volatile shards (no edit-log path) still
// retain records so followers can stream them.
func NewShardLog(base uint64) *ShardLog {
	return &ShardLog{base: base, appendLat: obs.NewHistogram(nil)}
}

// CheckpointPath derives the checkpoint blob path from an edit-log path.
func CheckpointPath(logPath string) string { return logPath + ".ckpt" }

// OpenShardLog opens the durable shard log at path, repairing a torn
// tail (a crash mid-append) and reconciling the file against the shard's
// checkpoint epoch — the epoch of the checkpoint blob the caller has
// already restored, or 0 if there is none. Records the checkpoint
// already covers are dropped and the file rewritten at the checkpoint's
// base, which heals a crash that landed between checkpoint rename and
// log truncation. A log whose base is ahead of the checkpoint is a state
// gap — history was truncated but the checkpoint that replaced it is
// missing — and fails hard. The returned log retains the surviving
// records; the caller replays them onto the restored document.
func OpenShardLog(path string, syncEach bool, ckptEpoch uint64) (*ShardLog, error) {
	lg, err := store.RecoverEditLogFile(path)
	if err != nil {
		return nil, err
	}
	if lg.Base > ckptEpoch {
		return nil, fmt.Errorf("replica: edit log %s starts at epoch %d but the checkpoint is at %d: compacted history is missing", path, lg.Base, ckptEpoch)
	}
	l := &ShardLog{path: path, ckpt: CheckpointPath(path), sync: syncEach, base: ckptEpoch, appendLat: obs.NewHistogram(nil)}
	for _, rec := range lg.Records {
		if rec.Epoch <= ckptEpoch {
			continue // already folded into the checkpoint
		}
		frame, err := store.EncodeEditRecord(rec)
		if err != nil {
			return nil, err
		}
		l.recs = append(l.recs, rec)
		l.frames = append(l.frames, frame)
		l.bytes += int64(len(frame))
	}
	if lg.Base != ckptEpoch {
		// The file predates the checkpoint (crash between checkpoint
		// rename and log reset, typically): rewrite it so file and memory
		// agree on the base and the dead prefix stops accumulating.
		if err := store.WriteEditLogFile(path, ckptEpoch, l.frames); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Path returns the durable edit-log file path ("" for memory-only).
func (l *ShardLog) Path() string { return l.path }

// Durable reports whether appended records are persisted to a file.
func (l *ShardLog) Durable() bool { return l.path != "" }

// Base returns the epoch the first retained record applies on top of —
// the latest checkpoint's epoch.
func (l *ShardLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Records returns a copy of the retained records in epoch order.
func (l *ShardLog) Records() []store.EditRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]store.EditRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// Status returns the log's current summary.
func (l *ShardLog) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Status{
		Base:            l.base,
		Epoch:           l.base + uint64(len(l.recs)),
		RetainedRecords: len(l.recs),
		RetainedBytes:   l.bytes,
		Durable:         l.path != "",
		Retired:         l.retired,
	}
}

// Append records one applied batch at the given epoch — the hook handed
// to delta.Handle.ApplyLogged, called under the handle's write lock
// before the batch publishes. The epoch must be dense (previous epoch +
// 1); a retired log refuses, failing the mutate, so a caller holding a
// reloaded-away collection cannot write to a file the new catalog
// generation now owns.
func (l *ShardLog) Append(epoch uint64, edits []delta.Edit) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.retired {
		return fmt.Errorf("replica: edit log retired by reload")
	}
	if want := l.base + uint64(len(l.recs)) + 1; epoch != want {
		return fmt.Errorf("replica: append at epoch %d, want %d", epoch, want)
	}
	rec := store.EditRecord{Epoch: epoch, Edits: edits}
	frame, err := store.EncodeEditRecord(rec)
	if err != nil {
		return err
	}
	if l.path != "" {
		if l.repair {
			// The previous append failed and may have left a torn tail it
			// could not truncate; appending after torn garbage would turn
			// it into mid-log corruption, so repair first.
			if _, err := store.RecoverEditLogFile(l.path); err != nil {
				return err
			}
			l.repair = false
		}
		start := time.Now()
		if err := store.AppendEditRecordFile(l.path, rec, l.sync); err != nil {
			l.repair = true
			return err
		}
		l.appendLat.Observe(time.Since(start))
	}
	l.recs = append(l.recs, rec)
	l.frames = append(l.frames, frame)
	l.bytes += int64(len(frame))
	return nil
}

// Stream describes one streaming response: either the framed records
// after epoch From (possibly none, when the follower is caught up), or
// NeedCheckpoint when From predates the retained history and the
// follower must bootstrap from the checkpoint at CheckpointEpoch.
type Stream struct {
	From            uint64
	Frames          [][]byte
	Bytes           int64
	NeedCheckpoint  bool
	CheckpointEpoch uint64
}

// StreamFrom returns the retained records with epochs above from, in
// their framed wire form (shared, not copied — frames are immutable).
func (l *ShardLog) StreamFrom(from uint64) Stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return Stream{From: from, NeedCheckpoint: true, CheckpointEpoch: l.base}
	}
	idx := from - l.base
	if idx >= uint64(len(l.frames)) {
		return Stream{From: from}
	}
	out := Stream{From: from, Frames: l.frames[idx:]}
	for _, f := range out.Frames {
		out.Bytes += int64(len(f))
	}
	return out
}

// Checkpoint persists the given state as the shard's checkpoint, resets
// the edit-log file to an empty log based at the checkpoint epoch, and
// drops the retained records the checkpoint now covers. The caller must
// pin the state under the handle's write lock (delta.Handle.Freeze) so
// no writer can log a record between the snapshot and the truncation —
// otherwise a logged-but-unpublished batch could be silently destroyed.
// Both file replacements are atomic (temp + rename); a crash between the
// two leaves a checkpoint plus a stale log, which OpenShardLog heals on
// the next start. On a memory-only log, Checkpoint just compacts the
// retained records (followers further behind re-bootstrap).
func (l *ShardLog) Checkpoint(doc *xmltree.Document, ix *index.Index, epoch uint64) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.retired {
		return 0, fmt.Errorf("replica: edit log retired by reload")
	}
	if cur := l.base + uint64(len(l.recs)); epoch != cur {
		return 0, fmt.Errorf("replica: checkpoint at epoch %d but log is at %d", epoch, cur)
	}
	freed := l.bytes
	if l.path != "" {
		if err := store.SaveCheckpointFile(l.ckpt, doc, ix, epoch); err != nil {
			return 0, err
		}
		if err := store.WriteEditLogFile(l.path, epoch, nil); err != nil {
			return 0, err
		}
		l.repair = false
	}
	l.base = epoch
	l.recs, l.frames, l.bytes = nil, nil, 0
	return freed, nil
}

// ResetTo drops every retained record and rebases the log at epoch — a
// follower adopting a checkpoint discards the history it replayed so
// far. Memory-only.
func (l *ShardLog) ResetTo(epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = epoch
	l.recs, l.frames, l.bytes = nil, nil, 0
}

// AppendLatency snapshots the durable-append latency histogram (fsync
// included); empty on memory-only logs.
func (l *ShardLog) AppendLatency() obs.HistogramSnapshot { return l.appendLat.Snapshot() }

// CollectMetrics emits the log's retention state and append latency onto
// e under the given labels — the replica subsystem's primary-side
// contribution to /metricsz.
func (l *ShardLog) CollectMetrics(e *obs.Exporter, labels ...obs.Label) {
	st := l.Status()
	e.Gauge("xmatch_replica_log_epoch", "Shard log's current epoch.", float64(st.Epoch), labels...)
	e.Gauge("xmatch_replica_log_retained_records", "Records retained since the last checkpoint.", float64(st.RetainedRecords), labels...)
	e.Gauge("xmatch_replica_log_retained_bytes", "Framed bytes retained since the last checkpoint.", float64(st.RetainedBytes), labels...)
	if st.Durable {
		e.Histogram("xmatch_replica_log_append_seconds", "Durable edit-log append latency, fsync included.", l.appendLat.Snapshot(), labels...)
	}
}

// Retire permanently refuses further appends and checkpoints. Reload
// retires the outgoing catalog generation's logs so no straggling writer
// can interleave with the new generation on the same file.
func (l *ShardLog) Retire() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retired = true
}
