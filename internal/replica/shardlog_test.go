package replica

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xmatch/internal/delta"
	"xmatch/internal/store"
	"xmatch/internal/xmltree"
)

func batch(text string) []delta.Edit {
	return []delta.Edit{{Op: delta.OpSetText, Path: "r.a", Text: text}}
}

func TestShardLogAppendAndStream(t *testing.T) {
	l := NewShardLog(0)
	if err := l.Append(2, batch("x")); err == nil {
		t.Fatal("sparse first epoch accepted")
	}
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(i, batch("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(3, batch("x")); err == nil {
		t.Fatal("repeated epoch accepted")
	}
	st := l.Status()
	if st.Base != 0 || st.Epoch != 3 || st.RetainedRecords != 3 || st.Durable || st.Retired {
		t.Fatalf("status %+v", st)
	}

	// A caught-up follower gets nothing; a lagging one gets the exact
	// suffix; one behind the base is told to bootstrap.
	if s := l.StreamFrom(3); len(s.Frames) != 0 || s.NeedCheckpoint {
		t.Fatalf("caught-up stream %+v", s)
	}
	s := l.StreamFrom(1)
	if len(s.Frames) != 2 || s.NeedCheckpoint || s.Bytes <= 0 {
		t.Fatalf("suffix stream %+v", s)
	}
	// The frames are literal edit-log frames: an edit-log blob based at
	// From, holding epochs From+1..3.
	var blob bytes.Buffer
	if err := store.CreateEditLogAt(&blob, 1); err != nil {
		t.Fatal(err)
	}
	for _, f := range s.Frames {
		blob.Write(f)
	}
	lg, err := store.LoadEditLog(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lg.Base != 1 || len(lg.Records) != 2 || lg.Records[0].Epoch != 2 || lg.Records[1].Epoch != 3 {
		t.Fatalf("reframed stream diverged: %+v", lg)
	}

	l.ResetTo(10)
	if s := l.StreamFrom(3); !s.NeedCheckpoint || s.CheckpointEpoch != 10 {
		t.Fatalf("pre-base stream %+v", s)
	}

	l.Retire()
	if err := l.Append(11, batch("x")); err == nil || !strings.Contains(err.Error(), "retired") {
		t.Fatalf("retired log accepted append: %v", err)
	}
}

// shardState builds a live handle over a small document.
func shardState(t *testing.T) *delta.Handle {
	t.Helper()
	doc, err := xmltree.ParseString(`<r><a>0</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	return delta.Open(doc)
}

func TestShardLogDurableCycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s0.editlog")
	h := shardState(t)

	// Fresh durable log at base 0 (no checkpoint yet).
	l, err := OpenShardLog(path, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h.ApplyLogged(batch("v"+string(rune('0'+i))), l.Append); err != nil {
			t.Fatal(err)
		}
	}
	// The file holds what memory holds.
	lg, err := store.LoadEditLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lg.Records, l.Records()) {
		t.Fatal("file and memory disagree")
	}

	// Checkpoint under Freeze: file resets to base 3, checkpoint blob
	// exists, retention drops.
	snap := h.Snapshot()
	var freed int64
	if err := h.Freeze(func(s *delta.Snapshot) error {
		var ferr error
		freed, ferr = l.Checkpoint(s.Doc, s.Index, s.Epoch)
		return ferr
	}); err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatalf("freed %d", freed)
	}
	if st := l.Status(); st.Base != 3 || st.RetainedRecords != 0 {
		t.Fatalf("post-checkpoint status %+v", st)
	}
	ck, err := store.LoadCheckpointFile(CheckpointPath(path))
	if err != nil || ck == nil {
		t.Fatalf("checkpoint blob: %v, %v", err, ck)
	}
	if ck.Epoch != 3 || ck.Doc.String() != snap.Doc.String() {
		t.Fatal("checkpoint state diverged")
	}

	// More appends after the checkpoint, then reopen: replaying the
	// checkpoint + surviving records reproduces the live state.
	if _, err := h.ApplyLogged(batch("after"), l.Append); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenShardLog(path, true, ck.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	h2 := delta.Open(ck.Doc)
	for _, rec := range l2.Records() {
		snap2, err := h2.Apply(rec.Edits)
		if err != nil {
			t.Fatal(err)
		}
		if snap2.Epoch != rec.Epoch {
			t.Fatalf("replay epoch %d, record %d", snap2.Epoch, rec.Epoch)
		}
	}
	if h2.Snapshot().Doc.String() != h.Snapshot().Doc.String() {
		t.Fatal("restart state diverged from live state")
	}
}

func TestShardLogOpenReconciliation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s0.editlog")
	h := shardState(t)
	l, err := OpenShardLog(path, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := h.ApplyLogged(batch("x"), l.Append); err != nil {
			t.Fatal(err)
		}
	}

	// Crash between checkpoint rename and log reset: checkpoint at 2, log
	// still based at 0 with records 1..4. Open must drop 1..2, keep 3..4,
	// and rewrite the file at base 2.
	snapAt4 := h.Snapshot()
	l2, err := OpenShardLog(path, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	if len(recs) != 2 || recs[0].Epoch != 3 || recs[1].Epoch != 4 {
		t.Fatalf("reconciled records %+v", recs)
	}
	lg, err := store.LoadEditLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Base != 2 || len(lg.Records) != 2 {
		t.Fatalf("rewritten file: base %d, %d records", lg.Base, len(lg.Records))
	}
	_ = snapAt4

	// A log whose base is ahead of the checkpoint means the compacted
	// history is gone: hard error, not silent data loss.
	if err := store.WriteEditLogFile(path, 9, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardLog(path, false, 2); err == nil || !strings.Contains(err.Error(), "compacted history") {
		t.Fatalf("missing-history open: %v", err)
	}

	// A torn tail on open is repaired, not fatal.
	frames := make([][]byte, 0, 2)
	for i := uint64(1); i <= 2; i++ {
		f, err := store.EncodeEditRecord(store.EditRecord{Epoch: i, Edits: batch("x")})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if err := store.WriteEditLogFile(path, 0, frames); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenShardLog(path, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recs := l3.Records(); len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("torn open kept %+v", recs)
	}
	// And appends resume cleanly at the next epoch.
	if err := l3.Append(2, batch("y")); err != nil {
		t.Fatal(err)
	}
	if lg, err := store.LoadEditLogFile(path); err != nil || lg.Torn || len(lg.Records) != 2 {
		t.Fatalf("post-repair file: %v, %+v", err, lg)
	}
}
