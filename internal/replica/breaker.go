package replica

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState names a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every attempt (failures below the threshold
	// still impose an exponential backoff wait between attempts).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects attempts until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen has admitted one probe and rejects the rest until
	// the probe reports: success closes the breaker, failure reopens it
	// with a doubled cooldown.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one sync circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	Threshold int
	// BaseCooldown seeds both the pre-threshold backoff (base·2^(n-1)
	// after the n-th consecutive failure) and the open-state cooldown,
	// which doubles on every failed half-open probe; MaxCooldown caps
	// both.
	BaseCooldown time.Duration
	MaxCooldown  time.Duration
	// Jitter spreads each wait uniformly over ±Jitter/2 of its nominal
	// value, decorrelating the retry schedules of many shards. 0 gets
	// the 0.2 default; negative disables jitter entirely (tests).
	Jitter float64
	// Seed makes the jitter schedule deterministic for tests; 0 derives
	// one from the wall clock.
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.BaseCooldown <= 0 {
		c.BaseCooldown = 200 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 30 * time.Second
	}
	switch {
	case c.Jitter < 0:
		c.Jitter = 0
	case c.Jitter == 0:
		c.Jitter = 0.2
	case c.Jitter > 1:
		c.Jitter = 1
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	return c
}

// BreakerStatus is a point-in-time view of one breaker, shaped for the
// /statsz lag rows and /metricsz gauges.
type BreakerStatus struct {
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutiveFailures,omitempty"`
	Opens               uint64  `json:"opens,omitempty"`
	RetryInMs           float64 `json:"retryInMs,omitempty"`
}

// Breaker is a circuit breaker with built-in exponential backoff: every
// failure imposes a jittered wait before the next attempt (doubling per
// consecutive failure), Threshold consecutive failures open the circuit,
// and an open circuit admits a single half-open probe per cooldown. All
// methods take explicit times so schedules are testable without sleeping;
// it is safe for concurrent use.
type Breaker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	rng         *rand.Rand
	state       BreakerState
	consecutive int
	opens       uint64
	cooldown    time.Duration // current open-state cooldown
	until       time.Time     // next attempt admitted at/after this time
}

// NewBreaker returns a closed breaker with the given configuration
// (zero-valued fields get defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Allow reports whether an attempt may proceed at time now. An open
// breaker whose cooldown has elapsed transitions to half-open and admits
// exactly that one probe.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	case BreakerHalfOpen:
		return false // the admitted probe has not reported yet
	default:
		return !now.Before(b.until)
	}
}

// Success reports a completed attempt: the breaker closes and every
// backoff resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.cooldown = 0
	b.until = time.Time{}
}

// Failure reports a failed attempt at time now, scheduling the next
// admission per the backoff/cooldown rules.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch {
	case b.state == BreakerHalfOpen:
		// Failed probe: reopen with a doubled cooldown.
		b.state = BreakerOpen
		b.opens++
		b.cooldown = b.capped(2 * b.cooldown)
	case b.consecutive >= b.cfg.Threshold:
		if b.state != BreakerOpen {
			b.state = BreakerOpen
			b.opens++
			b.cooldown = b.cfg.BaseCooldown
		}
	default:
		// Below threshold: exponential backoff between attempts, still
		// nominally closed.
		b.until = now.Add(b.jittered(b.capped(b.cfg.BaseCooldown << (b.consecutive - 1))))
		return
	}
	b.until = now.Add(b.jittered(b.cooldown))
}

// Status returns the breaker's state as of time now.
func (b *Breaker) Status(now time.Time) BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{
		State:               b.state.String(),
		ConsecutiveFailures: b.consecutive,
		Opens:               b.opens,
	}
	if wait := b.until.Sub(now); wait > 0 {
		st.RetryInMs = float64(wait) / float64(time.Millisecond)
	}
	return st
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) capped(d time.Duration) time.Duration {
	if d <= 0 || d > b.cfg.MaxCooldown {
		return b.cfg.MaxCooldown
	}
	return d
}

// jittered spreads d uniformly over ±Jitter/2 around its nominal value.
func (b *Breaker) jittered(d time.Duration) time.Duration {
	if b.cfg.Jitter <= 0 {
		return d
	}
	f := 1 - b.cfg.Jitter/2 + b.cfg.Jitter*b.rng.Float64()
	return time.Duration(float64(d) * f)
}
