package replica

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"xmatch/internal/delta"
	"xmatch/internal/obs"
)

// Target is the local state one follower shard drives: the live handle
// edits replay through and the (memory-only) shard log that retains the
// replayed records, which lets a follower itself be streamed from and
// feeds its lag accounting.
type Target struct {
	Handle *delta.Handle
	Log    *ShardLog
}

// Lag is one shard's replication lag as of its last sync attempt.
type Lag struct {
	// PrimaryEpoch is the primary's epoch as of the last successful
	// stream response; LocalEpoch is this follower's current epoch.
	PrimaryEpoch uint64 `json:"primaryEpoch"`
	LocalEpoch   uint64 `json:"localEpoch"`
	// EpochsBehind and BytesPending measure the gap the last stream
	// response revealed: how many epochs the follower still had to apply
	// and the wire bytes it fetched to close them. Zero when caught up.
	EpochsBehind uint64 `json:"epochsBehind"`
	BytesPending int64  `json:"bytesPending"`
	// Bootstraps counts checkpoint bootstraps (history compacted away);
	// SyncErrors counts failed sync attempts; LastError keeps the most
	// recent failure's message.
	Bootstraps uint64 `json:"bootstraps,omitempty"`
	SyncErrors uint64 `json:"syncErrors,omitempty"`
	LastError  string `json:"lastError,omitempty"`
	// Breaker is the shard's sync circuit breaker as of the read —
	// "closed" / "open" / "half-open", with its failure streak, cumulative
	// opens, and the wait until the next admitted attempt. Populated by
	// Lags/MaxLag, not stored.
	Breaker *BreakerStatus `json:"breaker,omitempty"`
}

// Follower replays a primary's edit streams onto local handles. One
// follower serves a whole catalog: SetTargets registers each dataset's
// shards, Sync pulls one dataset level with the primary, SyncAll sweeps
// the catalog, Run sweeps on an interval. Sync passes are serialized
// internally — two concurrent pulls of the same shard would double-apply
// records.
type Follower struct {
	client *Client

	// Observe, when set, is called after every replay that applied at
	// least one record — the hook the server uses to emit replication
	// spans and per-shard replay metrics. Set before Run starts; it may
	// be called from the sync goroutine only.
	Observe func(dataset string, shard int, records int, took time.Duration)

	// Logger receives sync-failure log lines; nil falls back to
	// slog.Default(). Set before Run starts.
	Logger *slog.Logger

	// BreakerConfig tunes the per-shard sync circuit breakers (zero
	// values get defaults). Set before the first Sync; breakers are
	// created lazily per shard with whatever the field holds then.
	BreakerConfig BreakerConfig

	mu      sync.Mutex // serializes sync passes
	targets map[string][]*Target

	bkMu     sync.Mutex
	breakers map[string][]*Breaker

	lagMu sync.Mutex
	lag   map[string][]Lag

	replayed  atomic.Uint64 // records replayed
	replayLat *obs.Histogram
}

// NewFollower creates a follower pulling from the given client.
func NewFollower(client *Client) *Follower {
	return &Follower{
		client:    client,
		targets:   make(map[string][]*Target),
		breakers:  make(map[string][]*Breaker),
		lag:       make(map[string][]Lag),
		replayLat: obs.NewHistogram(nil),
	}
}

// breaker returns (creating if needed) the circuit breaker of one shard.
func (f *Follower) breaker(dataset string, shard int) *Breaker {
	f.bkMu.Lock()
	defer f.bkMu.Unlock()
	bs := f.breakers[dataset]
	for len(bs) <= shard {
		bs = append(bs, NewBreaker(f.BreakerConfig))
	}
	f.breakers[dataset] = bs
	return bs[shard]
}

// Primary returns the primary's base URL.
func (f *Follower) Primary() string { return f.client.Base }

// SetTargets registers (or replaces) the local shards of one dataset.
func (f *Follower) SetTargets(dataset string, ts []*Target) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.targets[dataset] = ts
	f.lagMu.Lock()
	f.lag[dataset] = make([]Lag, len(ts))
	f.lagMu.Unlock()
}

// Lags returns the per-shard lag of one dataset (copy; nil if unknown),
// each row annotated with its breaker's current status.
func (f *Follower) Lags(dataset string) []Lag {
	f.lagMu.Lock()
	ls, ok := f.lag[dataset]
	if !ok {
		f.lagMu.Unlock()
		return nil
	}
	out := make([]Lag, len(ls))
	copy(out, ls)
	f.lagMu.Unlock()
	now := time.Now()
	for i := range out {
		st := f.breaker(dataset, i).Status(now)
		out[i].Breaker = &st
	}
	return out
}

func (f *Follower) setLag(dataset string, shard int, update func(*Lag)) {
	f.lagMu.Lock()
	defer f.lagMu.Unlock()
	if ls := f.lag[dataset]; shard < len(ls) {
		update(&ls[shard])
	}
}

// Sync pulls one dataset level with the primary: every shard streams the
// records above its current epoch and replays them in order; a shard
// whose history has been compacted away bootstraps from a checkpoint
// first. A shard whose circuit breaker is cooling down is skipped — not
// an error; the breaker admits a retry (or a half-open probe) once its
// backoff elapses. Returns the first error; remaining shards are still
// attempted.
func (f *Follower) Sync(dataset string) error {
	f.mu.Lock()
	ts := f.targets[dataset]
	if ts == nil {
		f.mu.Unlock()
		return fmt.Errorf("replica: unknown dataset %q", dataset)
	}
	var first error
	for i, t := range ts {
		b := f.breaker(dataset, i)
		if !b.Allow(time.Now()) {
			continue
		}
		if err := f.syncShard(dataset, i, t); err != nil {
			b.Failure(time.Now())
			if first == nil {
				first = err
			}
		} else {
			b.Success()
		}
	}
	f.mu.Unlock()
	return first
}

// SyncAll sweeps every registered dataset once.
func (f *Follower) SyncAll() error {
	f.mu.Lock()
	names := make([]string, 0, len(f.targets))
	for name := range f.targets {
		names = append(names, name)
	}
	f.mu.Unlock()
	var first error
	for _, name := range names {
		if err := f.Sync(name); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncShard runs under f.mu.
func (f *Follower) syncShard(dataset string, shard int, t *Target) error {
	// Two passes at most: one that discovers a compacted history and
	// bootstraps from the checkpoint, one that streams the records above
	// it. A fresh checkpoint landing between the two just means the next
	// sync bootstraps again.
	for attempt := 0; attempt < 2; attempt++ {
		from := t.Handle.Snapshot().Epoch
		res, err := f.client.Stream(dataset, shard, from)
		if err != nil {
			f.recordError(dataset, shard, err)
			return err
		}
		if res.NeedCheckpoint {
			if err := f.bootstrap(dataset, shard, t); err != nil {
				f.recordError(dataset, shard, err)
				return err
			}
			continue
		}
		behind := uint64(0)
		if res.PrimaryEpoch > from {
			behind = res.PrimaryEpoch - from
		}
		replayStart := time.Now()
		for _, rec := range res.Records {
			snap, err := t.Handle.ApplyLogged(rec.Edits, func(epoch uint64, es []delta.Edit) error {
				return t.Log.Append(epoch, es)
			})
			if err != nil {
				err = fmt.Errorf("replica: %s/%d: replaying epoch %d: %w", dataset, shard, rec.Epoch, err)
				f.recordError(dataset, shard, err)
				return err
			}
			if snap.Epoch != rec.Epoch {
				err = fmt.Errorf("replica: %s/%d: replay diverged: record epoch %d produced snapshot epoch %d", dataset, shard, rec.Epoch, snap.Epoch)
				f.recordError(dataset, shard, err)
				return err
			}
		}
		if n := len(res.Records); n > 0 {
			took := time.Since(replayStart)
			f.replayed.Add(uint64(n))
			f.replayLat.Observe(took)
			if f.Observe != nil {
				f.Observe(dataset, shard, n, took)
			}
		}
		local := t.Handle.Snapshot().Epoch
		f.setLag(dataset, shard, func(l *Lag) {
			l.PrimaryEpoch = res.PrimaryEpoch
			l.LocalEpoch = local
			l.EpochsBehind = behind
			l.BytesPending = res.Bytes
			l.LastError = ""
		})
		return nil
	}
	err := fmt.Errorf("replica: %s/%d: primary checkpointed twice during one sync", dataset, shard)
	f.recordError(dataset, shard, err)
	return err
}

// bootstrap adopts a checkpoint fetched from the primary, replacing the
// shard's state wholesale and rebasing its retained log.
func (f *Follower) bootstrap(dataset string, shard int, t *Target) error {
	ck, err := f.client.Checkpoint(dataset, shard)
	if err != nil {
		return err
	}
	if cur := t.Handle.Snapshot().Epoch; ck.Epoch < cur {
		return fmt.Errorf("replica: %s/%d: checkpoint at epoch %d is older than local state at %d", dataset, shard, ck.Epoch, cur)
	}
	if _, err := t.Handle.Adopt(ck.Doc); err != nil {
		return fmt.Errorf("replica: %s/%d: adopting checkpoint: %w", dataset, shard, err)
	}
	t.Log.ResetTo(ck.Epoch)
	f.setLag(dataset, shard, func(l *Lag) {
		l.Bootstraps++
		l.LocalEpoch = ck.Epoch
	})
	return nil
}

// MaxLag returns the worst per-shard lag across every registered
// dataset, by epochs behind (sync errors and bootstraps tie-break
// upward so a shard that cannot sync at all surfaces even when its last
// known epoch gap was zero). ok is false when no shard is registered.
func (f *Follower) MaxLag() (dataset string, shard int, lag Lag, ok bool) {
	f.lagMu.Lock()
	for name, ls := range f.lag {
		for i := range ls {
			if !ok || ls[i].EpochsBehind > lag.EpochsBehind {
				dataset, shard, lag, ok = name, i, ls[i], true
			}
		}
	}
	f.lagMu.Unlock()
	if ok {
		st := f.breaker(dataset, shard).Status(time.Now())
		lag.Breaker = &st
	}
	return
}

// CollectMetrics emits the follower's replication metrics onto e — the
// replica subsystem's follower-side contribution to /metricsz.
func (f *Follower) CollectMetrics(e *obs.Exporter) {
	f.lagMu.Lock()
	lags := make(map[string][]Lag, len(f.lag))
	for name, ls := range f.lag {
		out := make([]Lag, len(ls))
		copy(out, ls)
		lags[name] = out
	}
	f.lagMu.Unlock()
	now := time.Now()
	for name, ls := range lags {
		for i, l := range ls {
			labels := []obs.Label{{Name: "dataset", Value: name}, {Name: "shard", Value: fmt.Sprint(i)}}
			e.Gauge("xmatch_replica_lag_epochs", "Epochs the follower shard is behind the primary.", float64(l.EpochsBehind), labels...)
			e.Gauge("xmatch_replica_local_epoch", "Follower shard's current epoch.", float64(l.LocalEpoch), labels...)
			e.Counter("xmatch_replica_bootstraps_total", "Checkpoint bootstraps taken.", float64(l.Bootstraps), labels...)
			e.Counter("xmatch_replica_sync_errors_total", "Failed sync attempts.", float64(l.SyncErrors), labels...)
			st := f.breaker(name, i).Status(now)
			open := 0.0
			switch st.State {
			case "open":
				open = 2
			case "half-open":
				open = 1
			}
			e.Gauge("xmatch_replica_breaker_state", "Sync circuit breaker position (0 closed, 1 half-open, 2 open).", open, labels...)
			e.Counter("xmatch_replica_breaker_opens_total", "Times the sync circuit breaker opened.", float64(st.Opens), labels...)
		}
	}
	e.Counter("xmatch_replica_replayed_records_total", "Edit records replayed onto local shards.", float64(f.replayed.Load()))
	e.Histogram("xmatch_replica_replay_seconds", "Per-sync replay latency over applied records.", f.replayLat.Snapshot())
}

func (f *Follower) recordError(dataset string, shard int, err error) {
	f.setLag(dataset, shard, func(l *Lag) {
		l.SyncErrors++
		l.LastError = err.Error()
	})
}

// Run sweeps the catalog every interval until ctx is done, logging sync
// failures (the next tick retries).
func (f *Follower) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := f.SyncAll(); err != nil {
				lg := f.Logger
				if lg == nil {
					lg = slog.Default()
				}
				lg.Warn("replica sync failed", "err", err)
			}
		}
	}
}
