package replica

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, BaseCooldown: time.Second, MaxCooldown: time.Minute, Jitter: -1, Seed: 1})
	now := time.Unix(0, 0)
	if !b.Allow(now) {
		t.Fatal("fresh breaker rejected")
	}
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 1 failure: %v", b.State())
	}
	// Pre-threshold backoff: rejected until base elapses, admitted after.
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("attempt admitted inside backoff window")
	}
	now = now.Add(time.Second)
	if !b.Allow(now) {
		t.Fatal("attempt rejected after backoff elapsed")
	}
	b.Failure(now)
	now = now.Add(2 * time.Second) // 2nd failure backs off base*2
	if !b.Allow(now) {
		t.Fatal("attempt rejected after doubled backoff")
	}
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d failures: %v", 3, b.State())
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted inside cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, BaseCooldown: time.Second, MaxCooldown: time.Minute, Jitter: -1, Seed: 1})
	now := time.Unix(0, 0)
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state: %v", b.State())
	}
	now = now.Add(time.Second)
	if !b.Allow(now) {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission: %v", b.State())
	}
	if b.Allow(now) {
		t.Fatal("second probe admitted while first in flight")
	}
	// Failed probe reopens with doubled cooldown.
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe: %v", b.State())
	}
	if b.Allow(now.Add(1500 * time.Millisecond)) {
		t.Fatal("reopened breaker admitted before doubled cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow(now) {
		t.Fatal("probe rejected after doubled cooldown")
	}
	// Successful probe closes and resets.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after success: %v", b.State())
	}
	if !b.Allow(now) {
		t.Fatal("closed breaker rejected")
	}
	st := b.Status(now)
	if st.State != "closed" || st.ConsecutiveFailures != 0 || st.Opens != 2 {
		t.Fatalf("status after recovery: %+v", st)
	}
}

func TestBreakerCooldownCapped(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, BaseCooldown: time.Second, MaxCooldown: 4 * time.Second, Jitter: -1, Seed: 1})
	now := time.Unix(0, 0)
	b.Failure(now)
	for i := 0; i < 6; i++ { // keep failing probes; cooldown must cap at 4s
		now = now.Add(4 * time.Second)
		if !b.Allow(now) {
			t.Fatalf("probe %d rejected after max cooldown", i)
		}
		b.Failure(now)
	}
	st := b.Status(now)
	if st.RetryInMs > 4000 {
		t.Fatalf("cooldown exceeded cap: %+v", st)
	}
}
