package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"xmatch/internal/store"
)

// Replication endpoints a primary serves (mounted by internal/server)
// and the header that carries the primary's current shard epoch on
// stream and checkpoint responses.
const (
	StreamEndpoint     = "/v1/replicate/stream"
	CheckpointEndpoint = "/v1/replicate/checkpoint"
	ManifestEndpoint   = "/v1/replicate/manifest"
	EpochHeader        = "X-Xmatch-Epoch"
)

// StreamRequest is the wire form of one stream pull: ship the records of
// one shard with epochs above From. From is the follower's current epoch
// for that shard.
type StreamRequest struct {
	Dataset string `json:"dataset"`
	Shard   int    `json:"shard"`
	From    uint64 `json:"from"`
}

// streamConflict is the 409 body when From predates the retained log.
type streamConflict struct {
	Error           string `json:"error"`
	CheckpointEpoch uint64 `json:"checkpointEpoch"`
}

// StreamResult is one parsed stream response.
type StreamResult struct {
	// Records are the shipped records in epoch order (From+1, From+2, …);
	// empty when the follower was already caught up.
	Records []store.EditRecord
	// PrimaryEpoch is the primary shard's epoch when the response was
	// served; the follower is caught up once its epoch reaches it.
	PrimaryEpoch uint64
	// Bytes is the wire size of the shipped log payload.
	Bytes int64
	// NeedCheckpoint reports that the requested history has been
	// compacted away; bootstrap from the checkpoint at CheckpointEpoch.
	NeedCheckpoint  bool
	CheckpointEpoch uint64
}

// Client pulls replication state from a primary xmatchd.
type Client struct {
	// Base is the primary's base URL (e.g. http://host:8777).
	Base string
	// HTTP is the underlying client; nil uses a default with a 30s
	// timeout.
	HTTP *http.Client
	// Fault, when non-nil, is consulted before every HTTP operation with
	// its name ("stream", "checkpoint", "manifest"); a returned error is
	// surfaced as that operation's failure without touching the network —
	// the chaos suites' injection point for partition and flake faults.
	Fault func(op string) error
}

// fault applies the injection hook for one operation.
func (c *Client) fault(op string) error {
	if c.Fault == nil {
		return nil
	}
	return c.Fault(op)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// fail renders a non-2xx response as an error, surfacing the body's
// error field (or raw text) for diagnosis.
func fail(resp *http.Response, what string) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	msg := string(bytes.TrimSpace(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return fmt.Errorf("replica: %s: primary returned %d: %s", what, resp.StatusCode, msg)
}

func parseEpochHeader(resp *http.Response) (uint64, error) {
	h := resp.Header.Get(EpochHeader)
	if h == "" {
		return 0, fmt.Errorf("replica: primary response missing %s header", EpochHeader)
	}
	return strconv.ParseUint(h, 10, 64)
}

// Stream pulls the records of one shard with epochs above from. The
// response body is a literal edit-log blob based at from — the same
// format the durable log uses on disk — so both sides share one codec.
func (c *Client) Stream(dataset string, shard int, from uint64) (*StreamResult, error) {
	if err := c.fault("stream"); err != nil {
		return nil, fmt.Errorf("replica: stream %s/%d: %w", dataset, shard, err)
	}
	reqBody, err := json.Marshal(StreamRequest{Dataset: dataset, Shard: shard, From: from})
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.Base+StreamEndpoint, "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return nil, fmt.Errorf("replica: stream %s/%d: %w", dataset, shard, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var conflict streamConflict
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&conflict); err != nil {
			return nil, fmt.Errorf("replica: stream %s/%d: undecodable 409: %w", dataset, shard, err)
		}
		return &StreamResult{NeedCheckpoint: true, CheckpointEpoch: conflict.CheckpointEpoch}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp, fmt.Sprintf("stream %s/%d", dataset, shard))
	}
	epoch, err := parseEpochHeader(resp)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: stream %s/%d: reading body: %w", dataset, shard, err)
	}
	lg, err := store.LoadEditLog(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("replica: stream %s/%d: %w", dataset, shard, err)
	}
	if lg.Torn {
		return nil, fmt.Errorf("replica: stream %s/%d: truncated log payload", dataset, shard)
	}
	if lg.Base != from {
		return nil, fmt.Errorf("replica: stream %s/%d: asked from epoch %d, got log based at %d", dataset, shard, from, lg.Base)
	}
	// An empty suffix still carries the ~100-byte edit-log envelope;
	// reporting that as pending volume would make an idle, caught-up
	// follower look permanently behind on /statsz.
	wire := int64(len(body))
	if len(lg.Records) == 0 {
		wire = 0
	}
	return &StreamResult{
		Records:      lg.Records,
		PrimaryEpoch: epoch,
		Bytes:        wire,
	}, nil
}

// Checkpoint fetches a checkpoint blob for one shard — the primary
// synthesizes it from its current snapshot — and restores it: document
// reassembled with its exact numbering, index verified against it, epoch
// stamped.
func (c *Client) Checkpoint(dataset string, shard int) (*store.Checkpoint, error) {
	if err := c.fault("checkpoint"); err != nil {
		return nil, fmt.Errorf("replica: checkpoint %s/%d: %w", dataset, shard, err)
	}
	url := fmt.Sprintf("%s%s?dataset=%s&shard=%d", c.Base, CheckpointEndpoint, dataset, shard)
	resp, err := c.http().Get(url)
	if err != nil {
		return nil, fmt.Errorf("replica: checkpoint %s/%d: %w", dataset, shard, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp, fmt.Sprintf("checkpoint %s/%d", dataset, shard))
	}
	ck, err := store.LoadCheckpoint(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: checkpoint %s/%d: %w", dataset, shard, err)
	}
	return ck, nil
}

// Manifest fetches the primary's catalog manifest, from which a follower
// builds the same datasets locally before replaying the primary's edits
// on top.
func (c *Client) Manifest() (*store.Catalog, error) {
	if err := c.fault("manifest"); err != nil {
		return nil, fmt.Errorf("replica: manifest: %w", err)
	}
	resp, err := c.http().Get(c.Base + ManifestEndpoint)
	if err != nil {
		return nil, fmt.Errorf("replica: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp, "manifest")
	}
	man, err := store.LoadCatalog(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica: manifest: %w", err)
	}
	return man, nil
}
