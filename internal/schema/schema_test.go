package schema

import (
	"reflect"
	"strings"
	"testing"

	"xmatch/internal/xmltree"
)

const orderSpec = `
Order
  Header
    Number
    Date
  DeliverTo
    Address
      Street
      City
  Line
    Qty
`

func mustParse(t *testing.T, spec string) *Schema {
	t.Helper()
	s, err := ParseSpec("T", spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSpecStructure(t *testing.T) {
	s := mustParse(t, orderSpec)
	if s.Len() != 10 {
		t.Fatalf("len = %d, want 10", s.Len())
	}
	if s.Root.Name != "Order" || s.Root.ID != 0 || s.Root.Level != 0 {
		t.Fatalf("root wrong: %+v", s.Root)
	}
	city := s.ByPath("Order.DeliverTo.Address.City")
	if city == nil || city.Level != 3 || !city.IsLeaf() {
		t.Fatalf("City lookup wrong: %+v", city)
	}
	if got := len(s.ByName("Address")); got != 1 {
		t.Fatalf("ByName(Address) = %d entries", got)
	}
	if s.ByPath("Nope") != nil {
		t.Fatal("ByPath on missing path should be nil")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"# only a comment",
		"A\nB",             // two roots
		"A\n    Deep",      // indentation jump (2 levels at once)
		"  Indented first", // root must be unindented
	}
	for _, spec := range bad {
		if _, err := ParseSpec("X", spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := mustParse(t, orderSpec)
	s2, err := ParseSpec("T", s.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Paths(), s2.Paths()) {
		t.Fatalf("spec round trip changed paths")
	}
}

func TestIDsArePreorder(t *testing.T) {
	s := mustParse(t, orderSpec)
	for i, e := range s.Elements() {
		if e.ID != i {
			t.Fatalf("element %s has ID %d at position %d", e.Path, e.ID, i)
		}
		if s.ByID(e.ID) != e {
			t.Fatalf("ByID(%d) mismatch", e.ID)
		}
	}
	// Preorder: every element's ID is greater than its parent's.
	for _, e := range s.Elements() {
		if e.Parent != nil && e.ID <= e.Parent.ID {
			t.Fatalf("preorder violated at %s", e.Path)
		}
	}
}

func TestSubtreeSizeAndIDs(t *testing.T) {
	s := mustParse(t, orderSpec)
	if got := s.Root.SubtreeSize(); got != 10 {
		t.Fatalf("root subtree = %d", got)
	}
	addr := s.ByPath("Order.DeliverTo.Address")
	if got := addr.SubtreeSize(); got != 3 {
		t.Fatalf("Address subtree = %d", got)
	}
	ids := s.SubtreeIDs(addr.ID)
	if len(ids) != 3 || ids[0] != addr.ID {
		t.Fatalf("SubtreeIDs = %v", ids)
	}
	for _, id := range ids {
		if !addr.Contains(s.ByID(id)) {
			t.Fatalf("SubtreeIDs returned non-descendant %d", id)
		}
	}
}

func TestAncestry(t *testing.T) {
	s := mustParse(t, orderSpec)
	order := s.Root
	city := s.ByPath("Order.DeliverTo.Address.City")
	street := s.ByPath("Order.DeliverTo.Address.Street")
	if !order.IsAncestorOf(city) {
		t.Fatal("root must be ancestor of City")
	}
	if city.IsAncestorOf(order) || city.IsAncestorOf(street) || street.IsAncestorOf(city) {
		t.Fatal("false ancestry")
	}
}

func TestPostOrder(t *testing.T) {
	s := mustParse(t, orderSpec)
	po := s.PostOrder()
	if len(po) != s.Len() {
		t.Fatalf("post-order length %d", len(po))
	}
	pos := make(map[int]int, len(po))
	for i, id := range po {
		pos[id] = i
	}
	for _, e := range s.Elements() {
		for _, c := range e.Children {
			if pos[c.ID] >= pos[e.ID] {
				t.Fatalf("child %s visited after parent %s", c.Path, e.Path)
			}
		}
	}
	if po[len(po)-1] != 0 {
		t.Fatal("root must be last in post-order")
	}
}

func TestLeavesHeightFanout(t *testing.T) {
	s := mustParse(t, orderSpec)
	if got := len(s.Leaves()); got != 5 {
		t.Fatalf("leaves = %d, want 5", got)
	}
	if s.Height() != 3 {
		t.Fatalf("height = %d", s.Height())
	}
	if s.MaxFanout() != 3 {
		t.Fatalf("max fanout = %d", s.MaxFanout())
	}
}

func TestFreezePanicsOnDuplicatePath(t *testing.T) {
	b := NewBuilder("X", "r")
	b.Root.AddChild("a")
	b.Root.AddChild("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate sibling names")
		}
	}()
	b.Freeze()
}

func TestFreezePanicsTwice(t *testing.T) {
	b := NewBuilder("X", "r")
	b.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double freeze")
		}
	}()
	b.Freeze()
}

func TestFromDocument(t *testing.T) {
	doc, err := xmltree.ParseString(`
<Order>
  <Line><Qty>1</Qty></Line>
  <Line><Qty>2</Qty><Note>n</Note></Line>
</Order>`)
	if err != nil {
		t.Fatal(err)
	}
	s := FromDocument("Inferred", doc)
	want := []string{"Order", "Order.Line", "Order.Line.Note", "Order.Line.Qty"}
	if !reflect.DeepEqual(s.Paths(), want) {
		t.Fatalf("paths = %v, want %v", s.Paths(), want)
	}
}

func TestParseSpecTabsAndComments(t *testing.T) {
	spec := "Order\n\tHeader\n\t\tDate\n# a comment\n\n\tLine"
	s, err := ParseSpec("T", spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4: %s", s.Len(), strings.Join(s.Paths(), ","))
	}
}
