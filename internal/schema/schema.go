// Package schema models XML schemas as ordered trees of named elements, the
// representation over which schema matchings, possible mappings, block trees
// and twig-query resolution are defined (Cheng, Gong, Cheung, ICDE 2010).
//
// A Schema assigns every element a dense integer ID in preorder, a dotted
// path (e.g. "Order.POLine.Quantity") and an interval numbering for
// constant-time ancestor tests, mirroring the document-side machinery of
// package xmltree. The target-schema tree is also the skeleton of the block
// tree (Definition 3 of the paper).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"xmatch/internal/xmltree"
)

// Element is a single schema element.
type Element struct {
	// ID is the element's preorder index within its schema, in [0, Len).
	ID int
	// Name is the element tag name.
	Name string
	// Path is the dotted name path from the schema root.
	Path string
	// Parent is nil for the root element.
	Parent *Element
	// Children in declaration order.
	Children []*Element
	// Level is the depth from the root (root has level 0).
	Level int

	start, end  int // preorder interval for ancestor tests
	subtreeSize int // number of elements in the subtree rooted here
}

// IsLeaf reports whether the element has no children.
func (e *Element) IsLeaf() bool { return len(e.Children) == 0 }

// SubtreeSize returns the number of elements in e's subtree, e included.
func (e *Element) SubtreeSize() int { return e.subtreeSize }

// IsAncestorOf reports whether e is a proper ancestor of d.
func (e *Element) IsAncestorOf(d *Element) bool {
	return e.start < d.start && d.end <= e.end
}

// Contains reports whether d lies in e's subtree (e itself included).
func (e *Element) Contains(d *Element) bool { return e == d || e.IsAncestorOf(d) }

// AddChild appends and returns a new child element. Valid only on elements
// of a schema under construction; call Schema.Freeze before querying.
func (e *Element) AddChild(name string) *Element {
	c := &Element{Name: name, Parent: e}
	e.Children = append(e.Children, c)
	return c
}

// Schema is an XML schema: a named, ordered tree of elements.
type Schema struct {
	// Name identifies the schema (e.g. "XCBL").
	Name string
	// Root is the document root element.
	Root *Element

	elems  []*Element          // by ID (preorder)
	byPath map[string]*Element // dotted path -> element
	byName map[string][]*Element
	frozen bool
}

// NewBuilder starts a schema with the given name and root element name.
// Build the tree with Element.AddChild and finish with Freeze.
func NewBuilder(name, rootName string) *Schema {
	return &Schema{Name: name, Root: &Element{Name: rootName}}
}

// Freeze assigns IDs, paths, levels, interval numbers and subtree sizes, and
// builds lookup indexes. It must be called once after construction and
// returns the schema for chaining. Freeze panics if called twice or if two
// sibling elements share a name (paths must be unique).
func (s *Schema) Freeze() *Schema {
	if s.frozen {
		panic("schema: Freeze called twice on " + s.Name)
	}
	s.frozen = true
	s.elems = nil
	s.byPath = make(map[string]*Element)
	s.byName = make(map[string][]*Element)
	counter := 0
	var walk func(e *Element, level int, prefix string) int
	walk = func(e *Element, level int, prefix string) int {
		e.ID = len(s.elems)
		e.Level = level
		if prefix == "" {
			e.Path = e.Name
		} else {
			e.Path = prefix + "." + e.Name
		}
		if prev, dup := s.byPath[e.Path]; dup {
			panic(fmt.Sprintf("schema %s: duplicate path %q (IDs %d, %d)", s.Name, e.Path, prev.ID, e.ID))
		}
		s.elems = append(s.elems, e)
		s.byPath[e.Path] = e
		s.byName[e.Name] = append(s.byName[e.Name], e)
		counter++
		e.start = counter
		size := 1
		for _, c := range e.Children {
			c.Parent = e
			size += walk(c, level+1, e.Path)
		}
		counter++
		e.end = counter
		e.subtreeSize = size
		return size
	}
	walk(s.Root, 0, "")
	return s
}

// Len returns the number of elements in the schema.
func (s *Schema) Len() int { return len(s.elems) }

// Elements returns all elements in preorder (indexed by ID). The returned
// slice must not be modified.
func (s *Schema) Elements() []*Element { return s.elems }

// ByID returns the element with the given ID, or panics if out of range.
func (s *Schema) ByID(id int) *Element { return s.elems[id] }

// ByPath returns the element with the given dotted path, or nil.
func (s *Schema) ByPath(path string) *Element { return s.byPath[path] }

// ByName returns all elements with the given tag name, in preorder. The
// returned slice must not be modified.
func (s *Schema) ByName(name string) []*Element { return s.byName[name] }

// Leaves returns all leaf elements in preorder.
func (s *Schema) Leaves() []*Element {
	var out []*Element
	for _, e := range s.elems {
		if e.IsLeaf() {
			out = append(out, e)
		}
	}
	return out
}

// MaxFanout returns the largest number of children of any element.
func (s *Schema) MaxFanout() int {
	max := 0
	for _, e := range s.elems {
		if len(e.Children) > max {
			max = len(e.Children)
		}
	}
	return max
}

// Height returns the maximum element level (root = 0).
func (s *Schema) Height() int {
	h := 0
	for _, e := range s.elems {
		if e.Level > h {
			h = e.Level
		}
	}
	return h
}

// FromDocument infers a schema from a document: the schema contains one
// element per distinct dotted path of the document, preserving the
// first-seen child order.
func FromDocument(name string, d *xmltree.Document) *Schema {
	s := NewBuilder(name, d.Root.Label)
	byPath := map[string]*Element{d.Root.Path: s.Root}
	d.Walk(func(n *xmltree.Node) bool {
		parent := byPath[n.Path]
		for _, c := range n.Children {
			if _, ok := byPath[c.Path]; !ok {
				byPath[c.Path] = parent.AddChild(c.Label)
			}
		}
		return true
	})
	return s.Freeze()
}

// ParseSpec builds a schema from an indentation-based text specification:
// one element name per line, children indented by one more leading tab or
// two more spaces than their parent. Blank lines and lines starting with '#'
// are ignored. Example:
//
//	Order
//	  Header
//	    Date
//	  POLine
//	    Quantity
func ParseSpec(name, spec string) (*Schema, error) {
	type frame struct {
		elem  *Element
		depth int
	}
	var s *Schema
	var stack []frame
	for lineNo, raw := range strings.Split(spec, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		if line == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		depth := 0
		for {
			switch {
			case strings.HasPrefix(line, "\t"):
				line = line[1:]
				depth++
			case strings.HasPrefix(line, "  "):
				line = line[2:]
				depth++
			default:
				goto parsed
			}
		}
	parsed:
		elemName := strings.TrimSpace(line)
		if elemName == "" {
			continue
		}
		if s == nil {
			if depth != 0 {
				return nil, fmt.Errorf("schema spec %s: line %d: first element must be unindented", name, lineNo+1)
			}
			s = NewBuilder(name, elemName)
			stack = []frame{{s.Root, 0}}
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("schema spec %s: line %d: multiple roots", name, lineNo+1)
		}
		parent := stack[len(stack)-1]
		if depth != parent.depth+1 {
			return nil, fmt.Errorf("schema spec %s: line %d: indentation jumps from %d to %d", name, lineNo+1, parent.depth, depth)
		}
		stack = append(stack, frame{parent.elem.AddChild(elemName), depth})
	}
	if s == nil {
		return nil, fmt.Errorf("schema spec %s: empty specification", name)
	}
	return s.Freeze(), nil
}

// Spec renders the schema in the indentation format accepted by ParseSpec.
func (s *Schema) Spec() string {
	var b strings.Builder
	var walk func(e *Element, depth int)
	walk = func(e *Element, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(e.Name)
		b.WriteByte('\n')
		for _, c := range e.Children {
			walk(c, depth+1)
		}
	}
	walk(s.Root, 0)
	return b.String()
}

// Paths returns all element paths, sorted.
func (s *Schema) Paths() []string {
	out := make([]string, 0, len(s.elems))
	for p := range s.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PostOrder returns element IDs in post-order (children before parents),
// the traversal order of block-tree construction (Algorithm 1).
func (s *Schema) PostOrder() []int {
	out := make([]int, 0, len(s.elems))
	var walk func(e *Element)
	walk = func(e *Element) {
		for _, c := range e.Children {
			walk(c)
		}
		out = append(out, e.ID)
	}
	walk(s.Root)
	return out
}

// SubtreeIDs returns the IDs of all elements in the subtree rooted at the
// element with the given ID, in preorder.
func (s *Schema) SubtreeIDs(id int) []int {
	root := s.elems[id]
	out := make([]int, 0, root.subtreeSize)
	var walk func(e *Element)
	walk = func(e *Element) {
		out = append(out, e.ID)
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}
