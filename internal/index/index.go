// Package index provides a persisted positional document index and a
// holistic twig-pattern matcher over it — the document-side complement of
// the block tree of Cheng, Gong and Cheung (ICDE 2010). The block tree
// shares query work *across mappings*; the index shares document access
// across the whole mapping set: every mapping binds pattern nodes to
// dotted document paths, so one immutable per-path postings index serves
// every rewritten query of every mapping, and is built once per dataset.
//
// The index stores, per dotted path, the region encodings (start, end,
// level) of the path's document nodes in document order — the interval
// numbering of Al-Khalifa et al. (ICDE 2002) — plus a value index keyed by
// (path, text) so value predicates become O(1) lookups instead of
// candidate-list scans. MatchTwig evaluates a rewritten twig pattern over
// these postings with a holistic two-phase join (TwigStack/TwigList
// family): linear postings merges prune every candidate that cannot appear
// in a complete match before any intermediate match list is materialized,
// and the final enumeration emits twig.Match lists byte-identical in
// content and order to twig.MatchByPaths (the ordering contract the
// differential tests and FuzzMatchTwig pin down).
//
// An Index is immutable after Build and safe for unsynchronized concurrent
// readers; Attach hangs it off its document's accelerator slot, which is
// how internal/core's Matcher seam discovers it.
package index

import (
	"sort"
	"time"

	"xmatch/internal/xmltree"
)

// Posting is one indexed document node: its region encoding plus the node
// itself. Start/End/Level mirror the node's interval numbering so the merge
// loops of the holistic join scan flat arrays instead of chasing node
// pointers; the Node is touched only when a match is emitted.
type Posting struct {
	Start, End int32
	Level      int32
	Node       *xmltree.Node
}

// valueKey keys the value index: exact node text under one path.
type valueKey struct {
	path, text string
}

// Index is an immutable positional index over one document snapshot.
//
// An index is either self-contained (Build, FromSnapshot) or an overlay
// epoch derived from a base index by ApplyChanges: then paths and values
// hold only the entries the mutation spliced — a nil slice marks a deleted
// entry — and lookups fall through to the base chain. Either way the index
// never changes after construction and is safe for unsynchronized
// concurrent readers; document mutation produces a new Index for the new
// snapshot rather than touching this one.
type Index struct {
	doc    *xmltree.Document
	paths  map[string][]Posting   // dotted path -> postings in document order
	values map[valueKey][]Posting // (path, text) -> postings in document order

	// base is the previous epoch's index for an overlay, nil otherwise.
	base  *Index
	epoch uint64
	depth int // overlay chain length above the nearest self-contained index

	stats Stats
}

// Stats describes an index for observability (/statsz, the CLI's index
// subcommand) and capacity planning.
type Stats struct {
	// BuildTime is the wall time Build took.
	BuildTime time.Duration
	// Postings is the number of region postings (one per document node).
	Postings int
	// DistinctPaths is the number of distinct dotted paths indexed.
	DistinctPaths int
	// ValueKeys is the number of distinct (path, text) value-index keys.
	ValueKeys int
	// ResidentBytes estimates the index's in-memory footprint: postings
	// arrays (both maps) plus map-key string bytes. Node pointers are
	// counted, the document itself is not. For an overlay epoch this is
	// the effective (as-if-flattened) footprint; entries shared with the
	// base chain are counted once.
	ResidentBytes int
	// Epoch counts the mutations applied since the index was built: 0 for
	// a fresh Build or a loaded snapshot, incremented by every
	// ApplyChanges.
	Epoch uint64
	// Overlays is the current overlay chain length (0 for a
	// self-contained index) — the number of epochs a lookup may traverse.
	Overlays int
}

// Build constructs the index over doc in one preorder pass.
func Build(doc *xmltree.Document) *Index {
	start := time.Now()
	ix := &Index{
		doc:    doc,
		paths:  make(map[string][]Posting),
		values: make(map[valueKey][]Posting),
	}
	for _, n := range doc.Nodes() {
		p := Posting{Start: int32(n.Start), End: int32(n.End), Level: int32(n.Level), Node: n}
		ix.paths[n.Path] = append(ix.paths[n.Path], p)
		if n.Text != "" {
			ix.values[valueKey{n.Path, n.Text}] = append(ix.values[valueKey{n.Path, n.Text}], p)
		}
	}
	ix.stats = ix.computeStats()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

// Attach builds an index over doc and attaches it to the document's
// accelerator slot, so internal/core's evaluation dispatches to the
// holistic matcher. It returns the index. Attaching must happen before the
// document is shared with concurrent readers.
func Attach(doc *xmltree.Document) *Index {
	ix := Build(doc)
	doc.SetAccel(ix)
	return ix
}

// For returns the index attached to doc, or nil.
func For(doc *xmltree.Document) *Index {
	ix, _ := doc.Accel().(*Index)
	return ix
}

// Install attaches an already-built index to its own document's
// accelerator slot — the counterpart of Attach for an index loaded from a
// store blob.
func (ix *Index) Install() { ix.doc.SetAccel(ix) }

// Detach removes any index from the document's accelerator slot, so
// evaluation falls back to the joined matcher (twig.MatchByPaths).
func Detach(doc *xmltree.Document) { doc.SetAccel(nil) }

// Document returns the document the index was built over.
func (ix *Index) Document() *xmltree.Document { return ix.doc }

// Stats returns the index statistics snapshot.
func (ix *Index) Stats() Stats { return ix.stats }

// Epoch returns the number of mutations applied since the index was
// built: 0 for a fresh Build or loaded snapshot.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// Postings returns the region postings of the given dotted path in
// document order. The returned slice must not be modified. An overlay
// epoch answers from its own spliced entries first and falls through to
// the base chain; a self-contained index answers in one lookup.
func (ix *Index) Postings(path string) []Posting {
	for x := ix; x != nil; x = x.base {
		if ps, ok := x.paths[path]; ok {
			return ps
		}
	}
	return nil
}

// ValuePostings returns the postings of nodes under path whose text equals
// value, in document order. The returned slice must not be modified.
func (ix *Index) ValuePostings(path, value string) []Posting {
	k := valueKey{path, value}
	for x := ix; x != nil; x = x.base {
		if ps, ok := x.values[k]; ok {
			return ps
		}
	}
	return nil
}

// Paths returns the indexed dotted paths, sorted. Used by persistence and
// diagnostics; the hot path never calls it.
func (ix *Index) Paths() []string {
	paths, _ := ix.materialize()
	out := make([]string, 0, len(paths))
	for p := range paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ValueTexts returns the distinct indexed text values under path, sorted.
func (ix *Index) ValueTexts(path string) []string {
	_, values := ix.materialize()
	var out []string
	for k := range values {
		if k.path == path {
			out = append(out, k.text)
		}
	}
	sort.Strings(out)
	return out
}

// postingBytes estimates one Posting's resident size: 3×int32 (padded to
// 16) + pointer.
const postingBytes = 24

func (ix *Index) computeStats() Stats {
	st := Stats{DistinctPaths: len(ix.paths), ValueKeys: len(ix.values)}
	for p, ps := range ix.paths {
		st.Postings += len(ps)
		st.ResidentBytes += len(p) + len(ps)*postingBytes
	}
	for k, ps := range ix.values {
		st.ResidentBytes += len(k.path) + len(k.text) + len(ps)*postingBytes
	}
	return st
}
