// Package index provides a persisted positional document index and a
// holistic twig-pattern matcher over it — the document-side complement of
// the block tree of Cheng, Gong and Cheung (ICDE 2010). The block tree
// shares query work *across mappings*; the index shares document access
// across the whole mapping set: every mapping binds pattern nodes to
// dotted document paths, so one immutable per-path postings index serves
// every rewritten query of every mapping, and is built once per dataset.
//
// The index stores, per dotted path, the region encodings (start, end,
// level) of the path's document nodes in document order — the interval
// numbering of Al-Khalifa et al. (ICDE 2002) — in block-compressed
// postings lists (see postings.go: delta-encoded uvarint blocks with
// per-block skip pointers, decoded lazily per block), plus a value index
// keyed by (path, text) so value predicates become O(1) lookups instead
// of candidate-list scans, plus a token posting layer keyed by lowered
// text so keyword-query preparation resolves value terms against the
// distinct-text vocabulary instead of scanning every document node.
// MatchTwig evaluates a rewritten twig pattern over these postings with a
// holistic two-phase join (TwigStack/TwigList family): block-galloping
// postings merges prune every candidate that cannot appear in a complete
// match before any intermediate match list is materialized, and the final
// enumeration emits twig.Match lists byte-identical in content and order
// to twig.MatchByPaths (the ordering contract the differential tests and
// FuzzMatchTwig pin down).
//
// An Index is immutable after Build and safe for unsynchronized concurrent
// readers; Attach hangs it off its document's accelerator slot, which is
// how internal/core's Matcher seam discovers it.
package index

import (
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmatch/internal/xmltree"
)

// Posting is one indexed document node: its region encoding plus the node
// itself. Start/End/Level mirror the node's interval numbering so the merge
// loops of the holistic join scan decoded arrays instead of chasing node
// pointers; the Node is touched only when a match is emitted.
type Posting struct {
	Start, End int32
	Level      int32
	Node       *xmltree.Node
}

// valueKey keys the value index: exact node text under one path.
type valueKey struct {
	path, text string
}

// Index is an immutable positional index over one document snapshot.
//
// An index is either self-contained (Build, FromSnapshot) or an overlay
// epoch derived from a base index by ApplyChanges: then paths, values and
// texts hold only the entries the mutation spliced — a nil entry marks a
// deleted one — and lookups fall through to the base chain. Either way the
// index never changes after construction and is safe for unsynchronized
// concurrent readers; document mutation produces a new Index for the new
// snapshot rather than touching this one.
type Index struct {
	doc    *xmltree.Document
	paths  map[string]*PostingList   // dotted path -> postings in document order
	values map[valueKey]*PostingList // (path, text) -> postings in document order

	// texts is the token posting layer: lowered node text -> the value
	// keys carrying exactly that text (case-insensitively) plus their
	// merged nodes in document order. Keyword value terms resolve by
	// scanning this vocabulary — sublinear in document size whenever
	// texts repeat — and concatenating the matching entries' node lists.
	// Region postings are not duplicated here, only node pointers.
	texts map[string]*textEntry

	// base is the previous epoch's index for an overlay, nil otherwise.
	base  *Index
	epoch uint64
	depth int // overlay chain length above the nearest self-contained index

	// memo caches whole evaluations over this epoch (see resultMemo); it
	// is collected together with the epoch.
	memo resultMemo

	// ctr accumulates the chain's matcher counters (see Counters); shared
	// across overlay epochs and their flattened successors.
	ctr *Counters

	// prof accumulates the chain's per-path observed selectivity (see
	// pathProfiles); shared exactly like ctr.
	prof *pathProfiles

	stats Stats
}

// Stats describes an index for observability (/statsz, the CLI's index
// subcommand) and capacity planning.
type Stats struct {
	// BuildTime is the wall time Build took.
	BuildTime time.Duration
	// Postings is the number of region postings (one per document node).
	Postings int
	// DistinctPaths is the number of distinct dotted paths indexed.
	DistinctPaths int
	// ValueKeys is the number of distinct (path, text) value-index keys.
	ValueKeys int
	// TextKeys is the number of distinct lowered texts in the token
	// posting layer (the keyword-term vocabulary).
	TextKeys int
	// ResidentBytes estimates the index's actual in-memory footprint:
	// compressed postings blocks, node-pointer arrays, flat overlay
	// splices, and map-key string bytes. The document itself is not
	// counted. For an overlay epoch this is the effective
	// (as-if-flattened) footprint; entries shared with the base chain are
	// counted once.
	ResidentBytes int
	// FlatBytes is the footprint the same index would have in the
	// uncompressed flat-[]Posting layout, key strings included.
	FlatBytes int
	// PostingsBytes is the resident footprint of the postings lists alone
	// (delta blocks, skip pointers, node-pointer arrays — no map keys):
	// the numerator of CompressionRatio.
	PostingsBytes int
	// PostingsFlatBytes is the same postings in the flat layout
	// (postingBytes per posting): the denominator of CompressionRatio.
	PostingsFlatBytes int
	// Epoch counts the mutations applied since the index was built: 0 for
	// a fresh Build or a loaded snapshot, incremented by every
	// ApplyChanges.
	Epoch uint64
	// Overlays is the current overlay chain length (0 for a
	// self-contained index) — the number of epochs a lookup may traverse.
	Overlays int
}

// CompressionRatio is PostingsBytes over PostingsFlatBytes — resident
// compressed postings against the flat-int32 layout. Below 1.0 the
// compressed layout is paying for itself.
func (s Stats) CompressionRatio() float64 {
	if s.PostingsFlatBytes == 0 {
		return 1
	}
	return float64(s.PostingsBytes) / float64(s.PostingsFlatBytes)
}

// parallelBuildThreshold is the document size from which Build splits the
// preorder pass into per-chunk partial indexes merged at the end; below
// it a single pass wins.
const parallelBuildThreshold = 2048

// Build constructs the block-compressed index over doc. Large documents
// are indexed in parallel: the preorder node list is split into
// contiguous chunks, per-chunk partial postings are built concurrently
// and concatenated in chunk order (chunks are preorder-contiguous, so
// concatenation preserves document order), and the per-list compression
// is itself fanned out across workers.
func Build(doc *xmltree.Document) *Index { return build(doc, true) }

// BuildFlat constructs the index in the uncompressed flat-[]Posting
// layout: same lookups, same matcher, no delta blocks. It is the
// reference layout the differential fuzzer runs against the compressed
// one, and the baseline of BenchmarkPostingsDecode.
func BuildFlat(doc *xmltree.Document) *Index { return build(doc, false) }

func build(doc *xmltree.Document, compress bool) *Index {
	start := time.Now()
	nodes := doc.Nodes()
	workers := runtime.GOMAXPROCS(0)
	var paths map[string][]Posting
	var values map[valueKey][]Posting
	if len(nodes) >= parallelBuildThreshold && workers > 1 {
		paths, values = collectParallel(nodes, workers)
	} else {
		paths, values = collectSerial(nodes)
	}
	ix := &Index{
		doc:    doc,
		paths:  make(map[string]*PostingList, len(paths)),
		values: make(map[valueKey]*PostingList, len(values)),
		ctr:    &Counters{},
		prof:   &pathProfiles{},
	}
	if compress && len(nodes) >= parallelBuildThreshold && workers > 1 {
		compressParallel(ix, paths, values, workers)
	} else {
		for p, ps := range paths {
			ix.paths[p] = makeList(ps, compress)
		}
		for k, ps := range values {
			ix.values[k] = makeList(ps, compress)
		}
	}
	ix.texts = textLayer(ix.values)
	ix.stats = ix.computeStats()
	ix.stats.BuildTime = time.Since(start)
	return ix
}

func makeList(ps []Posting, compress bool) *PostingList {
	if compress {
		return compressPostings(ps)
	}
	return newFlatList(ps)
}

func collectSerial(nodes []*xmltree.Node) (map[string][]Posting, map[valueKey][]Posting) {
	paths := make(map[string][]Posting)
	values := make(map[valueKey][]Posting)
	for _, n := range nodes {
		p := Posting{Start: int32(n.Start), End: int32(n.End), Level: int32(n.Level), Node: n}
		paths[n.Path] = append(paths[n.Path], p)
		if n.Text != "" {
			values[valueKey{n.Path, n.Text}] = append(values[valueKey{n.Path, n.Text}], p)
		}
	}
	return paths, values
}

// collectParallel builds per-chunk partial postings concurrently and
// merges them in chunk order. Chunks are contiguous preorder ranges, so
// appending chunk lists in order yields document order per key.
func collectParallel(nodes []*xmltree.Node, workers int) (map[string][]Posting, map[valueKey][]Posting) {
	if workers > len(nodes) {
		workers = len(nodes)
	}
	type shard struct {
		paths  map[string][]Posting
		values map[valueKey][]Posting
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (len(nodes) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := shard{paths: make(map[string][]Posting), values: make(map[valueKey][]Posting)}
			for _, n := range nodes[lo:hi] {
				p := Posting{Start: int32(n.Start), End: int32(n.End), Level: int32(n.Level), Node: n}
				s.paths[n.Path] = append(s.paths[n.Path], p)
				if n.Text != "" {
					s.values[valueKey{n.Path, n.Text}] = append(s.values[valueKey{n.Path, n.Text}], p)
				}
			}
			shards[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	paths := make(map[string][]Posting)
	values := make(map[valueKey][]Posting)
	for _, s := range shards {
		for p, ps := range s.paths {
			paths[p] = append(paths[p], ps...)
		}
		for k, ps := range s.values {
			values[k] = append(values[k], ps...)
		}
	}
	return paths, values
}

// compressParallel fans the per-list compression out across workers and
// installs the results into ix's maps single-threaded.
func compressParallel(ix *Index, paths map[string][]Posting, values map[valueKey][]Posting, workers int) {
	type pathJob struct {
		key string
		ps  []Posting
		out *PostingList
	}
	type valueJob struct {
		key valueKey
		ps  []Posting
		out *PostingList
	}
	pjobs := make([]pathJob, 0, len(paths))
	for p, ps := range paths {
		pjobs = append(pjobs, pathJob{key: p, ps: ps})
	}
	vjobs := make([]valueJob, 0, len(values))
	for k, ps := range values {
		vjobs = append(vjobs, valueJob{key: k, ps: ps})
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	total := len(pjobs) + len(vjobs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if i < len(pjobs) {
					pjobs[i].out = compressPostings(pjobs[i].ps)
				} else {
					j := i - len(pjobs)
					vjobs[j].out = compressPostings(vjobs[j].ps)
				}
			}
		}()
	}
	wg.Wait()
	for i := range pjobs {
		ix.paths[pjobs[i].key] = pjobs[i].out
	}
	for i := range vjobs {
		ix.values[vjobs[i].key] = vjobs[i].out
	}
}

// textEntry is one token-layer entry: the value keys whose text lowers to
// the entry's key, and their nodes merged in document order.
type textEntry struct {
	keys  []valueKey
	nodes []*xmltree.Node
}

// textLayer derives the token posting layer from a complete value map:
// lowered text -> the value keys carrying it (sorted for determinism)
// with their nodes merged in document order.
func textLayer(values map[valueKey]*PostingList) map[string]*textEntry {
	texts := make(map[string]*textEntry)
	for k := range values {
		lt := strings.ToLower(k.text)
		e := texts[lt]
		if e == nil {
			e = &textEntry{}
			texts[lt] = e
		}
		e.keys = append(e.keys, k)
	}
	buf := getPostingBuf()
	for _, e := range texts {
		sortValueKeys(e.keys)
		ps := (*buf)[:0]
		for _, k := range e.keys {
			ps = values[k].appendAll(ps)
		}
		slices.SortFunc(ps, func(a, b Posting) int { return int(a.Start) - int(b.Start) })
		e.nodes = make([]*xmltree.Node, len(ps))
		for i := range ps {
			e.nodes[i] = ps[i].Node
		}
		*buf = ps
	}
	putPostingBuf(buf)
	return texts
}

// Attach builds an index over doc and attaches it to the document's
// accelerator slot, so internal/core's evaluation dispatches to the
// holistic matcher. It returns the index. Attaching must happen before the
// document is shared with concurrent readers.
func Attach(doc *xmltree.Document) *Index {
	ix := Build(doc)
	doc.SetAccel(ix)
	return ix
}

// For returns the index attached to doc, or nil.
func For(doc *xmltree.Document) *Index {
	ix, _ := doc.Accel().(*Index)
	return ix
}

// Install attaches an already-built index to its own document's
// accelerator slot — the counterpart of Attach for an index loaded from a
// store blob.
func (ix *Index) Install() { ix.doc.SetAccel(ix) }

// Detach removes any index from the document's accelerator slot, so
// evaluation falls back to the joined matcher (twig.MatchByPaths).
func Detach(doc *xmltree.Document) { doc.SetAccel(nil) }

// Document returns the document the index was built over.
func (ix *Index) Document() *xmltree.Document { return ix.doc }

// Stats returns the index statistics snapshot.
func (ix *Index) Stats() Stats { return ix.stats }

// Epoch returns the number of mutations applied since the index was
// built: 0 for a fresh Build or loaded snapshot.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// SetEpoch overrides the epoch counter. An index restored from a
// checkpoint is rebuilt from a snapshot — epoch 0 by construction — but
// must resume the mutation history at the epoch the checkpoint captured,
// so the consistency tokens handed to clients stay monotonic across a
// restart or a replica bootstrap. Call before the index is shared.
func (ix *Index) SetEpoch(e uint64) {
	ix.epoch = e
	ix.stats.Epoch = e
}

// list returns the postings list of the given dotted path. An overlay
// epoch answers from its own spliced entries first and falls through to
// the base chain; a self-contained index answers in one lookup.
func (ix *Index) list(path string) *PostingList {
	for x := ix; x != nil; x = x.base {
		if pl, ok := x.paths[path]; ok {
			return pl
		}
	}
	return nil
}

// valueList returns the postings list of one (path, text) value key.
func (ix *Index) valueList(k valueKey) *PostingList {
	for x := ix; x != nil; x = x.base {
		if pl, ok := x.values[k]; ok {
			return pl
		}
	}
	return nil
}

// Postings returns the region postings of the given dotted path in
// document order, decoded into a fresh slice. It is a diagnostic and test
// accessor; the matcher reads the compressed lists directly through
// cursors and never materializes whole lists it can gallop over.
func (ix *Index) Postings(path string) []Posting {
	return ix.list(path).appendAll(nil)
}

// ValuePostings returns the postings of nodes under path whose text equals
// value, in document order, decoded into a fresh slice. Diagnostic and
// test accessor, like Postings.
func (ix *Index) ValuePostings(path, value string) []Posting {
	return ix.valueList(valueKey{path, value}).appendAll(nil)
}

// NodesWithTextContaining returns the document nodes whose lowered text
// contains the lowered term, in document order — the token-posting-layer
// resolution of a keyword value term. It scans the distinct-text
// vocabulary instead of the document's nodes, so the cost is
// O(vocabulary) + O(result), sublinear in document size whenever texts
// repeat. internal/core discovers it through its TextSearcher seam; the
// result is equal to scanning doc.Nodes() with strings.Contains on
// lowered texts.
func (ix *Index) NodesWithTextContaining(lowered string) []*xmltree.Node {
	var entries []*textEntry
	total := 0
	if ix.base == nil {
		for lt, e := range ix.texts {
			if strings.Contains(lt, lowered) {
				entries = append(entries, e)
				total += len(e.nodes)
			}
		}
	} else {
		seen := make(map[string]bool)
		for x := ix; x != nil; x = x.base {
			for lt, e := range x.texts {
				if seen[lt] {
					continue
				}
				seen[lt] = true
				if e == nil || !strings.Contains(lt, lowered) {
					continue
				}
				entries = append(entries, e)
				total += len(e.nodes)
			}
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]*xmltree.Node, 0, total)
	for _, e := range entries {
		out = append(out, e.nodes...)
	}
	if len(entries) > 1 {
		// Distinct texts hold disjoint node sets (a node has one text), so
		// sorting by start is a pure merge with no ties.
		slices.SortFunc(out, func(a, b *xmltree.Node) int { return a.Start - b.Start })
	}
	return out
}

// Paths returns the indexed dotted paths, sorted. Used by persistence and
// diagnostics; the hot path never calls it.
func (ix *Index) Paths() []string {
	paths, _, _ := ix.materialize()
	out := make([]string, 0, len(paths))
	for p := range paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ValueTexts returns the distinct indexed text values under path, sorted.
func (ix *Index) ValueTexts(path string) []string {
	_, values, _ := ix.materialize()
	var out []string
	for k := range values {
		if k.path == path {
			out = append(out, k.text)
		}
	}
	sort.Strings(out)
	return out
}

// PathStat is one path's row of the per-path postings report (the CLI's
// index -stats mode): the static postings footprint joined with the
// observed-selectivity funnel the workload has accumulated against the
// path (zero for paths no evaluation has bound).
type PathStat struct {
	Path          string
	Postings      int
	ResidentBytes int // actual bytes (compressed blocks or flat slices)
	FlatBytes     int // the same list in the flat-[]Posting layout

	// Observed workload funnel (see PathProfile); zero-valued when the
	// workload never bound this path.
	Evals           uint64
	Candidates      uint64
	UsefulSurvivors uint64
	ReachSurvivors  uint64
}

// ObservedSelectivity is ReachSurvivors over Candidates — the observed
// fraction of loaded postings that participated in a match. It reports
// -1 when the path has no observations, so callers can tell "never
// evaluated" from "everything pruned".
func (s PathStat) ObservedSelectivity() float64 {
	if s.Candidates == 0 {
		return -1
	}
	return float64(s.ReachSurvivors) / float64(s.Candidates)
}

// PathStats reports per-path postings counts, compressed-vs-flat
// footprints, and the observed workload funnel, sorted by path.
// Diagnostic; materializes overlay chains.
func (ix *Index) PathStats() []PathStat {
	paths, _, _ := ix.materialize()
	profiles := make(map[string]PathProfile)
	for _, pp := range ix.PathProfiles() {
		profiles[pp.Path] = pp
	}
	out := make([]PathStat, 0, len(paths))
	for p, pl := range paths {
		pp := profiles[p]
		out = append(out, PathStat{
			Path:            p,
			Postings:        pl.Len(),
			ResidentBytes:   pl.residentBytes(),
			FlatBytes:       pl.flatBytes(),
			Evals:           pp.Evals,
			Candidates:      pp.Candidates,
			UsefulSurvivors: pp.UsefulSurvivors,
			ReachSurvivors:  pp.ReachSurvivors,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// postingBytes is one Posting's flat resident size: 3×int32 (padded to
// 16) + pointer — the uncompressed baseline of the compression ratio.
const postingBytes = 24

// valueKeyBytes approximates a texts-layer entry's per-key bookkeeping:
// two string headers.
const valueKeyBytes = 32

func (ix *Index) computeStats() Stats {
	st := Stats{DistinctPaths: len(ix.paths), ValueKeys: len(ix.values), TextKeys: len(ix.texts)}
	for p, pl := range ix.paths {
		st.Postings += pl.Len()
		st.PostingsBytes += pl.residentBytes()
		st.PostingsFlatBytes += pl.flatBytes()
		st.ResidentBytes += len(p)
		st.FlatBytes += len(p)
	}
	for k, pl := range ix.values {
		st.PostingsBytes += pl.residentBytes()
		st.PostingsFlatBytes += pl.flatBytes()
		st.ResidentBytes += len(k.path) + len(k.text)
		st.FlatBytes += len(k.path) + len(k.text)
	}
	for lt, e := range ix.texts {
		b := len(lt) + len(e.keys)*valueKeyBytes + len(e.nodes)*8
		st.ResidentBytes += b
		st.FlatBytes += b
	}
	st.ResidentBytes += st.PostingsBytes
	st.FlatBytes += st.PostingsFlatBytes
	return st
}
