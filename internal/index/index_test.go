package index_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// buildDoc is the small purchase-order document used across the unit
// tests: three line items, one with quantity 7.
func buildDoc() *xmltree.Document {
	root := xmltree.NewRoot("PO")
	for i, qty := range []string{"3", "7", "3"} {
		line := root.AddChild("Line")
		line.AddChild("Num").AddText([]string{"1", "2", "3"}[i])
		line.AddChild("Qty").AddText(qty)
	}
	return xmltree.New(root)
}

func TestBuildStats(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	st := ix.Stats()
	if st.Postings != doc.Len() {
		t.Errorf("postings = %d, want one per node = %d", st.Postings, doc.Len())
	}
	if st.DistinctPaths != 4 { // PO, PO.Line, PO.Line.Num, PO.Line.Qty
		t.Errorf("distinct paths = %d, want 4", st.DistinctPaths)
	}
	// Qty has texts {3, 7}; Num has {1, 2, 3}: 5 value keys.
	if st.ValueKeys != 5 {
		t.Errorf("value keys = %d, want 5", st.ValueKeys)
	}
	if st.ResidentBytes <= 0 {
		t.Errorf("resident bytes = %d, want positive", st.ResidentBytes)
	}
	if got := len(ix.Postings("PO.Line")); got != 3 {
		t.Errorf("PO.Line postings = %d, want 3", got)
	}
	if got := len(ix.ValuePostings("PO.Line.Qty", "3")); got != 2 {
		t.Errorf("value postings (Qty, 3) = %d, want 2", got)
	}
	if got := len(ix.ValuePostings("PO.Line.Qty", "99")); got != 0 {
		t.Errorf("value postings (Qty, 99) = %d, want 0", got)
	}
	if got := ix.ValueTexts("PO.Line.Num"); !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Errorf("value texts = %v", got)
	}
	// Postings are in document order with consistent region encodings.
	prev := int32(0)
	for _, p := range ix.Postings("PO.Line") {
		if p.Start <= prev {
			t.Fatalf("postings out of document order: start %d after %d", p.Start, prev)
		}
		if int(p.Start) != p.Node.Start || int(p.End) != p.Node.End || int(p.Level) != p.Node.Level {
			t.Fatalf("region encoding disagrees with node: %+v vs %+v", p, p.Node)
		}
		prev = p.Start
	}
}

func TestAttachForDetach(t *testing.T) {
	doc := buildDoc()
	if index.For(doc) != nil {
		t.Fatal("fresh document has an index attached")
	}
	ix := index.Attach(doc)
	if index.For(doc) != ix {
		t.Fatal("For does not return the attached index")
	}
	index.Detach(doc)
	if index.For(doc) != nil {
		t.Fatal("Detach left the index attached")
	}
}

func TestMatchTwigValuePredicateLookup(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine[./LineNo="2"]/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Num", n[3]: "PO.Line.Qty"}
	ms := ix.MatchTwig(doc, p.Root, paths)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Get(n[3]).Text != "7" {
		t.Fatalf("quantity = %q, want 7", ms[0].Get(n[3]).Text)
	}
	if got := twig.MatchByPaths(doc, p.Root, paths); !reflect.DeepEqual(got, ms) {
		t.Fatal("indexed and joined evaluation disagree")
	}
}

// TestMatchTwigEmptyValuePredicate is the regression test for the
// empty-string value predicate [.=""]: the value index holds only
// non-empty texts, so the matcher must fall back to filtering the path
// postings — the joined evaluator satisfies the predicate with text-less
// nodes, and the indexed path must agree.
func TestMatchTwigEmptyValuePredicate(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a><b>x</b></a><a></a><a>t</a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	for _, pattern := range []string{`r/a[.=""]`, `r[.=""]/a[.=""]/b`} {
		p := twig.MustParse(pattern)
		binding := twig.PathBinding{}
		for _, n := range p.Nodes() {
			binding[n] = map[string]string{"r": "r", "a": "r.a", "b": "r.a.b"}[n.Label]
		}
		want := twig.MatchByPaths(doc, p.Root, binding)
		got := ix.MatchTwig(doc, p.Root, binding)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v, want %v", pattern, keys(got), keys(want))
		}
		if len(want) == 0 {
			t.Errorf("%s: fixture matches nothing; regression test is vacuous", pattern)
		}
	}
}

func TestMatchTwigForeignDocumentFallsBack(t *testing.T) {
	ix := index.Build(buildDoc())
	other := buildDoc()
	p := twig.MustParse("Order/POLine")
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line"}
	got := ix.MatchTwig(other, p.Root, paths)
	want := twig.MatchByPaths(other, p.Root, paths)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("foreign-document evaluation diverged from MatchByPaths")
	}
	if len(got) == 0 || got[0].Get(n[1]).Parent != other.Root {
		t.Fatal("foreign-document matches bind the wrong document's nodes")
	}
}

// randomDoc builds a random labelled document with seeded texts; deeper and
// bushier than the twig package's, to exercise cursor advancement across
// many disjoint sibling intervals.
func randomDoc(rng *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	texts := []string{"", "x", "y", "z"}
	root := xmltree.NewRoot("r")
	var grow func(n *xmltree.Node, depth int)
	grow = func(n *xmltree.Node, depth int) {
		if depth >= 5 {
			return
		}
		for i := 0; i < rng.Intn(5); i++ {
			c := n.AddChild(labels[rng.Intn(len(labels))])
			c.Text = texts[rng.Intn(len(texts))]
			grow(c, depth+1)
		}
	}
	grow(root, 0)
	return xmltree.New(root)
}

// randomPattern builds a pattern of up to six nodes whose binding paths are
// (mostly) nested document paths, with occasional value predicates and
// occasional deliberately-broken bindings (non-nesting or absent paths).
func randomPattern(rng *rand.Rand, doc *xmltree.Document) (*twig.Pattern, twig.PathBinding) {
	paths := doc.Paths()
	rootPath := paths[rng.Intn(len(paths))]
	root := &twig.Node{Label: "q0"}
	binding := twig.PathBinding{root: rootPath}
	nodes := []*twig.Node{root}
	nodePaths := []string{rootPath}
	for i := 0; i < rng.Intn(5); i++ {
		pi := rng.Intn(len(nodes))
		parentPath := nodePaths[pi]
		var cands []string
		for _, p := range paths {
			if len(p) > len(parentPath) && p[:len(parentPath)] == parentPath && p[len(parentPath)] == '.' {
				cands = append(cands, p)
			}
		}
		var cp string
		switch {
		case len(cands) > 0 && rng.Intn(8) != 0:
			cp = cands[rng.Intn(len(cands))]
		case rng.Intn(2) == 0:
			cp = paths[rng.Intn(len(paths))] // likely non-nesting
		default:
			cp = parentPath + ".nope" // absent
		}
		c := &twig.Node{Label: "q" + string(rune('1'+i))}
		if rng.Intn(4) == 0 {
			c.HasValue = true
			c.Value = []string{"x", "y", "w", ""}[rng.Intn(4)]
		}
		nodes[pi].Children = append(nodes[pi].Children, c)
		nodes = append(nodes, c)
		nodePaths = append(nodePaths, cp)
		binding[c] = cp
	}
	pat := &twig.Pattern{Root: root}
	reindex(pat)
	return pat, binding
}

// reindex assigns preorder indices the way twig.Parse would.
func reindex(p *twig.Pattern) {
	i := 0
	var walk func(n *twig.Node)
	walk = func(n *twig.Node) {
		n.Index = i
		i++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}

// TestMatchTwigDifferentialRandom pins the ordering contract: across many
// random documents and patterns, MatchTwig's output must equal
// MatchByPaths' exactly — same matches, same order, same node pointers —
// and agree with the naive oracle as a set.
func TestMatchTwigDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	trials, nonEmpty := 0, 0
	for trials < 500 {
		doc := randomDoc(rng)
		if doc.Len() < 3 {
			continue
		}
		trials++
		ix := index.Build(doc)
		pat, binding := randomPattern(rng, doc)
		want := twig.MatchByPaths(doc, pat.Root, binding)
		got := ix.MatchTwig(doc, pat.Root, binding)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MatchTwig diverged from MatchByPaths\npattern %s\ngot  %d matches %v\nwant %d matches %v",
				trials, pat, len(got), keys(got), len(want), keys(want))
		}
		naive := twig.NaiveMatchByPaths(doc, pat.Root, binding)
		if !reflect.DeepEqual(sortedKeys(got), sortedKeys(naive)) {
			t.Fatalf("trial %d: MatchTwig diverged from the naive oracle", trials)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 50 {
		t.Fatalf("only %d/%d trials had matches; generator too weak", nonEmpty, trials)
	}
}

func keys(ms []twig.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Key()
	}
	return out
}

func sortedKeys(ms []twig.Match) []string {
	out := keys(ms)
	sort.Strings(out)
	return out
}

// TestBuildFlatMatchesCompressed pins the two postings layouts against
// each other: identical decoded postings, identical snapshots, identical
// stats modulo representation (flat resident == flat baseline).
func TestBuildFlatMatchesCompressed(t *testing.T) {
	doc := buildDoc()
	cx, fx := index.Build(doc), index.BuildFlat(doc)
	if !reflect.DeepEqual(cx.Snapshot(), fx.Snapshot()) {
		t.Fatal("compressed and flat snapshots disagree")
	}
	for _, p := range cx.Paths() {
		if !reflect.DeepEqual(cx.Postings(p), fx.Postings(p)) {
			t.Fatalf("postings of %q disagree across layouts", p)
		}
	}
	cs, fs := cx.Stats(), fx.Stats()
	if cs.PostingsFlatBytes != fs.PostingsFlatBytes {
		t.Errorf("flat baselines disagree: %d vs %d", cs.PostingsFlatBytes, fs.PostingsFlatBytes)
	}
	if fs.PostingsBytes != fs.PostingsFlatBytes {
		t.Errorf("flat layout resident %d != its own baseline %d", fs.PostingsBytes, fs.PostingsFlatBytes)
	}
	if cs.PostingsBytes >= fs.PostingsBytes {
		t.Errorf("compressed resident %d not below flat %d", cs.PostingsBytes, fs.PostingsBytes)
	}
}

// TestBuildLargeDocument drives the parallel build path (the document
// exceeds the parallel threshold) and verifies every postings list
// against a direct preorder grouping of the document's nodes — order,
// regions, and coverage.
func TestBuildLargeDocument(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	root := xmltree.NewRoot("R")
	labels := []string{"A", "B", "C", "D"}
	nodes := []*xmltree.Node{root}
	for i := 0; i < 5000; i++ {
		p := nodes[rng.Intn(len(nodes))]
		c := p.AddChild(labels[rng.Intn(len(labels))])
		if rng.Intn(3) == 0 {
			c.AddText([]string{"x", "y", "Zed", "7"}[rng.Intn(4)])
		}
		nodes = append(nodes, c)
	}
	doc := xmltree.New(root)
	ix := index.Build(doc)

	want := map[string][]*xmltree.Node{}
	for _, n := range doc.Nodes() {
		want[n.Path] = append(want[n.Path], n)
	}
	if got := ix.Stats().Postings; got != doc.Len() {
		t.Fatalf("postings = %d, want %d", got, doc.Len())
	}
	if got := ix.Stats().DistinctPaths; got != len(want) {
		t.Fatalf("distinct paths = %d, want %d", got, len(want))
	}
	for p, ns := range want {
		ps := ix.Postings(p)
		if len(ps) != len(ns) {
			t.Fatalf("path %q: %d postings, want %d", p, len(ps), len(ns))
		}
		for i := range ps {
			if ps[i].Node != ns[i] || int(ps[i].Start) != ns[i].Start || int(ps[i].End) != ns[i].End {
				t.Fatalf("path %q: posting %d disagrees with preorder node", p, i)
			}
		}
	}
	// The compressed layout must beat the flat baseline on a document
	// with long same-path lists.
	if r := ix.Stats().CompressionRatio(); r > 0.6 {
		t.Errorf("compression ratio %.3f above the 0.6 budget", r)
	}
}

// TestCompactSnapshotRoundTrip pins the v4 wire codec: Compact then
// Expand reproduces the snapshot exactly, deterministically.
func TestCompactSnapshotRoundTrip(t *testing.T) {
	doc := buildDoc()
	snap := index.Build(doc).Snapshot()
	got, err := snap.Compact().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("compact round trip diverged:\ngot  %+v\nwant %+v", got, snap)
	}
}

// TestNodesWithTextContaining pins the token posting layer against the
// document scan it replaces — case folding, substrings spanning spaces
// inside one text, absent terms — including after mutations re-splice the
// layer (covered further by the core keyword differential).
func TestNodesWithTextContaining(t *testing.T) {
	root := xmltree.NewRoot("R")
	root.AddChild("A").AddText("Red Car")
	root.AddChild("B").AddText("red car")
	root.AddChild("C").AddText("CARPET")
	root.AddChild("D").AddText("boat")
	root.AddChild("E") // no text
	doc := xmltree.New(root)
	ix := index.Build(doc)
	for _, term := range []string{"car", "d c", "red car", "pet", "zzz", "a"} {
		var want []string
		for _, n := range doc.Nodes() {
			if n.Text != "" && containsLower(n.Text, term) {
				want = append(want, n.Path+"="+n.Text)
			}
		}
		var got []string
		for _, n := range ix.NodesWithTextContaining(term) {
			got = append(got, n.Path+"="+n.Text)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("term %q: got %v, want %v", term, got, want)
		}
	}
}

func containsLower(text, term string) bool {
	lower := make([]byte, len(text))
	for i := 0; i < len(text); i++ {
		c := text[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		lower[i] = c
	}
	return strings.Contains(string(lower), term)
}
