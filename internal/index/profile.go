package index

import (
	"sort"
	"sync"
)

// pathProfiles accumulates per-path observed selectivity: for every
// dotted path a twig evaluation bound, how many postings the initial
// candidate load admitted and how many survived each pruning pass. One
// instance is shared by a whole overlay chain (ApplyChanges and flatten
// propagate the pointer, like Counters), so an epoch's observations
// survive its flatten and the numbers describe the shard's workload
// since its index was built.
//
// The hot path never touches the map: each evaluation records per-node
// deltas into the pooled twigState and flushes them here once, under a
// single lock acquisition (patterns cap at 64 nodes, typically ≤7).
type pathProfiles struct {
	mu sync.RWMutex
	m  map[string]*pathAccum
}

// pathAccum is one path's accumulated funnel; plain fields under the
// profiles lock.
type pathAccum struct {
	evals, candidates, useful, reach uint64
}

// pathDelta is one evaluation's funnel for one bound path, staged on the
// twigState.
type pathDelta struct {
	path                      string
	candidates, useful, reach uint64
}

// flush folds one evaluation's per-node deltas in. Nil-safe.
func (p *pathProfiles) flush(deltas []pathDelta) {
	if p == nil || len(deltas) == 0 {
		return
	}
	p.mu.Lock()
	if p.m == nil {
		p.m = make(map[string]*pathAccum)
	}
	for i := range deltas {
		d := &deltas[i]
		a := p.m[d.path]
		if a == nil {
			a = &pathAccum{}
			p.m[d.path] = a
		}
		a.evals++
		a.candidates += d.candidates
		a.useful += d.useful
		a.reach += d.reach
	}
	p.mu.Unlock()
}

// PathProfile is one path's observed-selectivity row: how the matcher's
// pruning funnel treated the path's candidates across every evaluation
// that bound it. Candidates -> UsefulSurvivors is the bottom-up
// usefulness pass, UsefulSurvivors -> ReachSurvivors the top-down
// reachability pass; passes that did not run (single-node fast path)
// count as dropping nothing. Selectivity is ReachSurvivors/Candidates —
// the observed fraction of loaded postings that participated in a
// match, exactly the quantity a cost-based planner must estimate.
type PathProfile struct {
	Path            string  `json:"path"`
	Evals           uint64  `json:"evals"`
	Candidates      uint64  `json:"candidates"`
	UsefulSurvivors uint64  `json:"usefulSurvivors"`
	ReachSurvivors  uint64  `json:"reachSurvivors"`
	Selectivity     float64 `json:"selectivity"`
}

// PathProfiles reports the observed selectivity of every path this
// index's overlay chain has evaluated, most-loaded (highest Candidates)
// first, ties by path. Paths the workload never touched do not appear.
func (ix *Index) PathProfiles() []PathProfile {
	p := ix.prof
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make([]PathProfile, 0, len(p.m))
	for path, a := range p.m {
		pp := PathProfile{
			Path:            path,
			Evals:           a.evals,
			Candidates:      a.candidates,
			UsefulSurvivors: a.useful,
			ReachSurvivors:  a.reach,
		}
		if a.candidates > 0 {
			pp.Selectivity = float64(a.reach) / float64(a.candidates)
		}
		out = append(out, pp)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Candidates != out[j].Candidates {
			return out[i].Candidates > out[j].Candidates
		}
		return out[i].Path < out[j].Path
	})
	return out
}
