package index_test

// The PR's differential guarantee at the evaluation layer: for every
// Table III query × dataset × mode (basic / compact / top-k), evaluating
// with the positional index attached returns results byte-identical —
// compared through the JSON wire encoding, the same notion the serving
// tests use — to the unindexed joined evaluation. Aggregated answers are
// compared too, so the guarantee covers the aggregate path.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xmatch/internal/core"
	"xmatch/internal/dataset"
	"xmatch/internal/index"
	"xmatch/internal/mapgen"
	"xmatch/internal/mapping"
	"xmatch/internal/xmltree"
)

type diffFixture struct {
	name    string
	set     *mapping.Set
	doc     *xmltree.Document
	tree    *core.BlockTree
	queries []string
}

func loadFixture(t *testing.T, id string, mappings, docNodes int, queries []string) diffFixture {
	t.Helper()
	d, err := dataset.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	set, err := mapgen.TopH(d.Matching, mappings, mapgen.Partition)
	if err != nil {
		t.Fatal(err)
	}
	doc := d.OrderDocument(docNodes, 42)
	bt, err := core.Build(set, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) == 0 {
		// Leaf-path spine queries for datasets Table III does not target.
		for _, e := range set.Target.Leaves() {
			pattern := strings.ReplaceAll(e.Path, ".", "/")
			if _, err := core.PrepareQuery(pattern, set); err == nil {
				queries = append(queries, pattern)
				if len(queries) == 4 {
					break
				}
			}
		}
	}
	return diffFixture{name: id, set: set, doc: doc, tree: bt, queries: queries}
}

func wireBytes(t *testing.T, q *core.Query, results []core.Result) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		Results []core.WireResult
		Answers []core.WireAnswer
	}{core.ToWire(results), core.AnswersToWire(core.AggregateLeaf(q, results))})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIndexedEvaluationDifferential(t *testing.T) {
	var tableIII []string
	for _, q := range dataset.Queries() {
		tableIII = append(tableIII, q.Text)
	}
	fixtures := []diffFixture{
		loadFixture(t, "D7", 50, 1800, tableIII),
		loadFixture(t, "D1", 16, 600, nil),
	}
	modes := []struct {
		mode string
		k    int
	}{
		{"basic", 0}, {"compact", 0}, {"topk", 1}, {"topk", 5}, {"topk", 1000},
	}
	for _, f := range fixtures {
		for _, pattern := range f.queries {
			q, err := core.PrepareQuery(pattern, f.set)
			if err != nil {
				t.Fatalf("%s %q: %v", f.name, pattern, err)
			}
			for _, mk := range modes {
				evaluate := func() []core.Result {
					switch mk.mode {
					case "basic":
						return core.EvaluateBasic(q, f.set, f.doc)
					case "compact":
						return core.Evaluate(q, f.set, f.doc, f.tree)
					default:
						return core.EvaluateTopK(q, f.set, f.doc, f.tree, mk.k)
					}
				}
				index.Detach(f.doc)
				want := wireBytes(t, q, evaluate())
				index.Attach(f.doc)
				got := wireBytes(t, q, evaluate())
				index.Detach(f.doc)
				if !bytes.Equal(got, want) {
					t.Errorf("%s %q %s/k=%d: indexed evaluation diverged from unindexed\ngot  %s\nwant %s",
						f.name, pattern, mk.mode, mk.k, got, want)
				}
			}
		}
	}
}

// TestIndexedAggregateDifferential covers the aggregate extension: the
// distribution computed over an indexed document must equal the unindexed
// one exactly.
func TestIndexedAggregateDifferential(t *testing.T) {
	f := loadFixture(t, "D7", 50, 1800, []string{dataset.Queries()[4].Text}) // Q5 -> Quantity
	q, err := core.PrepareQuery(f.queries[0], f.set)
	if err != nil {
		t.Fatal(err)
	}
	leaf := q.Pattern.Nodes()[q.Pattern.Size()-1]
	for _, fn := range []core.AggFunc{core.Count, core.Sum, core.Min, core.Max, core.Avg} {
		index.Detach(f.doc)
		want, _ := json.Marshal(core.EvaluateAggregate(q, f.set, f.doc, f.tree, leaf, fn).Values)
		index.Attach(f.doc)
		got, _ := json.Marshal(core.EvaluateAggregate(q, f.set, f.doc, f.tree, leaf, fn).Values)
		index.Detach(f.doc)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: indexed aggregate diverged:\ngot  %s\nwant %s", fn, got, want)
		}
	}
}
