package index_test

// PurgeMemo lifecycle tests: purging drops the cached evaluations across
// the whole overlay chain, later queries still answer correctly (and
// repopulate the cache), and purging races cleanly against concurrent
// MatchTwig callers — the reload path the server exercises. Run under
// -race in CI.

import (
	"reflect"
	"sync"
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

func TestPurgeMemoAnswersSurvive(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine[./LineNo="2"]/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Num", n[3]: "PO.Line.Qty"}

	want := ix.MatchTwig(doc, p.Root, paths)
	if len(want) != 1 {
		t.Fatalf("matches = %d, want 1", len(want))
	}
	// Warm hit before the purge, cold recompute after it: both identical.
	if got := ix.MatchTwig(doc, p.Root, paths); !reflect.DeepEqual(got, want) {
		t.Fatal("warm memo hit diverged")
	}
	ix.PurgeMemo()
	if got := ix.MatchTwig(doc, p.Root, paths); !reflect.DeepEqual(got, want) {
		t.Fatal("post-purge evaluation diverged")
	}
	ix.PurgeMemo()
}

// TestPurgeMemoConcurrentMatch: purge storms while other goroutines
// evaluate the same patterns. The race detector proves readers never see
// a mid-purge map; the assertions prove answers stay right.
func TestPurgeMemoConcurrentMatch(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}
	want := twig.MatchByPaths(doc, p.Root, paths)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := ix.MatchTwig(doc, p.Root, paths); !reflect.DeepEqual(got, want) {
					t.Error("concurrent evaluation diverged during purge")
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ix.PurgeMemo()
	}
	close(stop)
	wg.Wait()
}

// TestPurgeMemoOverlayChain: purging the tip of an overlay chain reaches
// the base indexes too — the server purges whatever index the retired
// snapshot holds, which after mutations is an overlay over older epochs.
func TestPurgeMemoOverlayChain(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a><b>x</b></a><a><b>y</b></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc)
	p := twig.MustParse(`r/a/b`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "r", n[1]: "r.a", n[2]: "r.a.b"}
	if ms := ix.MatchTwig(doc, p.Root, paths); len(ms) != 2 {
		t.Fatalf("base matches = %d, want 2", len(ms))
	}

	rev := doc.BeginRevision()
	target := rev.LocateByPath("r.a.b", 0)
	if target == nil {
		t.Fatal("r.a.b not found")
	}
	if err := rev.SetText(target.Start, "z"); err != nil {
		t.Fatal(err)
	}
	newDoc, cs := rev.Commit()
	tip := ix.ApplyChanges(newDoc, cs)
	if tip.Epoch() == 0 || tip.Stats().Overlays == 0 {
		t.Fatalf("expected an overlay tip, got epoch %d overlays %d", tip.Epoch(), tip.Stats().Overlays)
	}
	wantTip := tip.MatchTwig(newDoc, p.Root, paths)
	tip.PurgeMemo() // must walk down to the base without panicking
	if got := tip.MatchTwig(newDoc, p.Root, paths); !reflect.DeepEqual(got, wantTip) {
		t.Fatal("overlay evaluation diverged after chain purge")
	}
}
