package index

// Incremental index maintenance under document mutation. A mutated
// document snapshot (produced by xmltree's revision layer) differs from
// its base by an explicit node-level change set; ApplyChanges turns the
// base snapshot's index into the new snapshot's index by splicing exactly
// the postings lists those changes touch. The result is an overlay epoch:
// a thin Index holding only the spliced entries plus a pointer to the base
// index, so the untouched majority of the postings — typically all but a
// handful of paths — is shared structurally across epochs. Lookups walk
// the overlay chain newest-first; the chain is bounded by flattenDepth,
// after which an epoch is materialized into a self-contained index, so
// chained lookups stay O(1) amortized and superseded epochs (and the
// document snapshots they pin) become collectable.
//
// Spliced lists are kept in the flat representation: they are small,
// freshly allocated, and short-lived (the next flatten re-compresses
// them), so the mutate path pays no encode. The base index's lists are
// never written, so queries running against any older snapshot proceed
// unperturbed while new epochs are built — the copy-on-write contract the
// delta subsystem's concurrency model rests on.

import (
	"slices"
	"strings"
	"time"

	"xmatch/internal/xmltree"
)

// flattenDepth bounds the overlay chain: the epoch that would become the
// flattenDepth-th overlay is materialized into a base-free index instead.
// The flatten is O(index size), so amortized over the preceding thin
// epochs it adds a fraction of one full rebuild — and it unpins the
// superseded epochs' documents from memory.
const flattenDepth = 16

// ApplyChanges derives the index of a mutated document snapshot from the
// index of its base snapshot and the revision's change set. Postings of
// unaffected paths are shared with the base; affected paths, value keys
// and text-layer entries get freshly spliced lists. The receiver is not
// modified and remains the valid index of its own document. The returned
// index is not yet attached to newDoc; callers publish it with Install.
func (ix *Index) ApplyChanges(newDoc *xmltree.Document, cs *xmltree.ChangeSet) *Index {
	start := time.Now()
	nx := &Index{
		doc:    newDoc,
		base:   ix,
		epoch:  ix.epoch + 1,
		depth:  ix.depth + 1,
		paths:  make(map[string]*PostingList),
		values: make(map[valueKey]*PostingList),
		texts:  make(map[string]*textEntry),
		ctr:    ix.ctr,
		prof:   ix.prof,
		stats:  ix.stats,
	}
	nx.stats.Epoch = nx.epoch

	dropped := make(map[*xmltree.Node]bool, len(cs.Dropped))
	affectedPaths := make(map[string]bool)
	affectedValues := make(map[valueKey]bool)
	for _, n := range cs.Dropped {
		dropped[n] = true
		affectedPaths[n.Path] = true
		if n.Text != "" {
			affectedValues[valueKey{n.Path, n.Text}] = true
		}
	}
	addedByPath := make(map[string][]*xmltree.Node)
	addedByValue := make(map[valueKey][]*xmltree.Node)
	for _, n := range cs.Added { // document order, which splice preserves
		affectedPaths[n.Path] = true
		addedByPath[n.Path] = append(addedByPath[n.Path], n)
		if n.Text != "" {
			k := valueKey{n.Path, n.Text}
			affectedValues[k] = true
			addedByValue[k] = append(addedByValue[k], n)
		}
	}

	for p := range affectedPaths {
		old := ix.list(p)
		nl := splice(old, dropped, addedByPath[p])
		nx.paths[p] = nl
		nx.stats.Postings += nl.Len() - old.Len()
		nx.stats.PostingsBytes += nl.residentBytes() - old.residentBytes()
		nx.stats.PostingsFlatBytes += nl.flatBytes() - old.flatBytes()
		nx.stats.ResidentBytes += nl.residentBytes() - old.residentBytes()
		nx.stats.FlatBytes += nl.flatBytes() - old.flatBytes()
		switch {
		case old.Len() == 0 && nl.Len() > 0:
			nx.stats.DistinctPaths++
			nx.stats.ResidentBytes += len(p)
			nx.stats.FlatBytes += len(p)
		case old.Len() > 0 && nl.Len() == 0:
			nx.stats.DistinctPaths--
			nx.stats.ResidentBytes -= len(p)
			nx.stats.FlatBytes -= len(p)
		}
	}
	// Token-layer entries to re-splice: the lowered text of every value
	// key a splice touched (its node list changed even when the key
	// itself survived).
	textChanges := make(map[string]bool)
	for k := range affectedValues {
		old := ix.valueList(k)
		nl := splice(old, dropped, addedByValue[k])
		nx.values[k] = nl
		nx.stats.PostingsBytes += nl.residentBytes() - old.residentBytes()
		nx.stats.PostingsFlatBytes += nl.flatBytes() - old.flatBytes()
		nx.stats.ResidentBytes += nl.residentBytes() - old.residentBytes()
		nx.stats.FlatBytes += nl.flatBytes() - old.flatBytes()
		textChanges[strings.ToLower(k.text)] = true
		switch {
		case old.Len() == 0 && nl.Len() > 0:
			nx.stats.ValueKeys++
			nx.stats.ResidentBytes += len(k.path) + len(k.text)
			nx.stats.FlatBytes += len(k.path) + len(k.text)
		case old.Len() > 0 && nl.Len() == 0:
			nx.stats.ValueKeys--
			nx.stats.ResidentBytes -= len(k.path) + len(k.text)
			nx.stats.FlatBytes -= len(k.path) + len(k.text)
		}
	}
	// Group the epoch's spliced value keys by lowered text once, so each
	// text entry's re-splice looks its candidates up directly instead of
	// rescanning every spliced key.
	splicedByLower := make(map[string][]valueKey, len(textChanges))
	for k, pl := range nx.values {
		if pl.Len() > 0 {
			lt := strings.ToLower(k.text)
			splicedByLower[lt] = append(splicedByLower[lt], k)
		}
	}
	for lt := range textChanges {
		old := ix.textEntryOf(lt)
		nl := spliceTextEntry(old, lt, nx, splicedByLower[lt])
		nx.texts[lt] = nl
		db := textEntryBytes(nl) - textEntryBytes(old)
		switch {
		case old == nil && nl != nil:
			nx.stats.TextKeys++
			db += len(lt)
		case old != nil && nl == nil:
			nx.stats.TextKeys--
			db -= len(lt)
		}
		nx.stats.ResidentBytes += db
		nx.stats.FlatBytes += db
	}

	if nx.depth >= flattenDepth {
		nx = nx.flatten()
	}
	nx.stats.Overlays = nx.depth
	nx.stats.BuildTime = time.Since(start)
	return nx
}

// splice merges one postings list: the old postings minus those whose
// nodes were dropped, interleaved by start number with postings for the
// added nodes. The old list may be compressed; the result is a fresh flat
// list in document order. A nil result is the overlay's deletion marker.
func splice(old *PostingList, dropped map[*xmltree.Node]bool, added []*xmltree.Node) *PostingList {
	buf := getPostingBuf()
	olds := old.appendAll(*buf)
	out := make([]Posting, 0, len(olds)+len(added))
	i := 0
	for _, n := range added {
		for ; i < len(olds); i++ {
			if dropped[olds[i].Node] {
				continue
			}
			if int(olds[i].Start) > n.Start {
				break
			}
			out = append(out, olds[i])
		}
		out = append(out, Posting{Start: int32(n.Start), End: int32(n.End), Level: int32(n.Level), Node: n})
	}
	for ; i < len(olds); i++ {
		if !dropped[olds[i].Node] {
			out = append(out, olds[i])
		}
	}
	*buf = olds
	putPostingBuf(buf)
	return newFlatList(out)
}

// textEntryOf returns the effective token-layer entry for one lowered
// text.
func (ix *Index) textEntryOf(lt string) *textEntry {
	for x := ix; x != nil; x = x.base {
		if e, ok := x.texts[lt]; ok {
			return e
		}
	}
	return nil
}

// textEntryBytes is one entry's bookkeeping footprint (key string
// excluded; the caller accounts it).
func textEntryBytes(e *textEntry) int {
	if e == nil {
		return 0
	}
	return len(e.keys)*valueKeyBytes + len(e.nodes)*8
}

// spliceTextEntry recomputes the token-layer entry for one lowered text
// after the epoch's value splices: the surviving old keys plus the
// epoch's newly non-empty keys with that lowered text (spliced,
// pre-grouped by the caller), with their nodes re-merged from the new
// epoch's value lists. nx's value entries are already spliced, so
// membership and node sets are decided by the new epoch.
func spliceTextEntry(old *textEntry, lt string, nx *Index, spliced []valueKey) *textEntry {
	var keep []valueKey
	if old != nil {
		keep = make([]valueKey, 0, len(old.keys)+len(spliced))
		for _, k := range old.keys {
			if nx.valueList(k).Len() > 0 {
				keep = append(keep, k)
			}
		}
	}
	for _, k := range spliced {
		dup := false
		for _, kk := range keep {
			if kk == k {
				dup = true
				break
			}
		}
		if !dup {
			keep = append(keep, k)
		}
	}
	if len(keep) == 0 {
		return nil
	}
	sortValueKeys(keep)
	buf := getPostingBuf()
	ps := (*buf)[:0]
	for _, k := range keep {
		ps = nx.valueList(k).appendAll(ps)
	}
	slices.SortFunc(ps, func(a, b Posting) int { return int(a.Start) - int(b.Start) })
	e := &textEntry{keys: keep, nodes: make([]*xmltree.Node, len(ps))}
	for i := range ps {
		e.nodes[i] = ps[i].Node
	}
	*buf = ps
	putPostingBuf(buf)
	return e
}

func sortValueKeys(keys []valueKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && valueKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func valueKeyLess(a, b valueKey) bool {
	if a.path != b.path {
		return a.path < b.path
	}
	return a.text < b.text
}

// chainDown returns the overlay chain oldest-first.
func (ix *Index) chainDown() []*Index {
	var chain []*Index
	for x := ix; x != nil; x = x.base {
		chain = append(chain, x)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return chain
}

// materialize returns the effective maps of the overlay chain: the oldest
// epoch's full maps with each newer overlay applied on top (nil entries
// delete). The returned maps are fresh even for a base-free index, so
// callers may keep them.
func (ix *Index) materialize() (map[string]*PostingList, map[valueKey]*PostingList, map[string]*textEntry) {
	paths := make(map[string]*PostingList, len(ix.paths))
	values := make(map[valueKey]*PostingList, len(ix.values))
	texts := make(map[string]*textEntry, len(ix.texts))
	for _, x := range ix.chainDown() {
		for p, pl := range x.paths {
			if pl.Len() == 0 {
				delete(paths, p)
			} else {
				paths[p] = pl
			}
		}
		for k, pl := range x.values {
			if pl.Len() == 0 {
				delete(values, k)
			} else {
				values[k] = pl
			}
		}
		for lt, e := range x.texts {
			if e == nil || len(e.keys) == 0 {
				delete(texts, lt)
			} else {
				texts[lt] = e
			}
		}
	}
	return paths, values, texts
}

// flatten materializes an overlay index into a self-contained one,
// releasing the base chain. Flat overlay splices are re-compressed, so
// the long-lived form always carries the compact layout.
func (ix *Index) flatten() *Index {
	if ix.base == nil {
		return ix
	}
	paths, values, texts := ix.materialize()
	buf := getPostingBuf()
	for p, pl := range paths {
		if !pl.compressed() {
			*buf = pl.appendAll((*buf)[:0])
			paths[p] = compressPostings(*buf)
		}
	}
	for k, pl := range values {
		if !pl.compressed() {
			*buf = pl.appendAll((*buf)[:0])
			values[k] = compressPostings(*buf)
		}
	}
	putPostingBuf(buf)
	nx := &Index{doc: ix.doc, epoch: ix.epoch, paths: paths, values: values, texts: texts, ctr: ix.ctr, prof: ix.prof}
	nx.stats = nx.computeStats()
	nx.stats.Epoch = ix.epoch
	return nx
}
