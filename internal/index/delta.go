package index

// Incremental index maintenance under document mutation. A mutated
// document snapshot (produced by xmltree's revision layer) differs from
// its base by an explicit node-level change set; ApplyChanges turns the
// base snapshot's index into the new snapshot's index by splicing exactly
// the postings lists those changes touch. The result is an overlay epoch:
// a thin Index holding only the spliced entries plus a pointer to the base
// index, so the untouched majority of the postings — typically all but a
// handful of paths — is shared structurally across epochs. Lookups walk
// the overlay chain newest-first; the chain is bounded by flattenDepth,
// after which an epoch is materialized into a self-contained index, so
// chained lookups stay O(1) amortized and superseded epochs (and the
// document snapshots they pin) become collectable.
//
// Every spliced list is freshly allocated: the base index's slices are
// never written, so queries running against any older snapshot proceed
// unperturbed while new epochs are built — the copy-on-write contract the
// delta subsystem's concurrency model rests on.

import (
	"time"

	"xmatch/internal/xmltree"
)

// flattenDepth bounds the overlay chain: the epoch that would become the
// flattenDepth-th overlay is materialized into a base-free index instead.
// The flatten is O(index size), so amortized over the preceding thin
// epochs it adds a fraction of one full rebuild — and it unpins the
// superseded epochs' documents from memory.
const flattenDepth = 16

// ApplyChanges derives the index of a mutated document snapshot from the
// index of its base snapshot and the revision's change set. Postings of
// unaffected paths are shared with the base; affected paths and value keys
// get freshly spliced lists. The receiver is not modified and remains the
// valid index of its own document. The returned index is not yet attached
// to newDoc; callers publish it with Install.
func (ix *Index) ApplyChanges(newDoc *xmltree.Document, cs *xmltree.ChangeSet) *Index {
	start := time.Now()
	nx := &Index{
		doc:    newDoc,
		base:   ix,
		epoch:  ix.epoch + 1,
		depth:  ix.depth + 1,
		paths:  make(map[string][]Posting),
		values: make(map[valueKey][]Posting),
		stats:  ix.stats,
	}
	nx.stats.Epoch = nx.epoch

	dropped := make(map[*xmltree.Node]bool, len(cs.Dropped))
	affectedPaths := make(map[string]bool)
	affectedValues := make(map[valueKey]bool)
	for _, n := range cs.Dropped {
		dropped[n] = true
		affectedPaths[n.Path] = true
		if n.Text != "" {
			affectedValues[valueKey{n.Path, n.Text}] = true
		}
	}
	addedByPath := make(map[string][]*xmltree.Node)
	addedByValue := make(map[valueKey][]*xmltree.Node)
	for _, n := range cs.Added { // document order, which splice preserves
		affectedPaths[n.Path] = true
		addedByPath[n.Path] = append(addedByPath[n.Path], n)
		if n.Text != "" {
			k := valueKey{n.Path, n.Text}
			affectedValues[k] = true
			addedByValue[k] = append(addedByValue[k], n)
		}
	}

	for p := range affectedPaths {
		old := ix.Postings(p)
		nl := splice(old, dropped, addedByPath[p])
		nx.paths[p] = nl
		nx.stats.Postings += len(nl) - len(old)
		nx.stats.ResidentBytes += (len(nl) - len(old)) * postingBytes
		switch {
		case len(old) == 0 && len(nl) > 0:
			nx.stats.DistinctPaths++
			nx.stats.ResidentBytes += len(p)
		case len(old) > 0 && len(nl) == 0:
			nx.stats.DistinctPaths--
			nx.stats.ResidentBytes -= len(p)
		}
	}
	for k := range affectedValues {
		old := ix.ValuePostings(k.path, k.text)
		nl := splice(old, dropped, addedByValue[k])
		nx.values[k] = nl
		nx.stats.ResidentBytes += (len(nl) - len(old)) * postingBytes
		switch {
		case len(old) == 0 && len(nl) > 0:
			nx.stats.ValueKeys++
			nx.stats.ResidentBytes += len(k.path) + len(k.text)
		case len(old) > 0 && len(nl) == 0:
			nx.stats.ValueKeys--
			nx.stats.ResidentBytes -= len(k.path) + len(k.text)
		}
	}

	if nx.depth >= flattenDepth {
		nx = nx.flatten()
	}
	nx.stats.Overlays = nx.depth
	nx.stats.BuildTime = time.Since(start)
	return nx
}

// splice merges one postings list: the old postings minus those whose
// nodes were dropped, interleaved by start number with postings for the
// added nodes. Both inputs are in document order; so is the result. The
// old list is never modified. An empty result is returned as nil, the
// overlay's deletion marker.
func splice(old []Posting, dropped map[*xmltree.Node]bool, added []*xmltree.Node) []Posting {
	out := make([]Posting, 0, len(old)+len(added))
	i := 0
	for _, n := range added {
		for ; i < len(old); i++ {
			if dropped[old[i].Node] {
				continue
			}
			if int(old[i].Start) > n.Start {
				break
			}
			out = append(out, old[i])
		}
		out = append(out, Posting{Start: int32(n.Start), End: int32(n.End), Level: int32(n.Level), Node: n})
	}
	for ; i < len(old); i++ {
		if !dropped[old[i].Node] {
			out = append(out, old[i])
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// chainDown returns the overlay chain oldest-first.
func (ix *Index) chainDown() []*Index {
	var chain []*Index
	for x := ix; x != nil; x = x.base {
		chain = append(chain, x)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return chain
}

// materialize returns the effective postings maps of the overlay chain:
// the oldest epoch's full maps with each newer overlay applied on top
// (nil entries delete). The returned maps are fresh even for a base-free
// index, so callers may keep them.
func (ix *Index) materialize() (map[string][]Posting, map[valueKey][]Posting) {
	paths := make(map[string][]Posting, len(ix.paths))
	values := make(map[valueKey][]Posting, len(ix.values))
	for _, x := range ix.chainDown() {
		for p, ps := range x.paths {
			if ps == nil {
				delete(paths, p)
			} else {
				paths[p] = ps
			}
		}
		for k, ps := range x.values {
			if ps == nil {
				delete(values, k)
			} else {
				values[k] = ps
			}
		}
	}
	return paths, values
}

// flatten materializes an overlay index into a self-contained one,
// releasing the base chain.
func (ix *Index) flatten() *Index {
	if ix.base == nil {
		return ix
	}
	paths, values := ix.materialize()
	return &Index{doc: ix.doc, epoch: ix.epoch, paths: paths, values: values, stats: ix.stats}
}
