package index_test

import (
	"strings"
	"testing"

	"xmatch/internal/index"
	"xmatch/internal/obs"
	"xmatch/internal/twig"
)

func TestCountersTrackEvaluations(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}

	before := ix.Counters()
	globalBefore := index.GlobalCounters()
	if ms := ix.MatchTwig(doc, p.Root, paths); len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	d := ix.Counters().Sub(before)
	if d.Evals != 1 || d.MemoMisses != 1 || d.MemoHits != 0 {
		t.Fatalf("first eval delta = %+v", d)
	}
	if d.Candidates == 0 || d.Emitted != 3 {
		t.Fatalf("first eval candidates/emitted = %+v", d)
	}
	if d.GallopMerges+d.LinearMerges == 0 {
		t.Fatalf("no merge passes counted: %+v", d)
	}

	// A repeat is a memo hit: Evals and MemoHits move, nothing else.
	mid := ix.Counters()
	ix.MatchTwig(doc, p.Root, paths)
	d = ix.Counters().Sub(mid)
	if d.Evals != 1 || d.MemoHits != 1 || d.MemoMisses != 0 || d.Emitted != 0 {
		t.Fatalf("memo-hit delta = %+v", d)
	}

	// The package-global aggregate moved at least as much.
	gd := index.GlobalCounters().Sub(globalBefore)
	if gd.Evals < 2 || gd.MemoHits < 1 {
		t.Fatalf("global delta = %+v", gd)
	}

	// Single-node fast path.
	fp := twig.MustParse(`Line`)
	fpBefore := ix.Counters()
	ix.MatchTwig(doc, fp.Root, twig.PathBinding{fp.Root: "PO.Line"})
	d = ix.Counters().Sub(fpBefore)
	if d.FastPath != 1 || d.Emitted != 3 {
		t.Fatalf("fast-path delta = %+v", d)
	}
}

func TestCountersSurviveApplyChanges(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	paths := twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"}
	ix.MatchTwig(doc, p.Root, paths)
	before := ix.Counters()
	if before.Evals == 0 {
		t.Fatal("no evals recorded on base index")
	}

	rev := doc.BeginRevision()
	target := rev.LocateByPath("PO.Line.Qty", 0)
	if target == nil {
		t.Fatal("PO.Line.Qty not found")
	}
	if err := rev.SetText(target.Start, "9"); err != nil {
		t.Fatal(err)
	}
	newDoc, cs := rev.Commit()
	nx := ix.ApplyChanges(newDoc, cs)
	// The overlay epoch shares the chain's counters, so history carries over.
	if got := nx.Counters(); got != before {
		t.Fatalf("overlay counters = %+v, want inherited %+v", got, before)
	}
	nx.MatchTwig(newDoc, p.Root, paths)
	if d := nx.Counters().Sub(before); d.Evals != 1 {
		t.Fatalf("overlay eval delta = %+v", d)
	}
}

func TestCollectMetricsExposesCounters(t *testing.T) {
	doc := buildDoc()
	ix := index.Build(doc)
	p := twig.MustParse(`Order/POLine/Quantity`)
	n := p.Nodes()
	ix.MatchTwig(doc, p.Root, twig.PathBinding{n[0]: "PO", n[1]: "PO.Line", n[2]: "PO.Line.Qty"})

	r := obs.NewRegistry()
	r.Collect(index.CollectMetrics)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"xmatch_index_evals_total", "xmatch_index_memo_hits_total", "xmatch_index_decoded_blocks_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, sb.String())
		}
	}
	if _, err := obs.ParseExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("index metrics fail exposition lint: %v", err)
	}
}
