package index

import (
	"sync/atomic"

	"xmatch/internal/obs"
)

// Counters are the matcher-internal evaluation counters — the raw
// selectivity and access-path data a cost-based planner (ROADMAP item 5)
// needs and EXPLAIN exposes. One Counters instance is shared by a whole
// overlay chain (ApplyChanges and flatten propagate the pointer), so an
// epoch's numbers survive its flatten; a second, package-global instance
// aggregates every index in the process for /metricsz, where reload must
// not reset monotonic counters.
//
// The hot path does not touch these atomics directly: each evaluation
// accumulates into the pooled twigState's plain tally and flushes once
// at the end, so instrumentation adds a bounded constant per evaluation
// regardless of document size.
type Counters struct {
	evals           atomic.Uint64
	memoHits        atomic.Uint64
	memoMisses      atomic.Uint64
	fastPath        atomic.Uint64
	decodedLists    atomic.Uint64
	decodedPostings atomic.Uint64
	decodedBlocks   atomic.Uint64
	gallopMerges    atomic.Uint64
	linearMerges    atomic.Uint64
	candidates      atomic.Uint64
	usefulSurvivors atomic.Uint64
	reachSurvivors  atomic.Uint64
	emitted         atomic.Uint64
}

// CountersSnapshot is a point-in-time copy of evaluation counters, the
// wire form EXPLAIN embeds.
type CountersSnapshot struct {
	// Evals counts MatchTwig evaluations; MemoHits of them were answered
	// from the result memo, MemoMisses ran the join, and FastPath of the
	// misses took the single-node postings-lookup shortcut.
	Evals      uint64 `json:"evals"`
	MemoHits   uint64 `json:"memoHits"`
	MemoMisses uint64 `json:"memoMisses"`
	FastPath   uint64 `json:"fastPath"`
	// DecodedLists/DecodedPostings count full list materializations
	// through the decode cache; DecodedBlocks counts individual
	// compressed-block decodes (galloped probes included).
	DecodedLists    uint64 `json:"decodedLists"`
	DecodedPostings uint64 `json:"decodedPostings"`
	DecodedBlocks   uint64 `json:"decodedBlocks"`
	// GallopMerges/LinearMerges count pruning passes by the access path
	// the skew heuristic chose.
	GallopMerges uint64 `json:"gallopMerges"`
	LinearMerges uint64 `json:"linearMerges"`
	// Candidates is the summed initial candidate-list length of joined
	// evaluations; UsefulSurvivors and ReachSurvivors are the totals
	// remaining after the bottom-up and top-down passes — per-pass
	// selectivity. Emitted counts returned matches (memo hits excluded).
	Candidates      uint64 `json:"candidates"`
	UsefulSurvivors uint64 `json:"usefulSurvivors"`
	ReachSurvivors  uint64 `json:"reachSurvivors"`
	Emitted         uint64 `json:"emitted"`
}

// Sub returns the counter-wise difference c - prev, the per-request
// delta EXPLAIN reports. Deltas are best-effort under concurrency:
// evaluations of other requests landing between the two snapshots are
// included.
func (c CountersSnapshot) Sub(prev CountersSnapshot) CountersSnapshot {
	return CountersSnapshot{
		Evals:           c.Evals - prev.Evals,
		MemoHits:        c.MemoHits - prev.MemoHits,
		MemoMisses:      c.MemoMisses - prev.MemoMisses,
		FastPath:        c.FastPath - prev.FastPath,
		DecodedLists:    c.DecodedLists - prev.DecodedLists,
		DecodedPostings: c.DecodedPostings - prev.DecodedPostings,
		DecodedBlocks:   c.DecodedBlocks - prev.DecodedBlocks,
		GallopMerges:    c.GallopMerges - prev.GallopMerges,
		LinearMerges:    c.LinearMerges - prev.LinearMerges,
		Candidates:      c.Candidates - prev.Candidates,
		UsefulSurvivors: c.UsefulSurvivors - prev.UsefulSurvivors,
		ReachSurvivors:  c.ReachSurvivors - prev.ReachSurvivors,
		Emitted:         c.Emitted - prev.Emitted,
	}
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() CountersSnapshot {
	if c == nil {
		return CountersSnapshot{}
	}
	return CountersSnapshot{
		Evals:           c.evals.Load(),
		MemoHits:        c.memoHits.Load(),
		MemoMisses:      c.memoMisses.Load(),
		FastPath:        c.fastPath.Load(),
		DecodedLists:    c.decodedLists.Load(),
		DecodedPostings: c.decodedPostings.Load(),
		DecodedBlocks:   c.decodedBlocks.Load(),
		GallopMerges:    c.gallopMerges.Load(),
		LinearMerges:    c.linearMerges.Load(),
		Candidates:      c.candidates.Load(),
		UsefulSurvivors: c.usefulSurvivors.Load(),
		ReachSurvivors:  c.reachSurvivors.Load(),
		Emitted:         c.emitted.Load(),
	}
}

// tally is one evaluation's counter accumulator: plain fields on the
// pooled twigState, flushed to the atomic Counters once per evaluation.
type tally struct {
	memoMisses      uint64
	fastPath        uint64
	decodedLists    uint64
	decodedPostings uint64
	decodedBlocks   uint64
	gallopMerges    uint64
	linearMerges    uint64
	candidates      uint64
	usefulSurvivors uint64
	reachSurvivors  uint64
	emitted         uint64
}

// addEval flushes one completed uncached evaluation into c.
func (c *Counters) addEval(t *tally) {
	if c == nil {
		return
	}
	c.evals.Add(1)
	c.memoMisses.Add(t.memoMisses)
	c.fastPath.Add(t.fastPath)
	c.decodedLists.Add(t.decodedLists)
	c.decodedPostings.Add(t.decodedPostings)
	c.decodedBlocks.Add(t.decodedBlocks)
	c.gallopMerges.Add(t.gallopMerges)
	c.linearMerges.Add(t.linearMerges)
	c.candidates.Add(t.candidates)
	c.usefulSurvivors.Add(t.usefulSurvivors)
	c.reachSurvivors.Add(t.reachSurvivors)
	c.emitted.Add(t.emitted)
}

// addMemoHit flushes one memo-answered evaluation into c.
func (c *Counters) addMemoHit() {
	if c == nil {
		return
	}
	c.evals.Add(1)
	c.memoHits.Add(1)
}

// globalCounters aggregates every index in the process. Unlike the
// per-chain counters it survives catalog reloads and replica bootstraps,
// which is what keeps /metricsz counters monotonic.
var globalCounters Counters

// GlobalCounters snapshots the process-wide evaluation counters.
func GlobalCounters() CountersSnapshot { return globalCounters.Snapshot() }

// Counters snapshots the evaluation counters of this index's overlay
// chain — the per-shard numbers EXPLAIN diffs around an evaluation.
func (ix *Index) Counters() CountersSnapshot { return ix.ctr.Snapshot() }

// CollectMetrics emits the process-wide matcher counters onto e — the
// index package's contribution to /metricsz.
func CollectMetrics(e *obs.Exporter) {
	s := GlobalCounters()
	emit := func(kind, help string, v uint64) {
		e.Counter("xmatch_index_"+kind+"_total", help, float64(v))
	}
	emit("evals", "Twig matcher evaluations.", s.Evals)
	emit("memo_hits", "Evaluations answered from the result memo.", s.MemoHits)
	emit("memo_misses", "Evaluations that ran the holistic join.", s.MemoMisses)
	emit("fast_path", "Single-node postings-lookup evaluations.", s.FastPath)
	emit("decoded_lists", "Full postings-list materializations.", s.DecodedLists)
	emit("decoded_postings", "Postings decoded by full materializations.", s.DecodedPostings)
	emit("decoded_blocks", "Compressed postings blocks decoded.", s.DecodedBlocks)
	emit("gallop_merges", "Pruning passes run as galloped merges.", s.GallopMerges)
	emit("linear_merges", "Pruning passes run as linear merges.", s.LinearMerges)
	emit("candidates", "Initial twig join candidates loaded.", s.Candidates)
	emit("useful_survivors", "Candidates surviving the bottom-up pass.", s.UsefulSurvivors)
	emit("reach_survivors", "Candidates surviving the top-down pass.", s.ReachSurvivors)
	emit("emitted_matches", "Matches emitted by uncached evaluations.", s.Emitted)
}
