package index

import (
	"hash/maphash"
	"sync"

	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// MatchTwig evaluates the rewritten pattern subtree rooted at qn over the
// indexed document, returning matches byte-identical in content and order
// to twig.MatchByPaths (the contract FuzzMatchTwig and the differential
// tests pin). The signature satisfies internal/core's Matcher seam.
//
// The evaluation is a holistic two-phase join in the TwigStack/TwigList
// family, specialized to the exact-path semantics of PTQ rewriting. Because
// every candidate list holds nodes of one dotted path, and two nodes with
// the same path can never nest (a descendant's path strictly extends its
// ancestor's), each list is a disjoint, start-sorted interval sequence —
// so every structural check is a merge over region encodings, no stacks
// needed:
//
//  1. postings lookup: per pattern node, the path's postings — or, for a
//     value predicate, the (path, text) value-index postings, making the
//     predicate a hash lookup instead of a candidate scan;
//  2. bottom-up usefulness: a candidate survives only if, for every
//     pattern child, some surviving child candidate lies strictly inside
//     its interval;
//  3. top-down reachability: a candidate survives only if it lies strictly
//     inside some surviving parent candidate.
//
// The merges adapt to list skew. Balanced lists run as linear two-pointer
// merges over decoded postings; when one pattern node's list is orders of
// magnitude longer than the other's, the pass iterates the short side and
// gallops over the long side's block-level skip pointers, so the long
// compressed list is neither fully decoded nor fully scanned. Lists a
// pass must scan linearly are decoded at most once per pooled evaluation
// state (the state's decode cache keys by list identity), so steady-state
// evaluation over a hot index reads flat postings at flat-layout speed
// while the resident index stays compressed. Survivor lists materialize
// into pooled buffers only when a pass actually drops candidates; the
// common no-waste case (every candidate completes a match) shares the
// cached decode without copying.
//
// After the two passes, every remaining candidate participates in at least
// one complete match (usefulness gives a complete match below it,
// reachability a rooted partial match above it), so the enumeration phase
// materializes no intermediate result that the joined evaluator's output
// would discard — the intermediate-result blowup of per-subtree interval
// joins is gone. Enumeration then mirrors MatchByPaths' candidate order
// and mixed-radix product exactly, which is what makes the output order
// identical.
func (ix *Index) MatchTwig(doc *xmltree.Document, qn *twig.Node, paths twig.PathBinding) []twig.Match {
	if doc != ix.doc {
		// Defensive: an index answers only for its own document.
		return twig.MatchByPaths(doc, qn, paths)
	}
	st := getTwigState()
	defer putTwigState(st)
	st.tally = tally{}
	st.pathTallies = st.pathTallies[:0]
	// Result memo: evaluation is a pure function of (index, pattern,
	// binding), and PTQ workloads rewrite heavily overlapping mappings to
	// a handful of distinct bindings — most evaluations over a hot index
	// are exact repeats. The memo returns the previous result, shared;
	// the Matcher contract already forbids callers from mutating matcher
	// output (core's evalCache shares match slices across mappings the
	// same way). The memo lives on the index itself, so every engine
	// worker shares its warmth and it is collected with its epoch — a
	// superseded snapshot is never pinned by cached results.
	kb, hv := st.memoKey(qn, paths)
	shard := &ix.memo.shards[hv%memoShards]
	shard.mu.RLock()
	byKey := shard.m[qn]
	res, hit := byKey[string(kb)]
	shard.mu.RUnlock()
	if hit {
		ix.ctr.addMemoHit()
		globalCounters.addMemoHit()
		return res
	}
	st.tally.memoMisses = 1
	res = ix.matchTwig(st, qn, paths)
	st.tally.emitted = uint64(len(res))
	st.tally.decodedBlocks += st.prc.takeDecoded() + st.enc.takeDecoded()
	ix.ctr.addEval(&st.tally)
	globalCounters.addEval(&st.tally)
	ix.prof.flush(st.pathTallies)
	shard.mu.Lock()
	if shard.m == nil {
		shard.m = make(map[*twig.Node]map[string][]twig.Match)
	}
	byKey = shard.m[qn]
	if byKey == nil {
		if len(shard.m) >= memoShardCap {
			// A runaway population of distinct patterns: reset rather
			// than grow without bound.
			shard.m = make(map[*twig.Node]map[string][]twig.Match)
		}
		byKey = make(map[string][]twig.Match)
		shard.m[qn] = byKey
	} else if len(byKey) >= memoShardCap {
		// Likewise for distinct bindings of one pattern.
		byKey = make(map[string][]twig.Match)
		shard.m[qn] = byKey
	}
	byKey[string(kb)] = res
	shard.mu.Unlock()
	return res
}

// matchTwig is the uncached evaluation behind the result memo.
func (ix *Index) matchTwig(st *twigState, qn *twig.Node, paths twig.PathBinding) []twig.Match {
	// Fast path: a single-node pattern without an empty-string predicate
	// is a pure postings lookup emitted straight off the node array — no
	// pruning passes, no decode.
	if len(qn.Children) == 0 && !(qn.HasValue && qn.Value == "") {
		var pl *PostingList
		if qn.HasValue {
			pl = ix.valueList(valueKey{paths[qn], qn.Value})
		} else {
			pl = ix.list(paths[qn])
		}
		st.tally.fastPath = 1
		st.tally.candidates = uint64(pl.Len())
		n := uint64(pl.Len())
		st.pathTallies = append(st.pathTallies, pathDelta{path: paths[qn], candidates: n, useful: n, reach: n})
		return emitList(qn, pl)
	}
	st.collect(qn)
	for i, n := range st.nodes {
		if !ix.loadCandidates(st, i, n, paths) {
			return nil
		}
	}
	for i := range st.nodes {
		c := uint64(st.clen(i))
		st.tally.candidates += c
		st.pathTallies = append(st.pathTallies, pathDelta{path: paths[st.nodes[i]], candidates: c})
	}
	if len(st.nodes) == 1 {
		// No pruning passes ran: nothing was dropped.
		st.pathTallies[0].useful = st.pathTallies[0].candidates
		st.pathTallies[0].reach = st.pathTallies[0].candidates
		return st.emitSingles(qn, 0)
	}

	// Bottom-up usefulness: reverse preorder visits children first.
	for i := len(st.nodes) - 1; i >= 0; i-- {
		for _, c := range st.nodes[i].Children {
			if !st.filterParentsByChild(i, st.ord(c)) {
				return nil
			}
		}
	}
	for i := range st.nodes {
		u := uint64(st.clen(i))
		st.tally.usefulSurvivors += u
		st.pathTallies[i].useful = u
	}
	// Top-down reachability: preorder visits parents first.
	for i, n := range st.nodes {
		for _, c := range n.Children {
			st.filterChildrenByParents(st.ord(c), i)
		}
	}
	for i := range st.nodes {
		r := uint64(st.clen(i))
		st.tally.reachSurvivors += r
		st.pathTallies[i].reach = r
	}
	return st.enumerate(qn)
}

// memoSeed keys the memo's shard hash; per-process, shared by all states.
var memoSeed = maphash.MakeSeed()

// memoKey derives the binding's memo key — the bound paths in pattern
// preorder, NUL-separated — and a shard hash. Dotted paths never contain
// NUL, so the key is unambiguous.
func (st *twigState) memoKey(qn *twig.Node, paths twig.PathBinding) ([]byte, uint64) {
	kb := st.keyBuf[:0]
	var walk func(n *twig.Node)
	walk = func(n *twig.Node) {
		kb = append(kb, paths[n]...)
		kb = append(kb, 0)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(qn)
	st.keyBuf = kb
	return kb, maphash.Bytes(memoSeed, kb)
}

// loadCandidates resolves pattern node i's candidate list: the value
// index for value predicates, the path postings otherwise. The value index
// holds only non-empty texts (Build skips text-less nodes), so an
// empty-string predicate — which the joined evaluator satisfies with
// text-less nodes — filters the path postings into a pooled buffer.
// It reports false when the list is empty (the pattern cannot match).
func (ix *Index) loadCandidates(st *twigState, i int, n *twig.Node, paths twig.PathBinding) bool {
	if n.HasValue && n.Value == "" {
		pl := ix.list(paths[n])
		if pl.Len() == 0 {
			return false
		}
		buf := st.bufs[i][:0]
		for _, p := range st.materialize(pl) {
			if p.Node.Text == "" {
				buf = append(buf, p)
			}
		}
		st.lists[i], st.bufs[i] = pl, buf
		st.cand[i], st.owned[i] = buf, true
		return len(buf) > 0
	}
	var pl *PostingList
	if n.HasValue {
		pl = ix.valueList(valueKey{paths[n], n.Value})
	} else {
		pl = ix.list(paths[n])
	}
	st.lists[i], st.cand[i], st.owned[i] = pl, nil, false
	return pl.Len() > 0
}

// gallopSkew is the length ratio from which a pass stops scanning the
// longer list linearly and instead iterates the shorter one, galloping
// over the longer list's skip pointers.
const gallopSkew = 16

// deckSize is the per-state decode-cache table size. Lists hash into it
// by their build-time id; a collision just evicts. It comfortably exceeds
// the 64-node pattern cap, so a single evaluation can rarely cycle a hot
// entry, and the pointer check keeps any collision correct.
const deckSize = 256

// decoded is one decode-cache entry: the identity of a compressed list
// and its decoded postings.
type decoded struct {
	pl *PostingList
	ps []Posting
}

// memoShards spreads the per-index result memo across locks so parallel
// engine workers rarely contend; memoShardCap bounds each shard's pattern
// and per-pattern binding population (reset on overflow — the memo is a
// cache, not a ledger).
const (
	memoShards   = 8
	memoShardCap = 256
)

// resultMemo is one index's evaluation cache: pattern -> binding key ->
// result, sharded under read-write locks. It lives on the Index, so its
// entries — and the epoch's document they reference — are collected
// exactly when the epoch itself is, and every goroutine querying the
// epoch shares one warm cache.
type resultMemo struct {
	shards [memoShards]struct {
		mu sync.RWMutex
		m  map[*twig.Node]map[string][]twig.Match
	}
}

// PurgeMemo drops the cached evaluation results of this index and every
// base index below it in the overlay chain. The server calls it on the
// outgoing catalog after an admin reload so a retired epoch's memo — which
// pins match slices over the old document — is released even while
// in-flight queries still hold the old snapshot. It is safe to call
// concurrently with MatchTwig: readers see a nil map as a miss and the
// write path recreates the map before inserting.
func (ix *Index) PurgeMemo() {
	for x := ix; x != nil; x = x.base {
		for i := range x.memo.shards {
			shard := &x.memo.shards[i]
			shard.mu.Lock()
			shard.m = nil
			shard.mu.Unlock()
		}
	}
}

// twigState is the per-evaluation working set: the pattern subtree in
// preorder, one candidate list per pattern node, the decode cache, and
// the pooled survivor buffers. States are recycled through a sync.Pool,
// so steady-state evaluation allocates only the emitted matches, and the
// decode cache survives across evaluations — the second query over the
// same postings lists pays no decode at all. Patterns are tiny (Parse
// caps them at 64 nodes, the paper's workload peaks at 7), so ordinals
// are found by pointer scan rather than a map.
type twigState struct {
	nodes []*twig.Node
	lists []*PostingList // initial candidate lists (shared with the index)
	cand  [][]Posting    // current survivors; nil means all of lists[i]
	owned []bool         // cand[i] is backed by bufs[i] (mutable in place)
	bufs  [][]Posting    // pooled survivor buffers

	deck [deckSize]decoded // decoded-list cache, slotted by list id

	keyBuf []byte // reusable memo-key scratch

	prc, enc cursor // probe / enumerate cursors for galloped access

	tally       tally       // this evaluation's counter accumulator
	pathTallies []pathDelta // this evaluation's per-path funnel, in node order

	// enumerate scratch, per pattern node ordinal.
	subs  [][][]twig.Match
	curss [][]int
	runss [][][]twig.Match
}

var twigStatePool = sync.Pool{New: func() any { return &twigState{} }}

func getTwigState() *twigState { return twigStatePool.Get().(*twigState) }

func putTwigState(st *twigState) {
	// No clearing: every per-node entry is overwritten before its next
	// read (collect resets the node list, loadCandidates the candidate
	// sets, enumerate its scratch). Stale references pin at most one
	// evaluation's intermediates until the pool entry is reused or
	// GC-dropped — the same lifetime the decode cache already has.
	st.nodes = st.nodes[:0]
	twigStatePool.Put(st)
}

// materialize returns the fully decoded form of pl through the state's
// decode cache: each distinct list decodes at most once per state
// lifetime. Flat lists are returned as-is. The returned slice is shared
// and must not be written.
func (st *twigState) materialize(pl *PostingList) []Posting {
	if pl == nil {
		return nil
	}
	if pl.flat != nil {
		return pl.flat
	}
	slot := &st.deck[pl.id&(deckSize-1)]
	if slot.pl == pl {
		return slot.ps
	}
	if slot.pl != nil {
		// The evictee's buffer may still back a candidate slice shared
		// earlier in this evaluation, so abandon it rather than reuse it.
		slot.ps = nil
	}
	slot.pl = pl
	slot.ps = pl.appendAll(slot.ps[:0])
	st.tally.decodedLists++
	st.tally.decodedPostings += uint64(pl.Len())
	st.tally.decodedBlocks += uint64(pl.blocks())
	return slot.ps
}

// cachedSlice returns pl's decoded form only if it is already flat or
// cached — the galloped paths use it to prefer slice access without
// forcing a decode.
func (st *twigState) cachedSlice(pl *PostingList) []Posting {
	if pl.flat != nil {
		return pl.flat
	}
	if slot := &st.deck[pl.id&(deckSize-1)]; slot.pl == pl {
		return slot.ps
	}
	return nil
}

func (st *twigState) collect(n *twig.Node) {
	st.nodes = st.nodes[:0]
	st.push(n)
	for len(st.lists) < len(st.nodes) {
		st.lists = append(st.lists, nil)
		st.cand = append(st.cand, nil)
		st.owned = append(st.owned, false)
		st.bufs = append(st.bufs, nil)
		st.subs = append(st.subs, nil)
		st.curss = append(st.curss, nil)
		st.runss = append(st.runss, nil)
	}
}

func (st *twigState) push(n *twig.Node) {
	st.nodes = append(st.nodes, n)
	for _, c := range n.Children {
		st.push(c)
	}
}

func (st *twigState) ord(n *twig.Node) int {
	for i, m := range st.nodes {
		if m == n {
			return i
		}
	}
	return -1
}

func (st *twigState) clen(i int) int {
	if st.cand[i] != nil {
		return len(st.cand[i])
	}
	return st.lists[i].Len()
}

// slice returns the current candidate set of node i as a slice,
// materializing the full list through the decode cache when the set is
// still unfiltered — the scan passes' accessor.
func (st *twigState) slice(i int) []Posting {
	if st.cand[i] != nil {
		return st.cand[i]
	}
	return st.materialize(st.lists[i])
}

// probe is read-only random access into one candidate set: a slice when
// one is available without decoding, a galloping block cursor otherwise.
type probe struct {
	ps  []Posting
	cur *cursor
	n   int
}

func (st *twigState) probeOf(i int, cur *cursor) probe {
	if st.cand[i] != nil {
		return probe{ps: st.cand[i], n: len(st.cand[i])}
	}
	if ps := st.cachedSlice(st.lists[i]); ps != nil {
		return probe{ps: ps, n: len(ps)}
	}
	cur.reset(st.lists[i])
	return probe{cur: cur, n: st.lists[i].Len()}
}

func (p *probe) at(k int) Posting {
	if p.ps != nil {
		return p.ps[k]
	}
	return p.cur.at(k)
}

func (p *probe) startAt(k int) int32 {
	if p.ps != nil {
		return p.ps[k].Start
	}
	return p.cur.startAt(k)
}

func (p *probe) endAt(k int) int32 {
	if p.ps != nil {
		return p.ps[k].End
	}
	return p.cur.endAt(k)
}

func (p *probe) nodeAt(k int) *xmltree.Node {
	if p.ps != nil {
		return p.ps[k].Node
	}
	return p.cur.nodeAt(k)
}

// seekStartGT returns the smallest index ≥ from with Start > v.
func (p *probe) seekStartGT(v int32, from int) int {
	if p.ps == nil {
		return p.cur.seekStartGT(v, from)
	}
	return from + gallopSlice(p.ps[from:], func(q *Posting) bool { return q.Start > v })
}

// gallopSlice is gallop over a materialized slice.
func gallopSlice(ps []Posting, ok func(*Posting) bool) int {
	n := len(ps)
	if n == 0 || ok(&ps[0]) {
		return 0
	}
	lo, hi := 0, 1
	for hi < n && !ok(&ps[hi]) {
		lo = hi
		hi <<= 1
	}
	if hi > n {
		hi = n
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if ok(&ps[mid]) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// filterParentsByChild retains the parents of set pi with at least one
// child posting of set ci strictly inside their interval — the bottom-up
// usefulness step. It reports whether any parent survived.
func (st *twigState) filterParentsByChild(pi, ci int) bool {
	plen, cl := st.clen(pi), st.clen(ci)
	if cl*gallopSkew < plen {
		st.tally.gallopMerges++
		st.filterParentsGallop(pi, ci)
	} else {
		st.tally.linearMerges++
		st.filterParentsScan(pi, ci)
	}
	return st.clen(pi) > 0
}

// filterParentsScan runs the balanced two-pointer merge: iterate the
// parents, advance a child pointer. Survivors are written copy-on-write —
// in place when the parent set is already an owned buffer, into the
// pooled buffer from the first dropped parent otherwise.
func (st *twigState) filterParentsScan(pi, ci int) {
	cs := st.slice(ci)
	j := 0
	if st.owned[pi] {
		ps := st.cand[pi]
		m := 0
		for k := range ps {
			for j < len(cs) && cs[j].Start <= ps[k].Start {
				j++
			}
			if j < len(cs) && cs[j].Start < ps[k].End {
				ps[m] = ps[k]
				m++
			}
		}
		st.cand[pi] = ps[:m]
		return
	}
	ps := st.slice(pi)
	for k := range ps {
		for j < len(cs) && cs[j].Start <= ps[k].Start {
			j++
		}
		if j < len(cs) && cs[j].Start < ps[k].End {
			continue
		}
		// First drop: materialize the kept prefix, then keep filtering.
		out := append(st.bufs[pi][:0], ps[:k]...)
		for k++; k < len(ps); k++ {
			for j < len(cs) && cs[j].Start <= ps[k].Start {
				j++
			}
			if j < len(cs) && cs[j].Start < ps[k].End {
				out = append(out, ps[k])
			}
		}
		st.bufs[pi] = out
		st.cand[pi], st.owned[pi] = out, true
		return
	}
	// Nothing dropped: share the scanned slice.
	st.cand[pi] = ps
}

// filterParentsGallop iterates the (much shorter) child set and gallops
// over the parents' skip pointers: each child start is contained by at
// most one parent (parents are disjoint), found by galloping to the last
// parent starting before it. The parents' list is decoded only where
// probes land.
func (st *twigState) filterParentsGallop(pi, ci int) {
	par := st.probeOf(pi, &st.prc)
	child := st.probeOf(ci, &st.enc)
	out := st.bufs[pi][:0]
	f, last := 0, -1
	for k := 0; k < child.n; k++ {
		qs := child.startAt(k)
		f = par.seekStartGT(qs-1, f)
		cand := f - 1
		if cand <= last {
			continue
		}
		last = cand
		if qs < par.endAt(cand) {
			out = append(out, par.at(cand))
		}
	}
	st.bufs[pi] = out
	st.cand[pi], st.owned[pi] = out, true
}

// filterChildrenByParents retains the children of set ci strictly inside
// some parent posting of set pi — the top-down reachability step.
func (st *twigState) filterChildrenByParents(ci, pi int) {
	plen, cl := st.clen(pi), st.clen(ci)
	if plen*gallopSkew < cl {
		st.tally.gallopMerges++
		st.filterChildrenGallop(ci, pi)
	} else {
		st.tally.linearMerges++
		st.filterChildrenScan(ci, pi)
	}
}

// filterChildrenScan runs the balanced merge: iterate the children,
// advance a parent pointer. A child whose start falls inside a parent's
// interval is a descendant of it, so the start alone decides.
func (st *twigState) filterChildrenScan(ci, pi int) {
	ps := st.slice(pi)
	j := 0
	if st.owned[ci] {
		cs := st.cand[ci]
		m := 0
		for k := range cs {
			for j < len(ps) && ps[j].End < cs[k].Start {
				j++
			}
			if j < len(ps) && ps[j].Start < cs[k].Start {
				cs[m] = cs[k]
				m++
			}
		}
		st.cand[ci] = cs[:m]
		return
	}
	cs := st.slice(ci)
	for k := range cs {
		for j < len(ps) && ps[j].End < cs[k].Start {
			j++
		}
		if j < len(ps) && ps[j].Start < cs[k].Start {
			continue
		}
		out := append(st.bufs[ci][:0], cs[:k]...)
		for k++; k < len(cs); k++ {
			for j < len(ps) && ps[j].End < cs[k].Start {
				j++
			}
			if j < len(ps) && ps[j].Start < cs[k].Start {
				out = append(out, cs[k])
			}
		}
		st.bufs[ci] = out
		st.cand[ci], st.owned[ci] = out, true
		return
	}
	st.cand[ci] = cs
}

// filterChildrenGallop iterates the (much shorter) parent set and emits
// each parent's contained children by a galloped range scan, decoding
// only the child blocks the ranges touch. Parent intervals are disjoint
// and sorted, so the emitted runs preserve child order with no overlap.
func (st *twigState) filterChildrenGallop(ci, pi int) {
	par := st.probeOf(pi, &st.enc)
	child := st.probeOf(ci, &st.prc)
	if par.n == 1 {
		// Single parent — the root-anchored common case. If it contains
		// the whole child set (first and last child decide: the set is
		// start-sorted), every child survives and the set is shared
		// without a copy; otherwise the survivors are one contiguous
		// galloped range.
		s, e := par.startAt(0), par.endAt(0)
		if child.startAt(0) > s && child.startAt(child.n-1) < e {
			return
		}
		lo := child.seekStartGT(s, 0)
		hi := child.seekStartGT(e-1, lo)
		if ps := child.ps; ps != nil {
			st.cand[ci], st.owned[ci] = ps[lo:hi], false
			return
		}
		if hi > lo {
			st.tally.decodedPostings += uint64(hi - lo)
			st.tally.decodedBlocks += uint64((hi-1)>>blockShift - lo>>blockShift + 1)
		}
		out := st.lists[ci].appendRange(st.bufs[ci][:0], lo, hi)
		st.bufs[ci] = out
		st.cand[ci], st.owned[ci] = out, true
		return
	}
	out := st.bufs[ci][:0]
	j := 0
	for k := 0; k < par.n; k++ {
		pStart, pEnd := par.startAt(k), par.endAt(k)
		j = child.seekStartGT(pStart, j)
		for j < child.n {
			if child.startAt(j) >= pEnd {
				break
			}
			out = append(out, child.at(j))
			j++
		}
	}
	st.bufs[ci] = out
	st.cand[ci], st.owned[ci] = out, true
}

// emitList materializes single-binding matches for a whole postings list
// straight off its node array — the state-free single-node fast path.
func emitList(qn *twig.Node, pl *PostingList) []twig.Match {
	n := pl.Len()
	if n == 0 {
		return nil
	}
	slab := make([]twig.Binding, n)
	out := make([]twig.Match, n)
	if pl.flat != nil {
		for k, p := range pl.flat {
			slab[k] = twig.Binding{Q: qn, D: p.Node}
			out[k] = slab[k : k+1 : k+1]
		}
		return out
	}
	for k, nd := range pl.nodes {
		slab[k] = twig.Binding{Q: qn, D: nd}
		out[k] = slab[k : k+1 : k+1]
	}
	return out
}

// emitSingles materializes single-binding matches of pattern node ord in
// postings order. The bindings live in one slab, so the whole result is
// two allocations regardless of size.
func (st *twigState) emitSingles(qn *twig.Node, ord int) []twig.Match {
	n := st.clen(ord)
	if n == 0 {
		return nil
	}
	slab := make([]twig.Binding, n)
	out := make([]twig.Match, n)
	cands := st.probeOf(ord, &st.enc)
	for k := 0; k < n; k++ {
		slab[k] = twig.Binding{Q: qn, D: cands.nodeAt(k)}
		out[k] = slab[k : k+1 : k+1]
	}
	return out
}

// enumScratch returns pooled per-node scratch slices for enumerate.
func (st *twigState) enumScratch(ord, k int) ([][]twig.Match, []int, [][]twig.Match) {
	if cap(st.subs[ord]) < k {
		st.subs[ord] = make([][]twig.Match, k)
		st.curss[ord] = make([]int, k)
		st.runss[ord] = make([][]twig.Match, k)
	}
	return st.subs[ord][:k], st.curss[ord][:k], st.runss[ord][:k]
}

// enumerate materializes matches bottom-up from the pruned candidate
// lists, mirroring MatchByPaths' combination step: candidates in document
// order, one contiguous run of sub-matches per child, runs combined by a
// mixed-radix counter with the last child varying fastest. Sub-match lists
// are ordered by their root binding's start, so run boundaries advance
// monotonically with the parent candidates — per-child cursors replace the
// joined evaluator's binary searches.
func (st *twigState) enumerate(n *twig.Node) []twig.Match {
	ord := st.ord(n)
	if len(n.Children) == 0 {
		return st.emitSingles(n, ord)
	}
	sub, cursors, runs := st.enumScratch(ord, len(n.Children))
	for i, c := range n.Children {
		sub[i] = st.enumerate(c)
		cursors[i] = 0
	}
	var out []twig.Match
	cands := st.probeOf(ord, &st.enc)
	for ci := 0; ci < cands.n; ci++ {
		d := cands.at(ci)
		ok := true
		for i := range n.Children {
			lo := cursors[i]
			for lo < len(sub[i]) && int32(sub[i][lo][0].D.Start) <= d.Start {
				lo++
			}
			hi := lo
			for hi < len(sub[i]) && int32(sub[i][hi][0].D.Start) < d.End {
				hi++
			}
			cursors[i] = hi
			runs[i] = sub[i][lo:hi]
			if lo == hi {
				// Unreachable after the two pruning passes (every kept
				// parent has a kept child inside, and every kept child
				// roots a complete match); defensive only.
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = twig.AppendProduct(out, twig.Match{{Q: n, D: d.Node}}, runs)
	}
	return out
}
