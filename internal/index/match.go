package index

import (
	"xmatch/internal/twig"
	"xmatch/internal/xmltree"
)

// MatchTwig evaluates the rewritten pattern subtree rooted at qn over the
// indexed document, returning matches byte-identical in content and order
// to twig.MatchByPaths (the contract FuzzMatchTwig and the differential
// tests pin). The signature satisfies internal/core's Matcher seam.
//
// The evaluation is a holistic two-phase join in the TwigStack/TwigList
// family, specialized to the exact-path semantics of PTQ rewriting. Because
// every candidate list holds nodes of one dotted path, and two nodes with
// the same path can never nest (a descendant's path strictly extends its
// ancestor's), each list is a disjoint, start-sorted interval sequence —
// so every structural check is a linear two-pointer merge over region
// encodings, no stacks or binary searches needed:
//
//  1. postings lookup: per pattern node, the path's postings — or, for a
//     value predicate, the (path, text) value-index postings, making the
//     predicate a hash lookup instead of a candidate scan;
//  2. bottom-up usefulness: a candidate survives only if, for every
//     pattern child, some surviving child candidate lies strictly inside
//     its interval;
//  3. top-down reachability: a candidate survives only if it lies strictly
//     inside some surviving parent candidate.
//
// After the two passes, every remaining candidate participates in at least
// one complete match (usefulness gives a complete match below it,
// reachability a rooted partial match above it), so the enumeration phase
// materializes no intermediate result that the joined evaluator's output
// would discard — the intermediate-result blowup of per-subtree interval
// joins is gone. Enumeration then mirrors MatchByPaths' candidate order
// and mixed-radix product exactly, which is what makes the output order
// identical.
func (ix *Index) MatchTwig(doc *xmltree.Document, qn *twig.Node, paths twig.PathBinding) []twig.Match {
	if doc != ix.doc {
		// Defensive: an index answers only for its own document.
		return twig.MatchByPaths(doc, qn, paths)
	}
	// Fast path: a single-node pattern is a pure postings lookup.
	if len(qn.Children) == 0 {
		return emitSingles(qn, ix.candidates(qn, paths))
	}

	st := &twigState{}
	st.collect(qn)
	st.cand = make([][]Posting, len(st.nodes))
	for i, n := range st.nodes {
		ps := ix.candidates(n, paths)
		if len(ps) == 0 {
			return nil
		}
		// Shared, read-only: the pruning passes copy on first drop, so the
		// common no-waste case (every candidate completes a match) touches
		// the index's postings without allocating.
		st.cand[i] = ps
	}

	// Bottom-up usefulness: reverse preorder visits children first.
	for i := len(st.nodes) - 1; i >= 0; i-- {
		n := st.nodes[i]
		for _, c := range n.Children {
			st.cand[i] = keepWithDescendant(st.cand[i], st.cand[st.ord(c)])
			if len(st.cand[i]) == 0 {
				return nil
			}
		}
	}
	// Top-down reachability: preorder visits parents first.
	for i, n := range st.nodes {
		for _, c := range n.Children {
			ci := st.ord(c)
			st.cand[ci] = keepInsideParent(st.cand[ci], st.cand[i])
		}
	}
	return st.enumerate(qn)
}

// candidates returns the postings list for one pattern node: the value
// index for value predicates, the path postings otherwise. The value index
// holds only non-empty texts (Build skips text-less nodes), so an
// empty-string predicate — which the joined evaluator satisfies with
// text-less nodes — filters the path postings directly.
func (ix *Index) candidates(n *twig.Node, paths twig.PathBinding) []Posting {
	if n.HasValue {
		if n.Value == "" {
			return filterCOW(ix.Postings(paths[n]), func(p Posting) bool { return p.Node.Text == "" })
		}
		return ix.ValuePostings(paths[n], n.Value)
	}
	return ix.Postings(paths[n])
}

// twigState is the per-evaluation working set: the pattern subtree in
// preorder and one candidate list per pattern node. Patterns are tiny
// (Parse caps them at 64 nodes, the paper's workload peaks at 7), so
// ordinals are found by pointer scan rather than a map.
type twigState struct {
	nodes []*twig.Node
	cand  [][]Posting
}

func (st *twigState) collect(n *twig.Node) {
	st.nodes = append(st.nodes, n)
	for _, c := range n.Children {
		st.collect(c)
	}
}

func (st *twigState) ord(n *twig.Node) int {
	for i, m := range st.nodes {
		if m == n {
			return i
		}
	}
	return -1
}

// filterCOW retains the elements satisfying keep, which is called exactly
// once per element in list order. It returns list itself when nothing is
// dropped — the common case on productive workloads — and a fresh slice
// otherwise, so shared index postings are never mutated.
func filterCOW(list []Posting, keep func(Posting) bool) []Posting {
	for i := range list {
		if keep(list[i]) {
			continue
		}
		out := append(make([]Posting, 0, len(list)-1), list[:i]...)
		for _, p := range list[i+1:] {
			if keep(p) {
				out = append(out, p)
			}
		}
		return out
	}
	return list
}

// keepWithDescendant retains the parents with at least one child posting
// strictly inside their interval. Both lists are start-sorted sequences of
// pairwise-disjoint intervals, so one forward merge suffices: the first
// child past a parent's start decides.
func keepWithDescendant(parents, children []Posting) []Posting {
	j := 0
	return filterCOW(parents, func(p Posting) bool {
		for j < len(children) && children[j].Start <= p.Start {
			j++
		}
		return j < len(children) && children[j].Start < p.End
	})
}

// keepInsideParent retains the children strictly inside some parent
// posting. A child whose start falls inside a parent's interval is a
// descendant of it, so the start alone decides.
func keepInsideParent(children, parents []Posting) []Posting {
	j := 0
	return filterCOW(children, func(c Posting) bool {
		for j < len(parents) && parents[j].End < c.Start {
			j++
		}
		return j < len(parents) && parents[j].Start < c.Start
	})
}

// emitSingles materializes single-binding matches in postings order.
func emitSingles(qn *twig.Node, ps []Posting) []twig.Match {
	if len(ps) == 0 {
		return nil
	}
	out := make([]twig.Match, len(ps))
	for i, p := range ps {
		out[i] = twig.Match{{Q: qn, D: p.Node}}
	}
	return out
}

// enumerate materializes matches bottom-up from the pruned candidate
// lists, mirroring MatchByPaths' combination step: candidates in document
// order, one contiguous run of sub-matches per child, runs combined by a
// mixed-radix counter with the last child varying fastest. Sub-match lists
// are ordered by their root binding's start, so run boundaries advance
// monotonically with the parent candidates — per-child cursors replace the
// joined evaluator's binary searches.
func (st *twigState) enumerate(n *twig.Node) []twig.Match {
	cands := st.cand[st.ord(n)]
	if len(n.Children) == 0 {
		return emitSingles(n, cands)
	}
	sub := make([][]twig.Match, len(n.Children))
	for i, c := range n.Children {
		sub[i] = st.enumerate(c)
	}
	cursors := make([]int, len(n.Children))
	runs := make([][]twig.Match, len(n.Children))
	var out []twig.Match
	for _, d := range cands {
		ok := true
		for i := range n.Children {
			lo := cursors[i]
			for lo < len(sub[i]) && int32(sub[i][lo][0].D.Start) <= d.Start {
				lo++
			}
			hi := lo
			for hi < len(sub[i]) && int32(sub[i][hi][0].D.Start) < d.End {
				hi++
			}
			cursors[i] = hi
			runs[i] = sub[i][lo:hi]
			if lo == hi {
				// Unreachable after the two pruning passes (every kept
				// parent has a kept child inside, and every kept child
				// roots a complete match); defensive only.
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = twig.AppendProduct(out, twig.Match{{Q: n, D: d.Node}}, runs)
	}
	return out
}
