package index

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"xmatch/internal/xmltree"
)

// Snapshot is the persistable form of an Index: the region encodings and
// value keys with no node pointers. It is also the verified intermediate
// form every load path funnels through — FromSnapshot re-binds it to a
// live document, verifying every posting against the document so a stale
// or corrupted blob is rejected instead of silently mis-answering
// queries. internal/store serializes it directly for legacy (v2/v3)
// blobs and through CompactSnapshot — the delta-compressed wire layout —
// for format v4.
type Snapshot struct {
	// DocNodes is the node count of the document the index was built over.
	DocNodes int
	// Paths holds one entry per indexed dotted path, sorted by path.
	Paths []SnapshotPath
	// Values holds one entry per (path, text) value key, sorted.
	Values []SnapshotValue
}

// SnapshotPath is the persisted postings list of one dotted path.
type SnapshotPath struct {
	Path                 string
	Starts, Ends, Levels []int32
}

// SnapshotValue is the persisted postings list of one value key. Region
// data is not repeated: the starts identify nodes already described by the
// path postings.
type SnapshotValue struct {
	Path, Text string
	Starts     []int32
}

// Snapshot extracts the persistable form of the index. Entries are sorted,
// so two snapshots of the same index serialize to identical bytes. An
// overlay epoch is materialized first, so the snapshot of a mutated
// index is indistinguishable from that of a fresh build over the same
// document.
func (ix *Index) Snapshot() *Snapshot {
	pathMap, valueMap, _ := ix.materialize()
	snap := &Snapshot{DocNodes: ix.doc.Len()}
	pathNames := make([]string, 0, len(pathMap))
	for p := range pathMap {
		pathNames = append(pathNames, p)
	}
	sort.Strings(pathNames)
	buf := getPostingBuf()
	for _, path := range pathNames {
		*buf = pathMap[path].appendAll((*buf)[:0])
		ps := *buf
		sp := SnapshotPath{
			Path:   path,
			Starts: make([]int32, len(ps)),
			Ends:   make([]int32, len(ps)),
			Levels: make([]int32, len(ps)),
		}
		for i, p := range ps {
			sp.Starts[i], sp.Ends[i], sp.Levels[i] = p.Start, p.End, p.Level
		}
		snap.Paths = append(snap.Paths, sp)
	}
	keys := make([]valueKey, 0, len(valueMap))
	for k := range valueMap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return valueKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		*buf = valueMap[k].appendAll((*buf)[:0])
		ps := *buf
		sv := SnapshotValue{Path: k.path, Text: k.text, Starts: make([]int32, len(ps))}
		for i, p := range ps {
			sv.Starts[i] = p.Start
		}
		snap.Values = append(snap.Values, sv)
	}
	putPostingBuf(buf)
	return snap
}

// FromSnapshot re-binds a snapshot to doc, verifying it posting by
// posting: every start must resolve to a document node whose path, region
// encoding, and (for value entries) text agree with the snapshot, postings
// must be in document order, and every document node must be covered
// exactly once. Any disagreement — a corrupted blob, or a blob built over
// a different document — is reported as an error; internal/store wraps it
// as a *FormatError. The rebuilt index carries the block-compressed
// resident layout.
func FromSnapshot(doc *xmltree.Document, snap *Snapshot) (*Index, error) {
	start := time.Now()
	if snap.DocNodes != doc.Len() {
		return nil, fmt.Errorf("index snapshot covers %d nodes, document has %d", snap.DocNodes, doc.Len())
	}
	byStart := make(map[int32]*xmltree.Node, doc.Len())
	for _, n := range doc.Nodes() {
		byStart[int32(n.Start)] = n
	}
	ix := &Index{
		doc:    doc,
		paths:  make(map[string]*PostingList, len(snap.Paths)),
		values: make(map[valueKey]*PostingList, len(snap.Values)),
		ctr:    &Counters{},
		prof:   &pathProfiles{},
	}
	total := 0
	for _, sp := range snap.Paths {
		if len(sp.Starts) != len(sp.Ends) || len(sp.Starts) != len(sp.Levels) {
			return nil, fmt.Errorf("index snapshot path %q: region arrays disagree (%d/%d/%d)",
				sp.Path, len(sp.Starts), len(sp.Ends), len(sp.Levels))
		}
		if _, dup := ix.paths[sp.Path]; dup || len(sp.Starts) == 0 {
			return nil, fmt.Errorf("index snapshot path %q: duplicate or empty entry", sp.Path)
		}
		ps := make([]Posting, len(sp.Starts))
		prev := int32(0)
		for i := range sp.Starts {
			n := byStart[sp.Starts[i]]
			if n == nil {
				return nil, fmt.Errorf("index snapshot path %q: start %d resolves to no node", sp.Path, sp.Starts[i])
			}
			if n.Path != sp.Path || int32(n.End) != sp.Ends[i] || int32(n.Level) != sp.Levels[i] {
				return nil, fmt.Errorf("index snapshot path %q: posting %d disagrees with document node (path %q, region %d:%d@%d)",
					sp.Path, i, n.Path, n.Start, n.End, n.Level)
			}
			if sp.Starts[i] <= prev {
				return nil, fmt.Errorf("index snapshot path %q: postings out of document order", sp.Path)
			}
			prev = sp.Starts[i]
			ps[i] = Posting{Start: sp.Starts[i], End: sp.Ends[i], Level: sp.Levels[i], Node: n}
		}
		ix.paths[sp.Path] = compressPostings(ps)
		total += len(ps)
	}
	if total != doc.Len() {
		return nil, fmt.Errorf("index snapshot has %d postings, document has %d nodes", total, doc.Len())
	}
	covered := make(map[*xmltree.Node]bool)
	for _, sv := range snap.Values {
		key := valueKey{sv.Path, sv.Text}
		if _, dup := ix.values[key]; dup || len(sv.Starts) == 0 || sv.Text == "" {
			return nil, fmt.Errorf("index snapshot value (%q, %q): duplicate, empty, or textless entry", sv.Path, sv.Text)
		}
		ps := make([]Posting, len(sv.Starts))
		prev := int32(0)
		for i, s := range sv.Starts {
			n := byStart[s]
			if n == nil || n.Path != sv.Path || n.Text != sv.Text {
				return nil, fmt.Errorf("index snapshot value (%q, %q): start %d disagrees with document", sv.Path, sv.Text, s)
			}
			if s <= prev {
				return nil, fmt.Errorf("index snapshot value (%q, %q): postings out of document order", sv.Path, sv.Text)
			}
			prev = s
			ps[i] = Posting{Start: s, End: int32(n.End), Level: int32(n.Level), Node: n}
			covered[n] = true
		}
		ix.values[key] = compressPostings(ps)
	}
	// Every text-bearing node must have its value entry, or value-predicate
	// lookups would silently miss matches. Each covered node was verified
	// above to sit under its own (path, text) key.
	for _, n := range doc.Nodes() {
		if n.Text != "" && !covered[n] {
			return nil, fmt.Errorf("index snapshot misses value entry for node %q (%q)", n.Path, n.Text)
		}
	}
	ix.texts = textLayer(ix.values)
	ix.stats = ix.computeStats()
	ix.stats.BuildTime = time.Since(start)
	return ix, nil
}

// CompactSnapshot is the store blob format v4 wire layout of a Snapshot:
// per-path postings as delta-encoded uvarint blocks with persisted
// block-level skip pointers — the same scheme the resident PostingList
// uses — and value postings as plain start-delta streams. Levels are not
// stored per posting: every node of one dotted path sits at the same
// depth, so one level per path reconstructs them all.
type CompactSnapshot struct {
	DocNodes int
	Paths    []CompactPath
	Values   []CompactValue
}

// CompactPath is one path's block-compressed postings list. Data holds,
// per block of 64 postings, an absolute opening pair (uvarint start,
// uvarint extent) followed by delta pairs (uvarint start delta, uvarint
// extent); BlockOffs carries the byte offset of each block's opening
// pair beyond the first — the persisted block-level skip pointers.
type CompactPath struct {
	Path      string
	Level     int32
	Count     int32
	BlockOffs []uint32
	Data      []byte
}

// CompactValue is one value key's postings: uvarint deltas of the start
// numbers (the first delta is from zero).
type CompactValue struct {
	Path, Text string
	Count      int32
	Deltas     []byte
}

// Compact converts a snapshot to the v4 wire layout. The conversion is
// deterministic, so two saves of the same index still produce identical
// bytes.
func (snap *Snapshot) Compact() *CompactSnapshot {
	cs := &CompactSnapshot{DocNodes: snap.DocNodes}
	var vbuf [2 * binary.MaxVarintLen32]byte
	for _, sp := range snap.Paths {
		n := len(sp.Starts)
		cp := CompactPath{Path: sp.Path, Count: int32(n)}
		if n > 0 {
			cp.Level = sp.Levels[0]
		}
		for i := 0; i < n; i++ {
			var k int
			if i&blockMask == 0 {
				if i > 0 {
					cp.BlockOffs = append(cp.BlockOffs, uint32(len(cp.Data)))
				}
				k = binary.PutUvarint(vbuf[:], uint64(sp.Starts[i]))
			} else {
				k = binary.PutUvarint(vbuf[:], uint64(sp.Starts[i]-sp.Starts[i-1]))
			}
			k += binary.PutUvarint(vbuf[k:], uint64(sp.Ends[i]-sp.Starts[i]))
			cp.Data = append(cp.Data, vbuf[:k]...)
		}
		cs.Paths = append(cs.Paths, cp)
	}
	for _, sv := range snap.Values {
		cv := CompactValue{Path: sv.Path, Text: sv.Text, Count: int32(len(sv.Starts))}
		prev := int32(0)
		for _, s := range sv.Starts {
			k := binary.PutUvarint(vbuf[:], uint64(s-prev))
			cv.Deltas = append(cv.Deltas, vbuf[:k]...)
			prev = s
		}
		cs.Values = append(cs.Values, cv)
	}
	return cs
}

// Expand decodes the v4 wire layout back into a Snapshot, validating the
// compressed structure as it goes: block skip pointers must agree with
// the decode positions and stay inside Data, every varint must terminate
// and fit an int32, and every byte must be accounted for. Structural
// violations are reported as errors (internal/store wraps them as
// *FormatError); document-level verification is FromSnapshot's job.
func (cs *CompactSnapshot) Expand() (*Snapshot, error) {
	snap := &Snapshot{DocNodes: cs.DocNodes}
	for _, cp := range cs.Paths {
		n := int(cp.Count)
		if n < 0 {
			return nil, fmt.Errorf("path %q: bad posting count %d", cp.Path, cp.Count)
		}
		nBlocks := (n + blockSize - 1) / blockSize
		if n > 0 && len(cp.BlockOffs) != nBlocks-1 {
			return nil, fmt.Errorf("path %q: %d postings need %d skip pointers, have %d",
				cp.Path, n, nBlocks-1, len(cp.BlockOffs))
		}
		sp := SnapshotPath{
			Path:   cp.Path,
			Starts: make([]int32, n),
			Ends:   make([]int32, n),
			Levels: make([]int32, n),
		}
		off := 0
		var start int32
		for i := 0; i < n; i++ {
			if i&blockMask == 0 && i > 0 {
				if want := int(cp.BlockOffs[i>>blockShift-1]); want != off {
					return nil, fmt.Errorf("path %q: skip pointer out of range: block %d at offset %d, decoder at %d (data %d bytes)",
						cp.Path, i>>blockShift, want, off, len(cp.Data))
				}
			}
			ds, k := checkedUvarint(cp.Data, off)
			if k <= 0 {
				return nil, fmt.Errorf("path %q: bad varint in truncated block %d (posting %d)", cp.Path, i>>blockShift, i)
			}
			off += k
			de, k := checkedUvarint(cp.Data, off)
			if k <= 0 {
				return nil, fmt.Errorf("path %q: bad varint in truncated block %d (posting %d)", cp.Path, i>>blockShift, i)
			}
			off += k
			if i&blockMask == 0 {
				start = int32(ds)
			} else {
				start += int32(ds)
			}
			sp.Starts[i] = start
			sp.Ends[i] = start + int32(de)
			sp.Levels[i] = cp.Level
		}
		if off != len(cp.Data) {
			return nil, fmt.Errorf("path %q: %d trailing bytes after last block", cp.Path, len(cp.Data)-off)
		}
		snap.Paths = append(snap.Paths, sp)
	}
	for _, cv := range cs.Values {
		n := int(cv.Count)
		if n < 0 {
			return nil, fmt.Errorf("value (%q, %q): bad posting count %d", cv.Path, cv.Text, cv.Count)
		}
		sv := SnapshotValue{Path: cv.Path, Text: cv.Text, Starts: make([]int32, n)}
		off, prev := 0, int32(0)
		for i := 0; i < n; i++ {
			ds, k := checkedUvarint(cv.Deltas, off)
			if k <= 0 {
				return nil, fmt.Errorf("value (%q, %q): bad varint at posting %d", cv.Path, cv.Text, i)
			}
			off += k
			prev += int32(ds)
			sv.Starts[i] = prev
		}
		if off != len(cv.Deltas) {
			return nil, fmt.Errorf("value (%q, %q): %d trailing bytes", cv.Path, cv.Text, len(cv.Deltas)-off)
		}
		snap.Values = append(snap.Values, sv)
	}
	return snap, nil
}

// checkedUvarint decodes one uvarint bounded to int32 range, returning
// k <= 0 on truncation or overflow — the untrusted-input counterpart of
// the trusted resident decoder.
func checkedUvarint(data []byte, off int) (uint64, int) {
	if off >= len(data) {
		return 0, 0
	}
	v, k := binary.Uvarint(data[off:])
	if k <= 0 || v > 1<<31-1 {
		return 0, -1
	}
	return v, k
}
